package least

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/csvio"
	"repro/internal/loss"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// SuffStats are the sufficient statistics of the least-squares loss —
// the Gram matrix G = XᵀX plus the row count and per-column sums (an
// alias of the internal kernel type, so no copying happens at the
// boundary). Once a Dataset has been reduced to its SuffStats, every
// loss evaluation of the dense learners costs O(d³) independent of n;
// see DESIGN.md §6 for the algebra.
type SuffStats = loss.SuffStats

// Dataset is the canonical data input of Spec.LearnDataset: a source
// of n observations over d named variables, identified by a content
// fingerprint and reducible to the sufficient statistics the dense
// learners run on. Implementations in this package cover in-memory
// dense (FromMatrix), in-memory sparse (FromCSR), precomputed
// statistics (FromStats) and streaming CSV/JSONL shard files
// (OpenDataset, OpenShards); the serving daemon registers Datasets so
// jobs can reference data by fingerprint instead of re-uploading it.
//
// Stats must be memoized: the learners and the serving layer call it
// freely and rely on repeat calls being cheap and bit-identical.
type Dataset interface {
	// Dims returns the number of observations n and variables d.
	Dims() (n, d int)
	// Names returns the column names, or nil when the source carries
	// none. Callers must not mutate the returned slice.
	Names() []string
	// Fingerprint identifies the content: two Datasets with equal
	// fingerprints hold the same shape, the same float bits in the same
	// order, and the same names, however they were loaded. The serving
	// result cache keys on it (DESIGN.md §6).
	Fingerprint() string
	// Stats returns the sufficient statistics, computing them on first
	// use. The caller must treat the result as immutable.
	Stats(ctx context.Context) (*SuffStats, error)
}

// RowSource is implemented by Datasets that can materialize the full
// n×d sample matrix. Spec.LearnDataset needs it for the execution
// modes that touch individual rows — MethodLEASTSP and mini-batching —
// while the dense full-batch methods run off Stats alone. The result
// must be treated as read-only.
type RowSource interface {
	Dataset
	Matrix(ctx context.Context) (*Matrix, error)
}

// rowPreferred marks datasets whose row path is authoritative even for
// methods that could run off statistics. The in-memory matrix adapter
// sets it so the deprecated Spec.Learn(ctx, x) keeps its historical
// bit-for-bit behavior; everything else prefers the statistics path.
type rowPreferred interface {
	preferRows() bool
}

// statsWorkers caps how many goroutines an on-demand Stats computation
// of the in-memory adapters fans out to (0 = all cores).
const statsWorkers = 0

// matrixDataset adapts an in-memory dense matrix. It is the thin
// legacy adapter: learns route through the exact historical row path.
type matrixDataset struct {
	x     *Matrix
	names []string

	fpOnce sync.Once
	fp     string

	stOnce sync.Once
	st     *SuffStats
}

// FromMatrix wraps an in-memory sample matrix (one row per
// observation, one column per variable) as a Dataset. names may be nil;
// when set it must have one entry per column. The matrix is borrowed,
// not copied — callers must not mutate it afterwards. Learns from this
// adapter take the exact row path Spec.Learn has always used, so
// results are bit-for-bit those of the deprecated matrix entry points.
func FromMatrix(x *Matrix, names []string) Dataset {
	if x == nil {
		x = NewMatrix(0, 0)
	}
	return &matrixDataset{x: x, names: names}
}

func (m *matrixDataset) Dims() (int, int) { return m.x.Rows(), m.x.Cols() }
func (m *matrixDataset) Names() []string  { return m.names }
func (m *matrixDataset) preferRows() bool { return true }
func (m *matrixDataset) Fingerprint() string {
	m.fpOnce.Do(func() { m.fp = csvio.FingerprintMatrix(m.x, m.names) })
	return m.fp
}

func (m *matrixDataset) Stats(context.Context) (*SuffStats, error) {
	m.stOnce.Do(func() { m.st = loss.StatsOf(m.x, statsWorkers) })
	return m.st, nil
}

func (m *matrixDataset) Matrix(context.Context) (*Matrix, error) { return m.x, nil }

// csrDataset adapts a sparse (CSR) sample matrix — the natural form of
// the large behavioral datasets the paper serves, where most entries
// of an observation are zero.
type csrDataset struct {
	x     *sparse.CSR
	names []string

	fpOnce sync.Once
	fp     string

	stOnce sync.Once
	st     *SuffStats
}

// FromCSR wraps a sparse sample matrix (rows = observations, columns =
// variables) as a Dataset. Dense-method learns run off the sufficient
// statistics, computed straight from the sparse form in O(Σ nnz(row)²);
// MethodLEASTSP materializes the dense matrix on demand. The matrix is
// borrowed and must not be mutated afterwards.
func FromCSR(x *sparse.CSR, names []string) Dataset {
	return &csrDataset{x: x, names: names}
}

func (c *csrDataset) Dims() (int, int) { return c.x.Rows(), c.x.Cols() }
func (c *csrDataset) Names() []string  { return c.names }

func (c *csrDataset) Fingerprint() string {
	c.fpOnce.Do(func() {
		f := csvio.NewFingerprinter()
		row := make([]float64, c.x.Cols())
		for i := 0; i < c.x.Rows(); i++ {
			for j := range row {
				row[j] = 0
			}
			for p := c.x.RowPtr[i]; p < c.x.RowPtr[i+1]; p++ {
				row[c.x.ColIdx[p]] = c.x.Val[p]
			}
			f.Row(row)
		}
		c.fp = f.Sum(c.x.Rows(), c.x.Cols(), c.names)
	})
	return c.fp
}

func (c *csrDataset) Stats(context.Context) (*SuffStats, error) {
	c.stOnce.Do(func() {
		g, sums := sparse.Gram(parallel.New(statsWorkers), c.x)
		c.st = &SuffStats{N: c.x.Rows(), Gram: g, ColSums: sums}
	})
	return c.st, nil
}

func (c *csrDataset) Matrix(context.Context) (*Matrix, error) { return c.x.ToDense(), nil }

// statsDataset carries precomputed statistics with no row access.
type statsDataset struct {
	st    *SuffStats
	names []string

	fpOnce sync.Once
	fp     string
}

// FromStats wraps already-reduced sufficient statistics as a Dataset.
// Only the statistics-backed execution modes can run on it —
// MethodLEASTSP and mini-batching, which need rows, are rejected by
// Spec.LearnDataset. The fingerprint is derived from the statistics
// themselves (a distinct namespace from row-level fingerprints, since
// the rows are unknown).
func FromStats(st *SuffStats, names []string) Dataset {
	return &statsDataset{st: st, names: names}
}

func (s *statsDataset) Dims() (int, int) { return s.st.N, s.st.D() }
func (s *statsDataset) Names() []string  { return s.names }

func (s *statsDataset) Fingerprint() string {
	s.fpOnce.Do(func() {
		f := csvio.NewFingerprinter()
		g := s.st.Gram
		for i := 0; i < g.Rows(); i++ {
			f.Row(g.Row(i))
		}
		f.Row(s.st.ColSums)
		s.fp = "stats:" + f.Sum(s.st.N, s.st.D(), s.names)
	})
	return s.fp
}

func (s *statsDataset) Stats(context.Context) (*SuffStats, error) { return s.st, nil }

// DataFormat selects the on-disk encoding of a shard file.
type DataFormat int

const (
	// FormatAuto infers the format from the file extension: .jsonl and
	// .ndjson are JSONL, everything else is CSV.
	FormatAuto DataFormat = iota
	// FormatCSV is comma-separated values, optionally with a header
	// row (DatasetOptions.Header).
	FormatCSV
	// FormatJSONL is one JSON array of numbers per line.
	FormatJSONL
)

func (f DataFormat) forPath(path string) DataFormat {
	if f != FormatAuto {
		return f
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".jsonl", ".ndjson":
		return FormatJSONL
	}
	return FormatCSV
}

// DatasetOptions configures OpenDataset / OpenShards.
type DatasetOptions struct {
	// Header marks CSV shards as starting with a column-name row. The
	// first shard's header is authoritative; later shards must repeat
	// it verbatim.
	Header bool
	// Names overrides the column names (wins over a CSV header). Must
	// have one entry per column when set.
	Names []string
	// Format forces the shard encoding; FormatAuto (the default)
	// infers it per file from the extension.
	Format DataFormat
	// Workers bounds the goroutine fan-out of the ingest's Gram
	// accumulation: 0 selects all cores, 1 forces serial. As with the
	// other parallel kernels, statistics are bit-deterministic for a
	// fixed worker count.
	Workers int
}

// fileDataset is the streaming reader: Open* runs one bounded-memory
// pass over the shard files, keeping only the sufficient statistics,
// the shape, the names and the fingerprint — never the rows. Row
// access (MethodLEASTSP, mini-batching) re-reads the files on demand.
type fileDataset struct {
	paths []string
	opts  DatasetOptions
	names []string
	st    *SuffStats
	fp    string
}

// OpenDataset opens one CSV or JSONL sample file as a streaming
// Dataset: the rows are read once, in bounded memory, into sufficient
// statistics plus a content fingerprint. A learn over the result with
// a dense full-batch method (MethodLEAST, MethodNOTEARS) never
// materializes the n×d matrix, so n is limited by disk, not RAM.
func OpenDataset(path string, o DatasetOptions) (Dataset, error) {
	return OpenShards([]string{path}, o)
}

// OpenShards is OpenDataset over a sharded file set: the shards are
// concatenated in the given order into one logical dataset (the same
// rows in one file or many fingerprint identically). Every shard must
// agree on the column count — and, for headered CSV, on the header.
func OpenShards(paths []string, o DatasetOptions) (Dataset, error) {
	if len(paths) == 0 {
		return nil, errors.New("least: no dataset shards")
	}
	ingest := csvio.NewStatsIngest(o.Workers)
	if err := eachShard(paths, func(path string) error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if o.Format.forPath(path) == FormatJSONL {
			err = ingest.JSONL(f)
		} else {
			err = ingest.CSV(f, o.Header)
		}
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		return nil
	}); err != nil {
		ingest.Abort() // join the accumulator pool; no goroutine outlives the error
		return nil, err
	}
	st, headerNames, err := ingest.Finish()
	if err != nil {
		return nil, fmt.Errorf("least: %s: %v", paths[0], err)
	}
	names := o.Names
	if names == nil {
		names = headerNames
	}
	if names != nil && len(names) != st.D() {
		return nil, fmt.Errorf("least: %d names for %d variables", len(names), st.D())
	}
	return &fileDataset{
		paths: append([]string(nil), paths...),
		opts:  o,
		names: names,
		st:    st,
		fp:    ingest.Fingerprint(names),
	}, nil
}

func eachShard(paths []string, do func(path string) error) error {
	for _, p := range paths {
		if err := do(p); err != nil {
			return err
		}
	}
	return nil
}

func (f *fileDataset) Dims() (int, int)                          { return f.st.N, f.st.D() }
func (f *fileDataset) Names() []string                           { return f.names }
func (f *fileDataset) Fingerprint() string                       { return f.fp }
func (f *fileDataset) Stats(context.Context) (*SuffStats, error) { return f.st, nil }

// Matrix materializes the rows by re-reading the shard files — the
// O(n·d) memory the streaming pass avoided, paid only when a row-level
// execution mode (MethodLEASTSP, mini-batching) asks for it. The
// re-read is verified against the open-time fingerprint, so a shard
// that changed on disk is an error, not silently different data.
func (f *fileDataset) Matrix(context.Context) (*Matrix, error) {
	n, d := f.Dims()
	data := make([]float64, 0, n*d)
	rs := csvio.NewRowStream()
	fp := csvio.NewFingerprinter()
	if err := eachShard(f.paths, func(path string) error {
		file, err := os.Open(path)
		if err != nil {
			return err
		}
		defer file.Close()
		emit := func(row []float64) error {
			fp.Row(row)
			data = append(data, row...)
			return nil
		}
		if f.opts.Format.forPath(path) == FormatJSONL {
			err = rs.JSONL(file, emit)
		} else {
			err = rs.CSV(file, f.opts.Header, emit)
		}
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if rs.Rows() != n || rs.D() != d || fp.Sum(n, d, f.names) != f.fp {
		return nil, fmt.Errorf("least: %s: dataset changed on disk since it was opened", f.paths[0])
	}
	return NewMatrixData(n, d, data), nil
}

// centeredDataset wraps a base Dataset with column centering, applied
// to whichever representation a learn consumes: statistics get the
// rank-one Gram correction G − s·sᵀ/n (no rows needed), row
// materialization clones and centers the matrix. Its fingerprint
// derives from the base's, so raw and centered learns of the same data
// never share a serving cache entry.
type centeredDataset struct {
	base Dataset

	// Successes are memoized under mu; errors are not, so a transient
	// failure of the base (e.g. a momentary I/O error re-reading a
	// shard) does not poison the wrapper for good.
	mu sync.Mutex
	st *SuffStats
	x  *Matrix
}

// Centered derives a Dataset whose columns are shifted to zero mean —
// the recommended preprocessing for real data (see Center). The base
// dataset is not modified; for statistics-backed learns the centering
// is an O(d²) adjustment of the Gram matrix, so no row access is
// needed. The wrapper mirrors the base's capabilities: it implements
// RowSource exactly when the base does, so a stats-only dataset under
// a row-needing spec still draws LearnDataset's error naming the
// offending knob.
func Centered(ds Dataset) Dataset {
	c := &centeredDataset{base: ds}
	if _, ok := ds.(RowSource); ok {
		return &centeredRowDataset{c}
	}
	return c
}

// centeredRowDataset adds the RowSource capability to a centered
// wrapper whose base has it.
type centeredRowDataset struct {
	*centeredDataset
}

func (c *centeredRowDataset) Matrix(ctx context.Context) (*Matrix, error) {
	return c.centeredDataset.matrix(ctx)
}

func (c *centeredDataset) Dims() (int, int)    { return c.base.Dims() }
func (c *centeredDataset) Names() []string     { return c.base.Names() }
func (c *centeredDataset) Fingerprint() string { return c.base.Fingerprint() + "+centered" }

func (c *centeredDataset) preferRows() bool {
	rp, ok := c.base.(rowPreferred)
	return ok && rp.preferRows()
}

func (c *centeredDataset) Stats(ctx context.Context) (*SuffStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.st == nil {
		st, err := c.base.Stats(ctx)
		if err != nil {
			return nil, err
		}
		c.st = st.Centered()
	}
	return c.st, nil
}

func (c *centeredDataset) matrix(ctx context.Context) (*Matrix, error) {
	rs, ok := c.base.(RowSource)
	if !ok {
		return nil, errors.New("least: dataset provides sufficient statistics only (no row access)")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.x == nil {
		x, err := rs.Matrix(ctx)
		if err != nil {
			return nil, err
		}
		c.x = Center(x.Clone())
	}
	return c.x, nil
}

// ReadManifest parses a JSONL fleet manifest: one ManifestTask per
// line, blank lines and '#' comment lines skipped, unknown keys
// rejected with the offending line number. Per-task semantic
// validation is deliberately left to the consumer (leastcli -batch or
// the serving batch admission), so one malformed task becomes one row
// in a batch error table rather than a rejected manifest.
func ReadManifest(r io.Reader) ([]ManifestTask, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	var tasks []ManifestTask
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(raw))
		dec.DisallowUnknownFields()
		var t ManifestTask
		if err := dec.Decode(&t); err != nil {
			return nil, fmt.Errorf("least: manifest line %d: %v", line, err)
		}
		// One task per line, exactly: trailing content (a second
		// object, say, from a botched array→JSONL conversion) must not
		// silently drop a network from the fleet.
		if dec.More() {
			return nil, fmt.Errorf("least: manifest line %d: trailing data after the task object", line)
		}
		tasks = append(tasks, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("least: manifest: %v", err)
	}
	if len(tasks) == 0 {
		return nil, errors.New("least: manifest: no tasks")
	}
	return tasks, nil
}

// Data opens the task's local data source: the In shard list
// (streaming ingest, exactly like leastcli -in) or the inline
// CSV/Samples envelope. DatasetRef tasks have no local data — they
// resolve against a serving daemon's dataset store — and error here.
// o supplies ingest knobs (Workers); the task's own Header field wins
// for its files. NaN/Inf in the data is rejected here, whatever the
// source, so batch admission classifies it uniformly as a validation
// failure rather than a learner ("internal") one.
func (t *ManifestTask) Data(o DatasetOptions) (Dataset, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	switch {
	case len(t.In) > 0:
		o.Header = t.Header
		if t.Names != nil {
			o.Names = t.Names
		}
		ds, err := OpenShards(t.In, o)
		if err != nil {
			return nil, err
		}
		// Ingest already reduced the shards to sufficient statistics;
		// the O(d²) scan is free compared to the pass that built them.
		if st, err := ds.Stats(context.Background()); err == nil && st.HasNaN() {
			return nil, errors.New("least: manifest task: data contains NaN/Inf")
		}
		return ds, nil
	case t.CSV != "":
		x, headerNames, err := csvio.ReadMatrix(strings.NewReader(t.CSV), t.Header)
		if err != nil {
			return nil, fmt.Errorf("least: manifest task: csv: %v", err)
		}
		names := t.Names
		if names == nil {
			names = headerNames
		}
		if x.HasNaN() {
			return nil, errors.New("least: manifest task: data contains NaN/Inf")
		}
		return FromMatrix(x, names), nil
	case t.Samples != nil:
		n := len(t.Samples)
		if n == 0 || len(t.Samples[0]) == 0 {
			return nil, errors.New("least: manifest task: samples must be a non-empty matrix")
		}
		d := len(t.Samples[0])
		x := NewMatrix(n, d)
		for i, row := range t.Samples {
			if len(row) != d {
				return nil, fmt.Errorf("least: manifest task: samples row %d has %d values, want %d", i, len(row), d)
			}
			copy(x.Row(i), row)
		}
		if x.HasNaN() {
			return nil, errors.New("least: manifest task: data contains NaN/Inf")
		}
		return FromMatrix(x, t.Names), nil
	default: // DatasetRef
		return nil, errors.New("least: manifest task: dataset_ref resolves on a serving daemon, not locally")
	}
}
