# Tier-1 verification and developer workflow for the LEAST
# reproduction. `make ci` is the one-command gate; CI runs its two
# halves as parallel jobs: `make checks` (api-check + fmt-check +
# lint + docs-check — no test binaries) and `make tests` (build + the
# race-enabled short, query, recovery and cluster suites).

GO ?= go

.PHONY: ci checks tests vet fmt-check lint wire-baseline build api-check api-baseline docs-check test test-short test-query test-recovery test-cluster bench bench-parallel bench-json bench-check load-smoke sweep serve clean

ci: checks tests

# The static half: everything that gates without running a test.
checks: api-check fmt-check lint docs-check

# The dynamic half: build plus every PR-blocking test suite.
tests: build test-short test-query test-recovery test-cluster

vet:
	$(GO) vet ./...

# Every checked-in Go file must be gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "fmt-check: gofmt needed on:"; echo "$$out"; exit 1; \
	fi; \
	echo "fmt-check: all files gofmt-clean"

# Guard the public API of package least: go vet plus cmd/apidiff,
# which fails when an exported identifier disappears from the package
# without having carried a `Deprecated:` marker in the baseline.
api-check: vet
	$(GO) run ./cmd/apidiff -dir . -baseline api/least.txt

# Refresh the API baseline after intentionally extending the surface.
api-baseline:
	$(GO) run ./cmd/apidiff -dir . -baseline api/least.txt -write

# The project-invariant analyzer suite (cmd/leastvet): kernel
# bit-determinism, atomic counter discipline, typed task error codes,
# ctx-threading on serving paths, pooled-workspace hygiene, frozen
# wire shapes. DESIGN.md §12 catalogues the contracts.
lint:
	$(GO) run ./cmd/leastvet -dir .

# Refresh the frozen-wire manifest after an intentional wire change.
wire-baseline:
	$(GO) run ./cmd/leastvet -dir . -write-wire

build:
	$(GO) build ./...

# Every `DESIGN.md §N` citation in the Go sources must resolve to a
# `## §N …` section heading in DESIGN.md.
docs-check:
	@test -f DESIGN.md || { echo "docs-check: DESIGN.md is cited but missing"; exit 1; }
	@fail=0; \
	for sec in $$(grep -rhoE 'DESIGN\.md §[0-9]+' --include='*.go' . | grep -oE '§[0-9]+' | sort -u); do \
		grep -qE "^#+ $$sec( |$$)" DESIGN.md \
			|| { echo "docs-check: dangling reference: DESIGN.md $$sec has no matching section"; fail=1; }; \
	done; \
	[ $$fail -eq 0 ] && echo "docs-check: all DESIGN.md section references resolve" || exit 1

# Full suite — includes the long experiment shapes (several minutes).
test:
	$(GO) test ./...

# Short suite with the race detector: what CI runs on every change.
test-short:
	$(GO) test -race -short ./...

# The read-side suite that -short skips: the d-separation fuzz oracle
# and the leastload end-to-end smoke (a ~1s self-hosted run with the
# /metrics ledger cross-check), both under the race detector.
test-query:
	$(GO) test -race -count=1 ./internal/query ./cmd/leastload

# The durability suite (DESIGN.md §11), race-enabled: the WAL unit
# tests (CRC framing, rotation, compaction, torn-tail replay) plus the
# serve-layer crash drills — the multi-hundred-task batch hard-stopped
# at randomized points, recovered, and held to bit-identical,
# exactly-once results — and the daemon-level restart round trip.
test-recovery:
	$(GO) test -race -count=1 ./internal/journal
	$(GO) test -race -count=1 -timeout 30m -run 'TestJournal|TestDatasetHold|TestBatchRef|TestDaemonJournal' ./internal/serve ./cmd/leastd

# The cluster suite (DESIGN.md §13), race-enabled: three in-process
# leastd stacks behind a coordinator — the 1,000-task/100-unique
# cross-node dedupe pin, the kill-a-node failover drill (bit-identical
# results + typed restart), steal-under-skew, gossip affinity after
# membership churn, the membership-journal re-adopt, and the
# leastcoord binary smoke.
test-cluster:
	$(GO) test -race -count=1 -timeout 30m ./internal/coord ./cmd/leastcoord

# All paper-artifact and kernel micro-benchmarks.
bench:
	$(GO) test -run xxx -bench . -benchmem .

# Just the parallel sparse backend: serial vs parallel kernel timings.
bench-parallel:
	$(GO) test -run xxx -bench 'SpectralGradSparse|SparseLossGrad|SparseTranspose' -benchmem .

# The perf-trajectory benchmarks — streaming-ingest throughput, the
# Gram-vs-dense per-iteration loss cost (now through the allocation-
# free evaluator), the PR-6 GEMM trio (tiled vs reference kernel,
# batched small-d fleets), the PR-8 journal append path (group commit
# vs per-append fsync) and the PR-10 coordinator routing hop (direct
# node GET vs the proxied path vs the raw rendezvous ring) — as
# machine-readable JSON. Each perf-relevant PR writes its own
# BENCH_PR<N>.json and earlier points stay committed (BENCH_PR4/6/8)
# so the trajectory can be compared across checkouts; this target
# always writes the newest point, never the historical ones.
bench-json:
	$(GO) test -run xxx -bench 'DatasetIngestCSV|LossDenseRows|LossGram|GEMM|JournalAppend|CoordRoute' -benchmem . ./internal/journal ./internal/coord \
		| $(GO) run ./cmd/benchjson -out BENCH_PR10.json
	@echo "wrote BENCH_PR10.json"

# Nightly perf gate: re-run the Gram-loss, GEMM, journal-append
# (group-commit fsync path) and coordinator-routing benchmarks and
# fail on a >2x ns/op regression against the committed BENCH_PR10.json
# trajectory point. Deliberately not part of `ci` — shared-runner
# timing noise would flake the PR gate, so the nightly workflow owns
# this check.
bench-check:
	$(GO) test -run xxx -bench 'LossGram|GEMM|JournalAppend|CoordRoute' -benchmem . ./internal/journal ./internal/coord \
		| $(GO) run ./cmd/benchjson -baseline BENCH_PR10.json -filter 'LossGram|GEMM|JournalAppend|CoordRoute' -max-ratio 2

# Nightly saturation proof: 30s of mixed query + fleet-batch traffic
# against a self-hosted daemon, with the exact /metrics ledger check
# and a sustained-QPS floor. Writes the benchjson-schema LOAD.json
# the workflow uploads as the load-trajectory artifact. Like
# bench-check, this is nightly-owned, never PR-blocking.
load-smoke:
	$(GO) run ./cmd/leastload -duration 30s -query-workers 512 \
		-interactive 0 -batch-d 6 -batch-n 32 -batch-tasks 16 \
		-check -min-qps 10000 -out LOAD.json
	@echo "wrote LOAD.json"

# Worker-count sweep on this machine (pick Options.Parallelism).
sweep:
	$(GO) run ./cmd/leastbench -exp par-sweep

# Run the serving daemon locally (see README "Serving").
serve:
	$(GO) run ./cmd/leastd -addr :8080

clean:
	$(GO) clean ./...
