# Tier-1 verification and developer workflow for the LEAST
# reproduction. `make ci` is the one-command gate: vet + build + the
# race-enabled short test suite.

GO ?= go

.PHONY: ci vet build test test-short bench bench-parallel sweep clean

ci: vet build test-short

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Full suite — includes the long experiment shapes (several minutes).
test:
	$(GO) test ./...

# Short suite with the race detector: what CI runs on every change.
test-short:
	$(GO) test -race -short ./...

# All paper-artifact and kernel micro-benchmarks.
bench:
	$(GO) test -run xxx -bench . -benchmem .

# Just the parallel sparse backend: serial vs parallel kernel timings.
bench-parallel:
	$(GO) test -run xxx -bench 'SpectralGradSparse|SparseLossGrad|SparseTranspose' -benchmem .

# Worker-count sweep on this machine (pick Options.Parallelism).
sweep:
	$(GO) run ./cmd/leastbench -exp par-sweep

clean:
	$(GO) clean ./...
