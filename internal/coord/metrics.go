package coord

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Metrics is the coordinator's counter block — all lock-free atomic
// counters (the atomiccounter analyzer enforces atomic-only access),
// rendered by GET /metrics under the least_coord_* prefix alongside
// the per-node liveness gauges. Node-level job counters stay on the
// nodes' own /metrics; the coordinator exposes what only it can see:
// routing, cross-node dedupe, stealing and membership churn.
type Metrics struct {
	// HTTP surface.
	HTTPRequests atomic.Int64 // every routed request

	// Interactive routing.
	JobsRouted        atomic.Int64 // submissions forwarded to a node
	AffinityForwards  atomic.Int64 // forwards redirected by the gossiped cache index
	SingleflightJoins atomic.Int64 // submissions joined onto an identical in-flight job

	// Batch fan-out.
	BatchesSplit         atomic.Int64 // manifests split into per-node sub-manifests
	SubBatchesDispatched atomic.Int64 // sub-batches admitted on nodes (redispatches included)
	TasksDispatched      atomic.Int64 // manifest rows dispatched (redispatches included)

	// Work stealing (skew) and failure handling.
	Steals            atomic.Int64 // successful steal operations
	TasksStolen       atomic.Int64 // rows moved from a loaded node to an idle one
	TasksRedispatched atomic.Int64 // rows re-dispatched off a dead node
	TasksRestartFail  atomic.Int64 // rows failed with the typed restart code (no re-dispatch possible)

	// Membership.
	NodeDeaths   atomic.Int64 // nodes declared dead after consecutive health failures
	NodeRevivals atomic.Int64 // dead nodes readmitted after passing health checks
	GossipSweeps atomic.Int64 // digest collection rounds completed
}

// Metrics returns the coordinator's counter block, for tests and load
// generators that cross-check their own tallies.
func (c *Coordinator) Metrics() *Metrics { return &c.met }

// WriteMetrics renders the Prometheus text exposition: the counter
// block, the cluster gauges, and one least_coord_node_up line per
// member so dashboards see per-node liveness without scraping N
// daemons.
func (c *Coordinator) WriteMetrics(w io.Writer) {
	m := &c.met
	emit := func(name, typ, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, v)
	}
	emit("least_coord_http_requests_total", "counter", "HTTP requests routed through the coordinator.", m.HTTPRequests.Load())
	emit("least_coord_jobs_routed_total", "counter", "Interactive submissions forwarded to a node.", m.JobsRouted.Load())
	emit("least_coord_affinity_forwards_total", "counter", "Forwards redirected to a node by the gossiped cache index.", m.AffinityForwards.Load())
	emit("least_coord_singleflight_joins_total", "counter", "Submissions that joined an identical in-flight job instead of re-solving.", m.SingleflightJoins.Load())
	emit("least_coord_batches_split_total", "counter", "Batch manifests split into per-node sub-manifests.", m.BatchesSplit.Load())
	emit("least_coord_sub_batches_total", "counter", "Sub-batches admitted on nodes, redispatches included.", m.SubBatchesDispatched.Load())
	emit("least_coord_tasks_dispatched_total", "counter", "Manifest rows dispatched to nodes, redispatches included.", m.TasksDispatched.Load())
	emit("least_coord_steals_total", "counter", "Successful lane-steal operations against loaded nodes.", m.Steals.Load())
	emit("least_coord_tasks_stolen_total", "counter", "Rows moved from a loaded node to an idle one.", m.TasksStolen.Load())
	emit("least_coord_tasks_redispatched_total", "counter", "Rows re-dispatched off a dead node.", m.TasksRedispatched.Load())
	emit("least_coord_tasks_restart_failed_total", "counter", "Rows failed with the typed restart code after a node death.", m.TasksRestartFail.Load())
	emit("least_coord_node_deaths_total", "counter", "Nodes declared dead after consecutive health-check failures.", m.NodeDeaths.Load())
	emit("least_coord_node_revivals_total", "counter", "Dead nodes readmitted after passing health checks again.", m.NodeRevivals.Load())
	emit("least_coord_gossip_sweeps_total", "counter", "Cache-digest collection rounds completed.", m.GossipSweeps.Load())

	c.mu.Lock()
	epoch := c.epoch
	indexKeys := c.index.size()
	batches := len(c.batches)
	type up struct {
		name  string
		alive bool
	}
	ups := make([]up, 0, len(c.nodes))
	for _, n := range c.nodes {
		ups = append(ups, up{n.name, n.alive})
	}
	c.mu.Unlock()

	emit("least_coord_epoch", "gauge", "Routing epoch: bumps on every membership or liveness change.", epoch)
	emit("least_coord_index_keys", "gauge", "Distinct result-cache keys in the gossiped index.", int64(indexKeys))
	emit("least_coord_batches", "gauge", "Cluster batches in the coordinator's table.", int64(batches))
	fmt.Fprintf(w, "# HELP least_coord_node_up Per-node liveness (1 alive, 0 dead).\n# TYPE least_coord_node_up gauge\n")
	sort.Slice(ups, func(i, j int) bool { return ups[i].name < ups[j].name })
	alive := 0
	for _, u := range ups {
		v := 0
		if u.alive {
			v = 1
			alive++
		}
		fmt.Fprintf(w, "least_coord_node_up{node=%q} %d\n", u.name, v)
	}
	emit("least_coord_nodes", "gauge", "Cluster members, dead or alive.", int64(len(ups)))
	emit("least_coord_nodes_alive", "gauge", "Cluster members currently passing health checks.", int64(alive))
}
