package coord

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// snapshot renders an index as a canonical map for equality checks.
func (ix *cacheIndex) snapshot() map[string][]string {
	out := make(map[string][]string, len(ix.byKey))
	for k, owners := range ix.byKey {
		names := make([]string, 0, len(owners))
		for n := range owners {
			names = append(names, n)
		}
		sort.Strings(names)
		out[k] = names
	}
	return out
}

// TestGossipMergeIdempotentAndCommutative pins the fold discipline:
// merging the same announcement twice is a no-op, and any order of a
// fixed announcement set converges to the same index — so digest
// arrival order (which the gossip sweep cannot control) never changes
// routing.
func TestGossipMergeIdempotentAndCommutative(t *testing.T) {
	type ann struct {
		node string
		keys []string
	}
	anns := []ann{
		{"a", []string{"k1", "k2"}},
		{"b", []string{"k2", "k3"}},
		{"c", []string{"k1", "k3", "k4"}},
		{"a", []string{"k1", "k2"}}, // exact duplicate
		{"b", []string{"k2"}},       // subset duplicate
	}

	ref := newCacheIndex()
	for _, a := range anns {
		ref.merge(a.node, a.keys)
	}
	want := ref.snapshot()

	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		ix := newCacheIndex()
		for _, i := range rng.Perm(len(anns)) {
			ix.merge(anns[i].node, anns[i].keys)
		}
		if got := ix.snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("merge order changed the index:\n got %v\nwant %v", got, want)
		}
	}

	// Idempotence directly: re-merging everything leaves it unchanged.
	for _, a := range anns {
		ref.merge(a.node, a.keys)
	}
	if got := ref.snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("re-merge changed the index:\n got %v\nwant %v", got, want)
	}
}

// TestGossipOwnerDeterministic pins that lookup resolves conflicting
// announcers to the lexicographically smallest alive one — a pure
// function of the announcement set, not of arrival order — and that
// liveness filtering falls through to the next announcer.
func TestGossipOwnerDeterministic(t *testing.T) {
	ix := newCacheIndex()
	ix.merge("zeta", []string{"k"})
	ix.merge("alpha", []string{"k"})
	ix.merge("mid", []string{"k"})

	if o, ok := ix.owner("k", nil); !ok || o != "alpha" {
		t.Fatalf("owner = %q, want smallest announcer %q", o, "alpha")
	}
	alive := func(n string) bool { return n != "alpha" }
	if o, ok := ix.owner("k", alive); !ok || o != "mid" {
		t.Fatalf("owner with alpha dead = %q, want %q", o, "mid")
	}
	if _, ok := ix.owner("k", func(string) bool { return false }); ok {
		t.Fatal("owner with nobody alive still resolved")
	}
	if _, ok := ix.owner("unknown", nil); ok {
		t.Fatal("owner of an unannounced key resolved")
	}
}

// TestGossipReplaceAndDrop pins staleness handling: replace swaps a
// node's announcement wholesale (evicted keys vanish), drop forgets a
// dead node entirely, and neither disturbs other nodes' announcements.
func TestGossipReplaceAndDrop(t *testing.T) {
	ix := newCacheIndex()
	ix.merge("a", []string{"k1", "k2"})
	ix.merge("b", []string{"k2", "k3"})

	ix.replace("a", []string{"k2", "k9"}) // k1 evicted, k9 new
	want := map[string][]string{
		"k2": {"a", "b"},
		"k3": {"b"},
		"k9": {"a"},
	}
	if got := ix.snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("after replace:\n got %v\nwant %v", got, want)
	}

	ix.drop("a")
	want = map[string][]string{
		"k2": {"b"},
		"k3": {"b"},
	}
	if got := ix.snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("after drop:\n got %v\nwant %v", got, want)
	}
	if ix.size() != 2 {
		t.Fatalf("size = %d, want 2", ix.size())
	}
	ix.drop("a") // dropping an unknown node is a no-op
	if got := ix.snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("double drop changed the index: %v", got)
	}
}

// TestGossipConvergenceProperty drives random announcement/replace/
// drop traffic through two indexes in different orders per round and
// checks both converge once the same final digest set has been applied
// — the replace-per-sweep model's convergence guarantee.
func TestGossipConvergenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nodes := []string{"a", "b", "c", "d"}
	for round := 0; round < 40; round++ {
		// The final digest per node (what the last sweep observed).
		final := make(map[string][]string, len(nodes))
		for _, n := range nodes {
			keys := make([]string, rng.Intn(6))
			for i := range keys {
				keys[i] = fmt.Sprintf("k%d", rng.Intn(8))
			}
			final[n] = keys
		}

		ix1, ix2 := newCacheIndex(), newCacheIndex()
		for _, ix := range []*cacheIndex{ix1, ix2} {
			// Arbitrary stale prefix traffic, different per index.
			for i := 0; i < rng.Intn(10); i++ {
				n := nodes[rng.Intn(len(nodes))]
				switch rng.Intn(3) {
				case 0:
					ix.merge(n, []string{fmt.Sprintf("k%d", rng.Intn(8))})
				case 1:
					ix.replace(n, []string{fmt.Sprintf("k%d", rng.Intn(8))})
				case 2:
					ix.drop(n)
				}
			}
			// One full sweep: every node's final digest, random order.
			for _, i := range rng.Perm(len(nodes)) {
				ix.replace(nodes[i], final[nodes[i]])
			}
		}
		if g1, g2 := ix1.snapshot(), ix2.snapshot(); !reflect.DeepEqual(g1, g2) {
			t.Fatalf("round %d: indexes diverged after identical final sweep:\n ix1 %v\n ix2 %v", round, g1, g2)
		}
	}
}
