package coord

import (
	"context"
	"fmt"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro"
	"repro/internal/serve"
)

// Cluster batches (DESIGN.md §13): a manifest POSTed to the
// coordinator is split into per-node sub-manifests by task fingerprint
// (identical tasks colocate, so in-node dedupe becomes cluster-wide
// dedupe), each sub-manifest is admitted on its node through
// POST /v2/peer/subbatch, and a per-batch poller folds the nodes' task
// tables back into one coordinator-level row table with the original
// manifest indices. Rows move between nodes only through two typed
// events — a steal (donor rows turn "stolen", the thief's sub-batch
// continues them) and a node death (pending and done inline rows
// redispatch to the survivors; by-ref rows fail with the typed
// "restart" code) — and the fold ignores verdicts from a sub-batch
// that no longer owns the row, so a stale donor table cannot overwrite
// the thief's answer.

// crow is one cluster-batch row's live state, behind clusterBatch.mu.
type crow struct {
	manifest least.ManifestTask
	byref    bool   // dataset_ref source: pinned to refNode, never stolen/redispatched
	refNode  string // node owning the referenced dataset
	fp       string // dataset fingerprint (inline rows; routing key)
	key      string // result-cache key ("" when not computable)

	sub      string           // key of the sub-batch currently owning the row; "" = resolved at admission
	last     serve.TaskStatus // latest folded verdict (Job already composite)
	terminal bool
}

// subBatch is one node-local batch carrying a slice of the cluster
// batch's rows, behind clusterBatch.mu.
type subBatch struct {
	key  string // node + "/" + local id
	node string
	id   string // node-local batch id
	rows []int  // cluster row indices, in sub-manifest order
	dead bool   // node lost or rows moved; fold ignores it
}

// clusterBatch aggregates one manifest across the fleet.
type clusterBatch struct {
	c       *Coordinator
	id      string
	created time.Time

	mu       sync.Mutex
	cond     *sync.Cond
	seq      int
	state    serve.BatchState
	finished time.Time
	rows     []*crow
	subs     map[string]*subBatch
	open     int // rows not yet terminal
}

func (cb *clusterBatch) bumpLocked() {
	cb.seq++
	cb.cond.Broadcast()
}

func (cb *clusterBatch) finishLocked(s serve.BatchState) {
	cb.state = s
	cb.finished = time.Now()
}

// SubmitBatch admits a manifest cluster-wide. Tasks that fail
// validation resolve at admission exactly as on a single node; the
// rest split by fingerprint and dispatch.
func (c *Coordinator) SubmitBatch(tasks []least.ManifestTask) (*clusterBatch, error) {
	if len(tasks) == 0 {
		return nil, serve.ErrEmptyBatch
	}
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return nil, serve.ErrShuttingDown
	}
	c.nextBatch++
	id := fmt.Sprintf("cb%08d", c.nextBatch)
	c.mu.Unlock()

	cb := &clusterBatch{
		c:       c,
		id:      id,
		created: time.Now(),
		state:   serve.BatchRunning,
		subs:    make(map[string]*subBatch),
	}
	cb.cond = sync.NewCond(&cb.mu)

	// Resolve every row outside any lock: fingerprinting materializes
	// inline data (the same ManifestTask.Data path the nodes use, so a
	// given task line draws the same typed validation verdict here as
	// it would there).
	for i, t := range tasks {
		r := &crow{manifest: t, last: serve.TaskStatus{Index: i, Label: t.ID, State: serve.Queued}}
		cb.rows = append(cb.rows, r)
		fail := func(err error) {
			r.last.State = serve.Failed
			r.last.Code = serve.TaskCodeValidation
			r.last.Error = err.Error()
			r.terminal = true
		}
		if err := t.Validate(); err != nil {
			fail(err)
			continue
		}
		switch {
		case len(t.In) > 0:
			fail(fmt.Errorf("in: local file sources are not accepted over HTTP; inline the data or use dataset_ref"))
		case t.DatasetRef != "":
			node, local, ok := splitID(t.DatasetRef)
			if !ok {
				fail(fmt.Errorf("dataset_ref %q is not a cluster id (want node.id)", t.DatasetRef))
				continue
			}
			r.byref = true
			r.refNode = node
			r.manifest.DatasetRef = local
		default:
			ds, err := t.Data(least.DatasetOptions{})
			if err != nil {
				fail(err)
				continue
			}
			r.fp = ds.Fingerprint()
			spec := t.Spec
			if spec == nil {
				spec = &least.Spec{} // the node resolves nil the same way; keys must agree
			}
			if key, err := serve.CacheKeyDataset(ds, t.Center, spec); err == nil {
				r.key = key
			}
		}
	}

	// Split by node: by-ref rows go where their dataset lives; inline
	// rows to the cache-index owner of their key when one is alive
	// (affinity), else the rendezvous owner of their fingerprint.
	groups := make(map[string][]int)
	var order []string
	assign := func(node string, idx int) {
		if _, ok := groups[node]; !ok {
			order = append(order, node)
		}
		groups[node] = append(groups[node], idx)
	}
	for i, r := range cb.rows {
		if r.terminal {
			continue
		}
		if r.byref {
			assign(r.refNode, i)
			continue
		}
		node, ok := c.routeKey(r.key, r.fp)
		if !ok {
			r.last.State = serve.Failed
			r.last.Code = TaskCodeNodeDown
			r.last.Error = ErrNoNodes.Error()
			r.terminal = true
			continue
		}
		assign(node, i)
	}

	for _, node := range order {
		cb.dispatch(node, groups[node], false)
	}
	c.met.BatchesSplit.Add(1)

	cb.mu.Lock()
	for _, r := range cb.rows {
		if !r.terminal {
			cb.open++
		}
	}
	if cb.open == 0 {
		cb.finishLocked(serve.BatchDone)
	}
	cb.mu.Unlock()

	c.mu.Lock()
	c.batches[id] = cb
	c.batchOrder = append(c.batchOrder, id)
	c.mu.Unlock()
	c.evictBatches()

	if !cb.Status().State.Terminal() {
		c.wg.Add(1)
		go cb.poll()
	}
	return cb, nil
}

// evictBatches drops the oldest terminal cluster batches past the
// history bound. Terminal-ness is read outside c.mu — cb.mu and c.mu
// are never nested, in either order (nodeLost and dispatch interleave
// them sequentially), so this two-step keeps the ordering trivial.
func (c *Coordinator) evictBatches() {
	const maxBatches = 64
	c.mu.Lock()
	ids := append([]string(nil), c.batchOrder...)
	over := len(c.batches) - maxBatches
	bs := make([]*clusterBatch, len(ids))
	for i, id := range ids {
		bs[i] = c.batches[id]
	}
	c.mu.Unlock()
	if over <= 0 {
		return
	}
	evict := make(map[string]bool)
	for i, cb := range bs {
		if over <= 0 {
			break
		}
		if cb != nil && cb.Status().State.Terminal() {
			evict[ids[i]] = true
			over--
		}
	}
	if len(evict) == 0 {
		return
	}
	c.mu.Lock()
	kept := c.batchOrder[:0]
	for _, id := range c.batchOrder {
		if evict[id] {
			delete(c.batches, id)
			continue
		}
		kept = append(kept, id)
	}
	c.batchOrder = kept
	c.mu.Unlock()
}

// batch resolves a cluster batch by id.
func (c *Coordinator) batch(id string) (*clusterBatch, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cb, ok := c.batches[id]
	return cb, ok
}

// Batches snapshots every known cluster batch in submission order.
func (c *Coordinator) Batches() []serve.BatchStatus {
	c.mu.Lock()
	ids := append([]string(nil), c.batchOrder...)
	bs := make([]*clusterBatch, 0, len(ids))
	for _, id := range ids {
		bs = append(bs, c.batches[id])
	}
	c.mu.Unlock()
	out := make([]serve.BatchStatus, 0, len(bs))
	for _, cb := range bs {
		out = append(out, cb.Status())
	}
	return out
}

// dispatch admits rows on node as one fresh sub-batch. On failure it
// walks the fingerprint's rendezvous failover order across the
// remaining live nodes (redispatch true marks the rows as moved off a
// dead node for the metrics). Rows that no node will take fail typed.
func (cb *clusterBatch) dispatch(node string, rowIdxs []int, redispatch bool) {
	c := cb.c
	tried := map[string]bool{}
	target := node
	for {
		if target != "" && !tried[target] {
			tried[target] = true
			if cb.dispatchTo(target, rowIdxs, redispatch) {
				return
			}
		}
		// Next candidate: the highest-ranked untried live node for the
		// first row's fingerprint (all rows in a group share a routing
		// outcome closely enough; correctness does not depend on the
		// choice, only dedupe locality does).
		c.mu.Lock()
		alive := c.aliveNamesLocked()
		c.mu.Unlock()
		target = ""
		cb.mu.Lock()
		fp := cb.rows[rowIdxs[0]].fp
		cb.mu.Unlock()
		for _, cand := range Ranked(fp, alive) {
			if !tried[cand] {
				target = cand
				break
			}
		}
		if target == "" {
			break
		}
	}
	// Nobody took the work.
	cb.mu.Lock()
	code := TaskCodeNodeDown
	msg := ErrNoNodes.Error()
	if redispatch {
		code = serve.TaskCodeRestart
		msg = serve.ErrRestart.Error()
	}
	for _, i := range rowIdxs {
		r := cb.rows[i]
		if r.terminal {
			continue
		}
		r.last.State = serve.Failed
		r.last.Code = code
		r.last.Error = msg
		r.terminal = true
		cb.open--
		c.met.TasksRestartFail.Add(1)
	}
	if cb.open == 0 && !cb.state.Terminal() {
		cb.finishLocked(serve.BatchDone)
	}
	cb.bumpLocked()
	cb.mu.Unlock()
}

// dispatchTo tries one node; reports whether the sub-batch was
// admitted.
func (cb *clusterBatch) dispatchTo(node string, rowIdxs []int, redispatch bool) bool {
	c := cb.c
	base, ok := c.nodeURL(node)
	if !ok {
		return false
	}
	cb.mu.Lock()
	req := serve.BatchRequest{Tasks: make([]least.ManifestTask, 0, len(rowIdxs))}
	for _, i := range rowIdxs {
		req.Tasks = append(req.Tasks, cb.rows[i].manifest)
	}
	cb.mu.Unlock()

	var st serve.BatchStatus
	if err := c.postJSON(base+"/v2/peer/subbatch", req, &st); err != nil {
		return false
	}
	sub := &subBatch{
		key:  node + "/" + st.ID,
		node: node,
		id:   st.ID,
		rows: append([]int(nil), rowIdxs...),
	}
	cb.mu.Lock()
	cb.subs[sub.key] = sub
	for _, i := range rowIdxs {
		r := cb.rows[i]
		r.sub = sub.key
		if !r.terminal {
			// A redispatched done row reopens: determinism makes the
			// re-solve reproduce the same graph on the survivor.
			r.last.State = serve.Queued
			r.last.Cached = false
			r.last.Deduped = false
			r.last.Job = ""
			r.last.Code = ""
			r.last.Error = ""
		}
	}
	cb.bumpLocked()
	cb.mu.Unlock()
	c.met.SubBatchesDispatched.Add(1)
	c.met.TasksDispatched.Add(int64(len(rowIdxs)))
	if redispatch {
		c.met.TasksRedispatched.Add(int64(len(rowIdxs)))
	}
	return true
}

// poll drives the batch to completion: every PollEvery it folds each
// live sub-batch's task table into the cluster row table.
func (cb *clusterBatch) poll() {
	defer cb.c.wg.Done()
	t := time.NewTicker(cb.c.cfg.PollEvery)
	defer t.Stop()
	for {
		select {
		case <-cb.c.baseCtx.Done():
			return
		case <-t.C:
			cb.PollOnce()
			if cb.Status().State.Terminal() {
				return
			}
		}
	}
}

// PollOnce folds one round of node task tables. Exported through the
// Coordinator for tests that step the cluster deterministically.
func (cb *clusterBatch) PollOnce() {
	cb.mu.Lock()
	subs := make([]*subBatch, 0, len(cb.subs))
	for _, s := range cb.subs {
		if !s.dead {
			subs = append(subs, s)
		}
	}
	cb.mu.Unlock()

	for _, s := range subs {
		base, ok := cb.c.nodeURL(s.node)
		if !ok {
			continue
		}
		var rows []serve.TaskStatus
		offset := 0
		for {
			var page serve.TaskPage
			u := fmt.Sprintf("%s/v2/batches/%s/tasks?offset=%d&limit=1000", base, url.PathEscape(s.id), offset)
			if err := cb.c.getJSON(u, &page); err != nil {
				rows = nil
				break
			}
			rows = append(rows, page.Tasks...)
			offset += len(page.Tasks)
			if offset >= page.Total || len(page.Tasks) == 0 {
				break
			}
		}
		if rows == nil {
			continue // unreachable or unknown this round; health/death handling owns it
		}
		cb.fold(s, rows)
	}
}

// fold applies one sub-batch's task table. Verdicts only land on rows
// the sub still owns; "stolen" rows are in transit to a thief and stay
// open here.
func (cb *clusterBatch) fold(s *subBatch, table []serve.TaskStatus) {
	cb.mu.Lock()
	changed := false
	for _, ts := range table {
		if ts.Index < 0 || ts.Index >= len(s.rows) {
			continue
		}
		r := cb.rows[s.rows[ts.Index]]
		if r.sub != s.key || r.terminal {
			continue
		}
		if ts.Code == serve.TaskCodeStolen {
			continue
		}
		job := ts.Job
		if job != "" {
			job = joinID(s.node, job)
		}
		idx := r.last.Index
		label := r.last.Label
		r.last = ts
		r.last.Index = idx
		r.last.Label = label
		r.last.Job = job
		if ts.State.Terminal() {
			r.terminal = true
			cb.open--
		}
		changed = true
	}
	if changed {
		if cb.open == 0 && !cb.state.Terminal() {
			cb.finishLocked(serve.BatchDone)
		}
		cb.bumpLocked()
	}
	cb.mu.Unlock()
}

// nodeLost reacts to a member death or removal: every sub-batch on the
// node is abandoned, its open and done inline rows redispatch to the
// survivors (bit-identical by determinism), and its by-ref rows fail
// with the typed restart code — the dataset they reference died with
// the node.
func (cb *clusterBatch) nodeLost(node string) {
	c := cb.c
	cb.mu.Lock()
	if cb.state.Terminal() {
		cb.mu.Unlock()
		return
	}
	var moved []int
	for _, s := range cb.subs {
		if s.node != node || s.dead {
			continue
		}
		s.dead = true
		for _, i := range s.rows {
			r := cb.rows[i]
			if r.sub != s.key {
				continue
			}
			if r.byref {
				if !r.terminal {
					r.last.State = serve.Failed
					r.last.Code = serve.TaskCodeRestart
					r.last.Error = serve.ErrRestart.Error()
					r.terminal = true
					cb.open--
					c.met.TasksRestartFail.Add(1)
				}
				continue
			}
			// Inline rows redispatch — including done ones: their graphs
			// lived on the dead node, and a deterministic re-solve on a
			// survivor reproduces them bit-for-bit.
			if r.terminal && r.last.State != serve.Done {
				continue // failed/cancelled verdicts carry no graph; keep them
			}
			if r.terminal {
				r.terminal = false
				cb.open++
			}
			r.sub = ""
			moved = append(moved, i)
		}
	}
	if cb.open == 0 && !cb.state.Terminal() && len(moved) == 0 {
		cb.finishLocked(serve.BatchDone)
	}
	cb.bumpLocked()
	fps := make([]string, len(moved))
	for k, i := range moved {
		fps[k] = cb.rows[i].fp
	}
	cb.mu.Unlock()

	if len(moved) == 0 {
		return
	}
	// Re-split the moved rows by their fingerprints' new owners
	// (c.mu and cb.mu strictly sequential, never nested).
	c.mu.Lock()
	alive := c.aliveNamesLocked()
	c.mu.Unlock()
	groups := make(map[string][]int)
	var order []string
	for k, i := range moved {
		owner, ok := Owner(fps[k], alive)
		if !ok {
			owner = ""
		}
		if _, seen := groups[owner]; !seen {
			order = append(order, owner)
		}
		groups[owner] = append(groups[owner], i)
	}
	for _, n := range order {
		cb.dispatch(n, groups[n], true)
	}
}

// Status folds the row table into the aggregate progress counters.
func (cb *clusterBatch) Status() serve.BatchStatus {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	return cb.statusLocked()
}

func (cb *clusterBatch) statusLocked() serve.BatchStatus {
	st := serve.BatchStatus{
		ID:       cb.id,
		State:    cb.state,
		Total:    len(cb.rows),
		Created:  cb.created,
		Finished: cb.finished,
	}
	for _, r := range cb.rows {
		switch r.last.State {
		case serve.Queued:
			st.Queued++
		case serve.Running:
			st.Running++
		case serve.Done:
			st.Done++
		case serve.Failed:
			st.Failed++
		case serve.Cancelled:
			st.Cancelled++
		}
		if r.last.Cached {
			st.Cached++
		}
		if r.last.Deduped {
			st.Deduped++
		}
	}
	return st
}

// Watch blocks until the batch's observable state advances past seen
// (pass -1 for an immediate snapshot), the batch is terminal, or ctx
// ends — same contract as serve.Batch.Watch, feeding the SSE stream.
func (cb *clusterBatch) Watch(ctx context.Context, seen int) (serve.BatchStatus, int, bool) {
	stop := context.AfterFunc(ctx, func() {
		cb.mu.Lock()
		cb.cond.Broadcast()
		cb.mu.Unlock()
	})
	defer stop()
	cb.mu.Lock()
	defer cb.mu.Unlock()
	for cb.seq == seen && !cb.state.Terminal() && ctx.Err() == nil {
		cb.cond.Wait()
	}
	return cb.statusLocked(), cb.seq, cb.state.Terminal()
}

// Tasks pages the cluster row table, mirroring serve.Batch.Tasks.
func (cb *clusterBatch) Tasks(offset, limit int, state serve.State) ([]serve.TaskStatus, int) {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	rows := []serve.TaskStatus{}
	matched := 0
	for _, r := range cb.rows {
		if state != "" && r.last.State != state {
			continue
		}
		if matched >= offset && (limit <= 0 || len(rows) < limit) {
			rows = append(rows, r.last)
		}
		matched++
	}
	return rows, matched
}

// Cancel stops the cluster batch: rows are marked immediately, then
// each live sub-batch is cancelled on its node best-effort.
func (cb *clusterBatch) Cancel() (serve.BatchStatus, error) {
	cb.mu.Lock()
	switch cb.state {
	case serve.BatchDone:
		cb.mu.Unlock()
		return cb.Status(), serve.ErrBatchFinished
	case serve.BatchCancelled:
		cb.mu.Unlock()
		return cb.Status(), nil
	}
	type target struct{ node, id string }
	var targets []target
	for _, s := range cb.subs {
		if !s.dead {
			targets = append(targets, target{s.node, s.id})
		}
	}
	for _, r := range cb.rows {
		if !r.terminal {
			r.last.State = serve.Cancelled
			r.last.Code = serve.TaskCodeCancelled
			r.last.Error = "batch cancelled"
			r.terminal = true
			cb.open--
		}
	}
	cb.finishLocked(serve.BatchCancelled)
	cb.bumpLocked()
	cb.mu.Unlock()

	for _, t := range targets {
		if base, ok := cb.c.nodeURL(t.node); ok {
			_ = cb.c.doJSON(cb.c.baseCtx, "DELETE", base+"/v2/batches/"+url.PathEscape(t.id), nil, nil)
		}
	}
	return cb.Status(), nil
}

// pendingByNode counts queued rows per node across this batch (for the
// steal loop's skew scan). Dead subs contribute nothing.
func (cb *clusterBatch) pendingByNode(into map[string]int) {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	for _, s := range cb.subs {
		if s.dead {
			continue
		}
		for _, i := range s.rows {
			r := cb.rows[i]
			if r.sub == s.key && !r.terminal && r.last.State == serve.Queued {
				into[s.node]++
			}
		}
	}
}

// biggestPendingSub returns the live sub-batch on node with the most
// queued rows (and that count).
func (cb *clusterBatch) biggestPendingSub(node string) (*subBatch, int) {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	var best *subBatch
	bestN := 0
	keys := make([]string, 0, len(cb.subs))
	for k := range cb.subs {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic choice under equal counts
	for _, k := range keys {
		s := cb.subs[k]
		if s.dead || s.node != node {
			continue
		}
		n := 0
		for _, i := range s.rows {
			r := cb.rows[i]
			if r.sub == s.key && !r.terminal && r.last.State == serve.Queued {
				n++
			}
		}
		if n > bestN {
			best, bestN = s, n
		}
	}
	return best, bestN
}
