// Package coord is the fleet coordinator (DESIGN.md §13): an HTTP
// front that shards work across N leastd nodes by dataset fingerprint
// — rendezvous hashing for cache and dataset affinity, a gossiped
// cache index for cross-node dedupe, tail-stealing of pending batch
// lanes for skew, and health-checked membership with typed
// degradation. cmd/leastcoord serves it; everything it speaks is the
// existing v2 wire surface, so clients cannot tell one node from a
// fleet.
package coord

import (
	"hash/fnv"
	"sort"
)

// Rendezvous (highest-random-weight) hashing: every (key, node) pair
// gets an independent pseudo-random score and the key belongs to the
// highest-scoring live node. Removing a node reassigns only the keys
// it owned (they fall to their second-ranked choice) and adding a node
// moves only the keys it now wins — the churn-stability property the
// routing tests pin. No virtual-node ring state to maintain: the score
// is a pure function, so every coordinator incarnation routes
// identically from the membership list alone.

// score hashes one (node, key) pair. FNV-1a over node\x00key: cheap,
// stateless, stable across processes.
func score(node, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// Owner returns the rendezvous owner of key among nodes (highest
// score; ties break toward the lexicographically smaller name so the
// choice is deterministic). ok is false when nodes is empty.
func Owner(key string, nodes []string) (string, bool) {
	var (
		best  string
		bestS uint64
		found bool
	)
	for _, n := range nodes {
		s := score(n, key)
		if !found || s > bestS || (s == bestS && n < best) {
			best, bestS, found = n, s, true
		}
	}
	return best, found
}

// Ranked returns nodes ordered by descending rendezvous score for key
// — the failover order: when the owner dies, the key's work reassigns
// to the next-ranked live node, and no key owned by a surviving node
// moves at all.
func Ranked(key string, nodes []string) []string {
	out := append([]string(nil), nodes...)
	sort.Slice(out, func(i, j int) bool {
		si, sj := score(out[i], key), score(out[j], key)
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}
