package coord

// The coordinator routing benchmarks behind the nightly CoordRoute
// perf gate (BENCH_PR10.json): what one proxy hop costs a status read
// versus hitting the node directly, and what the pure rendezvous
// decision costs per key. Regressions here tax every request the
// fleet serves, so bench-check holds them to the committed trajectory.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
	"repro/internal/serve"
)

func contextTimeout() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 10*time.Second)
}

// benchFleet boots one node with a solved job plus a coordinator, and
// returns the two base URLs and the job's local and composite IDs.
func benchFleet(b *testing.B) (nodeURL, coordURL, localID, compositeID string) {
	b.Helper()
	mgr := serve.NewManager(serve.Config{MaxConcurrent: 1, QueueDepth: 64, MaxHistory: 1 << 10})
	nsrv := httptest.NewServer(serve.NewAPI(mgr).Handler())
	c, err := New(Config{
		Nodes:       []NodeConfig{{Name: "n0", URL: nsrv.URL}},
		HealthEvery: time.Hour,
		GossipEvery: time.Hour,
		StealEvery:  time.Hour,
		PollEvery:   5 * time.Millisecond,
	})
	if err != nil {
		b.Fatalf("coord.New: %v", err)
	}
	c.CheckHealth()
	csrv := httptest.NewServer(c.Handler())
	b.Cleanup(func() {
		csrv.Close()
		ctx, cancel := contextTimeout()
		c.Shutdown(ctx)
		cancel()
		nsrv.Close()
		ctx, cancel = contextTimeout()
		mgr.Shutdown(ctx)
		cancel()
	})

	truth := least.GenerateDAG(1, least.ErdosRenyi, 6, 2)
	x := least.SampleLSEM(2, truth, 32, least.GaussianNoise)
	rows := make([][]float64, x.Rows())
	for i := range rows {
		rows[i] = x.Row(i)
	}
	body, _ := json.Marshal(serve.SubmitRequestV2{Samples: rows})
	resp, err := http.Post(csrv.URL+"/v2/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatalf("submit: %v", err)
	}
	var st serve.StatusV2
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		b.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(time.Minute)
	for st.State != serve.Done {
		if st.State.Terminal() || time.Now().After(deadline) {
			b.Fatalf("bench job never finished: %+v", st.Status)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(csrv.URL + "/v2/jobs/" + st.ID)
		if err != nil {
			b.Fatalf("poll: %v", err)
		}
		_ = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
	}
	_, local, _ := splitID(st.ID)
	return nsrv.URL, csrv.URL, local, st.ID
}

func getDiscard(b *testing.B, url string) {
	resp, err := http.Get(url)
	if err != nil {
		b.Fatalf("GET %s: %v", url, err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// BenchmarkCoordRoute measures the per-request routing cost: "direct"
// is the node's own status read (the floor), "proxy" the same read
// through the coordinator (floor + one hop + ID rewrite), "ring" the
// bare rendezvous decision across an 8-node membership.
func BenchmarkCoordRoute(b *testing.B) {
	nodeURL, coordURL, localID, compositeID := benchFleet(b)

	b.Run("direct", func(b *testing.B) {
		url := nodeURL + "/v2/jobs/" + localID
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			getDiscard(b, url)
		}
	})
	b.Run("proxy", func(b *testing.B) {
		url := coordURL + "/v2/jobs/" + compositeID
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			getDiscard(b, url)
		}
	})
	b.Run("ring", func(b *testing.B) {
		nodes := make([]string, 8)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%02d", i)
		}
		keys := make([]string, 512)
		for i := range keys {
			keys[i] = fmt.Sprintf("sha256:%032x", i*2654435761)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := Owner(keys[i%len(keys)], nodes); !ok {
				b.Fatal("no owner")
			}
		}
	})
}
