package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/serve"
)

// TaskCode aliases the serve-layer typed verdict codes: every failure
// the coordinator synthesizes into a status or task row must carry one
// of the declared constants (the typederr analyzer enforces this here
// exactly as it does in internal/serve, DESIGN.md §7).
type TaskCode = serve.TaskCode

// Coordinator-specific verdict codes, alongside the serve-layer set
// (serve.TaskCodeRestart marks work lost to a node death — the same
// "a clean resubmission will succeed" contract as a daemon restart).
const (
	// TaskCodeNodeDown marks an operation addressed to a cluster member
	// that is currently failing health checks.
	TaskCodeNodeDown TaskCode = "node_down"
)

// Sentinel errors of the coordinator API.
var (
	// ErrNoNodes is returned when no cluster member is alive to take
	// the work.
	ErrNoNodes = errors.New("coord: no live nodes")
	// ErrUnknownNode is returned for membership operations naming a
	// node the coordinator has never adopted.
	ErrUnknownNode = errors.New("coord: unknown node")
	// ErrNodeExists is returned when adding a member whose name is
	// already taken.
	ErrNodeExists = errors.New("coord: node already registered")
	// ErrBadNodeName rejects member names that cannot be embedded in
	// the coordinator's "<node>.<id>" composite identifiers.
	ErrBadNodeName = errors.New(`coord: node name must be non-empty and contain no "." or "/"`)
)

// NodeConfig names one cluster member at construction time.
type NodeConfig struct {
	Name string
	URL  string
}

// Config parameterizes a Coordinator. Zero values pick the defaults.
type Config struct {
	// Nodes is the initial membership (journal replay, when enabled,
	// is folded in first; flag-listed nodes then upsert by name).
	Nodes []NodeConfig
	// HealthEvery is the health-check cadence (default 500ms).
	HealthEvery time.Duration
	// FailAfter is how many consecutive health-check failures declare
	// a node dead (default 2).
	FailAfter int
	// GossipEvery is the cache-digest collection cadence (default
	// 500ms).
	GossipEvery time.Duration
	// StealEvery is the skew-scan cadence (default 250ms).
	StealEvery time.Duration
	// StealMin is the minimum pending-row count on the most-loaded
	// node before stealing kicks in (default 4).
	StealMin int
	// PollEvery is the sub-batch progress poll cadence (default 25ms).
	PollEvery time.Duration
	// JournalDir, when set, makes membership durable: member adds and
	// drops and routing-epoch bumps are journaled, and a restarted
	// coordinator re-adopts the last known fleet (DESIGN.md §13).
	JournalDir string
	// Client issues every node-facing request (default: a dedicated
	// client with sane timeouts on everything except streaming).
	Client *http.Client
}

func (cfg Config) withDefaults() Config {
	if cfg.HealthEvery <= 0 {
		cfg.HealthEvery = 500 * time.Millisecond
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 2
	}
	if cfg.GossipEvery <= 0 {
		cfg.GossipEvery = 500 * time.Millisecond
	}
	if cfg.StealEvery <= 0 {
		cfg.StealEvery = 250 * time.Millisecond
	}
	if cfg.StealMin <= 0 {
		cfg.StealMin = 4
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 25 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 0} // streaming (SSE) must not time out
	}
	return cfg
}

// node is one cluster member's live state, behind Coordinator.mu.
type node struct {
	name, url string
	alive     bool
	fails     int // consecutive health-check failures
	lastSeen  time.Time
	healthz   json.RawMessage // last successful /healthz body, for aggregation
}

// coordJob is the coordinator's record of one interactive job it
// forwarded: enough to answer status requests after the owning node
// dies. Behind Coordinator.mu.
type coordJob struct {
	id          string // composite "<node>.<local>"
	node, local string
	key         string         // result-cache key ("" when not computable)
	last        serve.StatusV2 // last proxied status (composite id)
	orphaned    bool           // owning node died before a terminal status was seen
}

// Journal record types and payloads (DESIGN.md §13). The coordinator
// journals membership, not work: jobs and batches are deliberately not
// replicated — a restarted coordinator re-adopts the fleet and fresh
// routing state, and in-flight cluster batches die with it (their
// tasks are still journaled on the nodes, per DESIGN.md §11).
const (
	recMember     = "member"
	recMemberDrop = "member_drop"
	recEpoch      = "epoch"
)

// MemberRecord is the journaled wire form of one membership change.
type MemberRecord struct {
	Name string `json:"name"`
	URL  string `json:"url,omitempty"`
}

// EpochRecord journals a routing-epoch bump and its cause, so a
// restarted coordinator resumes from a strictly larger epoch.
type EpochRecord struct {
	Epoch  int64  `json:"epoch"`
	Reason string `json:"reason,omitempty"`
	Node   string `json:"node,omitempty"`
}

// Coordinator fronts N leastd nodes behind the v2 wire surface. It is
// safe for concurrent use by HTTP handlers; construct with New and
// stop with Shutdown.
type Coordinator struct {
	cfg    Config
	met    Metrics
	client *http.Client
	jnl    *journal.Writer // nil when membership journaling is disabled

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu         sync.Mutex
	nodes      map[string]*node
	epoch      int64
	index      *cacheIndex
	jobs       map[string]*coordJob // composite id → record
	inflight   map[string]string    // cache key → composite id (coordinator singleflight)
	batches    map[string]*clusterBatch
	batchOrder []string
	nextBatch  int
	draining   bool
}

// New starts a coordinator: journal replay (when configured) rebuilds
// the last known membership, cfg.Nodes upserts on top, and the health,
// gossip and steal loops start. Every configured node starts alive and
// is verified by the first health sweep.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:        cfg,
		client:     cfg.Client,
		baseCtx:    ctx,
		baseCancel: cancel,
		nodes:      make(map[string]*node),
		index:      newCacheIndex(),
		jobs:       make(map[string]*coordJob),
		inflight:   make(map[string]string),
		batches:    make(map[string]*clusterBatch),
	}
	if cfg.JournalDir != "" {
		if err := c.replayJournal(cfg.JournalDir); err != nil {
			cancel()
			return nil, err
		}
		// Membership changes are rare and must survive a crash that
		// follows them immediately: fsync every append.
		w, err := journal.Open(cfg.JournalDir, journal.Options{})
		if err != nil {
			cancel()
			return nil, err
		}
		c.jnl = w
		// Re-journal the adopted membership once so a fresh segment
		// after compaction is self-contained.
		for _, n := range c.nodes {
			c.emit(recMember, MemberRecord{Name: n.name, URL: n.url})
		}
		c.emit(recEpoch, EpochRecord{Epoch: c.epoch, Reason: "restart"})
	}
	for _, nc := range cfg.Nodes {
		if err := c.addNodeLocked(nc.Name, nc.URL); err != nil && !errors.Is(err, ErrNodeExists) {
			cancel()
			if c.jnl != nil {
				c.jnl.Close()
			}
			return nil, err
		}
	}
	c.wg.Add(3)
	go c.loop(cfg.HealthEvery, c.CheckHealth)
	go c.loop(cfg.GossipEvery, c.SyncGossip)
	go c.loop(cfg.StealEvery, func() { c.StealOnce() })
	return c, nil
}

// loop ticks fn every interval until shutdown.
func (c *Coordinator) loop(every time.Duration, fn func()) {
	defer c.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-t.C:
			fn()
		}
	}
}

// Shutdown stops the loops, waits for the batch pollers to exit, and
// closes the membership journal. In-flight cluster batches are
// abandoned (deliberately not replicated; see DESIGN.md §13).
func (c *Coordinator) Shutdown(ctx context.Context) {
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		c.wg.Wait()
		return
	}
	c.draining = true
	c.mu.Unlock()
	c.baseCancel()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
	if c.jnl != nil {
		_ = c.jnl.Close()
	}
}

// replayJournal folds the membership journal: member / member_drop
// records apply in order (last write per name wins — the natural fold
// for a membership log) and the epoch resumes from the largest value
// seen, bumped once for the restart itself.
func (c *Coordinator) replayJournal(dir string) error {
	count, corrupt, err := journal.Replay(dir, func(r journal.Record) error {
		switch r.Type {
		case recMember:
			var mr MemberRecord
			if err := json.Unmarshal(r.Data, &mr); err != nil {
				return err
			}
			if validNodeName(mr.Name) == nil {
				c.nodes[mr.Name] = &node{name: mr.Name, url: mr.URL, alive: true}
			}
		case recMemberDrop:
			var mr MemberRecord
			if err := json.Unmarshal(r.Data, &mr); err != nil {
				return err
			}
			delete(c.nodes, mr.Name)
		case recEpoch:
			var er EpochRecord
			if err := json.Unmarshal(r.Data, &er); err != nil {
				return err
			}
			if er.Epoch > c.epoch {
				c.epoch = er.Epoch
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("coord: journal replay: %w", err)
	}
	if corrupt != nil {
		// Same torn-tail tolerance as the daemon (DESIGN.md §11): a
		// truncated record marks the crash point; everything before it
		// replayed.
		_ = corrupt
	}
	if count > 0 {
		c.epoch++
	}
	return nil
}

// emit journals one membership record (no-op when journaling is
// disabled). Journal failures are deliberately non-fatal at runtime:
// losing durability degrades restart re-adoption, not routing.
func (c *Coordinator) emit(typ string, payload any) {
	if c.jnl == nil {
		return
	}
	b, err := json.Marshal(payload)
	if err != nil {
		return
	}
	_ = c.jnl.Append(typ, b)
}

func validNodeName(name string) error {
	if name == "" || strings.ContainsAny(name, "./") {
		return ErrBadNodeName
	}
	return nil
}

// AddNode admits a member (idempotent on identical name+URL). The node
// starts alive and the next health sweep verifies it.
func (c *Coordinator) AddNode(name, url string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addNodeLocked(name, url)
}

func (c *Coordinator) addNodeLocked(name, url string) error {
	if err := validNodeName(name); err != nil {
		return err
	}
	if ex, ok := c.nodes[name]; ok {
		if ex.url == url {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrNodeExists, name)
	}
	c.nodes[name] = &node{name: name, url: strings.TrimRight(url, "/"), alive: true}
	c.bumpEpochLocked("member_added", name)
	c.emit(recMember, MemberRecord{Name: name, URL: strings.TrimRight(url, "/")})
	return nil
}

// RemoveNode retires a member: its keyspace reassigns (epoch bump) and
// its in-flight work is handled exactly like a death.
func (c *Coordinator) RemoveNode(name string) error {
	c.mu.Lock()
	n, ok := c.nodes[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	delete(c.nodes, name)
	c.index.drop(name)
	c.orphanJobsLocked(name)
	c.bumpEpochLocked("member_removed", name)
	c.emit(recMemberDrop, MemberRecord{Name: name})
	batches := c.liveBatchesLocked()
	c.mu.Unlock()
	_ = n
	for _, cb := range batches {
		cb.nodeLost(name)
	}
	return nil
}

// bumpEpochLocked advances the routing epoch and journals the bump.
// Caller holds c.mu.
func (c *Coordinator) bumpEpochLocked(reason, nodeName string) {
	c.epoch++
	c.emit(recEpoch, EpochRecord{Epoch: c.epoch, Reason: reason, Node: nodeName})
}

// aliveNamesLocked returns the live member names. Caller holds c.mu.
func (c *Coordinator) aliveNamesLocked() []string {
	out := make([]string, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.alive {
			out = append(out, n.name)
		}
	}
	return out
}

// isAliveLocked reports liveness for one member. Caller holds c.mu.
func (c *Coordinator) isAliveLocked(name string) bool {
	n, ok := c.nodes[name]
	return ok && n.alive
}

// nodeURL resolves a member's base URL (alive or not).
func (c *Coordinator) nodeURL(name string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[name]
	if !ok {
		return "", false
	}
	return n.url, true
}

// routeKey picks the node for a routing key: the gossiped cache index
// first (affinity beats placement — the owning node answers from its
// result cache), then the rendezvous owner among live nodes.
func (c *Coordinator) routeKey(cacheKey, fingerprint string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cacheKey != "" {
		if owner, ok := c.index.owner(cacheKey, c.isAliveLocked); ok {
			c.met.AffinityForwards.Add(1)
			return owner, true
		}
	}
	return Owner(fingerprint, c.aliveNamesLocked())
}

// liveBatchesLocked snapshots the non-terminal cluster batches. Caller
// holds c.mu.
func (c *Coordinator) liveBatchesLocked() []*clusterBatch {
	out := make([]*clusterBatch, 0, len(c.batches))
	for _, cb := range c.batches {
		out = append(out, cb)
	}
	return out
}

// CheckHealth runs one health sweep: every member's /healthz is
// probed; FailAfter consecutive failures declare a node dead (typed
// degradation — its keyspace reassigns, its interactive jobs fail with
// the typed restart code, its pending batch rows redispatch), and a
// dead node that answers again is readmitted with a fresh epoch.
// Exported so tests and cmd/leastcoord can force a sweep.
func (c *Coordinator) CheckHealth() {
	c.mu.Lock()
	targets := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		targets = append(targets, n)
	}
	c.mu.Unlock()

	type verdict struct {
		n    *node
		body json.RawMessage
		err  error
	}
	verdicts := make([]verdict, len(targets))
	var wg sync.WaitGroup
	for i, n := range targets {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			body, err := c.probe(n.url + "/healthz")
			verdicts[i] = verdict{n: n, body: body, err: err}
		}(i, n)
	}
	wg.Wait()

	var died, revived []string
	c.mu.Lock()
	for _, v := range verdicts {
		if cur, ok := c.nodes[v.n.name]; !ok || cur != v.n {
			continue // removed or replaced mid-probe
		}
		if v.err == nil {
			v.n.fails = 0
			v.n.lastSeen = time.Now()
			v.n.healthz = v.body
			if !v.n.alive {
				v.n.alive = true
				revived = append(revived, v.n.name)
				c.met.NodeRevivals.Add(1)
				c.bumpEpochLocked("revived", v.n.name)
			}
			continue
		}
		v.n.fails++
		if v.n.alive && v.n.fails >= c.cfg.FailAfter {
			v.n.alive = false
			v.n.healthz = nil
			died = append(died, v.n.name)
			c.met.NodeDeaths.Add(1)
			c.index.drop(v.n.name)
			c.orphanJobsLocked(v.n.name)
			c.bumpEpochLocked("died", v.n.name)
		}
	}
	var batches []*clusterBatch
	if len(died) > 0 {
		batches = c.liveBatchesLocked()
	}
	c.mu.Unlock()

	for _, name := range died {
		for _, cb := range batches {
			cb.nodeLost(name)
		}
	}
	_ = revived
}

// probe GETs one node endpoint with a bounded deadline, returning the
// body on 200.
func (c *Coordinator) probe(url string) (json.RawMessage, error) {
	timeout := c.cfg.HealthEvery
	if timeout > time.Second {
		timeout = time.Second
	}
	ctx, cancel := context.WithTimeout(c.baseCtx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("coord: %s: HTTP %d", url, resp.StatusCode)
	}
	return body, nil
}

// orphanJobsLocked fails every non-terminal interactive job routed to
// a now-dead node with the existing typed restart code — the same
// verdict a daemon restart gives interrupted work (DESIGN.md §11).
// Caller holds c.mu.
func (c *Coordinator) orphanJobsLocked(nodeName string) {
	for _, cj := range c.jobs {
		if cj.node != nodeName || cj.orphaned || cj.last.State.Terminal() {
			continue
		}
		cj.orphaned = true
		cj.last.State = serve.Failed
		cj.last.Code = serve.TaskCodeRestart
		cj.last.Error = serve.ErrRestart.Error()
		if c.inflight[cj.key] == cj.id {
			delete(c.inflight, cj.key)
		}
	}
}

// SyncGossip runs one digest sweep: every live node's cache digest is
// collected and replaces that node's slice of the index. Exported so
// tests can force convergence without waiting out the ticker.
func (c *Coordinator) SyncGossip() {
	c.mu.Lock()
	type target struct{ name, url string }
	targets := make([]target, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.alive {
			targets = append(targets, target{n.name, n.url})
		}
	}
	c.mu.Unlock()

	digests := make([][]string, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t target) {
			defer wg.Done()
			body, err := c.probe(t.url + "/v2/peer/cache-digest")
			if err != nil {
				return
			}
			var d serve.CacheDigest
			if json.Unmarshal(body, &d) == nil {
				digests[i] = d.Keys
				if digests[i] == nil {
					digests[i] = []string{}
				}
			}
		}(i, t)
	}
	wg.Wait()

	c.mu.Lock()
	for i, t := range targets {
		if digests[i] == nil {
			continue // unreachable this round; health sweep owns the verdict
		}
		if c.isAliveLocked(t.name) {
			c.index.replace(t.name, digests[i])
		}
	}
	c.mu.Unlock()
	c.met.GossipSweeps.Add(1)
}
