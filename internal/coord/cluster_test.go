package coord

// The in-process cluster drills (DESIGN.md §13): three real leastd
// stacks — manager, API handler, HTTP listener — behind one
// coordinator, driven through the coordinator's public surface under
// the race detector. Background cadences are set to an hour so every
// sweep (health, gossip, steal) runs only when a test invokes it;
// only the sub-batch poller runs on its own clock. `make test-cluster`
// owns this file.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
	"repro/internal/serve"
)

type testNode struct {
	name string
	mgr  *serve.Manager
	srv  *httptest.Server
}

type testCluster struct {
	t     *testing.T
	nodes []*testNode
	c     *Coordinator
	srv   *httptest.Server // the coordinator's public surface
}

// newTestCluster boots n node stacks and a coordinator fronting them,
// health-checked once so every node starts alive. Background loops are
// parked on hour-long cadences; tests drive CheckHealth / SyncGossip /
// StealOnce explicitly for determinism.
func newTestCluster(t *testing.T, n, pool int, journalDir string) *testCluster {
	t.Helper()
	tc := &testCluster{t: t}
	var members []NodeConfig
	for i := 0; i < n; i++ {
		mgr := serve.NewManager(serve.Config{
			MaxConcurrent: pool, QueueDepth: 4096, MaxHistory: 1 << 16, BatchBacklog: 4096,
		})
		srv := httptest.NewServer(serve.NewAPI(mgr).Handler())
		node := &testNode{name: fmt.Sprintf("n%d", i), mgr: mgr, srv: srv}
		tc.nodes = append(tc.nodes, node)
		members = append(members, NodeConfig{Name: node.name, URL: srv.URL})
	}
	c, err := New(Config{
		Nodes:       members,
		HealthEvery: time.Hour,
		GossipEvery: time.Hour,
		StealEvery:  time.Hour,
		PollEvery:   5 * time.Millisecond,
		FailAfter:   2,
		JournalDir:  journalDir,
	})
	if err != nil {
		t.Fatalf("coord.New: %v", err)
	}
	tc.c = c
	c.CheckHealth()
	tc.srv = httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		tc.srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		c.Shutdown(ctx)
		cancel()
		for _, n := range tc.nodes {
			n.srv.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			n.mgr.Shutdown(ctx)
			cancel()
		}
	})
	return tc
}

func (tc *testCluster) node(name string) *testNode {
	for _, n := range tc.nodes {
		if n.name == name {
			return n
		}
	}
	tc.t.Fatalf("unknown node %q", name)
	return nil
}

func (tc *testCluster) names() []string {
	out := make([]string, len(tc.nodes))
	for i, n := range tc.nodes {
		out[i] = n.name
	}
	return out
}

// post / get are JSON round-trips against the coordinator surface.
func (tc *testCluster) post(path string, body, out any) int {
	tc.t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		tc.t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(tc.srv.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		tc.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			tc.t.Fatalf("POST %s: decode: %v", path, err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

func (tc *testCluster) get(path string, out any) int {
	tc.t.Helper()
	resp, err := http.Get(tc.srv.URL + path)
	if err != nil {
		tc.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			tc.t.Fatalf("GET %s: decode: %v", path, err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// getRaw fetches raw bytes (graph comparisons need exact bytes).
func (tc *testCluster) getRaw(path string) (int, []byte) {
	tc.t.Helper()
	resp, err := http.Get(tc.srv.URL + path)
	if err != nil {
		tc.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		tc.t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, b
}

// clusterTask builds one inline learn task from a seed: unique seeds
// give unique datasets (and fingerprints), equal seeds identical ones.
func clusterTask(id string, seed int64, d, n int) least.ManifestTask {
	truth := least.GenerateDAG(seed, least.ErdosRenyi, d, 2)
	x := least.SampleLSEM(seed+1, truth, n, least.GaussianNoise)
	rows := make([][]float64, x.Rows())
	for i := range rows {
		rows[i] = x.Row(i)
	}
	sp, _ := least.New(
		least.WithLambda(0.2),
		least.WithEpsilon(1e-3),
		least.WithSeed(seed),
		least.WithParallelism(1),
	)
	return least.ManifestTask{ID: id, Samples: rows, Spec: sp}
}

// taskFingerprint resolves the dataset fingerprint a task routes by.
func taskFingerprint(t *testing.T, mt least.ManifestTask) string {
	t.Helper()
	ds, err := mt.Data(least.DatasetOptions{})
	if err != nil {
		t.Fatalf("task data: %v", err)
	}
	return ds.Fingerprint()
}

type batchWire struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Total     int    `json:"total"`
	Done      int    `json:"done"`
	Failed    int    `json:"failed"`
	Cancelled int    `json:"cancelled"`
	Cached    int    `json:"cached"`
	Deduped   int    `json:"deduped"`
}

// waitBatch polls the coordinator until the batch leaves running.
func (tc *testCluster) waitBatch(id string, timeout time.Duration) batchWire {
	tc.t.Helper()
	deadline := time.Now().Add(timeout)
	var st batchWire
	for {
		if code := tc.get("/v2/batches/"+id, &st); code != 200 {
			tc.t.Fatalf("GET batch %s: HTTP %d", id, code)
		}
		if st.State != string(serve.BatchRunning) {
			return st
		}
		if time.Now().After(deadline) {
			tc.t.Fatalf("batch %s still running after %v: %+v", id, timeout, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// batchTasks pages the full cluster task table.
func (tc *testCluster) batchTasks(id string) []serve.TaskStatus {
	tc.t.Helper()
	var out []serve.TaskStatus
	for {
		var page struct {
			Total int                `json:"total"`
			Tasks []serve.TaskStatus `json:"tasks"`
		}
		if code := tc.get(fmt.Sprintf("/v2/batches/%s/tasks?offset=%d&limit=1000", id, len(out)), &page); code != 200 {
			tc.t.Fatalf("GET batch tasks: HTTP %d", code)
		}
		out = append(out, page.Tasks...)
		if len(out) >= page.Total || len(page.Tasks) == 0 {
			return out
		}
	}
}

// solveCount sums real solves across the fleet: every done job minus
// the born-done cache answers (deduped tasks never mint a job at all).
func (tc *testCluster) solveCount() int64 {
	var solves int64
	for _, n := range tc.nodes {
		m := n.mgr.Metrics()
		solves += m.JobsDone.Load() - m.BatchTasksCached.Load()
	}
	return solves
}

// TestClusterCrossNodeDedupe is the acceptance pin: a 1,000-task
// manifest with 100 unique datasets (10 copies each) costs exactly 100
// solves cluster-wide. Fingerprint sharding colocates the copies, so
// in-node dedupe (in-flight joins + result cache) is cluster-wide
// dedupe — no node ever re-solves another node's dataset.
func TestClusterCrossNodeDedupe(t *testing.T) {
	tc := newTestCluster(t, 3, 2, "")
	const unique, copies = 100, 10
	req := serve.BatchRequest{}
	for i := 0; i < unique*copies; i++ {
		req.Tasks = append(req.Tasks, clusterTask(fmt.Sprintf("t%04d", i), int64(1000+i%unique), 6, 40))
	}

	var st batchWire
	if code := tc.post("/v2/batches", req, &st); code != 200 && code != 202 {
		t.Fatalf("submit: HTTP %d", code)
	}
	st = tc.waitBatch(st.ID, 3*time.Minute)

	if st.Done != unique*copies || st.Failed != 0 || st.Cancelled != 0 {
		t.Fatalf("batch terminal state: %+v", st)
	}
	if st.Cached+st.Deduped != unique*(copies-1) {
		t.Errorf("cached+deduped = %d+%d, want %d", st.Cached, st.Deduped, unique*(copies-1))
	}
	if got := tc.solveCount(); got != unique {
		t.Errorf("cluster-wide solves = %d, want exactly %d", got, unique)
	}
	for _, n := range tc.nodes {
		if f := n.mgr.Metrics().JobsFailed.Load(); f != 0 {
			t.Errorf("node %s: %d failed jobs", n.name, f)
		}
	}
}

// TestClusterKillNodeFailover kills one node mid-batch and checks the
// typed-degradation contract: the batch still completes with every row
// done, the learned graphs are bit-identical to an unkilled reference
// cluster's (redispatched rows re-solve deterministically), and the
// dead node's in-flight interactive job surfaces the typed "restart"
// code instead of hanging or vanishing.
func TestClusterKillNodeFailover(t *testing.T) {
	const tasks = 30
	manifest := serve.BatchRequest{}
	for i := 0; i < tasks; i++ {
		manifest.Tasks = append(manifest.Tasks, clusterTask(fmt.Sprintf("t%04d", i), int64(5000+i), 8, 48))
	}

	// Reference: same manifest, nobody dies.
	ref := newTestCluster(t, 3, 1, "")
	var rst batchWire
	if code := ref.post("/v2/batches", manifest, &rst); code != 200 && code != 202 {
		t.Fatalf("reference submit: HTTP %d", code)
	}
	rst = ref.waitBatch(rst.ID, 3*time.Minute)
	if rst.Done != tasks {
		t.Fatalf("reference batch: %+v", rst)
	}
	refGraphs := make(map[int][]byte)
	for _, ts := range ref.batchTasks(rst.ID) {
		code, body := ref.getRaw("/v2/jobs/" + ts.Job + "/graph")
		if code != 200 {
			t.Fatalf("reference graph %s: HTTP %d", ts.Job, code)
		}
		refGraphs[ts.Index] = body
	}

	// Victim cluster: pick the node owning the most rows, so the kill
	// strands real work.
	tc := newTestCluster(t, 3, 1, "")
	owned := make(map[string]int)
	for _, mt := range manifest.Tasks {
		o, _ := Owner(taskFingerprint(t, mt), tc.names())
		owned[o]++
	}
	victim := tc.names()[0]
	for n, k := range owned {
		if k > owned[victim] {
			victim = n
		}
	}

	// One slow interactive job routed to the victim: scan seeds until
	// the ring places one there.
	var interactiveID string
	for seed := int64(9000); ; seed++ {
		mt := clusterTask("", seed, 16, 120)
		if o, _ := Owner(taskFingerprint(t, mt), tc.names()); o != victim {
			continue
		}
		sp, _ := least.New(least.WithLambda(0.05), least.WithEpsilon(1e-8), least.WithSeed(seed))
		var st serve.StatusV2
		code := tc.post("/v2/jobs", serve.SubmitRequestV2{Samples: mt.Samples, Spec: sp}, &st)
		if code != 200 && code != 202 {
			t.Fatalf("interactive submit: HTTP %d", code)
		}
		interactiveID = st.ID
		break
	}

	var st batchWire
	if code := tc.post("/v2/batches", manifest, &st); code != 200 && code != 202 {
		t.Fatalf("submit: HTTP %d", code)
	}

	// Let the fleet make some progress, then kill the victim's
	// listener and declare it dead (two failed health sweeps).
	deadline := time.Now().Add(time.Minute)
	for {
		var cur batchWire
		tc.get("/v2/batches/"+st.ID, &cur)
		if cur.Done >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch made no progress before the kill")
		}
		time.Sleep(5 * time.Millisecond)
	}
	tc.node(victim).srv.Close()
	tc.c.CheckHealth()
	tc.c.CheckHealth()

	st = tc.waitBatch(st.ID, 4*time.Minute)
	if st.Done != tasks || st.Failed != 0 {
		t.Fatalf("post-kill batch: %+v", st)
	}
	if tc.c.Metrics().NodeDeaths.Load() == 0 {
		t.Error("no node death recorded")
	}

	// Bit-identical result set: every row's graph matches the
	// reference bytes, whichever node re-solved it.
	for _, ts := range tc.batchTasks(st.ID) {
		if ts.State != serve.Done {
			t.Fatalf("row %d: state %s (code %s, err %q)", ts.Index, ts.State, ts.Code, ts.Error)
		}
		code, body := tc.getRaw("/v2/jobs/" + ts.Job + "/graph")
		if code != 200 {
			t.Fatalf("graph for row %d (%s): HTTP %d", ts.Index, ts.Job, code)
		}
		if !bytes.Equal(body, refGraphs[ts.Index]) {
			t.Fatalf("row %d: graph differs from unkilled reference", ts.Index)
		}
	}

	// The stranded interactive job fails typed, not silently.
	var ist serve.StatusV2
	if code := tc.get("/v2/jobs/"+interactiveID, &ist); code != 200 {
		t.Fatalf("interactive status: HTTP %d", code)
	}
	if ist.State != serve.Failed || ist.Code != serve.TaskCodeRestart {
		t.Errorf("interactive job after node death: state %s code %q, want failed/restart", ist.State, ist.Code)
	}
}

// TestClusterStealUnderSkew pins the work-stealing path: a manifest
// whose fingerprints all hash to one node leaves the other two idle,
// the steal sweep moves pending lane tails to them, and every row
// still lands done with a fetchable graph.
func TestClusterStealUnderSkew(t *testing.T) {
	tc := newTestCluster(t, 3, 1, "")

	// All tasks owned by whichever node owns the first generated one.
	var donor string
	req := serve.BatchRequest{}
	for seed := int64(20000); len(req.Tasks) < 16; seed++ {
		mt := clusterTask(fmt.Sprintf("t%04d", len(req.Tasks)), seed, 10, 60)
		o, _ := Owner(taskFingerprint(t, mt), tc.names())
		if donor == "" {
			donor = o
		}
		if o != donor {
			continue
		}
		req.Tasks = append(req.Tasks, mt)
	}

	var st batchWire
	if code := tc.post("/v2/batches", req, &st); code != 200 && code != 202 {
		t.Fatalf("submit: HTTP %d", code)
	}

	// Force steal sweeps while the donor grinds its lane.
	stolen := 0
	deadline := time.Now().Add(time.Minute)
	for stolen == 0 && time.Now().Before(deadline) {
		stolen = tc.c.StealOnce()
		if stolen == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if stolen == 0 {
		t.Fatal("no steal happened against a fully skewed manifest")
	}

	st = tc.waitBatch(st.ID, 3*time.Minute)
	if st.Done != len(req.Tasks) || st.Failed != 0 {
		t.Fatalf("post-steal batch: %+v", st)
	}
	if got := tc.c.Metrics().TasksStolen.Load(); got == 0 {
		t.Error("TasksStolen counter did not move")
	}
	// The thief really ran work: jobs finished off the donor node.
	var offDonor int64
	for _, n := range tc.nodes {
		if n.name != donor {
			offDonor += n.mgr.Metrics().JobsDone.Load()
		}
	}
	if offDonor == 0 {
		t.Error("stolen rows never executed off the donor")
	}
	for _, ts := range tc.batchTasks(st.ID) {
		if ts.State != serve.Done || ts.Job == "" {
			t.Fatalf("row %d: state %s job %q", ts.Index, ts.State, ts.Job)
		}
		if code, _ := tc.getRaw("/v2/jobs/" + ts.Job + "/graph"); code != 200 {
			t.Fatalf("row %d: graph fetch HTTP %d", ts.Index, code)
		}
	}
}

// TestClusterGossipAffinity pins the cross-node dedupe redirect after
// membership churn: a dataset solved (and cached) on its original
// owner keeps routing there — via the gossiped cache index — even
// after a newly admitted node becomes its rendezvous owner.
func TestClusterGossipAffinity(t *testing.T) {
	tc := newTestCluster(t, 2, 1, "")

	// A dataset whose ring owner moves when n2 joins: owned by one of
	// {n0, n1} now, by "n2" in the 3-node ring.
	var mt least.ManifestTask
	var origOwner string
	for seed := int64(30000); ; seed++ {
		mt = clusterTask("", seed, 8, 50)
		fp := taskFingerprint(t, mt)
		o2, _ := Owner(fp, []string{"n0", "n1"})
		o3, _ := Owner(fp, []string{"n0", "n1", "n2"})
		if o3 == "n2" {
			origOwner = o2
			break
		}
	}

	var st serve.StatusV2
	if code := tc.post("/v2/jobs", serve.SubmitRequestV2{Samples: mt.Samples}, &st); code != 200 && code != 202 {
		t.Fatalf("submit: HTTP %d", code)
	}
	first := st.ID
	deadline := time.Now().Add(2 * time.Minute)
	for st.State != serve.Done {
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("first solve: %+v", st.Status)
		}
		time.Sleep(10 * time.Millisecond)
		tc.get("/v2/jobs/"+first, &st)
	}
	tc.c.SyncGossip() // the owner's digest now announces the key

	// Admit a third node that rendezvous-wins the fingerprint.
	mgr := serve.NewManager(serve.Config{MaxConcurrent: 1, QueueDepth: 64, MaxHistory: 1 << 10})
	srv := httptest.NewServer(serve.NewAPI(mgr).Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		mgr.Shutdown(ctx)
		cancel()
	})
	if err := tc.c.AddNode("n2", srv.URL); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	tc.c.CheckHealth()

	before := tc.c.Metrics().AffinityForwards.Load()
	var st2 serve.StatusV2
	if code := tc.post("/v2/jobs", serve.SubmitRequestV2{Samples: mt.Samples}, &st2); code != 200 && code != 202 {
		t.Fatalf("resubmit: HTTP %d", code)
	}
	node, _, ok := splitID(st2.ID)
	if !ok || node != origOwner {
		t.Errorf("resubmission routed to %q, want cached owner %q (id %s)", node, origOwner, st2.ID)
	}
	if got := tc.c.Metrics().AffinityForwards.Load(); got != before+1 {
		t.Errorf("AffinityForwards = %d, want %d", got, before+1)
	}
	if !st2.Cached && st2.State != serve.Done {
		// The redirect's whole point: the answer comes from the cache,
		// not a re-solve. Born-done jobs report done immediately.
		t.Errorf("resubmission was not a cache answer: %+v", st2.Status)
	}
	if n2jobs := mgr.Metrics().JobsSubmitted.Load(); n2jobs != 0 {
		t.Errorf("new ring owner minted %d jobs; affinity should have kept the work away", n2jobs)
	}
}

// TestCoordJournalReadopt pins membership durability: a coordinator
// restarted on its journal re-adopts the last known fleet — including
// a retirement — without any -node flags, and resumes at a higher
// routing epoch.
func TestCoordJournalReadopt(t *testing.T) {
	dir := t.TempDir()
	tc := newTestCluster(t, 3, 1, dir)

	if err := tc.c.RemoveNode("n2"); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	var before struct {
		Epoch int64 `json:"epoch"`
		Nodes []struct {
			Name string `json:"name"`
			URL  string `json:"url"`
		} `json:"nodes"`
	}
	if code := tc.get("/healthz", &before); code != 200 {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if len(before.Nodes) != 2 {
		t.Fatalf("after retirement: %d members, want 2", len(before.Nodes))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	tc.c.Shutdown(ctx)
	cancel()
	tc.srv.Close()

	// Restart from the journal alone: no Nodes in the config.
	c2, err := New(Config{
		HealthEvery: time.Hour,
		GossipEvery: time.Hour,
		StealEvery:  time.Hour,
		PollEvery:   5 * time.Millisecond,
		JournalDir:  dir,
	})
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		c2.Shutdown(ctx)
		cancel()
	}()
	c2.CheckHealth()
	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()

	resp, err := http.Get(srv2.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz after restart: %v", err)
	}
	var after struct {
		Status string `json:"status"`
		Epoch  int64  `json:"epoch"`
		Nodes  []struct {
			Name  string `json:"name"`
			URL   string `json:"url"`
			Alive bool   `json:"alive"`
		} `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&after); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	resp.Body.Close()

	if len(after.Nodes) != 2 {
		t.Fatalf("re-adopted %d members, want 2 (n2 stayed retired)", len(after.Nodes))
	}
	want := map[string]string{}
	for _, n := range before.Nodes {
		want[n.Name] = n.URL
	}
	for _, n := range after.Nodes {
		if want[n.Name] != n.URL {
			t.Errorf("member %s re-adopted with URL %q, want %q", n.Name, n.URL, want[n.Name])
		}
		if !n.Alive {
			t.Errorf("member %s not alive after restart health check", n.Name)
		}
	}
	if after.Epoch <= before.Epoch {
		t.Errorf("epoch after restart %d, want > %d", after.Epoch, before.Epoch)
	}

	// The re-adopted fleet routes work.
	mt := clusterTask("", 40000, 8, 50)
	b, _ := json.Marshal(serve.SubmitRequestV2{Samples: mt.Samples})
	r2, err := http.Post(srv2.URL+"/v2/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("submit via restarted coordinator: %v", err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != 200 && r2.StatusCode != 202 {
		t.Fatalf("submit via restarted coordinator: HTTP %d", r2.StatusCode)
	}
}
