package coord

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestOwnerDeterministic pins that ownership is a pure function of the
// membership list: any permutation of the same nodes routes every key
// identically.
func TestOwnerDeterministic(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e"}
	perm := []string{"d", "b", "e", "a", "c"}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%04d", i)
		o1, ok1 := Owner(key, nodes)
		o2, ok2 := Owner(key, perm)
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("Owner(%q) depends on list order: %q vs %q", key, o1, o2)
		}
	}
	if _, ok := Owner("anything", nil); ok {
		t.Fatal("Owner with no nodes reported an owner")
	}
}

// TestRankedIsFailoverOrder pins that Ranked's head is Owner and the
// tail is the ownership order after successively removing the head —
// the exact order dispatch walks when nodes die.
func TestRankedIsFailoverOrder(t *testing.T) {
	nodes := []string{"n0", "n1", "n2", "n3"}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("fp-%04d", i)
		ranked := Ranked(key, nodes)
		if len(ranked) != len(nodes) {
			t.Fatalf("Ranked returned %d of %d nodes", len(ranked), len(nodes))
		}
		remaining := append([]string(nil), nodes...)
		for _, want := range ranked {
			got, ok := Owner(key, remaining)
			if !ok || got != want {
				t.Fatalf("key %q: ranked order %v disagrees with iterated Owner at %q (got %q)", key, ranked, want, got)
			}
			kept := remaining[:0]
			for _, n := range remaining {
				if n != want {
					kept = append(kept, n)
				}
			}
			remaining = kept
		}
	}
}

// TestRendezvousChurnStability is the churn property the steal and
// failover machinery relies on (DESIGN.md §13): removing one node
// moves ONLY the keys that node owned — every key owned by a survivor
// keeps its owner — and adding a node back moves only the keys the
// newcomer wins, with everything else staying put.
func TestRendezvousChurnStability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nodes := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	keys := make([]string, 2000)
	for i := range keys {
		keys[i] = fmt.Sprintf("sha256:%016x", rng.Uint64())
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		o, _ := Owner(k, nodes)
		before[k] = o
	}

	for _, dead := range nodes {
		survivors := make([]string, 0, len(nodes)-1)
		for _, n := range nodes {
			if n != dead {
				survivors = append(survivors, n)
			}
		}
		moved := 0
		for _, k := range keys {
			after, _ := Owner(k, survivors)
			if before[k] == dead {
				moved++
				continue // this key HAD to move; any survivor is legal
			}
			if after != before[k] {
				t.Fatalf("removing %q moved key %s from survivor %q to %q", dead, k, before[k], after)
			}
		}
		if moved == 0 {
			t.Fatalf("node %q owned no keys out of %d — degenerate hash", dead, len(keys))
		}

		// Re-adding the dead node restores the original assignment
		// exactly (ownership is stateless), and relative to the
		// survivor view it moves only the keys the newcomer wins.
		for _, k := range keys {
			restored, _ := Owner(k, nodes)
			if restored != before[k] {
				t.Fatalf("re-adding %q did not restore key %s to %q (got %q)", dead, k, before[k], restored)
			}
		}
	}
}

// TestRankedSurvivorStability extends churn stability to the full
// failover chain: a dead node disappearing from the membership list
// deletes it from every key's ranking without reordering the
// survivors.
func TestRankedSurvivorStability(t *testing.T) {
	nodes := []string{"n0", "n1", "n2", "n3", "n4"}
	dead := "n2"
	survivors := []string{"n0", "n1", "n3", "n4"}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("k%04d", i)
		full := Ranked(key, nodes)
		kept := full[:0]
		for _, n := range full {
			if n != dead {
				kept = append(kept, n)
			}
		}
		after := Ranked(key, survivors)
		for j := range after {
			if after[j] != kept[j] {
				t.Fatalf("key %q: survivor ranking %v != filtered full ranking %v", key, after, kept)
			}
		}
	}
}
