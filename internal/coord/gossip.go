package coord

import "sort"

// The gossiped cache index (DESIGN.md §13): every node periodically
// announces the result-cache keys it holds (GET /v2/peer/cache-digest;
// a key already encodes dataset fingerprint + centering + canonical
// spec, see serve.CacheKeyDataset), and the coordinator folds the
// announcements into one index so an identical task submitted anywhere
// in the fleet forwards to the node that already solved it — the
// cross-node form of the in-flight dedupe table.
//
// The merge is a set fold with the same discipline as recover.go's
// first-wins replay: announcements are idempotent and commutative
// (adding (node, key) twice, or in any order relative to other
// announcements, produces the same index), and conflicting owners —
// two nodes both holding a key — resolve to the lexicographically
// smallest alive announcer, never to whichever message happened to
// arrive first. The convergence property test pins this. Staleness is
// handled by replace (drop + merge) on every gossip sweep: a key the
// node evicted disappears from its announcement, and a forward that
// races an eviction just costs the owning node one re-solve.

// cacheIndex maps result-cache keys to the set of nodes announcing
// them. Not safe for concurrent use; the Coordinator guards it with
// its own mutex.
type cacheIndex struct {
	byNode map[string]map[string]struct{} // node → announced keys
	byKey  map[string]map[string]struct{} // key → announcing nodes
}

func newCacheIndex() *cacheIndex {
	return &cacheIndex{
		byNode: make(map[string]map[string]struct{}),
		byKey:  make(map[string]map[string]struct{}),
	}
}

// merge folds one announcement in: node holds keys (idempotent,
// order-independent).
func (ix *cacheIndex) merge(node string, keys []string) {
	held := ix.byNode[node]
	if held == nil {
		held = make(map[string]struct{})
		ix.byNode[node] = held
	}
	for _, k := range keys {
		held[k] = struct{}{}
		owners := ix.byKey[k]
		if owners == nil {
			owners = make(map[string]struct{})
			ix.byKey[k] = owners
		}
		owners[node] = struct{}{}
	}
}

// drop forgets every announcement node made — on death, and as the
// first half of a replace when a fresh digest arrives.
func (ix *cacheIndex) drop(node string) {
	for k := range ix.byNode[node] {
		owners := ix.byKey[k]
		delete(owners, node)
		if len(owners) == 0 {
			delete(ix.byKey, k)
		}
	}
	delete(ix.byNode, node)
}

// replace swaps node's announcement for a fresh full digest.
func (ix *cacheIndex) replace(node string, keys []string) {
	ix.drop(node)
	ix.merge(node, keys)
}

// owner resolves a key to its canonical announcing node: the smallest
// (lexicographically) announcer that alive() accepts. The deterministic
// tie-break is what makes lookups a pure function of the announcement
// set rather than of arrival order.
func (ix *cacheIndex) owner(key string, alive func(string) bool) (string, bool) {
	owners := ix.byKey[key]
	if len(owners) == 0 {
		return "", false
	}
	names := make([]string, 0, len(owners))
	for n := range owners {
		if alive == nil || alive(n) {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return "", false
	}
	sort.Strings(names)
	return names[0], true
}

// size returns the number of distinct keys announced fleet-wide.
func (ix *cacheIndex) size() int { return len(ix.byKey) }
