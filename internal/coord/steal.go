package coord

import (
	"sort"

	"repro/internal/serve"
)

// Work stealing for skew (DESIGN.md §13). Fingerprint sharding places
// work where caches live, but a skewed manifest — one node owning the
// popular fingerprints — leaves the rest of the fleet idle. The steal
// loop repairs that without giving up colocation for the common case:
// when a node is idle (no queued cluster-batch rows anywhere on it)
// and another holds at least StealMin pending rows, the coordinator
// asks the loaded node's biggest sub-batch to give up the TAIL half of
// its pending lane (POST /v2/peer/steal — the donor keeps its lane
// head, so round-robin order within the remaining sub-batch is exactly
// what it was) and re-admits the stolen manifests on the idle node as
// a fresh sub-batch. Deduplicated rows ride one job on the donor and
// are stolen as one unit, so a steal never splits a dedupe group —
// cluster-wide solve counts are steal-invariant.

// StealOnce runs one skew scan; the background loop calls it every
// StealEvery. Exported so tests can force a steal deterministically.
// It returns the number of rows moved.
func (c *Coordinator) StealOnce() int { return c.stealOnce() }

func (c *Coordinator) stealOnce() int {
	c.mu.Lock()
	alive := c.aliveNamesLocked()
	batches := c.liveBatchesLocked()
	c.mu.Unlock()
	if len(alive) < 2 {
		return 0
	}

	// Cluster-wide pending per node, folded over every live batch.
	pending := make(map[string]int)
	for _, n := range alive {
		pending[n] = 0
	}
	for _, cb := range batches {
		if cb.Status().State.Terminal() {
			continue
		}
		cb.pendingByNode(pending)
	}

	var idle []string
	loaded, loadedN := "", 0
	names := make([]string, 0, len(pending))
	for n := range pending {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic idle/loaded choice
	for _, n := range names {
		switch p := pending[n]; {
		case p == 0:
			idle = append(idle, n)
		case p > loadedN:
			loaded, loadedN = n, p
		}
	}
	if len(idle) == 0 || loaded == "" || loadedN < c.cfg.StealMin {
		return 0
	}
	thief := idle[0]

	// The donor's biggest pending sub-batch across batches.
	var victim *clusterBatch
	var sub *subBatch
	subN := 0
	for _, cb := range batches {
		if s, n := cb.biggestPendingSub(loaded); n > subN {
			victim, sub, subN = cb, s, n
		}
	}
	if sub == nil || subN < c.cfg.StealMin {
		return 0
	}

	base, ok := c.nodeURL(loaded)
	if !ok {
		return 0
	}
	var resp serve.StealResponse
	err := c.postJSON(base+"/v2/peer/steal", serve.StealRequest{Batch: sub.id, Max: subN / 2}, &resp)
	if err != nil || len(resp.Stolen) == 0 {
		return 0
	}

	// Map donor sub-manifest indices back to cluster rows and detach
	// them from the donor sub (the fold already ignores their "stolen"
	// verdicts, but clearing sub makes the handoff explicit).
	var moved []int
	victim.mu.Lock()
	for _, st := range resp.Stolen {
		for _, di := range st.Indices {
			if di < 0 || di >= len(sub.rows) {
				continue
			}
			i := sub.rows[di]
			r := victim.rows[i]
			if r.sub != sub.key || r.terminal {
				continue
			}
			r.sub = ""
			moved = append(moved, i)
		}
	}
	victim.mu.Unlock()
	if len(moved) == 0 {
		return 0
	}

	// Re-admit on the thief; dispatch falls back to the rendezvous
	// failover order if the thief died in the window.
	victim.dispatch(thief, moved, false)
	c.met.Steals.Add(1)
	c.met.TasksStolen.Add(int64(len(moved)))
	return len(moved)
}
