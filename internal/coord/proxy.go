package coord

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"repro"
	"repro/internal/serve"
)

// HTTP face of the coordinator (DESIGN.md §13): the same v2 wire
// surface a single leastd serves, so clients cannot tell one node from
// a fleet. Cluster-wide identifiers are composite — "<node>.<localid>"
// — and every proxied payload has its ids rewritten to the composite
// form on the way out (and back to the local form on the way in).
// Deliberately not replicated (documented, pinned by tests):
// /v2/batches/{id}/edges answers 501 (cross-task edge folding needs
// every graph on one node), and the v1 surface is not served at all —
// the fleet is a v2-era deployment.

const maxRequestBytes = 512 << 20

// splitID parses a composite "<node>.<local>" id.
func splitID(id string) (node, local string, ok bool) {
	i := strings.IndexByte(id, '.')
	if i <= 0 || i == len(id)-1 {
		return "", "", false
	}
	return id[:i], id[i+1:], true
}

// joinID builds a composite id.
func joinID(node, local string) string { return node + "." + local }

// Handler returns the coordinator's routed HTTP handler.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/jobs", c.submitJob)
	mux.HandleFunc("GET /v2/jobs", c.listJobs)
	mux.HandleFunc("GET /v2/jobs/{id}", c.jobStatus)
	mux.HandleFunc("GET /v2/jobs/{id}/graph", c.jobProxy("/graph"))
	mux.HandleFunc("GET /v2/jobs/{id}/events", c.jobEvents)
	mux.HandleFunc("GET /v2/jobs/{id}/query/{verb}", c.jobQuery)
	mux.HandleFunc("DELETE /v2/jobs/{id}", c.jobCancel)
	mux.HandleFunc("POST /v2/datasets", c.datasetCreate)
	mux.HandleFunc("GET /v2/datasets", c.datasetList)
	mux.HandleFunc("GET /v2/datasets/{id}", c.datasetGet)
	mux.HandleFunc("DELETE /v2/datasets/{id}", c.datasetDelete)
	mux.HandleFunc("POST /v2/batches", c.batchCreate)
	mux.HandleFunc("GET /v2/batches", c.batchList)
	mux.HandleFunc("GET /v2/batches/{id}", c.batchStatus)
	mux.HandleFunc("GET /v2/batches/{id}/tasks", c.batchTasks)
	mux.HandleFunc("GET /v2/batches/{id}/events", c.batchEvents)
	mux.HandleFunc("DELETE /v2/batches/{id}", c.batchCancel)
	mux.HandleFunc("GET /v2/batches/{id}/edges", c.batchEdges)
	mux.HandleFunc("GET /cluster/nodes", c.clusterNodes)
	mux.HandleFunc("POST /cluster/nodes", c.clusterAddNode)
	mux.HandleFunc("DELETE /cluster/nodes/{name}", c.clusterRemoveNode)
	mux.HandleFunc("GET /metrics", c.metricsHandler)
	mux.HandleFunc("GET /healthz", c.healthz)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.met.HTTPRequests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// nodeDown writes the typed 502 for an operation addressed to a dead
// member.
func nodeDown(w http.ResponseWriter, node string) {
	writeJSON(w, http.StatusBadGateway, map[string]any{
		"error": fmt.Sprintf("coord: node %q is not passing health checks", node),
		"code":  TaskCodeNodeDown,
	})
}

// relay forwards a node's error answer (or a generic 502 for transport
// failures) to the client.
func relay(w http.ResponseWriter, err error) {
	var he *httpStatusError
	if errors.As(err, &he) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(he.code)
		_, _ = w.Write(he.body)
		return
	}
	httpError(w, http.StatusBadGateway, "coord: %v", err)
}

// resolveNode maps a composite id to (node, local, baseURL), writing
// the error response itself when resolution fails.
func (c *Coordinator) resolveNode(w http.ResponseWriter, id string) (node, local, base string, ok bool) {
	node, local, ok = splitID(id)
	if !ok {
		httpError(w, http.StatusNotFound, "coord: %q is not a cluster id (want node.id)", id)
		return "", "", "", false
	}
	c.mu.Lock()
	n, known := c.nodes[node]
	alive := known && n.alive
	c.mu.Unlock()
	if !known {
		httpError(w, http.StatusNotFound, "%v: %s", ErrUnknownNode, node)
		return "", "", "", false
	}
	if !alive {
		nodeDown(w, node)
		return "", "", "", false
	}
	base, _ = c.nodeURL(node)
	return node, local, base, true
}

// ---- interactive jobs -------------------------------------------------

// submitJob routes a POST /v2/jobs: the body is decoded just enough to
// compute the routing key (dataset fingerprint + cache key), then the
// raw bytes forward to the chosen node — re-marshalling a Spec would
// lose its set-vs-unset distinction, so the original body is what the
// node sees. Identical concurrent submissions join the in-flight job
// on the owning node (coordinator-side singleflight).
func (c *Coordinator) submitJob(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var req serve.SubmitRequestV2
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}

	var node, key string
	if req.DatasetRef != "" {
		// By-ref: the dataset lives on exactly one node; the job must
		// run there. The composite ref is rewritten to the local id.
		refNode, local, ok := splitID(req.DatasetRef)
		if !ok {
			httpError(w, http.StatusNotFound, "coord: dataset_ref %q is not a cluster id (want node.id)", req.DatasetRef)
			return
		}
		node = refNode
		req.DatasetRef = local
		rewritten, err := json.Marshal(req)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		raw = rewritten
	} else {
		mt := least.ManifestTask{CSV: req.CSV, Header: req.Header, Samples: req.Samples, Names: req.Names}
		ds, err := mt.Data(least.DatasetOptions{})
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		spec := req.Spec
		if spec == nil {
			spec = &least.Spec{} // the node resolves nil the same way; keys must agree
		}
		if k, err := serve.CacheKeyDataset(ds, req.Center, spec); err == nil {
			key = k
		}
		// Singleflight: an identical submission already in flight
		// anywhere in the fleet is joined, not re-solved.
		if key != "" {
			if st, ok := c.joinInflight(key); ok {
				c.met.SingleflightJoins.Add(1)
				writeJSON(w, http.StatusAccepted, st)
				return
			}
		}
		var ok bool
		node, ok = c.routeKey(key, ds.Fingerprint())
		if !ok {
			httpError(w, http.StatusServiceUnavailable, "%v", ErrNoNodes)
			return
		}
	}

	base, ok := c.nodeURL(node)
	if !ok {
		httpError(w, http.StatusNotFound, "%v: %s", ErrUnknownNode, node)
		return
	}
	c.met.JobsRouted.Add(1)
	var st serve.StatusV2
	if err := c.doJSON(r.Context(), http.MethodPost, base+"/v2/jobs", json.RawMessage(raw), &st); err != nil {
		relay(w, err)
		return
	}
	local := st.ID
	st.ID = joinID(node, local)

	c.mu.Lock()
	cj := &coordJob{id: st.ID, node: node, local: local, key: key, last: st}
	c.jobs[st.ID] = cj
	if key != "" && !st.State.Terminal() {
		c.inflight[key] = st.ID
	}
	c.mu.Unlock()

	code := http.StatusAccepted
	if st.State == serve.Done {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// joinInflight resolves a cache key to a live identical job's current
// status (fetched fresh from the owning node). Misses clean the table
// lazily.
func (c *Coordinator) joinInflight(key string) (serve.StatusV2, bool) {
	c.mu.Lock()
	id, ok := c.inflight[key]
	var cj *coordJob
	if ok {
		cj = c.jobs[id]
	}
	if cj == nil || cj.orphaned || cj.last.State.Terminal() {
		if ok {
			delete(c.inflight, key)
		}
		c.mu.Unlock()
		return serve.StatusV2{}, false
	}
	node, local := cj.node, cj.local
	c.mu.Unlock()

	base, ok := c.nodeURL(node)
	if !ok {
		return serve.StatusV2{}, false
	}
	var st serve.StatusV2
	if err := c.getJSON(base+"/v2/jobs/"+url.PathEscape(local), &st); err != nil {
		return serve.StatusV2{}, false
	}
	st.ID = joinID(node, st.ID)
	c.mu.Lock()
	if cur := c.jobs[st.ID]; cur != nil && !cur.orphaned {
		cur.last = st
		if st.State.Terminal() && c.inflight[key] == st.ID {
			delete(c.inflight, key)
		}
	}
	c.mu.Unlock()
	return st, true
}

func (c *Coordinator) listJobs(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	alive := c.aliveNamesLocked()
	c.mu.Unlock()
	sort.Strings(alive)
	out := []serve.StatusV2{}
	for _, node := range alive {
		base, ok := c.nodeURL(node)
		if !ok {
			continue
		}
		var jobs []serve.StatusV2
		if err := c.getJSON(base+"/v2/jobs", &jobs); err != nil {
			continue
		}
		for i := range jobs {
			jobs[i].ID = joinID(node, jobs[i].ID)
		}
		out = append(out, jobs...)
	}
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) jobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// A job orphaned by a node death answers from the coordinator's
	// record with the typed restart verdict — the client sees the same
	// failure a daemon restart produces (DESIGN.md §11).
	c.mu.Lock()
	if cj, ok := c.jobs[id]; ok && cj.orphaned {
		st := cj.last
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
		return
	}
	c.mu.Unlock()

	node, local, base, ok := c.resolveNode(w, id)
	if !ok {
		return
	}
	var st serve.StatusV2
	if err := c.doJSON(r.Context(), http.MethodGet, base+"/v2/jobs/"+url.PathEscape(local), nil, &st); err != nil {
		relay(w, err)
		return
	}
	st.ID = joinID(node, st.ID)
	c.mu.Lock()
	if cj, ok := c.jobs[id]; ok && !cj.orphaned {
		cj.last = st
		if st.State.Terminal() && c.inflight[cj.key] == id {
			delete(c.inflight, cj.key)
		}
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// jobProxy forwards a job sub-resource verbatim (graph bytes carry no
// job ids, so no rewriting is needed).
func (c *Coordinator) jobProxy(suffix string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		_, local, base, ok := c.resolveNode(w, r.PathValue("id"))
		if !ok {
			return
		}
		u := base + "/v2/jobs/" + url.PathEscape(local) + suffix
		if r.URL.RawQuery != "" {
			u += "?" + r.URL.RawQuery
		}
		c.proxyRaw(w, r, u)
	}
}

func (c *Coordinator) jobQuery(w http.ResponseWriter, r *http.Request) {
	_, local, base, ok := c.resolveNode(w, r.PathValue("id"))
	if !ok {
		return
	}
	u := base + "/v2/jobs/" + url.PathEscape(local) + "/query/" + url.PathEscape(r.PathValue("verb"))
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	c.proxyRaw(w, r, u)
}

// proxyRaw streams one node answer through unchanged (status, content
// type and body).
func (c *Coordinator) proxyRaw(w http.ResponseWriter, r *http.Request, u string) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, nil)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		httpError(w, http.StatusBadGateway, "coord: %v", err)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// jobEvents passes the node's SSE stream through, rewriting the job id
// inside each data line to its composite form. Only data lines are
// touched — event names, ids and framing forward byte-for-byte (the
// §13 deliberately-not-replicated list: the payload schema is the
// node's, not re-synthesized).
func (c *Coordinator) jobEvents(w http.ResponseWriter, r *http.Request) {
	node, local, base, ok := c.resolveNode(w, r.PathValue("id"))
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by transport")
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, base+"/v2/jobs/"+url.PathEscape(local)+"/events", nil)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		httpError(w, http.StatusBadGateway, "coord: %v", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(body)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	needle := []byte(`"id":"` + local + `"`)
	repl := []byte(`"id":"` + joinID(node, local) + `"`)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.HasPrefix(line, []byte("data:")) {
			line = bytes.Replace(line, needle, repl, 1)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return
		}
		if len(line) == 0 { // frame boundary: deliver it now
			fl.Flush()
		}
	}
}

func (c *Coordinator) jobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	node, local, base, ok := c.resolveNode(w, id)
	if !ok {
		return
	}
	var st serve.StatusV2
	if err := c.doJSON(r.Context(), http.MethodDelete, base+"/v2/jobs/"+url.PathEscape(local), nil, &st); err != nil {
		relay(w, err)
		return
	}
	st.ID = joinID(node, st.ID)
	c.mu.Lock()
	if cj, ok := c.jobs[id]; ok && !cj.orphaned {
		cj.last = st
		if c.inflight[cj.key] == id {
			delete(c.inflight, cj.key)
		}
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// ---- datasets ---------------------------------------------------------

func (c *Coordinator) datasetCreate(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var req serve.DatasetRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	mt := least.ManifestTask{CSV: req.CSV, Header: req.Header, Samples: req.Samples, Names: req.Names}
	ds, err := mt.Data(least.DatasetOptions{})
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Datasets shard by fingerprint alone: the node that owns the
	// fingerprint's keyspace hosts the registration, so every by-ref
	// job for it lands where the data (and its Gram stats) live.
	c.mu.Lock()
	alive := c.aliveNamesLocked()
	c.mu.Unlock()
	node, ok := Owner(ds.Fingerprint(), alive)
	if !ok {
		httpError(w, http.StatusServiceUnavailable, "%v", ErrNoNodes)
		return
	}
	base, _ := c.nodeURL(node)
	var info serve.DatasetInfo
	if err := c.doJSON(r.Context(), http.MethodPost, base+"/v2/datasets", json.RawMessage(raw), &info); err != nil {
		relay(w, err)
		return
	}
	info.ID = joinID(node, info.ID)
	// 201 vs 200 (created vs deduplicated) is the node's call; the
	// coordinator cannot see it from the decoded body alone, so a
	// registration through the coordinator always answers 200 with the
	// composite id.
	writeJSON(w, http.StatusOK, info)
}

func (c *Coordinator) datasetList(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	alive := c.aliveNamesLocked()
	c.mu.Unlock()
	sort.Strings(alive)
	out := []serve.DatasetInfo{}
	for _, node := range alive {
		base, ok := c.nodeURL(node)
		if !ok {
			continue
		}
		var infos []serve.DatasetInfo
		if err := c.getJSON(base+"/v2/datasets", &infos); err != nil {
			continue
		}
		for i := range infos {
			infos[i].ID = joinID(node, infos[i].ID)
		}
		out = append(out, infos...)
	}
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) datasetGet(w http.ResponseWriter, r *http.Request) {
	node, local, base, ok := c.resolveNode(w, r.PathValue("id"))
	if !ok {
		return
	}
	var info serve.DatasetInfo
	if err := c.doJSON(r.Context(), http.MethodGet, base+"/v2/datasets/"+url.PathEscape(local), nil, &info); err != nil {
		relay(w, err)
		return
	}
	info.ID = joinID(node, info.ID)
	writeJSON(w, http.StatusOK, info)
}

func (c *Coordinator) datasetDelete(w http.ResponseWriter, r *http.Request) {
	_, local, base, ok := c.resolveNode(w, r.PathValue("id"))
	if !ok {
		return
	}
	if err := c.doJSON(r.Context(), http.MethodDelete, base+"/v2/datasets/"+url.PathEscape(local), nil, nil); err != nil {
		relay(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---- batches ----------------------------------------------------------

func (c *Coordinator) batchCreate(w http.ResponseWriter, r *http.Request) {
	var req serve.BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	cb, err := c.SubmitBatch(req.Tasks)
	switch {
	case errors.Is(err, serve.ErrShuttingDown):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := cb.Status()
	code := http.StatusAccepted
	if st.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (c *Coordinator) batchList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Batches())
}

func (c *Coordinator) batchStatus(w http.ResponseWriter, r *http.Request) {
	cb, ok := c.batch(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "%v", serve.ErrUnknownBatch)
		return
	}
	writeJSON(w, http.StatusOK, cb.Status())
}

func (c *Coordinator) batchTasks(w http.ResponseWriter, r *http.Request) {
	cb, ok := c.batch(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "%v", serve.ErrUnknownBatch)
		return
	}
	q := r.URL.Query()
	offset, ok := queryInt(q.Get("offset"), 0)
	if !ok || offset < 0 {
		httpError(w, http.StatusBadRequest, "bad offset %q", q.Get("offset"))
		return
	}
	limit, ok := queryInt(q.Get("limit"), 100)
	if !ok || limit < 1 {
		httpError(w, http.StatusBadRequest, "bad limit %q", q.Get("limit"))
		return
	}
	if limit > 1000 {
		limit = 1000
	}
	state := serve.State(q.Get("state"))
	switch state {
	case "", serve.Queued, serve.Running, serve.Done, serve.Failed, serve.Cancelled:
	default:
		httpError(w, http.StatusBadRequest, "bad state %q", q.Get("state"))
		return
	}
	rows, total := cb.Tasks(offset, limit, state)
	writeJSON(w, http.StatusOK, serve.TaskPage{
		Batch:  cb.id,
		Total:  total,
		Offset: offset,
		Limit:  limit,
		Tasks:  rows,
	})
}

func queryInt(s string, def int) (int, bool) {
	if s == "" {
		return def, true
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, false
	}
	return v, true
}

func (c *Coordinator) batchEvents(w http.ResponseWriter, r *http.Request) {
	cb, ok := c.batch(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "%v", serve.ErrUnknownBatch)
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by transport")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	ctx := r.Context()
	seen := -1
	for {
		st, seq, terminal := cb.Watch(ctx, seen)
		if ctx.Err() != nil {
			return
		}
		name := "progress"
		if terminal {
			name = string(st.State)
		}
		if err := writeSSE(w, name, seq, st); err != nil {
			return
		}
		fl.Flush()
		if terminal {
			return
		}
		seen = seq
	}
}

func writeSSE(w io.Writer, event string, id int, data any) error {
	b, err := json.Marshal(data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", event, id, b)
	return err
}

func (c *Coordinator) batchCancel(w http.ResponseWriter, r *http.Request) {
	cb, ok := c.batch(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "%v", serve.ErrUnknownBatch)
		return
	}
	st, err := cb.Cancel()
	if errors.Is(err, serve.ErrBatchFinished) {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// batchEdges is deliberately not replicated (DESIGN.md §13): folding
// edge confidence across tasks needs every learned graph on one node,
// and shipping weight matrices through the coordinator would defeat
// the sharding. Query the per-node batches directly when needed.
func (c *Coordinator) batchEdges(w http.ResponseWriter, r *http.Request) {
	httpError(w, http.StatusNotImplemented,
		"coord: cross-task edge aggregation is not replicated cluster-wide; query the owning nodes directly (DESIGN.md §13)")
}

// ---- cluster membership + observability -------------------------------

// NodeStatus is one member's row in GET /cluster/nodes and the
// aggregated /healthz.
type NodeStatus struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
	// Healthz is the node's last successful /healthz body, verbatim.
	Healthz json.RawMessage `json:"healthz,omitempty"`
}

// ClusterStatus is the GET /cluster/nodes (and /healthz) payload.
type ClusterStatus struct {
	Status string       `json:"status"` // "ok" when every member is alive, else "degraded"
	Epoch  int64        `json:"epoch"`
	Nodes  []NodeStatus `json:"nodes"`
}

func (c *Coordinator) clusterStatus() ClusterStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := ClusterStatus{Status: "ok", Epoch: c.epoch, Nodes: []NodeStatus{}}
	names := make([]string, 0, len(c.nodes))
	for name := range c.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := c.nodes[name]
		st.Nodes = append(st.Nodes, NodeStatus{Name: n.name, URL: n.url, Alive: n.alive, Healthz: n.healthz})
		if !n.alive {
			st.Status = "degraded"
		}
	}
	if len(st.Nodes) == 0 {
		st.Status = "degraded"
	}
	return st
}

func (c *Coordinator) clusterNodes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.clusterStatus())
}

func (c *Coordinator) clusterAddNode(w http.ResponseWriter, r *http.Request) {
	var req NodeConfig
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	switch err := c.AddNode(req.Name, req.URL); {
	case err == nil:
		writeJSON(w, http.StatusCreated, c.clusterStatus())
	case errors.Is(err, ErrBadNodeName):
		httpError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, ErrNodeExists):
		httpError(w, http.StatusConflict, "%v", err)
	default:
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (c *Coordinator) clusterRemoveNode(w http.ResponseWriter, r *http.Request) {
	switch err := c.RemoveNode(r.PathValue("name")); {
	case err == nil:
		writeJSON(w, http.StatusOK, c.clusterStatus())
	case errors.Is(err, ErrUnknownNode):
		httpError(w, http.StatusNotFound, "%v", err)
	default:
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (c *Coordinator) metricsHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.WriteMetrics(w)
}

// healthz aggregates the fleet: the coordinator's own liveness plus
// every member's last health block.
func (c *Coordinator) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.clusterStatus())
}
