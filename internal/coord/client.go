package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Node-facing HTTP helpers. Every call is bounded by the coordinator's
// base context so Shutdown interrupts in-flight proxying.

// httpStatusError carries a node's non-2xx answer so proxy handlers
// can relay the original status and body verbatim.
type httpStatusError struct {
	code int
	body []byte
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("coord: node answered HTTP %d: %s", e.code, e.body)
}

// doJSON issues one JSON request against a node and decodes a 2xx
// answer into out (out nil discards the body). Non-2xx answers come
// back as *httpStatusError.
func (c *Coordinator) doJSON(ctx context.Context, method, url string, in, out any) error {
	if ctx == nil {
		ctx = c.baseCtx
	}
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 512<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return &httpStatusError{code: resp.StatusCode, body: raw}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

func (c *Coordinator) postJSON(url string, in, out any) error {
	return c.doJSON(c.baseCtx, http.MethodPost, url, in, out)
}

func (c *Coordinator) getJSON(url string, out any) error {
	return c.doJSON(c.baseCtx, http.MethodGet, url, nil, out)
}
