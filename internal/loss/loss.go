// Package loss implements the LSEM fitting objective of the paper
// (§IV): least squares with L1 regularization,
//
//	L(W, X) = (1/n)·‖X − X·W‖²_F + λ·‖W‖₁,
//
// in both a dense form (full gradient, used by the dense learner and
// NOTEARS) and a support-restricted sparse form (gradient evaluated
// only on the candidate support, the LEAST-SP trick that keeps the
// per-step cost O(B·(d+s)) instead of O(B·d²)).
package loss

import (
	"math"

	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// LeastSquares holds the regularization weight λ.
type LeastSquares struct {
	Lambda float64
	// Workers bounds the goroutine fan-out of the loss kernels — the
	// dense GEMMs of ValueGrad as well as the sparse X·W and the
	// support-restricted gradient: 0 selects runtime.GOMAXPROCS, 1
	// forces serial. All kernels partition by output rows, so results
	// are bit-identical at every worker count.
	Workers int
}

func (ls LeastSquares) runner() *parallel.Runner { return parallel.New(ls.Workers) }

// Value returns L(W, X) for dense W.
func (ls LeastSquares) Value(w, x *mat.Dense) float64 {
	n := float64(x.Rows())
	xw := x.MulWorkers(w, ls.Workers)
	var sq float64
	xd, wd := x.Data(), xw.Data()
	for i := range xd {
		r := xd[i] - wd[i]
		sq += r * r
	}
	return sq/n + ls.Lambda*w.SumAbs()
}

// ValueGrad returns L(W, X) and ∇_W L = (2/n)·Xᵀ(XW − X) + λ·sign(W)
// for dense W. The L1 subgradient at 0 is taken as 0.
func (ls LeastSquares) ValueGrad(w, x *mat.Dense) (float64, *mat.Dense) {
	n := float64(x.Rows())
	xw := x.MulWorkers(w, ls.Workers)
	resid := xw.SubMat(x) // XW − X
	var sq float64
	for _, v := range resid.Data() {
		sq += v * v
	}
	grad := x.Transpose().MulWorkers(resid, ls.Workers)
	grad.ScaleInPlace(2 / n)
	gd, wd := grad.Data(), w.Data()
	for i := range gd {
		gd[i] += ls.Lambda * sign(wd[i])
	}
	return sq/n + ls.Lambda*w.SumAbs(), grad
}

// ValueSparse returns L(W, X) for CSR W.
func (ls LeastSquares) ValueSparse(w *sparse.CSR, x *mat.Dense) float64 {
	n := float64(x.Rows())
	xw := sparse.DenseMulCSRP(ls.runner(), x, w)
	var sq float64
	xd, wd := x.Data(), xw.Data()
	for i := range xd {
		r := xd[i] - wd[i]
		sq += r * r
	}
	return sq/n + ls.Lambda*w.SumAbs()
}

// ValueGradSparse returns L(W, X) and the gradient restricted to W's
// support, as a value slice aligned with W.Val.
func (ls LeastSquares) ValueGradSparse(w *sparse.CSR, x *mat.Dense) (float64, []float64) {
	n := float64(x.Rows())
	run := ls.runner()
	xw := sparse.DenseMulCSRP(run, x, w)
	resid := xw.SubMat(x)
	var sq float64
	for _, v := range resid.Data() {
		sq += v * v
	}
	grad := sparse.SupportGradP(run, w, x, resid) // (XᵀR)|support
	for p := range grad {
		grad[p] = grad[p]*2/n + ls.Lambda*sign(w.Val[p])
	}
	return sq/n + ls.Lambda*w.SumAbs(), grad
}

func sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// Standardize centers each column of X to zero mean in place and
// returns X for chaining. Centering removes intercepts so the
// zero-intercept LSEM X_i = w_iᵀX + n_i is well-specified.
func Standardize(x *mat.Dense) *mat.Dense {
	n, d := x.Rows(), x.Cols()
	if n == 0 {
		return x
	}
	means := x.ColSums()
	for j := range means {
		means[j] /= float64(n)
	}
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] -= means[j]
		}
	}
	_ = d
	return x
}

// Batch returns the sub-matrix of x consisting of the given row
// indices (the mini-batch X_B of Fig 3, INNER line 5).
func Batch(x *mat.Dense, rows []int) *mat.Dense {
	b := mat.NewDense(len(rows), x.Cols())
	for i, r := range rows {
		copy(b.Row(i), x.Row(r))
	}
	return b
}

// NaNGuard reports whether v is NaN or infinite; learners use it to
// detect divergence and rewind.
func NaNGuard(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
