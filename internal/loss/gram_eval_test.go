package loss

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/randx"
)

// TestGramEvalMatchesValueGradGram: the reusable evaluator must be
// bit-identical to the allocating entry point on every call, including
// repeated calls through the same (dirty) workspace.
func TestGramEvalMatchesValueGradGram(t *testing.T) {
	for _, d := range []int{3, 12, 33, 64} {
		rng := randx.New(int64(d))
		x := randMat(rng, 200, d)
		st := StatsOf(x, 1)
		ls := LeastSquares{Lambda: 0.1, Workers: 1}
		ev := NewGramEval(ls, st)
		if ev.Stats() != st {
			t.Fatal("Stats() does not return the underlying statistics")
		}
		w := randMat(rng, d, d)
		w.ZeroDiagonal()
		for call := 0; call < 3; call++ {
			wantV, wantG := ls.ValueGradGram(w, st)
			gotV, gotG := ev.ValueGrad(w)
			if math.Float64bits(gotV) != math.Float64bits(wantV) {
				t.Fatalf("d=%d call %d: value %g != %g", d, call, gotV, wantV)
			}
			gd, wd := gotG.Data(), wantG.Data()
			for i := range gd {
				if math.Float64bits(gd[i]) != math.Float64bits(wd[i]) {
					t.Fatalf("d=%d call %d: grad[%d] %g != %g", d, call, i, gd[i], wd[i])
				}
			}
			if v := ev.Value(w); math.Float64bits(v) != math.Float64bits(wantV) {
				t.Fatalf("d=%d call %d: Value %g != %g", d, call, v, wantV)
			}
			// Perturb W so the next round exercises workspace reuse with
			// different contents.
			w.Data()[1] += 0.25
		}
	}
}

// TestGramEvalZeroAlloc pins the PR's headline allocation contract:
// once the evaluator and the kernel's pooled workspaces are warm, a
// loss+gradient evaluation performs zero heap allocations.
func TestGramEvalZeroAlloc(t *testing.T) {
	d := 64
	rng := randx.New(9)
	x := randMat(rng, 256, d)
	st := StatsOf(x, 1)
	ev := NewGramEval(LeastSquares{Lambda: 0.1, Workers: 1}, st)
	w := randMat(rng, d, d)
	w.ZeroDiagonal()
	ev.ValueGrad(w) // warm the workspace and the pack pool
	allocs := testing.AllocsPerRun(50, func() {
		ev.ValueGrad(w)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ValueGrad allocates %.1f objects/op, want 0", allocs)
	}
}

// TestGramAccumulatorAddAfterDrainPanics is the regression test for
// the silent-corruption bug: Add after Finish used to fold the chunk
// into the already-reduced grams[0] (with no pool running) and bump n,
// yielding wrong statistics with no error. It must panic instead.
func TestGramAccumulatorAddAfterDrainPanics(t *testing.T) {
	chunk := randMat(randx.New(1), 4, 3)
	for _, workers := range []int{1, 3} {
		a := NewGramAccumulator(3, workers)
		a.Add(chunk)
		st := a.Finish()
		if st.N != 4 {
			t.Fatalf("workers=%d: N=%d, want 4", workers, st.N)
		}
		assertPanics(t, "Add after Finish", func() { a.Add(chunk) })

		b := NewGramAccumulator(3, workers)
		b.Add(chunk)
		b.Abort()
		assertPanics(t, "Add after Abort", func() { b.Add(chunk) })
		// Abort stays idempotent and Finish after Abort still reduces.
		b.Abort()
	}
}

func assertPanics(t *testing.T, label string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", label)
		}
	}()
	f()
}

// TestMulIntoGramPath exercises the evaluator with a parallel worker
// bound so the stats path hits the same kernels the learners use under
// Spec parallelism, and cross-checks against an independent reference
// product.
func TestMulIntoGramPath(t *testing.T) {
	d := 96
	rng := randx.New(3)
	x := randMat(rng, 300, d)
	st := StatsOf(x, 1)
	w := randMat(rng, d, d)
	ev := NewGramEval(LeastSquares{Lambda: 0.05, Workers: 4}, st)
	_, grad := ev.ValueGrad(w)
	// Rebuild the gradient from first principles: 2/n (G·W − G) + λ·sign.
	n := float64(st.N)
	want := mat.MulRef(st.Gram, w)
	want.AxpyInPlace(-1, st.Gram)
	want.ScaleInPlace(2 / n)
	wd, gd, ww := want.Data(), grad.Data(), w.Data()
	for i := range wd {
		wd[i] += 0.05 * sign(ww[i])
		if math.Float64bits(wd[i]) != math.Float64bits(gd[i]) {
			t.Fatalf("grad[%d] = %g, want %g", i, gd[i], wd[i])
		}
	}
}
