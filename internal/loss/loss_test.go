package loss

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/sparse"
)

func TestValueZeroResidual(t *testing.T) {
	// X with X = X·W exactly: x2 = 2·x1, W[0,1] = 2 and column 0
	// unpredicted. Residual on column 0 equals X's column 0.
	x := mat.NewDenseData(2, 2, []float64{1, 2, 3, 6})
	w := mat.NewDense(2, 2)
	w.Set(0, 1, 2)
	ls := LeastSquares{Lambda: 0}
	// L = (1/n)(‖x₀‖² + 0) = (1+9)/2 = 5.
	if v := ls.Value(w, x); math.Abs(v-5) > 1e-12 {
		t.Fatalf("Value = %g want 5", v)
	}
}

func TestValueGradFiniteDifference(t *testing.T) {
	x := mat.NewDenseData(4, 3, []float64{
		1, 2, 0.5,
		-1, 0.3, 2,
		0.7, -1.2, 1,
		2, 0.1, -0.4,
	})
	w := mat.NewDense(3, 3)
	w.Set(0, 1, 0.5)
	w.Set(1, 2, -0.7)
	w.Set(2, 0, 0.2)
	ls := LeastSquares{Lambda: 0} // L1 is non-smooth; check smooth part
	_, grad := ls.ValueGrad(w, x)
	const h = 1e-6
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			orig := w.At(i, j)
			w.Set(i, j, orig+h)
			fp := ls.Value(w, x)
			w.Set(i, j, orig-h)
			fm := ls.Value(w, x)
			w.Set(i, j, orig)
			fd := (fp - fm) / (2 * h)
			if math.Abs(fd-grad.At(i, j)) > 1e-5*math.Max(1, math.Abs(fd)) {
				t.Fatalf("(%d,%d): analytic %g vs fd %g", i, j, grad.At(i, j), fd)
			}
		}
	}
}

func TestL1SubgradientSigns(t *testing.T) {
	x := mat.NewDenseData(2, 2, []float64{1, 0, 0, 1})
	w := mat.NewDense(2, 2)
	w.Set(0, 1, 0.5)
	w.Set(1, 0, -0.5)
	lam := 0.3
	ls0 := LeastSquares{Lambda: 0}
	lsL := LeastSquares{Lambda: lam}
	_, g0 := ls0.ValueGrad(w, x)
	_, gL := lsL.ValueGrad(w, x)
	if math.Abs((gL.At(0, 1)-g0.At(0, 1))-lam) > 1e-12 {
		t.Fatal("positive weight should add +λ")
	}
	if math.Abs((gL.At(1, 0)-g0.At(1, 0))+lam) > 1e-12 {
		t.Fatal("negative weight should add −λ")
	}
	if gL.At(0, 0) != g0.At(0, 0) {
		t.Fatal("zero weight subgradient must be 0")
	}
}

func TestSparseMatchesDense(t *testing.T) {
	x := mat.NewDenseData(3, 3, []float64{1, 2, 3, -1, 0.5, 2, 0.3, -2, 1})
	wd := mat.NewDense(3, 3)
	wd.Set(0, 1, 0.4)
	wd.Set(2, 0, -0.6)
	wd.Set(1, 2, 0.9)
	ws := sparse.FromDense(wd, 0)
	ls := LeastSquares{Lambda: 0.2}
	vd := ls.Value(wd, x)
	vs := ls.ValueSparse(ws, x)
	if math.Abs(vd-vs) > 1e-12 {
		t.Fatalf("value: dense %g sparse %g", vd, vs)
	}
	_, gd := ls.ValueGrad(wd, x)
	_, gs := ls.ValueGradSparse(ws, x)
	idx := 0
	for i := 0; i < 3; i++ {
		for p := ws.RowPtr[i]; p < ws.RowPtr[i+1]; p++ {
			j := ws.ColIdx[p]
			if math.Abs(gs[idx]-gd.At(i, j)) > 1e-12 {
				t.Fatalf("grad (%d,%d): sparse %g dense %g", i, j, gs[idx], gd.At(i, j))
			}
			idx++
		}
	}
}

func TestStandardizeCentersColumns(t *testing.T) {
	x := mat.NewDenseData(3, 2, []float64{1, 10, 2, 20, 3, 30})
	Standardize(x)
	c := x.ColSums()
	if math.Abs(c[0]) > 1e-12 || math.Abs(c[1]) > 1e-12 {
		t.Fatalf("columns not centered: %v", c)
	}
}

func TestBatch(t *testing.T) {
	x := mat.NewDenseData(3, 2, []float64{1, 2, 3, 4, 5, 6})
	b := Batch(x, []int{2, 0})
	if b.Rows() != 2 || b.At(0, 0) != 5 || b.At(1, 1) != 2 {
		t.Fatalf("Batch: %v", b)
	}
}

func TestNaNGuard(t *testing.T) {
	if NaNGuard(1) || !NaNGuard(math.NaN()) || !NaNGuard(math.Inf(-1)) {
		t.Fatal("NaNGuard")
	}
}
