package loss

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/randx"
)

func randMat(rng *randx.RNG, rows, cols int) *mat.Dense {
	m := mat.NewDense(rows, cols)
	data := m.Data()
	for i := range data {
		data[i] = rng.Normal(0, 1)
	}
	return m
}

// relClose compares with a tolerance scaled to the magnitudes involved
// — the Gram and dense paths differ only in floating-point summation
// order, so agreement should be near machine precision relative to the
// accumulated terms.
func relClose(a, b, scale, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Max(math.Abs(b), scale)))
}

// TestValueGradGramMatchesDense: on random (W, X) across shapes and
// worker counts, the sufficient-statistics loss and gradient agree
// with the row-backed evaluation to ~1e-10 relative.
func TestValueGradGramMatchesDense(t *testing.T) {
	shapes := []struct{ n, d int }{{5, 3}, {40, 7}, {300, 12}, {129, 20}, {1000, 5}}
	for _, sh := range shapes {
		for _, workers := range []int{1, 3} {
			rng := randx.New(int64(7*sh.n + sh.d + workers))
			x := randMat(rng, sh.n, sh.d)
			w := randMat(rng, sh.d, sh.d)
			w.ZeroDiagonal()
			ls := LeastSquares{Lambda: 0.1, Workers: workers}
			st := StatsOf(x, workers)
			if st.N != sh.n || st.D() != sh.d {
				t.Fatalf("stats shape (%d,%d), want (%d,%d)", st.N, st.D(), sh.n, sh.d)
			}

			v1, g1 := ls.ValueGrad(w, x)
			v2, g2 := ls.ValueGradGram(w, st)
			scale := st.Gram.Trace() / float64(sh.n)
			if !relClose(v1, v2, scale, 1e-10) {
				t.Errorf("n=%d d=%d workers=%d: value %g vs gram %g", sh.n, sh.d, workers, v1, v2)
			}
			for i, v := range g1.Data() {
				if !relClose(v, g2.Data()[i], scale, 1e-9) {
					t.Fatalf("n=%d d=%d workers=%d: grad[%d] %g vs %g", sh.n, sh.d, workers, i, v, g2.Data()[i])
				}
			}
			if v := ls.ValueGram(w, st); v != v2 {
				t.Errorf("ValueGram %g != ValueGradGram value %g", v, v2)
			}
		}
	}
}

// TestStatsCentered: the rank-one Gram correction equals recomputing
// the statistics over explicitly centered rows.
func TestStatsCentered(t *testing.T) {
	rng := randx.New(3)
	x := randMat(rng, 120, 9)
	// Shift columns away from zero mean so centering actually moves G.
	for i := 0; i < x.Rows(); i++ {
		row := x.Row(i)
		for j := range row {
			row[j] += float64(j + 1)
		}
	}
	centered := StatsOf(x, 1).Centered()
	direct := StatsOf(Standardize(x.Clone()), 1)
	scale := direct.Gram.Trace()
	for i, v := range centered.Gram.Data() {
		if !relClose(v, direct.Gram.Data()[i], scale, 1e-10) {
			t.Fatalf("centered gram[%d] = %g, want %g", i, v, direct.Gram.Data()[i])
		}
	}
	for j, v := range centered.ColSums {
		if v != 0 {
			t.Fatalf("centered colsum[%d] = %g, want 0", j, v)
		}
	}
}

// TestGramAccumulatorMatchesStatsOf: streaming arbitrary chunkings
// through an accumulator with the same worker count reproduces StatsOf
// bit-for-bit (chunk-size GramChunkRows) or to summation-order
// tolerance (other chunkings).
func TestGramAccumulatorMatchesStatsOf(t *testing.T) {
	rng := randx.New(11)
	x := randMat(rng, 777, 6)
	for _, workers := range []int{1, 2, 5} {
		want := StatsOf(x, workers)

		// Same chunk size, fed as views: bit-identical.
		acc := NewGramAccumulator(x.Cols(), workers)
		for lo := 0; lo < x.Rows(); lo += GramChunkRows {
			hi := min(lo+GramChunkRows, x.Rows())
			acc.Add(x.Slice(lo, hi))
		}
		got := acc.Finish()
		if got.N != want.N {
			t.Fatalf("workers=%d: n=%d, want %d", workers, got.N, want.N)
		}
		for i, v := range got.Gram.Data() {
			if v != want.Gram.Data()[i] {
				t.Fatalf("workers=%d: gram[%d] = %g, want %g (bit-exact)", workers, i, v, want.Gram.Data()[i])
			}
		}
		for j, v := range got.ColSums {
			if v != want.ColSums[j] {
				t.Fatalf("workers=%d: colsum[%d] = %g, want %g", workers, j, v, want.ColSums[j])
			}
		}

		// Ragged chunking: equal up to summation order.
		acc = NewGramAccumulator(x.Cols(), workers)
		for lo, step := 0, 1; lo < x.Rows(); step++ {
			hi := min(lo+step*7%97+1, x.Rows())
			acc.Add(x.Slice(lo, hi))
			lo = hi
		}
		got = acc.Finish()
		scale := want.Gram.Trace()
		for i, v := range got.Gram.Data() {
			if !relClose(v, want.Gram.Data()[i], scale, 1e-12) {
				t.Fatalf("workers=%d ragged: gram[%d] = %g, want %g", workers, i, v, want.Gram.Data()[i])
			}
		}
	}
}

// TestSuffStatsHasNaN: NaN rows poison the statistics detectably.
func TestSuffStatsHasNaN(t *testing.T) {
	x := randMat(randx.New(5), 10, 3)
	if StatsOf(x, 1).HasNaN() {
		t.Fatal("clean stats report NaN")
	}
	x.Set(4, 1, math.NaN())
	if !StatsOf(x, 1).HasNaN() {
		t.Fatal("NaN in rows not visible in stats")
	}
	x.Set(4, 1, math.Inf(1))
	if !StatsOf(x, 1).HasNaN() {
		t.Fatal("Inf in rows not visible in stats")
	}
}
