package loss

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/mat"
)

// SuffStats are the sufficient statistics of the least-squares loss:
// everything L(W, X) and ∇L depend on besides W itself. Expanding the
// Frobenius term with G = XᵀX,
//
//	‖X − XW‖²_F = tr(G) − 2·⟨W, G⟩ + ⟨W, G·W⟩,
//	∇_W ‖X − XW‖²_F = 2·(G·W − G),
//
// so once G (d×d) is accumulated in a single pass over the rows, every
// loss evaluation costs O(d³) — independent of n. That is what lets
// the learners run off a streamed dataset whose rows were never
// materialized (DESIGN.md §6).
type SuffStats struct {
	// N is the number of rows the statistics were accumulated over.
	N int
	// Gram is G = XᵀX (d×d, symmetric).
	Gram *mat.Dense
	// ColSums holds the per-column sums Σ_i X[i,j]; with N it gives the
	// column means, which is all centering needs (see Centered).
	ColSums []float64
}

// D returns the number of variables.
func (s *SuffStats) D() int { return s.Gram.Cols() }

// HasNaN reports whether the statistics contain NaN/Inf — any NaN or
// overflow in the underlying rows necessarily poisons the Gram
// diagonal, so this is the stats-path analogue of Matrix.HasNaN.
func (s *SuffStats) HasNaN() bool {
	if s.Gram.HasNaN() {
		return true
	}
	for _, v := range s.ColSums {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// Centered returns the statistics of the column-centered data without
// touching any rows: with s = ColSums and μ = s/n, the centered Gram is
//
//	(X − 1μᵀ)ᵀ(X − 1μᵀ) = G − s·sᵀ/n,
//
// and the centered column sums are zero. The receiver is not modified.
func (s *SuffStats) Centered() *SuffStats {
	d := s.D()
	g := s.Gram.Clone()
	if s.N > 0 {
		inv := 1 / float64(s.N)
		for i := 0; i < d; i++ {
			row := g.Row(i)
			si := s.ColSums[i]
			for j := range row {
				row[j] -= si * s.ColSums[j] * inv
			}
		}
	}
	return &SuffStats{N: s.N, Gram: g, ColSums: make([]float64, d)}
}

// ValueGram returns L(W, X) evaluated from sufficient statistics.
// Matches Value up to floating-point summation order (see ValueGradGram).
func (ls LeastSquares) ValueGram(w *mat.Dense, st *SuffStats) float64 {
	v, _ := ls.gram(w, st, false)
	return v
}

// ValueGradGram returns L(W, X) and ∇_W L evaluated from sufficient
// statistics: (2/n)(G·W − G) + λ·sign(W), with the value from the
// expanded quadratic form. In exact arithmetic this equals ValueGrad on
// the same data; in floats it differs by summation order (the dense
// path sums n·d residual products, this one contracts against a
// pre-summed G), which is why the equivalence tests compare to a tight
// tolerance instead of bit-for-bit.
func (ls LeastSquares) ValueGradGram(w *mat.Dense, st *SuffStats) (float64, *mat.Dense) {
	return ls.gram(w, st, true)
}

func (ls LeastSquares) gram(w *mat.Dense, st *SuffStats, wantGrad bool) (float64, *mat.Dense) {
	return ls.gramInto(w, st, wantGrad, nil)
}

// gramInto is gram with an optional caller-owned destination for the
// G·W product (nil allocates one). Both paths run the same GEMM
// kernel, so results are bit-identical either way.
func (ls LeastSquares) gramInto(w *mat.Dense, st *SuffStats, wantGrad bool, dst *mat.Dense) (float64, *mat.Dense) {
	n := float64(st.N)
	g := st.Gram
	var m *mat.Dense
	if dst == nil {
		m = g.MulWorkers(w, ls.Workers) // G·W
	} else {
		m = g.MulInto(dst, w, ls.Workers) // G·W, allocation-free
	}
	sq := g.Trace() - 2*w.Dot(g) + w.Dot(m)
	if sq < 0 {
		// The expanded form can cancel slightly below zero when the
		// residual is tiny relative to tr(G); a squared norm never is.
		sq = 0
	}
	val := sq/n + ls.Lambda*w.SumAbs()
	if !wantGrad {
		return val, nil
	}
	grad := m
	grad.AxpyInPlace(-1, g)
	grad.ScaleInPlace(2 / n)
	gd, wd := grad.Data(), w.Data()
	for i := range gd {
		gd[i] += ls.Lambda * sign(wd[i])
	}
	return val, grad
}

// GramEval is a reusable evaluator of the sufficient-statistics loss.
// It owns the d×d workspace that receives the per-iteration G·W
// product, so steady-state evaluations allocate nothing — the learner
// inner loops call it thousands of times per learn, and with the
// tiled kernel's pooled pack buffers the whole evaluation runs at
// 0 allocs/op.
//
// The gradient returned by ValueGrad aliases the workspace and is
// valid only until the next Value/ValueGrad call; that is exactly the
// lifetime the learners need (the gradient is folded into the
// optimizer within the same iteration). A GramEval is not safe for
// concurrent use; concurrent jobs each build their own.
type GramEval struct {
	ls LeastSquares
	st *SuffStats
	gw *mat.Dense
}

// NewGramEval returns an evaluator of ls over the statistics st.
// Results are bit-identical to ls.ValueGradGram(w, st) at every worker
// bound.
func NewGramEval(ls LeastSquares, st *SuffStats) *GramEval {
	d := st.D()
	return &GramEval{ls: ls, st: st, gw: mat.NewDense(d, d)}
}

// Stats returns the statistics the evaluator was built over.
func (e *GramEval) Stats() *SuffStats { return e.st }

// Value returns L(W) — see LeastSquares.ValueGram.
func (e *GramEval) Value(w *mat.Dense) float64 {
	v, _ := e.ls.gramInto(w, e.st, false, e.gw)
	return v
}

// ValueGrad returns L(W) and ∇L — see LeastSquares.ValueGradGram. The
// gradient aliases the evaluator's workspace and is overwritten by the
// next call.
func (e *GramEval) ValueGrad(w *mat.Dense) (float64, *mat.Dense) {
	return e.ls.gramInto(w, e.st, true, e.gw)
}

// GramChunkRows is the row-chunk granularity of the sufficient-
// statistics accumulators. Matrix-backed and stream-backed ingest both
// chunk at this size, so for a fixed worker count they accumulate the
// same partial sums in the same order and produce bit-identical stats.
const GramChunkRows = 256

// GramAccumulator builds SuffStats from row chunks in one bounded-
// memory pass: chunks are dispatched round-robin to a fixed worker
// pool, each worker folds its chunks into a private d×d accumulator in
// arrival order, and Finish reduces the partials in slot order — the
// same deterministic-for-a-fixed-worker-count contract as the CSR
// kernels (internal/parallel). Memory is O(workers·d²) plus the chunks
// in flight, never O(n·d).
type GramAccumulator struct {
	d, workers int
	in         []chan *mat.Dense
	wg         sync.WaitGroup
	grams      []*mat.Dense
	sums       [][]float64
	next       int
	n          int
	done       bool
}

// NewGramAccumulator returns an accumulator for d-column rows.
// workers <= 0 selects runtime.GOMAXPROCS; 1 accumulates on the
// calling goroutine.
func NewGramAccumulator(d, workers int) *GramAccumulator {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	a := &GramAccumulator{
		d:       d,
		workers: workers,
		grams:   make([]*mat.Dense, workers),
		sums:    make([][]float64, workers),
	}
	for w := 0; w < workers; w++ {
		a.grams[w] = mat.NewDense(d, d)
		a.sums[w] = make([]float64, d)
	}
	if workers > 1 {
		a.in = make([]chan *mat.Dense, workers)
		for w := 0; w < workers; w++ {
			a.in[w] = make(chan *mat.Dense, 2)
			a.wg.Add(1)
			go func(w int) {
				defer a.wg.Done()
				for chunk := range a.in[w] {
					accumRows(a.grams[w], a.sums[w], chunk)
				}
			}(w)
		}
	}
	return a
}

// Add folds a chunk of rows into the statistics. The accumulator
// borrows the chunk until Finish returns: callers must not mutate it
// (hand over a fresh buffer or an immutable view). Add is not safe for
// concurrent use — it is the single producer of the pipeline. Adding
// after Finish or Abort panics: the worker pool is gone by then, so
// the chunk would silently fold into a partial that was already
// reduced (or discarded), corrupting the statistics.
func (a *GramAccumulator) Add(chunk *mat.Dense) {
	if a.done {
		panic("loss: GramAccumulator.Add after Finish or Abort")
	}
	if chunk.Rows() == 0 {
		return
	}
	a.n += chunk.Rows()
	if a.in == nil {
		accumRows(a.grams[0], a.sums[0], chunk)
		return
	}
	a.in[a.next] <- chunk
	a.next = (a.next + 1) % a.workers
}

// drain closes the worker channels and joins the pool, sealing the
// accumulator against further Adds.
func (a *GramAccumulator) drain() {
	a.done = true
	if a.in != nil {
		for _, c := range a.in {
			close(c)
		}
		a.wg.Wait()
		a.in = nil
	}
}

// Abort stops the pipeline without reducing a result — the mandatory
// cleanup when an ingest fails mid-stream, so the worker goroutines
// (each pinning a d×d partial) do not outlive the error. Idempotent;
// calling it after Finish is a no-op.
func (a *GramAccumulator) Abort() { a.drain() }

// Finish drains the pipeline and returns the reduced statistics. The
// accumulator must not be reused afterwards.
func (a *GramAccumulator) Finish() *SuffStats {
	a.drain()
	g := a.grams[0]
	sums := a.sums[0]
	for w := 1; w < a.workers; w++ {
		g.AddInPlace(a.grams[w])
		for j, v := range a.sums[w] {
			sums[j] += v
		}
	}
	return &SuffStats{N: a.n, Gram: g, ColSums: sums}
}

// accumRows folds chunk into (g, sums): g += chunkᵀ·chunk as a running
// sum of row outer products (cache-friendly: both g and chunk are
// walked row-major), sums += per-column totals.
func accumRows(g *mat.Dense, sums []float64, chunk *mat.Dense) {
	for i := 0; i < chunk.Rows(); i++ {
		row := chunk.Row(i)
		for j, v := range row {
			sums[j] += v
			if v == 0 {
				continue
			}
			grow := g.Row(j)
			for k, u := range row {
				grow[k] += v * u
			}
		}
	}
}

// StatsOf accumulates SuffStats over an in-memory matrix, chunking at
// GramChunkRows so the result is bit-identical to streaming the same
// rows through a GramAccumulator with the same worker count.
func StatsOf(x *mat.Dense, workers int) *SuffStats {
	a := NewGramAccumulator(x.Cols(), workers)
	n := x.Rows()
	for lo := 0; lo < n; lo += GramChunkRows {
		hi := lo + GramChunkRows
		if hi > n {
			hi = n
		}
		a.Add(x.Slice(lo, hi))
	}
	return a.Finish()
}
