// Package bnet wraps a learned weight matrix as a Bayesian-network
// object with named nodes — the layer the paper's applications operate
// on: edge ranking for the MovieLens case study (Table IV), in/out
// degree analytics for the "blockbuster" observation (§VI-C), ancestor
// path extraction for root-cause analysis (§VI-A), and neighbourhood
// subgraph extraction for figures like Fig 8.
package bnet

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/sparse"
)

// Network is a weighted directed graph with node names.
type Network struct {
	g     *graph.Digraph
	w     map[[2]int]float64
	names []string
}

// FromDense builds a Network from a weight matrix, keeping edges with
// |w| > tau. names may be nil (auto "X<i>") or have length d.
func FromDense(w *mat.Dense, tau float64, names []string) *Network {
	d := w.Rows()
	n := newNetwork(d, names)
	for i := 0; i < d; i++ {
		row := w.Row(i)
		for j, v := range row {
			if i != j && math.Abs(v) > tau {
				n.addEdge(i, j, v)
			}
		}
	}
	return n
}

// FromCSR builds a Network from a sparse weight matrix.
func FromCSR(w *sparse.CSR, tau float64, names []string) *Network {
	n := newNetwork(w.Rows(), names)
	for i := 0; i < w.Rows(); i++ {
		for p := w.RowPtr[i]; p < w.RowPtr[i+1]; p++ {
			j, v := w.ColIdx[p], w.Val[p]
			if i != j && math.Abs(v) > tau {
				n.addEdge(i, j, v)
			}
		}
	}
	return n
}

// FromEdges builds a Network from an explicit weighted edge list —
// the constructor for callers that already hold a thresholded form
// (internal/query renders its compiled graphs back into the stable
// bnet wire shape through this). Self-loops and out-of-range endpoints
// panic, matching AddEdge.
func FromEdges(d int, names []string, edges []WeightedEdge) *Network {
	n := newNetwork(d, names)
	for _, e := range edges {
		n.addEdge(e.From, e.To, e.Weight)
	}
	return n
}

func newNetwork(d int, names []string) *Network {
	if names == nil {
		names = make([]string, d)
		for i := range names {
			names[i] = fmt.Sprintf("X%d", i)
		}
	}
	if len(names) != d {
		panic(fmt.Sprintf("bnet: %d names for %d nodes", len(names), d))
	}
	return &Network{g: graph.New(d), w: make(map[[2]int]float64), names: names}
}

func (n *Network) addEdge(i, j int, v float64) {
	n.g.AddEdge(i, j)
	n.w[[2]int{i, j}] = v
}

// N returns the node count.
func (n *Network) N() int { return n.g.N() }

// NumEdges returns the edge count.
func (n *Network) NumEdges() int { return n.g.NumEdges() }

// Name returns node i's label.
func (n *Network) Name(i int) string { return n.names[i] }

// Index returns the node id with the given name, or -1.
func (n *Network) Index(name string) int {
	for i, s := range n.names {
		if s == name {
			return i
		}
	}
	return -1
}

// Weight returns the weight of edge i→j (0 if absent).
func (n *Network) Weight(i, j int) float64 { return n.w[[2]int{i, j}] }

// Graph exposes the underlying digraph.
func (n *Network) Graph() *graph.Digraph { return n.g }

// IsDAG reports whether the network is acyclic.
func (n *Network) IsDAG() bool { return n.g.IsDAG() }

// Parents returns the parent ids of node v.
func (n *Network) Parents(v int) []int { return n.g.Parents(v) }

// Children returns the child ids of node v.
func (n *Network) Children(v int) []int { return n.g.Children(v) }

// WeightedEdge is an edge with its learned weight.
type WeightedEdge struct {
	From, To int
	Weight   float64
}

// TopEdges returns the k edges with the largest |weight|, strongest
// first (ties broken by node ids for determinism) — the Table IV
// ranking.
func (n *Network) TopEdges(k int) []WeightedEdge {
	es := make([]WeightedEdge, 0, n.g.NumEdges())
	for _, e := range n.g.Edges() {
		es = append(es, WeightedEdge{e.From, e.To, n.Weight(e.From, e.To)})
	}
	sort.Slice(es, func(a, b int) bool {
		wa, wb := math.Abs(es[a].Weight), math.Abs(es[b].Weight)
		if wa != wb {
			return wa > wb
		}
		if es[a].From != es[b].From {
			return es[a].From < es[b].From
		}
		return es[a].To < es[b].To
	})
	if k > len(es) {
		k = len(es)
	}
	return es[:k]
}

// DegreeProfile summarizes a node's connectivity for the §VI-C
// blockbuster analysis.
type DegreeProfile struct {
	Node    int
	Name    string
	In, Out int
}

// DegreeProfiles returns all profiles sorted by (in − out) descending:
// "blockbuster" sinks first (many incoming, no outgoing), long-tail
// taste-indicator sources last.
func (n *Network) DegreeProfiles() []DegreeProfile {
	ps := make([]DegreeProfile, n.g.N())
	for i := 0; i < n.g.N(); i++ {
		ps[i] = DegreeProfile{Node: i, Name: n.names[i], In: n.g.InDegree(i), Out: n.g.OutDegree(i)}
	}
	sort.Slice(ps, func(a, b int) bool {
		da := ps[a].In - ps[a].Out
		db := ps[b].In - ps[b].Out
		if da != db {
			return da > db
		}
		return ps[a].Node < ps[b].Node
	})
	return ps
}

// WeightedPath is a root-cause candidate path ending at a sink node,
// with the product of edge weights along it.
type WeightedPath struct {
	Nodes  []int
	Names  []string
	Weight float64
}

// PathsInto returns all simple paths ending at sink (root first),
// weight-scored, strongest-|weight| first — the "inspect all paths P
// whose destination is X" step of §VI-A.
func (n *Network) PathsInto(sink, maxLen, maxPaths int) []WeightedPath {
	raw := n.g.PathsInto(sink, maxLen, maxPaths)
	ps := make([]WeightedPath, 0, len(raw))
	for _, path := range raw {
		wp := WeightedPath{Nodes: path, Weight: 1}
		for i := 0; i+1 < len(path); i++ {
			wp.Weight *= n.Weight(path[i], path[i+1])
		}
		for _, v := range path {
			wp.Names = append(wp.Names, n.names[v])
		}
		ps = append(ps, wp)
	}
	sort.Slice(ps, func(a, b int) bool {
		wa, wb := math.Abs(ps[a].Weight), math.Abs(ps[b].Weight)
		if wa != wb {
			return wa > wb
		}
		return strings.Join(ps[a].Names, "/") < strings.Join(ps[b].Names, "/")
	})
	return ps
}

// Neighborhood extracts the subgraph of nodes within the given number
// of hops (in either direction) of center — the Fig-8 style local view.
// It returns the sub-network with remapped ids.
func (n *Network) Neighborhood(center, hops int) *Network {
	level := map[int]int{center: 0}
	frontier := []int{center}
	for h := 1; h <= hops; h++ {
		var next []int
		for _, v := range frontier {
			for _, u := range append(n.g.Parents(v), n.g.Children(v)...) {
				if _, ok := level[u]; !ok {
					level[u] = h
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	keep := make([]int, 0, len(level))
	for v := range level {
		keep = append(keep, v)
	}
	sort.Ints(keep)
	sub := newNetwork(len(keep), nil)
	idx := make(map[int]int, len(keep))
	for i, v := range keep {
		idx[v] = i
		sub.names[i] = n.names[v]
	}
	for _, u := range keep {
		for _, v := range n.g.Children(u) {
			if j, ok := idx[v]; ok {
				sub.addEdge(idx[u], j, n.Weight(u, v))
			}
		}
	}
	return sub
}

// DOT renders the network in Graphviz format with green/red edges for
// positive/negative weights, matching the Fig-8 convention.
func (n *Network) DOT() string {
	var b strings.Builder
	b.WriteString("digraph BN {\n")
	for _, e := range n.g.Edges() {
		color := "green"
		if n.Weight(e.From, e.To) < 0 {
			color = "red"
		}
		fmt.Fprintf(&b, "  %q -> %q [color=%s, label=\"%.3f\"];\n",
			n.names[e.From], n.names[e.To], color, n.Weight(e.From, e.To))
	}
	b.WriteString("}\n")
	return b.String()
}
