package bnet

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mat"
)

func TestJSONRoundTrip(t *testing.T) {
	w := mat.NewDense(3, 3)
	w.Set(0, 1, 0.5)
	w.Set(1, 2, -0.25)
	n := FromDense(w, 0.1, []string{"x", "y", "z"})
	var buf bytes.Buffer
	if err := n.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 2 || got.Name(2) != "z" {
		t.Fatal("structure lost")
	}
	if got.Weight(0, 1) != 0.5 || got.Weight(1, 2) != -0.25 {
		t.Fatal("weights lost")
	}
}

func TestReadJSONValidation(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"nodes":["a"],"edges":[{"from":0,"to":5}]}`)); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"nodes":["a","b"],"edges":[{"from":1,"to":1}]}`)); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
