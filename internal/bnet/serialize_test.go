package bnet

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mat"
	"repro/internal/sparse"
)

func TestJSONRoundTrip(t *testing.T) {
	w := mat.NewDense(3, 3)
	w.Set(0, 1, 0.5)
	w.Set(1, 2, -0.25)
	n := FromDense(w, 0.1, []string{"x", "y", "z"})
	var buf bytes.Buffer
	if err := n.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 2 || got.Name(2) != "z" {
		t.Fatal("structure lost")
	}
	if got.Weight(0, 1) != 0.5 || got.Weight(1, 2) != -0.25 {
		t.Fatal("weights lost")
	}
}

// TestJSONRoundTripCSRAndStability covers the serving-API usage of the
// interchange format: a network built from sparse weights must survive
// write → read → write with byte-identical output (the stable edge
// ordering is what makes cached graph responses reproducible), and
// every weight — including negative and sub-threshold-magnitude ones —
// must round-trip exactly.
func TestJSONRoundTripCSRAndStability(t *testing.T) {
	d := mat.NewDense(5, 5)
	d.Set(0, 1, 1.25)
	d.Set(1, 2, -0.75)
	d.Set(3, 0, 0.5)
	d.Set(2, 4, 1e-3) // below tau: must NOT appear
	w := sparse.FromDense(d, 0)
	names := []string{"n0", "n1", "n2", "n3", "n4"}
	n := FromCSR(w, 0.1, names)

	var first bytes.Buffer
	if err := n.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 5 || got.NumEdges() != 3 {
		t.Fatalf("round trip: %d nodes, %d edges", got.N(), got.NumEdges())
	}
	for _, e := range []struct {
		from, to int
		w        float64
	}{{0, 1, 1.25}, {1, 2, -0.75}, {3, 0, 0.5}} {
		if got.Weight(e.from, e.to) != e.w {
			t.Fatalf("edge %d→%d weight %g, want %g", e.from, e.to, got.Weight(e.from, e.to), e.w)
		}
	}
	if got.Weight(2, 4) != 0 {
		t.Fatal("sub-threshold edge leaked through serialization")
	}
	for i, name := range names {
		if got.Name(i) != name {
			t.Fatalf("name %d = %q, want %q", i, got.Name(i), name)
		}
	}

	var second bytes.Buffer
	if err := got.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("write → read → write not stable:\n%s\nvs\n%s", first.String(), second.String())
	}
}

func TestJSONRoundTripEmptyNetwork(t *testing.T) {
	n := FromDense(mat.NewDense(3, 3), 0.1, nil)
	var buf bytes.Buffer
	if err := n.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 3 || got.NumEdges() != 0 {
		t.Fatalf("empty network round trip: %d nodes, %d edges", got.N(), got.NumEdges())
	}
}

func TestReadJSONValidation(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"nodes":["a"],"edges":[{"from":0,"to":5}]}`)); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"nodes":["a","b"],"edges":[{"from":1,"to":1}]}`)); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
