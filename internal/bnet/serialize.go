package bnet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// jsonNetwork is the stable on-disk representation of a learned
// Bayesian network: node names plus a weighted edge list. It is the
// interchange format between the CLI tools, the monitoring system's
// periodic snapshots, and downstream consumers.
type jsonNetwork struct {
	Nodes []string   `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonEdge struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	Weight float64 `json:"weight"`
}

// WriteJSON serializes the network.
func (n *Network) WriteJSON(w io.Writer) error {
	out := jsonNetwork{Nodes: append([]string(nil), n.names...)}
	for _, e := range n.g.Edges() {
		out.Edges = append(out.Edges, jsonEdge{From: e.From, To: e.To, Weight: n.Weight(e.From, e.To)})
	}
	sort.Slice(out.Edges, func(a, b int) bool {
		if out.Edges[a].From != out.Edges[b].From {
			return out.Edges[a].From < out.Edges[b].From
		}
		return out.Edges[a].To < out.Edges[b].To
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON deserializes a network written by WriteJSON.
func ReadJSON(r io.Reader) (*Network, error) {
	var in jsonNetwork
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("bnet: decode: %w", err)
	}
	n := newNetwork(len(in.Nodes), in.Nodes)
	for _, e := range in.Edges {
		if e.From < 0 || e.From >= len(in.Nodes) || e.To < 0 || e.To >= len(in.Nodes) {
			return nil, fmt.Errorf("bnet: edge (%d,%d) out of range", e.From, e.To)
		}
		if e.From == e.To {
			return nil, fmt.Errorf("bnet: self-loop at %d", e.From)
		}
		n.addEdge(e.From, e.To, e.Weight)
	}
	return n, nil
}
