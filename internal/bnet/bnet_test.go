package bnet

import (
	"strings"
	"testing"

	"repro/internal/mat"
	"repro/internal/sparse"
)

func testNet() *Network {
	// a → b (0.5), b → c (−0.3), a → c (0.1 below default tau in some
	// tests), d isolated.
	w := mat.NewDense(4, 4)
	w.Set(0, 1, 0.5)
	w.Set(1, 2, -0.3)
	w.Set(0, 2, 0.1)
	return FromDense(w, 0.05, []string{"a", "b", "c", "d"})
}

func TestFromDenseThreshold(t *testing.T) {
	w := mat.NewDense(2, 2)
	w.Set(0, 1, 0.2)
	w.Set(1, 0, 0.01)
	n := FromDense(w, 0.05, nil)
	if n.NumEdges() != 1 || !n.Graph().HasEdge(0, 1) {
		t.Fatal("threshold")
	}
	if n.Name(0) != "X0" {
		t.Fatal("auto names")
	}
}

func TestFromCSRMatchesDense(t *testing.T) {
	w := mat.NewDense(3, 3)
	w.Set(0, 1, 0.4)
	w.Set(2, 0, -0.2)
	nd := FromDense(w, 0.1, nil)
	ns := FromCSR(sparse.FromDense(w, 0), 0.1, nil)
	if nd.NumEdges() != ns.NumEdges() {
		t.Fatal("edge count mismatch")
	}
	if ns.Weight(0, 1) != 0.4 || ns.Weight(2, 0) != -0.2 {
		t.Fatal("weights")
	}
}

func TestIndexAndWeight(t *testing.T) {
	n := testNet()
	if n.Index("c") != 2 || n.Index("zzz") != -1 {
		t.Fatal("Index")
	}
	if n.Weight(0, 1) != 0.5 || n.Weight(1, 0) != 0 {
		t.Fatal("Weight")
	}
	if !n.IsDAG() {
		t.Fatal("IsDAG")
	}
}

func TestTopEdgesOrdering(t *testing.T) {
	n := testNet()
	top := n.TopEdges(2)
	if len(top) != 2 {
		t.Fatal("len")
	}
	if top[0].Weight != 0.5 || top[1].Weight != -0.3 {
		t.Fatalf("order: %+v", top)
	}
	all := n.TopEdges(100)
	if len(all) != 3 {
		t.Fatal("cap at edge count")
	}
}

func TestDegreeProfiles(t *testing.T) {
	n := testNet()
	ps := n.DegreeProfiles()
	// c has in=2 out=0 → first; a has in=0 out=2 → last.
	if ps[0].Name != "c" || ps[len(ps)-1].Name != "a" {
		t.Fatalf("profiles: %+v", ps)
	}
}

func TestPathsIntoWeights(t *testing.T) {
	n := testNet()
	paths := n.PathsInto(2, 5, 100)
	if len(paths) != 2 {
		t.Fatalf("paths: %+v", paths)
	}
	// Strongest |weight| first: a→b→c product 0.5·−0.3 = −0.15 vs
	// a→c 0.1.
	if paths[0].Weight != -0.15 {
		t.Fatalf("path weight order: %+v", paths)
	}
	if paths[0].Names[0] != "a" || paths[0].Names[2] != "c" {
		t.Fatalf("path names: %v", paths[0].Names)
	}
}

func TestNeighborhood(t *testing.T) {
	n := testNet()
	sub := n.Neighborhood(n.Index("b"), 1)
	// b plus parent a and child c.
	if sub.N() != 3 {
		t.Fatalf("neighborhood size %d", sub.N())
	}
	if sub.Index("d") != -1 {
		t.Fatal("isolated node leaked in")
	}
	if sub.Weight(sub.Index("a"), sub.Index("b")) != 0.5 {
		t.Fatal("weights must survive remapping")
	}
}

func TestDOTColors(t *testing.T) {
	n := testNet()
	dot := n.DOT()
	if !strings.Contains(dot, `"a" -> "b" [color=green`) {
		t.Fatalf("positive edge color: %s", dot)
	}
	if !strings.Contains(dot, `"b" -> "c" [color=red`) {
		t.Fatalf("negative edge color: %s", dot)
	}
}

func TestNameCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromDense(mat.NewDense(3, 3), 0.1, []string{"only-one"})
}
