package gene

import (
	"testing"

	"repro/internal/randx"
)

func TestSachsStructure(t *testing.T) {
	rng := randx.New(1)
	ds := Sachs(rng, 500)
	if ds.Truth.N() != 11 {
		t.Fatalf("Sachs nodes = %d", ds.Truth.N())
	}
	if ds.Truth.NumEdges() != 17 {
		t.Fatalf("Sachs edges = %d, want 17 (consensus network)", ds.Truth.NumEdges())
	}
	if !ds.Truth.IsDAG() {
		t.Fatal("Sachs consensus network must be a DAG")
	}
	if ds.Samples.Rows() != 500 || ds.Samples.Cols() != 11 {
		t.Fatal("sample shape")
	}
	// Spot-check two canonical edges: PKC → PKA and Raf → Mek.
	idx := func(g string) int {
		for i, name := range ds.Genes {
			if name == g {
				return i
			}
		}
		t.Fatalf("gene %s missing", g)
		return -1
	}
	if !ds.Truth.HasEdge(idx("PKC"), idx("PKA")) {
		t.Fatal("PKC → PKA missing")
	}
	if !ds.Truth.HasEdge(idx("Raf"), idx("Mek")) {
		t.Fatal("Raf → Mek missing")
	}
	if ds.Truth.HasEdge(idx("Mek"), idx("Raf")) {
		t.Fatal("reversed Raf/Mek")
	}
}

func TestSachsDeterministicPerSeed(t *testing.T) {
	a := Sachs(randx.New(5), 100)
	b := Sachs(randx.New(5), 100)
	if !a.Samples.EqualApprox(b.Samples, 0) {
		t.Fatal("same seed must reproduce samples")
	}
}

func TestRegulatoryExactCounts(t *testing.T) {
	rng := randx.New(2)
	ds := Regulatory(rng, "test", 200, 455, 200)
	if ds.Truth.N() != 200 {
		t.Fatal("nodes")
	}
	if ds.Truth.NumEdges() != 455 {
		t.Fatalf("edges = %d want exactly 455", ds.Truth.NumEdges())
	}
	if !ds.Truth.IsDAG() {
		t.Fatal("regulatory network must be a DAG")
	}
	// Weights exist exactly on edges.
	for _, e := range ds.Truth.Edges() {
		if ds.TrueW.At(e.From, e.To) == 0 {
			t.Fatal("edge without weight")
		}
	}
	if ds.Samples.Rows() != 200 {
		t.Fatal("n = d convention")
	}
}

func TestEColiYeastScaledShapes(t *testing.T) {
	rng := randx.New(3)
	ec := EColi(rng.Split(), 10)
	if ec.Truth.N() != 156 || ec.Truth.NumEdges() != 364 {
		t.Fatalf("E.coli/10: %d nodes %d edges", ec.Truth.N(), ec.Truth.NumEdges())
	}
	ye := Yeast(rng.Split(), 20)
	if ye.Truth.N() != 222 || ye.Truth.NumEdges() != 643 {
		t.Fatalf("Yeast/20: %d nodes %d edges", ye.Truth.N(), ye.Truth.NumEdges())
	}
	if !ec.Truth.IsDAG() || !ye.Truth.IsDAG() {
		t.Fatal("must be DAGs")
	}
}

func TestEColiFullSizeConstantsDocumented(t *testing.T) {
	// Factor 1 must reproduce the paper's Table III sizes. Building
	// the full E. coli graph is cheap (only sampling is expensive), so
	// verify the real constants.
	rng := randx.New(4)
	ds := Regulatory(rng, "E.Coli", 1565, 3648, 10) // few samples: fast
	if ds.Truth.N() != 1565 || ds.Truth.NumEdges() != 3648 {
		t.Fatalf("full E.coli: %d/%d", ds.Truth.N(), ds.Truth.NumEdges())
	}
}

func TestRegulatoryHubSkew(t *testing.T) {
	rng := randx.New(5)
	ds := Regulatory(rng, "x", 300, 700, 10)
	maxDeg, sum := 0, 0
	for v := 0; v < 300; v++ {
		deg := ds.Truth.InDegree(v) + ds.Truth.OutDegree(v)
		sum += deg
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	mean := float64(sum) / 300
	if float64(maxDeg) < 3*mean {
		t.Fatalf("no hub structure: max %d mean %.1f", maxDeg, mean)
	}
}
