// Package gene provides the gene-expression substrate for the §VI-B
// experiments (Tables I/III). Three datasets are modeled:
//
//   - Sachs: the classic 11-node flow-cytometry protein-signalling
//     network. Its consensus structure (17 edges) is public domain
//     knowledge; we hard-code it and sample synthetic expression data
//     from it (the paper uses the bnlearn copy with 1000 samples).
//   - E. coli and Yeast: the paper uses GeneNetWeaver extractions with
//     1565 nodes / 3648 edges and 4441 nodes / 12873 edges. The raw
//     GeneNetWeaver networks are not shippable here, so we synthesize
//     scale-free regulatory networks with exactly the paper's
//     node/edge counts and sample expression profiles from them —
//     preserving what drives the comparison: size, degree skew, and
//     sample count (n = d, as in Table III).
//
// See DESIGN.md §2 for the substitution rationale.
package gene

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/randx"
)

// Dataset is a gene-expression benchmark instance.
type Dataset struct {
	Name    string
	Genes   []string
	Truth   *graph.Digraph
	TrueW   *mat.Dense // ground-truth weights used for sampling
	Samples *mat.Dense // n×d expression matrix
}

// sachsNodes lists the 11 measured proteins/phospholipids of the Sachs
// et al. (2005) dataset in bnlearn order.
var sachsNodes = []string{
	"Raf", "Mek", "Plcg", "PIP2", "PIP3", "Erk", "Akt", "PKA", "PKC", "P38", "Jnk",
}

// sachsEdges is the 17-edge consensus causal structure of Sachs et al.
var sachsEdges = [][2]string{
	{"PKC", "Raf"}, {"PKC", "Mek"}, {"PKC", "Jnk"}, {"PKC", "P38"}, {"PKC", "PKA"},
	{"PKA", "Raf"}, {"PKA", "Mek"}, {"PKA", "Erk"}, {"PKA", "Akt"}, {"PKA", "Jnk"}, {"PKA", "P38"},
	{"Raf", "Mek"}, {"Mek", "Erk"}, {"Erk", "Akt"},
	{"Plcg", "PIP2"}, {"Plcg", "PIP3"}, {"PIP3", "PIP2"},
}

// Sachs builds the 11-node Sachs benchmark with n samples of synthetic
// expression data drawn from an LSEM over the consensus network.
func Sachs(rng *randx.RNG, n int) *Dataset {
	d := len(sachsNodes)
	idx := make(map[string]int, d)
	for i, g := range sachsNodes {
		idx[g] = i
	}
	truth := graph.New(d)
	w := mat.NewDense(d, d)
	for _, e := range sachsEdges {
		i, j := idx[e[0]], idx[e[1]]
		truth.AddEdge(i, j)
		w.Set(i, j, rng.SignedUniform(0.5, 1.5))
	}
	dag := &gen.DAG{G: truth, W: w}
	x := gen.SampleLSEM(rng, dag, n, randx.Gaussian)
	return &Dataset{Name: "Sachs", Genes: append([]string(nil), sachsNodes...), Truth: truth, TrueW: w, Samples: x}
}

// Regulatory synthesizes a GeneNetWeaver-like regulatory network with
// the given gene and edge counts: a scale-free topology (hub
// transcription factors regulating many targets — the degree law
// GeneNetWeaver extracts from real interactomes), LSEM expression
// sampling with Gaussian noise, and n = genes samples as in Table III.
func Regulatory(rng *randx.RNG, name string, genes, edges, n int) *Dataset {
	if edges > genes*(genes-1)/2 {
		panic("gene: too many edges requested")
	}
	// Grow a preferential-attachment DAG, then adjust to the exact
	// edge budget by random insertion/deletion in rank order.
	meanDeg := 2 * edges / genes
	if meanDeg < 2 {
		meanDeg = 2
	}
	dag := gen.RandomDAG(rng, gen.SF, genes, meanDeg, 0.5, 1.5)
	adjustEdgeCount(rng, dag, edges)
	x := gen.SampleLSEM(rng, dag, n, randx.Gaussian)
	names := make([]string, genes)
	for i := range names {
		names[i] = fmt.Sprintf("G%05d", i)
	}
	return &Dataset{Name: name, Genes: names, Truth: dag.G, TrueW: dag.W, Samples: x}
}

// EColi returns the E. coli-scale benchmark (1565 genes, 3648 edges,
// n = 1565) at the paper's full size, or proportionally scaled down by
// factor > 1 for CI runs.
func EColi(rng *randx.RNG, factor int) *Dataset {
	if factor < 1 {
		factor = 1
	}
	g, e := 1565/factor, 3648/factor
	return Regulatory(rng, "E.Coli", g, e, g)
}

// Yeast returns the Yeast-scale benchmark (4441 genes, 12873 edges,
// n = 4441), optionally scaled down by factor.
func Yeast(rng *randx.RNG, factor int) *Dataset {
	if factor < 1 {
		factor = 1
	}
	g, e := 4441/factor, 12873/factor
	return Regulatory(rng, "Yeast", g, e, g)
}

// adjustEdgeCount adds or removes random edges (keeping acyclicity) so
// the DAG has exactly target edges.
func adjustEdgeCount(rng *randx.RNG, dag *gen.DAG, target int) {
	order, ok := dag.G.TopoSort()
	if !ok {
		panic("gene: adjustEdgeCount on cyclic graph")
	}
	rank := make([]int, len(order))
	for r, v := range order {
		rank[v] = r
	}
	d := dag.G.N()
	for dag.G.NumEdges() > target {
		es := dag.G.Edges()
		e := es[rng.Intn(len(es))]
		dag.G.RemoveEdge(e.From, e.To)
		dag.W.Set(e.From, e.To, 0)
	}
	for dag.G.NumEdges() < target {
		u, v := rng.Intn(d), rng.Intn(d)
		if u == v || rank[u] >= rank[v] || dag.G.HasEdge(u, v) {
			continue
		}
		dag.G.AddEdge(u, v)
		dag.W.Set(u, v, rng.SignedUniform(0.5, 1.5))
	}
}
