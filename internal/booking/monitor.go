package booking

import (
	"context"
	"math"
	"sort"

	"repro/internal/bnet"
	"repro/internal/core"
	"repro/internal/loss"
	"repro/internal/mat"
	"repro/internal/randx"
	"repro/internal/stats"
)

// Window is one monitoring interval's worth of booking logs (§VI-A
// collects 24h of logs every half hour) in both raw and indicator
// form.
type Window struct {
	World   *World
	Records []Record
	// X is the n×d 0/1 indicator matrix (before centering).
	X *mat.Dense
}

// GenerateWindow simulates n booking attempts under the given active
// incidents and assembles the indicator matrix.
func GenerateWindow(rng *randx.RNG, w *World, incidents []*Incident, n int) *Window {
	win := &Window{World: w, Records: make([]Record, n), X: mat.NewDense(n, w.NumVars())}
	for r := 0; r < n; r++ {
		rec := w.sample(rng, incidents)
		win.Records[r] = rec
		row := win.X.Row(r)
		row[w.airlineVar(rec.Airline)] = 1
		row[w.fareVar(rec.FareSource)] = 1
		row[w.agentVar(rec.Agent)] = 1
		row[w.cityVar(rec.DepCity)] = 1
		row[w.cityVar(rec.ArrCity)] = 1
		row[w.interVar(rec.Intermediary)] = 1
		for s := 0; s < NumSteps; s++ {
			if rec.Errors[s] {
				row[w.ErrorVar(s)] = 1
			}
		}
	}
	return win
}

// ErrorRate returns the fraction of records with a step-s failure.
func (win *Window) ErrorRate(step int) float64 {
	if len(win.Records) == 0 {
		return 0
	}
	k := 0
	for _, r := range win.Records {
		if r.Errors[step] {
			k++
		}
	}
	return float64(k) / float64(len(win.Records))
}

// countPath counts records where every entity variable on the path is
// set and, if requireError, the sink error fired too. vars holds BN
// variable ids; the last one must be an error node.
func (win *Window) countPath(vars []int, requireError bool) int {
	w := win.World
	errVar := vars[len(vars)-1]
	step := errVar - w.numEntities()
	n := 0
	for r := range win.Records {
		row := win.X.Row(r)
		match := true
		for _, v := range vars[:len(vars)-1] {
			if row[v] != 1 {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if requireError {
			if step >= 0 && step < NumSteps && win.Records[r].Errors[step] {
				n++
			}
		} else {
			n++
		}
	}
	return n
}

// LearnOptions tunes the per-window structure learning.
type LearnOptions struct {
	Lambda   float64
	Epsilon  float64
	EdgeTau  float64 // |weight| threshold when materializing the BN
	MaxOuter int
	MaxInner int
	Seed     int64
}

// DefaultLearnOptions returns settings tuned for the ~50-node booking
// variable space (a dense LEAST run takes well under a second).
func DefaultLearnOptions() LearnOptions {
	return LearnOptions{Lambda: 0.005, Epsilon: 1e-2, EdgeTau: 0.01, MaxOuter: 10, MaxInner: 150, Seed: 1}
}

// Learn runs LEAST on the window's centered indicator matrix and
// returns the learned Bayesian network. The learn observes ctx within
// one inner iteration: when the monitoring cycle is cancelled (drain,
// deadline before the next half-hourly window) Learn returns ctx's
// error instead of finishing the full augmented-Lagrangian schedule.
//
// Two pieces of §VI-A domain knowledge shape the materialized BN:
// error indicators are pure effects (their rows are pinned during
// learning, so links point *into* the error nodes as in Fig 6), and
// edges inside one one-hot entity block (airline↔airline, city↔city…)
// are dropped — exactly-one-of-k indicators are strongly negatively
// correlated by construction, and those artifact edges carry no causal
// reading (Fig 6 shows only cross-entity links).
func Learn(ctx context.Context, win *Window, lo LearnOptions) (*bnet.Network, error) {
	x := win.X.Clone()
	loss.Standardize(x)
	o := core.DefaultOptions()
	o.Lambda = lo.Lambda
	o.Epsilon = lo.Epsilon
	o.CheckH = true
	o.MaxOuter = lo.MaxOuter
	o.MaxInner = lo.MaxInner
	o.Seed = lo.Seed
	for s := 0; s < NumSteps; s++ {
		o.SinkNodes = append(o.SinkNodes, win.World.ErrorVar(s))
	}
	res := core.DenseCtx(ctx, x, o)
	if res.Cancelled {
		return nil, ctx.Err()
	}
	w := win.World
	for i := 0; i < res.W.Rows(); i++ {
		for j := 0; j < res.W.Cols(); j++ {
			if i != j && w.sameBlock(i, j) {
				res.W.Set(i, j, 0)
			}
		}
	}
	return bnet.FromDense(res.W, lo.EdgeTau, w.VarNames()), nil
}

// Alert is one reported anomaly: a root-cause candidate path into an
// error node with its two-window statistical evidence.
type Alert struct {
	Step     int
	Path     bnet.WeightedPath // root first, error node last
	PathVars []int
	// CurCount/PrevCount are error-conditioned path occurrences in the
	// current and previous windows; CurN/PrevN the path exposures.
	CurCount, PrevCount int
	CurN, PrevN         int
	PValue              float64
}

// Detect inspects every path into each error node of the learned
// network and reports those whose error-conditional frequency rose
// significantly versus the previous window (two-proportion z-test,
// p < pThresh) — the §VI-A detection rule.
func Detect(net *bnet.Network, cur, prev *Window, pThresh float64) []Alert {
	w := cur.World
	var alerts []Alert
	for s := 0; s < NumSteps; s++ {
		sink := w.ErrorVar(s)
		for _, p := range net.PathsInto(sink, 5, 256) {
			// Exposure = bookings matching the path's entity prefix;
			// hits = those that also errored at the sink step.
			curN := cur.countPath(p.Nodes, false)
			prevN := prev.countPath(p.Nodes, false)
			curK := cur.countPath(p.Nodes, true)
			prevK := prev.countPath(p.Nodes, true)
			if curK < 3 {
				continue // too little evidence to call
			}
			_, pv := stats.TwoProportionZ(curK, max(curN, 1), prevK, max(prevN, 1))
			// One-sided: only increases are anomalies.
			curRate := float64(curK) / float64(max(curN, 1))
			prevRate := float64(prevK) / float64(max(prevN, 1))
			if curRate <= prevRate {
				continue
			}
			if pv < pThresh {
				alerts = append(alerts, Alert{
					Step: s, Path: p, PathVars: p.Nodes,
					CurCount: curK, PrevCount: prevK,
					CurN: curN, PrevN: prevN, PValue: pv,
				})
			}
		}
	}
	sort.Slice(alerts, func(i, j int) bool { return alerts[i].PValue < alerts[j].PValue })
	return dedupeAlerts(alerts)
}

// dedupeAlerts keeps the most significant alert per (step, root
// entity) pair so one incident does not flood the report.
func dedupeAlerts(alerts []Alert) []Alert {
	seen := make(map[[2]int]bool)
	var out []Alert
	for _, a := range alerts {
		key := [2]int{a.Step, a.PathVars[0]}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, a)
	}
	return out
}

// Classify attributes an alert to the injected incident that best
// explains it: the incident must target the same step and share at
// least one scoped entity variable with the alert path. It returns
// CatFalseAlarm when nothing matches.
func Classify(w *World, a Alert, active []*Incident) Category {
	pathSet := make(map[int]bool, len(a.PathVars))
	for _, v := range a.PathVars {
		pathSet[v] = true
	}
	bestOverlap := 0
	var bestCat Category = CatFalseAlarm
	for _, inc := range active {
		if inc.Step != a.Step {
			continue
		}
		overlap := 0
		for _, v := range inc.entityVars(w) {
			if pathSet[v] {
				overlap++
			}
		}
		if overlap > bestOverlap {
			bestOverlap = overlap
			bestCat = inc.Category
		}
	}
	return bestCat
}

// MonitorPeriod runs one full monitoring cycle — generate the current
// window under the active incidents, learn the BN, detect against the
// previous window — and returns the alerts plus the learned network.
// Cancelling ctx aborts the learn mid-iteration; the generated window
// is still returned so a resumed cycle can reuse it.
func MonitorPeriod(ctx context.Context, rng *randx.RNG, w *World, active []*Incident, prev *Window, n int, lo LearnOptions, pThresh float64) ([]Alert, *bnet.Network, *Window, error) {
	cur := GenerateWindow(rng, w, active, n)
	net, err := Learn(ctx, cur, lo)
	if err != nil {
		return nil, nil, cur, err
	}
	alerts := Detect(net, cur, prev, pThresh)
	return alerts, net, cur, nil
}

// PieSlice is one Fig 7 category share.
type PieSlice struct {
	Category Category
	Count    int
	Share    float64
}

// Pie aggregates classified alerts into Fig 7 shares.
func Pie(cats []Category) []PieSlice {
	counts := map[Category]int{}
	for _, c := range cats {
		counts[c]++
	}
	order := []Category{CatExternal, CatAirline, CatAgent, CatIntermediary, CatUnpredictable, CatFalseAlarm}
	total := len(cats)
	var out []PieSlice
	for _, c := range order {
		if counts[c] == 0 {
			continue
		}
		share := 0.0
		if total > 0 {
			share = float64(counts[c]) / float64(total)
		}
		out = append(out, PieSlice{Category: c, Count: counts[c], Share: share})
	}
	return out
}

// TruePositiveRate returns the non-false-alarm share — the 97% number
// of §VI-A.
func TruePositiveRate(slices []PieSlice) float64 {
	tp, total := 0, 0
	for _, s := range slices {
		total += s.Count
		if s.Category != CatFalseAlarm {
			tp += s.Count
		}
	}
	if total == 0 {
		return math.NaN()
	}
	return float64(tp) / float64(total)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
