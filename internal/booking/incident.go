package booking

import (
	"strings"

	"repro/internal/randx"
)

// Category classifies an incident's root cause, matching the Fig 7
// slices.
type Category string

// Fig 7 root-cause categories.
const (
	CatExternal      Category = "external systems"
	CatAirline       Category = "airline"
	CatAgent         Category = "travel agent"
	CatIntermediary  Category = "intermediary interfaces"
	CatUnpredictable Category = "unpredictable events"
	CatFalseAlarm    Category = "false alarms"
)

// Incident is an injected failure mode, scoped by entity filters
// (−1 = any). The scripts below mirror the Table II case studies.
type Incident struct {
	Name     string
	Category Category
	// Step is the booking step whose error rate the incident raises.
	Step int
	// Scope filters: a booking matches when every set filter matches.
	Airline, FareSource, Agent, ArrCity, DepCity, Intermediary int
	// FareSourceSet optionally widens FareSource to a set (Table II's
	// "Fare sources 3,9,16 ← Airline AC" pattern).
	FareSourceSet []int
	// Boost is the additional per-booking failure probability.
	Boost float64
}

// matches reports whether a booking record falls in the incident's
// scope.
func (inc *Incident) matches(w *World, r Record) bool {
	if inc.Airline >= 0 && r.Airline != inc.Airline {
		return false
	}
	if inc.FareSource >= 0 && r.FareSource != inc.FareSource {
		return false
	}
	if len(inc.FareSourceSet) > 0 {
		ok := false
		for _, f := range inc.FareSourceSet {
			if r.FareSource == f {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if inc.Agent >= 0 && r.Agent != inc.Agent {
		return false
	}
	if inc.ArrCity >= 0 && r.ArrCity != inc.ArrCity {
		return false
	}
	if inc.DepCity >= 0 && r.DepCity != inc.DepCity {
		return false
	}
	if inc.Intermediary >= 0 && r.Intermediary != inc.Intermediary {
		return false
	}
	return true
}

// anyScope returns an incident with all filters cleared.
func anyScope() Incident {
	return Incident{Airline: -1, FareSource: -1, Agent: -1, ArrCity: -1, DepCity: -1, Intermediary: -1}
}

// newIncident fills in an incident from a template.
func newIncident(name string, cat Category, step int, boost float64, scope func(*Incident)) *Incident {
	inc := anyScope()
	inc.Name = name
	inc.Category = cat
	inc.Step = step
	inc.Boost = boost
	scope(&inc)
	return &inc
}

// TableIIScripts returns incident scripts mirroring the Table II case
// studies, addressed against the given world.
func TableIIScripts(w *World) []*Incident {
	airline := func(code string) int {
		for i, a := range w.Airlines {
			if a == code {
				return i
			}
		}
		return -1
	}
	city := func(code string) int {
		for i, c := range w.Cities {
			if c == code {
				return i
			}
		}
		return -1
	}
	agent := func(sub string) int {
		for i, g := range w.Agents {
			if strings.Contains(g, sub) {
				return i
			}
		}
		return -1
	}
	return []*Incident{
		// 2019-11-19: Air Canada booking-system maintenance breaking
		// several fare sources at the reserve step.
		newIncident("AC-maintenance", CatAirline, StepReserve, 0.45, func(i *Incident) {
			i.Airline = airline("AC")
			i.FareSourceSet = []int{3, 6, 9}
		}),
		// 2019-12-05: inaccurate Amadeus data for airline SL via agent
		// office BKK275Q.
		newIncident("SL-agent-data", CatAgent, StepReserve, 0.5, func(i *Incident) {
			i.Airline = airline("SL")
			i.Agent = agent("BKK275Q")
		}),
		// 2019-12-09: internal deployment problem surfacing through
		// fare source 5 (most visible on airline MU, which uses it
		// heavily — Table II lists both paths).
		newIncident("MU-deployment", CatExternal, StepReserve, 0.45, func(i *Incident) {
			i.FareSource = 5
		}),
		// 2020-01-23: Wuhan lock-down — availability errors for
		// arrivals into WUH.
		newIncident("WUH-lockdown", CatUnpredictable, StepAvailability, 0.6, func(i *Incident) {
			i.ArrCity = city("WUH")
		}),
		// 2020-02-15/20/28: travel-ban transfers through Bangkok.
		newIncident("BKK-travel-ban", CatUnpredictable, StepAvailability, 0.35, func(i *Incident) {
			i.ArrCity = city("BKK")
		}),
		// 2020-02-24: COVID outbreak in South Korea — departures from
		// SEL plus airline MU availability errors.
		newIncident("SEL-outbreak", CatUnpredictable, StepAvailability, 0.5, func(i *Incident) {
			i.DepCity = city("SEL")
		}),
		// Intermediary interface degradation (Fig 7's 3% slice).
		newIncident("Travelsky-degraded", CatIntermediary, StepPrice, 0.35, func(i *Incident) {
			for m, name := range w.Intermediaries {
				if name == "Travelsky" {
					i.Intermediary = m
				}
			}
		}),
	}
}

// entityVars returns the BN variable ids an incident's scope touches —
// used to decide whether a reported anomaly path explains an incident.
func (inc *Incident) entityVars(w *World) []int {
	var vars []int
	if inc.Airline >= 0 {
		vars = append(vars, w.airlineVar(inc.Airline))
	}
	if inc.FareSource >= 0 {
		vars = append(vars, w.fareVar(inc.FareSource))
	}
	for _, f := range inc.FareSourceSet {
		vars = append(vars, w.fareVar(f))
	}
	if inc.Agent >= 0 {
		vars = append(vars, w.agentVar(inc.Agent))
	}
	if inc.ArrCity >= 0 {
		vars = append(vars, w.cityVar(inc.ArrCity))
	}
	if inc.DepCity >= 0 {
		vars = append(vars, w.cityVar(inc.DepCity))
	}
	if inc.Intermediary >= 0 {
		vars = append(vars, w.interVar(inc.Intermediary))
	}
	return vars
}

// RandomIncident draws a random incident of the given category — the
// generator behind the Fig 7 multi-week stream.
func RandomIncident(rng *randx.RNG, w *World, cat Category) *Incident {
	step := rng.Intn(NumSteps)
	boost := rng.Uniform(0.3, 0.6)
	switch cat {
	case CatAirline:
		return newIncident("rand-airline", cat, step, boost, func(i *Incident) {
			i.Airline = rng.Intn(len(w.Airlines))
		})
	case CatAgent:
		return newIncident("rand-agent", cat, step, boost, func(i *Incident) {
			i.Agent = rng.Intn(len(w.Agents))
		})
	case CatIntermediary:
		return newIncident("rand-intermediary", cat, step, boost, func(i *Incident) {
			i.Intermediary = rng.Intn(len(w.Intermediaries))
		})
	case CatExternal:
		// External-system problems surface through fare sources.
		return newIncident("rand-external", cat, step, boost, func(i *Incident) {
			i.FareSource = rng.Intn(len(w.FareSources))
		})
	default: // unpredictable: city-scoped
		return newIncident("rand-unpredictable", cat, step, boost, func(i *Incident) {
			if rng.Intn(2) == 0 {
				i.ArrCity = rng.Intn(len(w.Cities))
			} else {
				i.DepCity = rng.Intn(len(w.Cities))
			}
		})
	}
}
