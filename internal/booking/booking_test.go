package booking

import (
	"context"
	"strings"
	"testing"

	"repro/internal/randx"
)

func TestWorldLayout(t *testing.T) {
	rng := randx.New(1)
	w := DefaultWorld(rng)
	if w.NumVars() != w.numEntities()+NumSteps {
		t.Fatal("variable layout")
	}
	names := w.VarNames()
	if len(names) != w.NumVars() {
		t.Fatal("name count")
	}
	// Blocks must tile the variable space in order.
	if !strings.HasPrefix(names[w.airlineVar(0)], "Airline:") {
		t.Fatal("airline block")
	}
	if !strings.HasPrefix(names[w.fareVar(0)], "FareSource:") {
		t.Fatal("fare block")
	}
	if !strings.HasPrefix(names[w.ErrorVar(StepReserve)], "Error:Step3") {
		t.Fatal("error block")
	}
}

func TestBlockHelpers(t *testing.T) {
	rng := randx.New(2)
	w := DefaultWorld(rng)
	if !w.sameBlock(w.airlineVar(0), w.airlineVar(3)) {
		t.Fatal("airlines share a block")
	}
	if w.sameBlock(w.airlineVar(0), w.fareVar(0)) {
		t.Fatal("airline vs fare")
	}
	if !w.sameBlock(w.ErrorVar(0), w.ErrorVar(3)) {
		t.Fatal("errors share a block")
	}
}

func TestGenerateWindowIndicators(t *testing.T) {
	rng := randx.New(3)
	w := DefaultWorld(rng)
	win := GenerateWindow(rng, w, nil, 500)
	if len(win.Records) != 500 || win.X.Rows() != 500 {
		t.Fatal("window size")
	}
	// Each row must have exactly one airline, one fare, one agent, two
	// cities, one intermediary set.
	for r := 0; r < 500; r++ {
		row := win.X.Row(r)
		count := func(lo, n int) int {
			c := 0
			for i := lo; i < lo+n; i++ {
				if row[i] == 1 {
					c++
				}
			}
			return c
		}
		if count(w.airlineVar(0), len(w.Airlines)) != 1 {
			t.Fatal("airline one-hot")
		}
		if count(w.fareVar(0), len(w.FareSources)) != 1 {
			t.Fatal("fare one-hot")
		}
		if count(w.cityVar(0), len(w.Cities)) != 2 {
			t.Fatal("two cities (dep+arr)")
		}
		if count(w.interVar(0), len(w.Intermediaries)) != 1 {
			t.Fatal("intermediary one-hot")
		}
	}
}

func TestBaselineErrorRate(t *testing.T) {
	rng := randx.New(4)
	w := DefaultWorld(rng)
	win := GenerateWindow(rng, w, nil, 20000)
	for s := 0; s < NumSteps; s++ {
		r := win.ErrorRate(s)
		if r < 0.003 || r > 0.03 {
			t.Fatalf("baseline step-%d error rate %.4f, want ≈ %.2f", s, r, w.BaseErrorRate)
		}
	}
}

func TestIncidentRaisesScopedErrors(t *testing.T) {
	rng := randx.New(5)
	w := DefaultWorld(rng)
	scripts := TableIIScripts(w)
	inc := scripts[3] // WUH lockdown: availability errors for ArrCity=WUH
	win := GenerateWindow(rng, w, []*Incident{inc}, 20000)
	inScope, inScopeErr, outScope, outScopeErr := 0, 0, 0, 0
	for _, rec := range win.Records {
		if rec.ArrCity == inc.ArrCity {
			inScope++
			if rec.Errors[StepAvailability] {
				inScopeErr++
			}
		} else {
			outScope++
			if rec.Errors[StepAvailability] {
				outScopeErr++
			}
		}
	}
	inRate := float64(inScopeErr) / float64(inScope)
	outRate := float64(outScopeErr) / float64(outScope)
	if inRate < 10*outRate {
		t.Fatalf("incident not scoped: in=%.3f out=%.3f", inRate, outRate)
	}
}

func TestIncidentMatchesFilters(t *testing.T) {
	rng := randx.New(6)
	w := DefaultWorld(rng)
	inc := &Incident{Airline: 2, FareSource: -1, Agent: -1, ArrCity: -1, DepCity: -1, Intermediary: -1, Step: 0}
	if !inc.matches(w, Record{Airline: 2}) {
		t.Fatal("should match airline 2")
	}
	if inc.matches(w, Record{Airline: 3}) {
		t.Fatal("should not match airline 3")
	}
	set := &Incident{Airline: -1, FareSource: -1, FareSourceSet: []int{1, 4}, Agent: -1, ArrCity: -1, DepCity: -1, Intermediary: -1}
	if !set.matches(w, Record{FareSource: 4}) || set.matches(w, Record{FareSource: 2}) {
		t.Fatal("fare-source set scope")
	}
}

func TestTableIIScriptsWellFormed(t *testing.T) {
	rng := randx.New(7)
	w := DefaultWorld(rng)
	scripts := TableIIScripts(w)
	if len(scripts) != 7 {
		t.Fatalf("script count %d", len(scripts))
	}
	for _, inc := range scripts {
		if inc.Boost <= 0 || inc.Step < 0 || inc.Step >= NumSteps {
			t.Fatalf("malformed incident %+v", inc)
		}
		if len(inc.entityVars(w)) == 0 {
			t.Fatalf("incident %s has no scoped entity", inc.Name)
		}
	}
}

func TestLearnProducesSinkErrorNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-window structure learning (~10s; minutes under -race)")
	}
	rng := randx.New(8)
	w := DefaultWorld(rng)
	inc := TableIIScripts(w)[0]
	win := GenerateWindow(rng, w, []*Incident{inc}, 3000)
	net, err := Learn(context.Background(), win, DefaultLearnOptions())
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < NumSteps; s++ {
		if len(net.Children(w.ErrorVar(s))) != 0 {
			t.Fatalf("error node %d has outgoing edges", s)
		}
	}
	// Intra-block edges must be filtered.
	for _, e := range net.TopEdges(net.NumEdges()) {
		if w.sameBlock(e.From, e.To) {
			t.Fatalf("intra-block edge %d→%d survived", e.From, e.To)
		}
	}
}

func TestDetectFindsInjectedIncident(t *testing.T) {
	if testing.Short() {
		t.Skip("two-window monitor learn (~13s; minutes under -race)")
	}
	rng := randx.New(9)
	w := DefaultWorld(rng)
	inc := TableIIScripts(w)[3] // WUH lock-down: strong city-scoped signal
	prev := GenerateWindow(rng, w, nil, 4000)
	alerts, _, _, err := MonitorPeriod(context.Background(), rng, w, []*Incident{inc}, prev, 4000, DefaultLearnOptions(), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) == 0 {
		t.Fatal("no alerts for injected incident")
	}
	found := false
	for _, a := range alerts {
		if Classify(w, a, []*Incident{inc}) == inc.Category {
			found = true
		}
	}
	if !found {
		t.Fatal("incident not classified correctly")
	}
}

func TestDetectQuietOnCalmWindows(t *testing.T) {
	if testing.Short() {
		t.Skip("two-window monitor learn (~13s; minutes under -race)")
	}
	rng := randx.New(10)
	w := DefaultWorld(rng)
	prev := GenerateWindow(rng, w, nil, 4000)
	alerts, _, _, err := MonitorPeriod(context.Background(), rng, w, nil, prev, 4000, DefaultLearnOptions(), 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) > 1 {
		t.Fatalf("%d alerts on calm windows (want ≈0)", len(alerts))
	}
}

func TestClassifyFallsBackToFalseAlarm(t *testing.T) {
	rng := randx.New(11)
	w := DefaultWorld(rng)
	a := Alert{Step: 0, PathVars: []int{w.airlineVar(1), w.ErrorVar(0)}}
	if c := Classify(w, a, nil); c != CatFalseAlarm {
		t.Fatalf("no incidents → %s", c)
	}
	inc := &Incident{Airline: 3, FareSource: -1, Agent: -1, ArrCity: -1, DepCity: -1, Intermediary: -1, Step: 2, Category: CatAirline}
	if c := Classify(w, a, []*Incident{inc}); c != CatFalseAlarm {
		t.Fatalf("wrong-step incident matched: %s", c)
	}
}

func TestPieAndTPR(t *testing.T) {
	cats := []Category{CatExternal, CatExternal, CatAirline, CatFalseAlarm}
	slices := Pie(cats)
	total := 0
	for _, s := range slices {
		total += s.Count
	}
	if total != 4 {
		t.Fatal("pie total")
	}
	if tpr := TruePositiveRate(slices); tpr != 0.75 {
		t.Fatalf("TPR = %g", tpr)
	}
}

func TestRandomIncidentCategories(t *testing.T) {
	rng := randx.New(12)
	w := DefaultWorld(rng)
	for _, cat := range []Category{CatExternal, CatAirline, CatAgent, CatIntermediary, CatUnpredictable} {
		inc := RandomIncident(rng, w, cat)
		if inc.Category != cat {
			t.Fatalf("category %s → %s", cat, inc.Category)
		}
		if len(inc.entityVars(w)) == 0 {
			t.Fatalf("%s incident has no scope", cat)
		}
	}
}

func TestStepNames(t *testing.T) {
	if StepName(StepAvailability) != "Step1-Availability" || StepName(StepPayment) != "Step4-Payment" {
		t.Fatal("step names")
	}
	if !strings.Contains(StepName(9), "?") {
		t.Fatal("unknown step")
	}
}
