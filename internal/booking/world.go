// Package booking simulates the Fliggy flight-ticket booking pipeline
// of §VI-A and implements the LEAST-based monitoring system built on
// it: windowed structure learning over booking-log indicator variables,
// backward path extraction into the four booking-step error nodes, and
// the two-window statistical test that separates real incidents from
// coincidences. The simulator reproduces the moving parts the paper
// describes — airlines, fare sources, travel agents, intermediary
// booking systems, departure/arrival cities, and the four-step booking
// funnel (availability → price → reserve → payment) — plus an incident
// injection mechanism whose scripts mirror the Table II cases (airline
// system maintenance, bad agent data, city lock-down, travel ban,
// outbreak).
package booking

import (
	"fmt"

	"repro/internal/randx"
)

// Booking funnel steps (§VI-A): each step can fail independently.
const (
	StepAvailability = iota // query and confirm seat availability
	StepPrice               // query and confirm price
	StepReserve             // reserve ticket
	StepPayment             // payment and final confirmation
	NumSteps
)

// StepName returns the §VI-A name of a booking step.
func StepName(step int) string {
	switch step {
	case StepAvailability:
		return "Step1-Availability"
	case StepPrice:
		return "Step2-Price"
	case StepReserve:
		return "Step3-Reserve"
	case StepPayment:
		return "Step4-Payment"
	default:
		return fmt.Sprintf("Step?%d", step)
	}
}

// World describes the booking ecosystem: its entities and their usage
// skews. Entity kinds map 1:1 to BN variable blocks.
type World struct {
	Airlines       []string
	FareSources    []string
	Agents         []string
	Cities         []string
	Intermediaries []string

	// airlineFarePref[a] is a per-airline categorical distribution
	// over fare sources; it is what creates the Airline → FareSource
	// correlations that surface as BN edges.
	airlineFarePref [][]float64
	// BaseErrorRate is the per-step background failure probability.
	BaseErrorRate float64
}

// DefaultWorld builds the ecosystem used throughout the experiments:
// 12 airlines (including the Table II codes AC, SL, MU), 10 fare
// sources, 8 travel agents, 10 cities (including WUH, BKK, SEL) and 3
// intermediary systems (Amadeus/Travelsky-like).
func DefaultWorld(rng *randx.RNG) *World {
	w := &World{
		Airlines: []string{
			"AC", "MU", "SL", "CA", "CZ", "UA", "LH", "AF", "NH", "SQ", "EK", "QF",
		},
		FareSources: make([]string, 10),
		Agents: []string{
			"AgentBKK275Q", "AgentSHA001", "AgentPEK114", "AgentHKG220",
			"AgentSIN777", "AgentNRT045", "AgentFRA310", "AgentSYD808",
		},
		Cities: []string{
			"WUH", "BKK", "SEL", "PEK", "SHA", "HKG", "SIN", "NRT", "FRA", "SYD",
		},
		Intermediaries: []string{"Amadeus", "Travelsky", "DirectConnect"},
		BaseErrorRate:  0.01,
	}
	for i := range w.FareSources {
		w.FareSources[i] = fmt.Sprintf("Fare%02d", i)
	}
	// Each airline prefers a random sparse subset of fare sources.
	w.airlineFarePref = make([][]float64, len(w.Airlines))
	for a := range w.Airlines {
		pref := make([]float64, len(w.FareSources))
		var norm float64
		for f := range pref {
			v := rng.Float64()
			if rng.Float64() < 0.6 {
				v *= 0.05 // rarely-used source for this airline
			}
			pref[f] = v
			norm += v
		}
		for f := range pref {
			pref[f] /= norm
		}
		w.airlineFarePref[a] = pref
	}
	return w
}

// Variable-block layout of the BN node space.
func (w *World) numEntities() int {
	return len(w.Airlines) + len(w.FareSources) + len(w.Agents) +
		len(w.Cities) + len(w.Intermediaries)
}

// NumVars returns the total BN node count: one indicator per entity
// plus the four error-type nodes.
func (w *World) NumVars() int { return w.numEntities() + NumSteps }

// Variable index helpers.
func (w *World) airlineVar(a int) int { return a }
func (w *World) fareVar(f int) int    { return len(w.Airlines) + f }
func (w *World) agentVar(g int) int   { return len(w.Airlines) + len(w.FareSources) + g }
func (w *World) cityVar(c int) int {
	return len(w.Airlines) + len(w.FareSources) + len(w.Agents) + c
}
func (w *World) interVar(m int) int {
	return len(w.Airlines) + len(w.FareSources) + len(w.Agents) + len(w.Cities) + m
}

// ErrorVar returns the BN node id of the given booking step's error
// indicator.
func (w *World) ErrorVar(step int) int { return w.numEntities() + step }

// block returns the entity-block ordinal of a variable (airlines,
// fares, agents, cities, intermediaries, errors).
func (w *World) block(v int) int {
	switch {
	case v < w.fareVar(0):
		return 0
	case v < w.agentVar(0):
		return 1
	case v < w.cityVar(0):
		return 2
	case v < w.interVar(0):
		return 3
	case v < w.ErrorVar(0):
		return 4
	default:
		return 5
	}
}

// sameBlock reports whether two variables belong to the same one-hot
// entity block (error nodes form their own block).
func (w *World) sameBlock(a, b int) bool { return w.block(a) == w.block(b) }

// VarNames returns the labels for every BN node, in variable order.
func (w *World) VarNames() []string {
	names := make([]string, 0, w.NumVars())
	for _, a := range w.Airlines {
		names = append(names, "Airline:"+a)
	}
	for _, f := range w.FareSources {
		names = append(names, "FareSource:"+f)
	}
	for _, g := range w.Agents {
		names = append(names, "Agent:"+g)
	}
	for _, c := range w.Cities {
		names = append(names, "City:"+c)
	}
	for _, m := range w.Intermediaries {
		names = append(names, "Intermediary:"+m)
	}
	for s := 0; s < NumSteps; s++ {
		names = append(names, "Error:"+StepName(s))
	}
	return names
}

// Record is one booking attempt's log line.
type Record struct {
	Airline, FareSource, Agent int
	DepCity, ArrCity           int
	Intermediary               int
	// Errors[s] reports whether step s failed.
	Errors [NumSteps]bool
}

// sample draws one booking attempt under the active incidents.
func (w *World) sample(rng *randx.RNG, incidents []*Incident) Record {
	rec := Record{
		Airline:      rng.Intn(len(w.Airlines)),
		Agent:        rng.Intn(len(w.Agents)),
		DepCity:      rng.Intn(len(w.Cities)),
		Intermediary: rng.Intn(len(w.Intermediaries)),
	}
	rec.ArrCity = rng.Intn(len(w.Cities))
	for rec.ArrCity == rec.DepCity {
		rec.ArrCity = rng.Intn(len(w.Cities))
	}
	// Fare source follows the airline's preference distribution.
	u := rng.Float64()
	pref := w.airlineFarePref[rec.Airline]
	acc := 0.0
	rec.FareSource = len(pref) - 1
	for f, p := range pref {
		acc += p
		if u < acc {
			rec.FareSource = f
			break
		}
	}
	// Step failures: background rate plus any matching incident boost.
	for s := 0; s < NumSteps; s++ {
		p := w.BaseErrorRate
		for _, inc := range incidents {
			if inc.Step == s && inc.matches(w, rec) {
				p += inc.Boost
			}
		}
		if p > 0.95 {
			p = 0.95
		}
		rec.Errors[s] = rng.Float64() < p
	}
	return rec
}
