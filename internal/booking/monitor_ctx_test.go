package booking

import (
	"context"
	"errors"
	"testing"

	"repro/internal/randx"
)

// Regression for the leastvet ctxflow finding: the monitoring loop's
// learn used the non-ctx core.Dense entry point, so a drain or a
// monitoring-cycle deadline could not interrupt a running learn. Learn
// and MonitorPeriod now thread a context down to core.DenseCtx and
// must surface its cancellation as ctx's error.
func TestLearnObservesCancellation(t *testing.T) {
	rng := randx.New(12)
	w := DefaultWorld(rng)
	win := GenerateWindow(rng, w, nil, 300)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	net, err := Learn(ctx, win, DefaultLearnOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Learn returned err %v, want context.Canceled", err)
	}
	if net != nil {
		t.Fatal("cancelled Learn returned a network")
	}

	if _, _, cur, err := MonitorPeriod(ctx, rng, w, nil, win, 300, DefaultLearnOptions(), 1e-3); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled MonitorPeriod returned err %v, want context.Canceled", err)
	} else if cur == nil {
		t.Fatal("MonitorPeriod dropped the generated window on cancellation")
	}
}
