package movielens

import (
	"sort"

	"repro/internal/bnet"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/randx"
)

// Ratings is the generated user×movie matrix in the paper's §VI-C
// construction: X[u,j] = r_uj − mean_u for rated entries, 0 for
// unrated.
type Ratings struct {
	Catalog *Catalog
	X       *mat.Dense
	// RatedCount[j] counts users who rated movie j.
	RatedCount []int
}

// GenOptions tunes the rating generator.
type GenOptions struct {
	Users int
	// WatchRate is the base probability a user rates any given movie;
	// blockbusters are watched ~4×, co-cluster titles ~3×.
	WatchRate float64
	// NoiseStd is the per-rating Gaussian noise.
	NoiseStd float64
	Seed     int64
}

// DefaultGenOptions returns a workable small-scale configuration.
func DefaultGenOptions() GenOptions {
	return GenOptions{Users: 4000, WatchRate: 0.08, NoiseStd: 0.5, Seed: 1}
}

// Generate simulates the rating process: each user has a mean rating
// level and a taste affinity per cluster; rated movies get
// r = mean + taste + Σ planted-parent influence + noise, traversed in
// topological order so the planted DAG is the true SEM. Centering by
// the user's observed mean reproduces the paper's X construction.
func Generate(c *Catalog, o GenOptions) *Ratings {
	rng := randx.New(o.Seed)
	d := len(c.Movies)
	// Topological order of the planted DAG.
	g := graph.New(d)
	for _, e := range c.Edges {
		if !g.HasEdge(e.From, e.To) {
			g.AddEdge(e.From, e.To)
		}
	}
	order, ok := g.TopoSort()
	if !ok {
		panic("movielens: planted edges must form a DAG")
	}
	parents := make([][]PlantedEdge, d)
	for _, e := range c.Edges {
		parents[e.To] = append(parents[e.To], e)
	}
	x := mat.NewDense(o.Users, d)
	ratedCount := make([]int, d)
	deviation := make([]float64, d) // r − user mean, 0 when unrated
	rated := make([]bool, d)
	for u := 0; u < o.Users; u++ {
		taste := make([]float64, c.nClust)
		for k := range taste {
			taste[k] = rng.Normal(0, 0.6)
		}
		for j := range rated {
			rated[j] = false
			deviation[j] = 0
		}
		// Watch decisions.
		for j, m := range c.Movies {
			p := o.WatchRate
			if m.Blockbuster {
				p *= 4
			}
			if taste[c.cluster[j]] > 0.4 {
				p *= 3
			}
			if m.Niche && taste[c.cluster[j]] < 0.8 {
				p *= 0.4
			}
			if p > 0.95 {
				p = 0.95
			}
			rated[j] = rng.Float64() < p
		}
		// Ratings in topological order: the planted SEM.
		for _, j := range order {
			if !rated[j] {
				continue
			}
			v := taste[c.cluster[j]]*0.5 + rng.Normal(0, o.NoiseStd)
			for _, e := range parents[j] {
				if rated[e.From] {
					v += e.Weight * deviation[e.From] * 4
				}
			}
			deviation[j] = v
		}
		// Observed per-user centering (the paper subtracts the user's
		// own mean rating; deviations are already mean-free up to the
		// sample mean of the rated subset).
		var sum float64
		cnt := 0
		for j := range deviation {
			if rated[j] {
				sum += deviation[j]
				cnt++
			}
		}
		var mean float64
		if cnt > 0 {
			mean = sum / float64(cnt)
		}
		row := x.Row(u)
		for j := range deviation {
			if rated[j] {
				row[j] = deviation[j] - mean
				ratedCount[j]++
			}
		}
	}
	return &Ratings{Catalog: c, X: x, RatedCount: ratedCount}
}

// LearnOptions tunes the §VI-C structure learning run.
type LearnOptions struct {
	Lambda   float64
	Epsilon  float64
	EdgeTau  float64
	MaxOuter int
	MaxInner int
	// UseSparse selects the LEAST-SP learner — what the paper runs at
	// MovieLens-20M scale (27k nodes), where a dense W cannot exist.
	// At this repo's synthetic catalog sizes (10²–10³ movies) the
	// dense learner is both feasible and more accurate, so it is the
	// default; the scalability bench exercises UseSparse.
	UseSparse bool
	// Density is the LEAST-SP candidate-support density ζ.
	Density float64
	Batch   int
	Seed    int64
}

// DefaultLearnOptions mirrors the paper's settings scaled to the
// synthetic catalog.
func DefaultLearnOptions() LearnOptions {
	return LearnOptions{
		Lambda: 0.003, Epsilon: 1e-2, EdgeTau: 0.012,
		MaxOuter: 10, MaxInner: 200, Density: 0.05, Batch: 1000, Seed: 1,
	}
}

// Learn runs LEAST on the centered rating matrix and wraps the result
// as a named item-to-item network.
func Learn(r *Ratings, lo LearnOptions) *bnet.Network {
	o := core.DefaultOptions()
	o.Lambda = lo.Lambda
	o.Epsilon = lo.Epsilon
	o.CheckH = true
	o.MaxOuter = lo.MaxOuter
	o.MaxInner = lo.MaxInner
	o.Seed = lo.Seed
	if lo.UseSparse {
		o.InitDensity = lo.Density
		o.BatchSize = lo.Batch
		o.Threshold = 1e-3
		res := core.Sparse(r.X, o)
		return bnet.FromCSR(res.WSparse, lo.EdgeTau, r.Catalog.Titles())
	}
	res := core.Dense(r.X, o)
	return bnet.FromDense(res.W, lo.EdgeTau, r.Catalog.Titles())
}

// RankedEdge is a learned edge annotated against the planted truth.
type RankedEdge struct {
	From, To string
	Weight   float64
	// Planted reports whether the edge (in this direction) was
	// planted; Relation explains it (either direction) when known.
	Planted  bool
	Relation Relation
}

// TopEdgesAnnotated returns the k strongest learned edges with truth
// annotations — the Table IV reproduction.
func TopEdgesAnnotated(net *bnet.Network, c *Catalog, k int) []RankedEdge {
	truth := c.TruthEdgeSet()
	var out []RankedEdge
	for _, e := range net.TopEdges(k) {
		_, planted := truth[[2]int{e.From, e.To}]
		out = append(out, RankedEdge{
			From: net.Name(e.From), To: net.Name(e.To), Weight: e.Weight,
			Planted: planted, Relation: c.RelationOf(e.From, e.To),
		})
	}
	return out
}

// DegreeContrast reports the §VI-C blockbuster phenomenon: average
// (in − out) degree for blockbuster titles vs niche titles in the
// learned network. A faithful reproduction has blockbusters strongly
// positive and niche titles strongly negative.
func DegreeContrast(net *bnet.Network, c *Catalog) (blockbuster, niche float64) {
	var bSum, nSum float64
	var bN, nN int
	for i, m := range c.Movies {
		diff := float64(net.Graph().InDegree(i) - net.Graph().OutDegree(i))
		if m.Blockbuster {
			bSum += diff
			bN++
		}
		if m.Niche {
			nSum += diff
			nN++
		}
	}
	if bN > 0 {
		blockbuster = bSum / float64(bN)
	}
	if nN > 0 {
		niche = nSum / float64(nN)
	}
	return blockbuster, niche
}

// RecoveryReport summarizes how much of the planted Table IV structure
// the learner found.
type RecoveryReport struct {
	PlantedFound   int // planted edges present (correct direction)
	PlantedTotal   int
	NamedFound     int // Table IV top-10 pairs recovered (either direction)
	NamedTotal     int
	LearnedEdges   int
	LearnedAcyclic bool
}

// Evaluate compares a learned network against the planted structure.
func Evaluate(net *bnet.Network, c *Catalog) RecoveryReport {
	rep := RecoveryReport{
		PlantedTotal:   len(c.Edges),
		NamedTotal:     10,
		LearnedEdges:   net.NumEdges(),
		LearnedAcyclic: net.IsDAG(),
	}
	for _, e := range c.Edges {
		if net.Graph().HasEdge(e.From, e.To) {
			rep.PlantedFound++
		}
	}
	for _, p := range tableIVPairs[:10] {
		i, j := c.Index(p.from), c.Index(p.to)
		if i >= 0 && j >= 0 && (net.Graph().HasEdge(i, j) || net.Graph().HasEdge(j, i)) {
			rep.NamedFound++
		}
	}
	return rep
}

// MostWatched returns the k most-rated titles (sanity metric used by
// the example program).
func (r *Ratings) MostWatched(k int) []string {
	type mc struct {
		j int
		n int
	}
	ms := make([]mc, len(r.RatedCount))
	for j, n := range r.RatedCount {
		ms[j] = mc{j, n}
	}
	sort.Slice(ms, func(a, b int) bool {
		if ms[a].n != ms[b].n {
			return ms[a].n > ms[b].n
		}
		return ms[a].j < ms[b].j
	})
	if k > len(ms) {
		k = len(ms)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = r.Catalog.Movies[ms[i].j].Title
	}
	return out
}
