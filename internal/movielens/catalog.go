// Package movielens implements the §VI-C recommendation case study:
// a synthetic MovieLens-like rating generator over a named movie
// catalog with a *planted* item-to-item influence DAG, the per-user
// mean-centering of the paper's data construction, and the analyses the
// paper reports — top-weight learned edges with relationship remarks
// (Table IV), the blockbuster in/out-degree contrast, and Fig-8 style
// neighbourhood subgraphs. Planting the structure is the substitution
// for the proprietary-scale MovieLens run (DESIGN.md §2): it exercises
// the identical pipeline while making the recovered edges verifiable.
package movielens

import "fmt"

// Relation describes why two movies are linked, mirroring the Table IV
// "Remarks" column.
type Relation string

// Table IV relationship kinds.
const (
	SameSeries   Relation = "same series"
	SameDirector Relation = "same director"
	SamePeriod   Relation = "same period"
	SameGenre    Relation = "same genre"
	SameActor    Relation = "same main actor"
)

// Movie is a catalog entry.
type Movie struct {
	Title string
	// Blockbuster marks near-universally watched titles (the §VI-C
	// sinks: "watched by the majority of users").
	Blockbuster bool
	// Niche marks specialized-taste titles (the §VI-C sources).
	Niche bool
}

// PlantedEdge is a ground-truth influence link i→j: enjoying movie i
// predicts enjoying movie j.
type PlantedEdge struct {
	From, To int
	Weight   float64
	Relation Relation
}

// Catalog is the movie universe with its planted influence structure.
type Catalog struct {
	Movies []Movie
	Edges  []PlantedEdge
	// cluster[i] groups movies that tend to be rated together.
	cluster []int
	nClust  int
}

// Titles returns the movie titles in index order.
func (c *Catalog) Titles() []string {
	t := make([]string, len(c.Movies))
	for i, m := range c.Movies {
		t[i] = m.Title
	}
	return t
}

// Index returns the id of the movie with the given title, or −1.
func (c *Catalog) Index(title string) int {
	for i, m := range c.Movies {
		if m.Title == title {
			return i
		}
	}
	return -1
}

// namedPair is a Table IV / Fig 8 seed link.
type namedPair struct {
	from, to string
	weight   float64
	rel      Relation
}

// tableIVPairs reproduces the paper's Table IV top-10 list (direction
// and remark included) plus the Fig 8 Braveheart neighbourhood links.
var tableIVPairs = []namedPair{
	{"Shrek 2 (2004)", "Shrek (2001)", 0.220, SameSeries},
	{"Raiders of the Lost Ark (1981)", "Star Wars: Episode IV (1977)", 0.178, SameActor},
	{"Raiders of the Lost Ark (1981)", "Indiana Jones and the Last Crusade (1989)", 0.159, SameSeries},
	{"Harry Potter and the Chamber of Secrets (2002)", "Harry Potter and the Sorcerer's Stone (2001)", 0.159, SameSeries},
	{"The Maltese Falcon (1941)", "Casablanca (1942)", 0.159, SamePeriod},
	{"Reservoir Dogs (1992)", "Pulp Fiction (1994)", 0.146, SameDirector},
	{"North by Northwest (1959)", "Rear Window (1954)", 0.144, SameDirector},
	{"Toy Story 2 (1999)", "Toy Story (1995)", 0.144, SameSeries},
	{"Spider-Man (2002)", "Spider-Man 2 (2004)", 0.126, SameSeries},
	{"Seven (1995)", "The Silence of the Lambs (1991)", 0.126, SameGenre},
	// Fig 8 neighbourhood around Braveheart.
	{"Braveheart (1995)", "Apollo 13 (1995)", 0.110, SamePeriod},
	{"Braveheart (1995)", "Bridge on the River Kwai, The (1957)", 0.095, SameGenre},
	{"Matrix, The (1999)", "Johnny Mnemonic (1995)", 0.090, SameActor},
	{"Aliens (1986)", "Jurassic Park (1993)", 0.085, SameGenre},
	{"Fugitive, The (1993)", "Hunt for Red October, The (1990)", 0.088, SameGenre},
}

// blockbusterTitles are the §VI-C many-incoming/no-outgoing sinks.
var blockbusterTitles = []string{
	"Star Wars: Episode V (1980)",
	"Casablanca (1942)",
	"Star Wars: Episode IV (1977)",
	"Pulp Fiction (1994)",
	"The Silence of the Lambs (1991)",
}

// nicheTitles are specialized-taste sources ("The New Land" pattern).
var nicheTitles = []string{
	"The New Land (1972)",
	"Clerks (1994)",
	"Mortal Kombat (1995)",
}

// DefaultCatalog builds a catalog with the Table IV / Fig 8 titles, the
// named blockbusters and niche markers, plus filler movies up to total
// titles (filler gets series-like chains of its own so the learner has
// realistic background structure). total must be at least 64.
func DefaultCatalog(total int) *Catalog {
	if total < 64 {
		total = 64
	}
	c := &Catalog{}
	add := func(m Movie) int {
		c.Movies = append(c.Movies, m)
		return len(c.Movies) - 1
	}
	seen := map[string]int{}
	ensure := func(title string) int {
		if i, ok := seen[title]; ok {
			return i
		}
		m := Movie{Title: title}
		for _, b := range blockbusterTitles {
			if b == title {
				m.Blockbuster = true
			}
		}
		for _, n := range nicheTitles {
			if n == title {
				m.Niche = true
			}
		}
		i := add(m)
		seen[title] = i
		return i
	}
	for _, p := range tableIVPairs {
		ensure(p.from)
		ensure(p.to)
	}
	for _, t := range blockbusterTitles {
		ensure(t)
	}
	for _, t := range nicheTitles {
		ensure(t)
	}
	named := len(c.Movies)
	for i := named; i < total; i++ {
		add(Movie{Title: fmt.Sprintf("Filler Movie #%03d (19%02d)", i, 50+i%50)})
	}
	// Planted edges: the named pairs first.
	for _, p := range tableIVPairs {
		c.Edges = append(c.Edges, PlantedEdge{
			From: seen[p.from], To: seen[p.to], Weight: p.weight, Relation: p.rel,
		})
	}
	// Niche titles influence blockbusters and a spread of filler
	// movies (many outgoing edges); blockbusters only receive.
	for _, nt := range nicheTitles {
		ni := seen[nt]
		for _, bt := range blockbusterTitles {
			c.Edges = append(c.Edges, PlantedEdge{From: ni, To: seen[bt], Weight: 0.08, Relation: SameGenre})
		}
		for j := named; j < total; j += 7 {
			c.Edges = append(c.Edges, PlantedEdge{From: ni, To: j, Weight: 0.06, Relation: SameGenre})
		}
	}
	// Filler chains: movie 3k → 3k+1 → 3k+2 within filler range, plus
	// occasional links into blockbusters.
	for j := named; j+2 < total; j += 3 {
		c.Edges = append(c.Edges, PlantedEdge{From: j, To: j + 1, Weight: 0.1, Relation: SameSeries})
		c.Edges = append(c.Edges, PlantedEdge{From: j + 1, To: j + 2, Weight: 0.08, Relation: SameSeries})
		if j%9 == 0 {
			bi := seen[blockbusterTitles[(j/9)%len(blockbusterTitles)]]
			c.Edges = append(c.Edges, PlantedEdge{From: j, To: bi, Weight: 0.07, Relation: SameGenre})
		}
	}
	// Rating-cluster assignment: linked titles must be co-watched for
	// their influence to be statistically visible, so named titles are
	// clustered by the connected components of the planted pair graph
	// (union-find); filler gets clusters of ~12.
	parent := make([]int, total)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(v int) int {
		if parent[v] != v {
			parent[v] = find(parent[v])
		}
		return parent[v]
	}
	for _, p := range tableIVPairs {
		a, b := find(seen[p.from]), find(seen[p.to])
		if a != b {
			parent[a] = b
		}
	}
	c.cluster = make([]int, total)
	compID := map[int]int{}
	next := 0
	for i := 0; i < named; i++ {
		root := find(i)
		if _, ok := compID[root]; !ok {
			compID[root] = next
			next++
		}
		c.cluster[i] = compID[root]
	}
	for i := named; i < total; i++ {
		c.cluster[i] = next + (i-named)/12
	}
	c.nClust = next + (total-named)/12 + 1
	return c
}

// TruthEdgeSet returns the planted edges as a lookup set.
func (c *Catalog) TruthEdgeSet() map[[2]int]PlantedEdge {
	m := make(map[[2]int]PlantedEdge, len(c.Edges))
	for _, e := range c.Edges {
		m[[2]int{e.From, e.To}] = e
	}
	return m
}

// RelationOf explains the relationship between two movies using the
// planted metadata (either direction), or "" when unrelated.
func (c *Catalog) RelationOf(i, j int) Relation {
	for _, e := range c.Edges {
		if (e.From == i && e.To == j) || (e.From == j && e.To == i) {
			return e.Relation
		}
	}
	return ""
}
