package movielens

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestDefaultCatalogStructure(t *testing.T) {
	c := DefaultCatalog(150)
	if len(c.Movies) != 150 {
		t.Fatalf("movies %d", len(c.Movies))
	}
	// Every Table IV title must exist.
	for _, title := range []string{
		"Shrek 2 (2004)", "Shrek (2001)", "Toy Story (1995)",
		"Casablanca (1942)", "Star Wars: Episode V (1980)", "The New Land (1972)",
	} {
		if c.Index(title) < 0 {
			t.Fatalf("missing %q", title)
		}
	}
	// Planted edges form a DAG.
	g := graph.New(len(c.Movies))
	for _, e := range c.Edges {
		if !g.HasEdge(e.From, e.To) {
			g.AddEdge(e.From, e.To)
		}
	}
	if !g.IsDAG() {
		t.Fatal("planted edges contain a cycle")
	}
	// Blockbusters and niche flags set.
	if !c.Movies[c.Index("Casablanca (1942)")].Blockbuster {
		t.Fatal("Casablanca must be a blockbuster")
	}
	if !c.Movies[c.Index("The New Land (1972)")].Niche {
		t.Fatal("The New Land must be niche")
	}
}

func TestCatalogMinimumSizeFloor(t *testing.T) {
	c := DefaultCatalog(1)
	if len(c.Movies) < 64 {
		t.Fatal("size floor")
	}
}

func TestPairedTitlesShareCluster(t *testing.T) {
	c := DefaultCatalog(150)
	pairs := [][2]string{
		{"Shrek 2 (2004)", "Shrek (2001)"},
		{"Toy Story 2 (1999)", "Toy Story (1995)"},
		{"Reservoir Dogs (1992)", "Pulp Fiction (1994)"},
	}
	for _, p := range pairs {
		a, b := c.Index(p[0]), c.Index(p[1])
		if c.cluster[a] != c.cluster[b] {
			t.Fatalf("%q and %q in different co-watch clusters", p[0], p[1])
		}
	}
}

func TestRelationOf(t *testing.T) {
	c := DefaultCatalog(150)
	i, j := c.Index("Shrek 2 (2004)"), c.Index("Shrek (2001)")
	if c.RelationOf(i, j) != SameSeries || c.RelationOf(j, i) != SameSeries {
		t.Fatal("RelationOf should work in both directions")
	}
	if c.RelationOf(i, c.Index("Casablanca (1942)")) != "" {
		t.Fatal("unrelated movies")
	}
}

func TestGenerateShapesAndCentering(t *testing.T) {
	c := DefaultCatalog(100)
	o := DefaultGenOptions()
	o.Users = 500
	r := Generate(c, o)
	if r.X.Rows() != 500 || r.X.Cols() != 100 {
		t.Fatal("shape")
	}
	if r.X.HasNaN() {
		t.Fatal("NaN ratings")
	}
	// Per-user mean of rated (non-zero) entries must be ≈ 0.
	for u := 0; u < 20; u++ {
		row := r.X.Row(u)
		var sum float64
		n := 0
		for _, v := range row {
			if v != 0 {
				sum += v
				n++
			}
		}
		if n > 0 && sum/float64(n) > 1e-9 {
			t.Fatalf("user %d not centered: %g", u, sum/float64(n))
		}
	}
}

func TestBlockbustersMostWatched(t *testing.T) {
	c := DefaultCatalog(150)
	o := DefaultGenOptions()
	o.Users = 2000
	r := Generate(c, o)
	top := r.MostWatched(5)
	// At least 4 of the top-5 watched must be flagged blockbusters.
	hits := 0
	for _, title := range top {
		if c.Movies[c.Index(title)].Blockbuster {
			hits++
		}
	}
	if hits < 4 {
		t.Fatalf("blockbusters not dominating watch counts: %v", top)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := DefaultCatalog(80)
	o := DefaultGenOptions()
	o.Users = 200
	a := Generate(c, o)
	b := Generate(c, o)
	if !a.X.EqualApprox(b.X, 0) {
		t.Fatal("same seed must reproduce ratings")
	}
}

func TestLearnRecoversPlantedStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog learn (~5s; ~2min under -race)")
	}
	c := DefaultCatalog(150)
	r := Generate(c, DefaultGenOptions())
	net := Learn(r, DefaultLearnOptions())
	rep := Evaluate(net, c)
	t.Logf("edges=%d planted=%d/%d named=%d/10", rep.LearnedEdges, rep.PlantedFound, rep.PlantedTotal, rep.NamedFound)
	if rep.NamedFound < 6 {
		t.Fatalf("only %d/10 Table-IV pairs recovered", rep.NamedFound)
	}
	if rep.PlantedFound < 20 {
		t.Fatalf("only %d planted edges recovered", rep.PlantedFound)
	}
}

func TestTopEdgesAnnotatedAndDegreeContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog learn (~5s; ~2min under -race)")
	}
	c := DefaultCatalog(150)
	r := Generate(c, DefaultGenOptions())
	net := Learn(r, DefaultLearnOptions())
	top := TopEdgesAnnotated(net, c, 10)
	if len(top) != 10 {
		t.Fatalf("top edges %d", len(top))
	}
	planted := 0
	for _, e := range top {
		if e.Planted {
			planted++
		}
	}
	if planted < 5 {
		t.Fatalf("only %d/10 top edges are planted links", planted)
	}
	blockbuster, niche := DegreeContrast(net, c)
	if blockbuster <= niche {
		t.Fatalf("§VI-C contrast inverted: blockbuster %.2f vs niche %.2f", blockbuster, niche)
	}
	// Fig-8 style neighbourhood extraction must include Braveheart.
	sub := net.Neighborhood(c.Index("Braveheart (1995)"), 2)
	found := false
	for i := 0; i < sub.N(); i++ {
		if strings.Contains(sub.Name(i), "Braveheart") {
			found = true
		}
	}
	if !found {
		t.Fatal("Braveheart missing from its own neighbourhood")
	}
}
