package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.96, 0.975},
		{-1.96, 0.025},
		{3, 0.99865},
		{-3, 0.00135},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 2e-4 {
			t.Fatalf("Φ(%g) = %g want %g", c.x, got, c.want)
		}
	}
}

func TestNormalCDFMonotone(t *testing.T) {
	prev := -1.0
	for x := -5.0; x <= 5; x += 0.1 {
		v := NormalCDF(x)
		if v < prev {
			t.Fatalf("CDF not monotone at %g", x)
		}
		prev = v
	}
}

func TestTwoProportionZNoDifference(t *testing.T) {
	z, p := TwoProportionZ(50, 1000, 50, 1000)
	if z != 0 || p != 1 {
		t.Fatalf("identical proportions: z=%g p=%g", z, p)
	}
}

func TestTwoProportionZBigDifference(t *testing.T) {
	_, p := TwoProportionZ(300, 1000, 50, 1000)
	if p > 1e-10 {
		t.Fatalf("obvious difference p=%g", p)
	}
}

func TestTwoProportionZSmallCounts(t *testing.T) {
	_, p := TwoProportionZ(3, 100, 2, 100)
	if p < 0.3 {
		t.Fatalf("insignificant difference flagged: p=%g", p)
	}
}

func TestTwoProportionZDegenerate(t *testing.T) {
	if _, p := TwoProportionZ(0, 0, 5, 10); p != 1 {
		t.Fatal("empty window must return p=1")
	}
	if _, p := TwoProportionZ(0, 100, 0, 100); p != 1 {
		t.Fatal("zero pooled rate must return p=1")
	}
	if _, p := TwoProportionZ(100, 100, 100, 100); p != 1 {
		t.Fatal("pooled rate 1 must return p=1")
	}
}

func TestChiSquare2x2MatchesZSquared(t *testing.T) {
	// For a 2×2 table, χ² = z² and the p-values agree.
	k1, n1, k2, n2 := 40, 200, 20, 220
	z, pz := TwoProportionZ(k1, n1, k2, n2)
	stat, pc := ChiSquare2x2(k1, n1-k1, k2, n2-k2)
	if math.Abs(stat-z*z) > 1e-9 {
		t.Fatalf("χ²=%g z²=%g", stat, z*z)
	}
	if math.Abs(pz-pc) > 1e-9 {
		t.Fatalf("p mismatch: z-test %g vs χ² %g", pz, pc)
	}
}

func TestChiSquare2x2ZeroMargins(t *testing.T) {
	if _, p := ChiSquare2x2(0, 0, 5, 5); p != 1 {
		t.Fatal("zero row margin")
	}
	if _, p := ChiSquare2x2(0, 5, 0, 5); p != 1 {
		t.Fatal("zero column margin")
	}
}

func TestChiSquareSFKnownValues(t *testing.T) {
	// χ²(1): P(X > 3.841) ≈ 0.05; χ²(2): P(X > 5.991) ≈ 0.05.
	if p := ChiSquareSF(3.841, 1); math.Abs(p-0.05) > 1e-3 {
		t.Fatalf("χ²(1) 5%% quantile: %g", p)
	}
	if p := ChiSquareSF(5.991, 2); math.Abs(p-0.05) > 1e-3 {
		t.Fatalf("χ²(2) 5%% quantile: %g", p)
	}
	if p := ChiSquareSF(0, 1); p != 1 {
		t.Fatal("SF(0) must be 1")
	}
}

func TestGammaPLowerProperties(t *testing.T) {
	// P(a, 0) = 0, P(a, ∞) → 1, monotone in x.
	if GammaPLower(2, 0) != 0 {
		t.Fatal("P(a,0)")
	}
	if p := GammaPLower(2, 100); math.Abs(p-1) > 1e-12 {
		t.Fatalf("P(2,100) = %g", p)
	}
	// P(1, x) = 1 − e^−x exactly.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		want := 1 - math.Exp(-x)
		if got := GammaPLower(1, x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("P(1,%g) = %g want %g", x, got, want)
		}
	}
	// P(1/2, x) = erf(√x).
	for _, x := range []float64{0.2, 1, 3} {
		want := math.Erf(math.Sqrt(x))
		if got := GammaPLower(0.5, x); math.Abs(got-want) > 1e-10 {
			t.Fatalf("P(0.5,%g) = %g want %g", x, got, want)
		}
	}
}

func TestGammaPLowerQuickMonotone(t *testing.T) {
	f := func(a8, x8 uint8) bool {
		a := 0.5 + float64(a8%40)/4
		x1 := float64(x8%50) / 5
		x2 := x1 + 0.5
		return GammaPLower(a, x1) <= GammaPLower(a, x2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDevQuantile(t *testing.T) {
	v := []float64{4, 1, 3, 2}
	if Mean(v) != 2.5 {
		t.Fatal("Mean")
	}
	if math.Abs(StdDev(v)-math.Sqrt(5.0/3)) > 1e-12 {
		t.Fatalf("StdDev = %g", StdDev(v))
	}
	if Quantile(v, 0) != 1 || Quantile(v, 1) != 4 {
		t.Fatal("extreme quantiles")
	}
	if Quantile(v, 0.5) != 2.5 {
		t.Fatalf("median = %g", Quantile(v, 0.5))
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("degenerate inputs")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}
