// Package stats provides the statistical-testing substrate for the
// root-cause analyser of §VI-A, which decides whether a candidate
// anomaly path "is a random coincidence or not" by comparing its
// occurrence counts in the current and previous log windows and
// "perform[ing] a statistical test to derive a p-value". Implemented
// from scratch: the normal CDF (via math.Erf), a two-proportion z-test,
// Pearson's chi-square test on 2×2 contingency tables, and the
// regularized incomplete gamma function that powers the chi-square CDF.
package stats

import (
	"math"
	"sort"
)

// NormalCDF returns P(Z ≤ x) for a standard normal Z.
func NormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// TwoProportionZ tests H0: p1 = p2 given k1 successes of n1 trials vs
// k2 of n2. It returns the z statistic and the two-sided p-value.
// Degenerate inputs (empty windows, pooled rate 0 or 1) return p = 1:
// no evidence of change.
func TwoProportionZ(k1, n1, k2, n2 int) (z, p float64) {
	if n1 == 0 || n2 == 0 {
		return 0, 1
	}
	p1 := float64(k1) / float64(n1)
	p2 := float64(k2) / float64(n2)
	pool := float64(k1+k2) / float64(n1+n2)
	if pool <= 0 || pool >= 1 {
		return 0, 1
	}
	se := math.Sqrt(pool * (1 - pool) * (1/float64(n1) + 1/float64(n2)))
	z = (p1 - p2) / se
	p = 2 * (1 - NormalCDF(math.Abs(z)))
	return z, p
}

// ChiSquare2x2 runs Pearson's chi-square test (1 dof) on the table
//
//	[ a b ]
//	[ c d ]
//
// returning the statistic and p-value. Zero margins return p = 1.
func ChiSquare2x2(a, b, c, d int) (stat, p float64) {
	n := float64(a + b + c + d)
	if n == 0 {
		return 0, 1
	}
	r1, r2 := float64(a+b), float64(c+d)
	c1, c2 := float64(a+c), float64(b+d)
	if r1 == 0 || r2 == 0 || c1 == 0 || c2 == 0 {
		return 0, 1
	}
	det := float64(a)*float64(d) - float64(b)*float64(c)
	stat = n * det * det / (r1 * r2 * c1 * c2)
	return stat, ChiSquareSF(stat, 1)
}

// ChiSquareSF returns the survival function P(X > x) for a chi-square
// variable with k degrees of freedom: Q(k/2, x/2).
func ChiSquareSF(x float64, k int) float64 {
	if x <= 0 {
		return 1
	}
	return 1 - GammaPLower(float64(k)/2, x/2)
}

// GammaPLower returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a), a > 0, x ≥ 0, using the series expansion for
// x < a+1 and the Lentz continued fraction for the complement
// otherwise (Numerical Recipes §6.2).
func GammaPLower(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func StdDev(v []float64) float64 {
	n := len(v)
	if n < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of v by linear
// interpolation of the sorted sample. v is not modified.
func Quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
