package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/mat"
	"repro/internal/randx"
	"repro/internal/sparse"
)

func TestRefreshSupportFindsStrongCandidate(t *testing.T) {
	// Data with a single strong dependency X1 = 2·X0: the refresh must
	// pull (0,1) into the support even when it starts without it.
	rng := randx.New(1)
	n, d := 400, 10
	x := mat.NewDense(n, d)
	for r := 0; r < n; r++ {
		row := x.Row(r)
		for j := range row {
			row[j] = rng.Normal(0, 1)
		}
		row[1] = 2*row[0] + rng.Normal(0, 0.1)
	}
	// Start support: a handful of unrelated entries.
	w := sparse.NewCSR(d, d, []sparse.Coord{
		{Row: 2, Col: 3, Val: 0.1}, {Row: 4, Col: 5, Val: -0.1}, {Row: 6, Col: 7, Val: 0.05},
	})
	out := refreshSupport(nil, w, x, rng, 8)
	found := false
	for i := 0; i < d; i++ {
		for p := out.RowPtr[i]; p < out.RowPtr[i+1]; p++ {
			if i == 0 && out.ColIdx[p] == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("refresh did not add the dominant-gradient pair (0,1)")
	}
	if out.NNZ() > 8 {
		t.Fatalf("budget exceeded: %d", out.NNZ())
	}
}

func TestRefreshSupportKeepsNonZeroValues(t *testing.T) {
	rng := randx.New(2)
	dag := gen.RandomDAG(rng, gen.ER, 12, 2, 0.5, 2)
	x := gen.SampleLSEM(rng, dag, 100, randx.Gaussian)
	w := sparse.NewCSR(12, 12, []sparse.Coord{
		{Row: 0, Col: 1, Val: 0.7}, {Row: 2, Col: 3, Val: 0}, // one live, one pruned
	})
	out := refreshSupport(nil, w, x, rng, 10)
	// The live value must survive verbatim.
	kept := false
	for i := 0; i < 12; i++ {
		for p := out.RowPtr[i]; p < out.RowPtr[i+1]; p++ {
			if i == 0 && out.ColIdx[p] == 1 && out.Val[p] == 0.7 {
				kept = true
			}
		}
	}
	if !kept {
		t.Fatal("live weight lost during refresh")
	}
}

func TestRefreshSupportNeverAddsDiagonal(t *testing.T) {
	rng := randx.New(3)
	dag := gen.RandomDAG(rng, gen.ER, 8, 2, 0.5, 2)
	x := gen.SampleLSEM(rng, dag, 80, randx.Gaussian)
	w := sparse.NewCSR(8, 8, []sparse.Coord{{Row: 0, Col: 1, Val: 0.2}})
	out := refreshSupport(nil, w, x, rng, 20)
	for i := 0; i < 8; i++ {
		for p := out.RowPtr[i]; p < out.RowPtr[i+1]; p++ {
			if out.ColIdx[p] == i {
				t.Fatal("diagonal candidate added")
			}
		}
	}
}

func TestSparseLearnerFixedSupportAblation(t *testing.T) {
	// With refresh disabled and a tiny random support, recovery must be
	// poor (the TPR ceiling the refresh exists to lift) — this guards
	// the ablation's premise.
	rng := randx.New(4)
	d := 40
	dag := gen.RandomDAG(rng, gen.ER, d, 2, 0.5, 2)
	x := gen.SampleLSEM(rng, dag, 400, randx.Gaussian)
	o := DefaultOptions()
	o.Lambda = 0.2
	o.Epsilon = 1e-3
	o.InitDensity = 0.05 // ~5% of true edges present in support
	o.MaxOuter = 8
	o.MaxInner = 120
	o.NoSupportRefresh = true
	res := Sparse(x, o)
	// Count true edges inside the final support.
	inSupport := 0
	w := res.WSparse
	for i := 0; i < d; i++ {
		for p := w.RowPtr[i]; p < w.RowPtr[i+1]; p++ {
			if dag.G.HasEdge(i, w.ColIdx[p]) {
				inSupport++
			}
		}
	}
	if inSupport > dag.G.NumEdges()/2 {
		t.Fatalf("fixed support unexpectedly contains %d/%d true edges", inSupport, dag.G.NumEdges())
	}
}
