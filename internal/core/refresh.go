package core

import (
	"container/heap"
	"math"
	"runtime"
	"sync"

	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/randx"
	"repro/internal/sparse"
)

// Support refresh — the active-set mechanism of the sparse learner.
//
// A fixed random candidate support of density ζ (Fig 3, INNER line 1)
// contains any given true edge only with probability ζ, so a learner
// confined to it has a TPR ceiling of ζ. The paper does not spell out
// how LEAST-SP escapes this; we implement the natural greedy active-set
// strategy from sparse regression: periodically score off-support
// candidate pairs by the magnitude of the least-squares gradient
// |x_iᵀ(Xw_j − x_j)| — the edge that would reduce the loss fastest —
// and swap the strongest candidates in for the stale zero entries
// (see DESIGN.md §2). For d below refreshExactDim every pair is scored
// exactly in parallel row blocks; above it a random candidate sample
// keeps the refresh cost O(sample·B), preserving LEAST-SP scalability.

// refreshExactDim bounds the dimension for exhaustive candidate
// scoring (d² ≤ 16M pairs).
const refreshExactDim = 4000

// candidate is a scored off-support pair.
type candidate struct {
	row, col int
	score    float64
}

// candHeap is a min-heap over scores holding the best-N candidates.
type candHeap []candidate

func (h candHeap) Len() int            { return len(h) }
func (h candHeap) Less(i, j int) bool  { return h[i].score < h[j].score }
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// refreshSupport returns a new CSR weight matrix whose pattern is the
// union of w's currently non-zero entries and the highest-scoring
// off-support candidates, capped at budget stored entries. Values of
// retained entries are preserved; new entries start at zero (their
// first Adam step moves them in the gradient direction).
func refreshSupport(run *parallel.Runner, w *sparse.CSR, x *mat.Dense, rng *randx.RNG, budget int) *sparse.CSR {
	d := w.Rows()
	resid := sparse.DenseMulCSRP(run, x, w) // XW
	resid.AxpyInPlace(-1, x)                // XW − X
	onSupport := make(map[[2]int]bool, w.NNZ())
	var kept []sparse.Coord
	for i := 0; i < d; i++ {
		for p := w.RowPtr[i]; p < w.RowPtr[i+1]; p++ {
			onSupport[[2]int{i, w.ColIdx[p]}] = true
			if w.Val[p] != 0 {
				kept = append(kept, sparse.Coord{Row: i, Col: w.ColIdx[p], Val: w.Val[p]})
			}
		}
	}
	addN := budget - len(kept)
	if addN <= 0 {
		return sparse.NewCSR(d, d, kept)
	}
	var top []candidate
	if d <= refreshExactDim {
		top = scoreAllPairs(x, resid, onSupport, addN)
	} else {
		top = scoreSampledPairs(x, resid, onSupport, rng, addN)
	}
	coords := kept
	for _, c := range top {
		coords = append(coords, sparse.Coord{Row: c.row, Col: c.col, Val: 0})
	}
	return sparse.NewCSR(d, d, coords)
}

// scoreAllPairs computes |XᵀR| for every off-support off-diagonal pair
// in parallel row blocks and returns the addN best.
func scoreAllPairs(x, resid *mat.Dense, onSupport map[[2]int]bool, addN int) []candidate {
	d := x.Cols()
	n := x.Rows()
	workers := runtime.GOMAXPROCS(0)
	if workers > d {
		workers = d
	}
	heaps := make([]candHeap, workers)
	var wg sync.WaitGroup
	chunk := (d + workers - 1) / workers
	for wkr := 0; wkr < workers; wkr++ {
		lo, hi := wkr*chunk, (wkr+1)*chunk
		if hi > d {
			hi = d
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(wkr, lo, hi int) {
			defer wg.Done()
			h := &heaps[wkr]
			grow := make([]float64, d)
			for i := lo; i < hi; i++ {
				for j := range grow {
					grow[j] = 0
				}
				// grow = Σ_r X[r,i]·R[r,·]
				for r := 0; r < n; r++ {
					xv := x.At(r, i)
					if xv == 0 {
						continue
					}
					rrow := resid.Row(r)
					for j, rv := range rrow {
						grow[j] += xv * rv
					}
				}
				for j, g := range grow {
					if i == j || onSupport[[2]int{i, j}] {
						continue
					}
					pushCand(h, candidate{i, j, math.Abs(g)}, addN)
				}
			}
		}(wkr, lo, hi)
	}
	wg.Wait()
	merged := candHeap{}
	for i := range heaps {
		for _, c := range heaps[i] {
			pushCand(&merged, c, addN)
		}
	}
	return merged
}

// scoreSampledPairs scores a random sample of candidate pairs —
// the O(sample·B) scalable refresh used beyond refreshExactDim.
func scoreSampledPairs(x, resid *mat.Dense, onSupport map[[2]int]bool, rng *randx.RNG, addN int) []candidate {
	d := x.Cols()
	n := x.Rows()
	sampleN := 32 * addN
	h := candHeap{}
	for s := 0; s < sampleN; s++ {
		i, j := rng.Intn(d), rng.Intn(d)
		if i == j || onSupport[[2]int{i, j}] {
			continue
		}
		var g float64
		for r := 0; r < n; r++ {
			g += x.At(r, i) * resid.At(r, j)
		}
		pushCand(&h, candidate{i, j, math.Abs(g)}, addN)
	}
	return h
}

func pushCand(h *candHeap, c candidate, limit int) {
	if h.Len() < limit {
		heap.Push(h, c)
		return
	}
	if c.score > (*h)[0].score {
		(*h)[0] = c
		heap.Fix(h, 0)
	}
}
