package core

import (
	"repro/internal/mat"
	"repro/internal/sparse"
)

// sparseFromDense is a test helper converting a dense matrix to CSR.
func sparseFromDense(w *mat.Dense) *sparse.CSR { return sparse.FromDense(w, 0) }
