// Package core implements LEAST, the paper's structure-learning
// algorithm (Fig 3): augmented-Lagrangian minimization of
//
//	(1/n)‖X − XW‖²_F + λ‖W‖₁ + ρ/2·δ(W)² + η·δ(W)
//
// where δ(W) is the spectral-radius upper bound of §III. Two learners
// are provided, mirroring the paper's two implementations:
//
//   - Dense — the "LEAST-TF" analogue: W is a dense d×d matrix, the
//     full loss gradient is used, and the support may regrow after
//     thresholding. Best when d² floats fit in memory comfortably.
//   - Sparse — the "LEAST-SP" analogue: W lives on a fixed random
//     candidate support of density ζ (Glorot-initialized), all state is
//     O(nnz), and every step costs O(B·(d+s) + k·s).
//
// Note on Fig 3 line 7: the paper prints the penalty-gradient factor as
// (ρ + δ(W)); the true gradient of ρ/2·δ² + η·δ is (ρ·δ + η)·∇δ, which
// is what both learners use (see DESIGN.md §2).
package core

import (
	"context"
	"math"
	"time"

	"repro/internal/constraint"
	"repro/internal/gen"
	"repro/internal/loss"
	"repro/internal/mat"
	"repro/internal/opt"
	"repro/internal/parallel"
	"repro/internal/randx"
	"repro/internal/sparse"
)

// Options configures a LEAST run. The zero value is not usable; start
// from DefaultOptions.
type Options struct {
	// K and Alpha parameterize the spectral bound δ^(k) (paper: 5, 0.9).
	K     int
	Alpha float64
	// Lambda is the L1 penalty λ.
	Lambda float64
	// Epsilon is the constraint tolerance ε.
	Epsilon float64
	// Threshold is the in-loop filtering threshold θ (Fig 3 line 9).
	Threshold float64
	// BatchSize is B; 0 or ≥ n uses the full sample matrix.
	BatchSize int
	// InitDensity is ζ, the random-initialization density.
	InitDensity float64
	// MaxOuter / MaxInner are T_o and T_i.
	MaxOuter, MaxInner int
	// InnerTol stops an inner solve when the relative change of ℓ(W)
	// stays below it for a few consecutive iterations.
	InnerTol float64
	// Adam is the inner optimizer configuration.
	Adam opt.AdamConfig
	// RhoGrowth enlarges ρ between outer iterations.
	RhoGrowth float64
	// LRDecay multiplies the Adam learning rate after every inner
	// solve (1 disables). Decay lets the iterates settle below the
	// initial step size: a constant-step Adam oscillates with
	// amplitude ≈ lr, which floors the reachable δ at ≈ s·lr².
	LRDecay float64
	// MinLR floors the decayed learning rate.
	MinLR float64
	// Seed drives initialization and batching.
	Seed int64
	// CheckH, when set, additionally evaluates the exact NOTEARS
	// h(W) at the end of every outer iteration and stops when
	// h ≤ Epsilon — the fairness termination of §V-A. Only sensible
	// at dense-feasible d (it costs O(d³)).
	CheckH bool
	// TrackEvery, when > 0, records (wall-clock, δ, ĥ) trace points
	// every TrackEvery inner iterations, where ĥ is the Hutchinson
	// estimate of tr(e^S)−d — this is how the Fig 5 curves are drawn.
	TrackEvery int
	// TrackExact replaces the Hutchinson ĥ in trace points with the
	// exact tr(e^S)−d (O(d³) per point — only for the small-d Fig 4
	// correlation study). Dense learner only.
	TrackExact bool
	// GradClip caps the max-abs entry of the combined gradient
	// (stability guard; 0 disables).
	GradClip float64
	// NoNormalize disables the δ/d normalization of the constraint.
	// δ^(k) = Σᵢ b[i] is extensive — it grows with total graph mass —
	// so on larger graphs the raw penalty (ρδ + η)·∇δ dwarfs the loss
	// gradient from the first outer iteration and the learner
	// under-fits. Dividing by d keeps the "zero iff DAG" semantics
	// (Lemma 1 is scale-free) while making the Lagrangian schedule
	// dimension-independent. Disabled only by the ablation bench.
	NoNormalize bool
	// NoSupportRefresh disables the sparse learner's greedy active-set
	// refresh (see refresh.go). With refresh disabled the learner is
	// confined to its initial random support — the literal reading of
	// Fig 3, kept available for the ablation bench.
	NoSupportRefresh bool
	// Parallelism bounds the goroutine fan-out of the sparse execution
	// backend (the CSR spectral-bound kernels, the sparse loss, and the
	// Hutchinson matvecs): 0 selects runtime.GOMAXPROCS, 1 forces the
	// serial path, n > 1 uses at most n workers. Problems below the
	// backend's work threshold run serially regardless, and for a fixed
	// worker count results are deterministic (run Parallelism = 1 for
	// bit-exact cross-machine reproducibility).
	Parallelism int
	// SinkNodes lists variables constrained to have no outgoing edges
	// (their W rows are pinned to zero). The booking monitor uses it
	// to encode that error indicators are effects, never causes —
	// the kind of light domain knowledge §VI-A assumes when it reads
	// paths *into* the error nodes. Dense learner only.
	SinkNodes []int
	// Progress, when non-nil, is invoked after every inner iteration
	// with a snapshot of the optimization state. It is called on the
	// learner's goroutine, so implementations must be fast and must not
	// block (the serving layer stores the snapshot behind a mutex).
	Progress func(Progress)
}

// Progress is a point-in-time snapshot of a running learn, delivered
// through Options.Progress — the signal behind the serving layer's
// GET /v1/jobs/{id} iteration reporting.
type Progress struct {
	// Solves counts inner solves started (outer iterations including
	// ρ-escalation re-solves); Inner counts cumulative inner iterations.
	Solves, Inner int
	// Delta is the current (normalized) spectral-bound value.
	Delta float64
	// Elapsed is the wall-clock time since the learn started.
	Elapsed time.Duration
}

// DefaultOptions returns the paper's parameter settings (§V).
func DefaultOptions() Options {
	return Options{
		K:           constraint.DefaultK,
		Alpha:       constraint.DefaultAlpha,
		Lambda:      0.1,
		Epsilon:     1e-8,
		Threshold:   0,
		BatchSize:   0,
		InitDensity: 1e-4,
		MaxOuter:    64,
		MaxInner:    200,
		InnerTol:    1e-6,
		Adam:        opt.DefaultAdam(),
		RhoGrowth:   10,
		LRDecay:     0.75,
		MinLR:       1e-5,
		Seed:        1,
		GradClip:    1e4,
	}
}

// TracePoint is one sample of the constraint trajectory (Fig 5).
type TracePoint struct {
	Elapsed time.Duration
	Delta   float64 // spectral upper bound δ(W)
	H       float64 // estimate (or exact value) of tr(e^S)−d
}

// Result is the outcome of a LEAST run.
type Result struct {
	// W is the learned weight matrix (dense form; the sparse learner
	// returns its CSR matrix in WSparse and a dense copy here when
	// materialization is affordable, else nil).
	W *mat.Dense
	// WSparse is set by the sparse learner.
	WSparse *sparse.CSR
	// Delta and H are the final constraint values (H only if CheckH).
	Delta, H float64
	// OuterIters / InnerIters count work done.
	OuterIters, InnerIters int
	// DeltaTrace holds δ(W*) after each outer iteration.
	DeltaTrace []float64
	// HTrace holds h(W*) after each outer iteration when CheckH is set.
	HTrace []float64
	// Trace holds the fine-grained (time, δ, ĥ) monitoring points
	// when TrackEvery > 0.
	Trace []TracePoint
	// Elapsed is the total wall-clock time.
	Elapsed time.Duration
	// Converged reports whether the ε-tolerance was met.
	Converged bool
	// Cancelled reports that the run was stopped early by its context
	// (Converged is false in that case and W holds the last iterate).
	Cancelled bool
}

// Dense runs LEAST with a dense weight matrix on the sample matrix x
// (n×d). It is the accuracy/efficiency workhorse used for every Fig-4
// and gene-data experiment.
func Dense(x *mat.Dense, o Options) *Result {
	return DenseCtx(context.Background(), x, o)
}

// DenseCtx is Dense under a context: cancellation is observed at inner-
// iteration granularity (the result carries the last iterate with
// Cancelled set) and Options.Progress, if present, is notified after
// every iteration. This is the entry point of the serving layer, which
// needs to abort long-running jobs without waiting out the
// augmented-Lagrangian schedule.
func DenseCtx(ctx context.Context, x *mat.Dense, o Options) *Result {
	return denseRunCtx(ctx, x.Cols(), o, func(rng *randx.RNG, ls loss.LeastSquares) denseEval {
		batcher := newBatcher(rng, x, o.BatchSize)
		return func(w *mat.Dense) (float64, *mat.Dense) {
			return ls.ValueGrad(w, batcher.next())
		}
	})
}

// DenseStats runs the dense learner off sufficient statistics (G =
// XᵀX): every loss evaluation is (2/n)(G·W − G) instead of a pass over
// the rows, so the per-iteration cost is O(d³) however large n was —
// the execution mode behind streamed datasets (DESIGN.md §6). Aside
// from floating-point summation order the optimization is the one
// Dense runs on the same data. Mini-batching does not apply (the
// statistics are a full-batch summary); BatchSize is ignored.
func DenseStats(st *loss.SuffStats, o Options) *Result {
	return DenseStatsCtx(context.Background(), st, o)
}

// DenseStatsCtx is DenseStats under a context — see DenseCtx for the
// cancellation and progress contract.
func DenseStatsCtx(ctx context.Context, st *loss.SuffStats, o Options) *Result {
	return denseRunCtx(ctx, st.D(), o, func(_ *randx.RNG, ls loss.LeastSquares) denseEval {
		// One evaluator per learn: its reused G·W workspace (plus the
		// kernel's pooled pack buffers) makes the per-iteration loss
		// allocation-free, bit-identical to ls.ValueGradGram. The inner
		// loop consumes the aliased gradient within the same iteration,
		// which is exactly the lifetime GramEval grants.
		ev := loss.NewGramEval(ls, st)
		return func(w *mat.Dense) (float64, *mat.Dense) {
			return ev.ValueGrad(w)
		}
	})
}

// denseEval evaluates the data-fitting term at W, however the data is
// represented.
type denseEval func(w *mat.Dense) (float64, *mat.Dense)

// denseRunCtx is the shared dense-learner body: everything except the
// loss evaluation — initialization, the spectral constraint, the
// augmented-Lagrangian schedule, termination — depends only on d, so
// the row-backed and statistics-backed modes differ in exactly the
// closure mkEval builds. mkEval runs after W is initialized and must
// not consume rng draws (keeping the two modes on the same random
// stream).
func denseRunCtx(ctx context.Context, d int, o Options, mkEval func(*randx.RNG, loss.LeastSquares) denseEval) *Result {
	start := time.Now()
	rng := randx.New(o.Seed)
	w := gen.DenseGlorotInit(rng, d, initDensity(o, d))
	sp := constraint.NewSpectral(o.K, o.Alpha)
	// Parallelism reaches the dense learner only through the Hutchinson
	// trace estimator (run); the dense spectral evaluator ignores it.
	run := parallel.New(o.Parallelism)
	ls := loss.LeastSquares{Lambda: o.Lambda, Workers: o.Parallelism}
	norm := float64(d)
	if o.NoNormalize {
		norm = 1
	}
	adam := opt.NewAdam(o.Adam, d*d)
	pinned := opt.DiagonalIndices(d)
	for _, s := range o.SinkNodes {
		if s < 0 || s >= d {
			continue
		}
		for j := 0; j < d; j++ {
			pinned = append(pinned, s*d+j)
		}
	}
	opt.PinZero(w, pinned)
	res := &Result{}

	eval := mkEval(rng, ls)
	lr := lrSchedule(o)
	solves := 0
	inner := func(rho, eta float64) float64 {
		solves++
		adam.Reset()
		adam.SetLR(lr())
		prevObj := math.Inf(1)
		calm := 0
		var delta float64
		for it := 0; it < o.MaxInner; it++ {
			if ctx.Err() != nil {
				res.Cancelled = true
				break
			}
			res.InnerIters++
			var gradC *mat.Dense
			delta, gradC = sp.ValueGrad(w)
			if norm != 1 {
				delta /= norm
				gradC.ScaleInPlace(1 / norm)
			}
			lv, gradL := eval(w)
			obj := lv + 0.5*rho*delta*delta + eta*delta
			factor := rho*delta + eta
			gd, cd := gradL.Data(), gradC.Data()
			for i := range gd {
				gd[i] += factor * cd[i]
			}
			opt.ClipGrad(gd, o.GradClip)
			for _, i := range pinned {
				gd[i] = 0
			}
			adam.Step(w.Data(), gd)
			opt.PinZero(w, pinned)
			if o.Threshold > 0 {
				w.Threshold(o.Threshold)
			}
			if o.TrackEvery > 0 && res.InnerIters%o.TrackEvery == 0 {
				h := 0.0
				if o.TrackExact {
					h = constraint.NotearsH(w)
				} else {
					h = hutchH(run, sparse.FromDense(w, 0), rng.Split(), 8, 24)
				}
				res.Trace = append(res.Trace, TracePoint{
					Elapsed: time.Since(start),
					Delta:   delta,
					H:       h,
				})
			}
			if o.Progress != nil {
				o.Progress(Progress{Solves: solves, Inner: res.InnerIters, Delta: delta, Elapsed: time.Since(start)})
			}
			if loss.NaNGuard(obj) {
				break
			}
			rel := math.Abs(prevObj-obj) / math.Max(1, math.Abs(prevObj))
			if rel < o.InnerTol {
				calm++
				if calm >= 3 {
					break
				}
			} else {
				calm = 0
			}
			prevObj = obj
		}
		return sp.Value(w) / norm
	}

	stop := func(delta float64) bool {
		if !o.CheckH {
			return false
		}
		h := constraint.NotearsH(w)
		res.HTrace = append(res.HTrace, h)
		res.H = h
		return h <= o.Epsilon
	}

	st := opt.RunAugLag(opt.AugLagConfig{
		RhoInit: 1, EtaInit: 0, RhoGrowth: o.RhoGrowth,
		RhoMax: 1e16, Epsilon: o.Epsilon, MaxOuter: o.MaxOuter,
		ProgressFactor: 0.25,
		Cancelled:      func() bool { return ctx.Err() != nil },
	}, inner, stop)
	// The outer loop may observe the cancellation between inner
	// iterations (after the loop's own ctx check); make sure a
	// truncated run is never reported as a normal completion.
	if ctx.Err() != nil {
		res.Cancelled = true
	}

	res.W = w
	res.Delta = st.Delta
	res.DeltaTrace = st.DeltaTrace
	res.OuterIters = st.Outer
	res.Converged = st.Converged
	res.Elapsed = time.Since(start)
	if o.CheckH && res.H == 0 && len(res.HTrace) == 0 && !res.Cancelled {
		res.H = constraint.NotearsH(w)
	}
	return res
}

// Sparse runs LEAST-SP: the weight matrix lives on a fixed random
// candidate support of density ζ and every iteration costs
// O(B·(d+s) + k·s). This is the learner behind the Fig-5 scalability
// experiments.
func Sparse(x *mat.Dense, o Options) *Result {
	return SparseWithSupportCtx(context.Background(), x, o, nil)
}

// SparseCtx is Sparse under a context — see DenseCtx for the
// cancellation and progress contract.
func SparseCtx(ctx context.Context, x *mat.Dense, o Options) *Result {
	return SparseWithSupportCtx(ctx, x, o, nil)
}

// SparseWithSupport is Sparse but guarantees the candidate support
// contains the given coordinates (application pipelines seed it with
// domain-suggested edges, e.g. log-entity co-occurrence pairs).
func SparseWithSupport(x *mat.Dense, o Options, must []sparse.Coord) *Result {
	return SparseWithSupportCtx(context.Background(), x, o, must)
}

// SparseWithSupportCtx is SparseWithSupport under a context — see
// DenseCtx for the cancellation and progress contract.
func SparseWithSupportCtx(ctx context.Context, x *mat.Dense, o Options, must []sparse.Coord) *Result {
	start := time.Now()
	d := x.Cols()
	rng := randx.New(o.Seed)
	var w *sparse.CSR
	if must == nil {
		w = gen.SparseInit(rng, d, initDensity(o, d))
	} else {
		w = gen.SparseInitWithSupport(rng, d, initDensity(o, d), must)
	}
	w.ZeroDiagonal()
	sp := constraint.NewSpectral(o.K, o.Alpha)
	sp.Workers = o.Parallelism
	run := parallel.New(o.Parallelism)
	ls := loss.LeastSquares{Lambda: o.Lambda, Workers: o.Parallelism}
	norm := float64(d)
	if o.NoNormalize {
		norm = 1
	}
	adam := opt.NewAdam(o.Adam, w.NNZ())
	res := &Result{}

	batcher := newBatcher(rng, x, o.BatchSize)
	grad := make([]float64, w.NNZ())
	lr := lrSchedule(o)
	budget := w.NNZ()
	firstSolve := true
	solves := 0
	inner := func(rho, eta float64) float64 {
		solves++
		if ctx.Err() != nil {
			// Abandoned run: skip even the O(k·nnz) forward pass. The
			// outer loop breaks on its own cancellation check before
			// this value can influence convergence accounting.
			res.Cancelled = true
			return math.Inf(1)
		}
		if !firstSolve && !o.NoSupportRefresh {
			w = refreshSupport(run, w, x, rng, budget)
			w.ZeroDiagonal()
			adam = opt.NewAdam(o.Adam, w.NNZ())
			grad = make([]float64, w.NNZ())
		}
		firstSolve = false
		adam.Reset()
		adam.SetLR(lr())
		prevObj := math.Inf(1)
		calm := 0
		for it := 0; it < o.MaxInner; it++ {
			if ctx.Err() != nil {
				res.Cancelled = true
				break
			}
			res.InnerIters++
			delta, gradC := sp.ValueGradSparse(w)
			if norm != 1 {
				delta /= norm
				for p := range gradC {
					gradC[p] /= norm
				}
			}
			xb := batcher.next()
			lv, gradL := ls.ValueGradSparse(w, xb)
			obj := lv + 0.5*rho*delta*delta + eta*delta
			factor := rho*delta + eta
			for p := range grad {
				grad[p] = gradL[p] + factor*gradC[p]
			}
			opt.ClipGrad(grad, o.GradClip)
			adam.Step(w.Val, grad)
			w.ZeroDiagonal()
			if o.Threshold > 0 {
				w.Threshold(o.Threshold)
			}
			if o.TrackEvery > 0 && res.InnerIters%o.TrackEvery == 0 {
				res.Trace = append(res.Trace, TracePoint{
					Elapsed: time.Since(start),
					Delta:   delta,
					H:       hutchH(run, w, rng.Split(), 8, 24),
				})
			}
			if o.Progress != nil {
				o.Progress(Progress{Solves: solves, Inner: res.InnerIters, Delta: delta, Elapsed: time.Since(start)})
			}
			if loss.NaNGuard(obj) {
				break
			}
			rel := math.Abs(prevObj-obj) / math.Max(1, math.Abs(prevObj))
			if rel < o.InnerTol {
				calm++
				if calm >= 3 {
					break
				}
			} else {
				calm = 0
			}
			prevObj = obj
		}
		return sp.ValueSparse(w) / norm
	}

	// For the sparse learner, the §V-A fairness termination on h(W)
	// uses the Hutchinson estimate — the exact tr(e^S) is unreachable
	// at LEAST-SP scales.
	var stop func(float64) bool
	if o.CheckH {
		stop = func(float64) bool {
			h := hutchH(run, w, rng.Split(), 8, 24)
			res.HTrace = append(res.HTrace, h)
			res.H = h
			return h <= o.Epsilon
		}
	}

	st := opt.RunAugLag(opt.AugLagConfig{
		RhoInit: 1, EtaInit: 0, RhoGrowth: o.RhoGrowth,
		RhoMax: 1e16, Epsilon: o.Epsilon, MaxOuter: o.MaxOuter,
		ProgressFactor: 0.25,
		Cancelled:      func() bool { return ctx.Err() != nil },
	}, inner, stop)
	// As in DenseCtx: a cancellation seen only by the outer loop must
	// still surface as Cancelled, never as a normal completion.
	if ctx.Err() != nil {
		res.Cancelled = true
	}

	res.WSparse = w
	if d <= 4096 {
		res.W = w.ToDense()
	}
	res.Delta = st.Delta
	res.DeltaTrace = st.DeltaTrace
	res.OuterIters = st.Outer
	res.Converged = st.Converged
	res.Elapsed = time.Since(start)
	return res
}

// lrSchedule returns a closure yielding the learning rate for each
// successive inner solve: lr0·decay^(solve−1), floored at MinLR.
func lrSchedule(o Options) func() float64 {
	lr := o.Adam.LR
	if lr <= 0 {
		lr = opt.DefaultAdam().LR
	}
	decay := o.LRDecay
	if decay <= 0 || decay > 1 {
		decay = 1
	}
	minLR := o.MinLR
	if minLR <= 0 {
		minLR = 1e-6
	}
	first := true
	return func() float64 {
		if first {
			first = false
			return lr
		}
		lr *= decay
		if lr < minLR {
			lr = minLR
		}
		return lr
	}
}

func initDensity(o Options, d int) float64 {
	den := o.InitDensity
	if den <= 0 {
		den = 1e-4
	}
	// Guarantee a workable number of candidates on small graphs: the
	// paper's ζ = 10⁻⁴ targets d ≈ 10⁵; at d = 100 it would leave the
	// dense learner with a single non-zero. Dense runs want full
	// support anyway, so small-d dense runs bump to full density.
	if float64(d)*float64(d)*den < float64(4*d) {
		den = math.Min(1, float64(4*d)/(float64(d)*float64(d)))
	}
	return den
}

// batcher produces mini-batches X_B (Fig 3 line 5). With batch ≤ 0 or
// ≥ n it returns the full matrix.
type batcher struct {
	rng  *randx.RNG
	x    *mat.Dense
	size int
}

func newBatcher(rng *randx.RNG, x *mat.Dense, size int) *batcher {
	if size <= 0 || size >= x.Rows() {
		size = 0
	}
	return &batcher{rng: rng, x: x, size: size}
}

func (b *batcher) next() *mat.Dense {
	if b.size == 0 {
		return b.x
	}
	rows := make([]int, b.size)
	for i := range rows {
		rows[i] = b.rng.Intn(b.x.Rows())
	}
	return loss.Batch(b.x, rows)
}

// hutchH estimates h(W) = tr(e^{W∘W}) − d with a Hutchinson trace
// estimator driven by sparse matrix-vector products:
// tr(e^S) − d = E_z[zᵀ(e^S − I)z] over Rademacher probes z, with
// e^S·z evaluated by the Taylor recurrence y_{k} = S·y_{k−1}/k. Cost is
// O(probes·terms·nnz), which is how the h-curve of Fig 5 can be traced
// at 10⁴–10⁵ nodes where an exact e^S is impossible.
func hutchH(run *parallel.Runner, w *sparse.CSR, rng *randx.RNG, probes, terms int) float64 {
	d := w.Rows()
	if d == 0 {
		return 0
	}
	s := w.SquareP(run)
	var acc float64
	y := make([]float64, d)
	z := make([]float64, d)
	ynext := make([]float64, d)
	for p := 0; p < probes; p++ {
		for i := range z {
			if rng.Float64() < 0.5 {
				z[i] = 1
			} else {
				z[i] = -1
			}
			y[i] = z[i]
		}
		for k := 1; k <= terms; k++ {
			// ynext = S·y / k ; using Sᵀ rows: (S·y)[i] = Σ_j S[i,j] y[j].
			s.MulVecP(run, y, ynext)
			inv := 1 / float64(k)
			var dot, norm float64
			for i := range ynext {
				ynext[i] *= inv
				dot += z[i] * ynext[i]
				norm += math.Abs(ynext[i])
			}
			acc += dot
			y, ynext = ynext, y
			if norm < 1e-18 {
				break
			}
		}
	}
	h := acc / float64(probes)
	if h < 0 {
		h = 0 // estimator noise can dip below zero near convergence
	}
	return h
}
