package core
