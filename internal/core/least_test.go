package core

import (
	"math"
	"testing"

	"repro/internal/constraint"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/randx"
)

var defaultTaus = []float64{0.1, 0.2, 0.3, 0.4, 0.5}

func TestDenseRecoversERGraph(t *testing.T) {
	rng := randx.New(42)
	d := 20
	dag := gen.RandomDAG(rng, gen.ER, d, 2, 0.5, 2)
	x := gen.SampleLSEM(rng, dag, 10*d, randx.Gaussian)
	o := DefaultOptions()
	o.Lambda = 0.2
	o.Epsilon = 1e-3
	o.CheckH = true
	o.MaxOuter = 16
	o.MaxInner = 300
	res := Dense(x, o)
	if res.H > 1e-2 {
		t.Fatalf("did not drive constraint down: h=%g δ=%g", res.H, res.Delta)
	}
	acc, tau := metrics.BestOverThresholds(dag.G, res.W, defaultTaus)
	t.Logf("F1=%.3f SHD=%d tau=%.1f pred=%d true=%d", acc.F1, acc.SHD, tau, acc.PredEdges, dag.G.NumEdges())
	if acc.F1 < 0.75 {
		t.Fatalf("F1 = %.3f below 0.75 on easy ER-2 d=20 instance", acc.F1)
	}
	// The learned graph at the best threshold must be acyclic.
	if !metrics.GraphFromWeights(res.W, tau).IsDAG() {
		t.Fatalf("thresholded graph has a cycle")
	}
}

func TestDenseRecoversSFGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("3-seed ε×τ grid search (~3s; ~1min under -race); ER recovery still runs")
	}
	// Mirrors the paper's §V-A protocol: grid-search the tolerance
	// ε ∈ {1e-1..1e-3} and the edge threshold τ, report the best F1.
	// SF-4 graphs are dense; the paper itself observes LEAST has
	// "higher variance than NOTEARS... more noticeable on dense SF-4
	// graphs" (§V-A observation 4), so we assert on a multi-seed mean.
	var sum float64
	const seeds = 3
	for seed := int64(43); seed < 43+seeds; seed++ {
		rng := randx.New(seed)
		d := 20
		dag := gen.RandomDAG(rng, gen.SF, d, 4, 0.5, 2)
		x := gen.SampleLSEM(rng, dag, 10*d, randx.Gumbel)
		best := 0.0
		for _, eps := range []float64{1e-1, 1e-2, 1e-3} {
			o := DefaultOptions()
			o.Lambda = 0.2
			o.Epsilon = eps
			o.CheckH = true
			o.MaxOuter = 16
			o.MaxInner = 300
			res := Dense(x, o)
			acc, _ := metrics.BestOverThresholds(dag.G, res.W, defaultTaus)
			if acc.F1 > best {
				best = acc.F1
			}
		}
		sum += best
	}
	mean := sum / seeds
	t.Logf("SF mean best-F1 over %d seeds = %.3f", seeds, mean)
	if mean < 0.55 {
		t.Fatalf("mean F1 = %.3f below 0.55 on SF-4 d=20", mean)
	}
}

func TestSparseLearnerDrivesConstraintDown(t *testing.T) {
	rng := randx.New(44)
	d := 60
	dag := gen.RandomDAG(rng, gen.ER, d, 2, 0.5, 2)
	x := gen.SampleLSEM(rng, dag, 300, randx.Gaussian)
	o := DefaultOptions()
	o.Lambda = 0.2
	o.InitDensity = 0.2
	o.BatchSize = 100
	o.Threshold = 1e-3
	o.Epsilon = 1e-3
	o.CheckH = true
	o.MaxOuter = 12
	o.MaxInner = 300
	res := Sparse(x, o)
	if res.WSparse == nil {
		t.Fatal("no sparse result")
	}
	if res.H > 0.05 {
		t.Fatalf("sparse learner constraint stuck at ĥ=%g δ=%g", res.H, res.Delta)
	}
	acc, _ := metrics.BestOverThresholds(dag.G, res.W, defaultTaus)
	t.Logf("sparse F1=%.3f TPR=%.3f SHD=%d", acc.F1, acc.TPR, acc.SHD)
	if acc.TPR < 0.5 {
		t.Fatalf("sparse learner TPR %.3f too low", acc.TPR)
	}
}

func TestDeltaTraceDecreases(t *testing.T) {
	rng := randx.New(45)
	dag := gen.RandomDAG(rng, gen.ER, 15, 2, 0.5, 2)
	x := gen.SampleLSEM(rng, dag, 150, randx.Exponential)
	o := DefaultOptions()
	o.MaxOuter = 12
	res := Dense(x, o)
	if len(res.DeltaTrace) == 0 {
		t.Fatal("no trace")
	}
	first, last := res.DeltaTrace[0], res.DeltaTrace[len(res.DeltaTrace)-1]
	if !(last < first || last <= o.Epsilon) {
		t.Fatalf("δ did not decrease: first=%g last=%g", first, last)
	}
}

func TestCheckHTermination(t *testing.T) {
	rng := randx.New(46)
	dag := gen.RandomDAG(rng, gen.ER, 12, 2, 0.5, 2)
	x := gen.SampleLSEM(rng, dag, 120, randx.Gaussian)
	o := DefaultOptions()
	o.CheckH = true
	o.Epsilon = 1e-6
	o.MaxOuter = 20
	res := Dense(x, o)
	if len(res.HTrace) == 0 {
		t.Fatal("CheckH set but no h trace recorded")
	}
	if res.H > 1e-4 {
		t.Fatalf("h(W) = %g did not converge", res.H)
	}
}

func TestTraceRecording(t *testing.T) {
	rng := randx.New(47)
	dag := gen.RandomDAG(rng, gen.ER, 15, 2, 0.5, 2)
	x := gen.SampleLSEM(rng, dag, 100, randx.Gaussian)
	o := DefaultOptions()
	o.TrackEvery = 5
	o.MaxOuter = 5
	res := Dense(x, o)
	if len(res.Trace) == 0 {
		t.Fatal("TrackEvery set but no trace points")
	}
	for _, tp := range res.Trace {
		if tp.Delta < 0 || tp.H < 0 || math.IsNaN(tp.H) {
			t.Fatalf("bad trace point %+v", tp)
		}
	}
}

func TestHutchinsonEstimatorAccuracy(t *testing.T) {
	rng := randx.New(48)
	for trial := 0; trial < 5; trial++ {
		d := 10
		w := gen.DenseGlorotInit(rng, d, 0.3)
		wc := sparseFromDense(w)
		exact := constraint.NotearsH(w)
		est := hutchH(nil, wc, rng.Split(), 64, 30)
		if math.Abs(est-exact) > 0.25*math.Max(1, exact) {
			t.Errorf("trial %d: Hutchinson %g vs exact %g", trial, est, exact)
		}
	}
}

func TestBatcherShapes(t *testing.T) {
	rng := randx.New(49)
	dag := gen.RandomDAG(rng, gen.ER, 8, 2, 0.5, 2)
	x := gen.SampleLSEM(rng, dag, 50, randx.Gaussian)
	b := newBatcher(rng, x, 16)
	xb := b.next()
	if xb.Rows() != 16 || xb.Cols() != 8 {
		t.Fatalf("batch shape %dx%d", xb.Rows(), xb.Cols())
	}
	full := newBatcher(rng, x, 0)
	if full.next() != x {
		t.Fatal("full batcher should return the original matrix")
	}
	over := newBatcher(rng, x, 100)
	if over.next() != x {
		t.Fatal("oversized batch should return the original matrix")
	}
}

func TestInitDensityGuards(t *testing.T) {
	o := DefaultOptions()
	if d := initDensity(o, 100); d*100*100 < 4*100 {
		t.Fatalf("small-d density %g leaves too few candidates", d)
	}
	if d := initDensity(o, 100000); d != o.InitDensity {
		t.Fatalf("large-d density %g should stay at ζ=%g", d, o.InitDensity)
	}
}
