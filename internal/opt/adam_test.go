package opt

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func TestAdamMinimizesQuadratic(t *testing.T) {
	// f(x) = Σ (x_i − target_i)², ∇f = 2(x − target).
	target := []float64{3, -2, 0.5}
	x := make([]float64, 3)
	a := NewAdam(AdamConfig{LR: 0.05, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}, 3)
	grad := make([]float64, 3)
	for it := 0; it < 2000; it++ {
		for i := range x {
			grad[i] = 2 * (x[i] - target[i])
		}
		a.Step(x, grad)
	}
	for i := range x {
		if math.Abs(x[i]-target[i]) > 0.01 {
			t.Fatalf("x[%d] = %g want %g", i, x[i], target[i])
		}
	}
}

func TestAdamFirstStepSize(t *testing.T) {
	// Bias correction makes the first step ≈ lr regardless of gradient
	// magnitude.
	for _, g := range []float64{1e-4, 1, 1e4} {
		a := NewAdam(DefaultAdam(), 1)
		x := []float64{0}
		a.Step(x, []float64{g})
		if math.Abs(math.Abs(x[0])-a.LR()) > a.LR()*0.01 {
			t.Fatalf("first step %g for grad %g (lr=%g)", x[0], g, a.LR())
		}
	}
}

func TestAdamResetAndSetLR(t *testing.T) {
	a := NewAdam(DefaultAdam(), 2)
	x := []float64{0, 0}
	a.Step(x, []float64{1, 1})
	a.Reset()
	if a.t != 0 || a.m[0] != 0 || a.v[1] != 0 {
		t.Fatal("Reset incomplete")
	}
	a.SetLR(0.5)
	if a.LR() != 0.5 {
		t.Fatal("SetLR")
	}
}

func TestAdamZeroMoments(t *testing.T) {
	a := NewAdam(DefaultAdam(), 3)
	x := []float64{0, 0, 0}
	a.Step(x, []float64{1, 1, 1})
	a.ZeroMoments([]int{1})
	if a.m[1] != 0 || a.v[1] != 0 {
		t.Fatal("ZeroMoments")
	}
	if a.m[0] == 0 {
		t.Fatal("other moments must survive")
	}
}

func TestAdamDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdam(DefaultAdam(), 2).Step([]float64{1}, []float64{1})
}

func TestRunAugLagConvergesImmediately(t *testing.T) {
	calls := 0
	st := RunAugLag(DefaultAugLag(), func(rho, eta float64) float64 {
		calls++
		return 0
	}, nil)
	if !st.Converged || calls != 1 || st.Outer != 1 {
		t.Fatalf("%+v calls=%d", st, calls)
	}
}

func TestRunAugLagEscalatesRho(t *testing.T) {
	// Constraint stuck at 1 until rho exceeds 100.
	var seenRho []float64
	st := RunAugLag(AugLagConfig{
		RhoInit: 1, RhoGrowth: 10, RhoMax: 1e6, Epsilon: 1e-8,
		MaxOuter: 50, ProgressFactor: 0.25,
	}, func(rho, eta float64) float64 {
		seenRho = append(seenRho, rho)
		if rho > 100 {
			return 0
		}
		return 1
	}, nil)
	if !st.Converged {
		t.Fatalf("did not converge: %+v", st)
	}
	if seenRho[len(seenRho)-1] <= 100 {
		t.Fatal("rho never escalated past 100")
	}
}

func TestRunAugLagMultiplierUpdate(t *testing.T) {
	// A geometric decrease satisfies sufficient progress: η must grow.
	v := 1.0
	st := RunAugLag(AugLagConfig{
		RhoInit: 1, RhoGrowth: 10, RhoMax: 1e6, Epsilon: 1e-9,
		MaxOuter: 100, ProgressFactor: 0.5,
	}, func(rho, eta float64) float64 {
		v *= 0.3
		return v
	}, nil)
	if !st.Converged {
		t.Fatalf("%+v", st)
	}
	if st.FinalEta <= 0 {
		t.Fatalf("η = %g never updated", st.FinalEta)
	}
}

func TestRunAugLagStopCallback(t *testing.T) {
	calls := 0
	st := RunAugLag(AugLagConfig{
		RhoInit: 1, RhoGrowth: 10, RhoMax: 1e6, Epsilon: 1e-12,
		MaxOuter: 50, ProgressFactor: 0.25,
	}, func(rho, eta float64) float64 {
		calls++
		return 1e-3 // never below Epsilon
	}, func(delta float64) bool {
		return calls >= 2
	})
	if !st.Converged {
		t.Fatal("stop callback should mark convergence")
	}
}

func TestRunAugLagSaturationStops(t *testing.T) {
	st := RunAugLag(AugLagConfig{
		RhoInit: 1, RhoGrowth: 10, RhoMax: 100, Epsilon: 1e-12,
		MaxOuter: 1000, ProgressFactor: 0.25,
	}, func(rho, eta float64) float64 {
		return 1 // never improves
	}, nil)
	if st.Converged {
		t.Fatal("should not report convergence")
	}
	if st.Solves > 10 {
		t.Fatalf("saturation did not stop the loop: %d solves", st.Solves)
	}
}

func TestClipGrad(t *testing.T) {
	g := []float64{3, -6, 1}
	f := ClipGrad(g, 2)
	if math.Abs(g[1]) > 2+1e-12 {
		t.Fatalf("clip failed: %v", g)
	}
	if math.Abs(f-1.0/3) > 1e-12 {
		t.Fatalf("scale factor %g", f)
	}
	g2 := []float64{0.5}
	if ClipGrad(g2, 2) != 1 || g2[0] != 0.5 {
		t.Fatal("under-clip should be identity")
	}
	if ClipGrad(nil, 0) != 1 {
		t.Fatal("clip<=0 disabled")
	}
}

func TestDiagonalIndicesAndPinZero(t *testing.T) {
	idx := DiagonalIndices(3)
	want := []int{0, 4, 8}
	for i, v := range want {
		if idx[i] != v {
			t.Fatalf("idx %v", idx)
		}
	}
	m := mat.NewDenseData(2, 2, []float64{1, 2, 3, 4})
	PinZero(m, []int{0, 3})
	if m.At(0, 0) != 0 || m.At(1, 1) != 0 || m.At(0, 1) != 2 {
		t.Fatal("PinZero")
	}
}
