// Package opt provides the optimization machinery of Fig 3: the Adam
// first-order optimizer (paper §IV uses Adam for both implementations,
// chosen because it "does not generate dense matrices during the
// computation process") in dense and fixed-support sparse forms, and
// the augmented-Lagrangian outer loop shared by LEAST and the NOTEARS
// baseline.
package opt

import (
	"math"

	"repro/internal/mat"
)

// AdamConfig holds the standard Adam hyper-parameters. The paper sets
// the learning rate to 0.01 (§V "Parameter Settings").
type AdamConfig struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64
}

// DefaultAdam returns the paper's Adam configuration.
func DefaultAdam() AdamConfig {
	return AdamConfig{LR: 0.01, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Adam performs bias-corrected Adam updates over a flat parameter
// vector. Both the dense learner (over the d² matrix entries) and the
// sparse learner (over the CSR value slice) drive it; the caller owns
// the parameter storage.
type Adam struct {
	cfg  AdamConfig
	m, v []float64
	t    int
}

// NewAdam returns an Adam state for n parameters.
func NewAdam(cfg AdamConfig, n int) *Adam {
	if cfg.LR <= 0 {
		cfg = DefaultAdam()
	}
	return &Adam{cfg: cfg, m: make([]float64, n), v: make([]float64, n)}
}

// Step applies one Adam update: params ← params − lr·m̂/(√v̂+ε).
// len(grad) must equal len(params) must equal the state size.
func (a *Adam) Step(params, grad []float64) {
	if len(params) != len(a.m) || len(grad) != len(a.m) {
		panic("opt: Adam dimension mismatch")
	}
	a.t++
	b1, b2 := a.cfg.Beta1, a.cfg.Beta2
	c1 := 1 - math.Pow(b1, float64(a.t))
	c2 := 1 - math.Pow(b2, float64(a.t))
	for i, g := range grad {
		a.m[i] = b1*a.m[i] + (1-b1)*g
		a.v[i] = b2*a.v[i] + (1-b2)*g*g
		mhat := a.m[i] / c1
		vhat := a.v[i] / c2
		params[i] -= a.cfg.LR * mhat / (math.Sqrt(vhat) + a.cfg.Epsilon)
	}
}

// SetLR overrides the learning rate; the learners decay it across
// outer solves so the iterates can settle below the initial step size
// (a constant-step Adam oscillates with amplitude ≈ lr, flooring the
// achievable constraint value).
func (a *Adam) SetLR(lr float64) { a.cfg.LR = lr }

// LR returns the current learning rate.
func (a *Adam) LR() float64 { return a.cfg.LR }

// Reset clears the moment estimates (used when the outer loop restarts
// an inner solve with new ρ, η so stale momentum does not leak across
// sub-problems).
func (a *Adam) Reset() {
	for i := range a.m {
		a.m[i] = 0
		a.v[i] = 0
	}
	a.t = 0
}

// ZeroMoments clears the moments at the given indices; the learners
// call it for entries removed by thresholding so a pruned weight does
// not keep drifting on stale momentum.
func (a *Adam) ZeroMoments(idx []int) {
	for _, i := range idx {
		a.m[i] = 0
		a.v[i] = 0
	}
}

// AugLagConfig drives the augmented-Lagrangian outer loop of Fig 3.
type AugLagConfig struct {
	// RhoInit and EtaInit are the line-1 initial penalty/multiplier.
	RhoInit, EtaInit float64
	// RhoGrowth is the "enlarge ρ by a small factor" of line 5.
	RhoGrowth float64
	// RhoMax caps the penalty to avoid float overflow on hard instances.
	RhoMax float64
	// Epsilon is the constraint tolerance ε of line 6.
	Epsilon float64
	// MaxOuter is T_o (the paper uses 1000 but converges far earlier).
	MaxOuter int
	// ProgressFactor is the sufficient-decrease test of the standard
	// NOTEARS dual-ascent schedule: after an inner solve, if the new
	// constraint value exceeds ProgressFactor × the previous one, the
	// penalty ρ is enlarged and the sub-problem re-solved (warm-
	// started) before the multiplier update. 0.25 is the published
	// NOTEARS value.
	ProgressFactor float64
	// Cancelled, when non-nil, is polled between inner solves; once it
	// returns true the loop exits immediately without marking the run
	// converged and without further ρ escalations. The learners wire a
	// context.Context check here so a serving cancellation never has to
	// wait out the remaining dual-ascent schedule.
	Cancelled func() bool
}

// DefaultAugLag returns the paper's outer-loop configuration.
func DefaultAugLag() AugLagConfig {
	return AugLagConfig{RhoInit: 1, EtaInit: 0, RhoGrowth: 10, RhoMax: 1e16, Epsilon: 1e-8, MaxOuter: 100, ProgressFactor: 0.25}
}

// InnerSolver minimizes ℓ(W) = L + ρ/2·δ² + η·δ for fixed (ρ, η) and
// returns the final constraint value δ(W*).
type InnerSolver func(rho, eta float64) (delta float64)

// AugLagState reports the trajectory of one augmented-Lagrangian run.
type AugLagState struct {
	Outer      int       // outer (multiplier-update) iterations executed
	Solves     int       // inner solves, counting ρ-escalation re-solves
	Delta      float64   // final constraint value
	DeltaTrace []float64 // constraint value after each inner solve
	Converged  bool      // Delta ≤ Epsilon
	FinalRho   float64
	FinalEta   float64
}

// RunAugLag executes the dual-ascent outer loop shared by LEAST (Fig 3)
// and the NOTEARS baseline: solve the penalized sub-problem, escalate ρ
// (re-solving warm-started) until the constraint value drops by the
// sufficient-decrease factor, then update the multiplier
// η ← η + ρ·δ. Stops when δ ≤ ε, ρ saturates without progress, or
// MaxOuter multiplier updates have run. An optional stop callback can
// terminate early (the §V-A experiments stop on the *exact* h(W) to
// make LEAST/NOTEARS termination comparable).
func RunAugLag(cfg AugLagConfig, inner InnerSolver, stop func(delta float64) bool) AugLagState {
	rho, eta := cfg.RhoInit, cfg.EtaInit
	pf := cfg.ProgressFactor
	if pf <= 0 || pf >= 1 {
		pf = 0.25
	}
	st := AugLagState{Delta: math.Inf(1)}
	prev := math.Inf(1)
	cancelled := func() bool { return cfg.Cancelled != nil && cfg.Cancelled() }
	for st.Outer = 1; st.Outer <= cfg.MaxOuter; st.Outer++ {
		delta := inner(rho, eta)
		st.Solves++
		st.DeltaTrace = append(st.DeltaTrace, delta)
		// Escalate ρ until sufficient decrease (warm-started re-solves).
		for delta > pf*prev && rho < cfg.RhoMax && !cancelled() {
			rho *= cfg.RhoGrowth
			delta = inner(rho, eta)
			st.Solves++
			st.DeltaTrace = append(st.DeltaTrace, delta)
		}
		st.Delta = delta
		prev = delta
		if cancelled() {
			break
		}
		if delta <= cfg.Epsilon || (stop != nil && stop(delta)) {
			st.Converged = true
			break
		}
		if rho >= cfg.RhoMax {
			break // saturated: no further progress possible
		}
		eta += rho * delta
	}
	st.FinalRho, st.FinalEta = rho, eta
	return st
}

// ClipGrad rescales grad in place so its max-abs entry is at most clip
// (a stability guard for the early iterations when ρ·δ·∇δ can spike);
// it returns the scaling factor applied (1 means untouched).
func ClipGrad(grad []float64, clip float64) float64 {
	if clip <= 0 {
		return 1
	}
	var mx float64
	for _, g := range grad {
		if a := math.Abs(g); a > mx {
			mx = a
		}
	}
	if mx <= clip || mx == 0 {
		return 1
	}
	f := clip / mx
	for i := range grad {
		grad[i] *= f
	}
	return f
}

// DiagonalIndices returns the flat indices of the diagonal of a d×d
// row-major matrix; the dense learner pins these to zero each step.
func DiagonalIndices(d int) []int {
	idx := make([]int, d)
	for i := 0; i < d; i++ {
		idx[i] = i*d + i
	}
	return idx
}

// PinZero writes zeros at the given flat indices of m's data.
func PinZero(m *mat.Dense, idx []int) {
	data := m.Data()
	for _, i := range idx {
		data[i] = 0
	}
}
