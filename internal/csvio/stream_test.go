package csvio

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/loss"
	"repro/internal/mat"
)

func ingestAll(t *testing.T, workers int, shards []string, jsonl, header bool) (*loss.SuffStats, []string, string) {
	t.Helper()
	in := NewStatsIngest(workers)
	for _, doc := range shards {
		var err error
		if jsonl {
			err = in.JSONL(strings.NewReader(doc))
		} else {
			err = in.CSV(strings.NewReader(doc), header)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	st, names, err := in.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return st, names, in.Fingerprint(names)
}

// fmtF round-trips a float exactly through its decimal form.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// chainDoc builds a deterministic CSV body plus the equivalent matrix.
func chainDoc(n int, header bool) (string, *mat.Dense, []string) {
	var sb strings.Builder
	if header {
		sb.WriteString("a,b,c\n")
	}
	x := mat.NewDense(n, 3)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		row[0] = float64(i)*0.25 - 11
		row[1] = float64(i%7) - 3.5
		row[2] = float64((i*i)%13) * 0.125
		sb.WriteString(fmtF(row[0]) + "," + fmtF(row[1]) + "," + fmtF(row[2]) + "\n")
	}
	return sb.String(), x, []string{"a", "b", "c"}
}

// TestStreamMatchesMatrix: the streaming ingest of a CSV document
// produces bit-identical statistics and the same fingerprint as the
// in-memory matrix holding the same rows (for a fixed worker count) —
// the property that lets inline and streamed submissions of the same
// data share a serving cache entry.
func TestStreamMatchesMatrix(t *testing.T) {
	doc, x, names := chainDoc(700, true)
	for _, workers := range []int{1, 3} {
		st, gotNames, fp := ingestAll(t, workers, []string{doc}, false, true)
		if len(gotNames) != 3 || gotNames[0] != "a" || gotNames[2] != "c" {
			t.Fatalf("names = %v", gotNames)
		}
		want := loss.StatsOf(x, workers)
		if st.N != want.N || st.D() != want.D() {
			t.Fatalf("shape (%d,%d), want (%d,%d)", st.N, st.D(), want.N, want.D())
		}
		for i, v := range st.Gram.Data() {
			if v != want.Gram.Data()[i] {
				t.Fatalf("workers=%d: gram[%d] = %g, want %g (bit-exact)", workers, i, v, want.Gram.Data()[i])
			}
		}
		for j, v := range st.ColSums {
			if v != want.ColSums[j] {
				t.Fatalf("workers=%d: colsum[%d] = %g, want %g", workers, j, v, want.ColSums[j])
			}
		}
		if wantFP := FingerprintMatrix(x, names); fp != wantFP {
			t.Fatalf("stream fingerprint %s != matrix fingerprint %s", fp, wantFP)
		}
	}
}

// TestStreamShardsEqualWhole: splitting a document into shards (each
// repeating the header) ingests identically to the whole.
func TestStreamShardsEqualWhole(t *testing.T) {
	doc, _, _ := chainDoc(530, true)
	lines := strings.SplitAfter(doc, "\n")
	head := lines[0]
	body := lines[1 : len(lines)-1] // last element is the empty tail
	cut1, cut2 := 100, 400
	shards := []string{
		head + strings.Join(body[:cut1], ""),
		head + strings.Join(body[cut1:cut2], ""),
		head + strings.Join(body[cut2:], ""),
	}
	stWhole, _, fpWhole := ingestAll(t, 2, []string{doc}, false, true)
	stShards, names, fpShards := ingestAll(t, 2, shards, false, true)
	if fpWhole != fpShards {
		t.Fatalf("shard fingerprint %s != whole fingerprint %s", fpShards, fpWhole)
	}
	if stWhole.N != stShards.N || len(names) != 3 {
		t.Fatalf("n=%d names=%v", stShards.N, names)
	}
	for i, v := range stWhole.Gram.Data() {
		if v != stShards.Gram.Data()[i] {
			t.Fatalf("gram[%d] differs between whole and shards", i)
		}
	}

	// A shard whose header disagrees is rejected.
	in := NewStatsIngest(1)
	if err := in.CSV(strings.NewReader(head+body[0]), true); err != nil {
		t.Fatal(err)
	}
	if err := in.CSV(strings.NewReader("a,b,zzz\n1,2,3\n"), true); err == nil ||
		!strings.Contains(err.Error(), "header") {
		t.Fatalf("mismatched shard header: err = %v", err)
	}
}

// TestStreamCRLFAndBlankLines: CRLF endings and blank (including
// trailing) lines parse as if absent, and do not change the
// fingerprint.
func TestStreamCRLFAndBlankLines(t *testing.T) {
	plain := "a,b\n1,2\n3,4\n"
	crlf := "a,b\r\n1,2\r\n3,4\r\n\r\n\r\n"
	stPlain, _, fpPlain := ingestAll(t, 1, []string{plain}, false, true)
	stCRLF, _, fpCRLF := ingestAll(t, 1, []string{crlf}, false, true)
	if fpPlain != fpCRLF {
		t.Fatal("CRLF/blank-line document fingerprints differently")
	}
	if stPlain.N != 2 || stCRLF.N != 2 {
		t.Fatalf("n = %d / %d, want 2", stPlain.N, stCRLF.N)
	}

	jl := "[1, 2]\r\n[3, 4]\r\n\r\n   \r\n"
	stJL, _, _ := ingestAll(t, 1, []string{jl}, true, false)
	if stJL.N != 2 || stJL.Gram.At(0, 0) != stPlain.Gram.At(0, 0) {
		t.Fatalf("JSONL CRLF parse: n=%d gram00=%g", stJL.N, stJL.Gram.At(0, 0))
	}
}

// TestStreamJSONLMatchesCSV: the same rows ingested from JSONL and
// headerless CSV produce identical statistics and fingerprints.
func TestStreamJSONLMatchesCSV(t *testing.T) {
	doc, x, _ := chainDoc(300, false)
	var jl strings.Builder
	for i := 0; i < x.Rows(); i++ {
		row := x.Row(i)
		jl.WriteString("[" + fmtF(row[0]) + "," + fmtF(row[1]) + "," + fmtF(row[2]) + "]\n")
	}
	stCSV, _, fpCSV := ingestAll(t, 2, []string{doc}, false, false)
	stJL, names, fpJL := ingestAll(t, 2, []string{jl.String()}, true, false)
	if names != nil {
		t.Fatalf("JSONL names = %v, want nil", names)
	}
	if fpCSV != fpJL {
		t.Fatal("JSONL fingerprint differs from CSV of the same rows")
	}
	for i, v := range stCSV.Gram.Data() {
		if v != stJL.Gram.Data()[i] {
			t.Fatalf("gram[%d] differs between CSV and JSONL", i)
		}
	}
}

// TestStreamRejects: ragged rows, non-numeric fields, malformed JSONL
// and empty inputs all fail loudly.
func TestStreamRejects(t *testing.T) {
	cases := []struct {
		name, doc string
		jsonl     bool
		header    bool
		frag      string
	}{
		{"ragged csv", "1,2\n3\n", false, false, "record"},
		{"ragged csv header", "a,b\n1,2\n3,4,5\n", false, true, "record"},
		{"non-numeric", "1,x\n", false, false, "col 2"},
		{"ragged jsonl", "[1,2]\n[3]\n", true, false, "want 2"},
		{"non-numeric jsonl", "[1,\"x\"]\n", true, false, "row 1"},
		{"jsonl object", "{\"a\": 1}\n", true, false, "row 1"},
	}
	for _, c := range cases {
		in := NewStatsIngest(1)
		var err error
		if c.jsonl {
			err = in.JSONL(strings.NewReader(c.doc))
		} else {
			err = in.CSV(strings.NewReader(c.doc), c.header)
		}
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}

	// No data rows at all → Finish fails.
	for _, doc := range []string{"", "a,b\n"} {
		in := NewStatsIngest(1)
		if err := in.CSV(strings.NewReader(doc), true); err != nil {
			t.Fatal(err)
		}
		if _, _, err := in.Finish(); err == nil {
			t.Errorf("empty document %q: Finish did not fail", doc)
		}
	}
}

// TestFingerprintSensitivity: shape, values, order and names all feed
// the fingerprint.
func TestFingerprintSensitivity(t *testing.T) {
	base := FingerprintMatrix(mat.NewDenseData(2, 2, []float64{1, 2, 3, 4}), []string{"a", "b"})
	cases := map[string]string{
		"value":   FingerprintMatrix(mat.NewDenseData(2, 2, []float64{1, 2, 3, 5}), []string{"a", "b"}),
		"order":   FingerprintMatrix(mat.NewDenseData(2, 2, []float64{3, 4, 1, 2}), []string{"a", "b"}),
		"shape":   FingerprintMatrix(mat.NewDenseData(4, 1, []float64{1, 2, 3, 4}), []string{"a"}),
		"names":   FingerprintMatrix(mat.NewDenseData(2, 2, []float64{1, 2, 3, 4}), []string{"a", "c"}),
		"noNames": FingerprintMatrix(mat.NewDenseData(2, 2, []float64{1, 2, 3, 4}), nil),
	}
	for what, fp := range cases {
		if fp == base {
			t.Errorf("fingerprint insensitive to %s", what)
		}
	}
	again := FingerprintMatrix(mat.NewDenseData(2, 2, []float64{1, 2, 3, 4}), []string{"a", "b"})
	if again != base {
		t.Error("fingerprint not deterministic")
	}
}
