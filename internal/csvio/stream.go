package csvio

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/loss"
	"repro/internal/mat"
)

// RowStream parses CSV or JSONL shards into a single logical row
// sequence without retaining the rows: each data row is handed to a
// callback through a transient slice that the caller must copy if it
// wants to keep it. Shape and names are enforced across shards — every
// shard must carry the same width, and (for CSV with a header) the
// same header — so a sharded dataset cannot silently mix schemas.
type RowStream struct {
	d     int // -1 until the first row fixes the width
	names []string
	rows  int
}

// NewRowStream returns an empty stream ready to consume shards.
func NewRowStream() *RowStream { return &RowStream{d: -1} }

// D returns the row width (-1 before the first row).
func (s *RowStream) D() int { return s.d }

// Names returns the CSV header names, or nil when no shard carried a
// header.
func (s *RowStream) Names() []string { return s.names }

// Rows returns the number of data rows emitted so far.
func (s *RowStream) Rows() int { return s.rows }

func (s *RowStream) emitWidth(n int) error {
	if s.d < 0 {
		s.d = n
		return nil
	}
	if n != s.d {
		return fmt.Errorf("row has %d values, want %d", n, s.d)
	}
	return nil
}

// CSV consumes one CSV shard. With header set, the shard's first
// record names the columns; the first shard's header is authoritative
// and later shards must repeat it verbatim. Blank lines (including a
// trailing one) are skipped and CRLF line endings are handled by the
// CSV reader; ragged rows are rejected.
func (s *RowStream) CSV(r io.Reader, header bool, emit func(row []float64) error) error {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	first := true
	var buf []float64
	rowInShard := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if first && header {
			first = false
			if s.names == nil && s.rows == 0 {
				s.names = make([]string, len(rec))
				copy(s.names, rec)
			} else if s.names != nil {
				if len(rec) != len(s.names) {
					return fmt.Errorf("shard header has %d columns, want %d", len(rec), len(s.names))
				}
				for j, name := range rec {
					if name != s.names[j] {
						return fmt.Errorf("shard header column %d is %q, want %q", j+1, name, s.names[j])
					}
				}
			}
			continue
		}
		first = false
		rowInShard++
		if err := s.emitWidth(len(rec)); err != nil {
			return fmt.Errorf("row %d: %v", rowInShard, err)
		}
		if cap(buf) < len(rec) {
			buf = make([]float64, len(rec))
		}
		buf = buf[:len(rec)]
		for j, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return fmt.Errorf("row %d col %d: %v", rowInShard, j+1, err)
			}
			buf[j] = v
		}
		s.rows++
		if err := emit(buf); err != nil {
			return err
		}
	}
}

// maxJSONLLine bounds one JSONL record (16 MiB ≈ 600k float fields —
// far past any dense-feasible width).
const maxJSONLLine = 16 << 20

// JSONL consumes one JSONL shard: each non-blank line is a JSON array
// of numbers forming one row. Blank lines (and a trailing newline, CR
// or not) are skipped; a line of the wrong width or non-numeric JSON
// is rejected.
func (s *RowStream) JSONL(r io.Reader, emit func(row []float64) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxJSONLLine)
	rowInShard := 0
	var buf []float64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		rowInShard++
		buf = buf[:0]
		if err := json.Unmarshal([]byte(line), &buf); err != nil {
			return fmt.Errorf("row %d: %v", rowInShard, err)
		}
		if err := s.emitWidth(len(buf)); err != nil {
			return fmt.Errorf("row %d: %v", rowInShard, err)
		}
		s.rows++
		if err := emit(buf); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Fingerprinter computes the content fingerprint of a dataset
// incrementally, row by row, so a streaming ingest can fingerprint
// data it never materializes. The digest covers the exact float bits
// of every row in order, the shape, and the column names — the same
// identity the serving result cache used to hash from an in-memory
// matrix — so a matrix and a stream of the same values fingerprint
// identically however they arrived (DESIGN.md §6).
type Fingerprinter struct {
	h   hash.Hash
	buf []byte
}

// NewFingerprinter starts a fingerprint.
func NewFingerprinter() *Fingerprinter {
	f := &Fingerprinter{h: sha256.New(), buf: make([]byte, 0, 1024*8)}
	f.h.Write([]byte("least/dataset/v1\x00"))
	return f
}

// Row folds one row's float bits into the digest.
func (f *Fingerprinter) Row(row []float64) {
	for _, v := range row {
		f.buf = binary.LittleEndian.AppendUint64(f.buf, math.Float64bits(v))
		if len(f.buf) == cap(f.buf) {
			f.h.Write(f.buf)
			f.buf = f.buf[:0]
		}
	}
}

// Sum finalizes the digest over the shape and names and returns the
// hex fingerprint.
func (f *Fingerprinter) Sum(n, d int, names []string) string {
	f.h.Write(f.buf)
	f.buf = f.buf[:0]
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(n))
	f.h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(d))
	f.h.Write(b[:])
	for _, name := range names {
		f.h.Write([]byte(name))
		f.h.Write([]byte{0})
	}
	return hex.EncodeToString(f.h.Sum(nil))
}

// FingerprintMatrix fingerprints an in-memory matrix — the value a
// StatsIngest over the same rows and names would produce.
func FingerprintMatrix(x *mat.Dense, names []string) string {
	f := NewFingerprinter()
	for i := 0; i < x.Rows(); i++ {
		f.Row(x.Row(i))
	}
	return f.Sum(x.Rows(), x.Cols(), names)
}

// StatsIngest is the one-pass bounded-memory dataset reader: rows from
// any mix of CSV and JSONL shards are fingerprinted in order and folded
// into a parallel Gram accumulator (loss.GramAccumulator), chunked at
// loss.GramChunkRows. Nothing proportional to n is ever held — this is
// what lets Spec.LearnDataset run a million-row CSV in O(d²) memory.
type StatsIngest struct {
	rs      *RowStream
	fp      *Fingerprinter
	workers int
	acc     *loss.GramAccumulator
	chunk   *mat.Dense
	fill    int
}

// NewStatsIngest returns an ingest whose Gram accumulation fans out
// across at most workers goroutines (<= 0: all cores).
func NewStatsIngest(workers int) *StatsIngest {
	return &StatsIngest{rs: NewRowStream(), fp: NewFingerprinter(), workers: workers}
}

func (in *StatsIngest) emit(row []float64) error {
	in.fp.Row(row)
	if in.acc == nil {
		in.acc = loss.NewGramAccumulator(len(row), in.workers)
	}
	if in.chunk == nil {
		in.chunk = mat.NewDense(loss.GramChunkRows, len(row))
		in.fill = 0
	}
	copy(in.chunk.Row(in.fill), row)
	in.fill++
	if in.fill == in.chunk.Rows() {
		in.acc.Add(in.chunk)
		in.chunk = nil
	}
	return nil
}

// CSV folds one CSV shard into the ingest.
func (in *StatsIngest) CSV(r io.Reader, header bool) error {
	return in.rs.CSV(r, header, in.emit)
}

// JSONL folds one JSONL shard into the ingest.
func (in *StatsIngest) JSONL(r io.Reader) error {
	return in.rs.JSONL(r, in.emit)
}

// Finish reduces the pass into sufficient statistics and returns them
// with the header names (nil without a header). Call Fingerprint
// afterwards, once the effective names are decided.
func (in *StatsIngest) Finish() (*loss.SuffStats, []string, error) {
	if in.rs.Rows() == 0 {
		return nil, nil, errors.New("no data rows")
	}
	if in.chunk != nil {
		in.acc.Add(in.chunk.Slice(0, in.fill))
		in.chunk = nil
	}
	return in.acc.Finish(), in.rs.Names(), nil
}

// Fingerprint finalizes the content fingerprint under the given
// effective column names (callers may override the header). It must be
// called exactly once, after Finish.
func (in *StatsIngest) Fingerprint(names []string) string {
	return in.fp.Sum(in.rs.Rows(), in.rs.D(), names)
}

// Abort tears the pipeline down without a result — callers must
// invoke it when a shard fails mid-ingest, or the accumulator's worker
// goroutines leak. Safe to call at any point, including before the
// first row and after Finish.
func (in *StatsIngest) Abort() {
	if in.acc != nil {
		in.acc.Abort()
	}
}
