// Package csvio reads sample matrices from CSV — the one parser
// shared by every surface that accepts CSV input (cmd/leastcli, the
// leastd serving API), so the header/name handling and validation
// cannot drift between them.
package csvio

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/mat"
)

// ReadMatrix parses a CSV document with one column per variable and
// one row per observation. With header set, the first row names the
// variables and is returned as names; otherwise names is nil and the
// caller chooses its own labels. Every row must have the same width
// and every field must parse as a float.
func ReadMatrix(r io.Reader, header bool) (*mat.Dense, []string, error) {
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(rows) == 0 {
		return nil, nil, errors.New("empty CSV document")
	}
	var names []string
	if header {
		names = rows[0]
		rows = rows[1:]
	}
	if len(rows) == 0 {
		return nil, nil, errors.New("no data rows")
	}
	// csv.Reader (default FieldsPerRecord) already rejects ragged rows
	// in ReadAll, so every row here has the same width.
	d := len(rows[0])
	x := mat.NewDense(len(rows), d)
	for i, row := range rows {
		for j, s := range row {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("row %d col %d: %v", i+1, j+1, err)
			}
			x.Set(i, j, v)
		}
	}
	return x, names, nil
}
