package csvio

import (
	"strings"
	"testing"
)

func TestReadMatrixWithHeader(t *testing.T) {
	x, names, err := ReadMatrix(strings.NewReader("a,b\n1,2\n3.5,-4\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if x.Rows() != 2 || x.Cols() != 2 || x.At(1, 0) != 3.5 || x.At(1, 1) != -4 {
		t.Fatalf("matrix = %v", x)
	}
}

func TestReadMatrixNoHeader(t *testing.T) {
	x, names, err := ReadMatrix(strings.NewReader("1,2\n3,4\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if names != nil {
		t.Fatalf("names should be nil without header, got %v", names)
	}
	if x.Rows() != 2 || x.At(0, 1) != 2 {
		t.Fatalf("matrix = %v", x)
	}
}

func TestReadMatrixErrors(t *testing.T) {
	cases := []struct {
		name, doc string
		header    bool
	}{
		{"empty", "", false},
		{"header only", "a,b\n", true},
		{"ragged", "1,2\n3\n", false},
		{"non-numeric", "1,x\n", false},
	}
	for _, c := range cases {
		if _, _, err := ReadMatrix(strings.NewReader(c.doc), c.header); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}
