package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro"
)

// erSubmissionV2 mirrors erSubmission over the v2 wire form.
func erSubmissionV2(seed int64, specJSON string) map[string]any {
	truth := least.GenerateDAG(seed, least.ErdosRenyi, 15, 2)
	x := least.SampleLSEM(seed+1, truth, 150, least.GaussianNoise)
	rows := make([][]float64, x.Rows())
	for i := range rows {
		rows[i] = append([]float64(nil), x.Row(i)...)
	}
	req := map[string]any{"samples": rows}
	if specJSON != "" {
		req["spec"] = json.RawMessage(specJSON)
	}
	return req
}

func TestHTTPV2SubmitWithMethod(t *testing.T) {
	srv, _ := newTestServer(t)
	base := srv.URL

	// notears via the v2 method field on a small problem.
	code, b := doJSON(t, http.MethodPost, base+"/v2/jobs",
		erSubmissionV2(61, `{"method": "notears", "lambda": 0.2, "epsilon": 0.01, "max_outer": 6, "seed": 5}`))
	if code != http.StatusAccepted {
		t.Fatalf("v2 submit: HTTP %d\n%s", code, b)
	}
	var st StatusV2
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("v2 status decode: %v\n%s", err, b)
	}
	if st.Method != least.MethodNOTEARS {
		t.Fatalf("v2 status method = %q, want notears", st.Method)
	}
	fin := pollUntil(t, base, st.ID, Done, 60*time.Second)
	if fin.InnerIters == 0 {
		t.Fatalf("baseline job reported no progress: %+v", fin)
	}

	// The v2 status view carries the method; the graph endpoint works
	// for the baseline's dense weights.
	code, b = doJSON(t, http.MethodGet, base+"/v2/jobs/"+st.ID, nil)
	if code != http.StatusOK || !bytes.Contains(b, []byte(`"method": "notears"`)) {
		t.Fatalf("v2 status: HTTP %d\n%s", code, b)
	}
	code, b = doJSON(t, http.MethodGet, base+"/v2/jobs/"+st.ID+"/graph?tau=0.3", nil)
	if code != http.StatusOK {
		t.Fatalf("v2 graph: HTTP %d\n%s", code, b)
	}
	var g wireGraph
	if err := json.Unmarshal(b, &g); err != nil || len(g.Nodes) != 15 {
		t.Fatalf("v2 graph decode: %v\n%s", err, b)
	}

	// v2 list carries methods too.
	code, b = doJSON(t, http.MethodGet, base+"/v2/jobs", nil)
	if code != http.StatusOK || !bytes.Contains(b, []byte(`"method"`)) {
		t.Fatalf("v2 list: HTTP %d\n%s", code, b)
	}
}

func TestHTTPV2SpecValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	base := srv.URL
	cases := []struct {
		name string
		spec string
		frag string
	}{
		{"unknown method", `{"method": "dagma"}`, "unknown method"},
		{"negative lambda", `{"lambda": -1}`, "lambda"},
		{"alpha out of range", `{"alpha": 1.5}`, "alpha"},
		{"density out of range", `{"init_density": 0}`, "init_density"},
		{"unknown field", `{"sparse": true}`, "sparse"},
		{"inapplicable knob", `{"method": "notears", "k": 5}`, "does not apply"},
		{"sink index beyond d", `{"sink_nodes": [99]}`, "out of range for 15 variables"},
	}
	for _, c := range cases {
		code, b := doJSON(t, http.MethodPost, base+"/v2/jobs", erSubmissionV2(62, c.spec))
		if code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400\n%s", c.name, code, b)
			continue
		}
		if !bytes.Contains(b, []byte(c.frag)) {
			t.Errorf("%s: error %s does not mention %q", c.name, b, c.frag)
		}
	}

	// Unknown keys at the request's top level are rejected too: a v1
	// client posting its legacy "options" envelope to /v2/jobs must
	// get a 400, not an accidental all-defaults learn.
	req := erSubmissionV2(62, "")
	req["options"] = json.RawMessage(`{"lambda": 0.5}`)
	code, b := doJSON(t, http.MethodPost, base+"/v2/jobs", req)
	if code != http.StatusBadRequest || !bytes.Contains(b, []byte("options")) {
		t.Errorf("legacy options envelope on v2: HTTP %d, want 400 naming the field\n%s", code, b)
	}
}

func TestHTTPV2CacheSharedWithV1(t *testing.T) {
	srv, _ := newTestServer(t)
	base := srv.URL

	// v1 submission…
	code, b := doJSON(t, http.MethodPost, base+"/v1/jobs", erSubmission(63))
	if code != http.StatusAccepted {
		t.Fatalf("v1 submit: HTTP %d\n%s", code, b)
	}
	st := decodeStatus(t, b)
	pollUntil(t, base, st.ID, Done, 60*time.Second)

	// …answered from the cache when resubmitted through v2 with a
	// *partial* spec that merely resolves to the same configuration:
	// the cache fingerprints the defaults-resolved canonical form, so
	// the v2 client does not have to spell out every default.
	v2 := erSubmissionV2(63, `{"lambda": 0.2, "epsilon": 0.001, "seed": 5}`)
	code, b = doJSON(t, http.MethodPost, base+"/v2/jobs", v2)
	if code != http.StatusOK {
		t.Fatalf("v2 resubmit: HTTP %d, want 200 (cache hit)\n%s", code, b)
	}
	var st2 StatusV2
	if err := json.Unmarshal(b, &st2); err != nil || !st2.Cached {
		t.Fatalf("v2 resubmission should be a cache hit: %v\n%s", err, b)
	}
}

// sseEvent is one parsed text/event-stream frame.
type sseEvent struct {
	name string
	id   string
	data string
}

// readSSE parses frames until the stream closes or limit is reached.
func readSSE(t *testing.T, r *bufio.Reader, limit int) []sseEvent {
	t.Helper()
	var events []sseEvent
	cur := sseEvent{}
	for len(events) < limit {
		line, err := r.ReadString('\n')
		if err != nil {
			break
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if cur.name != "" || cur.data != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return events
}

// TestHTTPV2EventsStreamsProgress is the acceptance test of the SSE
// surface: at least one progress event arrives before the terminal
// event, each data payload is a v2 status, and the stream closes after
// the terminal frame. The subscriber attaches while the job is still
// queued behind a blocked pool, so it deterministically observes the
// whole queued → running → done life even for a fast learn.
func TestHTTPV2EventsStreamsProgress(t *testing.T) {
	srv, m := newTestServer(t)
	base := srv.URL

	xs, os := slowDataset(71)
	blocker, err := m.Submit(xs, nil, os)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, Running, 10*time.Second)

	code, b := doJSON(t, http.MethodPost, base+"/v2/jobs",
		erSubmissionV2(72, `{"lambda": 0.2, "epsilon": 0.001, "parallelism": 1, "seed": 5}`))
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d\n%s", code, b)
	}
	var st StatusV2
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(base + "/v2/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	r := bufio.NewReader(resp.Body)

	// The first frame is the immediate snapshot of the queued job.
	first := readSSE(t, r, 1)
	if len(first) != 1 || first[0].name != "progress" {
		t.Fatalf("first frame: %+v", first)
	}

	// Unblock the pool; the subscriber rides the job to completion.
	if _, err := m.Cancel(blocker.ID()); err != nil {
		t.Fatal(err)
	}
	events := append(first, readSSE(t, r, 10_000)...)
	if len(events) < 2 {
		t.Fatalf("got %d events, want at least a progress and a terminal one:\n%+v", len(events), events)
	}
	last := events[len(events)-1]
	if last.name != string(Done) {
		t.Fatalf("terminal event = %q, want %q (events: %d)", last.name, Done, len(events))
	}
	running := 0
	for _, ev := range events[:len(events)-1] {
		if ev.name != "progress" {
			t.Fatalf("non-terminal event named %q", ev.name)
		}
		var payload StatusV2
		if err := json.Unmarshal([]byte(ev.data), &payload); err != nil {
			t.Fatalf("event payload: %v\n%s", err, ev.data)
		}
		if payload.ID != st.ID || payload.Method != least.MethodLEAST {
			t.Fatalf("payload mismatch: %+v", payload)
		}
		if payload.State == Running && payload.InnerIters > 0 {
			running++
		}
	}
	if running < 1 {
		t.Fatal("no iterating progress event before completion")
	}
	var final StatusV2
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != Done || final.InnerIters == 0 {
		t.Fatalf("terminal payload: %+v", final)
	}

	// A fresh subscriber on the finished job gets exactly the terminal
	// snapshot and EOF.
	resp2, err := http.Get(base + "/v2/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	events2 := readSSE(t, bufio.NewReader(resp2.Body), 10)
	if len(events2) != 1 || events2[0].name != string(Done) {
		t.Fatalf("late subscriber events: %+v", events2)
	}

	// Unknown job: 404.
	if code, _ := doJSON(t, http.MethodGet, base+"/v2/jobs/nope/events", nil); code != http.StatusNotFound {
		t.Fatalf("events of unknown job: HTTP %d, want 404", code)
	}
}

// TestHTTPV2EventsObservesCancellation: a subscriber watching a job
// that gets cancelled receives the cancelled terminal event.
func TestHTTPV2EventsObservesCancellation(t *testing.T) {
	srv, _ := newTestServer(t)
	base := srv.URL

	truth := least.GenerateDAG(81, least.ErdosRenyi, 100, 2)
	x := least.SampleLSEM(82, truth, 250, least.GaussianNoise)
	rows := make([][]float64, x.Rows())
	for i := range rows {
		rows[i] = append([]float64(nil), x.Row(i)...)
	}
	code, b := doJSON(t, http.MethodPost, base+"/v2/jobs", map[string]any{
		"samples": rows,
		"spec":    json.RawMessage(`{"lambda": 0.01, "epsilon": 1e-12, "max_outer": 64, "max_inner": 2000}`),
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d\n%s", code, b)
	}
	var st StatusV2
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(base + "/v2/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)

	// Wait until the job iterates, then cancel through the v2 route.
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, b = doJSON(t, http.MethodGet, base+"/v2/jobs/"+st.ID, nil)
		if code != http.StatusOK {
			t.Fatalf("poll: HTTP %d", code)
		}
		var cur StatusV2
		if err := json.Unmarshal(b, &cur); err != nil {
			t.Fatal(err)
		}
		if cur.State == Running && cur.InnerIters > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started iterating")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, b = doJSON(t, http.MethodDelete, base+"/v2/jobs/"+st.ID, nil); code != http.StatusOK {
		t.Fatalf("v2 cancel: HTTP %d\n%s", code, b)
	}

	events := readSSE(t, r, 10_000)
	if len(events) == 0 {
		t.Fatal("no events before cancellation")
	}
	last := events[len(events)-1]
	if last.name != string(Cancelled) {
		t.Fatalf("terminal event = %q, want %q", last.name, Cancelled)
	}
	var final StatusV2
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != Cancelled || final.Error == "" {
		t.Fatalf("terminal payload: %+v", final)
	}
}
