package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"repro"
)

// resultCache is a fixed-capacity LRU over finished learn results,
// keyed by CacheKey. The §VI deployment learns the same structure for
// the same monitoring window many times a day (dashboards re-request,
// retries resubmit); serving those from memory costs a hash instead of
// minutes of optimization. Entries are immutable once inserted —
// readers share the *least.Result pointer and must not mutate it.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	// onEvict, when set, observes every LRU eviction (under c.mu; keep
	// it cheap and lock-free) — the journal's cache_evict record hook.
	onEvict func(key string)

	hits, misses int
}

type cacheEntry struct {
	key string
	res *least.Result
}

// newResultCache returns a cache holding at most capacity results;
// capacity <= 0 disables caching (every lookup misses).
func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) (*least.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) put(key string, res *least.Result) {
	if c.cap <= 0 || res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		k := oldest.Value.(*cacheEntry).key
		delete(c.items, k)
		if c.onEvict != nil {
			c.onEvict(k)
		}
	}
}

// peek resolves a key without touching the LRU order or the hit/miss
// accounting — recovery consults the rebuilt cache without polluting
// the fresh process's counters.
func (c *resultCache) peek(key string) (*least.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*cacheEntry).res, true
	}
	return nil, false
}

// remove deletes an entry without treating it as an eviction (recovery
// replaying a journaled cache_evict record).
func (c *resultCache) remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}

// entries snapshots the cache oldest-first, so replaying the snapshot
// with put() reproduces the LRU order exactly.
func (c *resultCache) entries() []cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cacheEntry, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		out = append(out, cacheEntry{key: e.key, res: e.res})
	}
	return out
}

// stats returns (hits, misses, size).
func (c *resultCache) stats() (int, int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// CacheKey fingerprints a legacy-Options submission.
//
// Deprecated: use CacheKeySpec. CacheKey converts through
// least.Options.Spec, so a v1 submission and its Spec equivalent land
// on the same cache entry.
func CacheKey(x *least.Matrix, names []string, o least.Options) string {
	key, err := CacheKeySpec(x, names, o.Spec())
	if err != nil {
		// A legacy-converted Spec always marshals; keep the historical
		// non-erroring signature.
		panic(err)
	}
	return key
}

// CacheKeySpec fingerprints an uncentered inline submission — a thin
// wrapper over CacheKeyDataset(FromMatrix(x, names), false, spec).
func CacheKeySpec(x *least.Matrix, names []string, spec *least.Spec) (string, error) {
	return CacheKeyDataset(least.FromMatrix(x, names), false, spec)
}

// CacheKeyDataset fingerprints a submission: the dataset's content
// fingerprint (shape, exact float bits, names — identical however the
// data arrived, inline or by reference), the centering flag, the
// execution path the spec takes over this dataset (row-backed and
// statistics-backed learns agree only to floating-point tolerance, so
// they must not share entries), and the canonical JSON of the Spec
// (one key per explicitly-set field — progress callbacks and other
// runtime state never reach the key). Two submissions collide only
// when they would provably produce the same result (learning is
// deterministic given data + spec + seed + path), which is what makes
// result reuse safe — and keying on the dataset fingerprint instead
// of re-hashing raw sample bits is what lets a v1 inline, a v2 inline
// and a dataset_ref submission of the same data share one entry: all
// three are matrix-backed and take the row path (DESIGN.md §6).
func CacheKeyDataset(ds least.Dataset, center bool, spec *least.Spec) (string, error) {
	h := sha256.New()
	h.Write([]byte(ds.Fingerprint()))
	flags := []byte{0, 0}
	if center {
		flags[1] |= 1
	}
	if spec.LearnsFromRows(ds) {
		flags[1] |= 2
	}
	h.Write(flags)
	// Fingerprint the defaults-resolved canonical form, not the raw
	// set-marker form: {"lambda": 0.1} and {} configure the same learn
	// (λ's default is 0.1) and must land on the same entry, as must a
	// partial v2 spec and the fully-specified spec a v1 submission
	// maps to.
	sb, err := json.Marshal(spec.Canonical())
	if err != nil {
		return "", fmt.Errorf("serve: spec fingerprint: %w", err)
	}
	h.Write(sb)
	return hex.EncodeToString(h.Sum(nil)), nil
}
