package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"repro"
)

// resultCache is a fixed-capacity LRU over finished learn results,
// keyed by CacheKey. The §VI deployment learns the same structure for
// the same monitoring window many times a day (dashboards re-request,
// retries resubmit); serving those from memory costs a hash instead of
// minutes of optimization. Entries are immutable once inserted —
// readers share the *least.Result pointer and must not mutate it.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses int
}

type cacheEntry struct {
	key string
	res *least.Result
}

// newResultCache returns a cache holding at most capacity results;
// capacity <= 0 disables caching (every lookup misses).
func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) (*least.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) put(key string, res *least.Result) {
	if c.cap <= 0 || res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// stats returns (hits, misses, size).
func (c *resultCache) stats() (int, int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// CacheKey fingerprints a legacy-Options submission.
//
// Deprecated: use CacheKeySpec. CacheKey converts through
// least.Options.Spec, so a v1 submission and its Spec equivalent land
// on the same cache entry.
func CacheKey(x *least.Matrix, names []string, o least.Options) string {
	key, err := CacheKeySpec(x, names, o.Spec())
	if err != nil {
		// A legacy-converted Spec always marshals; keep the historical
		// non-erroring signature.
		panic(err)
	}
	return key
}

// CacheKeySpec fingerprints a submission: the exact float bits of the
// sample matrix, its shape, the node names, and the canonical JSON of
// the Spec (one key per explicitly-set field — progress callbacks and
// other runtime state never reach the key). Two submissions collide
// only when they would provably produce the same result (learning is
// deterministic given spec + seed), which is what makes result reuse
// safe.
func CacheKeySpec(x *least.Matrix, names []string, spec *least.Spec) (string, error) {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(x.Rows())
	writeInt(x.Cols())
	// Encode the float bits through a reused chunk buffer: per-call
	// hash.Write overhead would otherwise dominate sha256 throughput
	// on large matrices (this runs on the synchronous Submit path).
	const chunkFloats = 1024
	chunk := make([]byte, 0, chunkFloats*8)
	for _, v := range x.Data() {
		chunk = binary.LittleEndian.AppendUint64(chunk, math.Float64bits(v))
		if len(chunk) == cap(chunk) {
			h.Write(chunk)
			chunk = chunk[:0]
		}
	}
	h.Write(chunk)
	for _, name := range names {
		h.Write([]byte(name))
		h.Write([]byte{0})
	}
	// Fingerprint the defaults-resolved canonical form, not the raw
	// set-marker form: {"lambda": 0.1} and {} configure the same learn
	// (λ's default is 0.1) and must land on the same entry, as must a
	// partial v2 spec and the fully-specified spec a v1 submission
	// maps to.
	sb, err := json.Marshal(spec.Canonical())
	if err != nil {
		return "", fmt.Errorf("serve: spec fingerprint: %w", err)
	}
	h.Write(sb)
	return hex.EncodeToString(h.Sum(nil)), nil
}
