package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro"
)

// erData builds the deterministic sample rows used across the dataset
// tests.
func erData(seed int64) ([][]float64, []string) {
	truth := least.GenerateDAG(seed, least.ErdosRenyi, 15, 2)
	x := least.SampleLSEM(seed+1, truth, 150, least.GaussianNoise)
	rows := make([][]float64, x.Rows())
	for i := range rows {
		rows[i] = append([]float64(nil), x.Row(i)...)
	}
	names := make([]string, x.Cols())
	for j := range names {
		names[j] = fmt.Sprintf("v%d", j)
	}
	return rows, names
}

func decodeDatasetInfo(t *testing.T, b []byte) DatasetInfo {
	t.Helper()
	var info DatasetInfo
	if err := json.Unmarshal(b, &info); err != nil {
		t.Fatalf("dataset info decode: %v\n%s", err, b)
	}
	return info
}

// TestDatasetRegistry drives the full by-reference lifecycle over
// HTTP: register → dedupe → list/get → submit by ref → cache shared
// with inline → delete → 404.
func TestDatasetRegistry(t *testing.T) {
	srv, _ := newTestServer(t)
	base := srv.URL
	rows, names := erData(101)

	// Register.
	code, b := doJSON(t, http.MethodPost, base+"/v2/datasets", map[string]any{
		"samples": rows, "names": names,
	})
	if code != http.StatusCreated {
		t.Fatalf("register: HTTP %d\n%s", code, b)
	}
	info := decodeDatasetInfo(t, b)
	if info.ID == "" || info.Fingerprint == "" || info.N != 150 || info.D != 15 {
		t.Fatalf("register info: %+v", info)
	}

	// Re-registering the same bytes dedupes onto the same id (200, not
	// 201).
	code, b = doJSON(t, http.MethodPost, base+"/v2/datasets", map[string]any{
		"samples": rows, "names": names,
	})
	if code != http.StatusOK {
		t.Fatalf("re-register: HTTP %d\n%s", code, b)
	}
	if dup := decodeDatasetInfo(t, b); dup.ID != info.ID || dup.Fingerprint != info.Fingerprint {
		t.Fatalf("re-register info: %+v, want id %s", dup, info.ID)
	}

	// List and get.
	code, b = doJSON(t, http.MethodGet, base+"/v2/datasets", nil)
	if code != http.StatusOK || !bytes.Contains(b, []byte(info.ID)) {
		t.Fatalf("list: HTTP %d\n%s", code, b)
	}
	code, b = doJSON(t, http.MethodGet, base+"/v2/datasets/"+info.ID, nil)
	if code != http.StatusOK || decodeDatasetInfo(t, b).Fingerprint != info.Fingerprint {
		t.Fatalf("get: HTTP %d\n%s", code, b)
	}

	// Submit by reference.
	spec := `{"lambda": 0.2, "epsilon": 0.001, "seed": 5}`
	code, b = doJSON(t, http.MethodPost, base+"/v2/jobs", map[string]any{
		"dataset_ref": info.ID,
		"spec":        json.RawMessage(spec),
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit by ref: HTTP %d\n%s", code, b)
	}
	var st StatusV2
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.N != 150 || st.D != 15 || st.DatasetFingerprint != info.Fingerprint {
		t.Fatalf("by-ref status lacks dataset identity: %+v", st)
	}
	fin := pollUntil(t, base, st.ID, Done, 60*time.Second)
	if fin.InnerIters == 0 {
		t.Fatalf("by-ref job reported no progress: %+v", fin)
	}
	// The graph carries the registered names.
	code, b = doJSON(t, http.MethodGet, base+"/v2/jobs/"+st.ID+"/graph?tau=0.3", nil)
	if code != http.StatusOK || !bytes.Contains(b, []byte(`"v0"`)) {
		t.Fatalf("by-ref graph: HTTP %d\n%s", code, b)
	}

	// The same data submitted INLINE with the same spec is answered
	// from the cache — the acceptance property of fingerprint keying.
	code, b = doJSON(t, http.MethodPost, base+"/v2/jobs", map[string]any{
		"samples": rows, "names": names,
		"spec": json.RawMessage(spec),
	})
	if code != http.StatusOK {
		t.Fatalf("inline resubmit: HTTP %d, want 200 (cache hit)\n%s", code, b)
	}
	var st2 StatusV2
	if err := json.Unmarshal(b, &st2); err != nil || !st2.Cached {
		t.Fatalf("inline resubmission should hit the by-ref job's cache entry: %v\n%s", err, b)
	}
	if st2.DatasetFingerprint != info.Fingerprint {
		t.Fatalf("inline fingerprint %s != registered %s", st2.DatasetFingerprint, info.Fingerprint)
	}

	// And a second by-ref submission is a cache hit too.
	code, b = doJSON(t, http.MethodPost, base+"/v2/jobs", map[string]any{
		"dataset_ref": info.ID, "spec": json.RawMessage(spec),
	})
	if code != http.StatusOK {
		t.Fatalf("by-ref resubmit: HTTP %d, want 200\n%s", code, b)
	}

	// Delete; the id stops resolving for new submissions, finished
	// jobs are untouched.
	req, err := http.NewRequest(http.MethodDelete, base+"/v2/datasets/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: HTTP %d", resp.StatusCode)
	}
	if code, _ = doJSON(t, http.MethodGet, base+"/v2/datasets/"+info.ID, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete: HTTP %d, want 404", code)
	}
	code, b = doJSON(t, http.MethodPost, base+"/v2/jobs", map[string]any{
		"dataset_ref": info.ID, "spec": json.RawMessage(spec),
	})
	if code != http.StatusNotFound {
		t.Fatalf("submit against deleted dataset: HTTP %d, want 404\n%s", code, b)
	}
	if code, b = doJSON(t, http.MethodGet, base+"/v2/jobs/"+st.ID, nil); code != http.StatusOK {
		t.Fatalf("finished job after dataset delete: HTTP %d\n%s", code, b)
	}
}

// TestDatasetRegistryValidation: malformed registrations and
// conflicting submissions are 4xx.
func TestDatasetRegistryValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	base := srv.URL
	rows, names := erData(103)

	cases := []struct {
		name string
		body map[string]any
		frag string
	}{
		{"empty", map[string]any{}, "missing samples"},
		{"one variable", map[string]any{"samples": [][]float64{{1}, {2}}}, "2 variables"},
		{"NaN", map[string]any{"csv": "a,b\n1,NaN\n", "header": true}, "NaN"},
		{"name mismatch", map[string]any{"samples": rows, "names": []string{"just-one"}}, "names"},
		{"unknown field", map[string]any{"samples": rows, "spec": map[string]any{}}, "spec"},
	}
	for _, c := range cases {
		code, b := doJSON(t, http.MethodPost, base+"/v2/datasets", c.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400\n%s", c.name, code, b)
			continue
		}
		if !bytes.Contains(b, []byte(c.frag)) {
			t.Errorf("%s: error %s does not mention %q", c.name, b, c.frag)
		}
	}

	// dataset_ref conflicts with inline data.
	code, b := doJSON(t, http.MethodPost, base+"/v2/jobs", map[string]any{
		"dataset_ref": "d00000001", "samples": rows, "names": names,
	})
	if code != http.StatusBadRequest || !bytes.Contains(b, []byte("not both")) {
		t.Errorf("ref+inline: HTTP %d\n%s", code, b)
	}
	// Unknown ref is 404.
	if code, _ = doJSON(t, http.MethodPost, base+"/v2/jobs", map[string]any{"dataset_ref": "d99999999"}); code != http.StatusNotFound {
		t.Errorf("unknown ref: HTTP %d, want 404", code)
	}
}

// TestDatasetStoreLRU: capacity bounds the store, eviction is
// least-recently-used, and fingerprint dedup survives touches.
func TestDatasetStoreLRU(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1, DatasetCapacity: 2})
	defer shutdown(t, m)

	mk := func(seed int64) least.Dataset {
		truth := least.GenerateDAG(seed, least.ErdosRenyi, 4, 2)
		return least.FromMatrix(least.SampleLSEM(seed, truth, 20, least.GaussianNoise), nil)
	}
	a, createdA, err := m.RegisterDataset(mk(1))
	if err != nil || !createdA {
		t.Fatalf("register a: %v created=%v", err, createdA)
	}
	b, _, err := m.RegisterDataset(mk(2))
	if err != nil {
		t.Fatal(err)
	}
	// Touch a so b is the LRU entry, then push a third dataset in.
	if _, _, err := m.Dataset(a.ID); err != nil {
		t.Fatal(err)
	}
	c, _, err := m.RegisterDataset(mk(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Dataset(b.ID); err == nil {
		t.Fatal("LRU entry b survived eviction")
	}
	for _, id := range []string{a.ID, c.ID} {
		if _, _, err := m.Dataset(id); err != nil {
			t.Fatalf("entry %s evicted unexpectedly: %v", id, err)
		}
	}
	// b's fingerprint is re-registrable after eviction.
	b2, created, err := m.RegisterDataset(mk(2))
	if err != nil || !created {
		t.Fatalf("re-register evicted: %v created=%v", err, created)
	}
	if b2.Fingerprint != b.Fingerprint {
		t.Fatal("fingerprint changed across re-registration")
	}

	// Disabled store: everything errors cleanly.
	md := NewManager(Config{MaxConcurrent: 1, DatasetCapacity: -1})
	defer shutdown(t, md)
	if _, _, err := md.RegisterDataset(mk(1)); err == nil {
		t.Fatal("disabled store accepted a registration")
	}
	if got := md.Datasets(); got != nil {
		t.Fatalf("disabled store lists %v", got)
	}
}

// TestSubmitDatasetCenterSharing: centered inline and centered by-ref
// submissions of the same raw data share one cache entry, and centered
// vs raw never collide.
func TestSubmitDatasetCenterSharing(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1})
	defer shutdown(t, m)

	truth := least.GenerateDAG(7, least.ErdosRenyi, 6, 2)
	x := least.SampleLSEM(8, truth, 80, least.GaussianNoise)
	spec, err := least.New(least.WithLambda(0.2), least.WithEpsilon(1e-3), least.WithMaxOuter(4))
	if err != nil {
		t.Fatal(err)
	}
	ds := least.FromMatrix(x, nil)
	info, _, err := m.RegisterDataset(ds)
	if err != nil {
		t.Fatal(err)
	}

	j1, err := m.SubmitDataset(ds, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, Done, 60*time.Second)

	// Inline centered submission of the same raw bytes: cache hit.
	stored, _, err := m.Dataset(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.SubmitDataset(stored, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if st := j2.Status(); st.State != Done || !st.Cached {
		t.Fatalf("centered resubmission not cached: %+v", st)
	}

	// Raw (uncentered) submission must not reuse the centered result.
	j3, err := m.SubmitDataset(ds, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if st := j3.Status(); st.Cached {
		t.Fatalf("raw submission hit the centered cache entry: %+v", st)
	}
	waitState(t, j3, Done, 60*time.Second)
}

// TestStatusV2CarriesDatasetIdentity: every v2 status view — submit
// response, status, list, SSE terminal frame — carries n, d and the
// dataset fingerprint, while the v1 views never do.
func TestStatusV2CarriesDatasetIdentity(t *testing.T) {
	srv, _ := newTestServer(t)
	base := srv.URL
	rows, names := erData(105)

	code, b := doJSON(t, http.MethodPost, base+"/v2/jobs", map[string]any{
		"samples": rows, "names": names,
		"spec": json.RawMessage(`{"lambda": 0.2, "epsilon": 0.001, "seed": 5}`),
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d\n%s", code, b)
	}
	var st StatusV2
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.N != 150 || st.D != 15 || len(st.DatasetFingerprint) < 32 {
		t.Fatalf("v2 submit response lacks dataset identity: %+v", st)
	}
	pollUntil(t, base, st.ID, Done, 60*time.Second)

	code, b = doJSON(t, http.MethodGet, base+"/v2/jobs/"+st.ID, nil)
	if code != http.StatusOK || !bytes.Contains(b, []byte(`"dataset_fingerprint"`)) {
		t.Fatalf("v2 status: HTTP %d\n%s", code, b)
	}
	code, b = doJSON(t, http.MethodGet, base+"/v2/jobs", nil)
	if code != http.StatusOK || !bytes.Contains(b, []byte(`"dataset_fingerprint"`)) {
		t.Fatalf("v2 list: HTTP %d\n%s", code, b)
	}

	// v1 responses never carry the new keys.
	code, b = doJSON(t, http.MethodGet, base+"/v1/jobs/"+st.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("v1 status: HTTP %d", code)
	}
	for _, key := range []string{`"dataset_fingerprint"`, `"method"`, `"n":`, `"d":`} {
		if strings.Contains(string(b), key) {
			t.Fatalf("v1 status leaked v2 key %s:\n%s", key, b)
		}
	}
}
