package serve

// Peer-facing endpoints (DESIGN.md §13): the narrow extra surface a
// coordinator needs beyond the public v2 API — the node's result-cache
// digest (the gossip payload behind cross-node dedupe), lane stealing
// (skew rebalancing: a peer takes pending rows off this node's batch
// lanes), and sub-batch admission (an alias of POST /v2/batches; the
// coordinator admits per-node sub-manifests through it). These routes
// are trusted-cluster-internal: they carry no more authority than the
// public surface (stealing is cancellation plus manifest export), but
// they are versioned separately so the public v2 contract stays frozen.

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro"
)

// ErrStolen is the terminal error of a job whose pending work a peer
// took over; the donor's task rows carry TaskCodeStolen.
var ErrStolen = errors.New("serve: stolen by peer")

// CacheDigest is the GET /v2/peer/cache-digest payload: every result-
// cache key this node currently holds. Keys are CacheKeyDataset
// outputs — dataset fingerprint + centering + canonical spec — so two
// nodes agree on a key exactly when they solved the same task.
type CacheDigest struct {
	Keys []string `json:"keys"`
}

// StolenTask is one unit of stolen work: the original manifest entry
// and the donor-side row indices it covered (deduplicated rows ride
// one job and are stolen together, so the thief re-deduplicates them
// for free).
type StolenTask struct {
	Indices []int              `json:"indices"`
	Task    least.ManifestTask `json:"task"`
}

// StealRequest is the POST /v2/peer/steal body: take up to Max pending
// rows from batch Batch's lane tail.
type StealRequest struct {
	Batch string `json:"batch"`
	Max   int    `json:"max"`
}

// StealResponse returns the stolen manifest entries in their original
// lane order.
type StealResponse struct {
	Batch  string       `json:"batch"`
	Stolen []StolenTask `json:"stolen"`
}

// keys snapshots the cache's key set (no LRU side effects).
func (c *resultCache) keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.items))
	for k := range c.items {
		out = append(out, k)
	}
	return out
}

// CacheDigest returns the node's current result-cache key set — the
// gossip announcement the coordinator folds into its cross-node dedupe
// index.
func (m *Manager) CacheDigest() CacheDigest {
	ks := m.cache.keys()
	if ks == nil {
		ks = []string{}
	}
	return CacheDigest{Keys: ks}
}

// StealBatch removes up to max pending rows from the tail of a batch's
// scheduler lane and returns their manifests for re-admission on
// another node. The lane head is never taken — round-robin order
// within the remaining sub-batch is preserved exactly (the next job to
// run is still the next job to run); victims come off the tail, the
// work a single node would have reached last anyway.
//
// A job is stealable only when it is still queued, only this batch
// holds it (a job deduplicated across live batches stays — stealing it
// would sabotage the other manifest), and its manifest row carries
// inline data (dataset_ref rows are pinned to the node holding the
// registered dataset; see the §13 deliberately-not-replicated list).
// Stolen rows land in the donor's task table as cancelled with the
// typed "stolen" code, and the donor's underlying jobs cancel with
// ErrStolen — the thief's sub-batch is the continuation.
func (bm *BatchManager) StealBatch(id string, max int) (StealResponse, error) {
	resp := StealResponse{Batch: id, Stolen: []StolenTask{}}
	b, err := bm.Get(id)
	if err != nil {
		return resp, err
	}
	m := bm.m

	type theft struct {
		j    *Job
		rows []int
		task least.ManifestTask
		obs  []func(Status)
		st   Status
	}
	var thefts []theft

	// Lock order: b.mu → m.mu → j.mu (the orderings m.mu→j.mu and
	// b.mu→j.mu already exist; nothing takes m.mu→b.mu, so stacking
	// b.mu outside m.mu is safe). Selection and lane removal happen in
	// one critical section — a worker pops jobs under m.mu, so holding
	// it is what keeps a promised row from starting to solve here.
	b.mu.Lock()
	if b.state.Terminal() || max <= 0 {
		b.mu.Unlock()
		return resp, nil
	}
	m.mu.Lock()
	var lane *jobQueue
	laneIdx := -1
	for i, q := range m.runq {
		if q.id == b.id {
			lane, laneIdx = q, i
			break
		}
	}
	if lane != nil {
		taken := 0
		// Tail-first, never index 0: the head stays so the donor keeps
		// making progress and the round-robin cursor is undisturbed.
		for k := len(lane.jobs) - 1; k >= 1 && taken < max; k-- {
			j := lane.jobs[k]
			rows := b.refs[j]
			if len(rows) == 0 || len(b.manifests) == 0 {
				continue
			}
			mt := b.manifests[rows[0]]
			inline := mt.DatasetRef == "" && len(mt.In) == 0 &&
				(mt.CSV != "" || mt.Samples != nil)
			if !inline {
				continue
			}
			j.mu.Lock()
			if j.state != Queued || j.waiters != 1 {
				j.mu.Unlock()
				continue
			}
			// Cancel the donor's job in place (the Shutdown-style queued
			// transition), typed so ledgers can tell a steal from a user
			// cancel.
			j.waiters = 0
			j.state = Cancelled
			j.code = TaskCodeStolen
			j.err = ErrStolen
			j.finished = time.Now()
			j.data = nil
			j.notifyLocked()
			obs, st := j.transitionObserversLocked()
			j.mu.Unlock()

			lane.jobs = append(lane.jobs[:k], lane.jobs[k+1:]...)
			m.nqueued--
			m.nbatchq--
			m.dropInflightLocked(j)
			m.met.JobsCancelled.Add(1)

			for _, i := range rows {
				t := b.tasks[i]
				if t.state.Terminal() {
					continue
				}
				b.moveLocked(t, Cancelled)
				t.code = TaskCodeStolen
				t.err = ErrStolen.Error()
				b.open--
			}
			delete(b.refs, j)
			taken += len(rows)
			thefts = append(thefts, theft{j: j, rows: rows, task: mt, obs: obs, st: st})
		}
		if len(lane.jobs) == 0 {
			m.removeLaneLocked(laneIdx)
		}
	}
	m.mu.Unlock()
	if len(thefts) > 0 {
		if b.open == 0 && !b.state.Terminal() {
			b.finishLocked(BatchDone)
		}
		b.bumpLocked()
	}
	b.mu.Unlock()

	// Observer delivery outside every lock (notifyTransition→onJob takes
	// b.mu; the rows are already terminal, so these are no-ops for this
	// batch and correct monotonic deliveries for any SSE watcher).
	for _, th := range thefts {
		notifyTransition(th.obs, th.st)
	}

	// thefts collected tail-first; return them in manifest order.
	for i := len(thefts) - 1; i >= 0; i-- {
		resp.Stolen = append(resp.Stolen, StolenTask{Indices: thefts[i].rows, Task: thefts[i].task})
	}
	return resp, nil
}

// peerCacheDigest serves GET /v2/peer/cache-digest.
func (a *API) peerCacheDigest(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.m.CacheDigest())
}

// peerSteal serves POST /v2/peer/steal.
func (a *API) peerSteal(w http.ResponseWriter, r *http.Request) {
	var req StealRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	resp, err := a.m.Batches().StealBatch(req.Batch, req.Max)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
