package serve

// Durable fleet state (DESIGN.md §11): the Manager journals every
// admission and terminal transition to an internal/journal write-ahead
// log so a restarted daemon recovers its datasets, job table, batches
// and result cache instead of losing the fleet. Record payloads reuse
// the wire schemas that are already golden-pinned on the HTTP surface:
// batch rows carry least.ManifestTask manifests, job records carry the
// canonical Spec JSON the result cache keys on, and dataset records
// carry the /v2/datasets metadata shape. Emission is asynchronous —
// state transitions enqueue onto a single ordered emitter goroutine
// that marshals and appends off the hot path — and Shutdown drains the
// emitter and fsyncs before returning, so "drained" means "durable".

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro"
	"repro/internal/journal"
	"repro/internal/sparse"
)

// Journal record types.
const (
	recDataset       = "dataset"        // a dataset registration (metadata + samples)
	recDatasetDrop   = "dataset_drop"   // a dataset left the store (eviction or DELETE)
	recJob           = "job"            // a job admission
	recJobTerminal   = "job_terminal"   // a job reached done/failed/cancelled
	recBatch         = "batch"          // a batch admission (manifest + row table + minted jobs)
	recBatchTerminal = "batch_terminal" // a batch sealed (final row table)
	recCacheEntry    = "cache_entry"    // snapshot only: one live result-cache entry
	recCacheEvict    = "cache_evict"    // a result left the cache under LRU pressure
)

// datasetRecord journals one registration: the /v2/datasets metadata
// plus the row-major samples needed to rebuild the store entry.
type datasetRecord struct {
	Info    DatasetInfo `json:"info"`
	Samples [][]float64 `json:"samples"`
}

type datasetDropRecord struct {
	ID string `json:"id"`
}

// jobRecord journals one admission. Spec is the canonical
// (defaults-resolved) Spec JSON — the exact bytes the result-cache key
// hashes — so a recovered job recomputes the same key.
type jobRecord struct {
	ID          string          `json:"id"`
	Key         string          `json:"key"`
	Fingerprint string          `json:"fingerprint"`
	N           int             `json:"n"`
	D           int             `json:"d"`
	Names       []string        `json:"names,omitempty"`
	Center      bool            `json:"center,omitempty"`
	Batch       bool            `json:"batch,omitempty"`
	DatasetID   string          `json:"dataset_id,omitempty"`
	Spec        json.RawMessage `json:"spec,omitempty"`
	Created     time.Time       `json:"created"`
}

// sparseRecord is the JSON form of a CSR weight matrix.
type sparseRecord struct {
	Rows   int       `json:"rows"`
	Cols   int       `json:"cols"`
	RowPtr []int     `json:"row_ptr"`
	ColIdx []int     `json:"col_idx"`
	Val    []float64 `json:"val"`
}

// resultRecord is the JSON form of a least.Result. Go's encoding/json
// round-trips float64 exactly, so a recovered result is bit-identical
// to the journaled one.
type resultRecord struct {
	D          int           `json:"d"`
	Weights    [][]float64   `json:"weights,omitempty"`
	Sparse     *sparseRecord `json:"sparse,omitempty"`
	Delta      float64       `json:"delta"`
	H          float64       `json:"h,omitempty"`
	Converged  bool          `json:"converged,omitempty"`
	OuterIters int           `json:"outer_iters,omitempty"`
	InnerIters int           `json:"inner_iters,omitempty"`
}

// jobTerminalRecord journals a job's final state; done jobs carry the
// result so recovery can repopulate the cache and serve /graph.
type jobTerminalRecord struct {
	ID       string        `json:"id"`
	Key      string        `json:"key"`
	State    State         `json:"state"`
	Code     TaskCode      `json:"code,omitempty"`
	Error    string        `json:"error,omitempty"`
	Cached   bool          `json:"cached,omitempty"`
	Finished time.Time     `json:"finished"`
	Result   *resultRecord `json:"result,omitempty"`
}

// batchRowRecord is one row of the journaled batch task table — the
// TaskStatus shape minus the index (implied by position).
type batchRowRecord struct {
	Label   string   `json:"label,omitempty"`
	State   State    `json:"state"`
	Cached  bool     `json:"cached,omitempty"`
	Deduped bool     `json:"deduped,omitempty"`
	Job     string   `json:"job,omitempty"`
	Code    TaskCode `json:"code,omitempty"`
	Error   string   `json:"error,omitempty"`
}

// batchRecord journals a batch admission: the manifest (so pending
// tasks can re-resolve their data after a restart), the row table at
// admission, and the jobs this admission minted. Tasks[i] pairs with
// Rows[i]; deduplicated rows reference jobs minted elsewhere.
type batchRecord struct {
	ID      string               `json:"id"`
	Created time.Time            `json:"created"`
	Tasks   []least.ManifestTask `json:"tasks,omitempty"`
	Rows    []batchRowRecord     `json:"rows"`
	Jobs    []jobRecord          `json:"jobs,omitempty"`
}

// batchTerminalRecord seals a batch with its final row table (rows may
// have diverged from the admission record — cancels mark rows directly).
type batchTerminalRecord struct {
	ID       string           `json:"id"`
	State    BatchState       `json:"state"`
	Finished time.Time        `json:"finished"`
	Rows     []batchRowRecord `json:"rows,omitempty"`
}

type cacheEntryRecord struct {
	Key    string        `json:"key"`
	Result *resultRecord `json:"result"`
}

type cacheEvictRecord struct {
	Key string `json:"key"`
}

// resultRecordOf converts a learned result for journaling. The
// [][]float64 rows alias the immutable weight matrix — no copy on the
// emission path; marshaling reads them once.
func resultRecordOf(res *least.Result) *resultRecord {
	if res == nil {
		return nil
	}
	r := &resultRecord{
		Delta:      res.Delta,
		H:          res.H,
		Converged:  res.Converged,
		OuterIters: res.OuterIters,
		InnerIters: res.InnerIters,
	}
	if res.Weights != nil {
		rows := res.Weights.Rows()
		r.D = res.Weights.Cols()
		r.Weights = make([][]float64, rows)
		for i := 0; i < rows; i++ {
			r.Weights[i] = res.Weights.Row(i)
		}
	}
	if res.SparseWeights != nil {
		sw := res.SparseWeights
		r.D = sw.Cols()
		r.Sparse = &sparseRecord{
			Rows:   sw.Rows(),
			Cols:   sw.Cols(),
			RowPtr: sw.RowPtr,
			ColIdx: sw.ColIdx,
			Val:    sw.Val,
		}
	}
	return r
}

// result rebuilds the least.Result a resultRecord journaled.
func (r *resultRecord) result() (*least.Result, error) {
	if r == nil {
		return nil, fmt.Errorf("serve: journal: missing result")
	}
	res := &least.Result{
		Delta:      r.Delta,
		H:          r.H,
		Converged:  r.Converged,
		OuterIters: r.OuterIters,
		InnerIters: r.InnerIters,
	}
	if r.Weights != nil {
		rows := len(r.Weights)
		cols := r.D
		if cols == 0 && rows > 0 {
			cols = len(r.Weights[0])
		}
		w := least.NewMatrix(rows, cols)
		for i, row := range r.Weights {
			if len(row) != cols {
				return nil, fmt.Errorf("serve: journal: weights row %d has %d values, want %d", i, len(row), cols)
			}
			copy(w.Row(i), row)
		}
		res.Weights = w
	}
	if r.Sparse != nil {
		sw, err := sparse.NewCSRRaw(r.Sparse.Rows, r.Sparse.Cols, r.Sparse.RowPtr, r.Sparse.ColIdx, r.Sparse.Val)
		if err != nil {
			return nil, fmt.Errorf("serve: journal: %w", err)
		}
		res.SparseWeights = sw
	}
	return res, nil
}

// datasetRecordOf serializes a registered dataset. ok is false when
// the dataset cannot materialize rows (a statistics-only Dataset
// registered programmatically) — such registrations are not journaled
// and simply do not survive a restart.
func datasetRecordOf(info DatasetInfo, ds least.Dataset) (*datasetRecord, bool) {
	rs, ok := ds.(least.RowSource)
	if !ok {
		return nil, false
	}
	x, err := rs.Matrix(context.Background())
	if err != nil || x == nil {
		return nil, false
	}
	rows := x.Rows()
	samples := make([][]float64, rows)
	for i := 0; i < rows; i++ {
		samples[i] = x.Row(i)
	}
	return &datasetRecord{Info: info, Samples: samples}, true
}

// datasetOf rebuilds the store entry a datasetRecord journaled.
func (r *datasetRecord) dataset() (least.Dataset, error) {
	d := r.Info.D
	x := least.NewMatrix(len(r.Samples), d)
	for i, row := range r.Samples {
		if len(row) != d {
			return nil, fmt.Errorf("serve: journal: dataset %s row %d has %d values, want %d", r.Info.ID, i, len(row), d)
		}
		copy(x.Row(i), row)
	}
	return least.FromMatrix(x, r.Info.Names), nil
}

// canonicalSpecJSON marshals the defaults-resolved spec — the form the
// cache key hashes (DESIGN.md §6).
func canonicalSpecJSON(spec *least.Spec) json.RawMessage {
	if spec == nil {
		spec = &least.Spec{}
	}
	b, err := json.Marshal(spec.Canonical())
	if err != nil {
		return nil // validated at admission; cannot fail
	}
	return b
}

// jobRecordOf builds the admission record for a minted job. Immutable
// job fields only — safe without j.mu.
func jobRecordOf(j *Job, batch bool, dsID string) jobRecord {
	return jobRecord{
		ID:          j.id,
		Key:         j.key,
		Fingerprint: j.fp,
		N:           j.n,
		D:           j.d,
		Names:       j.names,
		Center:      j.center,
		Batch:       batch,
		DatasetID:   dsID,
		Spec:        canonicalSpecJSON(j.spec),
		Created:     j.created,
	}
}

// jobTerminalRecordOf snapshots a terminal job's final state.
func jobTerminalRecordOf(j *Job) jobTerminalRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := jobTerminalRecord{
		ID:       j.id,
		Key:      j.key,
		State:    j.state,
		Code:     j.code,
		Cached:   j.cached,
		Finished: j.finished,
	}
	if j.err != nil {
		rec.Error = j.err.Error()
	}
	if j.state == Done {
		rec.Result = resultRecordOf(j.result)
	}
	return rec
}

// journalEvent is one queued emission: the payload is marshaled by the
// emitter goroutine, off the transitioning goroutine's hot path.
// Payloads must be immutable once enqueued.
type journalEvent struct {
	typ     string
	payload any
}

// journalEmitter serializes all journal writes through one goroutine,
// preserving emission order (a dataset record lands before the jobs
// referencing it) and keeping Append/Compact latency off admission and
// terminal paths. emit may be called under any Manager lock — it only
// touches the emitter's own mutex.
type journalEmitter struct {
	w            *journal.Writer
	compactEvery int
	snapshot     func(add func(typ string, payload any) error) error

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []journalEvent
	closed bool
	done   chan struct{}
}

func newJournalEmitter(w *journal.Writer, compactEvery int, snapshot func(add func(typ string, payload any) error) error) *journalEmitter {
	e := &journalEmitter{w: w, compactEvery: compactEvery, snapshot: snapshot, done: make(chan struct{})}
	e.cond = sync.NewCond(&e.mu)
	go e.run()
	return e
}

func (e *journalEmitter) emit(typ string, payload any) {
	e.mu.Lock()
	if !e.closed {
		e.queue = append(e.queue, journalEvent{typ: typ, payload: payload})
		e.cond.Signal()
	}
	e.mu.Unlock()
}

func (e *journalEmitter) run() {
	defer close(e.done)
	since := 0
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		batch := e.queue
		e.queue = nil
		e.mu.Unlock()
		for _, ev := range batch {
			b, err := json.Marshal(ev.payload)
			if err != nil {
				continue // payloads are plain structs; cannot fail
			}
			_ = e.w.Append(ev.typ, b)
		}
		since += len(batch)
		if e.compactEvery > 0 && since >= e.compactEvery {
			since = 0
			_ = e.w.Compact(func(add func(string, []byte) error) error {
				return e.snapshot(func(typ string, payload any) error {
					b, err := json.Marshal(payload)
					if err != nil {
						return err
					}
					return add(typ, b)
				})
			})
		}
	}
}

// close drains every queued emission, fsyncs and closes the journal —
// the Shutdown barrier that makes a completed drain durable. Safe to
// call more than once.
func (e *journalEmitter) close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	<-e.done
	_ = e.w.Sync()
	_ = e.w.Close()
}

// kill abandons queued emissions and closes the writer without
// draining — the crash-simulation hook recovery tests use to model
// SIGKILL (records handed to the emitter but not yet appended are
// lost, exactly like a real crash).
func (e *journalEmitter) kill() {
	e.mu.Lock()
	e.closed = true
	e.queue = nil
	e.cond.Broadcast()
	e.mu.Unlock()
	<-e.done
	_ = e.w.Close()
}

// JournalStats reports the journal writer's counters; ok is false when
// journaling is disabled.
func (m *Manager) JournalStats() (journal.Stats, bool) {
	if m.jnl == nil {
		return journal.Stats{}, false
	}
	return m.jnl.w.Stats(), true
}

// journalJobAdmission emits the admission record (and, for a born-done
// cache hit that will never transition, the terminal record) for an
// interactively submitted job.
func (m *Manager) journalJobAdmission(j *Job, dsID string) {
	if m.jnl == nil {
		return
	}
	m.jnl.emit(recJob, jobRecordOf(j, false, dsID))
	if j.cached {
		m.jnl.emit(recJobTerminal, jobTerminalRecordOf(j))
	}
}

// jobTerminal is the mint-time observer every job carries: on the
// terminal transition it releases the job's dataset hold and journals
// the terminal record. Runs outside j.mu on the transitioning
// goroutine, exactly once per job (transitions are monotonic).
func (m *Manager) jobTerminal(j *Job, st Status) {
	if !st.State.Terminal() {
		return
	}
	j.mu.Lock()
	dsID := j.dsID
	j.dsID = ""
	j.mu.Unlock()
	if dsID != "" {
		m.datasets.release(dsID)
	}
	if m.jnl != nil {
		m.jnl.emit(recJobTerminal, jobTerminalRecordOf(j))
	}
}

// rowRecordsLocked snapshots the batch's task table. Caller holds b.mu.
func (b *Batch) rowRecordsLocked() []batchRowRecord {
	rows := make([]batchRowRecord, len(b.tasks))
	for i, t := range b.tasks {
		rows[i] = batchRowRecord{
			Label:   t.label,
			State:   t.state,
			Cached:  t.cached,
			Deduped: t.deduped,
			Job:     t.jobID,
			Code:    t.code,
			Error:   t.err,
		}
	}
	return rows
}

// journalBatchAdmission emits the batch record plus terminal records
// for born-done minted jobs (they will never transition).
func (m *Manager) journalBatchAdmission(b *Batch, minted []*Job) {
	if m.jnl == nil {
		return
	}
	b.mu.Lock()
	rec := batchRecord{
		ID:      b.id,
		Created: b.created,
		Tasks:   b.manifests,
		Rows:    b.rowRecordsLocked(),
	}
	b.mu.Unlock()
	for _, j := range minted {
		j.mu.Lock()
		dsID := j.dsID
		j.mu.Unlock()
		rec.Jobs = append(rec.Jobs, jobRecordOf(j, true, dsID))
	}
	m.jnl.emit(recBatch, rec)
	for _, j := range minted {
		if j.Status().State == Done { // born-done cache hit
			m.jnl.emit(recJobTerminal, jobTerminalRecordOf(j))
		}
	}
}

// snapshotJournal re-serializes the live fleet state for compaction:
// datasets and cache entries oldest-first (replay reproduces the LRU
// order), then jobs and batches in submission order. Invoked on the
// emitter goroutine, which holds no Manager locks.
func (m *Manager) snapshotJournal(add func(typ string, payload any) error) error {
	for _, e := range m.datasets.snapshotEntries() {
		rec, ok := datasetRecordOf(e.info, e.ds)
		if !ok {
			continue
		}
		if err := add(recDataset, rec); err != nil {
			return err
		}
	}
	for _, e := range m.cache.entries() {
		if err := add(recCacheEntry, cacheEntryRecord{Key: e.key, Result: resultRecordOf(e.res)}); err != nil {
			return err
		}
	}
	type jobSnap struct {
		j     *Job
		batch bool
	}
	m.mu.Lock()
	jobs := make([]jobSnap, 0, len(m.order))
	for _, id := range m.order {
		j := m.jobs[id]
		jobs = append(jobs, jobSnap{j: j, batch: j.batch})
	}
	m.mu.Unlock()
	for _, js := range jobs {
		j := js.j
		j.mu.Lock()
		dsID := j.dsID
		terminal := j.state.Terminal()
		j.mu.Unlock()
		if err := add(recJob, jobRecordOf(j, js.batch, dsID)); err != nil {
			return err
		}
		if terminal {
			if err := add(recJobTerminal, jobTerminalRecordOf(j)); err != nil {
				return err
			}
		}
	}
	bm := m.batches
	bm.mu.Lock()
	ids := append([]string(nil), bm.order...)
	batches := make([]*Batch, 0, len(ids))
	for _, id := range ids {
		batches = append(batches, bm.batches[id])
	}
	bm.mu.Unlock()
	for _, b := range batches {
		b.mu.Lock()
		rec := batchRecord{
			ID:      b.id,
			Created: b.created,
			Tasks:   b.manifests,
			Rows:    b.rowRecordsLocked(),
		}
		var term *batchTerminalRecord
		if b.state.Terminal() {
			term = &batchTerminalRecord{ID: b.id, State: b.state, Finished: b.finished, Rows: rec.Rows}
		}
		b.mu.Unlock()
		if err := add(recBatch, rec); err != nil {
			return err
		}
		if term != nil {
			if err := add(recBatchTerminal, term); err != nil {
				return err
			}
		}
	}
	return nil
}
