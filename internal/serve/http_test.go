package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
)

func newTestServer(t *testing.T) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(Config{MaxConcurrent: 1})
	srv := httptest.NewServer(NewAPI(m).Handler())
	t.Cleanup(func() {
		srv.Close()
		shutdown(t, m)
	})
	return srv, m
}

func doJSON(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rdr *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rdr = bytes.NewReader(b)
	} else {
		rdr = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func decodeStatus(t *testing.T, b []byte) Status {
	t.Helper()
	var st Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("status decode: %v\n%s", err, b)
	}
	return st
}

// pollUntil polls GET /v1/jobs/{id} until the job reaches want.
func pollUntil(t *testing.T, base, id string, want State, timeout time.Duration) Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, b := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("poll %s: HTTP %d\n%s", id, code, b)
		}
		st := decodeStatus(t, b)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s terminal in %s (err %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// wireGraph mirrors the bnet JSON interchange document.
type wireGraph struct {
	Nodes []string `json:"nodes"`
	Edges []struct {
		From   int     `json:"from"`
		To     int     `json:"to"`
		Weight float64 `json:"weight"`
	} `json:"edges"`
}

// erSubmission builds a dense-JSON submission over a generated ER-2
// dataset — the acceptance workload of the serving layer.
func erSubmission(seed int64) SubmitRequest {
	truth := least.GenerateDAG(seed, least.ErdosRenyi, 15, 2)
	x := least.SampleLSEM(seed+1, truth, 150, least.GaussianNoise)
	rows := make([][]float64, x.Rows())
	for i := range rows {
		rows[i] = append([]float64(nil), x.Row(i)...)
	}
	return SubmitRequest{
		Samples: rows,
		Options: &JobOptions{Lambda: 0.2, Epsilon: 1e-3, Seed: 5},
	}
}

func TestHTTPSubmitPollGraphCacheCancel(t *testing.T) {
	srv, _ := newTestServer(t)
	base := srv.URL

	// Submit an ER-2 job with dense-JSON samples.
	code, b := doJSON(t, http.MethodPost, base+"/v1/jobs", erSubmission(31))
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d\n%s", code, b)
	}
	st := decodeStatus(t, b)
	if st.ID == "" || st.State != Queued || st.Vars != 15 || st.Samples != 150 {
		t.Fatalf("submit status: %+v", st)
	}

	// Poll to completion; progress counters must have ticked.
	fin := pollUntil(t, base, st.ID, Done, 60*time.Second)
	if fin.InnerIters == 0 || fin.Solves == 0 {
		t.Fatalf("no progress reported: %+v", fin)
	}

	// Fetch the learned network in the bnet interchange format.
	code, b = doJSON(t, http.MethodGet, base+"/v1/jobs/"+st.ID+"/graph?tau=0.3", nil)
	if code != http.StatusOK {
		t.Fatalf("graph: HTTP %d\n%s", code, b)
	}
	var g wireGraph
	if err := json.Unmarshal(b, &g); err != nil {
		t.Fatalf("graph decode: %v\n%s", err, b)
	}
	if len(g.Nodes) != 15 {
		t.Fatalf("graph nodes = %d, want 15", len(g.Nodes))
	}
	if len(g.Edges) == 0 {
		t.Fatal("graph has no edges — learn produced nothing")
	}
	for _, e := range g.Edges {
		if e.Weight == 0 {
			t.Fatalf("edge %d→%d lost its weight", e.From, e.To)
		}
	}
	firstGraph := append([]byte(nil), b...)

	// Garbage thresholds are rejected, including the NaN/Inf footguns
	// (every |w| > NaN or > +Inf comparison is false → silently empty
	// graph).
	for _, bad := range []string{"NaN", "Inf", "-1", "bogus"} {
		if code, _ = doJSON(t, http.MethodGet, base+"/v1/jobs/"+st.ID+"/graph?tau="+bad, nil); code != http.StatusBadRequest {
			t.Fatalf("tau=%s: HTTP %d, want 400", bad, code)
		}
	}

	// An identical second submission is served from the result cache.
	code, b = doJSON(t, http.MethodPost, base+"/v1/jobs", erSubmission(31))
	if code != http.StatusOK {
		t.Fatalf("cached submit: HTTP %d\n%s", code, b)
	}
	st2 := decodeStatus(t, b)
	if st2.State != Done || !st2.Cached {
		t.Fatalf("second submission should be a cache hit: %+v", st2)
	}
	code, b2 := doJSON(t, http.MethodGet, base+"/v1/jobs/"+st2.ID+"/graph?tau=0.3", nil)
	if code != http.StatusOK || !bytes.Equal(firstGraph, b2) {
		t.Fatalf("cached graph should be byte-identical: HTTP %d\n%s\nvs\n%s", code, firstGraph, b2)
	}

	// Graph of an unfinished job is a conflict; cancel of a done job too.
	if code, _ = doJSON(t, http.MethodDelete, base+"/v1/jobs/"+st.ID, nil); code != http.StatusConflict {
		t.Fatalf("cancel done job: HTTP %d, want 409", code)
	}

	// Unknown ids 404 on every verb.
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/nope"},
		{http.MethodGet, "/v1/jobs/nope/graph"},
		{http.MethodDelete, "/v1/jobs/nope"},
	} {
		if code, _ = doJSON(t, probe.method, base+probe.path, nil); code != http.StatusNotFound {
			t.Fatalf("%s %s: HTTP %d, want 404", probe.method, probe.path, code)
		}
	}
}

func TestHTTPCancelMidRun(t *testing.T) {
	srv, _ := newTestServer(t)
	base := srv.URL

	// A deliberately long job: unreachable ε on a 100-node problem.
	truth := least.GenerateDAG(41, least.ErdosRenyi, 100, 2)
	x := least.SampleLSEM(42, truth, 250, least.GaussianNoise)
	rows := make([][]float64, x.Rows())
	for i := range rows {
		rows[i] = append([]float64(nil), x.Row(i)...)
	}
	req := SubmitRequest{
		Samples: rows,
		Options: &JobOptions{Lambda: 0.01, Epsilon: 1e-12, MaxOuter: 64, MaxInner: 2000},
	}
	code, b := doJSON(t, http.MethodPost, base+"/v1/jobs", req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d\n%s", code, b)
	}
	st := decodeStatus(t, b)

	// Wait for real iterations, then DELETE mid-run.
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, b = doJSON(t, http.MethodGet, base+"/v1/jobs/"+st.ID, nil)
		if code != http.StatusOK {
			t.Fatalf("poll: HTTP %d", code)
		}
		if cur := decodeStatus(t, b); cur.State == Running && cur.InnerIters > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started iterating")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, b = doJSON(t, http.MethodDelete, base+"/v1/jobs/"+st.ID, nil); code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d\n%s", code, b)
	}
	fin := pollUntil(t, base, st.ID, Cancelled, 30*time.Second)
	if fin.Error == "" {
		t.Fatalf("cancelled job should report its error: %+v", fin)
	}
	// The graph of a cancelled job is a conflict.
	if code, _ = doJSON(t, http.MethodGet, base+"/v1/jobs/"+st.ID+"/graph", nil); code != http.StatusConflict {
		t.Fatalf("graph of cancelled job: HTTP %d, want 409", code)
	}
}

func TestHTTPCSVSubmissionWithNames(t *testing.T) {
	srv, _ := newTestServer(t)
	base := srv.URL

	// A→B→C chain with deterministic pseudo-noise (same construction
	// as the leastcli smoke test).
	var sb strings.Builder
	sb.WriteString("A,B,C\n")
	state := uint64(42)
	noise := func() float64 {
		var s float64
		for k := 0; k < 4; k++ {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			s += float64(state%1000)/1000.0 - 0.5
		}
		return s * 0.1
	}
	for i := 0; i < 150; i++ {
		a := noise() * 10
		bv := 1.5*a + noise()
		c := -1.2*bv + noise()
		fmt.Fprintf(&sb, "%.6f,%.6f,%.6f\n", a, bv, c)
	}
	req := SubmitRequest{
		CSV:    sb.String(),
		Header: true,
		Center: true,
		Options: &JobOptions{
			Lambda: 0.1, Epsilon: 1e-3, ExactTermination: true,
		},
	}
	code, b := doJSON(t, http.MethodPost, base+"/v1/jobs", req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d\n%s", code, b)
	}
	st := decodeStatus(t, b)
	pollUntil(t, base, st.ID, Done, 60*time.Second)
	code, b = doJSON(t, http.MethodGet, base+"/v1/jobs/"+st.ID+"/graph?tau=0.3", nil)
	if code != http.StatusOK {
		t.Fatalf("graph: HTTP %d\n%s", code, b)
	}
	var g wireGraph
	if err := json.Unmarshal(b, &g); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 3 || g.Nodes[0] != "A" {
		t.Fatalf("CSV header names lost: %v", g.Nodes)
	}
	found := false
	for _, e := range g.Edges {
		if g.Nodes[e.From] == "A" && g.Nodes[e.To] == "B" {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted edge A→B missing from %s", b)
	}

	// Listing knows the job; health reports counters.
	code, b = doJSON(t, http.MethodGet, base+"/v1/jobs", nil)
	if code != http.StatusOK || !bytes.Contains(b, []byte(st.ID)) {
		t.Fatalf("list: HTTP %d\n%s", code, b)
	}
	code, b = doJSON(t, http.MethodGet, base+"/healthz", nil)
	if code != http.StatusOK || !bytes.Contains(b, []byte(`"status"`)) {
		t.Fatalf("healthz: HTTP %d\n%s", code, b)
	}
}

func TestHTTPBadSubmissions(t *testing.T) {
	srv, _ := newTestServer(t)
	base := srv.URL
	cases := []struct {
		name string
		body any
	}{
		{"garbage", "not json"},
		{"empty", SubmitRequest{}},
		{"both forms", SubmitRequest{CSV: "1,2\n", Samples: [][]float64{{1, 2}}}},
		{"ragged samples", SubmitRequest{Samples: [][]float64{{1, 2}, {3}}}},
		{"single column", SubmitRequest{Samples: [][]float64{{1}, {2}}}},
		{"bad csv number", SubmitRequest{CSV: "1,x\n2,3\n"}},
		{"header only", SubmitRequest{CSV: "a,b\n", Header: true}},
	}
	for _, c := range cases {
		code, b := doJSON(t, http.MethodPost, base+"/v1/jobs", c.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400\n%s", c.name, code, b)
		}
	}
	// Bad tau on a real job id path shape.
	if code, _ := doJSON(t, http.MethodGet, base+"/v1/jobs/whatever/graph?tau=bogus", nil); code != http.StatusNotFound {
		t.Errorf("tau parse happens after id lookup: want 404 first")
	}
}
