package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bnet"
)

// submitChainJob submits the deterministic A→B→C chain and waits for
// it to finish; the learned graph has exactly the edges A→B and B→C at
// the default threshold (pinned by the v1 goldens).
func submitChainJob(t *testing.T, base string) string {
	t.Helper()
	code, b := doJSON(t, http.MethodPost, base+"/v2/jobs", map[string]any{
		"csv": chainCSV(), "header": true, "center": true,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit chain: HTTP %d\n%s", code, b)
	}
	st := decodeStatus(t, b)
	pollUntil(t, base, st.ID, Done, 30*time.Second)
	return st.ID
}

func TestHTTPQueryRoutes(t *testing.T) {
	srv, _ := newTestServer(t)
	base := srv.URL
	id := submitChainJob(t, base)

	// Summary: shape, acyclicity, names.
	code, b := doJSON(t, http.MethodGet, base+"/v2/jobs/"+id+"/query/summary", nil)
	if code != http.StatusOK {
		t.Fatalf("summary: HTTP %d\n%s", code, b)
	}
	var sum querySummary
	if err := json.Unmarshal(b, &sum); err != nil {
		t.Fatalf("summary decode: %v\n%s", err, b)
	}
	if sum.Job != id || sum.Tau != 0.3 || sum.D != 3 || sum.Edges != 2 || !sum.IsDAG {
		t.Fatalf("summary: %+v", sum)
	}
	if len(sum.Names) != 3 || sum.Names[0] != "A" || sum.Names[2] != "C" {
		t.Fatalf("summary names: %v", sum.Names)
	}

	// Parents and children of the middle node, addressed by name and by
	// decimal index — both spellings must resolve to the same node.
	for _, node := range []string{"B", "1"} {
		code, b = doJSON(t, http.MethodGet, base+"/v2/jobs/"+id+"/query/parents?node="+node, nil)
		var nb queryNeighbors
		if code != http.StatusOK || json.Unmarshal(b, &nb) != nil {
			t.Fatalf("parents(%s): HTTP %d\n%s", node, code, b)
		}
		if nb.Node.Index != 1 || nb.Node.Name != "B" || len(nb.Parents) != 1 || nb.Parents[0].Name != "A" {
			t.Fatalf("parents(%s): %+v", node, nb)
		}
	}
	code, b = doJSON(t, http.MethodGet, base+"/v2/jobs/"+id+"/query/children?node=B", nil)
	var nb queryNeighbors
	if code != http.StatusOK || json.Unmarshal(b, &nb) != nil {
		t.Fatalf("children: HTTP %d\n%s", code, b)
	}
	if len(nb.Children) != 1 || nb.Children[0].Name != "C" || nb.Children[0].Weight == 0 {
		t.Fatalf("children: %+v", nb)
	}

	// Markov blanket of B in a chain: its parent A and its child C.
	code, b = doJSON(t, http.MethodGet, base+"/v2/jobs/"+id+"/query/blanket?node=B", nil)
	var mb queryBlanket
	if code != http.StatusOK || json.Unmarshal(b, &mb) != nil {
		t.Fatalf("blanket: HTTP %d\n%s", code, b)
	}
	if len(mb.Blanket) != 2 || mb.Blanket[0].Name != "A" || mb.Blanket[1].Name != "C" {
		t.Fatalf("blanket: %+v", mb)
	}

	// d-separation: the chain connects A and C, and conditioning on B
	// blocks it.
	for _, c := range []struct {
		q    string
		want bool
	}{
		{"x=A&y=C", false},
		{"x=A&y=C&z=B", true},
		{"x=0&y=2&z=1", true},
	} {
		code, b = doJSON(t, http.MethodGet, base+"/v2/jobs/"+id+"/query/dsep?"+c.q, nil)
		var ds queryDSep
		if code != http.StatusOK || json.Unmarshal(b, &ds) != nil {
			t.Fatalf("dsep?%s: HTTP %d\n%s", c.q, code, b)
		}
		if ds.DSeparated != c.want {
			t.Fatalf("dsep?%s = %v, want %v", c.q, ds.DSeparated, c.want)
		}
	}

	// Status-code contracts.
	for _, c := range []struct {
		path string
		want int
	}{
		{"/v2/jobs/nope/query/summary", http.StatusNotFound},
		{"/v2/jobs/" + id + "/query/frobnicate", http.StatusNotFound},
		{"/v2/jobs/" + id + "/query/summary?tau=bogus", http.StatusBadRequest},
		{"/v2/jobs/" + id + "/query/summary?tau=-1", http.StatusBadRequest},
		{"/v2/jobs/" + id + "/query/parents", http.StatusBadRequest},        // missing node
		{"/v2/jobs/" + id + "/query/parents?node=Z", http.StatusBadRequest}, // unknown node
		{"/v2/jobs/" + id + "/query/dsep?y=C", http.StatusBadRequest},       // missing x
		{"/v2/jobs/" + id + "/query/dsep?x=A&y=C&z=A,Z", http.StatusBadRequest},
	} {
		if code, b := doJSON(t, http.MethodGet, base+c.path, nil); code != c.want {
			t.Errorf("GET %s: HTTP %d, want %d\n%s", c.path, code, c.want, b)
		}
	}
}

// TestHTTPQueryNotDone pins the 409 contract: querying a job that has
// no result yet is a conflict, not an error or an empty answer.
func TestHTTPQueryNotDone(t *testing.T) {
	srv, _ := newTestServer(t) // MaxConcurrent 1: the second job queues
	base := srv.URL

	code, b := doJSON(t, http.MethodPost, base+"/v1/jobs", erSubmission(77))
	if code != http.StatusAccepted {
		t.Fatalf("submit slow: HTTP %d\n%s", code, b)
	}
	code, b = doJSON(t, http.MethodPost, base+"/v1/jobs", erSubmission(78))
	if code != http.StatusAccepted {
		t.Fatalf("submit queued: HTTP %d\n%s", code, b)
	}
	queued := decodeStatus(t, b)
	for _, path := range []string{"/query/summary", "/query/dsep?x=0&y=1", "/graph"} {
		if code, b := doJSON(t, http.MethodGet, base+"/v2/jobs/"+queued.ID+path, nil); code != http.StatusConflict {
			t.Errorf("GET %s on queued job: HTTP %d, want 409\n%s", path, code, b)
		}
	}
}

func TestHTTPBatchEdges(t *testing.T) {
	leakCheck(t)
	srv, _ := newTestServer(t)
	base := srv.URL

	// Two distinct tasks plus one duplicate: the duplicate dedupes (or
	// lands a born-done cache hit) and must contribute one graph, not
	// two, to the aggregation.
	tasks := []map[string]any{
		batchTaskJSON("a", 900),
		batchTaskJSON("b", 910),
		batchTaskJSON("a-dup", 900),
	}
	code, body := doJSON(t, http.MethodPost, base+"/v2/batches", map[string]any{"tasks": tasks})
	if code != http.StatusAccepted {
		t.Fatalf("submit batch: HTTP %d\n%s", code, body)
	}
	st := pollBatch(t, base, decodeBatchStatus(t, body).ID, BatchDone, 60*time.Second)

	code, body = doJSON(t, http.MethodGet, base+"/v2/batches/"+st.ID+"/edges", nil)
	if code != http.StatusOK {
		t.Fatalf("edges: HTTP %d\n%s", code, body)
	}
	var er batchEdgesResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("edges decode: %v\n%s", err, body)
	}
	// A born-done duplicate mints its own job over the same result, so
	// the distinct-job count can be 2 (deduped) or 3 (cached); either
	// way every support value must be consistent with it.
	if er.Batch != st.ID || er.Tau != 0.3 || er.Graphs < 2 || er.Graphs > 3 || er.Missing != 0 {
		t.Fatalf("edges header: %+v", er)
	}
	if er.TotalEdges != len(er.Edges) || len(er.Edges) == 0 {
		t.Fatalf("edge count: total %d, rows %d", er.TotalEdges, len(er.Edges))
	}
	for i, e := range er.Edges {
		if e.Count < 1 || e.Count > er.Graphs || e.Support != float64(e.Count)/float64(er.Graphs) {
			t.Fatalf("edge %d support: %+v (graphs %d)", i, e, er.Graphs)
		}
		if e.From == "" || e.To == "" || e.MeanWeight == 0 {
			t.Fatalf("edge %d fields: %+v", i, e)
		}
		if i > 0 && e.Count > er.Edges[i-1].Count {
			t.Fatalf("edges not sorted by count: row %d", i)
		}
	}

	// min_support drops every edge below the bar; limit truncates rows
	// but reports the pre-trim total.
	code, body = doJSON(t, http.MethodGet, base+"/v2/batches/"+st.ID+"/edges?min_support=1", nil)
	var full batchEdgesResponse
	if code != http.StatusOK || json.Unmarshal(body, &full) != nil {
		t.Fatalf("edges min_support=1: HTTP %d\n%s", code, body)
	}
	for _, e := range full.Edges {
		if e.Support != 1 {
			t.Fatalf("min_support=1 kept support %v", e.Support)
		}
	}
	code, body = doJSON(t, http.MethodGet, base+"/v2/batches/"+st.ID+"/edges?limit=1", nil)
	var lim batchEdgesResponse
	if code != http.StatusOK || json.Unmarshal(body, &lim) != nil {
		t.Fatalf("edges limit=1: HTTP %d\n%s", code, body)
	}
	if len(lim.Edges) != 1 || lim.TotalEdges != er.TotalEdges {
		t.Fatalf("limit=1: rows %d, total %d (want total %d)", len(lim.Edges), lim.TotalEdges, er.TotalEdges)
	}

	// Parameter and identity contracts.
	for _, c := range []struct {
		path string
		want int
	}{
		{"/v2/batches/nope/edges", http.StatusNotFound},
		{"/v2/batches/" + st.ID + "/edges?min_support=1.5", http.StatusBadRequest},
		{"/v2/batches/" + st.ID + "/edges?min_support=-0.1", http.StatusBadRequest},
		{"/v2/batches/" + st.ID + "/edges?limit=-1", http.StatusBadRequest},
		{"/v2/batches/" + st.ID + "/edges?tau=NaN", http.StatusBadRequest},
	} {
		if code, b := doJSON(t, http.MethodGet, base+c.path, nil); code != c.want {
			t.Errorf("GET %s: HTTP %d, want %d\n%s", c.path, code, c.want, b)
		}
	}
}

// TestHTTPGraphThroughQueryCache is the regression test for routing
// GET /graph through the compiled-form cache: repeat fetches must cost
// one compile total, return bytes identical to the historical
// FromDense + WriteJSON path, and the hit path must not allocate
// per-request compile work.
func TestHTTPGraphThroughQueryCache(t *testing.T) {
	srv, m := newTestServer(t)
	base := srv.URL

	code, b := doJSON(t, http.MethodPost, base+"/v1/jobs", erSubmission(41))
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d\n%s", code, b)
	}
	id := decodeStatus(t, b).ID
	pollUntil(t, base, id, Done, 60*time.Second)

	_, misses0, _ := m.QueryCacheStats()
	var first []byte
	for i := 0; i < 10; i++ {
		code, b := doJSON(t, http.MethodGet, base+"/v2/jobs/"+id+"/graph", nil)
		if code != http.StatusOK {
			t.Fatalf("graph fetch %d: HTTP %d\n%s", i, code, b)
		}
		if i == 0 {
			first = b
		} else if !bytes.Equal(b, first) {
			t.Fatalf("graph fetch %d differs from first:\n%s\nvs\n%s", i, b, first)
		}
	}
	hits, misses, _ := m.QueryCacheStats()
	if misses-misses0 != 1 {
		t.Fatalf("10 graph fetches compiled %d times, want 1 (hits %d)", misses-misses0, hits)
	}

	// Byte compatibility with the pre-cache render path.
	j, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	res, names, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := bnet.FromDense(res.Weights, 0.3, names).WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, want.Bytes()) {
		t.Fatalf("graph bytes drifted from FromDense+WriteJSON:\n%s\nvs\n%s", first, want.Bytes())
	}

	// The d=15 compile builds CSR arrays, ancestor bitsets and a JSON
	// render — dozens of allocations. The hit path is a map lookup plus
	// the build closure m.Compiled hands the cache, so a handful of
	// allocs per call proves no recompile happened.
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := m.Compiled(j, 0.3); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Fatalf("cache-hit Compiled allocates %.0f/op — recompiling?", allocs)
	}
}

// TestHTTPQueryChaosUnderEvictionAndCancel hammers the read side while
// the write side churns: batches mint jobs past a tiny MaxHistory (so
// history eviction keeps deleting terminal jobs, including the hammer
// target) and half the batches are cancelled mid-flight. The contract
// under churn is graceful degradation — every response is 200, 404 or
// 409, never a 5xx, and the server survives to answer /metrics. Run
// under -race this doubles as the lock-free-reads proof.
func TestHTTPQueryChaosUnderEvictionAndCancel(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 2, QueueDepth: 512, MaxHistory: 8, BatchBacklog: 4096})
	srv := httptest.NewServer(NewAPI(m).Handler())
	t.Cleanup(func() {
		srv.Close()
		shutdown(t, m)
	})
	base := srv.URL
	id := submitChainJob(t, base)

	paths := []string{
		"/v2/jobs/" + id + "/query/summary",
		"/v2/jobs/" + id + "/query/parents?node=B",
		"/v2/jobs/" + id + "/query/blanket?node=1",
		"/v2/jobs/" + id + "/query/dsep?x=A&y=C&z=B",
		"/v2/jobs/" + id + "/graph?tau=0.4",
	}
	stop := make(chan struct{})
	var requests atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(base + paths[(w+i)%len(paths)])
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				requests.Add(1)
				switch resp.StatusCode {
				case http.StatusOK, http.StatusNotFound, http.StatusConflict:
				default:
					t.Errorf("worker %d: GET %s → HTTP %d", w, paths[(w+i)%len(paths)], resp.StatusCode)
					return
				}
			}
		}(w)
	}

	for round := 0; round < 4; round++ {
		tasks := make([]map[string]any, 5)
		for i := range tasks {
			tasks[i] = batchTaskJSON(fmt.Sprintf("r%dt%d", round, i), int64(2000+round*10+i))
		}
		code, body := doJSON(t, http.MethodPost, base+"/v2/batches", map[string]any{"tasks": tasks})
		if code != http.StatusAccepted {
			t.Fatalf("round %d submit: HTTP %d\n%s", round, code, body)
		}
		bid := decodeBatchStatus(t, body).ID
		if round%2 == 0 {
			// Cancel mid-flight; 409 means it already finished, which is
			// fine — the point is racing cancellation against readers.
			if code, body := doJSON(t, http.MethodDelete, base+"/v2/batches/"+bid, nil); code != http.StatusOK && code != http.StatusConflict {
				t.Fatalf("round %d cancel: HTTP %d\n%s", round, code, body)
			}
		} else {
			pollBatch(t, base, bid, BatchDone, 60*time.Second)
		}
		// Race the edge-confidence aggregation against the churn too.
		if code, body := doJSON(t, http.MethodGet, base+"/v2/batches/"+bid+"/edges?limit=5", nil); code != http.StatusOK {
			t.Fatalf("round %d edges: HTTP %d\n%s", round, code, body)
		}
	}
	// Let the hammers keep racing the post-cancel teardown until the
	// sample is big enough to mean something.
	deadline := time.Now().Add(10 * time.Second)
	for requests.Load() < 200 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if n := requests.Load(); n < 200 {
		t.Fatalf("hammer made only %d requests — churn loop too short to prove anything", n)
	}
	if code, body := doJSON(t, http.MethodGet, base+"/metrics", nil); code != http.StatusOK {
		t.Fatalf("post-chaos metrics: HTTP %d\n%s", code, body)
	}
}
