package serve

import (
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

// The golden tests pin the v1 HTTP JSON shapes — key set, key order,
// indentation, status codes — against the Spec-backed handlers, so the
// redesign (and every future change) provably keeps the frozen v1
// surface byte-compatible. Volatile values (timestamps, iteration
// counters, learned weights) are normalized to placeholders before
// comparison; everything else must match byte-for-byte.

var (
	goldenTimeRE   = regexp.MustCompile(`"(created|started|finished)": "[^"]+"`)
	goldenVolRE    = regexp.MustCompile(`"(solves|inner_iters|delta|elapsed_ms)": [-+0-9.eE]+`)
	goldenWeightRE = regexp.MustCompile(`"weight": [-+0-9.eE]+`)
	goldenFPRE     = regexp.MustCompile(`"(fingerprint|dataset_fingerprint)": "[0-9a-f]{64}"`)
)

func normalizeGolden(b []byte) string {
	s := goldenTimeRE.ReplaceAllString(string(b), `"$1": "<time>"`)
	s = goldenVolRE.ReplaceAllString(s, `"$1": <n>`)
	s = goldenWeightRE.ReplaceAllString(s, `"weight": <n>`)
	s = goldenFPRE.ReplaceAllString(s, `"$1": "<fp>"`)
	return s
}

// chainCSV builds the deterministic A→B→C chain used across the smoke
// tests (xorshift pseudo-noise, so the learned weights are identical
// on every platform).
func chainCSV() string {
	var sb strings.Builder
	sb.WriteString("A,B,C\n")
	state := uint64(42)
	noise := func() float64 {
		var s float64
		for k := 0; k < 4; k++ {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			s += float64(state%1000)/1000.0 - 0.5
		}
		return s * 0.1
	}
	for i := 0; i < 150; i++ {
		a := noise() * 10
		bv := 1.5*a + noise()
		c := -1.2*bv + noise()
		fmt.Fprintf(&sb, "%.6f,%.6f,%.6f\n", a, bv, c)
	}
	return sb.String()
}

const goldenSubmitQueued = `{
  "id": "j00000002",
  "state": "queued",
  "vars": 3,
  "samples": 150,
  "created": "<time>",
  "solves": <n>,
  "inner_iters": <n>,
  "delta": <n>,
  "elapsed_ms": <n>
}
`

const goldenStatusDone = `{
  "id": "j00000002",
  "state": "done",
  "vars": 3,
  "samples": 150,
  "created": "<time>",
  "started": "<time>",
  "finished": "<time>",
  "solves": <n>,
  "inner_iters": <n>,
  "delta": <n>,
  "elapsed_ms": <n>,
  "converged": true
}
`

const goldenResubmitCached = `{
  "id": "j00000003",
  "state": "done",
  "cached": true,
  "vars": 3,
  "samples": 150,
  "created": "<time>",
  "started": "<time>",
  "finished": "<time>",
  "solves": <n>,
  "inner_iters": <n>,
  "delta": <n>,
  "elapsed_ms": <n>,
  "converged": true
}
`

const goldenGraph = `{
  "nodes": [
    "A",
    "B",
    "C"
  ],
  "edges": [
    {
      "from": 0,
      "to": 1,
      "weight": <n>
    },
    {
      "from": 1,
      "to": 2,
      "weight": <n>
    }
  ]
}
`

const goldenCancelDoneConflict = `{
  "error": "serve: job already finished"
}
`

const goldenUnknownJob = `{
  "error": "serve: unknown job"
}
`

const goldenMissingSamples = `{
  "error": "missing samples: provide csv or samples"
}
`

// The deliberate v1 tightening (DESIGN.md §5): out-of-range option
// values that the pre-Spec handlers fed to the learner unvalidated
// now draw the shared Spec validation's 400.
const goldenOutOfRangeOption = `{
  "error": "least: invalid spec: alpha must be in [0, 1], got 1.5"
}
`

// healthz is a liveness endpoint, not part of the frozen v1 job
// surface: keys are additive ("batches" arrived with the PR 5 fleet
// subsystem). The golden still pins the exact shape so additions stay
// deliberate.
const goldenHealth = `{
  "batches": 0,
  "cache_entries": 1,
  "cache_hits": 1,
  "cache_misses": 2,
  "jobs": 3,
  "status": "ok"
}
`

// The v2 goldens pin the additive dataset-identity surface introduced
// with by-reference serving: the registration response and the v2
// status keys (method, n, d, dataset_fingerprint). v1 shapes above
// stay untouched — that is the point.
const goldenDatasetCreated = `{
  "id": "d00000001",
  "fingerprint": "<fp>",
  "n": 150,
  "d": 3,
  "names": [
    "A",
    "B",
    "C"
  ],
  "created": "<time>"
}
`

const goldenSubmitByRefDone = `{
  "id": "j00000001",
  "state": "done",
  "vars": 3,
  "samples": 150,
  "created": "<time>",
  "started": "<time>",
  "finished": "<time>",
  "solves": <n>,
  "inner_iters": <n>,
  "delta": <n>,
  "elapsed_ms": <n>,
  "converged": true,
  "method": "least",
  "n": 150,
  "d": 3,
  "dataset_fingerprint": "<fp>"
}
`

func TestHTTPV2GoldenShapes(t *testing.T) {
	srv, _ := newTestServer(t)
	base := srv.URL

	code, b := doJSON(t, http.MethodPost, base+"/v2/datasets", map[string]any{
		"csv": chainCSV(), "header": true,
	})
	if code != http.StatusCreated {
		t.Fatalf("register: HTTP %d\n%s", code, b)
	}
	if got := normalizeGolden(b); got != goldenDatasetCreated {
		t.Errorf("dataset registration drifted from the v2 golden:\n got: %s\nwant: %s", got, goldenDatasetCreated)
	}

	code, b = doJSON(t, http.MethodPost, base+"/v2/jobs", map[string]any{
		"dataset_ref": "d00000001",
		"spec":        map[string]any{"lambda": 0.1, "epsilon": 0.001, "parallelism": 1},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit by ref: HTTP %d\n%s", code, b)
	}
	pollUntil(t, base, "j00000001", Done, 60*time.Second)
	code, b = doJSON(t, http.MethodGet, base+"/v2/jobs/j00000001", nil)
	if code != http.StatusOK {
		t.Fatalf("status: HTTP %d", code)
	}
	if got := normalizeGolden(b); got != goldenSubmitByRefDone {
		t.Errorf("v2 done status drifted from the golden:\n got: %s\nwant: %s", got, goldenSubmitByRefDone)
	}
}

func TestHTTPV1GoldenShapes(t *testing.T) {
	srv, m := newTestServer(t)
	base := srv.URL

	// Block the single pool slot so the golden submission is
	// deterministically queued when its response is written.
	xs, os := slowDataset(91)
	blocker, err := m.Submit(xs, nil, os)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, Running, 10*time.Second)

	// The golden job: deterministic chain data, serial execution.
	submit := map[string]any{
		"csv": chainCSV(), "header": true, "center": true,
		"options": map[string]any{"lambda": 0.1, "epsilon": 0.001, "parallelism": 1},
	}
	code, b := doJSON(t, http.MethodPost, base+"/v1/jobs", submit)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d\n%s", code, b)
	}
	if got := normalizeGolden(b); got != goldenSubmitQueued {
		t.Errorf("submit response drifted from the v1 golden:\n got: %s\nwant: %s", got, goldenSubmitQueued)
	}

	// Unblock the pool and let the golden job finish.
	if _, err := m.Cancel(blocker.ID()); err != nil {
		t.Fatal(err)
	}
	st := pollUntil(t, base, "j00000002", Done, 60*time.Second)
	if !st.Converged {
		t.Fatalf("golden job must converge for a stable shape: %+v", st)
	}
	code, b = doJSON(t, http.MethodGet, base+"/v1/jobs/j00000002", nil)
	if code != http.StatusOK {
		t.Fatalf("status: HTTP %d", code)
	}
	if got := normalizeGolden(b); got != goldenStatusDone {
		t.Errorf("done status drifted from the v1 golden:\n got: %s\nwant: %s", got, goldenStatusDone)
	}

	// Identical resubmission: 200, born done, cached marker present.
	code, b = doJSON(t, http.MethodPost, base+"/v1/jobs", submit)
	if code != http.StatusOK {
		t.Fatalf("cached resubmit: HTTP %d\n%s", code, b)
	}
	if got := normalizeGolden(b); got != goldenResubmitCached {
		t.Errorf("cached response drifted from the v1 golden:\n got: %s\nwant: %s", got, goldenResubmitCached)
	}

	// The learned network: fixed node names, the planted chain edges,
	// weights normalized.
	code, b = doJSON(t, http.MethodGet, base+"/v1/jobs/j00000002/graph?tau=0.3", nil)
	if code != http.StatusOK {
		t.Fatalf("graph: HTTP %d\n%s", code, b)
	}
	if got := normalizeGolden(b); got != goldenGraph {
		t.Errorf("graph drifted from the v1 golden:\n got: %s\nwant: %s", got, goldenGraph)
	}

	// Error shapes.
	code, b = doJSON(t, http.MethodDelete, base+"/v1/jobs/j00000002", nil)
	if code != http.StatusConflict || string(b) != goldenCancelDoneConflict {
		t.Errorf("cancel-done shape: HTTP %d\n got: %swant: %s", code, b, goldenCancelDoneConflict)
	}
	code, b = doJSON(t, http.MethodGet, base+"/v1/jobs/nope", nil)
	if code != http.StatusNotFound || string(b) != goldenUnknownJob {
		t.Errorf("unknown-job shape: HTTP %d\n got: %swant: %s", code, b, goldenUnknownJob)
	}
	code, b = doJSON(t, http.MethodPost, base+"/v1/jobs", map[string]any{})
	if code != http.StatusBadRequest || string(b) != goldenMissingSamples {
		t.Errorf("empty-submit shape: HTTP %d\n got: %swant: %s", code, b, goldenMissingSamples)
	}
	badOpts := map[string]any{
		"csv": chainCSV(), "header": true,
		"options": map[string]any{"alpha": 1.5},
	}
	code, b = doJSON(t, http.MethodPost, base+"/v1/jobs", badOpts)
	if code != http.StatusBadRequest || string(b) != goldenOutOfRangeOption {
		t.Errorf("out-of-range option shape: HTTP %d\n got: %swant: %s", code, b, goldenOutOfRangeOption)
	}

	// Liveness counters: fully deterministic at this point in the
	// lifecycle (three submissions, one cache hit, one stored result).
	code, b = doJSON(t, http.MethodGet, base+"/healthz", nil)
	if code != http.StatusOK || string(b) != goldenHealth {
		t.Errorf("healthz shape: HTTP %d\n got: %swant: %s", code, b, goldenHealth)
	}
}
