package serve

// Journal recovery (DESIGN.md §11): OpenManager replays the snapshot +
// tail written by the previous incarnation and rebuilds the fleet —
// dataset store, result cache, job table, batches — before the worker
// pool starts. The fold is deliberately order- and duplicate-tolerant:
// the async emitter can enqueue records in an order that differs from
// the in-memory transition order, and a compaction snapshot can overlap
// the tail records written around it, so every record type is folded
// first-wins by id (terminals included) and only then materialized.
//
// Recovery policy per object:
//   - datasets: live registrations are restored with their original ids
//     (drops subtracted; ids are never reissued).
//   - result cache: journaled entries and Done-job results are re-put
//     in stream order, reproducing the LRU ranking.
//   - terminal jobs/batches: restored as metadata (results included for
//     Done jobs), so status and graph queries keep answering.
//   - pending batch tasks: re-resolved from the journaled manifest and
//     re-enqueued on per-batch lanes in original admission order — the
//     round-robin schedule resumes where the crash cut it.
//   - pending interactive jobs: failed with the typed "restart" code —
//     the submitting client is gone, and silently re-running a learn
//     nobody will collect wastes pool time.

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro"
	"repro/internal/journal"
)

// recoveredState is the first-pass fold of the replayed records.
type recoveredState struct {
	datasets []datasetRecord
	dsSeen   map[string]bool
	dsDrop   map[string]bool

	jobs    []jobRecord
	jobSeen map[string]bool
	terms   map[string]jobTerminalRecord

	batches   []batchRecord
	batchSeen map[string]bool
	bterms    map[string]batchTerminalRecord

	cacheOps []cacheOp
}

// cacheOp is one replayed result-cache mutation; res == nil is an
// eviction.
type cacheOp struct {
	key string
	res *resultRecord
}

func newRecoveredState() *recoveredState {
	return &recoveredState{
		dsSeen:    make(map[string]bool),
		dsDrop:    make(map[string]bool),
		jobSeen:   make(map[string]bool),
		terms:     make(map[string]jobTerminalRecord),
		batchSeen: make(map[string]bool),
		bterms:    make(map[string]batchTerminalRecord),
	}
}

func (rs *recoveredState) addJob(jr jobRecord) {
	if jr.ID == "" || rs.jobSeen[jr.ID] {
		return
	}
	rs.jobSeen[jr.ID] = true
	rs.jobs = append(rs.jobs, jr)
}

// apply folds one record. A payload that fails to parse is skipped —
// it passed its CRC, so this is schema drift, and losing one record
// beats refusing to start the daemon.
func (rs *recoveredState) apply(rec journal.Record) {
	switch rec.Type {
	case recDataset:
		var r datasetRecord
		if json.Unmarshal(rec.Data, &r) != nil || r.Info.ID == "" || rs.dsSeen[r.Info.ID] {
			return
		}
		rs.dsSeen[r.Info.ID] = true
		rs.datasets = append(rs.datasets, r)
	case recDatasetDrop:
		var r datasetDropRecord
		if json.Unmarshal(rec.Data, &r) == nil {
			rs.dsDrop[r.ID] = true
		}
	case recJob:
		var r jobRecord
		if json.Unmarshal(rec.Data, &r) == nil {
			rs.addJob(r)
		}
	case recJobTerminal:
		var r jobTerminalRecord
		if json.Unmarshal(rec.Data, &r) != nil || r.ID == "" {
			return
		}
		if _, ok := rs.terms[r.ID]; !ok {
			rs.terms[r.ID] = r
		}
		if r.State == Done && r.Result != nil && r.Key != "" {
			rs.cacheOps = append(rs.cacheOps, cacheOp{key: r.Key, res: r.Result})
		}
	case recBatch:
		var r batchRecord
		if json.Unmarshal(rec.Data, &r) != nil {
			return
		}
		for _, jr := range r.Jobs {
			rs.addJob(jr)
		}
		if r.ID == "" || rs.batchSeen[r.ID] {
			return
		}
		rs.batchSeen[r.ID] = true
		rs.batches = append(rs.batches, r)
	case recBatchTerminal:
		var r batchTerminalRecord
		if json.Unmarshal(rec.Data, &r) != nil || r.ID == "" {
			return
		}
		if _, ok := rs.bterms[r.ID]; !ok {
			rs.bterms[r.ID] = r
		}
	case recCacheEntry:
		var r cacheEntryRecord
		if json.Unmarshal(rec.Data, &r) == nil && r.Key != "" && r.Result != nil {
			rs.cacheOps = append(rs.cacheOps, cacheOp{key: r.Key, res: r.Result})
		}
	case recCacheEvict:
		var r cacheEvictRecord
		if json.Unmarshal(rec.Data, &r) == nil && r.Key != "" {
			rs.cacheOps = append(rs.cacheOps, cacheOp{key: r.Key})
		}
	}
	// Unknown record types are tolerated: a newer daemon's journal must
	// not brick an older one.
}

// recovery carries the rebuild context. Recovery runs single-threaded
// before the worker pool starts, so direct field writes are safe; the
// manager locks are still taken where shared helpers expect them.
type recovery struct {
	m        *Manager
	rs       *recoveredState
	now      time.Time
	enqueued map[string]bool // job id → re-enqueued by an earlier batch
}

// recoverJournal replays dir and rebuilds the manager's state. Called
// from OpenManager before the journal writer opens and before any
// worker starts. A torn or CRC-broken tail is the normal crash
// signature — the intact prefix is recovered and replay stops there.
func (m *Manager) recoverJournal(dir string) error {
	rs := newRecoveredState()
	count, _, err := journal.Replay(dir, func(rec journal.Record) error {
		rs.apply(rec)
		return nil
	})
	if err != nil {
		return fmt.Errorf("serve: journal replay: %w", err)
	}
	if count == 0 {
		return nil
	}
	m.met.JournalReplayed.Store(int64(count))
	rc := &recovery{m: m, rs: rs, now: time.Now(), enqueued: make(map[string]bool)}

	// Datasets first: pending batch tasks re-resolve through the store.
	for _, dr := range rs.datasets {
		m.datasets.seedID(dr.Info.ID) // even dropped ids stay burned
		if rs.dsDrop[dr.Info.ID] {
			continue
		}
		if ds, err := dr.dataset(); err == nil {
			m.datasets.restore(dr.Info, ds)
		}
	}
	// Result cache in stream order (put order reproduces the LRU
	// ranking; the evict hook is not attached yet, so replayed
	// evictions are not re-journaled).
	for _, op := range rs.cacheOps {
		if op.res == nil {
			m.cache.remove(op.key)
			continue
		}
		if res, err := op.res.result(); err == nil {
			m.cache.put(op.key, res)
		}
	}
	// Jobs, in admission order.
	maxJob := 0
	for _, jr := range rs.jobs {
		j := rc.restoreJob(jr)
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		var n int
		if _, err := fmt.Sscanf(jr.ID, "j%d", &n); err == nil && n > maxJob {
			maxJob = n
		}
	}
	m.nextID = maxJob
	// Batches, in admission order — lane creation order is batch order,
	// so the round-robin schedule resumes in the original lane order.
	bm := m.batches
	maxBatch := 0
	for _, br := range rs.batches {
		b := rc.restoreBatch(br)
		bm.batches[b.id] = b
		bm.order = append(bm.order, b.id)
		var n int
		if _, err := fmt.Sscanf(br.ID, "b%d", &n); err == nil && n > maxBatch {
			maxBatch = n
		}
	}
	bm.nextID = maxBatch
	// Any batch job left queued but re-enqueued by no batch (its batch
	// record was lost past the history bound or to the torn tail) is
	// interrupted work nobody can resume: typed restart failure.
	for _, jr := range rs.jobs {
		j := m.jobs[jr.ID]
		if j != nil && !j.state.Terminal() && !rc.enqueued[j.id] {
			rc.restartFail(j)
		}
	}
	m.evictHistoryLocked()
	return nil
}

// restartFail marks a recovered job failed with the typed "restart"
// code. Recovery is single-threaded, so no locking.
func (rc *recovery) restartFail(j *Job) {
	j.state = Failed
	j.code = TaskCodeRestart
	j.err = ErrRestart
	j.finished = rc.now
	j.data = nil
	rc.m.met.JournalRestarts.Add(1)
}

// restoreJob rebuilds one job from its admission record, applying its
// terminal record when one was journaled. Non-terminal batch jobs are
// left queued for restoreBatch to resume; non-terminal interactive
// jobs fail with the typed restart code.
func (rc *recovery) restoreJob(jr jobRecord) *Job {
	m := rc.m
	j := &Job{
		id:      jr.ID,
		key:     jr.Key,
		names:   jr.Names,
		n:       jr.N,
		d:       jr.D,
		fp:      jr.Fingerprint,
		center:  jr.Center,
		batch:   jr.Batch,
		state:   Queued,
		created: jr.Created,
	}
	j.cond = sync.NewCond(&j.mu)
	j.observers = append(j.observers, func(st Status) { m.jobTerminal(j, st) })
	j.spec = &least.Spec{}
	if len(jr.Spec) > 0 {
		if err := json.Unmarshal(jr.Spec, j.spec); err != nil {
			j.spec = &least.Spec{}
		}
	}
	term, ok := rc.rs.terms[jr.ID]
	if !ok {
		if !jr.Batch {
			rc.restartFail(j)
		}
		return j
	}
	j.state = term.State
	j.cached = term.Cached
	j.code = term.Code
	j.finished = term.Finished
	if term.Error != "" {
		j.err = errors.New(term.Error)
	}
	if term.State == Done {
		if term.Result != nil {
			if res, err := term.Result.result(); err == nil {
				j.result = res
			}
		}
		if j.result == nil {
			// Duplicate-terminal fold may have kept a record without the
			// payload; the replayed cache is the fallback.
			if res, ok := m.cache.peek(j.key); ok {
				j.result = res
			}
		}
		if j.result == nil {
			j.state = Queued
			rc.restartFail(j) // done without a recoverable result
		}
	}
	return j
}

// resolveTask re-materializes the data for one pending batch row from
// the journaled manifest entry.
func (rc *recovery) resolveTask(br batchRecord, i int) (least.Dataset, string, error) {
	if i >= len(br.Tasks) {
		return nil, "", errors.New("serve: journal: no manifest for pending task")
	}
	t := br.Tasks[i]
	if t.DatasetRef != "" {
		ds, _, err := rc.m.datasets.get(t.DatasetRef)
		if err != nil {
			return nil, "", err
		}
		return ds, t.DatasetRef, nil
	}
	ds, err := t.Data(least.DatasetOptions{})
	if err != nil {
		return nil, "", err
	}
	return ds, "", nil
}

// restoreBatch rebuilds one batch: terminal batches from their sealed
// row table, live batches by folding job terminals into the admission
// rows and resuming the pending remainder on a fresh per-batch lane.
func (rc *recovery) restoreBatch(br batchRecord) *Batch {
	m := rc.m
	b := &Batch{
		id:      br.ID,
		created: br.Created,
		m:       m,
		state:   BatchRunning,
		refs:    make(map[*Job][]int),
	}
	b.cond = sync.NewCond(&b.mu)

	rows := br.Rows
	bt, sealed := rc.rs.bterms[br.ID]
	if sealed && len(bt.Rows) == len(rows) {
		rows = bt.Rows // the sealed table carries the final verdicts
	}
	for _, rr := range rows {
		b.tasks = append(b.tasks, &batchTask{
			label:   rr.Label,
			state:   rr.State,
			cached:  rr.Cached,
			deduped: rr.Deduped,
			jobID:   rr.Job,
			code:    rr.Code,
			err:     rr.Error,
		})
	}

	if sealed {
		for _, t := range b.tasks {
			if !t.state.Terminal() {
				// A sealed batch's rows are all terminal in a consistent
				// journal; degrade a torn row to a typed restart failure.
				t.state = Failed
				t.code = TaskCodeRestart
				t.err = ErrRestart.Error()
			}
			b.admitTaskLocked(t)
		}
		b.state = bt.State
		b.finished = bt.Finished
		b.refs = nil
		return b
	}

	// Live batch: settle every row a journaled terminal decides, then
	// group what remains by job for resumption.
	type group struct {
		jobID string
		rows  []int
	}
	var groups []group
	byJob := make(map[string]int)
	for i, t := range b.tasks {
		if t.state.Terminal() {
			continue
		}
		if term, ok := rc.rs.terms[t.jobID]; ok {
			t.state = term.State
			switch term.State {
			case Done:
				if term.Cached {
					t.cached = true
				}
			case Failed:
				t.code = term.Code
				if t.code == "" {
					t.code = TaskCodeInternal
				}
				t.err = term.Error
			case Cancelled:
				t.code = TaskCodeCancelled
				t.err = term.Error
			}
			continue
		}
		// Pending: a running row restarts as queued — its solve died
		// with the old process.
		t.state = Queued
		gi, ok := byJob[t.jobID]
		if !ok {
			gi = len(groups)
			byJob[t.jobID] = gi
			groups = append(groups, group{jobID: t.jobID})
		}
		groups[gi].rows = append(groups[gi].rows, i)
	}

	lane := &jobQueue{id: b.id}
	failRows := func(idxs []int) {
		for _, i := range idxs {
			t := b.tasks[i]
			t.state = Failed
			t.code = TaskCodeRestart
			t.err = ErrRestart.Error()
		}
	}
	hold := func(j *Job, idxs []int) {
		j.waiters++
		b.refs[j] = append(b.refs[j], idxs...)
	}
	for _, g := range groups {
		j := m.jobs[g.jobID]
		if j == nil {
			failRows(g.rows) // admission record lost; nothing to resume
			continue
		}
		if j.state.Terminal() || rc.enqueued[j.id] {
			// Resolved or resumed by an earlier batch — join it; the
			// observer attach below delivers its current state.
			hold(j, g.rows)
			continue
		}
		if res, ok := m.cache.peek(j.key); ok {
			// Another incarnation (or an earlier recovered batch) solved
			// this exact task: born-done, no re-solve. The observer
			// attach resolves the rows.
			j.state = Done
			j.cached = true
			j.result = res
			j.started, j.finished = rc.now, rc.now
			hold(j, g.rows)
			continue
		}
		ds, dsID, err := rc.resolveTask(br, g.rows[0])
		if err != nil {
			rc.restartFail(j)
			failRows(g.rows)
			hold(j, g.rows) // keep the table's job links resolvable
			continue
		}
		j.data = ds
		if dsID != "" {
			j.dsID = dsID
			m.datasets.acquire(dsID)
		}
		hold(j, g.rows)
		rc.enqueued[j.id] = true
		m.mu.Lock()
		m.inflight[j.key] = j
		m.enqueueLocked(lane, j)
		m.mu.Unlock()
		m.met.JournalResumed.Add(int64(len(g.rows)))
	}

	for _, t := range b.tasks {
		b.admitTaskLocked(t)
		if !t.state.Terminal() {
			b.open++
		}
	}
	if b.open == 0 {
		// Every task settled terminal during replay (the batch finished
		// but its seal record was lost): close it now. The emitter is
		// not attached yet, so nothing is re-journaled — the next
		// compaction snapshot records the sealed state.
		b.finishLocked(BatchDone)
	}
	for j := range b.refs {
		j := j
		j.observe(func(st Status) { b.onJob(j, st) })
	}
	return b
}
