package serve

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"repro"
)

// gangJobStatuses waits the batch out and returns the per-job statuses
// in task order.
func gangJobStatuses(t *testing.T, m *Manager, b *Batch) []Status {
	t.Helper()
	waitBatch(t, b, BatchDone, 120*time.Second)
	var sts []Status
	for _, row := range allTasks(t, b, 20) {
		j, err := m.Get(row.Job)
		if err != nil {
			t.Fatalf("job %s: %v", row.Job, err)
		}
		sts = append(sts, j.Status())
	}
	return sts
}

// TestGangRunsSmallBatchConcurrently: with one pool slot whose core
// share covers the whole manifest (Procs 4, MaxConcurrent 1), a 4-task
// small-d batch forms one gang — every member is transitioned to
// Running in the same scheduler critical section, so all start
// timestamps precede every finish timestamp. Without gangs the single
// slot runs the tasks strictly one after another.
func TestGangRunsSmallBatchConcurrently(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1, Procs: 4})
	defer shutdown(t, m)

	specs := make([]BatchTaskSpec, 4)
	for i := range specs {
		specs[i] = tinyTask(int64(11000 + 10*i))
	}
	b, err := m.Batches().Submit(specs)
	if err != nil {
		t.Fatal(err)
	}
	sts := gangJobStatuses(t, m, b)
	maxStart, minFinish := time.Time{}, sts[0].Finished
	for _, st := range sts {
		if st.Started.After(maxStart) {
			maxStart = st.Started
		}
		if st.Finished.Before(minFinish) {
			minFinish = st.Finished
		}
	}
	if maxStart.After(minFinish) {
		t.Fatalf("gang did not run concurrently: last start %v is after first finish %v", maxStart, minFinish)
	}
}

// assertSequential checks that the job runs never overlapped: with a
// single pool slot and gangs out of play, job i+1 is popped only after
// job i's runJob returns.
func assertSequential(t *testing.T, sts []Status, label string) {
	t.Helper()
	sort.Slice(sts, func(i, k int) bool { return sts[i].Started.Before(sts[k].Started) })
	for i := 1; i < len(sts); i++ {
		if sts[i].Started.Before(sts[i-1].Finished) {
			t.Fatalf("%s: job %d started %v before job %d finished %v — a gang formed where none should",
				label, i, sts[i].Started, i-1, sts[i-1].Finished)
		}
	}
}

// TestGangFleetDimCutoff: tasks above the FleetDim cutoff never gang,
// and a negative FleetDim disables gang formation entirely — both
// configurations run a small batch strictly sequentially on one slot.
func TestGangFleetDimCutoff(t *testing.T) {
	for _, tc := range []struct {
		name     string
		fleetDim int
	}{
		{"d-above-cutoff", 4}, // tinyTask has d=6
		{"disabled", -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := NewManager(Config{MaxConcurrent: 1, Procs: 4, FleetDim: tc.fleetDim})
			defer shutdown(t, m)
			specs := make([]BatchTaskSpec, 3)
			for i := range specs {
				specs[i] = tinyTask(int64(12000 + 100*int64(tc.fleetDim&0xff) + 10*int64(i)))
			}
			b, err := m.Batches().Submit(specs)
			if err != nil {
				t.Fatal(err)
			}
			assertSequential(t, gangJobStatuses(t, m, b), tc.name)
		})
	}
}

// TestGangInteractiveJobsExcluded: interactive (non-batch-lane)
// submissions never gang, whatever their size — the slot runs them one
// at a time even when its core share could fuse several.
func TestGangInteractiveJobsExcluded(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1, Procs: 4})
	defer shutdown(t, m)
	var jobs []*Job
	for i := 0; i < 3; i++ {
		x, o := fastDataset(int64(13000 + 10*i))
		j, err := m.Submit(x, nil, o)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	var sts []Status
	for _, j := range jobs {
		sts = append(sts, waitState(t, j, Done, 60*time.Second))
	}
	assertSequential(t, sts, "interactive")
}

// TestGangResultsBitIdentical is the tentpole's determinism gate at
// the serving layer: the same manifest learned through a gang-forming
// manager (Procs 4: members run concurrently with split parallelism)
// and through a gang-free one (Procs 1) must produce bit-identical
// weight matrices — fusing small-d fleets changes the schedule, never
// the numbers.
func TestGangResultsBitIdentical(t *testing.T) {
	specs := func() []BatchTaskSpec {
		out := make([]BatchTaskSpec, 6)
		for i := range out {
			out[i] = tinyTask(int64(14000 + 10*i))
		}
		return out
	}

	weights := func(procs int) []*least.Matrix {
		m := NewManager(Config{MaxConcurrent: 1, Procs: procs})
		defer shutdown(t, m)
		b, err := m.Batches().Submit(specs())
		if err != nil {
			t.Fatal(err)
		}
		waitBatch(t, b, BatchDone, 120*time.Second)
		var ws []*least.Matrix
		for _, row := range allTasks(t, b, 20) {
			j, err := m.Get(row.Job)
			if err != nil {
				t.Fatalf("job %s: %v", row.Job, err)
			}
			res, _, err := j.Result()
			if err != nil {
				t.Fatalf("job %s result: %v", row.Job, err)
			}
			ws = append(ws, res.Weights)
		}
		return ws
	}

	gang, solo := weights(4), weights(1)
	for ti := range gang {
		g, s := gang[ti], solo[ti]
		if g.Rows() != s.Rows() || g.Cols() != s.Cols() {
			t.Fatalf("task %d: shape mismatch", ti)
		}
		for i := 0; i < g.Rows(); i++ {
			for k := 0; k < g.Cols(); k++ {
				gv, sv := g.At(i, k), s.At(i, k)
				if math.Float64bits(gv) != math.Float64bits(sv) {
					t.Fatalf("task %d: W[%d,%d] gang=%v solo=%v (bits %x vs %x)",
						ti, i, k, gv, sv, math.Float64bits(gv), math.Float64bits(sv))
				}
			}
		}
	}
}

// TestGangMixedManifestThroughput exercises gang formation on a larger
// mixed manifest (the many-small-d fleet shape from the paper's
// deployment scenario) just for liveness: everything completes, and
// the per-task results are all present.
func TestGangMixedManifestThroughput(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 2, Procs: 8, BatchBacklog: 256})
	defer shutdown(t, m)
	specs := make([]BatchTaskSpec, 24)
	for i := range specs {
		specs[i] = tinyTask(int64(15000 + 10*i))
		specs[i].Label = fmt.Sprintf("fleet%02d", i)
	}
	b, err := m.Batches().Submit(specs)
	if err != nil {
		t.Fatal(err)
	}
	st := waitBatch(t, b, BatchDone, 120*time.Second)
	if st.Done != len(specs) || st.Failed != 0 {
		t.Fatalf("fleet manifest: %+v", st)
	}
	for _, row := range allTasks(t, b, 50) {
		if row.State != Done || row.Job == "" {
			t.Fatalf("task %d (%s): %+v", row.Index, row.Label, row)
		}
	}
}
