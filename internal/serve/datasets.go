package serve

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro"
)

// ErrUnknownDataset is returned for dataset ids the store has never
// issued or has already evicted; ErrDatasetsDisabled when the store
// was configured away.
var (
	ErrUnknownDataset   = errors.New("serve: unknown dataset")
	ErrDatasetsDisabled = errors.New("serve: dataset store disabled")
)

// DatasetInfo is the client-visible metadata of a registered dataset —
// everything POST /v2/datasets returns and job submissions by
// dataset_ref need.
type DatasetInfo struct {
	ID          string    `json:"id"`
	Fingerprint string    `json:"fingerprint"`
	N           int       `json:"n"`
	D           int       `json:"d"`
	Names       []string  `json:"names,omitempty"`
	Created     time.Time `json:"created"`
}

// datasetStore is a fixed-capacity LRU of registered datasets, keyed
// by id and deduplicated by content fingerprint: re-registering bytes
// the store already holds returns the existing id instead of a second
// copy — the §VI deployment's daily pipelines re-upload the same
// window many times. Jobs hold their own Dataset reference, so
// evicting an entry only invalidates the *id*, never a running learn.
type datasetStore struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	byID   map[string]*list.Element
	byFP   map[string]string // fingerprint → id
	nextID int
}

type datasetEntry struct {
	info DatasetInfo
	ds   least.Dataset
}

func newDatasetStore(capacity int) *datasetStore {
	if capacity <= 0 {
		return nil // disabled
	}
	return &datasetStore{
		cap:  capacity,
		ll:   list.New(),
		byID: make(map[string]*list.Element),
		byFP: make(map[string]string),
	}
}

// register stores a dataset (or dedups onto the existing entry with
// the same fingerprint) and returns its metadata plus whether a new
// entry was created.
func (s *datasetStore) register(ds least.Dataset) (DatasetInfo, bool, error) {
	if s == nil {
		return DatasetInfo{}, false, ErrDatasetsDisabled
	}
	fp := ds.Fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.byFP[fp]; ok {
		el := s.byID[id]
		s.ll.MoveToFront(el)
		return el.Value.(*datasetEntry).info, false, nil
	}
	n, d := ds.Dims()
	s.nextID++
	info := DatasetInfo{
		ID:          fmt.Sprintf("d%08d", s.nextID),
		Fingerprint: fp,
		N:           n,
		D:           d,
		Names:       ds.Names(),
		Created:     time.Now(),
	}
	s.byID[info.ID] = s.ll.PushFront(&datasetEntry{info: info, ds: ds})
	s.byFP[fp] = info.ID
	for s.ll.Len() > s.cap {
		s.evictLocked(s.ll.Back())
	}
	return info, true, nil
}

func (s *datasetStore) evictLocked(el *list.Element) {
	e := el.Value.(*datasetEntry)
	s.ll.Remove(el)
	delete(s.byID, e.info.ID)
	delete(s.byFP, e.info.Fingerprint)
}

// get resolves an id, marking the entry recently used (a job keeps its
// dataset warm).
func (s *datasetStore) get(id string) (least.Dataset, DatasetInfo, error) {
	if s == nil {
		return nil, DatasetInfo{}, ErrDatasetsDisabled
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byID[id]
	if !ok {
		return nil, DatasetInfo{}, ErrUnknownDataset
	}
	s.ll.MoveToFront(el)
	e := el.Value.(*datasetEntry)
	return e.ds, e.info, nil
}

func (s *datasetStore) delete(id string) error {
	if s == nil {
		return ErrDatasetsDisabled
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byID[id]
	if !ok {
		return ErrUnknownDataset
	}
	s.evictLocked(el)
	return nil
}

// len returns the number of stored datasets (0 when disabled).
func (s *datasetStore) len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// list snapshots the store, most recently used first.
func (s *datasetStore) list() []DatasetInfo {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DatasetInfo, 0, s.ll.Len())
	for el := s.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*datasetEntry).info)
	}
	return out
}

// RegisterDataset stores a dataset for by-reference job submission
// (POST /v2/datasets). Registration is idempotent on content: a
// dataset whose fingerprint is already stored returns the existing
// metadata with created=false.
func (m *Manager) RegisterDataset(ds least.Dataset) (DatasetInfo, bool, error) {
	return m.datasets.register(ds)
}

// Dataset resolves a registered dataset id.
func (m *Manager) Dataset(id string) (least.Dataset, DatasetInfo, error) {
	return m.datasets.get(id)
}

// DeleteDataset removes a registered dataset. Jobs already submitted
// against it are unaffected — they hold their own reference.
func (m *Manager) DeleteDataset(id string) error { return m.datasets.delete(id) }

// Datasets lists the registered datasets, most recently used first.
func (m *Manager) Datasets() []DatasetInfo { return m.datasets.list() }
