package serve

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro"
)

// ErrUnknownDataset is returned for dataset ids the store has never
// issued or has already evicted; ErrDatasetsDisabled when the store
// was configured away.
var (
	ErrUnknownDataset   = errors.New("serve: unknown dataset")
	ErrDatasetsDisabled = errors.New("serve: dataset store disabled")
)

// DatasetInfo is the client-visible metadata of a registered dataset —
// everything POST /v2/datasets returns and job submissions by
// dataset_ref need.
type DatasetInfo struct {
	ID          string    `json:"id"`
	Fingerprint string    `json:"fingerprint"`
	N           int       `json:"n"`
	D           int       `json:"d"`
	Names       []string  `json:"names,omitempty"`
	Created     time.Time `json:"created"`
}

// datasetStore is a fixed-capacity LRU of registered datasets, keyed
// by id and deduplicated by content fingerprint: re-registering bytes
// the store already holds returns the existing id instead of a second
// copy — the §VI deployment's daily pipelines re-upload the same
// window many times. Jobs hold their own Dataset reference, so
// evicting an entry only invalidates the *id*, never a running learn.
type datasetStore struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	byID   map[string]*list.Element
	byFP   map[string]string // fingerprint → id
	nextID int
}

type datasetEntry struct {
	info DatasetInfo
	ds   least.Dataset
	// holds counts queued/running by-ref jobs and batch tasks still
	// referencing this id. LRU pressure skips held entries: evicting one
	// would fail those tasks "internal" on re-resolution (and, after a
	// restart, lose the data a journaled pending task needs). An explicit
	// DELETE still wins — clients own their ids.
	holds int
}

func newDatasetStore(capacity int) *datasetStore {
	if capacity <= 0 {
		return nil // disabled
	}
	return &datasetStore{
		cap:  capacity,
		ll:   list.New(),
		byID: make(map[string]*list.Element),
		byFP: make(map[string]string),
	}
}

// register stores a dataset (or dedups onto the existing entry with
// the same fingerprint) and returns its metadata, whether a new entry
// was created, and the ids LRU pressure evicted to make room. Entries
// with live holds are skipped by the eviction scan — the store may
// transiently exceed its capacity rather than drop data a queued
// by-ref task still needs.
func (s *datasetStore) register(ds least.Dataset) (DatasetInfo, bool, []string, error) {
	if s == nil {
		return DatasetInfo{}, false, nil, ErrDatasetsDisabled
	}
	fp := ds.Fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.byFP[fp]; ok {
		el := s.byID[id]
		s.ll.MoveToFront(el)
		return el.Value.(*datasetEntry).info, false, nil, nil
	}
	n, d := ds.Dims()
	s.nextID++
	info := DatasetInfo{
		ID:          fmt.Sprintf("d%08d", s.nextID),
		Fingerprint: fp,
		N:           n,
		D:           d,
		Names:       ds.Names(),
		Created:     time.Now(),
	}
	s.byID[info.ID] = s.ll.PushFront(&datasetEntry{info: info, ds: ds})
	s.byFP[fp] = info.ID
	var evicted []string
	for el := s.ll.Back(); el != nil && s.ll.Len() > s.cap; {
		prev := el.Prev()
		e := el.Value.(*datasetEntry)
		if e.holds == 0 {
			s.evictLocked(el)
			evicted = append(evicted, e.info.ID)
		}
		el = prev
	}
	return info, true, evicted, nil
}

func (s *datasetStore) evictLocked(el *list.Element) {
	e := el.Value.(*datasetEntry)
	s.ll.Remove(el)
	delete(s.byID, e.info.ID)
	delete(s.byFP, e.info.Fingerprint)
}

// get resolves an id, marking the entry recently used (a job keeps its
// dataset warm).
func (s *datasetStore) get(id string) (least.Dataset, DatasetInfo, error) {
	if s == nil {
		return nil, DatasetInfo{}, ErrDatasetsDisabled
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byID[id]
	if !ok {
		return nil, DatasetInfo{}, ErrUnknownDataset
	}
	s.ll.MoveToFront(el)
	e := el.Value.(*datasetEntry)
	return e.ds, e.info, nil
}

// acquire takes a hold on id, pinning it against LRU eviction until
// the matching release. No-op for unknown ids (the entry may already
// be gone) or a disabled store.
func (s *datasetStore) acquire(id string) {
	if s == nil || id == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byID[id]; ok {
		el.Value.(*datasetEntry).holds++
	}
}

// release drops a hold taken by acquire.
func (s *datasetStore) release(id string) {
	if s == nil || id == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byID[id]; ok {
		if e := el.Value.(*datasetEntry); e.holds > 0 {
			e.holds--
		}
	}
}

// restore re-inserts a journaled registration with its original id and
// metadata (recovery only; ids are never reissued). Insertion order is
// the replay order — oldest first — so PushFront reproduces the LRU
// ranking the snapshot recorded.
func (s *datasetStore) restore(info DatasetInfo, ds least.Dataset) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[info.ID]; ok {
		return // duplicate record in the journal; first wins
	}
	s.byID[info.ID] = s.ll.PushFront(&datasetEntry{info: info, ds: ds})
	s.byFP[info.Fingerprint] = info.ID
	var n int
	if _, err := fmt.Sscanf(info.ID, "d%08d", &n); err == nil && n > s.nextID {
		s.nextID = n
	}
}

// seedID advances the id counter past a journaled id without restoring
// it — a dropped dataset's id must stay burned after a restart, or a
// recovered daemon would reissue it to unrelated data.
func (s *datasetStore) seedID(id string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	if _, err := fmt.Sscanf(id, "d%08d", &n); err == nil && n > s.nextID {
		s.nextID = n
	}
}

// snapshotEntries copies the store oldest-first for journal
// compaction, so replaying the snapshot with restore() reproduces the
// LRU order.
func (s *datasetStore) snapshotEntries() []datasetEntry {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]datasetEntry, 0, s.ll.Len())
	for el := s.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*datasetEntry)
		out = append(out, datasetEntry{info: e.info, ds: e.ds})
	}
	return out
}

func (s *datasetStore) delete(id string) error {
	if s == nil {
		return ErrDatasetsDisabled
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byID[id]
	if !ok {
		return ErrUnknownDataset
	}
	s.evictLocked(el)
	return nil
}

// len returns the number of stored datasets (0 when disabled).
func (s *datasetStore) len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// list snapshots the store, most recently used first.
func (s *datasetStore) list() []DatasetInfo {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DatasetInfo, 0, s.ll.Len())
	for el := s.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*datasetEntry).info)
	}
	return out
}

// RegisterDataset stores a dataset for by-reference job submission
// (POST /v2/datasets). Registration is idempotent on content: a
// dataset whose fingerprint is already stored returns the existing
// metadata with created=false.
func (m *Manager) RegisterDataset(ds least.Dataset) (DatasetInfo, bool, error) {
	info, created, evicted, err := m.datasets.register(ds)
	if err != nil {
		return info, created, err
	}
	if m.jnl != nil {
		if created {
			if rec, ok := datasetRecordOf(info, ds); ok {
				m.jnl.emit(recDataset, rec)
			}
		}
		for _, id := range evicted {
			m.jnl.emit(recDatasetDrop, datasetDropRecord{ID: id})
		}
	}
	return info, created, nil
}

// Dataset resolves a registered dataset id.
func (m *Manager) Dataset(id string) (least.Dataset, DatasetInfo, error) {
	return m.datasets.get(id)
}

// DeleteDataset removes a registered dataset. Jobs already submitted
// against it are unaffected — they hold their own reference.
func (m *Manager) DeleteDataset(id string) error {
	if err := m.datasets.delete(id); err != nil {
		return err
	}
	if m.jnl != nil {
		m.jnl.emit(recDatasetDrop, datasetDropRecord{ID: id})
	}
	return nil
}

// Datasets lists the registered datasets, most recently used first.
func (m *Manager) Datasets() []DatasetInfo { return m.datasets.list() }
