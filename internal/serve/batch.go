package serve

// Batch fleet learning: the paper's headline deployment number is not
// one network but tens of thousands of scenario learns per day (§VI).
// A Batch is a manifest of (dataset, spec) tasks admitted as one unit:
// tasks fan out over the shared worker pool on a per-batch scheduler
// lane (round-robin across lanes, so concurrent batches and
// interactive jobs make proportional progress), identical tasks are
// deduplicated through the in-flight table and the result cache, and
// the batch completes with a per-task error table — partial failure,
// never all-or-nothing. See DESIGN.md §7 for the model, the fairness
// policy and the wire contract.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro"
)

// Sentinel errors of the batch API.
var (
	// ErrUnknownBatch is returned for batch ids the manager has never
	// issued (or has already evicted from its bounded history).
	ErrUnknownBatch = errors.New("serve: unknown batch")
	// ErrBatchFinished is returned by Cancel on a batch that already
	// completed — there is nothing left to stop.
	ErrBatchFinished = errors.New("serve: batch already finished")
	// ErrEmptyBatch is returned by Submit for a manifest with no tasks.
	ErrEmptyBatch = errors.New("serve: empty batch manifest")
)

// BatchState is the lifecycle phase of a Batch: running → done |
// cancelled. A batch is "done" as soon as every task is terminal,
// regardless of how many failed — per-task verdicts live in the task
// table, and only an explicit cancel-batch produces "cancelled".
type BatchState string

// Batch states.
const (
	BatchRunning   BatchState = "running"
	BatchDone      BatchState = "done"
	BatchCancelled BatchState = "cancelled"
)

// Terminal reports whether a batch state is final.
func (s BatchState) Terminal() bool { return s == BatchDone || s == BatchCancelled }

// TaskCode classifies a batch task's failure in the JSON error table,
// so clients can tell a malformed task ("validation") from load
// shedding ("shed"), a cancellation ("cancelled") and a learner error
// ("internal") — distinctions the single-job API makes with HTTP
// status codes (400 / 503 / DELETE / 500) that a per-task table
// cannot.
type TaskCode string

// Task error codes.
const (
	TaskCodeValidation TaskCode = "validation"
	TaskCodeShed       TaskCode = "shed"
	TaskCodeCancelled  TaskCode = "cancelled"
	TaskCodeInternal   TaskCode = "internal"
	// TaskCodeRestart marks work interrupted by a daemon restart that
	// recovery could not resume (DESIGN.md §11) — distinct from
	// "internal" so clients know a clean resubmission will succeed.
	TaskCodeRestart TaskCode = "restart"
	// TaskCodeStolen marks a row whose pending work a cluster peer took
	// over (DESIGN.md §13): terminal here, but the task itself lives on
	// in the thief's sub-batch — the coordinator folds the verdicts.
	TaskCodeStolen TaskCode = "stolen"
)

// BatchTaskSpec is one resolved manifest entry handed to
// BatchManager.Submit: the data, the learn configuration, and
// optionally a resolution error from the transport layer.
type BatchTaskSpec struct {
	// Label is the client's name for the task (the manifest "id"
	// field), echoed in the task table.
	Label string
	// Dataset is the task's input data.
	Dataset least.Dataset
	// Center column-centers the data before learning.
	Center bool
	// Spec configures the learn; nil means MethodLEAST with defaults.
	Spec *least.Spec
	// Err carries a pre-admission resolution failure (bad CSV, unknown
	// dataset_ref, unsupported source). The task lands in the error
	// table with code "validation" and the rest of the batch proceeds.
	Err error
	// Manifest is the task's original wire form, kept alongside the
	// resolved fields so the journal can record a replayable manifest —
	// after a restart, recovery re-resolves pending tasks from it.
	// Optional; programmatic submissions without it simply restart-fail
	// instead of resuming.
	Manifest *least.ManifestTask
	// DatasetID names the registered dataset a dataset_ref task
	// resolved through; the minted job holds it pinned in the store
	// until the task is terminal.
	DatasetID string
}

// TaskStatus is one row of the batch task table (GET
// /v2/batches/{id}/tasks), shaped for the JSON API.
type TaskStatus struct {
	Index int    `json:"index"`
	Label string `json:"label,omitempty"`
	State State  `json:"state"`
	// Cached marks a task answered from the result cache; Deduped one
	// that joined an identical in-flight task instead of solving again.
	Cached  bool `json:"cached,omitempty"`
	Deduped bool `json:"deduped,omitempty"`
	// Job names the underlying job (shared between deduplicated
	// tasks); fetch the learned network at GET /v2/jobs/{job}/graph.
	Job   string   `json:"job,omitempty"`
	Code  TaskCode `json:"code,omitempty"`
	Error string   `json:"error,omitempty"`
}

// BatchStatus is an immutable snapshot of a batch's progress counters,
// shaped for the JSON API and the SSE event stream.
type BatchStatus struct {
	ID    string     `json:"id"`
	State BatchState `json:"state"`
	Total int        `json:"total"`
	// Per-state task counts; Queued+Running+Done+Failed+Cancelled ==
	// Total at every instant.
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	// Cached / Deduped count tasks that cost no solve.
	Cached   int       `json:"cached"`
	Deduped  int       `json:"deduped"`
	Created  time.Time `json:"created"`
	Finished time.Time `json:"finished,omitzero"`
}

// batchTask is one manifest entry's live state. All fields behind the
// owning Batch's mu. Tasks carry the job *id*, not the job: live
// tracking goes through Batch.refs, which is dropped when the batch
// finishes so a terminal batch does not pin thousands of results in
// memory past the Manager's history bounds.
type batchTask struct {
	label   string
	state   State
	cached  bool
	deduped bool
	jobID   string // "" for tasks resolved at admission (validation/shed)
	code    TaskCode
	err     string
}

// Batch aggregates a manifest of tasks. Tasks sharing a deduplicated
// job update together through one job observer; batch-level progress
// is a fold over the task table.
type Batch struct {
	id      string
	created time.Time
	m       *Manager // for journal emission at the terminal transition

	// manifests is the wire form of the task list (index-aligned with
	// tasks), kept while the batch is live: the journal records it for
	// replay, and lane stealing (DESIGN.md §13) exports entries to the
	// thieving peer. finishLocked drops it — a terminal batch recovers
	// from its row table alone and has nothing left to steal.
	manifests []least.ManifestTask

	mu       sync.Mutex
	cond     *sync.Cond // broadcast on every seq bump
	seq      int        // change counter driving the batch SSE stream
	state    BatchState
	finished time.Time
	tasks    []*batchTask
	open     int            // tasks not yet terminal
	refs     map[*Job][]int // job → indices of the tasks riding it

	// Progress counters, maintained incrementally at every task
	// transition: a 5,000-task batch must not fold over its whole
	// table under mu for every Status/Watch/SSE frame.
	nQueued, nRunning, nDone, nFailed, nCancelled int
	nCached, nDeduped                             int
}

// counterLocked returns the tally for a task state. Caller holds b.mu.
func (b *Batch) counterLocked(s State) *int {
	switch s {
	case Queued:
		return &b.nQueued
	case Running:
		return &b.nRunning
	case Done:
		return &b.nDone
	case Failed:
		return &b.nFailed
	default:
		return &b.nCancelled
	}
}

// moveLocked transitions a task's state, keeping the counters in
// sync. Caller holds b.mu.
func (b *Batch) moveLocked(t *batchTask, s State) {
	(*b.counterLocked(t.state))--
	(*b.counterLocked(s))++
	t.state = s
}

// admitTaskLocked tallies a freshly built task row (Submit only).
func (b *Batch) admitTaskLocked(t *batchTask) {
	(*b.counterLocked(t.state))++
	if t.cached {
		b.nCached++
	}
	if t.deduped {
		b.nDeduped++
	}
}

// ID returns the batch identifier.
func (b *Batch) ID() string { return b.id }

// Status snapshots the batch's progress counters.
func (b *Batch) Status() BatchStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.statusLocked()
}

func (b *Batch) statusLocked() BatchStatus {
	return BatchStatus{
		ID:        b.id,
		State:     b.state,
		Total:     len(b.tasks),
		Queued:    b.nQueued,
		Running:   b.nRunning,
		Done:      b.nDone,
		Failed:    b.nFailed,
		Cancelled: b.nCancelled,
		Cached:    b.nCached,
		Deduped:   b.nDeduped,
		Created:   b.created,
		Finished:  b.finished,
	}
}

// Tasks returns one page of the per-task table plus the total row
// count after the optional state filter (state "" matches all).
// Offsets past the end yield an empty page, never an error — the
// stable answer for a client paging a batch that is still shrinking
// its queued count.
func (b *Batch) Tasks(offset, limit int, state State) ([]TaskStatus, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	rows := []TaskStatus{}
	matched := 0
	for i, t := range b.tasks {
		if state != "" && t.state != state {
			continue
		}
		if matched >= offset && (limit <= 0 || len(rows) < limit) {
			rows = append(rows, b.taskStatusLocked(i))
		}
		matched++
	}
	return rows, matched
}

func (b *Batch) taskStatusLocked(i int) TaskStatus {
	t := b.tasks[i]
	return TaskStatus{
		Index:   i,
		Label:   t.label,
		State:   t.state,
		Cached:  t.cached,
		Deduped: t.deduped,
		Job:     t.jobID,
		Code:    t.code,
		Error:   t.err,
	}
}

// Watch blocks until the batch's observable state advances past seen
// (pass -1 for an immediate snapshot), the batch is terminal, or ctx
// ends — the coalescing primitive behind GET /v2/batches/{id}/events,
// same contract as Job.Watch.
func (b *Batch) Watch(ctx context.Context, seen int) (BatchStatus, int, bool) {
	stop := context.AfterFunc(ctx, func() {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	})
	defer stop()
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.seq == seen && !b.state.Terminal() && ctx.Err() == nil {
		b.cond.Wait()
	}
	return b.statusLocked(), b.seq, b.state.Terminal()
}

// bumpLocked records an observable change. Caller holds b.mu.
func (b *Batch) bumpLocked() {
	b.seq++
	b.cond.Broadcast()
}

// finishLocked seals the batch in state s and releases its job holds.
// Caller holds b.mu.
func (b *Batch) finishLocked(s BatchState) {
	b.state = s
	b.finished = time.Now()
	// Release every hold exactly once: the jobs become eligible for
	// normal history eviction, and dropping refs lets the garbage
	// collector reclaim the results the Manager has already evicted —
	// a terminal batch keeps only ids and verdicts, never weights.
	for j := range b.refs {
		j.mu.Lock()
		j.waiters--
		j.mu.Unlock()
	}
	b.refs = nil
	if b.m != nil && b.m.jnl != nil {
		// Seal the batch with its final row table — rows can diverge
		// from the admission record (cancels mark rows directly, and
		// shared jobs may have completed other batches' rows) — and
		// drop the manifests: a terminal batch replays from rows alone.
		b.m.jnl.emit(recBatchTerminal, batchTerminalRecord{
			ID:       b.id,
			State:    s,
			Finished: b.finished,
			Rows:     b.rowRecordsLocked(),
		})
	}
	b.manifests = nil
}

// stateRank orders job states along the lifecycle so observer
// deliveries can be made monotonic: queued < running < terminal.
func stateRank(s State) int {
	switch s {
	case Queued:
		return 0
	case Running:
		return 1
	default:
		return 2
	}
}

// onJob folds one underlying job transition into every task riding
// that job. Updates are monotonic: observer deliveries can race (the
// immediate snapshot from observe versus a concurrent transition), so
// a delivery that does not advance the task's lifecycle rank is
// ignored — a task never regresses running → queued, and a terminal
// task ignores everything.
func (b *Batch) onJob(j *Job, st Status) {
	b.mu.Lock()
	changed := false
	for _, i := range b.refs[j] {
		t := b.tasks[i]
		if t.state.Terminal() || stateRank(st.State) <= stateRank(t.state) {
			continue
		}
		b.moveLocked(t, st.State)
		switch st.State {
		case Done:
			if st.Cached && !t.cached {
				t.cached = true
				b.nCached++
			}
		case Failed:
			// A typed code on the status (today only "restart", from a
			// recovered job shared across batches) is more specific than
			// the generic internal verdict.
			t.code = TaskCodeInternal
			if st.Code != "" {
				t.code = st.Code
			}
			t.err = st.Error
		case Cancelled:
			t.code = TaskCodeCancelled
			t.err = st.Error
		}
		if st.State.Terminal() {
			b.open--
		}
		changed = true
	}
	if changed {
		if b.open == 0 && !b.state.Terminal() {
			b.finishLocked(BatchDone)
		}
		b.bumpLocked()
	}
	b.mu.Unlock()
}

// BatchManager owns the batch table on top of a Manager's worker pool,
// result cache and in-flight dedup table. It is safe for concurrent
// use by HTTP handlers.
type BatchManager struct {
	m *Manager

	mu      sync.Mutex
	batches map[string]*Batch
	order   []string // submission order, for listing + history eviction
	nextID  int
}

func newBatchManager(m *Manager) *BatchManager {
	return &BatchManager{m: m, batches: make(map[string]*Batch)}
}

// Submit admits a manifest of resolved tasks as one batch. Admission
// is atomic with respect to shutdown (all tasks or ErrShuttingDown),
// but never all-or-nothing across tasks: a task that fails validation
// or is shed past the batch backlog lands in the error table with its
// typed code while the rest of the manifest proceeds. Identical
// (fingerprint, center, spec) tasks — within this manifest or shared
// with a concurrently running batch — join one in-flight job, and
// tasks whose answer the result cache already holds complete
// immediately, so a manifest with 1,000 repeats costs roughly its
// unique-task count in solves.
func (bm *BatchManager) Submit(specs []BatchTaskSpec) (*Batch, error) {
	if len(specs) == 0 {
		return nil, ErrEmptyBatch
	}
	// Resolve and validate outside any lock: computing a cache key
	// fingerprints the task's data.
	type plan struct {
		spec *least.Spec
		key  string
		err  error
	}
	plans := make([]plan, len(specs))
	for i, ts := range specs {
		if ts.Err != nil {
			plans[i].err = ts.Err
			continue
		}
		sp, key, err := prepareSubmission(ts.Dataset, ts.Center, ts.Spec)
		plans[i] = plan{spec: sp, key: key, err: err}
	}

	bm.mu.Lock()
	bm.nextID++
	id := fmt.Sprintf("b%08d", bm.nextID)
	bm.mu.Unlock()

	now := time.Now()
	m := bm.m
	b := &Batch{
		id:      id,
		created: now,
		m:       m,
		state:   BatchRunning,
		refs:    make(map[*Job][]int),
	}
	b.cond = sync.NewCond(&b.mu)
	// Keep the wire-form manifest (index-aligned with tasks) while the
	// batch is live: recovery re-resolves pending rows from it after a
	// restart, and lane stealing exports rows from it to a peer.
	b.manifests = make([]least.ManifestTask, len(specs))
	for i, ts := range specs {
		if ts.Manifest != nil {
			b.manifests[i] = *ts.Manifest
		}
	}

	lane := &jobQueue{id: id}
	mine := make(map[*Job]bool) // jobs this batch already references
	var minted []*Job           // jobs this admission created (journaled with the batch)

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrShuttingDown
	}
	for i, ts := range specs {
		t := &batchTask{label: ts.Label, state: Queued}
		b.tasks = append(b.tasks, t)
		p := plans[i]
		if p.err != nil {
			t.state = Failed
			t.code = TaskCodeValidation
			t.err = p.err.Error()
			continue
		}
		// In-flight first: identical work already queued or running —
		// for this batch or a concurrent one — is joined, not resolved.
		// A job whose batches all cancelled it (waiters 0) is doomed
		// even if the learner has not observed the cancel yet; joining
		// it would cancel this fresh task, so treat it as stale too.
		if ij, ok := m.inflight[p.key]; ok {
			ij.mu.Lock()
			usable := !ij.state.Terminal() && ij.waiters > 0
			if usable && !mine[ij] {
				ij.waiters++ // a second batch now holds this job
			}
			ij.mu.Unlock()
			if usable {
				t.jobID = ij.id
				t.deduped = true
				mine[ij] = true
				b.refs[ij] = append(b.refs[ij], i)
				m.met.BatchTasksDeduped.Add(1)
				continue
			}
			delete(m.inflight, p.key) // stale or doomed; fall through
		}
		j := m.makeJobLocked(ts.Dataset, p.spec, ts.Center, p.key, now)
		if j.cached {
			t.state = Done
			t.cached = true
			t.jobID = j.id
			// Hold even the born-done job until the batch finishes, so
			// history pressure cannot 404 the task's graph link while
			// the client is still paging the table.
			j.waiters = 1
			b.refs[j] = append(b.refs[j], i)
			m.recordLocked(j)
			minted = append(minted, j)
			m.met.BatchTasksCached.Add(1)
			continue
		}
		if m.nbatchq >= m.cfg.BatchBacklog {
			t.state = Failed
			t.code = TaskCodeShed
			t.err = ErrQueueFull.Error()
			m.met.BatchTasksShed.Add(1)
			continue
		}
		j.waiters = 1
		mine[j] = true
		if ts.DatasetID != "" {
			// Pin the registered dataset until the job's terminal
			// transition releases it (the jobTerminal observer).
			j.dsID = ts.DatasetID
			m.datasets.acquire(ts.DatasetID)
		}
		m.inflight[p.key] = j
		m.recordLocked(j)
		minted = append(minted, j)
		m.enqueueLocked(lane, j)
		t.jobID = j.id
		b.refs[j] = append(b.refs[j], i)
	}
	// One history-eviction pass for the whole manifest: per-insert
	// passes would make large-batch admission quadratic under m.mu.
	m.evictHistoryLocked()
	m.mu.Unlock()
	m.met.BatchesSubmitted.Add(1)
	m.met.BatchTasksAdmitted.Add(int64(len(specs)))

	for _, t := range b.tasks {
		b.admitTaskLocked(t)
		if !t.state.Terminal() {
			b.open++
		}
	}
	if b.open == 0 {
		// Every task resolved at admission (validation failures, shed
		// tasks, cache hits): the batch is born done with its table.
		b.finishLocked(BatchDone)
	}
	// Attach one observer per distinct job. observe delivers the
	// current snapshot immediately, so a job that raced to completion
	// between enqueue and here still resolves its tasks.
	for j := range b.refs {
		j := j
		j.observe(func(st Status) { b.onJob(j, st) })
	}
	bm.register(b)
	m.journalBatchAdmission(b, minted)
	return b, nil
}

// register records a batch and evicts the oldest terminal batches past
// the history bound.
func (bm *BatchManager) register(b *Batch) {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	bm.batches[b.id] = b
	bm.order = append(bm.order, b.id)
	if len(bm.batches) <= bm.m.cfg.MaxBatches {
		return
	}
	kept := bm.order[:0]
	excess := len(bm.batches) - bm.m.cfg.MaxBatches
	for _, id := range bm.order {
		old := bm.batches[id]
		if excess > 0 && old.Status().State.Terminal() {
			delete(bm.batches, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	bm.order = kept
}

// Get looks a batch up by id.
func (bm *BatchManager) Get(id string) (*Batch, error) {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	b, ok := bm.batches[id]
	if !ok {
		return nil, ErrUnknownBatch
	}
	return b, nil
}

// List snapshots every known batch in submission order.
func (bm *BatchManager) List() []BatchStatus {
	bm.mu.Lock()
	ids := append([]string(nil), bm.order...)
	bs := bm.batches
	out := make([]BatchStatus, 0, len(ids))
	for _, id := range ids {
		out = append(out, bs[id].Status())
	}
	bm.mu.Unlock()
	return out
}

// Len returns the number of batches the manager currently knows about.
func (bm *BatchManager) Len() int {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	return len(bm.batches)
}

// Cancel stops a batch: every non-terminal task is marked cancelled in
// the table immediately, and each underlying queued or running job is
// cancelled unless another live batch still holds it (deduplicated
// jobs are shared; cancelling one manifest must not sabotage another).
// Cancel on a done batch returns ErrBatchFinished; on an
// already-cancelled batch it is a no-op.
func (bm *BatchManager) Cancel(id string) (BatchStatus, error) {
	b, err := bm.Get(id)
	if err != nil {
		return BatchStatus{}, err
	}
	b.mu.Lock()
	switch b.state {
	case BatchDone:
		b.mu.Unlock()
		return b.Status(), ErrBatchFinished
	case BatchCancelled:
		b.mu.Unlock()
		return b.Status(), nil
	}
	jobs := make([]*Job, 0, len(b.refs))
	for j := range b.refs {
		jobs = append(jobs, j)
	}
	for _, t := range b.tasks {
		if !t.state.Terminal() {
			b.moveLocked(t, Cancelled)
			t.code = TaskCodeCancelled
			t.err = "batch cancelled"
			b.open--
		}
	}
	b.finishLocked(BatchCancelled) // releases this batch's job holds
	b.bumpLocked()
	b.mu.Unlock()

	// Cancel whichever of the batch's jobs no live batch still holds.
	for _, j := range jobs {
		j.mu.Lock()
		drop := j.waiters <= 0 && !j.state.Terminal()
		j.mu.Unlock()
		if drop {
			_, _ = bm.m.Cancel(j.id) // a finish racing the cancel is fine
		}
	}
	return b.Status(), nil
}
