package serve

import (
	"bufio"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// wantMetrics freezes the /metrics surface — names, types and emission
// order — the way api/least.txt freezes the library API. Adding a
// metric means extending this list in emission position; renaming or
// reordering one is breakage (dashboards and the leastload -check
// ledger key on these names).
var wantMetrics = []struct{ name, typ string }{
	{"least_http_requests_total", "counter"},
	{"least_query_requests_total", "counter"},
	{"least_jobs_submitted_total", "counter"},
	{"least_jobs_done_total", "counter"},
	{"least_jobs_failed_total", "counter"},
	{"least_jobs_cancelled_total", "counter"},
	{"least_jobs_shed_total", "counter"},
	{"least_batches_submitted_total", "counter"},
	{"least_batch_tasks_admitted_total", "counter"},
	{"least_batch_tasks_shed_total", "counter"},
	{"least_batch_tasks_deduped_total", "counter"},
	{"least_batch_tasks_cached_total", "counter"},
	{"least_gangs_total", "counter"},
	{"least_gang_jobs_total", "counter"},
	{"least_result_cache_hits_total", "counter"},
	{"least_result_cache_misses_total", "counter"},
	{"least_query_cache_hits_total", "counter"},
	{"least_query_cache_misses_total", "counter"},
	{"least_gemm_slot_spawns_total", "counter"},
	{"least_gemm_slot_denials_total", "counter"},
	{"least_journal_records_total", "counter"},
	{"least_journal_bytes_total", "counter"},
	{"least_journal_fsyncs_total", "counter"},
	{"least_journal_replayed_records_total", "counter"},
	{"least_journal_tasks_resumed_total", "counter"},
	{"least_journal_restart_failures_total", "counter"},
	{"least_jobs", "gauge"},
	{"least_jobs_queued", "gauge"},
	{"least_jobs_running", "gauge"},
	{"least_batch_queue_depth", "gauge"},
	{"least_lanes", "gauge"},
	{"least_batches", "gauge"},
	{"least_datasets", "gauge"},
	{"least_result_cache_entries", "gauge"},
	{"least_query_cache_entries", "gauge"},
}

var metricValueRE = regexp.MustCompile(`^\d+$`)

// TestMetricsExpositionGolden pins the exposition's structure: every
// metric appears as a HELP/TYPE/value triple, in the frozen order,
// with a non-negative integer value and nothing else in the body.
// Values are live (the GEMM slot counters are process-wide, so other
// tests move them), which is why the golden freezes shape, not bytes.
func TestMetricsExpositionGolden(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3*len(wantMetrics) {
		t.Fatalf("exposition has %d lines, want %d (3 per metric):\n%s",
			len(lines), 3*len(wantMetrics), strings.Join(lines, "\n"))
	}
	for i, wantM := range wantMetrics {
		help, typ, val := lines[3*i], lines[3*i+1], lines[3*i+2]
		if !strings.HasPrefix(help, "# HELP "+wantM.name+" ") || len(help) <= len("# HELP "+wantM.name+" ") {
			t.Errorf("metric %d: bad HELP line %q (want %s)", i, help, wantM.name)
		}
		if typ != "# TYPE "+wantM.name+" "+wantM.typ {
			t.Errorf("metric %d: bad TYPE line %q (want %s %s)", i, typ, wantM.name, wantM.typ)
		}
		name, value, ok := strings.Cut(val, " ")
		if !ok || name != wantM.name || !metricValueRE.MatchString(value) {
			t.Errorf("metric %d: bad value line %q (want %q <uint>)", i, val, wantM.name)
		}
	}
}

// TestHealthzByteCompat pins the /healthz answer on a fresh daemon
// byte-for-byte: the liveness surface predates /metrics and external
// probes parse it, so the read-side PR must not move it at all.
func TestHealthzByteCompat(t *testing.T) {
	srv, _ := newTestServer(t)
	const want = `{
  "batches": 0,
  "cache_entries": 0,
  "cache_hits": 0,
  "cache_misses": 0,
  "jobs": 0,
  "status": "ok"
}
`
	code, b := doJSON(t, http.MethodGet, srv.URL+"/healthz", nil)
	if code != http.StatusOK || string(b) != want {
		t.Fatalf("healthz drifted: HTTP %d\n got: %swant: %s", code, b, want)
	}
}

// scrapeMetrics parses the exposition into name → value.
func scrapeMetrics(t *testing.T, base string) map[string]int64 {
	t.Helper()
	code, b := doJSON(t, http.MethodGet, base+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics scrape: HTTP %d\n%s", code, b)
	}
	out := make(map[string]int64)
	for _, line := range strings.Split(string(b), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("bad exposition line %q", line)
		}
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[name] = v
	}
	return out
}

// waitCounter polls a counter until it reaches want — terminal-state
// transitions and their metric increments are not atomic with each
// other, so assertions on lifecycle counters poll briefly first.
func waitCounter(t *testing.T, name string, want int64, get func() int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for get() != want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want %d", name, get(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMetricsCountersConsistent runs a known workload — one
// interactive solve, one batch with a duplicate task, a burst of read
// queries — and cross-checks the /metrics exposition against the
// generator-side tally, the same ledger leastload -check enforces
// against a live daemon:
//
//	jobs_submitted = interactive + batch_tasks_admitted − deduped − shed
func TestMetricsCountersConsistent(t *testing.T) {
	srv, m := newTestServer(t)
	base := srv.URL

	id := submitChainJob(t, base)
	tasks := []map[string]any{
		batchTaskJSON("a", 600),
		batchTaskJSON("b", 610),
		batchTaskJSON("a-dup", 600),
	}
	code, body := doJSON(t, http.MethodPost, base+"/v2/batches", map[string]any{"tasks": tasks})
	if code != http.StatusAccepted {
		t.Fatalf("batch submit: HTTP %d\n%s", code, body)
	}
	bid := decodeBatchStatus(t, body).ID
	pollBatch(t, base, bid, BatchDone, 60*time.Second)

	// The duplicate either joined the in-flight job (deduped) or hit
	// the result cache after it finished (cached, minting a born-done
	// job); the ledger below holds either way.
	met := m.Metrics()
	deduped, cached := met.BatchTasksDeduped.Load(), met.BatchTasksCached.Load()
	if deduped+cached != 1 {
		t.Fatalf("duplicate task: deduped %d, cached %d, want exactly one of them", deduped, cached)
	}
	wantJobs := 1 + 3 - deduped
	waitCounter(t, "jobs_done", wantJobs, met.JobsDone.Load)

	before := scrapeMetrics(t, base)
	if before["least_jobs_submitted_total"] != wantJobs ||
		before["least_jobs_done_total"] != wantJobs ||
		before["least_jobs_failed_total"] != 0 ||
		before["least_jobs_cancelled_total"] != 0 ||
		before["least_jobs_shed_total"] != 0 {
		t.Fatalf("job lifecycle ledger off (want %d submitted=done): %v", wantJobs, before)
	}
	if before["least_batches_submitted_total"] != 1 ||
		before["least_batch_tasks_admitted_total"] != 3 ||
		before["least_batch_tasks_shed_total"] != 0 ||
		before["least_batch_tasks_deduped_total"] != deduped ||
		before["least_batch_tasks_cached_total"] != cached {
		t.Fatalf("batch ledger off: %v", before)
	}
	if before["least_jobs_running"] != 0 || before["least_jobs_queued"] != 0 {
		t.Fatalf("idle daemon reports work in flight: %v", before)
	}
	if before["least_jobs"] != wantJobs || before["least_batches"] != 1 {
		t.Fatalf("table gauges off: %v", before)
	}

	// A burst of five read queries and one graph fetch: query_requests
	// counts exactly the query/* and /edges routes; http_requests counts
	// everything including the closing scrape itself (the middleware
	// increments before the handler renders).
	for _, p := range []string{
		"/v2/jobs/" + id + "/query/summary",
		"/v2/jobs/" + id + "/query/parents?node=A",
		"/v2/jobs/" + id + "/query/blanket?node=B",
		"/v2/jobs/" + id + "/query/dsep?x=A&y=C&z=B",
		"/v2/batches/" + bid + "/edges",
	} {
		if code, b := doJSON(t, http.MethodGet, base+p, nil); code != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d\n%s", p, code, b)
		}
	}
	if code, b := doJSON(t, http.MethodGet, base+"/v2/jobs/"+id+"/graph", nil); code != http.StatusOK {
		t.Fatalf("graph: HTTP %d\n%s", code, b)
	}
	after := scrapeMetrics(t, base)
	if got := after["least_query_requests_total"] - before["least_query_requests_total"]; got != 5 {
		t.Fatalf("query_requests moved by %d, want 5", got)
	}
	if got := after["least_http_requests_total"] - before["least_http_requests_total"]; got != 7 {
		t.Fatalf("http_requests moved by %d, want 7 (5 queries + graph + this scrape)", got)
	}

	// Compile accounting: the chain job compiles once and is shared by
	// summary/parents/blanket/dsep/graph; the edge aggregation compiles
	// each distinct batch job once.
	wantMisses := int64(1) + 2 + cached
	if got := after["least_query_cache_misses_total"] - before["least_query_cache_misses_total"]; got != wantMisses {
		t.Fatalf("query cache compiled %d times, want %d", got, wantMisses)
	}
	if got := after["least_query_cache_hits_total"] - before["least_query_cache_hits_total"]; got != 4 {
		t.Fatalf("query cache hit %d times, want 4", got)
	}
}

// TestMetricsUnknownRoutesCounted pins that http_requests counts every
// routed request — including 404s — so saturation dashboards see the
// full inbound rate, not just the well-formed slice.
func TestMetricsUnknownRoutesCounted(t *testing.T) {
	srv, m := newTestServer(t)
	before := m.Metrics().HTTPRequests.Load()
	if code, _ := doJSON(t, http.MethodGet, srv.URL+"/no/such/route", nil); code != http.StatusNotFound {
		t.Fatalf("expected 404, got %d", code)
	}
	if got := m.Metrics().HTTPRequests.Load() - before; got != 1 {
		t.Fatalf("404 moved http_requests by %d, want 1", got)
	}
}
