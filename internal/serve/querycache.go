package serve

// The compiled-form cache (DESIGN.md §10): a fixed-capacity LRU of
// query.Compiled values keyed by (job id, tau). Compiling a learned
// network — thresholding, CSR layout, topological order, ancestor
// bitsets — is O(d² + d·E/64) work that GET /graph historically redid
// on every request; queries amortize it here once per (job, tau) and
// then read the immutable compiled form lock-free. Entries carry a
// sync.Once so concurrent first requests for the same key compile
// exactly once (singleflight) without holding the cache mutex through
// the compile. Job ids are never reused (the manager's id counter is
// monotonic) and a job's result is immutable once done, so a stale
// entry for an evicted job is merely dead weight the LRU will shed —
// never a wrong answer.

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/query"
)

type qkey struct {
	job string
	tau float64
}

type qentry struct {
	key   qkey
	once  sync.Once
	build func() *query.Compiled // nil after once fires
	c     *query.Compiled
}

func (e *qentry) compiled() *query.Compiled {
	e.once.Do(func() {
		e.c = e.build()
		e.build = nil
	})
	return e.c
}

type queryCache struct {
	capacity int
	mu       sync.Mutex
	ll       *list.List // front = most recently used
	items    map[qkey]*list.Element

	hits, misses atomic.Int64
}

// newQueryCache returns a cache holding at most capacity compiled
// forms; capacity <= 0 disables caching (every lookup compiles).
func newQueryCache(capacity int) *queryCache {
	return &queryCache{capacity: capacity, ll: list.New(), items: make(map[qkey]*list.Element)}
}

// get returns the compiled form for (job, tau), running build at most
// once per cached key. The mutex covers only the LRU bookkeeping; the
// compile itself runs on the requesting goroutine with concurrent
// requests for the same key parked on the entry's sync.Once.
func (qc *queryCache) get(job string, tau float64, build func() *query.Compiled) *query.Compiled {
	if qc.capacity <= 0 {
		qc.misses.Add(1)
		return build()
	}
	k := qkey{job: job, tau: tau}
	qc.mu.Lock()
	if el, ok := qc.items[k]; ok {
		qc.ll.MoveToFront(el)
		e := el.Value.(*qentry)
		qc.mu.Unlock()
		qc.hits.Add(1)
		return e.compiled()
	}
	e := &qentry{key: k, build: build}
	qc.items[k] = qc.ll.PushFront(e)
	for qc.ll.Len() > qc.capacity {
		oldest := qc.ll.Back()
		qc.ll.Remove(oldest)
		delete(qc.items, oldest.Value.(*qentry).key)
	}
	qc.mu.Unlock()
	qc.misses.Add(1)
	return e.compiled()
}

// stats returns (hits, misses, size).
func (qc *queryCache) stats() (int64, int64, int) {
	qc.mu.Lock()
	n := qc.ll.Len()
	qc.mu.Unlock()
	return qc.hits.Load(), qc.misses.Load(), n
}

// QueryCacheStats returns (hits, misses, entries) of the compiled-form
// cache — the counters behind least_query_cache_*.
func (m *Manager) QueryCacheStats() (int64, int64, int) { return m.qcache.stats() }

// Compiled returns the job's learned network compiled for reads at
// threshold tau, through the (job, tau) LRU. ErrNotDone when the job
// has no result yet; the returned form is immutable and safe for
// unbounded concurrent use.
func (m *Manager) Compiled(j *Job, tau float64) (*query.Compiled, error) {
	res, names, err := j.Result()
	if err != nil {
		return nil, err
	}
	c := m.qcache.get(j.id, tau, func() *query.Compiled {
		if res.Weights != nil {
			return query.CompileDense(res.Weights, tau, names)
		}
		return query.CompileCSR(res.SparseWeights, tau, names)
	})
	return c, nil
}
