package serve

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakCheck registers a cleanup that fails the test if goroutines
// running this package's code outlive the test. Call it first thing:
// t.Cleanup callbacks run after the test body's defers (and LIFO among
// themselves), so the check observes the world after shutdown() and
// httptest teardown have done their job.
//
// Dependency-free goroutine accounting: snapshot all stacks with
// runtime.Stack and keep those with a repro/internal/serve frame —
// Manager workers, batch fan-out, journal pumps. Drained goroutines
// take a moment to unwind after Shutdown returns, so the check retries
// briefly before declaring a leak.
func leakCheck(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var leaked []string
		for {
			leaked = serveGoroutines()
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Errorf("%d goroutine(s) running internal/serve code leaked past shutdown:\n\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// serveGoroutines returns the stacks of live goroutines executing this
// package's code, excluding the test goroutines themselves.
func serveGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if !strings.Contains(g, "repro/internal/serve") {
			continue
		}
		// Test goroutines (and this snapshot call) carry tRunner frames.
		if strings.Contains(g, "testing.tRunner") {
			continue
		}
		out = append(out, g)
	}
	return out
}
