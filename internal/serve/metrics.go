package serve

// Observability for the serving daemon (DESIGN.md §10): a dependency-
// free Prometheus-text exposition of the Manager's counters. Hot paths
// touch only lock-free atomic adds; the gauges are read at scrape time
// from the subsystems that already track them (queue depths under
// m.mu, cache sizes under their own mutexes), so a scrape costs a few
// mutex acquisitions and no allocation-heavy folds. Names and types
// are frozen by TestMetricsExpositionGolden the way api/least.txt
// freezes the library surface — additions are deliberate, renames are
// breakage.

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/mat"
)

// Metrics is the daemon's counter block. Every field is an atomic
// monotonic counter except JobsRunning, which is a gauge (incremented
// when a learn starts, decremented when it finishes). The Manager owns
// one; handlers and workers thread through it without locks.
type Metrics struct {
	// HTTP surface.
	HTTPRequests  atomic.Int64 // every routed request, all versions
	QueryRequests atomic.Int64 // /v2/jobs/{id}/query/* and /v2/batches/{id}/edges

	// Job lifecycle (interactive and batch tasks alike; born-done
	// cache hits count as submitted and done).
	JobsSubmitted atomic.Int64
	JobsDone      atomic.Int64
	JobsFailed    atomic.Int64
	JobsCancelled atomic.Int64
	JobsShed      atomic.Int64 // interactive admissions refused with 503
	JobsRunning   atomic.Int64 // gauge: learns executing right now

	// Batch fleet.
	BatchesSubmitted   atomic.Int64
	BatchTasksAdmitted atomic.Int64 // manifest entries accepted into batches
	BatchTasksShed     atomic.Int64 // typed "shed" rows past BatchBacklog
	BatchTasksDeduped  atomic.Int64 // joined an identical in-flight job
	BatchTasksCached   atomic.Int64 // answered from the result cache at admission

	// Gang scheduling (DESIGN.md §9).
	Gangs    atomic.Int64 // gangs formed (runs of >1 fused small-d jobs)
	GangJobs atomic.Int64 // jobs executed as gang members

	// Durability (DESIGN.md §11). Append/byte/fsync counts live on the
	// journal writer; these count the recovery outcomes.
	JournalReplayed atomic.Int64 // records replayed at startup
	JournalResumed  atomic.Int64 // batch tasks re-enqueued after a restart
	JournalRestarts atomic.Int64 // jobs failed with the typed "restart" code
}

// Metrics returns the manager's counter block — the same instance the
// daemon's /metrics endpoint renders, for tests and load generators
// that cross-check their own tallies.
func (m *Manager) Metrics() *Metrics { return &m.met }

// metricsGauges is the point-in-time half of the exposition, read at
// scrape time.
type metricsGauges struct {
	jobs, queued, batchQueued, lanes int
	batches                          int
	datasets                         int
}

func (m *Manager) gauges() metricsGauges {
	m.mu.Lock()
	g := metricsGauges{
		jobs:        len(m.jobs),
		queued:      m.nqueued,
		batchQueued: m.nbatchq,
		lanes:       len(m.runq),
	}
	m.mu.Unlock()
	g.batches = m.batches.Len()
	g.datasets = m.datasets.len()
	return g
}

// WriteMetrics renders the counter block in the Prometheus text
// exposition format (version 0.0.4). The metric set, names, types and
// emission order are frozen by golden test; values are live.
func (m *Manager) WriteMetrics(w io.Writer) {
	g := m.gauges()
	rcHits, rcMisses, rcEntries := m.cache.stats()
	qcHits, qcMisses, qcEntries := m.qcache.stats()
	slotSpawns, slotDenials := mat.GEMMSlotStats()

	c := &m.met
	emit := func(name, typ, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, v)
	}
	emit("least_http_requests_total", "counter", "HTTP requests routed, all API versions.", c.HTTPRequests.Load())
	emit("least_query_requests_total", "counter", "Read-side query requests (/v2/jobs/{id}/query/* and /v2/batches/{id}/edges).", c.QueryRequests.Load())
	emit("least_jobs_submitted_total", "counter", "Jobs admitted: interactive submissions plus batch tasks that minted a job.", c.JobsSubmitted.Load())
	emit("least_jobs_done_total", "counter", "Jobs finished in state done, including born-done result-cache hits.", c.JobsDone.Load())
	emit("least_jobs_failed_total", "counter", "Jobs finished in state failed.", c.JobsFailed.Load())
	emit("least_jobs_cancelled_total", "counter", "Jobs finished in state cancelled (client cancels, batch cancels, shutdown).", c.JobsCancelled.Load())
	emit("least_jobs_shed_total", "counter", "Interactive submissions refused with 503 at the admission queue bound.", c.JobsShed.Load())
	emit("least_batches_submitted_total", "counter", "Batch manifests admitted.", c.BatchesSubmitted.Load())
	emit("least_batch_tasks_admitted_total", "counter", "Manifest entries accepted into batches (validation failures included).", c.BatchTasksAdmitted.Load())
	emit("least_batch_tasks_shed_total", "counter", "Batch tasks shed past the batch backlog bound.", c.BatchTasksShed.Load())
	emit("least_batch_tasks_deduped_total", "counter", "Batch tasks that joined an identical in-flight job.", c.BatchTasksDeduped.Load())
	emit("least_batch_tasks_cached_total", "counter", "Batch tasks answered from the result cache at admission.", c.BatchTasksCached.Load())
	emit("least_gangs_total", "counter", "Gangs of small-d batch tasks fused into one worker slot.", c.Gangs.Load())
	emit("least_gang_jobs_total", "counter", "Jobs executed as gang members.", c.GangJobs.Load())
	emit("least_result_cache_hits_total", "counter", "Result-cache hits.", int64(rcHits))
	emit("least_result_cache_misses_total", "counter", "Result-cache misses.", int64(rcMisses))
	emit("least_query_cache_hits_total", "counter", "Compiled-form cache hits (GET /graph and query routes).", qcHits)
	emit("least_query_cache_misses_total", "counter", "Compiled-form cache misses (a compile ran).", qcMisses)
	emit("least_gemm_slot_spawns_total", "counter", "GEMM helper goroutines spawned into the machine-wide slot region.", slotSpawns)
	emit("least_gemm_slot_denials_total", "counter", "GEMM helper spawns denied at slot saturation (work stayed serial).", slotDenials)
	js, _ := m.JournalStats()
	emit("least_journal_records_total", "counter", "Journal records appended (zero when journaling is disabled).", js.Records)
	emit("least_journal_bytes_total", "counter", "Framed journal bytes appended.", js.Bytes)
	emit("least_journal_fsyncs_total", "counter", "Journal fsyncs issued (group commits, rotations, compactions).", js.Fsyncs)
	emit("least_journal_replayed_records_total", "counter", "Journal records replayed at the last startup.", c.JournalReplayed.Load())
	emit("least_journal_tasks_resumed_total", "counter", "Batch tasks re-enqueued from the journal after a restart.", c.JournalResumed.Load())
	emit("least_journal_restart_failures_total", "counter", "Jobs failed with the typed restart code at recovery.", c.JournalRestarts.Load())
	emit("least_jobs", "gauge", "Jobs currently in the manager's table (all states).", int64(g.jobs))
	emit("least_jobs_queued", "gauge", "Jobs admitted but not yet started, all lanes.", int64(g.queued))
	emit("least_jobs_running", "gauge", "Learns executing right now.", c.JobsRunning.Load())
	emit("least_batch_queue_depth", "gauge", "Queued jobs across batch lanes (BatchBacklog applies here).", int64(g.batchQueued))
	emit("least_lanes", "gauge", "Active scheduler lanes (interactive plus one per batch with queued work).", int64(g.lanes))
	emit("least_batches", "gauge", "Batches currently in the batch table.", int64(g.batches))
	emit("least_datasets", "gauge", "Registered datasets in the store.", int64(g.datasets))
	emit("least_result_cache_entries", "gauge", "Results held by the LRU result cache.", int64(rcEntries))
	emit("least_query_cache_entries", "gauge", "Compiled forms held by the (job, tau) LRU.", int64(qcEntries))
}
