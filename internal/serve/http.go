package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"repro"
	"repro/internal/csvio"
)

// API is the JSON/HTTP face of a Manager, served by cmd/leastd. The
// frozen v1 surface (options in the legacy zero-means-default wire
// form; answers stay byte-compatible, except that out-of-range option
// values — previously fed to the learner unvalidated — now draw the
// shared Spec validation's 400, see DESIGN.md §5):
//
//	POST   /v1/jobs             submit (CSV or dense-JSON samples + options)
//	GET    /v1/jobs             list all known jobs
//	GET    /v1/jobs/{id}        status + iteration progress
//	GET    /v1/jobs/{id}/graph  learned network (bnet JSON), ?tau= threshold
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             liveness + pool/cache counters
//
// and the v2 surface over the Spec wire form (see DESIGN.md §5 for the
// v1→v2 field mapping and the SSE event schema, §6 for the dataset
// registry and by-reference submission):
//
//	POST   /v2/jobs             submit with "spec" ({"method": "notears", ...});
//	                            data inline (csv / samples) or "dataset_ref"
//	GET    /v2/jobs             list (statuses carry "method", n, d and
//	                            "dataset_fingerprint")
//	GET    /v2/jobs/{id}        status + iteration progress + method
//	GET    /v2/jobs/{id}/graph  learned network (same as v1)
//	GET    /v2/jobs/{id}/events live per-iteration progress over SSE
//	DELETE /v2/jobs/{id}        cancel
//	POST   /v2/datasets         register a dataset for by-reference jobs
//	GET    /v2/datasets         list registered datasets (MRU first)
//	GET    /v2/datasets/{id}    dataset metadata
//	DELETE /v2/datasets/{id}    unregister
//
// and the batch fleet surface (see DESIGN.md §7 for the batch model,
// the fairness policy and the partial-failure contract):
//
//	POST   /v2/batches              submit a manifest: {"tasks": [{...}]},
//	                                each task inline data or dataset_ref
//	                                plus a spec; bad tasks land in the
//	                                error table, never a whole-batch 400
//	GET    /v2/batches              list batch progress counters
//	GET    /v2/batches/{id}         one batch's counters
//	GET    /v2/batches/{id}/tasks   per-task table, ?offset=&limit=&state=
//	GET    /v2/batches/{id}/events  live progress counters over SSE
//	DELETE /v2/batches/{id}         cancel queued + running tasks
//
// and the read side over compiled networks (DESIGN.md §10 — every
// answer is served lock-free from the (job, tau) compiled-form cache):
//
//	GET /v2/jobs/{id}/query/summary   node/edge counts, acyclicity, names
//	GET /v2/jobs/{id}/query/parents   ?node= weighted parent set
//	GET /v2/jobs/{id}/query/children  ?node= weighted child set
//	GET /v2/jobs/{id}/query/blanket   ?node= Markov blanket
//	GET /v2/jobs/{id}/query/dsep      ?x=&y=&z=a,b d-separation verdict
//	GET /v2/batches/{id}/edges        cross-task edge confidence,
//	                                  ?tau=&min_support=&limit=
//	GET /metrics                      Prometheus text exposition
//
// and the peer surface consumed by the cluster coordinator (DESIGN.md
// §13 — cluster-internal; clients talk to the coordinator's v2 face):
//
//	GET  /v2/peer/cache-digest  result-cache key digest (gossip payload)
//	POST /v2/peer/steal         take pending rows off a batch lane tail
//	POST /v2/peer/subbatch      admit a per-node sub-manifest (alias of
//	                            POST /v2/batches)
type API struct {
	m *Manager
}

// NewAPI wraps a manager.
func NewAPI(m *Manager) *API { return &API{m: m} }

// maxRequestBytes bounds a submission body (samples arrive as JSON, so
// even large-d problems fit comfortably; the cap exists so a single
// unauthenticated request cannot buffer unbounded memory).
const maxRequestBytes = 512 << 20

// Handler returns the routed HTTP handler.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", a.submit)
	mux.HandleFunc("GET /v1/jobs", a.list)
	mux.HandleFunc("GET /v1/jobs/{id}", a.status)
	mux.HandleFunc("GET /v1/jobs/{id}/graph", a.graph)
	mux.HandleFunc("DELETE /v1/jobs/{id}", a.cancel)
	mux.HandleFunc("POST /v2/jobs", a.submitV2)
	mux.HandleFunc("GET /v2/jobs", a.listV2)
	mux.HandleFunc("GET /v2/jobs/{id}", a.statusV2)
	mux.HandleFunc("GET /v2/jobs/{id}/graph", a.graph)
	mux.HandleFunc("GET /v2/jobs/{id}/events", a.events)
	mux.HandleFunc("DELETE /v2/jobs/{id}", a.cancelV2)
	mux.HandleFunc("POST /v2/batches", a.batchCreate)
	mux.HandleFunc("GET /v2/batches", a.batchList)
	mux.HandleFunc("GET /v2/batches/{id}", a.batchStatus)
	mux.HandleFunc("GET /v2/batches/{id}/tasks", a.batchTasks)
	mux.HandleFunc("GET /v2/batches/{id}/events", a.batchEvents)
	mux.HandleFunc("DELETE /v2/batches/{id}", a.batchCancel)
	mux.HandleFunc("POST /v2/datasets", a.datasetCreate)
	mux.HandleFunc("GET /v2/datasets", a.datasetList)
	mux.HandleFunc("GET /v2/datasets/{id}", a.datasetGet)
	mux.HandleFunc("DELETE /v2/datasets/{id}", a.datasetDelete)
	mux.HandleFunc("GET /v2/jobs/{id}/query/{verb}", a.query)
	mux.HandleFunc("GET /v2/batches/{id}/edges", a.batchEdges)
	mux.HandleFunc("GET /v2/peer/cache-digest", a.peerCacheDigest)
	mux.HandleFunc("POST /v2/peer/steal", a.peerSteal)
	mux.HandleFunc("POST /v2/peer/subbatch", a.batchCreate)
	mux.HandleFunc("GET /metrics", a.metrics)
	mux.HandleFunc("GET /healthz", a.health)
	// One wrapper counts every routed request (including 404s from the
	// mux itself) so least_http_requests_total is the true arrival rate,
	// not a sum over the routes we remembered to instrument.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		a.m.met.HTTPRequests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// SubmitRequest is the POST /v1/jobs body. Exactly one of CSV or
// Samples carries the data; Options fields left at zero fall back to
// the library defaults (least.Defaults).
type SubmitRequest struct {
	// CSV is a complete CSV document: one column per variable, one row
	// per observation; Header marks a leading name row.
	CSV    string `json:"csv,omitempty"`
	Header bool   `json:"header,omitempty"`
	// Samples is the dense alternative: row-major observations.
	Samples [][]float64 `json:"samples,omitempty"`
	// Names labels the variables (optional; explicit Names win over a
	// CSV header row).
	Names []string `json:"names,omitempty"`
	// Center subtracts column means before learning.
	Center  bool        `json:"center,omitempty"`
	Options *JobOptions `json:"options,omitempty"`
}

// JobOptions is the frozen v1 wire form of the legacy least.Options
// (zero = default; "sparse" selects LEAST-SP). The v2 surface replaces
// it with the least.Spec wire form, whose "method" field and
// set-vs-unset distinction this shape cannot express.
type JobOptions struct {
	K                int     `json:"k,omitempty"`
	Alpha            float64 `json:"alpha,omitempty"`
	Lambda           float64 `json:"lambda,omitempty"`
	Epsilon          float64 `json:"epsilon,omitempty"`
	Threshold        float64 `json:"threshold,omitempty"`
	BatchSize        int     `json:"batch_size,omitempty"`
	Sparse           bool    `json:"sparse,omitempty"`
	InitDensity      float64 `json:"init_density,omitempty"`
	MaxOuter         int     `json:"max_outer,omitempty"`
	MaxInner         int     `json:"max_inner,omitempty"`
	ExactTermination bool    `json:"exact_termination,omitempty"`
	Parallelism      int     `json:"parallelism,omitempty"`
	SinkNodes        []int   `json:"sink_nodes,omitempty"`
	Seed             int64   `json:"seed,omitempty"`
}

// toSpec resolves the v1 wire fields to a Spec under the legacy
// zero-means-default rules (least.Options.Spec does the mapping).
func (jo *JobOptions) toSpec() *least.Spec {
	o := least.Defaults()
	if jo == nil {
		return o.Spec()
	}
	if jo.K > 0 {
		o.K = jo.K
	}
	if jo.Alpha > 0 {
		o.Alpha = jo.Alpha
	}
	if jo.Lambda > 0 {
		o.Lambda = jo.Lambda
	}
	if jo.Epsilon > 0 {
		o.Epsilon = jo.Epsilon
	}
	if jo.Threshold > 0 {
		o.Threshold = jo.Threshold
	}
	if jo.BatchSize > 0 {
		o.BatchSize = jo.BatchSize
	}
	o.Sparse = jo.Sparse
	if jo.InitDensity > 0 {
		o.InitDensity = jo.InitDensity
	}
	if jo.MaxOuter > 0 {
		o.MaxOuter = jo.MaxOuter
	}
	if jo.MaxInner > 0 {
		o.MaxInner = jo.MaxInner
	}
	o.ExactTermination = jo.ExactTermination
	o.Parallelism = jo.Parallelism
	o.SinkNodes = jo.SinkNodes
	if jo.Seed != 0 {
		o.Seed = jo.Seed
	}
	return o.Spec()
}

// submitSpec runs the shared inline admission flow and writes the
// response through render (v1 writes the bare Status; v2 wraps it with
// method + dataset identity). Code and body derive from one snapshot,
// so 200 always means the body says done — a fast job finishing
// mid-handler cannot produce the 202-with-done-body combination the v1
// surface never emitted. Centering travels with the job (it is part of
// the cache key, applied when the learn runs), so a centered inline
// submission and a centered dataset_ref of the same raw data share one
// cache entry.
func (a *API) submitSpec(w http.ResponseWriter, x *least.Matrix, names []string, spec *least.Spec, center bool, render func(*Job, Status) any) {
	j, err := a.m.submitMatrix(x, names, spec, center)
	a.finishSubmit(w, j, err, render)
}

// finishSubmit maps an admission outcome onto the HTTP response.
func (a *API) finishSubmit(w http.ResponseWriter, j *Job, err error, render func(*Job, Status) any) {
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShuttingDown):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := j.Status()
	code := http.StatusAccepted
	if st.State == Done { // answered from the result cache
		code = http.StatusOK
	}
	writeJSON(w, code, render(j, st))
}

func (a *API) submit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	x, names, err := req.matrix()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	a.submitSpec(w, x, names, req.Options.toSpec(), req.Center, func(_ *Job, st Status) any { return st })
}

// matrix materializes the request's samples.
func (req *SubmitRequest) matrix() (*least.Matrix, []string, error) {
	return buildMatrix(req.CSV, req.Header, req.Samples, req.Names)
}

// buildMatrix materializes a submission's samples from whichever data
// envelope was provided — shared by the v1 and v2 submit handlers.
func buildMatrix(csv string, header bool, samples [][]float64, names []string) (*least.Matrix, []string, error) {
	switch {
	case csv != "" && samples != nil:
		return nil, nil, errors.New("provide csv or samples, not both")
	case csv != "":
		return parseCSV(csv, header, names)
	case samples != nil:
		n := len(samples)
		if n == 0 || len(samples[0]) == 0 {
			return nil, nil, errors.New("samples must be a non-empty matrix")
		}
		d := len(samples[0])
		x := least.NewMatrix(n, d)
		for i, row := range samples {
			if len(row) != d {
				return nil, nil, fmt.Errorf("samples row %d has %d values, want %d", i, len(row), d)
			}
			copy(x.Row(i), row)
		}
		return x, names, nil
	default:
		return nil, nil, errors.New("missing samples: provide csv or samples")
	}
}

// parseCSV reads the CSV form through the shared reader; explicit
// request names take precedence over a header row.
func parseCSV(doc string, header bool, names []string) (*least.Matrix, []string, error) {
	x, headerNames, err := csvio.ReadMatrix(strings.NewReader(doc), header)
	if err != nil {
		return nil, nil, fmt.Errorf("csv: %v", err)
	}
	if names == nil {
		names = headerNames
	}
	return x, names, nil
}

// SubmitRequestV2 is the POST /v2/jobs body: either the inline data
// envelope of v1 (CSV or dense samples, names) or a dataset_ref naming
// a dataset registered through POST /v2/datasets, plus centering and
// the learn configuration as a least.Spec wire object — unknown spec
// fields are rejected, set fields are range-validated, and "method"
// selects least / least-sp / notears.
type SubmitRequestV2 struct {
	CSV     string      `json:"csv,omitempty"`
	Header  bool        `json:"header,omitempty"`
	Samples [][]float64 `json:"samples,omitempty"`
	Names   []string    `json:"names,omitempty"`
	// DatasetRef submits by reference: the job reads a registered
	// dataset instead of carrying sample bits, so resubmitting against
	// large data costs bytes proportional to this id, not to n·d.
	DatasetRef string      `json:"dataset_ref,omitempty"`
	Center     bool        `json:"center,omitempty"`
	Spec       *least.Spec `json:"spec,omitempty"`
}

// StatusV2 is the v2 status payload: the v1 Status plus the resolved
// learning method and the input identity — shape (n, d) and the
// dataset fingerprint the result cache keys on (v1 responses stay
// byte-identical by never carrying the extra keys).
type StatusV2 struct {
	Status
	Method             least.Method `json:"method"`
	N                  int          `json:"n"`
	D                  int          `json:"d"`
	DatasetFingerprint string       `json:"dataset_fingerprint,omitempty"`
}

func statusV2Of(j *Job) StatusV2 { return v2Status(j, j.Status()) }

// v2Status decorates a point-in-time v1 snapshot with the immutable
// v2-only job metadata.
func v2Status(j *Job, st Status) StatusV2 {
	return StatusV2{
		Status:             st,
		Method:             j.Method(),
		N:                  j.n,
		D:                  j.d,
		DatasetFingerprint: j.fp,
	}
}

func (a *API) submitV2(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequestV2
	// Strict at the top level too: a legacy "options" envelope or a
	// misspelled "spec" must be a 400, not an all-defaults learn (v1
	// keeps its historical tolerance of unknown keys).
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	render := func(j *Job, st Status) any { return v2Status(j, st) }
	if req.DatasetRef != "" {
		if req.CSV != "" || req.Samples != nil || req.Names != nil || req.Header {
			httpError(w, http.StatusBadRequest, "provide dataset_ref or inline samples, not both")
			return
		}
		j, err := a.m.SubmitDatasetRef(req.DatasetRef, req.Spec, req.Center)
		if err != nil && (errors.Is(err, ErrUnknownDataset) || errors.Is(err, ErrDatasetsDisabled)) {
			code := http.StatusNotFound
			if errors.Is(err, ErrDatasetsDisabled) {
				code = http.StatusServiceUnavailable
			}
			httpError(w, code, "%v", err)
			return
		}
		a.finishSubmit(w, j, err, render)
		return
	}
	x, names, err := buildMatrix(req.CSV, req.Header, req.Samples, req.Names)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	a.submitSpec(w, x, names, req.Spec, req.Center, render)
}

// DatasetRequest is the POST /v2/datasets body: the inline data
// envelope alone (no spec, no centering — those belong to jobs).
// Registration materializes the samples in the daemon's dataset store
// so subsequent jobs can reference them by id, upload-once
// learn-many-times.
type DatasetRequest struct {
	CSV     string      `json:"csv,omitempty"`
	Header  bool        `json:"header,omitempty"`
	Samples [][]float64 `json:"samples,omitempty"`
	Names   []string    `json:"names,omitempty"`
}

func (a *API) datasetCreate(w http.ResponseWriter, r *http.Request) {
	var req DatasetRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	x, names, err := buildMatrix(req.CSV, req.Header, req.Samples, req.Names)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Reject at registration what every learn would reject at
	// submission: a by-reference job must fail on its spec, never on
	// data that could not possibly learn.
	if err := validateSamples(x, names); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	info, created, err := a.m.RegisterDataset(least.FromMatrix(x, names))
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	code := http.StatusOK // deduplicated onto an existing registration
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, info)
}

func (a *API) datasetList(w http.ResponseWriter, r *http.Request) {
	infos := a.m.Datasets()
	if infos == nil {
		infos = []DatasetInfo{}
	}
	writeJSON(w, http.StatusOK, infos)
}

func (a *API) datasetGet(w http.ResponseWriter, r *http.Request) {
	_, info, err := a.m.Dataset(r.PathValue("id"))
	if err != nil {
		code := http.StatusNotFound
		if errors.Is(err, ErrDatasetsDisabled) {
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (a *API) datasetDelete(w http.ResponseWriter, r *http.Request) {
	switch err := a.m.DeleteDataset(r.PathValue("id")); {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, ErrDatasetsDisabled):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		httpError(w, http.StatusNotFound, "%v", err)
	}
}

func (a *API) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.m.List())
}

func (a *API) listV2(w http.ResponseWriter, r *http.Request) {
	jobs := a.m.Jobs()
	out := make([]StatusV2, len(jobs))
	for i, j := range jobs {
		out[i] = statusV2Of(j)
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *API) statusV2(w http.ResponseWriter, r *http.Request) {
	j, err := a.m.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, statusV2Of(j))
}

// events streams the job's life over Server-Sent Events: one
// "progress" event per observable change (coalescing to the latest
// snapshot under load), then a single terminal event named after the
// final state ("done" / "failed" / "cancelled") and EOF. Data payloads
// are the v2 status JSON; event ids are the job's change sequence
// numbers. A dashboard can watch δ(W) converge live:
//
//	curl -N localhost:8080/v2/jobs/j00000001/events
func (a *API) events(w http.ResponseWriter, r *http.Request) {
	j, err := a.m.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by transport")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // keep reverse proxies from spooling the stream
	w.WriteHeader(http.StatusOK)

	ctx := r.Context()
	seen := -1 // deliver the current snapshot first, even for queued jobs
	for {
		st, seq, terminal := j.Watch(ctx, seen)
		if ctx.Err() != nil {
			return // client went away
		}
		name := "progress"
		if terminal {
			name = string(st.State)
		}
		if err := writeSSE(w, name, seq, v2Status(j, st)); err != nil {
			return
		}
		fl.Flush()
		if terminal {
			return
		}
		seen = seq
	}
}

// writeSSE emits one event in the text/event-stream framing.
func writeSSE(w io.Writer, event string, id int, data any) error {
	b, err := json.Marshal(data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", event, id, b)
	return err
}

func (a *API) status(w http.ResponseWriter, r *http.Request) {
	j, err := a.m.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// parseTau reads the ?tau= threshold shared by the graph, query and
// batch-edges routes (default 0.3, the library's Threshold default).
// ok=false means the handler already wrote a 400.
func parseTau(w http.ResponseWriter, r *http.Request) (float64, bool) {
	tau := 0.3
	if s := r.URL.Query().Get("tau"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			httpError(w, http.StatusBadRequest, "bad tau %q", s)
			return 0, false
		}
		tau = v
	}
	return tau, true
}

func (a *API) graph(w http.ResponseWriter, r *http.Request) {
	j, err := a.m.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	tau, ok := parseTau(w, r)
	if !ok {
		return
	}
	// Serve the compiled form's cached render: repeat fetches of the
	// same (job, tau) — dashboards refreshing, batch clients walking a
	// task table — cost a cache hit and a buffer copy instead of a full
	// threshold + bnet rebuild + marshal per request (DESIGN.md §10).
	// The bytes are identical to the historical FromDense/FromCSR +
	// WriteJSON path.
	c, err := a.m.Compiled(j, tau)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(c.NetworkJSON())
}

func (a *API) cancel(w http.ResponseWriter, r *http.Request) {
	st, err := a.m.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownJob):
		httpError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrFinished), errors.Is(err, ErrBatchOwned):
		// Batch-owned is additive: v1 never minted batch jobs, so no
		// historical v1 flow could reach it.
		httpError(w, http.StatusConflict, "%v", err)
	default:
		writeJSON(w, http.StatusOK, st)
	}
}

func (a *API) cancelV2(w http.ResponseWriter, r *http.Request) {
	// Resolve the job before cancelling: a successful Cancel makes the
	// job terminal and thus eligible for concurrent history eviction,
	// after which a re-fetch would 404 a cancel that in fact landed.
	j, err := a.m.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	st, err := a.m.Cancel(j.ID())
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, v2Status(j, st))
	case errors.Is(err, ErrFinished):
		httpError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, ErrUnknownJob): // evicted between Get and Cancel
		httpError(w, http.StatusNotFound, "%v", err)
	default:
		httpError(w, http.StatusConflict, "%v", err)
	}
}

func (a *API) health(w http.ResponseWriter, r *http.Request) {
	hits, misses, entries := a.m.CacheStats()
	body := map[string]any{
		"status":        "ok",
		"jobs":          a.m.Len(),
		"batches":       a.m.Batches().Len(),
		"cache_hits":    hits,
		"cache_misses":  misses,
		"cache_entries": entries,
	}
	// The journal key appears only when durability is enabled, so the
	// default daemon's /healthz bytes are unchanged.
	if st, ok := a.m.JournalStats(); ok {
		body["journal"] = map[string]any{
			"records":  st.Records,
			"bytes":    st.Bytes,
			"fsyncs":   st.Fsyncs,
			"replayed": a.m.met.JournalReplayed.Load(),
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
