package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"repro"
	"repro/internal/bnet"
	"repro/internal/csvio"
)

// API is the JSON/HTTP face of a Manager — the v1 surface served by
// cmd/leastd:
//
//	POST   /v1/jobs             submit (CSV or dense-JSON samples + options)
//	GET    /v1/jobs             list all known jobs
//	GET    /v1/jobs/{id}        status + iteration progress
//	GET    /v1/jobs/{id}/graph  learned network (bnet JSON), ?tau= threshold
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             liveness + pool/cache counters
type API struct {
	m *Manager
}

// NewAPI wraps a manager.
func NewAPI(m *Manager) *API { return &API{m: m} }

// maxRequestBytes bounds a submission body (samples arrive as JSON, so
// even large-d problems fit comfortably; the cap exists so a single
// unauthenticated request cannot buffer unbounded memory).
const maxRequestBytes = 512 << 20

// Handler returns the routed HTTP handler.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", a.submit)
	mux.HandleFunc("GET /v1/jobs", a.list)
	mux.HandleFunc("GET /v1/jobs/{id}", a.status)
	mux.HandleFunc("GET /v1/jobs/{id}/graph", a.graph)
	mux.HandleFunc("DELETE /v1/jobs/{id}", a.cancel)
	mux.HandleFunc("GET /healthz", a.health)
	return mux
}

// SubmitRequest is the POST /v1/jobs body. Exactly one of CSV or
// Samples carries the data; Options fields left at zero fall back to
// the library defaults (least.Defaults).
type SubmitRequest struct {
	// CSV is a complete CSV document: one column per variable, one row
	// per observation; Header marks a leading name row.
	CSV    string `json:"csv,omitempty"`
	Header bool   `json:"header,omitempty"`
	// Samples is the dense alternative: row-major observations.
	Samples [][]float64 `json:"samples,omitempty"`
	// Names labels the variables (optional; explicit Names win over a
	// CSV header row).
	Names []string `json:"names,omitempty"`
	// Center subtracts column means before learning.
	Center  bool        `json:"center,omitempty"`
	Options *JobOptions `json:"options,omitempty"`
}

// JobOptions is the wire form of least.Options (zero = default).
type JobOptions struct {
	K                int     `json:"k,omitempty"`
	Alpha            float64 `json:"alpha,omitempty"`
	Lambda           float64 `json:"lambda,omitempty"`
	Epsilon          float64 `json:"epsilon,omitempty"`
	Threshold        float64 `json:"threshold,omitempty"`
	BatchSize        int     `json:"batch_size,omitempty"`
	Sparse           bool    `json:"sparse,omitempty"`
	InitDensity      float64 `json:"init_density,omitempty"`
	MaxOuter         int     `json:"max_outer,omitempty"`
	MaxInner         int     `json:"max_inner,omitempty"`
	ExactTermination bool    `json:"exact_termination,omitempty"`
	Parallelism      int     `json:"parallelism,omitempty"`
	SinkNodes        []int   `json:"sink_nodes,omitempty"`
	Seed             int64   `json:"seed,omitempty"`
}

// toOptions overlays the wire fields on the library defaults.
func (jo *JobOptions) toOptions() least.Options {
	o := least.Defaults()
	if jo == nil {
		return o
	}
	if jo.K > 0 {
		o.K = jo.K
	}
	if jo.Alpha > 0 {
		o.Alpha = jo.Alpha
	}
	if jo.Lambda > 0 {
		o.Lambda = jo.Lambda
	}
	if jo.Epsilon > 0 {
		o.Epsilon = jo.Epsilon
	}
	if jo.Threshold > 0 {
		o.Threshold = jo.Threshold
	}
	if jo.BatchSize > 0 {
		o.BatchSize = jo.BatchSize
	}
	o.Sparse = jo.Sparse
	if jo.InitDensity > 0 {
		o.InitDensity = jo.InitDensity
	}
	if jo.MaxOuter > 0 {
		o.MaxOuter = jo.MaxOuter
	}
	if jo.MaxInner > 0 {
		o.MaxInner = jo.MaxInner
	}
	o.ExactTermination = jo.ExactTermination
	o.Parallelism = jo.Parallelism
	o.SinkNodes = jo.SinkNodes
	if jo.Seed != 0 {
		o.Seed = jo.Seed
	}
	return o
}

func (a *API) submit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	x, names, err := req.matrix()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Center {
		least.Center(x)
	}
	j, err := a.m.Submit(x, names, req.Options.toOptions())
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, ErrShuttingDown):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := j.Status()
	code := http.StatusAccepted
	if st.State == Done { // answered from the result cache
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// matrix materializes the request's samples.
func (req *SubmitRequest) matrix() (*least.Matrix, []string, error) {
	switch {
	case req.CSV != "" && req.Samples != nil:
		return nil, nil, errors.New("provide csv or samples, not both")
	case req.CSV != "":
		return parseCSV(req.CSV, req.Header, req.Names)
	case req.Samples != nil:
		n := len(req.Samples)
		if n == 0 || len(req.Samples[0]) == 0 {
			return nil, nil, errors.New("samples must be a non-empty matrix")
		}
		d := len(req.Samples[0])
		x := least.NewMatrix(n, d)
		for i, row := range req.Samples {
			if len(row) != d {
				return nil, nil, fmt.Errorf("samples row %d has %d values, want %d", i, len(row), d)
			}
			copy(x.Row(i), row)
		}
		return x, req.Names, nil
	default:
		return nil, nil, errors.New("missing samples: provide csv or samples")
	}
}

// parseCSV reads the CSV form through the shared reader; explicit
// request names take precedence over a header row.
func parseCSV(doc string, header bool, names []string) (*least.Matrix, []string, error) {
	x, headerNames, err := csvio.ReadMatrix(strings.NewReader(doc), header)
	if err != nil {
		return nil, nil, fmt.Errorf("csv: %v", err)
	}
	if names == nil {
		names = headerNames
	}
	return x, names, nil
}

func (a *API) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.m.List())
}

func (a *API) status(w http.ResponseWriter, r *http.Request) {
	j, err := a.m.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (a *API) graph(w http.ResponseWriter, r *http.Request) {
	j, err := a.m.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	tau := 0.3
	if s := r.URL.Query().Get("tau"); s != "" {
		tau, err = strconv.ParseFloat(s, 64)
		if err != nil || math.IsNaN(tau) || math.IsInf(tau, 0) || tau < 0 {
			httpError(w, http.StatusBadRequest, "bad tau %q", s)
			return
		}
	}
	res, names, err := j.Result()
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	var net *bnet.Network
	if res.Weights != nil {
		net = bnet.FromDense(res.Weights, tau, names)
	} else {
		net = bnet.FromCSR(res.SparseWeights, tau, names)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := net.WriteJSON(w); err != nil {
		// headers are gone; nothing better to do than log-level silence
		return
	}
}

func (a *API) cancel(w http.ResponseWriter, r *http.Request) {
	st, err := a.m.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownJob):
		httpError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrFinished):
		httpError(w, http.StatusConflict, "%v", err)
	default:
		writeJSON(w, http.StatusOK, st)
	}
}

func (a *API) health(w http.ResponseWriter, r *http.Request) {
	hits, misses, entries := a.m.CacheStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"jobs":          a.m.Len(),
		"cache_hits":    hits,
		"cache_misses":  misses,
		"cache_entries": entries,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
