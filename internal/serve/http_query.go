package serve

// The read side of the API (DESIGN.md §10): structural queries over
// finished jobs' learned networks, served lock-free from the (job,
// tau) compiled-form cache, plus the cross-task edge-confidence view
// over a batch — "which edges does this fleet of scenario learns
// agree on". Status mapping: 404 for unknown jobs/batches/verbs, 400
// for bad parameters (including unknown node names), 409 for a job
// without a result yet and for d-separation on a graph that is cyclic
// at the requested threshold.

import (
	"bytes"
	"errors"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/query"
)

// querySummary is the GET /v2/jobs/{id}/query/summary payload.
type querySummary struct {
	Job   string   `json:"job"`
	Tau   float64  `json:"tau"`
	D     int      `json:"d"`
	Edges int      `json:"edges"`
	IsDAG bool     `json:"is_dag"`
	Names []string `json:"names"`
}

// queryNeighbors answers the parents / children verbs.
type queryNeighbors struct {
	Job      string           `json:"job"`
	Tau      float64          `json:"tau"`
	Node     query.NodeRef    `json:"node"`
	Parents  []query.Neighbor `json:"parents,omitempty"`
	Children []query.Neighbor `json:"children,omitempty"`
}

// queryBlanket answers the blanket verb.
type queryBlanket struct {
	Job     string          `json:"job"`
	Tau     float64         `json:"tau"`
	Node    query.NodeRef   `json:"node"`
	Blanket []query.NodeRef `json:"blanket"`
}

// queryDSep answers the dsep verb.
type queryDSep struct {
	Job        string          `json:"job"`
	Tau        float64         `json:"tau"`
	X          query.NodeRef   `json:"x"`
	Y          query.NodeRef   `json:"y"`
	Given      []query.NodeRef `json:"given"`
	DSeparated bool            `json:"d_separated"`
}

func (a *API) query(w http.ResponseWriter, r *http.Request) {
	a.m.met.QueryRequests.Add(1)
	j, err := a.m.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	tau, ok := parseTau(w, r)
	if !ok {
		return
	}
	c, err := a.m.Compiled(j, tau)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	switch verb := r.PathValue("verb"); verb {
	case "summary":
		writeJSON(w, http.StatusOK, querySummary{
			Job: j.ID(), Tau: tau, D: c.D(), Edges: c.NumEdges(),
			IsDAG: c.IsDAG(), Names: c.Names(),
		})
	case "parents", "children":
		v, ok := resolveNode(w, c, r.URL.Query().Get("node"))
		if !ok {
			return
		}
		out := queryNeighbors{Job: j.ID(), Tau: tau, Node: nodeRef(c, v)}
		if verb == "parents" {
			out.Parents = c.Parents(v)
		} else {
			out.Children = c.Children(v)
		}
		writeJSON(w, http.StatusOK, out)
	case "blanket":
		v, ok := resolveNode(w, c, r.URL.Query().Get("node"))
		if !ok {
			return
		}
		mb := c.MarkovBlanket(v)
		if mb == nil {
			mb = []query.NodeRef{}
		}
		writeJSON(w, http.StatusOK, queryBlanket{Job: j.ID(), Tau: tau, Node: nodeRef(c, v), Blanket: mb})
	case "dsep":
		a.queryDSep(w, r, j, c, tau)
	default:
		httpError(w, http.StatusNotFound, "unknown query verb %q", verb)
	}
}

func (a *API) queryDSep(w http.ResponseWriter, r *http.Request, j *Job, c *query.Compiled, tau float64) {
	q := r.URL.Query()
	x, ok := resolveParam(w, c, "x", q.Get("x"))
	if !ok {
		return
	}
	y, ok := resolveParam(w, c, "y", q.Get("y"))
	if !ok {
		return
	}
	var z []int
	given := []query.NodeRef{}
	if zs := q.Get("z"); zs != "" {
		for _, s := range strings.Split(zs, ",") {
			v, ok := resolveParam(w, c, "z", strings.TrimSpace(s))
			if !ok {
				return
			}
			z = append(z, v)
			given = append(given, nodeRef(c, v))
		}
	}
	sep, err := c.DSeparated(x, y, z)
	switch {
	case errors.Is(err, query.ErrCyclic):
		httpError(w, http.StatusConflict, "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, queryDSep{
		Job: j.ID(), Tau: tau, X: nodeRef(c, x), Y: nodeRef(c, y),
		Given: given, DSeparated: sep,
	})
}

func nodeRef(c *query.Compiled, v int) query.NodeRef {
	return query.NodeRef{Index: v, Name: c.Name(v)}
}

// resolveNode maps the ?node= parameter (name or decimal index) to a
// node id, writing the 400 itself on failure.
func resolveNode(w http.ResponseWriter, c *query.Compiled, s string) (int, bool) {
	return resolveParam(w, c, "node", s)
}

func resolveParam(w http.ResponseWriter, c *query.Compiled, param, s string) (int, bool) {
	if s == "" {
		httpError(w, http.StatusBadRequest, "missing %s parameter", param)
		return 0, false
	}
	v, err := c.Node(s)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%s: %v", param, err)
		return 0, false
	}
	return v, true
}

// EdgeConfidence is one row of the GET /v2/batches/{id}/edges answer:
// an edge (by node names) with the number of finished task graphs it
// appears in, that count as a fraction of all finished graphs, and the
// mean learned weight across its appearances.
type EdgeConfidence struct {
	From       string  `json:"from"`
	To         string  `json:"to"`
	Count      int     `json:"count"`
	Support    float64 `json:"support"`
	MeanWeight float64 `json:"mean_weight"`
}

// batchEdgesResponse is the GET /v2/batches/{id}/edges payload.
// Graphs counts the distinct finished jobs aggregated (deduplicated
// tasks share a job and contribute once); Missing counts done tasks
// whose job the manager has already evicted from history. TotalEdges
// is the distinct-edge count before min_support and limit trimming.
type batchEdgesResponse struct {
	Batch      string           `json:"batch"`
	Tau        float64          `json:"tau"`
	Graphs     int              `json:"graphs"`
	Missing    int              `json:"missing"`
	TotalEdges int              `json:"total_edges"`
	Edges      []EdgeConfidence `json:"edges"`
}

func (a *API) batchEdges(w http.ResponseWriter, r *http.Request) {
	a.m.met.QueryRequests.Add(1)
	b, err := a.m.Batches().Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	tau, ok := parseTau(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	minSupport := 0.0
	if s := q.Get("min_support"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || math.IsNaN(v) || v < 0 || v > 1 {
			httpError(w, http.StatusBadRequest, "bad min_support %q (want [0,1])", s)
			return
		}
		minSupport = v
	}
	limit := 0
	if s := q.Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, "bad limit %q", s)
			return
		}
		limit = v
	}

	// Aggregate over the distinct finished jobs behind the batch's done
	// tasks. Keying by node names (not indices) lets a manifest mix
	// shapes; a job evicted by history pressure is reported, not an
	// error — the view degrades gracefully under churn.
	rows, _ := b.Tasks(0, 0, Done)
	type acc struct {
		count int
		wsum  float64
	}
	agg := make(map[[2]string]*acc)
	seen := make(map[string]bool)
	graphs, missing := 0, 0
	for _, row := range rows {
		if row.Job == "" || seen[row.Job] {
			continue
		}
		seen[row.Job] = true
		j, err := a.m.Get(row.Job)
		if err != nil {
			missing++
			continue
		}
		c, err := a.m.Compiled(j, tau)
		if err != nil {
			missing++ // task table races a terminal transition; skip
			continue
		}
		graphs++
		c.Edges(func(from, to int, wgt float64) {
			k := [2]string{c.Name(from), c.Name(to)}
			e := agg[k]
			if e == nil {
				e = &acc{}
				agg[k] = e
			}
			e.count++
			e.wsum += wgt
		})
	}

	edges := make([]EdgeConfidence, 0, len(agg))
	for k, e := range agg {
		ec := EdgeConfidence{
			From:       k[0],
			To:         k[1],
			Count:      e.count,
			Support:    float64(e.count) / float64(graphs),
			MeanWeight: e.wsum / float64(e.count),
		}
		if ec.Support < minSupport {
			continue
		}
		edges = append(edges, ec)
	}
	sort.Slice(edges, func(i, k int) bool {
		if edges[i].Count != edges[k].Count {
			return edges[i].Count > edges[k].Count
		}
		wi, wk := math.Abs(edges[i].MeanWeight), math.Abs(edges[k].MeanWeight)
		if wi != wk {
			return wi > wk
		}
		if edges[i].From != edges[k].From {
			return edges[i].From < edges[k].From
		}
		return edges[i].To < edges[k].To
	})
	total := len(edges)
	if limit > 0 && len(edges) > limit {
		edges = edges[:limit]
	}
	writeJSON(w, http.StatusOK, batchEdgesResponse{
		Batch: b.ID(), Tau: tau, Graphs: graphs, Missing: missing,
		TotalEdges: total, Edges: edges,
	})
}

// metrics serves the Prometheus text exposition (content type
// version=0.0.4). Rendered into a buffer first so a slow scraper
// cannot hold manager-internal mutexes open mid-write.
func (a *API) metrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	a.m.WriteMetrics(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}
