package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro"
)

// fastDataset is a small ER-2 problem a dense learn solves in well
// under a second.
func fastDataset(seed int64) (*least.Matrix, least.Options) {
	truth := least.GenerateDAG(seed, least.ErdosRenyi, 15, 2)
	x := least.SampleLSEM(seed+1, truth, 150, least.GaussianNoise)
	o := least.Defaults()
	o.Lambda = 0.2
	o.Epsilon = 1e-3
	return x, o
}

// slowDataset is a problem sized so the augmented-Lagrangian loop runs
// for many seconds (ε is unreachably tight), giving cancellation tests
// a wide window.
func slowDataset(seed int64) (*least.Matrix, least.Options) {
	truth := least.GenerateDAG(seed, least.ErdosRenyi, 100, 2)
	x := least.SampleLSEM(seed+1, truth, 250, least.GaussianNoise)
	o := least.Defaults()
	o.Lambda = 0.01
	o.Epsilon = 1e-12
	o.MaxOuter = 64
	o.MaxInner = 2000
	return x, o
}

func waitState(t *testing.T, j *Job, want State, timeout time.Duration) Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := j.Status()
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached terminal state %s (err %q), want %s", j.ID(), st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s after %v, want %s", j.ID(), st.State, timeout, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func shutdown(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	m.Shutdown(ctx)
}

func TestCapParallelism(t *testing.T) {
	cases := []struct{ req, procs, slots, want int }{
		{0, 8, 2, 4},  // default request: equal share
		{0, 8, 1, 8},  // single slot gets the machine
		{2, 8, 2, 2},  // smaller explicit request honored
		{16, 8, 2, 4}, // oversized request capped
		{0, 2, 4, 1},  // more slots than cores: floor at 1
		{0, 8, 0, 8},  // degenerate slot count normalized
	}
	for _, c := range cases {
		if got := CapParallelism(c.req, c.procs, c.slots); got != c.want {
			t.Errorf("CapParallelism(%d, %d, %d) = %d, want %d", c.req, c.procs, c.slots, got, c.want)
		}
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	r1, r2, r3 := &least.Result{}, &least.Result{}, &least.Result{}
	c.put("a", r1)
	c.put("b", r2)
	if got, ok := c.get("a"); !ok || got != r1 {
		t.Fatal("a should be cached")
	}
	c.put("c", r3) // evicts b (least recently used after the get of a)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived eviction")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c should be cached")
	}
	hits, misses, entries := c.stats()
	if entries != 2 || hits != 3 || misses != 1 {
		t.Fatalf("stats = (%d hits, %d misses, %d entries)", hits, misses, entries)
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	x, o := fastDataset(1)
	base := CacheKey(x, nil, o)
	if CacheKey(x, nil, o) != base {
		t.Fatal("key not deterministic")
	}
	x2 := x.Clone()
	x2.Set(0, 0, x2.At(0, 0)+1e-9)
	if CacheKey(x2, nil, o) == base {
		t.Fatal("data perturbation must change the key")
	}
	o2 := o
	o2.Lambda += 0.01
	if CacheKey(x, nil, o2) == base {
		t.Fatal("option change must change the key")
	}
	names := make([]string, x.Cols())
	for i := range names {
		names[i] = "v"
	}
	if CacheKey(x, names, o) == base {
		t.Fatal("names must be part of the key")
	}
}

func TestSubmitValidation(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1})
	defer shutdown(t, m)
	if _, err := m.Submit(nil, nil, least.Defaults()); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := m.Submit(least.NewMatrix(3, 1), nil, least.Defaults()); err == nil {
		t.Error("single variable accepted")
	}
	bad := least.NewMatrix(2, 2)
	bad.Set(0, 0, 1)
	bad.Set(1, 1, 2)
	bad.Set(0, 1, 1/bad.At(1, 0)) // +Inf: 1/0
	if _, err := m.Submit(bad, nil, least.Defaults()); err == nil {
		t.Error("Inf matrix accepted")
	}
	good := least.NewMatrix(2, 2)
	if _, err := m.Submit(good, []string{"only-one"}, least.Defaults()); err == nil {
		t.Error("name/column mismatch accepted")
	}
}

func TestJobRunsAndSecondSubmissionHitsCache(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1})
	defer shutdown(t, m)
	x, o := fastDataset(3)
	j, err := m.Submit(x, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, j, Done, 60*time.Second)
	if st.Cached {
		t.Fatal("first run cannot be a cache hit")
	}
	if st.InnerIters == 0 || st.Solves == 0 {
		t.Fatalf("progress never reported: %+v", st)
	}
	res, _, err := j.Result()
	if err != nil || res.Weights == nil {
		t.Fatalf("Result: %v", err)
	}

	// Identical resubmission: answered from cache, born done.
	x2, o2 := fastDataset(3)
	j2, err := m.Submit(x2, nil, o2)
	if err != nil {
		t.Fatal(err)
	}
	st2 := j2.Status()
	if st2.State != Done || !st2.Cached {
		t.Fatalf("resubmission not served from cache: %+v", st2)
	}
	res2, _, err := j2.Result()
	if err != nil || res2 != res {
		t.Fatalf("cached job must share the result pointer, got %v", err)
	}

	// Different seed misses the cache.
	x3, o3 := fastDataset(4)
	j3, err := m.Submit(x3, nil, o3)
	if err != nil {
		t.Fatal(err)
	}
	if j3.Status().Cached {
		t.Fatal("different dataset must miss the cache")
	}
	waitState(t, j3, Done, 60*time.Second)
}

func TestCancelQueuedJob(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1})
	defer shutdown(t, m)
	xs, os := slowDataset(5)
	blocker, err := m.Submit(xs, nil, os)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, Running, 10*time.Second)

	xq, oq := fastDataset(6)
	queued, err := m.Submit(xq, nil, oq)
	if err != nil {
		t.Fatal(err)
	}
	if st := queued.Status(); st.State != Queued {
		t.Fatalf("second job should wait behind the pool, got %s", st.State)
	}
	st, err := m.Cancel(queued.ID())
	if err != nil || st.State != Cancelled {
		t.Fatalf("cancel queued: %v, state %s", err, st.State)
	}
	if _, err := m.Cancel(blocker.ID()); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	waitState(t, blocker, Cancelled, 30*time.Second)
}

func TestCancelRunningJobMidIteration(t *testing.T) {
	leakCheck(t)
	m := NewManager(Config{MaxConcurrent: 1})
	defer shutdown(t, m)
	x, o := slowDataset(7)
	j, err := m.Submit(x, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for real optimization progress, then cancel mid-run.
	deadline := time.Now().Add(30 * time.Second)
	for j.Status().InnerIters == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no progress after 30s: %+v", j.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancelAt := time.Now()
	if _, err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, j, Cancelled, 30*time.Second)
	if lat := time.Since(cancelAt); lat > 15*time.Second {
		t.Fatalf("cancellation latency %v — not within iteration granularity", lat)
	}
	if st.Error == "" {
		t.Fatal("cancelled status should carry the cancellation error")
	}
	// Cancel is idempotent on an already-cancelled job…
	if _, err := m.Cancel(j.ID()); err != nil {
		t.Fatalf("re-cancel: %v", err)
	}
	// …and rejected on finished ones.
	xf, of := fastDataset(8)
	fin, err := m.Submit(xf, nil, of)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, fin, Done, 60*time.Second)
	if _, err := m.Cancel(fin.ID()); !errors.Is(err, ErrFinished) {
		t.Fatalf("cancel done job: %v, want ErrFinished", err)
	}
}

func TestQueueFullShedsLoad(t *testing.T) {
	leakCheck(t)
	m := NewManager(Config{MaxConcurrent: 1, QueueDepth: 1})
	defer shutdown(t, m)
	xs, os := slowDataset(9)
	blocker, err := m.Submit(xs, nil, os)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, Running, 10*time.Second)
	x1, o1 := fastDataset(10)
	queued, err := m.Submit(x1, nil, o1)
	if err != nil {
		t.Fatalf("queue slot should be free: %v", err)
	}
	x2, o2 := fastDataset(11)
	if _, err := m.Submit(x2, nil, o2); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull queue: %v, want ErrQueueFull", err)
	}
	// Cancelling the queued job frees its admission slot immediately —
	// a cancelled job must not keep shedding load.
	if _, err := m.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	x3, o3 := fastDataset(11)
	if _, err := m.Submit(x3, nil, o3); err != nil {
		t.Fatalf("slot not freed by cancel: %v", err)
	}
}

func TestShutdownCancelsRunningAndRejectsNew(t *testing.T) {
	leakCheck(t)
	m := NewManager(Config{MaxConcurrent: 1})
	x, o := slowDataset(12)
	j, err := m.Submit(x, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, Running, 10*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	m.Shutdown(ctx) // deadline passes → hard-cancel
	if st := j.Status(); st.State != Cancelled {
		t.Fatalf("running job after shutdown: %s, want cancelled", st.State)
	}
	xf, of := fastDataset(13)
	if _, err := m.Submit(xf, nil, of); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after shutdown: %v, want ErrShuttingDown", err)
	}
}

func TestHistoryEviction(t *testing.T) {
	leakCheck(t)
	m := NewManager(Config{MaxConcurrent: 1, MaxHistory: 2, CacheSize: -1})
	defer shutdown(t, m)
	var last *Job
	for i := 0; i < 3; i++ {
		x, o := fastDataset(int64(20 + i))
		j, err := m.Submit(x, nil, o)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, j, Done, 60*time.Second)
		if i == 0 {
			last = j
		}
	}
	if len(m.List()) != 2 {
		t.Fatalf("history size %d, want 2", len(m.List()))
	}
	if _, err := m.Get(last.ID()); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("oldest job should be evicted, got %v", err)
	}
}
