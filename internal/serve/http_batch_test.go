package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro"
)

// samplesFor generates a small ER-2 sample matrix as wire rows.
func samplesFor(seed int64, d, n int) [][]float64 {
	truth := least.GenerateDAG(seed, least.ErdosRenyi, d, 2)
	x := least.SampleLSEM(seed+1, truth, n, least.GaussianNoise)
	rows := make([][]float64, x.Rows())
	for i := range rows {
		rows[i] = append([]float64(nil), x.Row(i)...)
	}
	return rows
}

// quickSpec is a fast-solving spec in wire form.
const quickSpec = `{"lambda": 0.2, "epsilon": 0.001, "max_outer": 2, "max_inner": 10, "parallelism": 1, "seed": 9}`

// batchTaskJSON builds one inline manifest task.
func batchTaskJSON(id string, seed int64) map[string]any {
	return map[string]any{
		"id":      id,
		"samples": samplesFor(seed, 6, 40),
		"spec":    json.RawMessage(quickSpec),
	}
}

func decodeBatchStatus(t *testing.T, b []byte) BatchStatus {
	t.Helper()
	var st BatchStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("batch status decode: %v\n%s", err, b)
	}
	return st
}

// pollBatch polls GET /v2/batches/{id} until the batch reaches want.
func pollBatch(t *testing.T, base, id string, want BatchState, timeout time.Duration) BatchStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, b := doJSON(t, http.MethodGet, base+"/v2/batches/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("poll batch %s: HTTP %d\n%s", id, code, b)
		}
		st := decodeBatchStatus(t, b)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("batch %s terminal in %s, want %s: %+v", id, st.State, want, st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHTTPBatchLifecycle drives the acceptance path over the wire:
// submit a manifest with repeats and broken tasks → 202, watch
// progress, page the per-task table, read the error table through the
// state filter, and fetch a learned graph through the shared job id.
func TestHTTPBatchLifecycle(t *testing.T) {
	srv, _ := newTestServer(t)
	base := srv.URL

	tasks := []map[string]any{
		batchTaskJSON("u0-a", 900), // unique task, repeated twice below
		batchTaskJSON("u1", 910),
		batchTaskJSON("u0-b", 900), // identical to u0-a: must dedupe
		{"id": "no-source"},
		{"id": "local-file", "in": []string{"/etc/passwd"}},
		{"id": "bad-ref", "dataset_ref": "d-nope", "samples": nil},
		// NaN inline data is a *validation* failure at resolution, the
		// same code leastcli -batch draws for the same manifest line —
		// never an "internal" learner error.
		{"id": "nan-inline", "csv": "1,nan\n2,3\n3,4\n"},
	}
	code, body := doJSON(t, http.MethodPost, base+"/v2/batches", map[string]any{"tasks": tasks})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d\n%s", code, body)
	}
	st := decodeBatchStatus(t, body)
	if st.ID == "" || st.Total != 7 || st.Failed != 4 {
		t.Fatalf("admission snapshot: %+v", st)
	}

	st = pollBatch(t, base, st.ID, BatchDone, 60*time.Second)
	if st.Done != 3 || st.Failed != 4 || st.Deduped != 1 {
		t.Fatalf("final counters: %+v", st)
	}

	// The batch shows up in the listing.
	code, body = doJSON(t, http.MethodGet, base+"/v2/batches", nil)
	var listed []BatchStatus
	if code != http.StatusOK || json.Unmarshal(body, &listed) != nil || len(listed) != 1 || listed[0].ID != st.ID {
		t.Fatalf("list: HTTP %d\n%s", code, body)
	}

	// Page the task table two rows at a time.
	var rows []TaskStatus
	for offset := 0; ; {
		code, body = doJSON(t, http.MethodGet,
			fmt.Sprintf("%s/v2/batches/%s/tasks?offset=%d&limit=2", base, st.ID, offset), nil)
		if code != http.StatusOK {
			t.Fatalf("tasks page: HTTP %d\n%s", code, body)
		}
		var page TaskPage
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatal(err)
		}
		if page.Total != 7 || page.Limit != 2 {
			t.Fatalf("page envelope: %+v", page)
		}
		rows = append(rows, page.Tasks...)
		offset += len(page.Tasks)
		if offset >= page.Total {
			break
		}
	}
	if len(rows) != 7 {
		t.Fatalf("paged %d rows, want 7", len(rows))
	}
	if !rows[2].Deduped || rows[2].Job == "" || rows[2].Job != rows[0].Job {
		t.Errorf("repeat task did not share its twin's job: %+v vs %+v", rows[2], rows[0])
	}
	for i := 3; i < 7; i++ {
		if rows[i].State != Failed || rows[i].Code != TaskCodeValidation || rows[i].Error == "" {
			t.Errorf("broken task %d: %+v", i, rows[i])
		}
	}

	// The error table alone.
	code, body = doJSON(t, http.MethodGet, base+"/v2/batches/"+st.ID+"/tasks?state=failed", nil)
	var failedPage TaskPage
	if code != http.StatusOK || json.Unmarshal(body, &failedPage) != nil || failedPage.Total != 4 || len(failedPage.Tasks) != 4 {
		t.Fatalf("failed filter: HTTP %d\n%s", code, body)
	}

	// A finished task's network is one GET away via its job id.
	code, body = doJSON(t, http.MethodGet, base+"/v2/jobs/"+rows[0].Job+"/graph?tau=0.3", nil)
	var g wireGraph
	if code != http.StatusOK || json.Unmarshal(body, &g) != nil || len(g.Nodes) != 6 {
		t.Fatalf("graph of batch task: HTTP %d\n%s", code, body)
	}

	// A late SSE subscriber gets exactly the terminal snapshot.
	resp, err := http.Get(base + "/v2/batches/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	events := readSSE(t, bufio.NewReader(resp.Body), 10)
	if len(events) != 1 || events[0].name != string(BatchDone) {
		t.Fatalf("late subscriber events: %+v", events)
	}
	var final BatchStatus
	if err := json.Unmarshal([]byte(events[0].data), &final); err != nil || final.Done != 3 {
		t.Fatalf("terminal payload: %v\n%s", err, events[0].data)
	}
}

// TestHTTPBatchThousandTasks is the acceptance criterion verbatim: a
// 1,000-task POST with 100 unique tasks completes with exactly 100
// cache-miss solves, per-task results pageable over the wire, and a
// working follow-up cancel path (already terminal → 409).
func TestHTTPBatchThousandTasks(t *testing.T) {
	srv, m := newTestServer(t)
	base := srv.URL
	const unique, repeats = 100, 10

	uniqueTasks := make([]map[string]any, unique)
	for u := range uniqueTasks {
		uniqueTasks[u] = batchTaskJSON("", int64(10000+10*u))
	}
	tasks := make([]map[string]any, 0, unique*repeats)
	for r := 0; r < repeats; r++ {
		for u, task := range uniqueTasks {
			clone := map[string]any{"id": fmt.Sprintf("r%02du%03d", r, u)}
			for k, v := range task {
				if k != "id" {
					clone[k] = v
				}
			}
			tasks = append(tasks, clone)
		}
	}
	code, body := doJSON(t, http.MethodPost, base+"/v2/batches", map[string]any{"tasks": tasks})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d\n%s", code, body)
	}
	st := pollBatch(t, base, decodeBatchStatus(t, body).ID, BatchDone, 300*time.Second)
	if st.Total != unique*repeats || st.Done != st.Total || st.Failed != 0 {
		t.Fatalf("final counters: %+v", st)
	}
	if st.Deduped != unique*(repeats-1) {
		t.Errorf("deduped = %d, want %d", st.Deduped, unique*(repeats-1))
	}
	jobs := map[string]bool{}
	seen := 0
	for offset := 0; ; {
		code, body := doJSON(t, http.MethodGet,
			fmt.Sprintf("%s/v2/batches/%s/tasks?offset=%d&limit=250", base, st.ID, offset), nil)
		if code != http.StatusOK {
			t.Fatalf("tasks page: HTTP %d\n%s", code, body)
		}
		var page TaskPage
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatal(err)
		}
		for _, row := range page.Tasks {
			if row.State != Done || row.Job == "" {
				t.Fatalf("task %d: %+v", row.Index, row)
			}
			jobs[row.Job] = true
		}
		seen += len(page.Tasks)
		offset += len(page.Tasks)
		if offset >= page.Total {
			break
		}
	}
	if seen != unique*repeats || len(jobs) != unique {
		t.Fatalf("paged %d rows over %d distinct jobs, want %d rows / exactly %d solves",
			seen, len(jobs), unique*repeats, unique)
	}
	if _, misses, _ := m.CacheStats(); misses != unique {
		t.Errorf("cache misses = %d, want exactly %d", misses, unique)
	}
	if code, _ := doJSON(t, http.MethodDelete, base+"/v2/batches/"+st.ID, nil); code != http.StatusConflict {
		t.Errorf("cancel of completed fleet: HTTP %d, want 409", code)
	}
}

// TestHTTPBatchCancelMidFlight: a live SSE subscriber observes the
// cancellation of a running batch, DELETE is idempotent, and a done
// batch refuses cancellation with 409.
func TestHTTPBatchCancelMidFlight(t *testing.T) {
	srv, m := newTestServer(t)
	base := srv.URL

	// Park the single pool slot so the batch stays queued while the
	// subscriber attaches.
	xs, os := slowDataset(920)
	blocker, err := m.Submit(xs, nil, os)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, Running, 10*time.Second)

	tasks := []map[string]any{batchTaskJSON("c0", 930), batchTaskJSON("c1", 940)}
	code, body := doJSON(t, http.MethodPost, base+"/v2/batches", map[string]any{"tasks": tasks})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d\n%s", code, body)
	}
	st := decodeBatchStatus(t, body)

	resp, err := http.Get(base + "/v2/batches/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)
	first := readSSE(t, r, 1)
	if len(first) != 1 || first[0].name != "progress" {
		t.Fatalf("first frame: %+v", first)
	}

	code, body = doJSON(t, http.MethodDelete, base+"/v2/batches/"+st.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d\n%s", code, body)
	}
	if got := decodeBatchStatus(t, body); got.State != BatchCancelled || got.Cancelled != 2 {
		t.Fatalf("cancel snapshot: %+v", got)
	}
	events := readSSE(t, r, 10)
	if len(events) == 0 || events[len(events)-1].name != string(BatchCancelled) {
		t.Fatalf("subscriber missed the cancellation: %+v", events)
	}
	// Idempotent re-cancel.
	if code, body = doJSON(t, http.MethodDelete, base+"/v2/batches/"+st.ID, nil); code != http.StatusOK {
		t.Fatalf("re-cancel: HTTP %d\n%s", code, body)
	}
	if _, err := m.Cancel(blocker.ID()); err != nil {
		t.Fatal(err)
	}

	// A completed batch refuses cancellation.
	code, body = doJSON(t, http.MethodPost, base+"/v2/batches",
		map[string]any{"tasks": []map[string]any{batchTaskJSON("d0", 950)}})
	if code != http.StatusAccepted {
		t.Fatalf("second submit: HTTP %d\n%s", code, body)
	}
	done := decodeBatchStatus(t, body)
	pollBatch(t, base, done.ID, BatchDone, 60*time.Second)
	if code, body = doJSON(t, http.MethodDelete, base+"/v2/batches/"+done.ID, nil); code != http.StatusConflict {
		t.Fatalf("cancel done batch: HTTP %d\n%s", code, body)
	}
}

// TestHTTPBatchBadRequests covers the whole-request failure modes —
// everything else must degrade to per-task error rows.
func TestHTTPBatchBadRequests(t *testing.T) {
	srv, _ := newTestServer(t)
	base := srv.URL

	cases := []struct {
		name string
		body any
	}{
		{"empty manifest", map[string]any{"tasks": []map[string]any{}}},
		{"missing tasks key", map[string]any{}},
		{"unknown top-level key", map[string]any{"task": []map[string]any{}}},
	}
	for _, c := range cases {
		if code, body := doJSON(t, http.MethodPost, base+"/v2/batches", c.body); code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d\n%s", c.name, code, body)
		}
	}
	if code, _ := doJSON(t, http.MethodGet, base+"/v2/batches/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown batch status: HTTP %d", code)
	}
	if code, _ := doJSON(t, http.MethodGet, base+"/v2/batches/nope/tasks", nil); code != http.StatusNotFound {
		t.Errorf("unknown batch tasks: HTTP %d", code)
	}
	if code, _ := doJSON(t, http.MethodDelete, base+"/v2/batches/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown batch cancel: HTTP %d", code)
	}
	if code, _ := doJSON(t, http.MethodGet, base+"/v2/batches/nope/events", nil); code != http.StatusNotFound {
		t.Errorf("unknown batch events: HTTP %d", code)
	}

	// Parameter validation on a real batch.
	code, body := doJSON(t, http.MethodPost, base+"/v2/batches",
		map[string]any{"tasks": []map[string]any{batchTaskJSON("p0", 960)}})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d\n%s", code, body)
	}
	id := decodeBatchStatus(t, body).ID
	for _, q := range []string{"offset=-1", "offset=x", "limit=0", "limit=x", "state=bogus"} {
		if code, body := doJSON(t, http.MethodGet, base+"/v2/batches/"+id+"/tasks?"+q, nil); code != http.StatusBadRequest {
			t.Errorf("?%s: HTTP %d\n%s", q, code, body)
		}
	}
}
