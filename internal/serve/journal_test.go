package serve

// Crash-recovery suite for the durability subsystem (DESIGN.md §11):
// kill-and-restart proofs over interactive jobs, multi-hundred-task
// batches hard-stopped at randomized points, journal corruption
// tolerance, and the shutdown drain barrier. Manager.crash() models
// SIGKILL — the emitter queue is discarded, workers die with no drain
// protocol — so a recovered daemon sees exactly what a real restart
// would find on disk.

import (
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro"
	"repro/internal/journal"
)

func openJournaled(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := OpenManager(cfg)
	if err != nil {
		t.Fatalf("OpenManager: %v", err)
	}
	return m
}

func waitDone(t *testing.T, j *Job, timeout time.Duration) Status {
	t.Helper()
	return waitState(t, j, Done, timeout)
}

// sameResult compares two results for bit-identity: the journal
// round-trips float64 exactly, so recovery must not perturb a single
// bit of a learned network.
func sameResult(a, b *least.Result) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Delta != b.Delta || a.H != b.H || a.Converged != b.Converged ||
		a.OuterIters != b.OuterIters || a.InnerIters != b.InnerIters {
		return false
	}
	if (a.Weights == nil) != (b.Weights == nil) {
		return false
	}
	if a.Weights != nil {
		if a.Weights.Rows() != b.Weights.Rows() || a.Weights.Cols() != b.Weights.Cols() {
			return false
		}
		for i := 0; i < a.Weights.Rows(); i++ {
			ra, rb := a.Weights.Row(i), b.Weights.Row(i)
			for k := range ra {
				if ra[k] != rb[k] {
					return false
				}
			}
		}
	}
	return true
}

// replayTypes folds a journal directory into per-type record counts
// plus the set of job ids with a journaled Done terminal.
func replayTypes(t *testing.T, dir string) (map[string]int, map[string]bool) {
	t.Helper()
	counts := make(map[string]int)
	done := make(map[string]bool)
	_, corrupt, err := journal.Replay(dir, func(rec journal.Record) error {
		counts[rec.Type]++
		if rec.Type == recJobTerminal {
			var term jobTerminalRecord
			if json.Unmarshal(rec.Data, &term) == nil && term.State == Done {
				done[term.ID] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("replay %s: %v", dir, err)
	}
	if corrupt != nil {
		t.Logf("replay stopped at corruption: %s", corrupt)
	}
	return counts, done
}

// TestJournalDisabledIsNoop pins the default: without JournalDir the
// manager runs purely in memory — no journal stats, no files, no
// recovery metrics.
func TestJournalDisabledIsNoop(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1})
	defer shutdown(t, m)
	if _, ok := m.JournalStats(); ok {
		t.Fatal("journal stats reported with journaling disabled")
	}
	x, o := fastDataset(41)
	j, err := m.Submit(x, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 30*time.Second)
	if m.met.JournalReplayed.Load() != 0 || m.met.JournalRestarts.Load() != 0 {
		t.Fatal("recovery counters moved without a journal")
	}
}

// TestJournalRecoverDoneJob proves the durable half of the round trip:
// a drained shutdown persists a finished job, and the restarted daemon
// serves its id, its bit-identical result, and a cache hit for a
// resubmission of the same work.
func TestJournalRecoverDoneJob(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{MaxConcurrent: 1, JournalDir: dir}
	m := openJournaled(t, cfg)
	x, o := fastDataset(7)
	j, err := m.Submit(x, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 30*time.Second)
	want, _, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	shutdown(t, m)

	m2 := openJournaled(t, cfg)
	defer shutdown(t, m2)
	if got := m2.met.JournalReplayed.Load(); got == 0 {
		t.Fatal("no records replayed")
	}
	j2, err := m2.Get(j.ID())
	if err != nil {
		t.Fatalf("recovered daemon lost job %s: %v", j.ID(), err)
	}
	st := j2.Status()
	if st.State != Done || st.Code != "" {
		t.Fatalf("recovered job state = %s (code %q), want done", st.State, st.Code)
	}
	got, _, err := j2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(want, got) {
		t.Fatal("recovered result differs from the journaled one")
	}
	// The replayed cache must answer a resubmission without a solve.
	j3, err := m2.Submit(x, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	if st := j3.Status(); st.State != Done || !st.Cached {
		t.Fatalf("resubmission after recovery: state %s cached %v, want a born-done cache hit", st.State, st.Cached)
	}
	// Job ids must not be reused across incarnations.
	if j3.ID() == j.ID() {
		t.Fatalf("job id %s reissued after restart", j.ID())
	}
}

// TestJournalInterruptedInteractiveJobRestartFails pins the recovery
// policy for interactive work: a job caught mid-solve by a crash comes
// back failed with the typed "restart" code — never silently re-run,
// never vanished.
func TestJournalInterruptedInteractiveJobRestartFails(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{MaxConcurrent: 1, JournalDir: dir}
	m := openJournaled(t, cfg)
	x, o := slowDataset(3)
	j, err := m.Submit(x, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, Running, 30*time.Second)
	// The admission record rides the async emitter, and crash()
	// discards anything still queued (a real SIGKILL would too). This
	// test is about the journaled-then-interrupted case, so wait for
	// the record to reach the writer before pulling the plug.
	for deadline := time.Now().Add(10 * time.Second); m.jnl.w.Stats().Records == 0; {
		if time.Now().After(deadline) {
			t.Fatal("admission record never reached the journal")
		}
		time.Sleep(time.Millisecond)
	}
	m.crash()

	m2 := openJournaled(t, cfg)
	defer shutdown(t, m2)
	j2, err := m2.Get(j.ID())
	if err != nil {
		t.Fatalf("recovered daemon lost interrupted job: %v", err)
	}
	st := j2.Status()
	if st.State != Failed || st.Code != TaskCodeRestart {
		t.Fatalf("interrupted job recovered as %s (code %q), want failed/restart", st.State, st.Code)
	}
	if st.Error != ErrRestart.Error() {
		t.Fatalf("interrupted job error = %q, want %q", st.Error, ErrRestart)
	}
	if got := m2.met.JournalRestarts.Load(); got != 1 {
		t.Fatalf("restart failures = %d, want 1", got)
	}
}

// TestJournalShutdownDrainDurable is the drain barrier proof
// (satellite: Shutdown flushes pending notifications before
// returning). The fsync interval is an hour, so every record on disk
// after Shutdown got there through the close path's explicit drain +
// fsync — not through timing luck.
func TestJournalShutdownDrainDurable(t *testing.T) {
	dir := t.TempDir()
	m := openJournaled(t, Config{MaxConcurrent: 2, JournalDir: dir, JournalFsync: time.Hour})
	const n = 3
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		x, o := fastDataset(int64(100 + i))
		j, err := m.Submit(x, nil, o)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID())
	}
	for _, id := range ids {
		j, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j, 30*time.Second)
	}
	shutdown(t, m)

	counts, done := replayTypes(t, dir)
	if counts[recJob] != n || counts[recJobTerminal] != n {
		t.Fatalf("journal after drained shutdown: %d job + %d terminal records, want %d each", counts[recJob], counts[recJobTerminal], n)
	}
	for _, id := range ids {
		if !done[id] {
			t.Fatalf("job %s finished before Shutdown but its terminal record is not durable", id)
		}
	}
}

// tinyBatchSpecs builds n distinct small tasks with journable
// manifests, sized so a solve takes milliseconds — the unit of the
// multi-hundred-task crash drills.
func tinyBatchSpecs(t *testing.T, n int) []BatchTaskSpec {
	t.Helper()
	specs := make([]BatchTaskSpec, n)
	for i := range specs {
		seed := int64(1000 + 2*i)
		truth := least.GenerateDAG(seed, least.ErdosRenyi, 6, 2)
		x := least.SampleLSEM(seed+1, truth, 60, least.GaussianNoise)
		o := least.Defaults()
		o.Lambda = 0.3
		o.Epsilon = 5e-3
		samples := make([][]float64, x.Rows())
		for r := range samples {
			samples[r] = x.Row(r)
		}
		mt := &least.ManifestTask{ID: labelFor(i), Samples: samples, Spec: o.Spec()}
		ds, err := mt.Data(least.DatasetOptions{})
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = BatchTaskSpec{Label: mt.ID, Dataset: ds, Spec: mt.Spec, Manifest: mt}
	}
	return specs
}

func labelFor(i int) string {
	return "task-" + string([]byte{byte('0' + i/100), byte('0' + i/10%10), byte('0' + i%10)})
}

// batchResults waits for the batch to finish and collects every row's
// result by label, asserting all rows are done.
func batchResults(t *testing.T, m *Manager, b *Batch, timeout time.Duration) map[string]*least.Result {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !b.Status().State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("batch %s stuck: %+v", b.ID(), b.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := b.Status()
	if st.State != BatchDone || st.Done != st.Total || st.Failed != 0 || st.Cancelled != 0 {
		t.Fatalf("batch %s finished dirty: %+v", b.ID(), st)
	}
	rows, _ := b.Tasks(0, 0, "")
	out := make(map[string]*least.Result, len(rows))
	for _, row := range rows {
		if row.State != Done {
			t.Fatalf("row %s state %s, want done", row.Label, row.State)
		}
		j, err := m.Get(row.Job)
		if err != nil {
			t.Fatalf("row %s: job %s: %v", row.Label, row.Job, err)
		}
		res, _, err := j.Result()
		if err != nil {
			t.Fatalf("row %s: %v", row.Label, err)
		}
		out[row.Label] = res
	}
	return out
}

// TestJournalBatchCrashRecovery is the headline drill: a
// multi-hundred-task fleet batch is hard-stopped mid-flight at
// randomized points, recovered, and driven to completion. The proof
// obligations, per ISSUE acceptance:
//
//   - zero lost admitted tasks — every row reaches done after restart;
//   - results bit-identical to an uninterrupted reference run;
//   - exactly-once solves for journaled-complete tasks — the restarted
//     pool solves exactly the rows without a durable terminal record.
func TestJournalBatchCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-task crash drill skipped in -short")
	}
	const total = 220
	specs := tinyBatchSpecs(t, total)

	// Uninterrupted reference run, journaling disabled — also pins that
	// the batch path works identically without a journal.
	ref := NewManager(Config{MaxConcurrent: 4})
	rb, err := ref.Batches().Submit(specs)
	if err != nil {
		t.Fatal(err)
	}
	want := batchResults(t, ref, rb, 120*time.Second)
	shutdown(t, ref)

	rng := rand.New(rand.NewSource(20260808))
	for iter := 0; iter < 3; iter++ {
		dir := t.TempDir()
		cfg := Config{MaxConcurrent: 4, JournalDir: dir, JournalCompactEvery: -1}
		m := openJournaled(t, cfg)
		b, err := m.Batches().Submit(specs)
		if err != nil {
			t.Fatal(err)
		}
		// Crash once a randomized number of tasks has completed: early,
		// middle and late cuts across iterations.
		target := 1 + rng.Intn(total-1)
		deadline := time.Now().Add(120 * time.Second)
		for b.Status().Done < target && !b.Status().State.Terminal() {
			if time.Now().After(deadline) {
				t.Fatalf("iter %d: batch never reached %d done: %+v", iter, target, b.Status())
			}
			time.Sleep(time.Millisecond)
		}
		m.crash()

		_, doneBefore := replayTypes(t, dir)
		m2 := openJournaled(t, cfg)
		b2, err := m2.Batches().Get(b.ID())
		if err != nil {
			t.Fatalf("iter %d: recovered daemon lost batch %s: %v", iter, b.ID(), err)
		}
		got := batchResults(t, m2, b2, 120*time.Second)
		for label, res := range want {
			if !sameResult(res, got[label]) {
				t.Fatalf("iter %d (crash at %d done): row %s diverged from the reference run", iter, target, label)
			}
		}
		// Exactly-once: the fresh pool's done counter counts only the
		// rows whose terminal record did not survive the crash.
		if solved := m2.met.JobsDone.Load(); solved != int64(total-len(doneBefore)) {
			t.Fatalf("iter %d: restarted pool solved %d tasks, want %d (total %d, %d journaled complete)",
				iter, solved, total-len(doneBefore), total, len(doneBefore))
		}
		if len(doneBefore) < total {
			if resumed := m2.met.JournalResumed.Load(); resumed == 0 {
				t.Fatalf("iter %d: no tasks resumed despite %d incomplete", iter, total-len(doneBefore))
			}
		}
		shutdown(t, m2)
	}
}

// TestJournalCompactionRoundTrip drives enough records through a small
// compaction threshold to force snapshots, then proves a restart
// recovers the full fleet from the compacted journal.
func TestJournalCompactionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{MaxConcurrent: 2, JournalDir: dir, JournalCompactEvery: 4}
	m := openJournaled(t, cfg)
	type run struct {
		id   string
		want *least.Result
	}
	var runs []run
	for i := 0; i < 6; i++ {
		x, o := fastDataset(int64(300 + i))
		j, err := m.Submit(x, nil, o)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j, 30*time.Second)
		res, _, err := j.Result()
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{id: j.ID(), want: res})
	}
	shutdown(t, m)
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.log"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no compaction snapshot written (err %v)", err)
	}

	m2 := openJournaled(t, cfg)
	defer shutdown(t, m2)
	for _, r := range runs {
		j, err := m2.Get(r.id)
		if err != nil {
			t.Fatalf("job %s lost across compaction: %v", r.id, err)
		}
		res, _, err := j.Result()
		if err != nil {
			t.Fatal(err)
		}
		if !sameResult(r.want, res) {
			t.Fatalf("job %s: compacted result differs", r.id)
		}
	}
}

// TestJournalTornTailTolerated models the canonical crash artifact — a
// half-written final line — and pins that recovery keeps the intact
// prefix instead of refusing to start.
func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{MaxConcurrent: 1, JournalDir: dir}
	m := openJournaled(t, cfg)
	x, o := fastDataset(17)
	j, err := m.Submit(x, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 30*time.Second)
	shutdown(t, m)

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (err %v)", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"seq":99,"type":"job","data":{"trunc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2 := openJournaled(t, cfg)
	defer shutdown(t, m2)
	j2, err := m2.Get(j.ID())
	if err != nil {
		t.Fatalf("torn tail lost the intact prefix: %v", err)
	}
	if st := j2.Status(); st.State != Done {
		t.Fatalf("recovered job state %s, want done", st.State)
	}
}

// TestJournalDuplicateTerminalIdempotent handcrafts a journal whose
// stream repeats and then contradicts a job's terminal record: replay
// must treat terminals as first-wins and fold the stream into exactly
// one job.
func TestJournalDuplicateTerminalIdempotent(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	emit := func(typ string, payload any) {
		t.Helper()
		b, err := json.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(typ, b); err != nil {
			t.Fatal(err)
		}
	}
	now := time.Now().UTC()
	emit(recJob, jobRecord{ID: "j00000001", Key: "k1", N: 4, D: 2, Spec: json.RawMessage(`{}`), Created: now})
	term := jobTerminalRecord{
		ID: "j00000001", Key: "k1", State: Done, Finished: now,
		Result: &resultRecord{D: 2, Weights: [][]float64{{0, 0.5}, {0, 0}}, Delta: 0.5, Converged: true},
	}
	emit(recJobTerminal, term)
	emit(recJobTerminal, term) // exact duplicate
	emit(recJobTerminal, jobTerminalRecord{ID: "j00000001", State: Failed, Error: "late contradiction"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	m := openJournaled(t, Config{MaxConcurrent: 1, JournalDir: dir})
	defer shutdown(t, m)
	jobs := m.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("duplicate records folded into %d jobs, want 1", len(jobs))
	}
	st := jobs[0].Status()
	if st.State != Done || st.Error != "" {
		t.Fatalf("first-wins violated: state %s error %q", st.State, st.Error)
	}
	res, _, err := jobs[0].Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights.At(0, 1) != 0.5 || res.Delta != 0.5 {
		t.Fatal("recovered result does not match the journaled payload")
	}
}

// TestJournalDatasetRoundTrip pins dataset durability: registrations
// survive a restart with their ids and bytes, deletions stay deleted,
// and ids are never reissued.
func TestJournalDatasetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{MaxConcurrent: 1, JournalDir: dir}
	m := openJournaled(t, cfg)
	x1, _ := fastDataset(61)
	x2, _ := fastDataset(63)
	infoKeep, _, err := m.RegisterDataset(least.FromMatrix(x1, nil))
	if err != nil {
		t.Fatal(err)
	}
	infoDrop, _, err := m.RegisterDataset(least.FromMatrix(x2, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteDataset(infoDrop.ID); err != nil {
		t.Fatal(err)
	}
	shutdown(t, m)

	m2 := openJournaled(t, cfg)
	defer shutdown(t, m2)
	ds, info, err := m2.Dataset(infoKeep.ID)
	if err != nil {
		t.Fatalf("registered dataset lost across restart: %v", err)
	}
	if info.Fingerprint != infoKeep.Fingerprint || ds.Fingerprint() != infoKeep.Fingerprint {
		t.Fatal("recovered dataset bytes diverged (fingerprint mismatch)")
	}
	if _, _, err := m2.Dataset(infoDrop.ID); err == nil {
		t.Fatalf("deleted dataset %s resurrected by recovery", infoDrop.ID)
	}
	x3, _ := fastDataset(65)
	infoNew, _, err := m2.RegisterDataset(least.FromMatrix(x3, nil))
	if err != nil {
		t.Fatal(err)
	}
	if infoNew.ID == infoKeep.ID || infoNew.ID == infoDrop.ID {
		t.Fatalf("dataset id %s reissued after restart", infoNew.ID)
	}
}

// TestDatasetHoldBlocksEviction is the refcount regression test
// (satellite: LRU eviction must not drop a dataset a queued by-ref job
// still needs). Capacity-2 store, a queued by-ref job pinning the
// oldest entry: registration pressure may not evict it until the job
// is terminal.
func TestDatasetHoldBlocksEviction(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1, DatasetCapacity: 2})
	defer shutdown(t, m)

	// Fill the single worker slot so the by-ref job stays queued.
	sx, so := slowDataset(5)
	blocker, err := m.Submit(sx, nil, so)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, Running, 30*time.Second)

	x, o := fastDataset(71)
	infoA, _, err := m.RegisterDataset(least.FromMatrix(x, nil))
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.SubmitDatasetRef(infoA.ID, o.Spec(), false)
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Status(); st.State != Queued {
		t.Fatalf("by-ref job state %s, want queued behind the blocker", st.State)
	}

	// Two registrations push a capacity-2 store past its bound; the
	// held entry must be skipped (B, the unheld older entry, goes).
	xb, _ := fastDataset(73)
	xc, _ := fastDataset(75)
	if _, _, err := m.RegisterDataset(least.FromMatrix(xb, nil)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.RegisterDataset(least.FromMatrix(xc, nil)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Dataset(infoA.ID); err != nil {
		t.Fatalf("held dataset %s evicted under a queued by-ref job: %v", infoA.ID, err)
	}

	// Terminal releases the hold: cancel the queued job, then two more
	// registrations must evict the now-unpinned entry.
	if _, err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := j.Status(); st.State == Cancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("by-ref job never cancelled: %+v", j.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	xd, _ := fastDataset(77)
	xe, _ := fastDataset(79)
	if _, _, err := m.RegisterDataset(least.FromMatrix(xd, nil)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.RegisterDataset(least.FromMatrix(xe, nil)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Dataset(infoA.ID); err == nil {
		t.Fatalf("dataset %s still resident after its hold was released under pressure", infoA.ID)
	}
	if _, err := m.Cancel(blocker.ID()); err != nil && !errors.Is(err, ErrFinished) {
		t.Fatal(err)
	}
}

// TestBatchRefTaskHoldsDataset extends the hold regression to the
// batch path: a queued dataset_ref batch task pins its dataset the
// same way an interactive by-ref job does.
func TestBatchRefTaskHoldsDataset(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1, DatasetCapacity: 2})
	defer shutdown(t, m)

	sx, so := slowDataset(9)
	blocker, err := m.Submit(sx, nil, so)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, Running, 30*time.Second)

	x, o := fastDataset(81)
	infoA, _, err := m.RegisterDataset(least.FromMatrix(x, nil))
	if err != nil {
		t.Fatal(err)
	}
	ds, _, err := m.Dataset(infoA.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Batches().Submit([]BatchTaskSpec{{
		Label: "ref", Dataset: ds, Spec: o.Spec(), DatasetID: infoA.ID,
	}}); err != nil {
		t.Fatal(err)
	}
	xb, _ := fastDataset(83)
	xc, _ := fastDataset(85)
	if _, _, err := m.RegisterDataset(least.FromMatrix(xb, nil)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.RegisterDataset(least.FromMatrix(xc, nil)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Dataset(infoA.ID); err != nil {
		t.Fatalf("held dataset %s evicted under a queued batch ref task: %v", infoA.ID, err)
	}
	if _, err := m.Cancel(blocker.ID()); err != nil && !errors.Is(err, ErrFinished) {
		t.Fatal(err)
	}
}
