// Package serve is the serving layer behind cmd/leastd: a bounded
// concurrent-learn job pool with cancellable jobs, iteration-level
// progress reporting, and an LRU result cache. It is the reproduction
// of the paper's §VI deployment shape — structure learning as a
// service handling thousands of tasks daily — on top of the library's
// Spec.LearnDataset entry point. See DESIGN.md §4 for the design
// decisions (pool sizing vs per-job parallelism, cache keying,
// cancellation granularity) and §6 for the dataset registry and
// fingerprint-keyed result sharing.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro"
	"repro/internal/journal"
)

// State is the lifecycle phase of a Job:
//
//	queued → running → done | failed | cancelled
//
// with a direct queued → cancelled edge for jobs cancelled before a
// pool slot picked them up, and a direct submit → done edge for cache
// hits.
type State string

// Job states.
const (
	Queued    State = "queued"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Cancelled }

// Sentinel errors of the manager API.
var (
	// ErrUnknownJob is returned for ids the manager has never issued
	// (or has already evicted from its bounded history).
	ErrUnknownJob = errors.New("serve: unknown job")
	// ErrFinished is returned by Cancel on a job that already reached
	// done or failed — there is nothing left to stop.
	ErrFinished = errors.New("serve: job already finished")
	// ErrQueueFull is returned by Submit when the admission queue is at
	// capacity (load shedding — the client should retry later).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrShuttingDown is returned by Submit after Shutdown started.
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrBatchOwned is returned by Cancel for a job still held by one
	// or more live batches: deduplicated jobs are shared, so a direct
	// DELETE /v2/jobs/{id} must not sabotage another batch's tasks —
	// cancel the batch instead (DELETE /v2/batches/{id}).
	ErrBatchOwned = errors.New("serve: job belongs to a live batch; cancel the batch instead")
	// ErrNotDone is returned by Result for a job without a result yet.
	ErrNotDone = errors.New("serve: job not done")
	// ErrRestart marks a job interrupted by a daemon restart: recovery
	// found it admitted but not terminal in the journal and — for
	// interactive submissions, whose client connection is gone — fails
	// it with the typed "restart" code instead of silently re-running.
	ErrRestart = errors.New("serve: interrupted by daemon restart")
)

// Config sizes a Manager. The zero value picks the defaults noted on
// each field.
type Config struct {
	// MaxConcurrent is the learn-pool size: how many jobs optimize at
	// once (default 2). Each running job's Parallelism is capped at
	// GOMAXPROCS / MaxConcurrent so a full pool cannot oversubscribe
	// the machine.
	MaxConcurrent int
	// QueueDepth bounds the number of admitted-but-not-started jobs
	// (default 64); past it Submit sheds load with ErrQueueFull.
	QueueDepth int
	// CacheSize is the LRU result-cache capacity in entries: 0 picks
	// the default (64), negative disables caching.
	CacheSize int
	// QueryCacheSize is the compiled-form LRU capacity in entries,
	// keyed (job, tau) — the read-side cache behind GET /graph and the
	// /v2 query routes (DESIGN.md §10): 0 picks the default (128),
	// negative disables caching (every read recompiles).
	QueryCacheSize int
	// MaxHistory bounds the finished-job metadata kept for status
	// queries (default 1024); the oldest terminal jobs are evicted
	// first, never queued or running ones.
	MaxHistory int
	// DatasetCapacity bounds the registered-dataset LRU backing
	// by-reference submissions (POST /v2/datasets): 0 picks the default
	// (32), negative disables the store.
	DatasetCapacity int
	// BatchBacklog bounds the queued-but-not-started jobs across all
	// admitted batches (default 16384). QueueDepth does not apply to
	// batch tasks — a batch is admitted as a whole and holds its own
	// lane — but past this bound further tasks of a manifest are shed
	// individually with a typed "shed" entry in the batch error table
	// instead of a whole-batch 503 (DESIGN.md §7).
	BatchBacklog int
	// MaxBatches bounds the finished-batch metadata kept for status
	// queries (default 64); the oldest terminal batches are evicted
	// first, never in-progress ones.
	MaxBatches int
	// FleetDim is the gang-scheduling cutoff for batch tasks. When a
	// worker slot's core share (Procs / MaxConcurrent) is at least 2, a
	// popped batch-lane job with d ≤ FleetDim pulls the scheduler's
	// next batch-lane jobs under the same cutoff along with it and runs
	// them as one concurrent gang, each member's GEMM fan-out capped to
	// an equal split of the slot's share — so a manifest of many
	// small-d tasks saturates the cores that one undersized job cannot
	// (DESIGN.md §9). Gangs never reorder the round-robin schedule;
	// they run a prefix of it concurrently, and row-striped kernels
	// keep every result bit-identical to a solo run. 0 picks the
	// default (64); negative disables gang formation.
	FleetDim int
	// Procs overrides the detected core count used for per-job
	// parallelism capping (tests only; default runtime.GOMAXPROCS).
	Procs int
	// JournalDir enables the durability subsystem (DESIGN.md §11):
	// every admission and terminal transition is appended to a
	// write-ahead journal under this directory, and OpenManager replays
	// it on startup to recover datasets, jobs, batches and the result
	// cache. Empty (the default) keeps today's purely in-memory
	// behavior.
	JournalDir string
	// JournalFsync is the group-commit interval: appends only buffer,
	// and a background flusher fsyncs every interval so the admission
	// and terminal paths never block on the disk (default 25ms, the
	// bounded-loss window). Negative fsyncs on every append.
	JournalFsync time.Duration
	// JournalCompactEvery triggers snapshot compaction after that many
	// appended records — live state is re-serialized and older segments
	// deleted (default 4096). Negative disables compaction.
	JournalCompactEvery int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.QueryCacheSize == 0 {
		c.QueryCacheSize = 128
	}
	if c.MaxHistory <= 0 {
		c.MaxHistory = 1024
	}
	if c.DatasetCapacity == 0 {
		c.DatasetCapacity = 32
	}
	if c.BatchBacklog <= 0 {
		c.BatchBacklog = 16384
	}
	if c.MaxBatches <= 0 {
		c.MaxBatches = 64
	}
	if c.FleetDim == 0 {
		c.FleetDim = 64
	}
	if c.Procs <= 0 {
		c.Procs = runtime.GOMAXPROCS(0)
	}
	if c.JournalFsync == 0 {
		c.JournalFsync = 25 * time.Millisecond
	}
	if c.JournalCompactEvery == 0 {
		c.JournalCompactEvery = 4096
	}
	return c
}

// Job is one structure-learning task owned by the Manager. All fields
// behind mu; read through Status / Result.
type Job struct {
	id     string
	key    string
	names  []string
	n, d   int
	fp     string // dataset fingerprint (content identity of the input)
	center bool   // column-center the data before learning
	batch  bool   // queued on a batch lane (gang-eligible); set under m.mu

	mu       sync.Mutex
	cond     *sync.Cond    // broadcast on every seq bump (progress/state)
	seq      int           // change counter driving the v2 SSE stream
	data     least.Dataset // released once the job reaches a terminal state
	spec     *least.Spec
	state    State
	cached   bool
	dsID     string   // registered-dataset hold, released at the terminal transition
	code     TaskCode // typed failure class ("restart" after recovery)
	created  time.Time
	started  time.Time
	finished time.Time
	progress least.Progress
	result   *least.Result
	err      error
	cancel   context.CancelFunc

	// observers fire on state transitions (queued→running and →any
	// terminal state), outside j.mu on the transitioning goroutine —
	// the primitive batches use to aggregate per-task progress without
	// one watcher goroutine per job (DESIGN.md §7).
	observers []func(Status)
	// waiters counts the live batches holding this job: batch-created
	// jobs are shared through the in-flight dedup table, and a
	// cancelled batch only cancels a job nobody else still wants.
	// Always 0 for interactive (v1/v2 single-job) submissions.
	waiters int
}

// observe registers fn to run after every subsequent state transition
// of the job, and invokes it once immediately with the current
// snapshot (so subscribing to an already-terminal job still delivers
// exactly one final state). Deliveries can race a concurrent
// transition, so consumers must treat updates as monotonic — ignore
// anything after a terminal state.
func (j *Job) observe(fn func(Status)) {
	j.mu.Lock()
	j.observers = append(j.observers, fn)
	st := j.statusLocked()
	j.mu.Unlock()
	fn(st)
}

// evictable reports whether history eviction may drop the job:
// terminal and not held by any live batch.
func (j *Job) evictable() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal() && j.waiters == 0
}

// transitionObserversLocked snapshots the observer list and status for
// invocation after j.mu is released.
func (j *Job) transitionObserversLocked() ([]func(Status), Status) {
	return j.observers, j.statusLocked()
}

// notifyTransition invokes a snapshot taken by
// transitionObserversLocked. Must be called without j.mu held.
func notifyTransition(obs []func(Status), st Status) {
	for _, fn := range obs {
		fn(st)
	}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Method returns the learning method the job's Spec selects.
func (j *Job) Method() least.Method { return j.spec.Method() }

// Fingerprint returns the content fingerprint of the job's input
// dataset — the identity the result cache keys on, shared between
// inline and by-reference submissions of the same data.
func (j *Job) Fingerprint() string { return j.fp }

// notifyLocked records an observable change (progress tick or state
// transition) and wakes every Watch waiter. Caller holds j.mu.
func (j *Job) notifyLocked() {
	j.seq++
	j.cond.Broadcast()
}

// Watch blocks until the job's observable state advances past seen (a
// sequence number from a previous Watch; pass -1 to read the current
// snapshot immediately), the job is terminal, or ctx ends. It returns
// the fresh snapshot, its sequence number and whether it is terminal —
// the primitive behind GET /v2/jobs/{id}/events. Intermediate updates
// between two Watch calls coalesce into the latest snapshot.
func (j *Job) Watch(ctx context.Context, seen int) (Status, int, bool) {
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.seq == seen && !j.state.Terminal() && ctx.Err() == nil {
		j.cond.Wait()
	}
	return j.statusLocked(), j.seq, j.state.Terminal()
}

// Status is an immutable snapshot of a job, shaped for the JSON API.
type Status struct {
	ID       string    `json:"id"`
	State    State     `json:"state"`
	Cached   bool      `json:"cached,omitempty"`
	Vars     int       `json:"vars"`
	Samples  int       `json:"samples"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	// Solves / InnerIters / Delta mirror least.Progress and tick while
	// the job runs — this is the GET /v1/jobs/{id} progress payload.
	Solves     int     `json:"solves"`
	InnerIters int     `json:"inner_iters"`
	Delta      float64 `json:"delta"`
	ElapsedMS  int64   `json:"elapsed_ms"`
	Converged  bool    `json:"converged,omitempty"`
	Error      string  `json:"error,omitempty"`
	// Code classifies a failure the way batch task tables do — today
	// only "restart", marking a job interrupted by a daemon restart.
	Code TaskCode `json:"code,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// statusLocked snapshots the job; caller holds j.mu.
func (j *Job) statusLocked() Status {
	s := Status{
		ID:         j.id,
		State:      j.state,
		Cached:     j.cached,
		Vars:       j.d,
		Samples:    j.n,
		Created:    j.created,
		Started:    j.started,
		Finished:   j.finished,
		Solves:     j.progress.Solves,
		InnerIters: j.progress.Inner,
		Delta:      j.progress.Delta,
		ElapsedMS:  j.progress.Elapsed.Milliseconds(),
	}
	if j.result != nil {
		s.Converged = j.result.Converged
		s.Delta = j.result.Delta
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	s.Code = j.code
	return s
}

// Result returns the learned structure and the node names once the job
// is done (ErrNotDone otherwise). The result is shared and must be
// treated as read-only.
func (j *Job) Result() (*least.Result, []string, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Done || j.result == nil {
		return nil, nil, fmt.Errorf("%w (state %s)", ErrNotDone, j.state)
	}
	return j.result, j.names, nil
}

// jobQueue is one FIFO lane of the round-robin scheduler: the
// interactive lane (id "") shared by every v1/v2 single-job
// submission, or one lane per admitted batch. Workers pop lanes in
// round-robin order, one job per visit, so a 5,000-task batch cannot
// starve a 3-task batch or an interactive submission (DESIGN.md §7).
type jobQueue struct {
	id   string // "" = interactive; otherwise the owning batch id
	jobs []*Job
}

// Manager owns the job table, the admission queues, the worker pool
// and the result cache. It is safe for concurrent use by HTTP
// handlers.
type Manager struct {
	cfg      Config
	cache    *resultCache
	qcache   *queryCache
	datasets *datasetStore
	batches  *BatchManager
	met      Metrics
	jnl      *journalEmitter // nil when journaling is disabled

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond // signaled on queue pushes and on drain
	jobs     map[string]*Job
	order    []string        // submission order, for listing + history eviction
	iq       jobQueue        // the interactive lane (QueueDepth applies here)
	runq     []*jobQueue     // active (non-empty) lanes, in round-robin order
	rr       int             // next lane to serve
	nqueued  int             // queued jobs across all lanes
	nbatchq  int             // queued jobs across batch lanes (BatchBacklog)
	inflight map[string]*Job // cache key → queued/running batch job (dedup)
	nextID   int
	draining bool

	wg sync.WaitGroup // worker goroutines
}

// NewManager starts a manager with cfg's pool and cache sizes. Call
// Shutdown to stop it. With JournalDir unset this cannot fail; a
// journaling configuration that cannot open its directory panics —
// use OpenManager to handle the error.
func NewManager(cfg Config) *Manager {
	m, err := OpenManager(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// OpenManager starts a manager, first recovering any durable state
// JournalDir holds: the journal (snapshot + tail segments) is replayed
// before the worker pool starts, rebuilding the dataset store and
// result cache, re-enqueueing non-terminal batch tasks in their
// original round-robin lane order, and failing interrupted interactive
// jobs with the typed "restart" code (DESIGN.md §11). With JournalDir
// unset this is NewManager with an always-nil error.
func OpenManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		cache:      newResultCache(cfg.CacheSize),
		qcache:     newQueryCache(cfg.QueryCacheSize),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
	}
	m.datasets = newDatasetStore(cfg.DatasetCapacity)
	m.batches = newBatchManager(m)
	m.cond = sync.NewCond(&m.mu)
	if cfg.JournalDir != "" {
		// Replay the prior incarnation before a fresh segment opens and
		// before any worker can race the rebuild.
		if err := m.recoverJournal(cfg.JournalDir); err != nil {
			cancel()
			return nil, err
		}
		fsync := cfg.JournalFsync
		if fsync < 0 {
			fsync = 0 // journal.Options: <=0 means fsync every append
		}
		w, err := journal.Open(cfg.JournalDir, journal.Options{FsyncEvery: fsync})
		if err != nil {
			cancel()
			return nil, err
		}
		compactEvery := cfg.JournalCompactEvery
		if compactEvery < 0 {
			compactEvery = 0
		}
		m.jnl = newJournalEmitter(w, compactEvery, m.snapshotJournal)
		m.cache.onEvict = func(key string) {
			m.jnl.emit(recCacheEvict, cacheEvictRecord{Key: key})
		}
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Batches returns the manager's batch subsystem (POST /v2/batches).
func (m *Manager) Batches() *BatchManager { return m.batches }

// enqueueLocked appends j to lane q, activating the lane in the
// round-robin ring if it was idle. Caller holds m.mu.
func (m *Manager) enqueueLocked(q *jobQueue, j *Job) {
	if len(q.jobs) == 0 {
		m.runq = append(m.runq, q)
	}
	j.batch = q.id != ""
	q.jobs = append(q.jobs, j)
	m.nqueued++
	if q.id != "" {
		m.nbatchq++
	}
	m.cond.Signal()
}

// popLocked removes and returns the next queued job, serving lanes
// round-robin (nil when every lane is idle). Caller holds m.mu.
func (m *Manager) popLocked() *Job {
	if len(m.runq) == 0 {
		return nil
	}
	if m.rr >= len(m.runq) {
		m.rr = 0
	}
	i := m.rr
	q := m.runq[i]
	j := q.jobs[0]
	q.jobs = q.jobs[1:]
	m.nqueued--
	if q.id != "" {
		m.nbatchq--
	}
	if len(q.jobs) == 0 {
		m.removeLaneLocked(i) // rr now points at the shifted next lane
	} else {
		m.rr = (i + 1) % len(m.runq)
	}
	return j
}

// removeLaneLocked drops the emptied lane at ring index i, keeping the
// round-robin cursor on the lane that followed it. Caller holds m.mu.
func (m *Manager) removeLaneLocked(i int) {
	m.runq = append(m.runq[:i], m.runq[i+1:]...)
	if i < m.rr {
		m.rr--
	}
	if len(m.runq) == 0 {
		m.rr = 0
	} else {
		m.rr %= len(m.runq)
	}
}

// Submit admits a learn task configured by legacy least.Options.
//
// Deprecated: use SubmitSpec. Submit converts through
// least.Options.Spec, preserving the legacy zero-means-default
// reading, and exists so pre-Spec callers keep working unchanged.
func (m *Manager) Submit(x *least.Matrix, names []string, o least.Options) (*Job, error) {
	return m.SubmitSpec(x, names, o.Spec())
}

// SubmitSpec admits a learn task over an in-memory sample matrix. It
// is a thin wrapper over SubmitDataset: the matrix is wrapped in the
// legacy-exact adapter (least.FromMatrix), so the learn takes the
// historical row path bit-for-bit. Spec and input validation failures
// surface immediately; an identical prior submission (same data, names
// and spec) is answered from the result cache with a job born in state
// done. A nil spec means MethodLEAST with all defaults.
func (m *Manager) SubmitSpec(x *least.Matrix, names []string, spec *least.Spec) (*Job, error) {
	return m.submitMatrix(x, names, spec, false)
}

// validateSamples applies the matrix-level admission checks (the
// historical v1 error strings) — the one copy shared by inline job
// submission and dataset registration.
func validateSamples(x *least.Matrix, names []string) error {
	if x == nil || x.Rows() == 0 || x.Cols() == 0 {
		return errors.New("serve: empty sample matrix")
	}
	if x.Cols() < 2 {
		return fmt.Errorf("serve: need at least 2 variables, got %d", x.Cols())
	}
	if x.HasNaN() {
		return errors.New("serve: sample matrix contains NaN/Inf")
	}
	if names != nil && len(names) != x.Cols() {
		return fmt.Errorf("serve: %d names for %d variables", len(names), x.Cols())
	}
	return nil
}

// submitMatrix applies the matrix-specific validations (notably the
// NaN scan, which SubmitDataset cannot do on an opaque Dataset) before
// handing off to the dataset admission flow.
func (m *Manager) submitMatrix(x *least.Matrix, names []string, spec *least.Spec, center bool) (*Job, error) {
	if spec == nil {
		spec = &least.Spec{}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := validateSamples(x, names); err != nil {
		return nil, err
	}
	return m.SubmitDataset(least.FromMatrix(x, names), spec, center)
}

// SubmitDataset admits a learn task over any Dataset — the admission
// path shared by inline (v1/v2) and by-reference (dataset_ref)
// submissions. With center set the data is column-centered before
// learning (an O(d²) Gram adjustment on statistics-backed datasets, a
// clone-and-center on row-backed ones). The result cache keys on
// (dataset fingerprint, center, canonical spec), so the same data
// submitted inline and by reference lands on the same entry.
func (m *Manager) SubmitDataset(ds least.Dataset, spec *least.Spec, center bool) (*Job, error) {
	return m.submitDataset(ds, spec, center, "")
}

// SubmitDatasetRef admits a learn task over a registered dataset id —
// the by-reference (dataset_ref) admission path behind POST /v2/jobs.
// The admitted job holds the dataset pinned in the store until it
// reaches a terminal state, so LRU registration pressure cannot evict
// data a queued job still needs (it would otherwise fail "internal"
// on recovery re-resolution instead of never failing at all).
func (m *Manager) SubmitDatasetRef(id string, spec *least.Spec, center bool) (*Job, error) {
	ds, _, err := m.Dataset(id)
	if err != nil {
		return nil, err
	}
	return m.submitDataset(ds, spec, center, id)
}

func (m *Manager) submitDataset(ds least.Dataset, spec *least.Spec, center bool, dsID string) (*Job, error) {
	spec, key, err := prepareSubmission(ds, center, spec)
	if err != nil {
		return nil, err
	}
	now := time.Now()

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrShuttingDown
	}
	j := m.makeJobLocked(ds, spec, center, key, now)
	if !j.cached && len(m.iq.jobs) >= m.cfg.QueueDepth {
		m.mu.Unlock()
		m.met.JobsShed.Add(1)
		return nil, ErrQueueFull
	}
	if dsID != "" && !j.cached {
		// Pin the registered dataset until the job's terminal
		// transition releases it (the jobTerminal observer).
		j.dsID = dsID
		m.datasets.acquire(dsID)
	}
	m.insertLocked(j)
	if !j.cached {
		m.enqueueLocked(&m.iq, j)
	}
	m.mu.Unlock()
	m.journalJobAdmission(j, dsID)
	return j, nil
}

// prepareSubmission applies the spec- and dataset-level admission
// checks shared by single-job and batch submissions, resolving a nil
// spec to the all-defaults one and computing the result-cache key.
func prepareSubmission(ds least.Dataset, center bool, spec *least.Spec) (*least.Spec, string, error) {
	if spec == nil {
		spec = &least.Spec{}
	}
	if err := spec.Validate(); err != nil {
		return nil, "", err
	}
	if ds == nil {
		return nil, "", errors.New("serve: nil dataset")
	}
	n, d := ds.Dims()
	if n == 0 || d == 0 {
		return nil, "", errors.New("serve: empty sample matrix")
	}
	if d < 2 {
		return nil, "", fmt.Errorf("serve: need at least 2 variables, got %d", d)
	}
	if names := ds.Names(); names != nil && len(names) != d {
		return nil, "", fmt.Errorf("serve: %d names for %d variables", len(names), d)
	}
	if err := spec.ValidateFor(d); err != nil {
		return nil, "", err // doomed submission: reject now, not as a failed job
	}
	key, err := CacheKeyDataset(ds, center, spec)
	if err != nil {
		return nil, "", err
	}
	return spec, key, nil
}

// makeJobLocked allocates a job in the queued state — or born done
// when the result cache already holds the answer. The caller decides
// whether to insert and enqueue it. Caller holds m.mu.
func (m *Manager) makeJobLocked(ds least.Dataset, spec *least.Spec, center bool, key string, now time.Time) *Job {
	n, d := ds.Dims()
	m.nextID++
	j := &Job{
		id:      fmt.Sprintf("j%08d", m.nextID),
		key:     key,
		names:   ds.Names(),
		n:       n,
		d:       d,
		fp:      ds.Fingerprint(),
		center:  center,
		data:    ds,
		spec:    spec,
		state:   Queued,
		created: now,
	}
	j.cond = sync.NewCond(&j.mu)
	// Every job carries the manager's terminal observer from birth: it
	// releases the job's dataset hold and journals the terminal record.
	// Attached directly (not via observe) so it does not fire here —
	// born-done jobs never transition and are journaled at admission.
	j.observers = append(j.observers, func(st Status) { m.jobTerminal(j, st) })
	if res, ok := m.cache.get(key); ok {
		j.state = Done
		j.cached = true
		j.result = res
		j.started, j.finished = now, now
		j.data = nil
	}
	return j
}

// Get looks a job up by id.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j, nil
}

// List snapshots every known job in submission order.
func (m *Manager) List() []Status {
	js := m.Jobs()
	out := make([]Status, len(js))
	for i, j := range js {
		out[i] = j.Status()
	}
	return out
}

// Jobs returns every known job in submission order (the v2 listing
// reads per-job metadata — method — that a bare Status drops).
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	js := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		js = append(js, m.jobs[id])
	}
	return js
}

// Cancel stops a job: a queued job transitions to cancelled
// immediately; a running job has its context cancelled and transitions
// once the learner observes it (within one inner iteration). Cancel on
// a done/failed job returns ErrFinished; on an already-cancelled job
// it is a no-op.
func (m *Manager) Cancel(id string) (Status, error) {
	j, err := m.Get(id)
	if err != nil {
		return Status{}, err
	}
	j.mu.Lock()
	if j.waiters > 0 && (j.state == Queued || j.state == Running) {
		j.mu.Unlock()
		return j.Status(), ErrBatchOwned
	}
	switch j.state {
	case Queued:
		j.state = Cancelled
		j.finished = time.Now()
		j.err = context.Canceled
		j.data = nil
		m.met.JobsCancelled.Add(1)
		j.notifyLocked()
		obs, st := j.transitionObserversLocked()
		j.mu.Unlock()
		// Free the admission slot right away so the cancelled job
		// cannot keep load-shedding new submissions.
		m.mu.Lock()
		m.dropPendingLocked(j)
		m.dropInflightLocked(j)
		m.mu.Unlock()
		notifyTransition(obs, st)
		return j.Status(), nil
	case Running:
		if j.cancel != nil {
			j.cancel()
		}
	case Done, Failed:
		j.mu.Unlock()
		return j.Status(), ErrFinished
	case Cancelled:
		// idempotent
	}
	j.mu.Unlock()
	return j.Status(), nil
}

// Len returns the number of jobs the manager currently knows about
// (cheap — for liveness counters; List snapshots full statuses).
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// CacheStats returns (hits, misses, entries) of the result cache.
func (m *Manager) CacheStats() (int, int, int) { return m.cache.stats() }

// Shutdown drains the manager: new submissions are rejected, queued
// jobs are cancelled, and running jobs are given until ctx expires to
// finish before being hard-cancelled. It returns once the pool is
// idle. Safe to call more than once.
func (m *Manager) Shutdown(ctx context.Context) {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.awaitDrain(ctx) // a concurrent caller's deadline still counts
		m.closeJournal()
		return
	}
	m.draining = true
	var queued []*Job
	for _, q := range m.runq {
		queued = append(queued, q.jobs...)
		q.jobs = nil
	}
	m.runq, m.rr, m.nqueued, m.nbatchq = nil, 0, 0, 0
	clear(m.inflight)  // no submissions can join an in-flight job now
	m.cond.Broadcast() // wake every idle worker so it can exit
	m.mu.Unlock()

	for _, j := range queued {
		j.mu.Lock()
		if j.state == Queued {
			j.state = Cancelled
			j.finished = time.Now()
			j.err = ErrShuttingDown
			j.data = nil
			m.met.JobsCancelled.Add(1)
			j.notifyLocked()
			obs, st := j.transitionObserversLocked()
			j.mu.Unlock()
			notifyTransition(obs, st)
			continue
		}
		j.mu.Unlock()
	}
	m.awaitDrain(ctx)
	// The pool is idle and every terminal observer has run on a worker
	// or on this goroutine — drain the journal emitter and fsync, so a
	// returned Shutdown means every delivered notification is durable.
	m.closeJournal()
}

// closeJournal drains, fsyncs and closes the journal emitter (no-op
// when journaling is disabled; idempotent otherwise).
func (m *Manager) closeJournal() {
	if m.jnl != nil {
		m.jnl.close()
	}
}

// crash simulates SIGKILL for the recovery tests: the journal emitter
// is killed first — records enqueued but not yet appended are lost,
// exactly like a real crash — then the workers are torn down with no
// drain protocol, so dying in-flight jobs produce no journaled
// cancel/terminal records and queued jobs stay queued in the journal.
func (m *Manager) crash() {
	if m.jnl != nil {
		m.jnl.kill()
	}
	m.mu.Lock()
	m.draining = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.baseCancel()
	m.wg.Wait()
}

// awaitDrain waits for the worker pool to go idle, hard-cancelling
// whatever is still running once ctx expires.
func (m *Manager) awaitDrain(ctx context.Context) {
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		m.baseCancel()
		<-done
	}
	m.baseCancel()
}

// started carries everything a worker needs to execute a job it has
// already transitioned to Running.
type started struct {
	j      *Job
	ctx    context.Context
	cancel context.CancelFunc
	data   least.Dataset
	spec   *least.Spec
	obs    []func(Status)
	st     Status
}

// startLocked transitions a freshly popped job to Running. ok is false
// when the job raced with a cancel and is no longer queued. Caller
// holds m.mu, so the transition serializes against Shutdown — once
// draining is set no new job can start.
func (m *Manager) startLocked(j *Job) (started, bool) {
	j.mu.Lock()
	if j.state != Queued { // raced with a cancel
		j.mu.Unlock()
		return started{}, false
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j.cancel = cancel
	j.state = Running
	j.started = time.Now()
	j.notifyLocked()
	obs, st := j.transitionObserversLocked()
	r := started{j: j, ctx: ctx, cancel: cancel, data: j.data, spec: j.spec, obs: obs, st: st}
	j.mu.Unlock()
	return r, true
}

// peekFleetLocked returns the job popLocked would hand out next iff it
// qualifies for the current gang: a batch-lane task with d ≤ FleetDim.
// Anything else — an interactive job, a task too big to fuse, an empty
// ring — returns nil and ends gang formation, so a gang never reorders
// the round-robin schedule; it only runs a prefix of it concurrently.
// Caller holds m.mu.
func (m *Manager) peekFleetLocked() *Job {
	if len(m.runq) == 0 {
		return nil
	}
	if m.rr >= len(m.runq) {
		m.rr = 0
	}
	q := m.runq[m.rr]
	if q.id == "" || q.jobs[0].d > m.cfg.FleetDim {
		return nil
	}
	return q.jobs[0]
}

// worker is one pool slot: it pops admitted jobs, round-robin across
// lanes, until shutdown. When the popped job is a small-d batch task
// and this slot's core share covers more than one of them, the slot
// runs a gang — the scheduler's next few qualifying jobs, concurrently
// — instead of leaving share−1 cores idle under one undersized
// goroutine pool (DESIGN.md §9).
func (m *Manager) worker() {
	defer m.wg.Done()
	share := m.cfg.Procs / m.cfg.MaxConcurrent
	for {
		m.mu.Lock()
		for m.nqueued == 0 && !m.draining {
			m.cond.Wait()
		}
		if m.draining {
			m.mu.Unlock()
			return
		}
		lead, ok := m.startLocked(m.popLocked())
		if !ok {
			m.mu.Unlock()
			continue
		}
		gang := []started{lead}
		if share > 1 && m.cfg.FleetDim > 0 && lead.j.batch && lead.j.d <= m.cfg.FleetDim {
			for len(gang) < share {
				nj := m.peekFleetLocked()
				if nj == nil {
					break
				}
				m.popLocked() // pops exactly nj
				if r, ok := m.startLocked(nj); ok {
					gang = append(gang, r)
				}
			}
		}
		m.mu.Unlock()
		if len(gang) > 1 {
			m.met.Gangs.Add(1)
			m.met.GangJobs.Add(int64(len(gang)))
		}
		for _, r := range gang {
			notifyTransition(r.obs, r.st)
		}
		if len(gang) == 1 {
			capped := CapParallelism(lead.spec.Parallelism(), m.cfg.Procs, m.cfg.MaxConcurrent)
			m.runJob(lead.j, lead.ctx, lead.cancel, lead.data, lead.spec, capped)
			continue
		}
		// The gang splits this slot's core share evenly: members run
		// concurrently, each one's kernel fan-out capped to its slice.
		// Row-striped GEMM keeps every result bit-identical to a solo
		// run at any of these bounds.
		var wg sync.WaitGroup
		for _, r := range gang {
			r := r
			capped := CapParallelism(r.spec.Parallelism(), share, len(gang))
			wg.Add(1)
			go func() {
				defer wg.Done()
				m.runJob(r.j, r.ctx, r.cancel, r.data, r.spec, capped)
			}()
		}
		wg.Wait()
	}
}

// runJob executes one already-started job under its context,
// publishing progress snapshots as the learner iterates. capped is the
// parallelism bound the scheduler granted this job — a full core share
// for a solo run, a split of one share for a gang member.
func (m *Manager) runJob(j *Job, ctx context.Context, cancel context.CancelFunc, data least.Dataset, spec *least.Spec, capped int) {
	defer cancel()
	m.met.JobsRunning.Add(1)
	defer m.met.JobsRunning.Add(-1)
	runSpec, err := spec.With(
		least.WithParallelism(capped),
		least.WithProgress(func(p least.Progress) {
			j.mu.Lock()
			j.progress = p
			j.notifyLocked()
			j.mu.Unlock()
		}),
	)
	if j.center {
		data = least.Centered(data)
	}
	var res *least.Result
	if err == nil { // validated at submit; re-validation cannot fail
		res, err = runSpec.LearnDataset(ctx, data)
	}

	j.mu.Lock()
	j.finished = time.Now()
	j.cancel = nil
	j.data = nil // release the samples; only the result is kept
	switch {
	case err == nil:
		j.state = Done
		j.result = res
		m.cache.put(j.key, res)
		m.met.JobsDone.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = Cancelled
		j.err = context.Canceled
		m.met.JobsCancelled.Add(1)
	default:
		j.state = Failed
		j.err = err
		m.met.JobsFailed.Add(1)
	}
	j.notifyLocked()
	obs, st := j.transitionObserversLocked()
	j.mu.Unlock()
	// The result (if any) is cached before the in-flight entry drops,
	// so a racing batch admission finds the work either in flight or
	// in the cache — never neither.
	m.mu.Lock()
	m.dropInflightLocked(j)
	m.mu.Unlock()
	notifyTransition(obs, st)
}

// dropInflightLocked removes j from the in-flight dedup table if it is
// still the registered holder of its key. Caller holds m.mu.
func (m *Manager) dropInflightLocked(j *Job) {
	if m.inflight[j.key] == j {
		delete(m.inflight, j.key)
	}
}

// dropPendingLocked removes a job from whichever lane holds it (caller
// holds m.mu; no-op when a worker already popped it).
func (m *Manager) dropPendingLocked(j *Job) {
	for qi, q := range m.runq {
		for i, p := range q.jobs {
			if p != j {
				continue
			}
			q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
			m.nqueued--
			if q.id != "" {
				m.nbatchq--
			}
			if len(q.jobs) == 0 {
				m.removeLaneLocked(qi)
			}
			return
		}
	}
}

// insertLocked records a job and evicts the oldest terminal jobs past
// the history bound. Caller holds m.mu. Bulk admission (batches)
// records with recordLocked instead and runs one evictHistoryLocked
// pass at the end — the per-insert scan is O(len(jobs)) and would make
// a 5,000-task admission quadratic under m.mu.
func (m *Manager) insertLocked(j *Job) {
	m.recordLocked(j)
	m.evictHistoryLocked()
}

// recordLocked adds a job to the table without the eviction pass.
// Caller holds m.mu. This is the one admission point every accepted
// job passes through (interactive and batch alike), so the submission
// counter lives here; a born-done cache hit also counts as done —
// it will never reach runJob's terminal accounting.
func (m *Manager) recordLocked(j *Job) {
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.met.JobsSubmitted.Add(1)
	if j.cached {
		m.met.JobsDone.Add(1)
	}
}

// evictHistoryLocked drops the oldest evictable jobs past the history
// bound. Caller holds m.mu. Jobs a live batch still holds are never
// evicted, even terminal ones: the batch's task table names them
// (graph fetches resolve through /v2/jobs/{id}), and the batch
// releases its holds the moment it reaches a terminal state.
func (m *Manager) evictHistoryLocked() {
	if len(m.jobs) <= m.cfg.MaxHistory {
		return
	}
	kept := m.order[:0]
	excess := len(m.jobs) - m.cfg.MaxHistory
	for _, id := range m.order {
		old := m.jobs[id]
		if excess > 0 && old.evictable() {
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// CapParallelism bounds one job's worker fan-out so a full pool of
// slots concurrent jobs cannot oversubscribe a procs-core machine:
// each slot gets an equal core share (floored at 1), and an explicit
// smaller request is honored.
func CapParallelism(requested, procs, slots int) int {
	if slots < 1 {
		slots = 1
	}
	share := procs / slots
	if share < 1 {
		share = 1
	}
	if requested <= 0 || requested > share {
		return share
	}
	return requested
}
