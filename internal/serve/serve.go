// Package serve is the serving layer behind cmd/leastd: a bounded
// concurrent-learn job pool with cancellable jobs, iteration-level
// progress reporting, and an LRU result cache. It is the reproduction
// of the paper's §VI deployment shape — structure learning as a
// service handling thousands of tasks daily — on top of the library's
// Spec.LearnDataset entry point. See DESIGN.md §4 for the design
// decisions (pool sizing vs per-job parallelism, cache keying,
// cancellation granularity) and §6 for the dataset registry and
// fingerprint-keyed result sharing.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro"
)

// State is the lifecycle phase of a Job:
//
//	queued → running → done | failed | cancelled
//
// with a direct queued → cancelled edge for jobs cancelled before a
// pool slot picked them up, and a direct submit → done edge for cache
// hits.
type State string

// Job states.
const (
	Queued    State = "queued"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Cancelled }

// Sentinel errors of the manager API.
var (
	// ErrUnknownJob is returned for ids the manager has never issued
	// (or has already evicted from its bounded history).
	ErrUnknownJob = errors.New("serve: unknown job")
	// ErrFinished is returned by Cancel on a job that already reached
	// done or failed — there is nothing left to stop.
	ErrFinished = errors.New("serve: job already finished")
	// ErrQueueFull is returned by Submit when the admission queue is at
	// capacity (load shedding — the client should retry later).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrShuttingDown is returned by Submit after Shutdown started.
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrNotDone is returned by Result for a job without a result yet.
	ErrNotDone = errors.New("serve: job not done")
)

// Config sizes a Manager. The zero value picks the defaults noted on
// each field.
type Config struct {
	// MaxConcurrent is the learn-pool size: how many jobs optimize at
	// once (default 2). Each running job's Parallelism is capped at
	// GOMAXPROCS / MaxConcurrent so a full pool cannot oversubscribe
	// the machine.
	MaxConcurrent int
	// QueueDepth bounds the number of admitted-but-not-started jobs
	// (default 64); past it Submit sheds load with ErrQueueFull.
	QueueDepth int
	// CacheSize is the LRU result-cache capacity in entries: 0 picks
	// the default (64), negative disables caching.
	CacheSize int
	// MaxHistory bounds the finished-job metadata kept for status
	// queries (default 1024); the oldest terminal jobs are evicted
	// first, never queued or running ones.
	MaxHistory int
	// DatasetCapacity bounds the registered-dataset LRU backing
	// by-reference submissions (POST /v2/datasets): 0 picks the default
	// (32), negative disables the store.
	DatasetCapacity int
	// Procs overrides the detected core count used for per-job
	// parallelism capping (tests only; default runtime.GOMAXPROCS).
	Procs int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.MaxHistory <= 0 {
		c.MaxHistory = 1024
	}
	if c.DatasetCapacity == 0 {
		c.DatasetCapacity = 32
	}
	if c.Procs <= 0 {
		c.Procs = runtime.GOMAXPROCS(0)
	}
	return c
}

// Job is one structure-learning task owned by the Manager. All fields
// behind mu; read through Status / Result.
type Job struct {
	id     string
	key    string
	names  []string
	n, d   int
	fp     string // dataset fingerprint (content identity of the input)
	center bool   // column-center the data before learning

	mu       sync.Mutex
	cond     *sync.Cond    // broadcast on every seq bump (progress/state)
	seq      int           // change counter driving the v2 SSE stream
	data     least.Dataset // released once the job reaches a terminal state
	spec     *least.Spec
	state    State
	cached   bool
	created  time.Time
	started  time.Time
	finished time.Time
	progress least.Progress
	result   *least.Result
	err      error
	cancel   context.CancelFunc
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Method returns the learning method the job's Spec selects.
func (j *Job) Method() least.Method { return j.spec.Method() }

// Fingerprint returns the content fingerprint of the job's input
// dataset — the identity the result cache keys on, shared between
// inline and by-reference submissions of the same data.
func (j *Job) Fingerprint() string { return j.fp }

// notifyLocked records an observable change (progress tick or state
// transition) and wakes every Watch waiter. Caller holds j.mu.
func (j *Job) notifyLocked() {
	j.seq++
	j.cond.Broadcast()
}

// Watch blocks until the job's observable state advances past seen (a
// sequence number from a previous Watch; pass -1 to read the current
// snapshot immediately), the job is terminal, or ctx ends. It returns
// the fresh snapshot, its sequence number and whether it is terminal —
// the primitive behind GET /v2/jobs/{id}/events. Intermediate updates
// between two Watch calls coalesce into the latest snapshot.
func (j *Job) Watch(ctx context.Context, seen int) (Status, int, bool) {
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.seq == seen && !j.state.Terminal() && ctx.Err() == nil {
		j.cond.Wait()
	}
	return j.statusLocked(), j.seq, j.state.Terminal()
}

// Status is an immutable snapshot of a job, shaped for the JSON API.
type Status struct {
	ID       string    `json:"id"`
	State    State     `json:"state"`
	Cached   bool      `json:"cached,omitempty"`
	Vars     int       `json:"vars"`
	Samples  int       `json:"samples"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	// Solves / InnerIters / Delta mirror least.Progress and tick while
	// the job runs — this is the GET /v1/jobs/{id} progress payload.
	Solves     int     `json:"solves"`
	InnerIters int     `json:"inner_iters"`
	Delta      float64 `json:"delta"`
	ElapsedMS  int64   `json:"elapsed_ms"`
	Converged  bool    `json:"converged,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// statusLocked snapshots the job; caller holds j.mu.
func (j *Job) statusLocked() Status {
	s := Status{
		ID:         j.id,
		State:      j.state,
		Cached:     j.cached,
		Vars:       j.d,
		Samples:    j.n,
		Created:    j.created,
		Started:    j.started,
		Finished:   j.finished,
		Solves:     j.progress.Solves,
		InnerIters: j.progress.Inner,
		Delta:      j.progress.Delta,
		ElapsedMS:  j.progress.Elapsed.Milliseconds(),
	}
	if j.result != nil {
		s.Converged = j.result.Converged
		s.Delta = j.result.Delta
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// Result returns the learned structure and the node names once the job
// is done (ErrNotDone otherwise). The result is shared and must be
// treated as read-only.
func (j *Job) Result() (*least.Result, []string, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Done || j.result == nil {
		return nil, nil, fmt.Errorf("%w (state %s)", ErrNotDone, j.state)
	}
	return j.result, j.names, nil
}

// Manager owns the job table, the admission queue, the worker pool and
// the result cache. It is safe for concurrent use by HTTP handlers.
type Manager struct {
	cfg      Config
	cache    *resultCache
	datasets *datasetStore

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond // signaled on pending-queue pushes and on drain
	jobs     map[string]*Job
	order    []string // submission order, for listing + history eviction
	pending  []*Job   // FIFO admission queue; Cancel removes in place
	nextID   int
	draining bool

	wg sync.WaitGroup // worker goroutines
}

// NewManager starts a manager with cfg's pool and cache sizes. Call
// Shutdown to stop it.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		cache:      newResultCache(cfg.CacheSize),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
	}
	m.datasets = newDatasetStore(cfg.DatasetCapacity)
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < cfg.MaxConcurrent; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit admits a learn task configured by legacy least.Options.
//
// Deprecated: use SubmitSpec. Submit converts through
// least.Options.Spec, preserving the legacy zero-means-default
// reading, and exists so pre-Spec callers keep working unchanged.
func (m *Manager) Submit(x *least.Matrix, names []string, o least.Options) (*Job, error) {
	return m.SubmitSpec(x, names, o.Spec())
}

// SubmitSpec admits a learn task over an in-memory sample matrix. It
// is a thin wrapper over SubmitDataset: the matrix is wrapped in the
// legacy-exact adapter (least.FromMatrix), so the learn takes the
// historical row path bit-for-bit. Spec and input validation failures
// surface immediately; an identical prior submission (same data, names
// and spec) is answered from the result cache with a job born in state
// done. A nil spec means MethodLEAST with all defaults.
func (m *Manager) SubmitSpec(x *least.Matrix, names []string, spec *least.Spec) (*Job, error) {
	return m.submitMatrix(x, names, spec, false)
}

// validateSamples applies the matrix-level admission checks (the
// historical v1 error strings) — the one copy shared by inline job
// submission and dataset registration.
func validateSamples(x *least.Matrix, names []string) error {
	if x == nil || x.Rows() == 0 || x.Cols() == 0 {
		return errors.New("serve: empty sample matrix")
	}
	if x.Cols() < 2 {
		return fmt.Errorf("serve: need at least 2 variables, got %d", x.Cols())
	}
	if x.HasNaN() {
		return errors.New("serve: sample matrix contains NaN/Inf")
	}
	if names != nil && len(names) != x.Cols() {
		return fmt.Errorf("serve: %d names for %d variables", len(names), x.Cols())
	}
	return nil
}

// submitMatrix applies the matrix-specific validations (notably the
// NaN scan, which SubmitDataset cannot do on an opaque Dataset) before
// handing off to the dataset admission flow.
func (m *Manager) submitMatrix(x *least.Matrix, names []string, spec *least.Spec, center bool) (*Job, error) {
	if spec == nil {
		spec = &least.Spec{}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := validateSamples(x, names); err != nil {
		return nil, err
	}
	return m.SubmitDataset(least.FromMatrix(x, names), spec, center)
}

// SubmitDataset admits a learn task over any Dataset — the admission
// path shared by inline (v1/v2) and by-reference (dataset_ref)
// submissions. With center set the data is column-centered before
// learning (an O(d²) Gram adjustment on statistics-backed datasets, a
// clone-and-center on row-backed ones). The result cache keys on
// (dataset fingerprint, center, canonical spec), so the same data
// submitted inline and by reference lands on the same entry.
func (m *Manager) SubmitDataset(ds least.Dataset, spec *least.Spec, center bool) (*Job, error) {
	if spec == nil {
		spec = &least.Spec{}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if ds == nil {
		return nil, errors.New("serve: nil dataset")
	}
	n, d := ds.Dims()
	if n == 0 || d == 0 {
		return nil, errors.New("serve: empty sample matrix")
	}
	if d < 2 {
		return nil, fmt.Errorf("serve: need at least 2 variables, got %d", d)
	}
	if names := ds.Names(); names != nil && len(names) != d {
		return nil, fmt.Errorf("serve: %d names for %d variables", len(names), d)
	}
	if err := spec.ValidateFor(d); err != nil {
		return nil, err // doomed submission: reject now, not as a failed job
	}
	key, err := CacheKeyDataset(ds, center, spec)
	if err != nil {
		return nil, err
	}
	now := time.Now()

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrShuttingDown
	}
	m.nextID++
	j := &Job{
		id:      fmt.Sprintf("j%08d", m.nextID),
		key:     key,
		names:   ds.Names(),
		n:       n,
		d:       d,
		fp:      ds.Fingerprint(),
		center:  center,
		data:    ds,
		spec:    spec,
		state:   Queued,
		created: now,
	}
	j.cond = sync.NewCond(&j.mu)
	if res, ok := m.cache.get(key); ok {
		j.state = Done
		j.cached = true
		j.result = res
		j.started, j.finished = now, now
		j.data = nil
	}
	if !j.cached && len(m.pending) >= m.cfg.QueueDepth {
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	m.insertLocked(j)
	if !j.cached {
		m.pending = append(m.pending, j)
		m.cond.Signal()
	}
	m.mu.Unlock()
	return j, nil
}

// Get looks a job up by id.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j, nil
}

// List snapshots every known job in submission order.
func (m *Manager) List() []Status {
	js := m.Jobs()
	out := make([]Status, len(js))
	for i, j := range js {
		out[i] = j.Status()
	}
	return out
}

// Jobs returns every known job in submission order (the v2 listing
// reads per-job metadata — method — that a bare Status drops).
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	js := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		js = append(js, m.jobs[id])
	}
	return js
}

// Cancel stops a job: a queued job transitions to cancelled
// immediately; a running job has its context cancelled and transitions
// once the learner observes it (within one inner iteration). Cancel on
// a done/failed job returns ErrFinished; on an already-cancelled job
// it is a no-op.
func (m *Manager) Cancel(id string) (Status, error) {
	j, err := m.Get(id)
	if err != nil {
		return Status{}, err
	}
	j.mu.Lock()
	switch j.state {
	case Queued:
		j.state = Cancelled
		j.finished = time.Now()
		j.err = context.Canceled
		j.data = nil
		j.notifyLocked()
		j.mu.Unlock()
		// Free the admission slot right away so the cancelled job
		// cannot keep load-shedding new submissions.
		m.mu.Lock()
		m.dropPendingLocked(j)
		m.mu.Unlock()
		return j.Status(), nil
	case Running:
		if j.cancel != nil {
			j.cancel()
		}
	case Done, Failed:
		j.mu.Unlock()
		return j.Status(), ErrFinished
	case Cancelled:
		// idempotent
	}
	j.mu.Unlock()
	return j.Status(), nil
}

// Len returns the number of jobs the manager currently knows about
// (cheap — for liveness counters; List snapshots full statuses).
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// CacheStats returns (hits, misses, entries) of the result cache.
func (m *Manager) CacheStats() (int, int, int) { return m.cache.stats() }

// Shutdown drains the manager: new submissions are rejected, queued
// jobs are cancelled, and running jobs are given until ctx expires to
// finish before being hard-cancelled. It returns once the pool is
// idle. Safe to call more than once.
func (m *Manager) Shutdown(ctx context.Context) {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.awaitDrain(ctx) // a concurrent caller's deadline still counts
		return
	}
	m.draining = true
	queued := m.pending
	m.pending = nil
	m.cond.Broadcast() // wake every idle worker so it can exit
	m.mu.Unlock()

	for _, j := range queued {
		j.mu.Lock()
		if j.state == Queued {
			j.state = Cancelled
			j.finished = time.Now()
			j.err = ErrShuttingDown
			j.data = nil
			j.notifyLocked()
		}
		j.mu.Unlock()
	}
	m.awaitDrain(ctx)
}

// awaitDrain waits for the worker pool to go idle, hard-cancelling
// whatever is still running once ctx expires.
func (m *Manager) awaitDrain(ctx context.Context) {
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		m.baseCancel()
		<-done
	}
	m.baseCancel()
}

// worker is one pool slot: it pops admitted jobs until shutdown. The
// queued → running transition happens under m.mu, so it serializes
// against Shutdown — once draining is set no new job can start.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.pending) == 0 && !m.draining {
			m.cond.Wait()
		}
		if m.draining {
			m.mu.Unlock()
			return
		}
		j := m.pending[0]
		m.pending = m.pending[1:]
		j.mu.Lock()
		if j.state != Queued { // raced with a cancel
			j.mu.Unlock()
			m.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(m.baseCtx)
		j.cancel = cancel
		j.state = Running
		j.started = time.Now()
		j.notifyLocked()
		data := j.data
		spec := j.spec
		j.mu.Unlock()
		m.mu.Unlock()

		m.runJob(j, ctx, cancel, data, spec)
	}
}

// runJob executes one already-started job under its context,
// publishing progress snapshots as the learner iterates.
func (m *Manager) runJob(j *Job, ctx context.Context, cancel context.CancelFunc, data least.Dataset, spec *least.Spec) {
	defer cancel()
	capped := CapParallelism(spec.Parallelism(), m.cfg.Procs, m.cfg.MaxConcurrent)
	runSpec, err := spec.With(
		least.WithParallelism(capped),
		least.WithProgress(func(p least.Progress) {
			j.mu.Lock()
			j.progress = p
			j.notifyLocked()
			j.mu.Unlock()
		}),
	)
	if j.center {
		data = least.Centered(data)
	}
	var res *least.Result
	if err == nil { // validated at submit; re-validation cannot fail
		res, err = runSpec.LearnDataset(ctx, data)
	}

	j.mu.Lock()
	j.finished = time.Now()
	j.cancel = nil
	j.data = nil // release the samples; only the result is kept
	switch {
	case err == nil:
		j.state = Done
		j.result = res
		m.cache.put(j.key, res)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = Cancelled
		j.err = context.Canceled
	default:
		j.state = Failed
		j.err = err
	}
	j.notifyLocked()
	j.mu.Unlock()
}

// dropPendingLocked removes a job from the admission queue (caller
// holds m.mu; no-op when a worker already popped it).
func (m *Manager) dropPendingLocked(j *Job) {
	for i, p := range m.pending {
		if p == j {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			return
		}
	}
}

// insertLocked records a job and evicts the oldest terminal jobs past
// the history bound. Caller holds m.mu.
func (m *Manager) insertLocked(j *Job) {
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	if len(m.jobs) <= m.cfg.MaxHistory {
		return
	}
	kept := m.order[:0]
	excess := len(m.jobs) - m.cfg.MaxHistory
	for _, id := range m.order {
		old := m.jobs[id]
		if excess > 0 && old.Status().State.Terminal() {
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// CapParallelism bounds one job's worker fan-out so a full pool of
// slots concurrent jobs cannot oversubscribe a procs-core machine:
// each slot gets an equal core share (floored at 1), and an explicit
// smaller request is honored.
func CapParallelism(requested, procs, slots int) int {
	if slots < 1 {
		slots = 1
	}
	share := procs / slots
	if share < 1 {
		share = 1
	}
	if requested <= 0 || requested > share {
		return share
	}
	return requested
}
