package serve

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro"
)

// tinyTask builds one quick-solve batch task. Distinct seeds produce
// distinct datasets and specs, so neither dedup path can collapse
// different tasks; equal seeds produce byte-identical tasks.
func tinyTask(seed int64) BatchTaskSpec {
	truth := least.GenerateDAG(seed, least.ErdosRenyi, 6, 2)
	x := least.SampleLSEM(seed+1, truth, 40, least.GaussianNoise)
	sp, err := least.New(
		least.WithLambda(0.2),
		least.WithEpsilon(1e-3),
		least.WithMaxOuter(2),
		least.WithMaxInner(10),
		least.WithParallelism(1),
		least.WithSeed(seed),
	)
	return BatchTaskSpec{
		Label:   fmt.Sprintf("t%d", seed),
		Dataset: least.FromMatrix(x, nil),
		Spec:    sp,
		Err:     err, // least.New cannot fail on these values
	}
}

// moderateTask runs for a few hundred inner iterations — long enough
// that a cancel issued right after submission reliably lands while the
// job is still queued or running.
func moderateTask(seed int64) BatchTaskSpec {
	truth := least.GenerateDAG(seed, least.ErdosRenyi, 10, 2)
	x := least.SampleLSEM(seed+1, truth, 100, least.GaussianNoise)
	sp, _ := least.New(
		least.WithLambda(0.1),
		least.WithEpsilon(1e-6),
		least.WithMaxOuter(4),
		least.WithMaxInner(150),
		least.WithParallelism(1),
		least.WithSeed(seed),
	)
	return BatchTaskSpec{
		Label:   fmt.Sprintf("m%d", seed),
		Dataset: least.FromMatrix(x, nil),
		Spec:    sp,
	}
}

func waitBatch(t *testing.T, b *Batch, want BatchState, timeout time.Duration) BatchStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := b.Status()
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("batch %s reached terminal state %s, want %s (%+v)", b.ID(), st.State, want, st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch %s stuck in %s after %v, want %s (%+v)", b.ID(), st.State, timeout, want, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// allTasks pages through the whole task table, verifying the paging
// contract (total stable, indices contiguous) along the way.
func allTasks(t *testing.T, b *Batch, page int) []TaskStatus {
	t.Helper()
	var rows []TaskStatus
	for off := 0; ; off += page {
		pageRows, total := b.Tasks(off, page, "")
		rows = append(rows, pageRows...)
		if off+len(pageRows) >= total || len(pageRows) == 0 {
			if len(rows) != total {
				t.Fatalf("paged %d rows, table reports %d", len(rows), total)
			}
			return rows
		}
	}
}

// TestBatchDedupeThousandTasks is the acceptance workload: a
// 1,000-task manifest with 100 unique tasks completes with exactly 100
// cache-miss solves — repeats join the in-flight job of their first
// occurrence — and an identical follow-up batch is answered entirely
// from the result cache.
func TestBatchDedupeThousandTasks(t *testing.T) {
	const unique, repeats = 100, 10
	m := NewManager(Config{MaxConcurrent: 2, CacheSize: 2 * unique, MaxHistory: 4096, BatchBacklog: 4096})
	defer shutdown(t, m)

	specs := make([]BatchTaskSpec, 0, unique*repeats)
	for r := 0; r < repeats; r++ {
		for u := 0; u < unique; u++ {
			ts := tinyTask(int64(1000 + 10*u))
			ts.Label = fmt.Sprintf("r%02du%03d", r, u)
			specs = append(specs, ts)
		}
	}
	b, err := m.Batches().Submit(specs)
	if err != nil {
		t.Fatal(err)
	}
	st := waitBatch(t, b, BatchDone, 120*time.Second)
	if st.Total != unique*repeats || st.Done != unique*repeats || st.Failed != 0 || st.Cancelled != 0 {
		t.Fatalf("batch counters: %+v", st)
	}
	if st.Deduped != unique*(repeats-1) {
		t.Errorf("deduped = %d, want %d", st.Deduped, unique*(repeats-1))
	}
	hits, misses, entries := m.CacheStats()
	if misses != unique || entries != unique || hits != 0 {
		t.Errorf("cache stats = (%d hits, %d misses, %d entries), want (0, %d, %d): repeats must not consult the cache, they join in-flight jobs",
			hits, misses, entries, unique, unique)
	}
	jobs := map[string]bool{}
	for _, row := range allTasks(t, b, 256) {
		if row.State != Done {
			t.Fatalf("task %d (%s) state %s: %+v", row.Index, row.Label, row.State, row)
		}
		if row.Job == "" {
			t.Fatalf("done task %d has no job id", row.Index)
		}
		jobs[row.Job] = true
	}
	if len(jobs) != unique {
		t.Errorf("tasks ran %d distinct jobs, want exactly %d solves", len(jobs), unique)
	}

	// The same manifest again: every task is a cache hit, the batch is
	// born done, and no new solve happens.
	b2, err := m.Batches().Submit(specs)
	if err != nil {
		t.Fatal(err)
	}
	st2 := b2.Status()
	if st2.State != BatchDone || st2.Cached != unique*repeats || st2.Done != unique*repeats {
		t.Fatalf("second batch not fully cached: %+v", st2)
	}
	if _, misses2, _ := m.CacheStats(); misses2 != unique {
		t.Errorf("second batch caused %d extra cache misses", misses2-unique)
	}
}

// TestBatchFairnessInterleaving: with a single pool slot, a 2-task
// batch submitted right after a 10-task batch must complete within a
// few pops — the round-robin lane schedule serves it every other pop
// instead of queueing it behind the large batch's whole backlog. The
// assertion is on completion order (job finish timestamps), not
// wall-clock state, so task speed cannot flake it: at most a couple of
// large-batch tasks may finish before the small batch's admission, and
// at most ⌈small⌉ more may interleave after it.
func TestBatchFairnessInterleaving(t *testing.T) {
	const big, small = 10, 2
	m := NewManager(Config{MaxConcurrent: 1, Procs: 1})
	defer shutdown(t, m)

	bigSpecs := make([]BatchTaskSpec, big)
	for i := range bigSpecs {
		bigSpecs[i] = tinyTask(int64(2000 + 10*i))
	}
	smallSpecs := make([]BatchTaskSpec, small)
	for i := range smallSpecs {
		smallSpecs[i] = tinyTask(int64(3000 + 10*i))
	}

	bA, err := m.Batches().Submit(bigSpecs)
	if err != nil {
		t.Fatal(err)
	}
	bB, err := m.Batches().Submit(smallSpecs)
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, bB, BatchDone, 120*time.Second)
	waitBatch(t, bA, BatchDone, 120*time.Second)

	finish := func(rows []TaskStatus) []time.Time {
		var ts []time.Time
		for _, row := range rows {
			j, err := m.Get(row.Job)
			if err != nil {
				t.Fatalf("job %s: %v", row.Job, err)
			}
			ts = append(ts, j.Status().Finished)
		}
		return ts
	}
	aFinish := finish(allTasks(t, bA, 20))
	bLast := time.Time{}
	for _, ft := range finish(allTasks(t, bB, 20)) {
		if ft.After(bLast) {
			bLast = ft
		}
	}
	aBefore := 0
	for _, ft := range aFinish {
		if !ft.After(bLast) {
			aBefore++
		}
	}
	// Strict FIFO across batches would put all 10 large-batch tasks
	// before the small batch's last; fair round-robin bounds it by the
	// tasks popped before the small batch was admitted (≲2, the
	// admission gap is microseconds against millisecond solves) plus
	// one interleaved task per small-batch pop.
	if aBefore > big/2 {
		t.Fatalf("%d of %d large-batch tasks finished before the small batch — scheduling is not fair", aBefore, big)
	}
}

// TestBatchPartialFailureTable: broken tasks land in the table with
// typed codes — resolution and validation failures as "validation", a
// learner blow-up as "internal" — while good tasks complete; the batch
// itself is done, never all-or-nothing.
func TestBatchPartialFailureTable(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1})
	defer shutdown(t, m)

	nan := least.NewMatrix(4, 2)
	nan.Set(1, 1, math.NaN())
	specs := []BatchTaskSpec{
		tinyTask(5000),
		{Label: "bad-resolve", Err: errors.New("csv: ragged row")},
		{Label: "one-var", Dataset: least.FromMatrix(least.NewMatrix(3, 1), nil)},
		{Label: "nan-data", Dataset: least.FromMatrix(nan, nil)},
	}
	b, err := m.Batches().Submit(specs)
	if err != nil {
		t.Fatal(err)
	}
	st := waitBatch(t, b, BatchDone, 60*time.Second)
	if st.Done != 1 || st.Failed != 3 {
		t.Fatalf("counters: %+v", st)
	}
	rows := allTasks(t, b, 10)
	if rows[0].State != Done || rows[0].Code != "" {
		t.Errorf("good task: %+v", rows[0])
	}
	for i, wantCode := range map[int]TaskCode{1: TaskCodeValidation, 2: TaskCodeValidation, 3: TaskCodeInternal} {
		if rows[i].State != Failed || rows[i].Code != wantCode || rows[i].Error == "" {
			t.Errorf("task %d = %+v, want failed/%s with an error message", i, rows[i], wantCode)
		}
	}
	// The error table alone, via the state filter; paging applies to
	// the filtered sequence.
	failedRows, total := b.Tasks(0, 10, Failed)
	if total != 3 || len(failedRows) != 3 {
		t.Fatalf("failed filter: %d rows, total %d", len(failedRows), total)
	}
	pageRows, total := b.Tasks(1, 1, Failed)
	if total != 3 || len(pageRows) != 1 || pageRows[0].Index != failedRows[1].Index {
		t.Errorf("failed-filter paging: rows %+v, total %d", pageRows, total)
	}
}

// TestBatchShedPastBacklog: tasks past the batch backlog bound are
// shed individually with code "shed" — distinguishable from
// validation failures — and the admitted remainder still completes.
func TestBatchShedPastBacklog(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1, BatchBacklog: 2, Procs: 1})
	defer shutdown(t, m)

	xs, os := slowDataset(6000)
	blocker, err := m.Submit(xs, nil, os)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, Running, 10*time.Second)

	specs := make([]BatchTaskSpec, 5)
	for i := range specs {
		specs[i] = tinyTask(int64(6100 + 10*i))
	}
	b, err := m.Batches().Submit(specs)
	if err != nil {
		t.Fatal(err)
	}
	st := b.Status()
	if st.Queued != 2 || st.Failed != 3 {
		t.Fatalf("backlog=2 admission: %+v", st)
	}
	shed := 0
	for _, row := range allTasks(t, b, 10) {
		if row.Code == TaskCodeShed {
			shed++
			if row.State != Failed {
				t.Errorf("shed task in state %s", row.State)
			}
		}
	}
	if shed != 3 {
		t.Errorf("%d tasks shed, want 3", shed)
	}
	if _, err := m.Cancel(blocker.ID()); err != nil {
		t.Fatal(err)
	}
	if st := waitBatch(t, b, BatchDone, 120*time.Second); st.Done != 2 {
		t.Fatalf("admitted remainder: %+v", st)
	}
}

// TestBatchCancelMidFlight: cancel-batch resolves every non-terminal
// task as cancelled (code "cancelled"), cancels the underlying queued
// and running jobs, and is idempotent; cancelling a finished batch is
// a conflict.
func TestBatchCancelMidFlight(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1, Procs: 1})
	defer shutdown(t, m)

	specs := make([]BatchTaskSpec, 4)
	for i := range specs {
		xs, os := slowDataset(int64(7000 + 10*i))
		specs[i] = BatchTaskSpec{Label: fmt.Sprintf("slow%d", i), Dataset: least.FromMatrix(xs, nil), Spec: os.Spec()}
	}
	b, err := m.Batches().Submit(specs)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for b.Status().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no task started: %+v", b.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, err := m.Batches().Cancel(b.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != BatchCancelled || st.Cancelled != 4 || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("after cancel: %+v", st)
	}
	for _, row := range allTasks(t, b, 10) {
		if row.State != Cancelled || row.Code != TaskCodeCancelled {
			t.Errorf("task %d after batch cancel: %+v", row.Index, row)
		}
	}
	// The underlying jobs observe the cancellation (running within one
	// inner iteration, queued immediately).
	for _, row := range allTasks(t, b, 10) {
		if row.Job == "" {
			continue
		}
		j, err := m.Get(row.Job)
		if err != nil {
			continue // evicted history is fine
		}
		waitState(t, j, Cancelled, 30*time.Second)
	}
	if _, err := m.Batches().Cancel(b.ID()); err != nil {
		t.Fatalf("re-cancel not idempotent: %v", err)
	}

	b2, err := m.Batches().Submit([]BatchTaskSpec{tinyTask(7500)})
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, b2, BatchDone, 60*time.Second)
	if _, err := m.Batches().Cancel(b2.ID()); !errors.Is(err, ErrBatchFinished) {
		t.Errorf("cancel done batch: %v, want ErrBatchFinished", err)
	}
	if _, err := m.Batches().Cancel("nope"); !errors.Is(err, ErrUnknownBatch) {
		t.Errorf("cancel unknown batch: %v, want ErrUnknownBatch", err)
	}
}

// TestBatchSharedJobSurvivesOtherCancel: two batches deduplicate onto
// one in-flight job; cancelling the first batch must not cancel the
// job out from under the second.
func TestBatchSharedJobSurvivesOtherCancel(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1, Procs: 1})
	defer shutdown(t, m)

	bA, err := m.Batches().Submit([]BatchTaskSpec{moderateTask(8000)})
	if err != nil {
		t.Fatal(err)
	}
	bB, err := m.Batches().Submit([]BatchTaskSpec{moderateTask(8000)})
	if err != nil {
		t.Fatal(err)
	}
	rowsB := allTasks(t, bB, 10)
	if !rowsB[0].Deduped {
		t.Fatalf("identical cross-batch task not deduplicated: %+v", rowsB[0])
	}
	rowsA := allTasks(t, bA, 10)
	if rowsA[0].Job != rowsB[0].Job {
		t.Fatalf("batches did not share the job: %q vs %q", rowsA[0].Job, rowsB[0].Job)
	}
	// A direct job cancel (DELETE /v2/jobs/{id}) must refuse while any
	// live batch still holds the job — same invariant, different door.
	if _, err := m.Cancel(rowsA[0].Job); !errors.Is(err, ErrBatchOwned) {
		t.Fatalf("direct cancel of batch-shared job: %v, want ErrBatchOwned", err)
	}
	if _, err := m.Batches().Cancel(bA.ID()); err != nil {
		t.Fatal(err)
	}
	stB := waitBatch(t, bB, BatchDone, 120*time.Second)
	if stB.Done != 1 {
		t.Fatalf("surviving batch: %+v", stB)
	}
}

// TestBatchJobsSurviveHistoryPressure: the Manager's bounded job
// history must not strand a batch's task-to-graph links while the
// batch lives — even born-done cache-hit jobs are held until the batch
// finishes, then released for normal eviction.
func TestBatchJobsSurviveHistoryPressure(t *testing.T) {
	const n = 6
	m := NewManager(Config{MaxConcurrent: 2, MaxHistory: 2, CacheSize: 64})
	defer shutdown(t, m)

	specs := make([]BatchTaskSpec, n)
	for i := range specs {
		specs[i] = tinyTask(int64(9000 + 10*i))
	}
	bA, err := m.Batches().Submit(specs)
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, bA, BatchDone, 60*time.Second)

	// The identical manifest: every task is a born-done cache hit,
	// minted (and history-evicted, were it not held) inside one Submit.
	bB, err := m.Batches().Submit(specs)
	if err != nil {
		t.Fatal(err)
	}
	if st := bB.Status(); st.State != BatchDone || st.Cached != n {
		t.Fatalf("second batch: %+v", st)
	}
	for _, row := range allTasks(t, bB, 10) {
		j, err := m.Get(row.Job)
		if err != nil {
			t.Fatalf("task %d job %s evicted under a live batch: %v", row.Index, row.Job, err)
		}
		if _, _, err := j.Result(); err != nil {
			t.Fatalf("task %d result: %v", row.Index, err)
		}
	}
	// With both batches terminal the holds are gone: fresh submissions
	// shrink the table back toward the bound.
	x, o := fastDataset(9900)
	j, err := m.Submit(x, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, Done, 60*time.Second)
	if got := m.Len(); got > n+2 {
		t.Fatalf("history not shrinking after batch release: %d jobs", got)
	}
}

// TestBatchDoomedJobNotJoined: after its only batch is cancelled, an
// in-flight job is doomed even while the learner has not yet observed
// the cancel — a later identical task must start fresh, not join it
// and inherit the cancellation.
func TestBatchDoomedJobNotJoined(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 2, Procs: 2})
	defer shutdown(t, m)

	bA, err := m.Batches().Submit([]BatchTaskSpec{moderateTask(8100)})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for bA.Status().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("task never started: %+v", bA.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := m.Batches().Cancel(bA.ID()); err != nil {
		t.Fatal(err)
	}
	bB, err := m.Batches().Submit([]BatchTaskSpec{moderateTask(8100)})
	if err != nil {
		t.Fatal(err)
	}
	if rows := allTasks(t, bB, 10); rows[0].Deduped {
		t.Fatalf("fresh task joined a doomed job: %+v", rows[0])
	}
	if st := waitBatch(t, bB, BatchDone, 120*time.Second); st.Done != 1 {
		t.Fatalf("fresh task did not complete: %+v", st)
	}
}

// TestBatchSubmitValidation: empty manifests and draining managers are
// whole-batch errors — the only two.
func TestBatchSubmitValidation(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1})
	if _, err := m.Batches().Submit(nil); !errors.Is(err, ErrEmptyBatch) {
		t.Errorf("empty manifest: %v, want ErrEmptyBatch", err)
	}
	shutdown(t, m)
	if _, err := m.Batches().Submit([]BatchTaskSpec{tinyTask(1)}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("submit after shutdown: %v, want ErrShuttingDown", err)
	}
}
