package serve

// HTTP face of the batch subsystem (DESIGN.md §7). The manifest wire
// form is least.ManifestTask — the same JSONL schema leastcli -batch
// reads offline — restricted over HTTP to inline data and
// dataset_ref sources (a daemon never opens client-named local files).

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro"
)

// BatchRequest is the POST /v2/batches body: the manifest, as a JSON
// array of tasks (the JSONL manifest with lines turned into array
// elements).
type BatchRequest struct {
	Tasks []least.ManifestTask `json:"tasks"`
}

// TaskPage is the GET /v2/batches/{id}/tasks payload: one page of the
// per-task table. Total counts the rows matching the state filter, so
// a client pages with offset += len(tasks) until offset >= total.
type TaskPage struct {
	Batch  string       `json:"batch"`
	Total  int          `json:"total"`
	Offset int          `json:"offset"`
	Limit  int          `json:"limit"`
	Tasks  []TaskStatus `json:"tasks"`
}

// resolveBatchTask turns one manifest entry into the admission form,
// carrying resolution failures in Err so they become "validation" rows
// of the batch error table instead of failing the POST.
func (a *API) resolveBatchTask(t least.ManifestTask) BatchTaskSpec {
	ts := BatchTaskSpec{Label: t.ID, Center: t.Center, Spec: t.Spec, Manifest: &t}
	if err := t.Validate(); err != nil {
		ts.Err = err
		return ts
	}
	switch {
	case len(t.In) > 0:
		ts.Err = errors.New("in: local file sources are not accepted over HTTP; inline the data or use dataset_ref")
	case t.DatasetRef != "":
		ds, _, err := a.m.Dataset(t.DatasetRef)
		if err != nil {
			ts.Err = err
		} else {
			ts.Dataset = ds
			ts.DatasetID = t.DatasetRef
		}
	default:
		// The inline envelope resolves through the same ManifestTask.Data
		// as leastcli -batch, so a given task line draws the same typed
		// error code on both surfaces (NaN inline data included:
		// "validation", at resolution, never "internal" at learn time).
		ds, err := t.Data(least.DatasetOptions{})
		if err != nil {
			ts.Err = err
		} else {
			ts.Dataset = ds
		}
	}
	return ts
}

func (a *API) batchCreate(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	specs := make([]BatchTaskSpec, len(req.Tasks))
	for i, t := range req.Tasks {
		specs[i] = a.resolveBatchTask(t)
	}
	b, err := a.m.Batches().Submit(specs)
	switch {
	case errors.Is(err, ErrShuttingDown):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil: // empty manifest
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := b.Status()
	code := http.StatusAccepted
	if st.State.Terminal() { // every task resolved at admission
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (a *API) batchList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.m.Batches().List())
}

func (a *API) batchStatus(w http.ResponseWriter, r *http.Request) {
	b, err := a.m.Batches().Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, b.Status())
}

// batchTasks serves one page of the per-task result/error table.
// Defaults: offset 0, limit 100 (capped at 1000 — a 5,000-task batch
// is paged, never one response); ?state=failed pages just the error
// table.
func (a *API) batchTasks(w http.ResponseWriter, r *http.Request) {
	b, err := a.m.Batches().Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	q := r.URL.Query()
	offset, ok := queryInt(q.Get("offset"), 0)
	if !ok || offset < 0 {
		httpError(w, http.StatusBadRequest, "bad offset %q", q.Get("offset"))
		return
	}
	limit, ok := queryInt(q.Get("limit"), 100)
	if !ok || limit < 1 {
		httpError(w, http.StatusBadRequest, "bad limit %q", q.Get("limit"))
		return
	}
	if limit > 1000 {
		limit = 1000
	}
	state := State(q.Get("state"))
	switch state {
	case "", Queued, Running, Done, Failed, Cancelled:
	default:
		httpError(w, http.StatusBadRequest, "bad state %q", q.Get("state"))
		return
	}
	rows, total := b.Tasks(offset, limit, state)
	writeJSON(w, http.StatusOK, TaskPage{
		Batch:  b.ID(),
		Total:  total,
		Offset: offset,
		Limit:  limit,
		Tasks:  rows,
	})
}

// queryInt parses an optional integer query parameter.
func queryInt(s string, def int) (int, bool) {
	if s == "" {
		return def, true
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, false
	}
	return v, true
}

// batchEvents streams the batch's progress counters over Server-Sent
// Events, reusing the coalescing-frame machinery of the per-job
// stream: one "progress" event per observable change (slow consumers
// coalesce to the latest snapshot), then a single terminal event named
// after the final state ("done" / "cancelled") and EOF. Data payloads
// are BatchStatus JSON; event ids are the batch's change sequence.
func (a *API) batchEvents(w http.ResponseWriter, r *http.Request) {
	b, err := a.m.Batches().Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by transport")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	ctx := r.Context()
	seen := -1
	for {
		st, seq, terminal := b.Watch(ctx, seen)
		if ctx.Err() != nil {
			return // client went away
		}
		name := "progress"
		if terminal {
			name = string(st.State)
		}
		if err := writeSSE(w, name, seq, st); err != nil {
			return
		}
		fl.Flush()
		if terminal {
			return
		}
		seen = seq
	}
}

func (a *API) batchCancel(w http.ResponseWriter, r *http.Request) {
	st, err := a.m.Batches().Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownBatch):
		httpError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrBatchFinished):
		httpError(w, http.StatusConflict, "%v", err)
	default:
		writeJSON(w, http.StatusOK, st)
	}
}
