package mat

import (
	"fmt"
	"testing"
)

// fillBench fills m with ordinary-magnitude values: benchmark operands
// must not contain the denormals the correctness tests sprinkle —
// denormal arithmetic runs through microcode assists and would swamp
// the kernel timing (DESIGN.md §9).
func fillBench(m *Dense, seed uint64) {
	r := &gemmRand{s: seed}
	d := m.Data()
	for i := range d {
		d[i] = (float64(r.next()%2000) - 1000.5) / 128
	}
}

// BenchmarkMulTiled/BenchmarkMulRef time the register-blocked kernel
// against the pre-tiling reference at the sizes used while tuning the
// MR/NR/KC/MC geometry; the root-package GEMM benchmarks gate the
// trajectory, these are for iterating on the kernel in-package.
func BenchmarkMulTiled(b *testing.B) {
	for _, d := range []int{48, 128, 512} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			x, y := NewDense(d, d), NewDense(d, d)
			fillBench(x, 1)
			fillBench(y, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.MulWorkers(y, 1)
			}
		})
	}
}

func BenchmarkMulRef(b *testing.B) {
	for _, d := range []int{48, 128, 512} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			x, y := NewDense(d, d), NewDense(d, d)
			fillBench(x, 1)
			fillBench(y, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulRef(x, y)
			}
		})
	}
}
