package mat

import "math"

// Expm returns the matrix exponential e^A computed with the
// scaling-and-squaring algorithm and a degree-13 Padé approximant
// (Higham 2005, the algorithm behind scipy.linalg.expm). This is the
// O(d³) kernel inside the NOTEARS acyclicity constraint
// h(W) = tr(e^{W∘W}) − d that the paper's spectral bound replaces.
func Expm(a *Dense) *Dense {
	a.mustSquare()
	n := a.rows
	if n == 0 {
		return NewDense(0, 0)
	}
	if a.HasNaN() {
		// Fail fast: non-finite entries make every threshold comparison
		// below misfire (NaN column sums even vanish inside Norm1's
		// max, reading as norm 0), so the algorithm would silently
		// evaluate a mis-chosen Padé approximant and at best fall into
		// the Taylor guard rail — garbage with no error. Callers that
		// can see NaN (a diverging learner iterate) must screen before
		// calling.
		panic("mat: Expm of a matrix with non-finite entries")
	}
	norm := a.Norm1()
	// Degree thresholds from Higham's table: below each theta the
	// corresponding lower-degree Padé approximant is accurate to
	// double precision without scaling.
	switch {
	case norm <= 1.495585217958292e-2:
		return padeExp(a, pade3)
	case norm <= 2.539398330063230e-1:
		return padeExp(a, pade5)
	case norm <= 9.504178996162932e-1:
		return padeExp(a, pade7)
	case norm <= 2.097847961257068:
		return padeExp(a, pade9)
	}
	const theta13 = 5.371920351148152
	s := 0
	if norm > theta13 {
		s = int(math.Ceil(math.Log2(norm / theta13)))
	}
	scaled := a.Scale(math.Pow(2, -float64(s)))
	e := padeExp(scaled, pade13)
	for i := 0; i < s; i++ {
		e = e.Mul(e)
	}
	return e
}

var (
	pade3  = []float64{120, 60, 12, 1}
	pade5  = []float64{30240, 15120, 3360, 420, 30, 1}
	pade7  = []float64{17297280, 8648640, 1995840, 277200, 25200, 1512, 56, 1}
	pade9  = []float64{17643225600, 8821612800, 2075673600, 302702400, 30270240, 2162160, 110880, 3960, 90, 1}
	pade13 = []float64{
		64764752532480000, 32382376266240000, 7771770303897600,
		1187353796428800, 129060195264000, 10559470521600,
		670442572800, 33522128640, 1323241920,
		40840800, 960960, 16380, 182, 1,
	}
)

// padeExp evaluates the [m/m] Padé approximant of e^A with coefficient
// table b: r(A) = (V−U)⁻¹(V+U) where U collects odd powers and V even
// powers of A.
func padeExp(a *Dense, b []float64) *Dense {
	n := a.rows
	a2 := a.Mul(a)
	var u, v *Dense
	if len(b) == 14 {
		// Degree 13 uses the factored form from Higham to save
		// multiplications.
		a4 := a2.Mul(a2)
		a6 := a4.Mul(a2)
		// U = A·(A6·(b13·A6 + b11·A4 + b9·A2) + b7·A6 + b5·A4 + b3·A2 + b1·I)
		w1 := a6.Scale(b[13])
		w1.AxpyInPlace(b[11], a4)
		w1.AxpyInPlace(b[9], a2)
		w1 = a6.Mul(w1)
		w1.AxpyInPlace(b[7], a6)
		w1.AxpyInPlace(b[5], a4)
		w1.AxpyInPlace(b[3], a2)
		w1.AxpyInPlace(b[1], Identity(n))
		u = a.Mul(w1)
		// V = A6·(b12·A6 + b10·A4 + b8·A2) + b6·A6 + b4·A4 + b2·A2 + b0·I
		w2 := a6.Scale(b[12])
		w2.AxpyInPlace(b[10], a4)
		w2.AxpyInPlace(b[8], a2)
		v = a6.Mul(w2)
		v.AxpyInPlace(b[6], a6)
		v.AxpyInPlace(b[4], a4)
		v.AxpyInPlace(b[2], a2)
		v.AxpyInPlace(b[0], Identity(n))
	} else {
		// General Horner evaluation in A².
		// U = A·(Σ_{odd k} b[k] A^{k−1}), V = Σ_{even k} b[k] A^k.
		uacc := NewDense(n, n)
		vacc := NewDense(n, n)
		pow := Identity(n) // A^0
		for k := 0; k < len(b); k++ {
			if k%2 == 0 {
				vacc.AxpyInPlace(b[k], pow)
			} else {
				uacc.AxpyInPlace(b[k], pow)
			}
			if k < len(b)-1 && k%2 == 1 {
				pow = pow.Mul(a2)
			}
		}
		u = a.Mul(uacc)
		v = vacc
	}
	num := v.AddMat(u) // V + U
	den := v.SubMat(u) // V − U
	f, err := Factorize(den)
	if err != nil {
		// V − U singular only for pathological inputs (overflowed
		// norms); fall back to a plain Taylor series which is always
		// defined.
		return taylorExp(a)
	}
	return f.SolveMat(num)
}

// taylorExp is a guard-rail truncated Taylor series used only when the
// Padé denominator is singular (e.g. entries have overflowed).
func taylorExp(a *Dense) *Dense {
	n := a.rows
	e := Identity(n)
	term := Identity(n)
	for k := 1; k <= 40; k++ {
		term = term.Mul(a)
		term.ScaleInPlace(1 / float64(k))
		e.AddInPlace(term)
		if term.MaxAbs() < 1e-16 {
			break
		}
	}
	return e
}
