package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDenseAndAccessors(t *testing.T) {
	m := NewDense(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At roundtrip failed")
	}
	m.Add(1, 2, 2)
	if m.At(1, 2) != 7 {
		t.Fatal("Add failed")
	}
	row := m.Row(1)
	row[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row must be a view")
	}
}

func TestNewDenseDataValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad data length")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestIdentityAndTrace(t *testing.T) {
	id := Identity(4)
	if id.Trace() != 4 {
		t.Fatalf("trace(I4) = %g", id.Trace())
	}
	if id.At(0, 1) != 0 || id.At(2, 2) != 1 {
		t.Fatal("identity entries wrong")
	}
}

func TestArithmetic(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{5, 6, 7, 8})
	sum := a.AddMat(b)
	if sum.At(1, 1) != 12 {
		t.Fatal("AddMat")
	}
	diff := b.SubMat(a)
	if diff.At(0, 0) != 4 {
		t.Fatal("SubMat")
	}
	had := a.Hadamard(b)
	if had.At(0, 1) != 12 {
		t.Fatal("Hadamard")
	}
	sq := a.Square()
	if sq.At(1, 0) != 9 {
		t.Fatal("Square")
	}
	sc := a.Scale(2)
	if sc.At(1, 1) != 8 {
		t.Fatal("Scale")
	}
	c := a.Clone()
	c.AddInPlace(b)
	if c.At(0, 0) != 6 || a.At(0, 0) != 1 {
		t.Fatal("AddInPlace / Clone isolation")
	}
	c2 := a.Clone()
	c2.AxpyInPlace(3, b)
	if c2.At(0, 0) != 16 {
		t.Fatal("AxpyInPlace")
	}
}

func TestMulCorrectness(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := a.Mul(b)
	want := NewDenseData(2, 2, []float64{58, 64, 139, 154})
	if !c.EqualApprox(want, 1e-12) {
		t.Fatalf("Mul wrong: %v", c)
	}
}

func TestMulParallelMatchesSerial(t *testing.T) {
	// Large enough to trip the parallel path; compare against a naive
	// triple loop.
	n := 130
	a := NewDense(n, n)
	b := NewDense(n, n)
	s := 1.0
	for i := range a.data {
		a.data[i] = math.Sin(s)
		b.data[i] = math.Cos(s / 2)
		s += 0.37
	}
	got := a.Mul(b)
	want := NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			av := a.At(i, k)
			for j := 0; j < n; j++ {
				want.Add(i, j, av*b.At(k, j))
			}
		}
	}
	if !got.EqualApprox(want, 1e-9) {
		t.Fatal("parallel Mul diverges from naive product")
	}
}

func TestMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	NewDense(2, 3).Mul(NewDense(2, 2))
}

func TestTranspose(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatal("Transpose wrong")
	}
	if !at.Transpose().EqualApprox(a, 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestNorms(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, -2, -3, 4})
	if a.SumAbs() != 10 {
		t.Fatal("SumAbs")
	}
	if !almostEq(a.FrobNorm(), math.Sqrt(30), 1e-12) {
		t.Fatal("FrobNorm")
	}
	if a.Norm1() != 6 { // max col sum of abs: |−2|+4 = 6
		t.Fatalf("Norm1 = %g", a.Norm1())
	}
	if a.NormInf() != 7 { // row 1: 3+4
		t.Fatalf("NormInf = %g", a.NormInf())
	}
	if a.MaxAbs() != 4 {
		t.Fatal("MaxAbs")
	}
}

func TestThresholdAndNNZ(t *testing.T) {
	a := NewDenseData(2, 2, []float64{0.05, -0.2, 0, 0.5})
	if a.NNZ(0) != 3 {
		t.Fatal("NNZ")
	}
	cleared := a.Threshold(0.1)
	if cleared != 1 || a.At(0, 0) != 0 || a.At(0, 1) != -0.2 {
		t.Fatal("Threshold semantics")
	}
}

func TestRowColSums(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	r := a.RowSums()
	c := a.ColSums()
	if r[0] != 6 || r[1] != 15 {
		t.Fatal("RowSums")
	}
	if c[0] != 5 || c[1] != 7 || c[2] != 9 {
		t.Fatal("ColSums")
	}
}

func TestZeroDiagonalAndHasNaN(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	a.ZeroDiagonal()
	if a.At(0, 0) != 0 || a.At(1, 1) != 0 || a.At(0, 1) != 2 {
		t.Fatal("ZeroDiagonal")
	}
	if a.HasNaN() {
		t.Fatal("false NaN")
	}
	a.Set(0, 1, math.NaN())
	if !a.HasNaN() {
		t.Fatal("missed NaN")
	}
	a.Set(0, 1, math.Inf(1))
	if !a.HasNaN() {
		t.Fatal("missed Inf")
	}
}

func TestMulVec(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	v := a.MulVec([]float64{1, 1, 1})
	if v[0] != 6 || v[1] != 15 {
		t.Fatal("MulVec")
	}
}

func TestPow(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 1, 0, 1})
	p := a.Pow(5)
	if p.At(0, 1) != 5 || p.At(0, 0) != 1 {
		t.Fatalf("Pow: %v", p)
	}
	if !a.Pow(0).EqualApprox(Identity(2), 0) {
		t.Fatal("A^0 != I")
	}
	if !a.Pow(1).EqualApprox(a, 0) {
		t.Fatal("A^1 != A")
	}
}

func TestSpectralRadiusKnownCases(t *testing.T) {
	// Diagonalizable: [[2,0],[0,3]] → 3.
	a := NewDenseData(2, 2, []float64{2, 0, 0, 3})
	if r := a.SpectralRadius(200, 1e-12); !almostEq(r, 3, 1e-6) {
		t.Fatalf("radius = %g, want 3", r)
	}
	// Nilpotent (strictly upper triangular) → 0.
	n := NewDenseData(3, 3, []float64{0, 1, 2, 0, 0, 3, 0, 0, 0})
	if r := n.SpectralRadius(200, 1e-12); r > 1e-9 {
		t.Fatalf("nilpotent radius = %g", r)
	}
	// Symmetric positive: [[2,1],[1,2]] → 3.
	s := NewDenseData(2, 2, []float64{2, 1, 1, 2})
	if r := s.SpectralRadius(500, 1e-14); !almostEq(r, 3, 1e-6) {
		t.Fatalf("radius = %g, want 3", r)
	}
}

func TestQuickMulDistributesOverAdd(t *testing.T) {
	// Property: A(B+C) = AB + AC for small random matrices.
	f := func(av, bv, cv [9]float64) bool {
		clean := func(v [9]float64) []float64 {
			out := make([]float64, 9)
			for i, x := range v {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					x = 0
				}
				out[i] = math.Mod(x, 100)
			}
			return out
		}
		a := NewDenseData(3, 3, clean(av))
		b := NewDenseData(3, 3, clean(bv))
		c := NewDenseData(3, 3, clean(cv))
		left := a.Mul(b.AddMat(c))
		right := a.Mul(b).AddMat(a.Mul(c))
		return left.EqualApprox(right, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransposeOfProduct(t *testing.T) {
	// Property: (AB)ᵀ = BᵀAᵀ.
	f := func(av, bv [9]float64) bool {
		clean := func(v [9]float64) []float64 {
			out := make([]float64, 9)
			for i, x := range v {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					x = 0
				}
				out[i] = math.Mod(x, 50)
			}
			return out
		}
		a := NewDenseData(3, 3, clean(av))
		b := NewDenseData(3, 3, clean(bv))
		return a.Mul(b).Transpose().EqualApprox(b.Transpose().Mul(a.Transpose()), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpectralRadiusGelfandKnownCases(t *testing.T) {
	// Diagonal → max |eigenvalue|.
	a := NewDenseData(2, 2, []float64{2, 0, 0, 3})
	if r := a.SpectralRadiusGelfand(40); !almostEq(r, 3, 1e-9) {
		t.Fatalf("Gelfand diag = %g", r)
	}
	// Nilpotent → 0.
	n := NewDenseData(2, 2, []float64{0, 5, 0, 0})
	if r := n.SpectralRadiusGelfand(40); r != 0 {
		t.Fatalf("Gelfand nilpotent = %g", r)
	}
	// Non-normal with transient growth: [[1, 1000],[0, 0.5]] → ρ = 1.
	m := NewDenseData(2, 2, []float64{1, 1000, 0, 0.5})
	if r := m.SpectralRadiusGelfand(48); !almostEq(r, 1, 1e-6) {
		t.Fatalf("Gelfand non-normal = %g want 1", r)
	}
	// Rotation-like [[0,2],[-2,0]] → eigenvalues ±2i, ρ = 2.
	rot := NewDenseData(2, 2, []float64{0, 2, -2, 0})
	if r := rot.SpectralRadiusGelfand(48); !almostEq(r, 2, 1e-6) {
		t.Fatalf("Gelfand rotation = %g want 2", r)
	}
}

func TestMulWorkersBitIdentical(t *testing.T) {
	// Above the GEMM parallel threshold so the worker bound is live;
	// every bound must be bit-identical (stripes partition output rows).
	n := 130
	a := NewDense(n, n)
	b := NewDense(n, n)
	s := 1.0
	for i := range a.data {
		a.data[i] = math.Sin(s)
		b.data[i] = math.Cos(s / 2)
		s += 0.41
	}
	serial := a.MulWorkers(b, 1)
	for _, workers := range []int{0, 2, 3, 7} {
		got := a.MulWorkers(b, workers)
		if !serial.EqualApprox(got, 0) {
			t.Fatalf("MulWorkers(%d) differs from serial", workers)
		}
	}
	if !serial.EqualApprox(a.Mul(b), 0) {
		t.Fatal("Mul must equal the bounded variant")
	}
}
