// Package mat implements the dense linear-algebra kernel that the
// NOTEARS baseline and the dense ("LEAST-TF style") learner are built
// on. The paper's baseline needs a matrix exponential (its acyclicity
// constraint is h(W) = tr(e^{W∘W}) − d) and its polynomial relaxation
// needs integer matrix powers, so the package provides both, together
// with a parallel GEMM, an LU solver (used inside the Padé evaluation)
// and a power-iteration spectral radius used by tests to certify the
// paper's upper bound.
//
// Everything is row-major float64; no external BLAS.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed rows×cols matrix. It panics if either
// dimension is negative or if rows*cols overflows int.
func NewDense(rows, cols int) *Dense {
	return &Dense{rows: rows, cols: cols, data: make([]float64, checkedSize(rows, cols))}
}

// checkedSize validates matrix dimensions and returns rows*cols,
// panicking on negative dimensions or int overflow — rows*cols wraps
// silently for shapes past ~3e9×3e9, which would otherwise turn an
// impossible allocation into a tiny matrix with out-of-bounds math.
func checkedSize(rows, cols int) int {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	if cols > 0 && rows > math.MaxInt/cols {
		panic(fmt.Sprintf("mat: dimensions %dx%d overflow int", rows, cols))
	}
	return rows * cols
}

// NewDenseData wraps data (length rows*cols, row-major) without copying.
func NewDenseData(rows, cols int, data []float64) *Dense {
	if len(data) != checkedSize(rows, cols) {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Data returns the backing slice (row-major). Mutating it mutates m.
func (m *Dense) Data() []float64 { return m.data }

// At returns m[i,j].
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns m[i,j] = v.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add accumulates m[i,j] += v.
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns a view of row i (mutations are visible in m).
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Slice returns a view of rows [lo, hi) sharing m's backing array
// (mutations are visible both ways). It is how the sufficient-
// statistics accumulator walks a matrix in chunks without copying.
func (m *Dense) Slice(lo, hi int) *Dense {
	if lo < 0 || hi < lo || hi > m.rows {
		panic(fmt.Sprintf("mat: slice [%d,%d) out of %d rows", lo, hi, m.rows))
	}
	return &Dense{rows: hi - lo, cols: m.cols, data: m.data[lo*m.cols : hi*m.cols]}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom overwrites m with the contents of src. Panics on shape
// mismatch.
func (m *Dense) CopyFrom(src *Dense) {
	m.mustSameShape(src)
	copy(m.data, src.data)
}

// Zero sets every element of m to 0.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

func (m *Dense) mustSameShape(o *Dense) {
	if m.rows != o.rows || m.cols != o.cols {
		panic(fmt.Sprintf("mat: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
}

// AddMat returns m + o as a new matrix.
func (m *Dense) AddMat(o *Dense) *Dense {
	m.mustSameShape(o)
	r := NewDense(m.rows, m.cols)
	for i, v := range m.data {
		r.data[i] = v + o.data[i]
	}
	return r
}

// SubMat returns m − o as a new matrix.
func (m *Dense) SubMat(o *Dense) *Dense {
	m.mustSameShape(o)
	r := NewDense(m.rows, m.cols)
	for i, v := range m.data {
		r.data[i] = v - o.data[i]
	}
	return r
}

// AddInPlace accumulates m += o.
func (m *Dense) AddInPlace(o *Dense) {
	m.mustSameShape(o)
	for i, v := range o.data {
		m.data[i] += v
	}
}

// AxpyInPlace accumulates m += a*o.
func (m *Dense) AxpyInPlace(a float64, o *Dense) {
	m.mustSameShape(o)
	for i, v := range o.data {
		m.data[i] += a * v
	}
}

// Scale returns a*m as a new matrix.
func (m *Dense) Scale(a float64) *Dense {
	r := NewDense(m.rows, m.cols)
	for i, v := range m.data {
		r.data[i] = a * v
	}
	return r
}

// ScaleInPlace multiplies every element of m by a.
func (m *Dense) ScaleInPlace(a float64) {
	for i := range m.data {
		m.data[i] *= a
	}
}

// Hadamard returns the element-wise product m ∘ o.
func (m *Dense) Hadamard(o *Dense) *Dense {
	m.mustSameShape(o)
	r := NewDense(m.rows, m.cols)
	for i, v := range m.data {
		r.data[i] = v * o.data[i]
	}
	return r
}

// Square returns m ∘ m, the S = W ∘ W transform from the paper.
func (m *Dense) Square() *Dense {
	r := NewDense(m.rows, m.cols)
	for i, v := range m.data {
		r.data[i] = v * v
	}
	return r
}

// Dot returns the entrywise inner product Σ m[i,j]·o[i,j] — the
// ⟨G, W⟩ terms of the sufficient-statistics loss form.
func (m *Dense) Dot(o *Dense) float64 {
	m.mustSameShape(o)
	var s float64
	for i, v := range m.data {
		s += v * o.data[i]
	}
	return s
}

// Transpose returns mᵀ as a new matrix.
func (m *Dense) Transpose() *Dense {
	r := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			r.data[j*m.rows+i] = v
		}
	}
	return r
}

// Trace returns the sum of diagonal elements. Panics if m is not square.
func (m *Dense) Trace() float64 {
	m.mustSquare()
	var t float64
	for i := 0; i < m.rows; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}

func (m *Dense) mustSquare() {
	if m.rows != m.cols {
		panic(fmt.Sprintf("mat: %dx%d matrix is not square", m.rows, m.cols))
	}
}

// ZeroDiagonal clears the diagonal of a square matrix (self-loops are
// forbidden in all structure-learning weight matrices).
func (m *Dense) ZeroDiagonal() {
	m.mustSquare()
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+i] = 0
	}
}

// SumAbs returns the entrywise L1 norm Σ|m[i,j]|.
func (m *Dense) SumAbs() float64 {
	var s float64
	for _, v := range m.data {
		s += math.Abs(v)
	}
	return s
}

// FrobNorm returns the Frobenius norm.
func (m *Dense) FrobNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Norm1 returns the induced 1-norm (maximum absolute column sum).
func (m *Dense) Norm1() float64 {
	sums := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			sums[j] += math.Abs(v)
		}
	}
	var mx float64
	for _, s := range sums {
		if s > mx {
			mx = s
		}
	}
	return mx
}

// NormInf returns the induced ∞-norm (maximum absolute row sum).
func (m *Dense) NormInf() float64 {
	var mx float64
	for i := 0; i < m.rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += math.Abs(v)
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// MaxAbs returns the largest absolute entry.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// NNZ returns the number of entries with |m[i,j]| > tol.
func (m *Dense) NNZ(tol float64) int {
	n := 0
	for _, v := range m.data {
		if math.Abs(v) > tol {
			n++
		}
	}
	return n
}

// Threshold zeroes every entry with |m[i,j]| < theta (the filtering step
// of Fig 3, INNER line 9) and reports how many entries were cleared.
func (m *Dense) Threshold(theta float64) int {
	cleared := 0
	for i, v := range m.data {
		if v != 0 && math.Abs(v) < theta {
			m.data[i] = 0
			cleared++
		}
	}
	return cleared
}

// RowSums returns the vector of row sums.
func (m *Dense) RowSums() []float64 {
	r := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += v
		}
		r[i] = s
	}
	return r
}

// ColSums returns the vector of column sums.
func (m *Dense) ColSums() []float64 {
	c := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			c[j] += v
		}
	}
	return c
}

// HasNaN reports whether any entry is NaN or ±Inf.
func (m *Dense) HasNaN() bool {
	for _, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// EqualApprox reports whether m and o agree entrywise within tol.
func (m *Dense) EqualApprox(o *Dense, tol float64) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-o.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging.
func (m *Dense) String() string {
	s := fmt.Sprintf("Dense %dx%d", m.rows, m.cols)
	if m.rows*m.cols <= 64 {
		s += " ["
		for i := 0; i < m.rows; i++ {
			s += fmt.Sprintf("%v", m.Row(i))
			if i < m.rows-1 {
				s += "; "
			}
		}
		s += "]"
	}
	return s
}

// MulVec returns m·v for a column vector v of length m.Cols().
func (m *Dense) MulVec(v []float64) []float64 {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: MulVec length %d != cols %d", len(v), m.cols))
	}
	r := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for j, w := range m.Row(i) {
			s += w * v[j]
		}
		r[i] = s
	}
	return r
}

// Pow returns mᵖ for integer p ≥ 0 by repeated squaring (O(log p)
// multiplications). Used by the DAG-GNN polynomial constraint
// tr((I+γS)^d) − d.
func (m *Dense) Pow(p int) *Dense {
	m.mustSquare()
	if p < 0 {
		panic("mat: negative matrix power")
	}
	result := Identity(m.rows)
	base := m.Clone()
	for p > 0 {
		if p&1 == 1 {
			result = result.Mul(base)
		}
		p >>= 1
		if p > 0 {
			base = base.Mul(base)
		}
	}
	return result
}

// SpectralRadiusGelfand computes the spectral radius via Gelfand's
// formula ρ(A) = lim ‖A^m‖^(1/m), evaluating m = 2^squarings by
// repeated squaring with per-step normalization (so no overflow).
// Unlike power iteration it cannot transiently over-estimate on
// non-normal matrices, which makes it the referee the property tests
// use to certify the paper's upper bound. O(squarings·d³).
func (m *Dense) SpectralRadiusGelfand(squarings int) float64 {
	m.mustSquare()
	if m.rows == 0 {
		return 0
	}
	a := m.Clone()
	logRho := 0.0 // log of the accumulated scale, divided by 2^s
	inv := 1.0    // 1/2^s at the top of iteration s
	for s := 0; s < squarings; s++ {
		norm := a.FrobNorm()
		if norm == 0 {
			return 0 // nilpotent
		}
		a.ScaleInPlace(1 / norm)
		logRho += math.Log(norm) * inv
		a = a.Mul(a)
		inv /= 2
	}
	norm := a.FrobNorm()
	if norm == 0 {
		return 0
	}
	return math.Exp(logRho + math.Log(norm)*inv)
}

// SpectralRadius estimates the spectral radius of a non-negative square
// matrix by power iteration on a strictly positive start vector. It
// converges for the irreducible case and, for reducible non-negative
// matrices (the common case for near-DAG S), still converges to the
// dominant eigenvalue because the start vector has full support. iters
// bounds the work; tol is the relative-change stopping criterion.
func (m *Dense) SpectralRadius(iters int, tol float64) float64 {
	m.mustSquare()
	n := m.rows
	if n == 0 {
		return 0
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	prev := 0.0
	for it := 0; it < iters; it++ {
		w := m.MulVec(v)
		var norm float64
		for _, x := range w {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0 // v reached the kernel: matrix is nilpotent on it
		}
		// Rayleigh-style estimate: λ ≈ |Mv| / |v| with |v| = 1.
		lambda := norm
		for i := range w {
			v[i] = w[i] / norm
		}
		if it > 0 && math.Abs(lambda-prev) <= tol*math.Max(1, lambda) {
			return lambda
		}
		prev = lambda
	}
	return prev
}
