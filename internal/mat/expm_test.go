package mat

import (
	"math"
	"testing"
)

func TestExpmZeroIsIdentity(t *testing.T) {
	e := Expm(NewDense(4, 4))
	if !e.EqualApprox(Identity(4), 1e-14) {
		t.Fatal("expm(0) != I")
	}
}

func TestExpmDiagonal(t *testing.T) {
	a := NewDense(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, -2)
	a.Set(2, 2, 0.5)
	e := Expm(a)
	want := []float64{math.E, math.Exp(-2), math.Exp(0.5)}
	for i, v := range want {
		if !almostEq(e.At(i, i), v, 1e-12*math.Max(1, v)) {
			t.Fatalf("expm diag[%d] = %g want %g", i, e.At(i, i), v)
		}
	}
	if math.Abs(e.At(0, 1)) > 1e-14 {
		t.Fatal("off-diagonal should stay zero")
	}
}

func TestExpmNilpotent(t *testing.T) {
	// N = [[0,1],[0,0]]: e^N = I + N exactly.
	a := NewDenseData(2, 2, []float64{0, 1, 0, 0})
	e := Expm(a)
	want := NewDenseData(2, 2, []float64{1, 1, 0, 1})
	if !e.EqualApprox(want, 1e-14) {
		t.Fatalf("expm nilpotent: %v", e)
	}
}

func TestExpmKnown2x2(t *testing.T) {
	// A = [[0,θ],[−θ,0]] → rotation: e^A = [[cosθ, sinθ],[−sinθ, cosθ]].
	theta := 0.7
	a := NewDenseData(2, 2, []float64{0, theta, -theta, 0})
	e := Expm(a)
	want := NewDenseData(2, 2, []float64{math.Cos(theta), math.Sin(theta), -math.Sin(theta), math.Cos(theta)})
	if !e.EqualApprox(want, 1e-12) {
		t.Fatalf("expm rotation: %v", e)
	}
}

func TestExpmLargeNormScaling(t *testing.T) {
	// Norm > theta13 forces the scaling-and-squaring branch; validate
	// against the diagonal closed form.
	a := NewDense(2, 2)
	a.Set(0, 0, 8)
	a.Set(1, 1, -8)
	e := Expm(a)
	if !almostEq(e.At(0, 0), math.Exp(8), 1e-8*math.Exp(8)) {
		t.Fatalf("expm scaled diag = %g want %g", e.At(0, 0), math.Exp(8))
	}
	if !almostEq(e.At(1, 1), math.Exp(-8), 1e-10) {
		t.Fatalf("expm scaled diag2 = %g", e.At(1, 1))
	}
}

func TestExpmMatchesTaylorOnSmallRandom(t *testing.T) {
	// For moderate norms the truncated Taylor series is accurate; the
	// Padé result must agree.
	a := NewDense(5, 5)
	s := 0.3
	for i := range a.data {
		a.data[i] = math.Sin(s) * 0.4
		s += 0.61
	}
	pade := Expm(a)
	taylor := taylorExp(a)
	if !pade.EqualApprox(taylor, 1e-10) {
		t.Fatal("Padé and Taylor disagree")
	}
}

func TestExpmSemigroupProperty(t *testing.T) {
	// e^(A)·e^(A) = e^(2A) for commuting arguments (A with itself).
	a := NewDense(4, 4)
	s := 0.1
	for i := range a.data {
		a.data[i] = math.Cos(s) * 0.3
		s += 0.43
	}
	e1 := Expm(a)
	e2 := Expm(a.Scale(2))
	if !e1.Mul(e1).EqualApprox(e2, 1e-9) {
		t.Fatal("semigroup property violated")
	}
}

func TestExpmTraceMonotoneInCycleWeight(t *testing.T) {
	// tr(e^{S}) grows as cycle weight grows — the monotonicity NOTEARS
	// relies on.
	prev := 0.0
	for _, w := range []float64{0, 0.2, 0.5, 1, 2} {
		a := NewDense(2, 2)
		a.Set(0, 1, w)
		a.Set(1, 0, w)
		tr := Expm(a).Trace()
		if tr < prev {
			t.Fatalf("trace not monotone at w=%g", w)
		}
		prev = tr
	}
}

func TestExpmEmpty(t *testing.T) {
	e := Expm(NewDense(0, 0))
	if e.Rows() != 0 || e.Cols() != 0 {
		t.Fatal("expm(empty) should be empty")
	}
}

// TestExpmNonFinitePanics is the regression test for the NaN/Inf bug:
// a non-finite 1-norm used to fall through every Padé threshold and
// the scaling test, silently returning taylorExp garbage. Expm must
// refuse such input up front.
func TestExpmNonFinitePanics(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		a := NewDense(3, 3)
		a.Set(1, 2, bad)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Expm with entry %g: expected panic", bad)
				}
			}()
			Expm(a)
		}()
	}
}
