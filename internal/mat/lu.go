package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when LU factorization meets a pivot that is
// exactly zero after partial pivoting.
var ErrSingular = errors.New("mat: matrix is singular")

// LU holds an LU factorization with partial pivoting: P·A = L·U, with L
// unit lower triangular and U upper triangular stored packed in lu.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// Factorize computes the LU factorization of the square matrix a with
// partial (row) pivoting. a is not modified.
func Factorize(a *Dense) (*LU, error) {
	a.mustSquare()
	n := a.rows
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, a.data)
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Find pivot.
		p := k
		mx := math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(f.lu[i*n+k]); v > mx {
				mx, p = v, i
			}
		}
		if mx == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk := f.lu[k*n : k*n+n]
			rp := f.lu[p*n : p*n+n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := f.lu[i*n+k] / pivot
			f.lu[i*n+k] = m
			if m == 0 {
				continue
			}
			ri := f.lu[i*n : i*n+n]
			rk := f.lu[k*n : k*n+n]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return f, nil
}

// SolveMat solves A·X = B for X where A is the factorized matrix. B is
// not modified.
func (f *LU) SolveMat(b *Dense) *Dense {
	if b.rows != f.n {
		panic(fmt.Sprintf("mat: solve dimension mismatch %d vs %d", b.rows, f.n))
	}
	n, m := f.n, b.cols
	x := NewDense(n, m)
	// Apply permutation.
	for i := 0; i < n; i++ {
		copy(x.Row(i), b.Row(f.piv[i]))
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		xi := x.Row(i)
		for k := 0; k < i; k++ {
			l := f.lu[i*n+k]
			if l == 0 {
				continue
			}
			xk := x.Row(k)
			for j := 0; j < m; j++ {
				xi[j] -= l * xk[j]
			}
		}
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		xi := x.Row(i)
		for k := i + 1; k < n; k++ {
			u := f.lu[i*n+k]
			if u == 0 {
				continue
			}
			xk := x.Row(k)
			for j := 0; j < m; j++ {
				xi[j] -= u * xk[j]
			}
		}
		d := f.lu[i*n+i]
		for j := 0; j < m; j++ {
			xi[j] /= d
		}
	}
	return x
}

// Solve solves A·x = b for a single right-hand side.
func (f *LU) Solve(b []float64) []float64 {
	bm := NewDenseData(len(b), 1, append([]float64(nil), b...))
	return f.SolveMat(bm).data
}
