package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLUSolveKnownSystem(t *testing.T) {
	// [2 1; 1 3] x = [3; 5] → x = [0.8, 1.4].
	a := NewDenseData(2, 2, []float64{2, 1, 1, 3})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{3, 5})
	if !almostEq(x[0], 0.8, 1e-12) || !almostEq(x[1], 1.4, 1e-12) {
		t.Fatalf("solve: %v", x)
	}
}

func TestLUSolveRequiresPivoting(t *testing.T) {
	// Leading zero pivot: only solvable with row swaps.
	a := NewDenseData(2, 2, []float64{0, 1, 1, 0})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{2, 3})
	if !almostEq(x[0], 3, 1e-12) || !almostEq(x[1], 2, 1e-12) {
		t.Fatalf("pivoted solve: %v", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 4})
	if _, err := Factorize(a); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestLUSolveMatResiduals(t *testing.T) {
	n := 20
	a := NewDense(n, n)
	s := 0.2
	for i := range a.data {
		a.data[i] = math.Sin(s)
		s += 0.57
	}
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n)) // diagonally dominant → well conditioned
	}
	b := NewDense(n, 3)
	for i := range b.data {
		b.data[i] = math.Cos(s)
		s += 0.31
	}
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.SolveMat(b)
	if !a.Mul(x).EqualApprox(b, 1e-9) {
		t.Fatal("A·X != B")
	}
}

func TestLUQuickResidualProperty(t *testing.T) {
	f := func(vals [16]float64, rhs [4]float64) bool {
		a := NewDense(4, 4)
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			a.data[i] = math.Mod(v, 10)
		}
		for i := 0; i < 4; i++ {
			a.Add(i, i, 20) // keep well conditioned
		}
		b := make([]float64, 4)
		for i, v := range rhs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			b[i] = math.Mod(v, 10)
		}
		lu, err := Factorize(a)
		if err != nil {
			return false
		}
		x := lu.Solve(b)
		r := a.MulVec(x)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
