package mat

import (
	"math"
	"sync"
	"testing"
)

// gemmRand is a tiny deterministic generator for kernel tests; it
// sprinkles exact zeros (to exercise the zero-skip path), negative
// zeros, and denormal-scale values among ordinary magnitudes.
type gemmRand struct{ s uint64 }

func (r *gemmRand) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *gemmRand) val() float64 {
	u := r.next()
	switch u % 16 {
	case 0:
		return 0
	case 1:
		return math.Copysign(0, -1)
	case 2:
		return 5e-324 * float64(1+u%7)
	default:
		return (float64(u%2000) - 1000.5) / 128
	}
}

func fillRand(m *Dense, r *gemmRand) {
	d := m.Data()
	for i := range d {
		d[i] = r.val()
	}
}

func bitsEqual(t *testing.T, got, want *Dense, label string) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	g, w := got.Data(), want.Data()
	for i := range g {
		if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
			t.Fatalf("%s: element %d = %x (%g), want %x (%g)",
				label, i, math.Float64bits(g[i]), g[i], math.Float64bits(w[i]), w[i])
		}
	}
}

// TestTiledKernelMatchesRef drives the packed tiled kernel directly
// (bypassing the flop-count dispatch) across adversarial shapes —
// single rows and columns, every alignment around the 4-wide tile
// boundary, empty extents — and checks bit-for-bit equality with the
// streaming reference kernel.
func TestTiledKernelMatchesRef(t *testing.T) {
	dims := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 32, 33}
	r := &gemmRand{s: 0x9e3779b97f4a7c15}
	for _, m := range dims {
		for _, k := range dims {
			for _, n := range dims {
				a := NewDense(m, k)
				b := NewDense(k, n)
				fillRand(a, r)
				fillRand(b, r)
				got := NewDense(m, n)
				if k > 0 && n > 0 {
					strips := (n + gemmNR - 1) / gemmNR
					pack := make([]float64, strips*k*gemmNR)
					packB(b, pack)
					tileStripe(got, a, pack, k, 0, m)
				}
				bitsEqual(t, got, MulRef(a, b), "tiled")
			}
		}
	}
}

// TestTiledKernelMatchesRefSpanningKC exercises k extents around the
// KC blocking boundary so partial sums get parked in C between
// k-blocks at least once.
func TestTiledKernelMatchesRefSpanningKC(t *testing.T) {
	r := &gemmRand{s: 42}
	for _, k := range []int{gemmKC - 1, gemmKC, gemmKC + 1, 2*gemmKC + 3} {
		a := NewDense(9, k)
		b := NewDense(k, 6)
		fillRand(a, r)
		fillRand(b, r)
		got := NewDense(9, 6)
		strips := (6 + gemmNR - 1) / gemmNR
		pack := make([]float64, strips*k*gemmNR)
		packB(b, pack)
		tileStripe(got, a, pack, k, 0, 9)
		bitsEqual(t, got, MulRef(a, b), "tiled/kc")
	}
}

// TestMulAllZeroA pins the zero-skip semantics: with A all zeros the
// product must be exactly +0 everywhere even when B carries NaN and
// Inf (the skip never multiplies them in) — same contract as the
// reference kernel.
func TestMulAllZeroA(t *testing.T) {
	a := NewDense(40, 40) // big enough for the tiled path
	b := NewDense(40, 40)
	bd := b.Data()
	for i := range bd {
		bd[i] = math.NaN()
	}
	bd[0] = math.Inf(1)
	got := a.Mul(b)
	for i, v := range got.Data() {
		if math.Float64bits(v) != 0 {
			t.Fatalf("element %d = %g, want +0", i, v)
		}
	}
	bitsEqual(t, got, MulRef(a, b), "all-zero A")
}

// TestMulWorkersBitDeterminism is the worker-bound property test: the
// product must be bit-identical at every worker bound, and identical
// to the reference kernel. d=160 puts the multiply past the parallel
// threshold (160³ ≈ 4.1M flops) with stripe splits that don't divide
// the rows evenly.
func TestMulWorkersBitDeterminism(t *testing.T) {
	r := &gemmRand{s: 7}
	a := NewDense(160, 160)
	b := NewDense(160, 160)
	fillRand(a, r)
	fillRand(b, r)
	want := MulRef(a, b)
	for _, w := range []int{0, 1, 2, 3, 4, 5, 7, 8, 16, 160} {
		bitsEqual(t, a.MulWorkers(b, w), want, "workers")
	}
}

// TestMulRectangularMatchesRef covers tall/wide shapes through the
// public dispatch (both kernels, both fan-outs).
func TestMulRectangularMatchesRef(t *testing.T) {
	r := &gemmRand{s: 99}
	shapes := [][3]int{{1, 500, 1}, {500, 1, 500}, {3, 700, 200}, {200, 700, 3}, {129, 65, 33}}
	for _, sh := range shapes {
		a := NewDense(sh[0], sh[1])
		b := NewDense(sh[1], sh[2])
		fillRand(a, r)
		fillRand(b, r)
		want := MulRef(a, b)
		for _, w := range []int{0, 1, 3} {
			bitsEqual(t, a.MulWorkers(b, w), want, "rect")
		}
	}
}

func TestMulInto(t *testing.T) {
	r := &gemmRand{s: 5}
	a := NewDense(50, 60)
	b := NewDense(60, 40)
	fillRand(a, r)
	fillRand(b, r)
	dst := NewDense(50, 40)
	// Pre-soil the destination: MulInto must zero it, not accumulate.
	for i := range dst.Data() {
		dst.Data()[i] = math.NaN()
	}
	got := a.MulInto(dst, b, 0)
	if got != dst {
		t.Fatal("MulInto did not return dst")
	}
	bitsEqual(t, dst, MulRef(a, b), "into")
	// Second use of the same destination must match too.
	fillRand(a, r)
	bitsEqual(t, a.MulInto(dst, b, 1), MulRef(a, b), "into/reuse")
}

func TestMulIntoPanics(t *testing.T) {
	a := NewDense(4, 4)
	b := NewDense(4, 4)
	mustPanic(t, "shape", func() { a.MulInto(NewDense(3, 4), b, 0) })
	mustPanic(t, "alias-left", func() { a.MulInto(a, b, 0) })
	mustPanic(t, "alias-right", func() { a.MulInto(b, b, 0) })
}

func TestBatchMulMatchesIndividual(t *testing.T) {
	r := &gemmRand{s: 11}
	var tasks []MulTask
	var want []*Dense
	for _, d := range []int{1, 6, 12, 20, 33, 64} {
		a := NewDense(d, d)
		b := NewDense(d, d)
		fillRand(a, r)
		fillRand(b, r)
		tasks = append(tasks, MulTask{A: a, B: b})
		want = append(want, MulRef(a, b))
	}
	// One task with a pre-soiled caller-owned destination.
	dst := NewDense(20, 20)
	for i := range dst.Data() {
		dst.Data()[i] = 1e300
	}
	tasks = append(tasks, MulTask{A: tasks[3].A, B: tasks[3].B, Dst: dst})
	want = append(want, want[3])

	for _, workers := range []int{0, 1, 2, 5} {
		run := make([]MulTask, len(tasks))
		copy(run, tasks)
		for i := range run {
			if run[i].Dst == dst {
				continue
			}
			run[i].Dst = nil // force fresh allocation per run
		}
		BatchMul(run, workers)
		for i := range run {
			bitsEqual(t, run[i].Dst, want[i], "batch")
		}
	}
}

func TestBatchMulPanics(t *testing.T) {
	mustPanic(t, "nil", func() { BatchMul([]MulTask{{A: nil, B: NewDense(2, 2)}}, 1) })
	mustPanic(t, "dims", func() { BatchMul([]MulTask{{A: NewDense(2, 3), B: NewDense(2, 2)}}, 1) })
	mustPanic(t, "dst", func() {
		BatchMul([]MulTask{{A: NewDense(2, 2), B: NewDense(2, 2), Dst: NewDense(3, 2)}}, 1)
	})
}

// TestConcurrentMulPooledWorkspaces hammers the pooled-pack path from
// many goroutines at once — the -race pass for workspace recycling and
// the shared execution region.
func TestConcurrentMulPooledWorkspaces(t *testing.T) {
	r := &gemmRand{s: 1234}
	a := NewDense(96, 96)
	b := NewDense(96, 96)
	fillRand(a, r)
	fillRand(b, r)
	want := MulRef(a, b)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 20; it++ {
				got := a.MulWorkers(b, 4)
				gd, wd := got.Data(), want.Data()
				for i := range gd {
					if math.Float64bits(gd[i]) != math.Float64bits(wd[i]) {
						t.Errorf("concurrent Mul diverged at %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestNewDenseOverflowGuards(t *testing.T) {
	mustPanic(t, "negative rows", func() { NewDense(-1, 3) })
	mustPanic(t, "negative cols", func() { NewDense(3, -1) })
	mustPanic(t, "overflow", func() { NewDense(math.MaxInt/2, 3) })
	mustPanic(t, "data overflow", func() { NewDenseData(math.MaxInt/2, 4, nil) })
	// Degenerate-but-valid shapes must still work.
	if m := NewDense(0, 5); m.Rows() != 0 || m.Cols() != 5 {
		t.Fatal("NewDense(0,5) mangled shape")
	}
}

func mustPanic(t *testing.T, label string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", label)
		}
	}()
	f()
}
