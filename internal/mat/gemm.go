// This file implements the matrix-multiply engine behind Dense.Mul: a
// cache-blocked, register-tiled GEMM with packed B panels, pooled
// workspaces, and a machine-wide execution region shared by every
// concurrent multiply in the process (DESIGN.md §9).
//
// The engine keeps the package's bit-determinism contract: every output
// element is accumulated by exactly one goroutine, in strictly ascending
// k order, with the same per-(i,k) zero skip and the same scalar
// expression c += v·b as the reference kernel (MulRef). The Go compiler
// does not contract v*b + c into a fused multiply-add on amd64, so the
// tiled product is bit-identical to the reference at every worker bound.

package mat

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Tiling geometry (DESIGN.md §9). The micro-kernel computes an MR×NR
// block of C with MR·NR scalar accumulators held in registers — 2×4
// keeps the working set (8 accumulators + 4 packed B values + an A
// value) inside the 16 XMM registers; 4×4 measurably spills. B is
// repacked into NR-wide column strips so the inner loop streams both
// operands contiguously; KC bounds the k-panel so one strip (KC×NR×8
// bytes = 8 KiB) stays L1-resident while a row block sweeps it; MC
// bounds the row block so the A panel it re-reads per strip (MC×KC×8
// bytes = 128 KiB) stays L2-resident.
const (
	gemmMR = 2   // micro-tile rows
	gemmNR = 4   // micro-tile cols == packed strip width
	gemmKC = 256 // k-panel length per blocking step
	gemmMC = 64  // row-block height per blocking step
)

// gemmParallelThreshold is the flop count above which a multiply fans
// out across goroutines.
const gemmParallelThreshold = 1 << 20

// gemmTileThreshold is the flop count above which the packed tiled
// kernel beats the streaming reference kernel: packing B costs O(k·n)
// extra writes, which the tiny products of small-d fleet tasks never
// amortize.
const gemmTileThreshold = 1 << 15

// gemmSlots is the machine-wide GEMM execution region: one slot per
// CPU, shared by every concurrent multiply in the process. Helper
// goroutines are spawned only while a slot is free — a multiply always
// makes progress on its caller's goroutine, so many concurrent small
// jobs cannot oversubscribe the machine the way per-job worker pools
// would, and slot exhaustion degrades to serial execution, never to
// blocking.
var gemmSlots = make(chan struct{}, runtime.NumCPU())

// gemmSlotSpawns / gemmSlotDenials count helper-goroutine spawn
// attempts against the slot region: a spawn means a free slot was
// claimed, a denial means the region was saturated and the caller
// stayed serial. The ratio is the one number that says whether the
// fleet is GEMM-bound (denials climb) or scheduler-bound (slots sit
// idle) — exported to the daemon's /metrics via GEMMSlotStats.
var gemmSlotSpawns, gemmSlotDenials atomic.Int64

// GEMMSlotStats reports the cumulative helper-goroutine spawns and
// slot-saturation denials of the process-wide GEMM execution region.
func GEMMSlotStats() (spawns, denials int64) {
	return gemmSlotSpawns.Load(), gemmSlotDenials.Load()
}

// packPool recycles packed-B workspaces across multiplies so the hot
// G·W of the Gram loss allocates no pack buffer at steady state. packB
// overwrites every slot (including edge padding) before use, so stale
// contents are never observable.
var packPool = sync.Pool{New: func() any { return new([]float64) }}

func getPack(n int) *[]float64 {
	p := packPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

func putPack(p *[]float64) { packPool.Put(p) }

// Mul returns m·o. Large products run the tiled kernel and fan out
// across row stripes; see MulWorkers for the determinism contract.
func (m *Dense) Mul(o *Dense) *Dense { return m.MulWorkers(o, 0) }

// MulWorkers is Mul with a bounded goroutine fan-out: maxWorkers <= 0
// selects runtime.GOMAXPROCS, 1 forces the serial path, n > 1 caps the
// stripe count at n. Stripes partition output rows, and every output
// element is accumulated by exactly one worker in the serial loop
// order, so the product is bit-identical at every worker bound — and
// bit-identical to the streaming reference kernel MulRef.
func (m *Dense) MulWorkers(o *Dense, maxWorkers int) *Dense {
	if m.cols != o.rows {
		panic(fmt.Sprintf("mat: cannot multiply %dx%d by %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	r := NewDense(m.rows, o.cols)
	gemmInto(r, m, o, maxWorkers)
	return r
}

// MulInto computes m·o into dst, which must be m.Rows()×o.Cols() and
// must not share backing storage with m or o. dst is zeroed first and
// returned. Reusing one destination across calls is what makes the
// per-iteration G·W of the Gram loss allocation-free at steady state.
func (m *Dense) MulInto(dst, o *Dense, maxWorkers int) *Dense {
	if m.cols != o.rows {
		panic(fmt.Sprintf("mat: cannot multiply %dx%d by %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	if dst.rows != m.rows || dst.cols != o.cols {
		panic(fmt.Sprintf("mat: MulInto dst is %dx%d, need %dx%d", dst.rows, dst.cols, m.rows, o.cols))
	}
	if len(dst.data) > 0 {
		if len(m.data) > 0 && &dst.data[0] == &m.data[0] {
			panic("mat: MulInto dst aliases the left operand")
		}
		if len(o.data) > 0 && &dst.data[0] == &o.data[0] {
			panic("mat: MulInto dst aliases the right operand")
		}
	}
	dst.Zero()
	gemmInto(dst, m, o, maxWorkers)
	return dst
}

// MulRef is the streaming i-k-j reference kernel the tiled engine is
// pinned against: serial, unblocked, allocating its result. Property
// tests and the gemm-sweep experiment use it to certify that tiling,
// packing, and worker fan-out never change a single bit.
func MulRef(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: cannot multiply %dx%d by %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	r := NewDense(a.rows, b.cols)
	refStripe(r, a, b, 0, a.rows)
	return r
}

// MulTask is one product in a BatchMul batch.
type MulTask struct {
	A, B *Dense
	// Dst, when non-nil, receives the product and must be
	// A.Rows()×B.Cols(); when nil, BatchMul allocates it. Either way
	// the destination is stored back into the task.
	Dst *Dense
}

// BatchMul computes every task's product inside one shared parallel
// region instead of giving each product its own undersized fan-out:
// whole tasks are the unit of work, pulled off a shared counter by up
// to maxWorkers goroutines (<= 0 selects runtime.GOMAXPROCS), each
// task computed by the serial kernel. Per-task results are therefore
// bit-identical to task.A.Mul(task.B) regardless of batch composition,
// worker count, or completion order. This is the kernel shape that
// makes a manifest of many small-d structure learns saturate cores:
// the d³ work of the whole fleet becomes one dense work queue.
func BatchMul(tasks []MulTask, maxWorkers int) {
	for t := range tasks {
		a, b := tasks[t].A, tasks[t].B
		if a == nil || b == nil {
			panic("mat: BatchMul task with nil operand")
		}
		if a.cols != b.rows {
			panic(fmt.Sprintf("mat: cannot multiply %dx%d by %dx%d", a.rows, a.cols, b.rows, b.cols))
		}
		if d := tasks[t].Dst; d == nil {
			tasks[t].Dst = NewDense(a.rows, b.cols)
		} else {
			if d.rows != a.rows || d.cols != b.cols {
				panic(fmt.Sprintf("mat: BatchMul dst is %dx%d, need %dx%d", d.rows, d.cols, a.rows, b.cols))
			}
			d.Zero()
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if maxWorkers > 0 && workers > maxWorkers {
		workers = maxWorkers
	}
	runUnits(len(tasks), workers, func(t int) {
		gemmInto(tasks[t].Dst, tasks[t].A, tasks[t].B, 1)
	})
}

// gemmInto accumulates a·b into dst, which the caller guarantees is
// zeroed and correctly shaped. It picks the kernel (streaming vs
// tiled) and the fan-out; both paths produce identical bits.
func gemmInto(dst, a, b *Dense, maxWorkers int) {
	rows, k, n := a.rows, a.cols, b.cols
	if rows == 0 || n == 0 || k == 0 {
		return
	}
	flops := float64(rows) * float64(k) * float64(n)
	workers := 1
	if flops > gemmParallelThreshold {
		workers = runtime.GOMAXPROCS(0)
		if maxWorkers > 0 && workers > maxWorkers {
			workers = maxWorkers
		}
		if workers > rows {
			workers = rows
		}
	}
	if flops < gemmTileThreshold {
		if workers <= 1 {
			refStripe(dst, a, b, 0, rows)
			return
		}
		runRowStripes(rows, workers, func(lo, hi int) { refStripe(dst, a, b, lo, hi) })
		return
	}
	strips := (n + gemmNR - 1) / gemmNR
	pp := getPack(strips * k * gemmNR)
	pack := *pp
	packB(b, pack)
	if workers <= 1 {
		// Direct call on the serial path: routing through runRowStripes
		// would heap-allocate the stripe closure (it escapes into the
		// helper goroutines), breaking the 0 allocs/op contract of the
		// steady-state loss evaluation.
		tileStripe(dst, a, pack, k, 0, rows)
	} else {
		runRowStripes(rows, workers, func(lo, hi int) { tileStripe(dst, a, pack, k, lo, hi) })
	}
	putPack(pp)
}

// runRowStripes partitions [0, rows) into worker-count stripes and
// runs body over them inside the shared execution region. Stripes own
// disjoint output rows and each stripe is computed serially, so
// scheduling order cannot affect bits.
func runRowStripes(rows, workers int, body func(lo, hi int)) {
	if workers <= 1 || rows <= 1 {
		body(0, rows)
		return
	}
	chunk := (rows + workers - 1) / workers
	nblk := (rows + chunk - 1) / chunk
	runUnits(nblk, workers, func(u int) {
		lo := u * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		body(lo, hi)
	})
}

// runUnits executes body(0..n-1) across up to `workers` goroutines.
// The caller's goroutine always participates; helpers are added only
// while the machine-wide region has free slots, acquired without
// blocking — so nested or concurrent multiplies degrade to serial
// execution instead of piling goroutines onto saturated cores. Units
// are claimed from an atomic counter; callers must make units
// independent (here: row-disjoint stripes or whole batch tasks).
func runUnits(n, workers int, body func(u int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for u := 0; u < n; u++ {
			body(u)
		}
		return
	}
	var next int64
	run := func() {
		for {
			u := atomic.AddInt64(&next, 1) - 1
			if u >= int64(n) {
				return
			}
			body(int(u))
		}
	}
	var wg sync.WaitGroup
spawn:
	for h := 0; h < workers-1; h++ {
		select {
		case gemmSlots <- struct{}{}:
			gemmSlotSpawns.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-gemmSlots }()
				run()
			}()
		default:
			gemmSlotDenials.Add(1)
			break spawn
		}
	}
	run()
	wg.Wait()
}

// refStripe is the streaming i-k-j kernel over output rows [lo, hi):
// the inner loop runs over contiguous rows of b, terms accumulate in
// ascending k, and a zero left-operand skips the whole row of b.
func refStripe(r, m, o *Dense, lo, hi int) {
	n := o.cols
	for i := lo; i < hi; i++ {
		mrow := m.Row(i)
		rrow := r.Row(i)
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			orow := o.data[k*n : (k+1)*n]
			for j, ov := range orow {
				rrow[j] += mv * ov
			}
		}
	}
}

// packB copies b (k×n) into strip-major panels: strip s holds columns
// [s·NR, s·NR+NR), k-major within the strip, zero-padded past the
// right edge — pack[(s·k+kk)·NR+j] == b[kk, s·NR+j]. Packing copies
// values exactly, so it cannot perturb bits.
func packB(b *Dense, pack []float64) {
	k, n := b.rows, b.cols
	strips := (n + gemmNR - 1) / gemmNR
	for s := 0; s < strips; s++ {
		j0 := s * gemmNR
		w := n - j0
		if w > gemmNR {
			w = gemmNR
		}
		dst := pack[s*k*gemmNR : (s+1)*k*gemmNR]
		for kk := 0; kk < k; kk++ {
			src := b.data[kk*n+j0 : kk*n+j0+w]
			d := dst[kk*gemmNR : kk*gemmNR+gemmNR]
			for j := 0; j < w; j++ {
				d[j] = src[j]
			}
			for j := w; j < gemmNR; j++ {
				d[j] = 0
			}
		}
	}
}

// tileStripe runs the blocked kernel over output rows [lo, hi). Loop
// nest: k-blocks outermost (partial sums parked in C between blocks —
// exact, since storing a float64 loses nothing), then MC row blocks
// (bounding the A panel each strip pass re-reads), then B strips (one
// KC×NR panel stays L1-resident while a row block sweeps it), then
// 2-row blocks into the register micro-kernel. Every element still
// sees its k terms in strictly ascending order.
func tileStripe(dst, a *Dense, pack []float64, k, lo, hi int) {
	n := dst.cols
	strips := (n + gemmNR - 1) / gemmNR
	for k0 := 0; k0 < k; k0 += gemmKC {
		k1 := k0 + gemmKC
		if k1 > k {
			k1 = k
		}
		for i0 := lo; i0 < hi; i0 += gemmMC {
			i1 := i0 + gemmMC
			if i1 > hi {
				i1 = hi
			}
			for s := 0; s < strips; s++ {
				j0 := s * gemmNR
				w := n - j0
				if w > gemmNR {
					w = gemmNR
				}
				panel := pack[(s*k+k0)*gemmNR : (s*k+k1)*gemmNR]
				i := i0
				if w == gemmNR {
					for ; i+gemmMR <= i1; i += gemmMR {
						micro2x4(dst, a, panel, i, j0, k0, k1)
					}
				}
				for ; i < i1; i++ {
					microRow(dst, a, panel, i, j0, w, k0, k1)
				}
			}
		}
	}
}

// micro2x4 accumulates the 2×4 C tile at (i, j0) over k ∈ [k0, k1)
// with 8 scalar accumulators, the k loop unrolled four times. Terms are
// added in ascending k with the per-(row,k) zero skip, each term the
// same c += v·b expression as the reference kernel, so bits match
// exactly. The descending panel loads and the [:kc] reslice of the
// second A row are bounds-check-elimination hints.
func micro2x4(dst, a *Dense, panel []float64, i, j0, k0, k1 int) {
	ka := a.cols
	kc := k1 - k0
	a0 := a.data[i*ka+k0 : i*ka+k1]
	a1 := a.data[(i+1)*ka+k0 : (i+1)*ka+k1][:kc]
	n := dst.cols
	r0 := dst.data[i*n+j0 : i*n+j0+4]
	r1 := dst.data[(i+1)*n+j0 : (i+1)*n+j0+4]
	c00, c01, c02, c03 := r0[0], r0[1], r0[2], r0[3]
	c10, c11, c12, c13 := r1[0], r1[1], r1[2], r1[3]
	p := panel
	kk := 0
	for ; kk+4 <= kc; kk += 4 {
		b3 := p[3]
		b2 := p[2]
		b1 := p[1]
		b0 := p[0]
		if v := a0[kk]; v != 0 {
			c00 += v * b0
			c01 += v * b1
			c02 += v * b2
			c03 += v * b3
		}
		if v := a1[kk]; v != 0 {
			c10 += v * b0
			c11 += v * b1
			c12 += v * b2
			c13 += v * b3
		}
		e3 := p[7]
		e2 := p[6]
		e1 := p[5]
		e0 := p[4]
		if v := a0[kk+1]; v != 0 {
			c00 += v * e0
			c01 += v * e1
			c02 += v * e2
			c03 += v * e3
		}
		if v := a1[kk+1]; v != 0 {
			c10 += v * e0
			c11 += v * e1
			c12 += v * e2
			c13 += v * e3
		}
		f3 := p[11]
		f2 := p[10]
		f1 := p[9]
		f0 := p[8]
		if v := a0[kk+2]; v != 0 {
			c00 += v * f0
			c01 += v * f1
			c02 += v * f2
			c03 += v * f3
		}
		if v := a1[kk+2]; v != 0 {
			c10 += v * f0
			c11 += v * f1
			c12 += v * f2
			c13 += v * f3
		}
		g3 := p[15]
		g2 := p[14]
		g1 := p[13]
		g0 := p[12]
		if v := a0[kk+3]; v != 0 {
			c00 += v * g0
			c01 += v * g1
			c02 += v * g2
			c03 += v * g3
		}
		if v := a1[kk+3]; v != 0 {
			c10 += v * g0
			c11 += v * g1
			c12 += v * g2
			c13 += v * g3
		}
		p = p[16:]
	}
	for ; kk < kc; kk++ {
		b3 := p[3]
		b2 := p[2]
		b1 := p[1]
		b0 := p[0]
		if v := a0[kk]; v != 0 {
			c00 += v * b0
			c01 += v * b1
			c02 += v * b2
			c03 += v * b3
		}
		if v := a1[kk]; v != 0 {
			c10 += v * b0
			c11 += v * b1
			c12 += v * b2
			c13 += v * b3
		}
		p = p[4:]
	}
	r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
	r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
}

// microRow handles the row and column edges: one output row, strip
// width w <= NR, same ascending-k accumulation and zero skip.
func microRow(dst, a *Dense, panel []float64, i, j0, w, k0, k1 int) {
	ka := a.cols
	arow := a.data[i*ka+k0 : i*ka+k1]
	n := dst.cols
	crow := dst.data[i*n+j0 : i*n+j0+w]
	if w == gemmNR {
		c0, c1, c2, c3 := crow[0], crow[1], crow[2], crow[3]
		p := panel
		for _, v := range arow {
			b3 := p[3]
			b2 := p[2]
			b1 := p[1]
			b0 := p[0]
			p = p[4:]
			if v == 0 {
				continue
			}
			c0 += v * b0
			c1 += v * b1
			c2 += v * b2
			c3 += v * b3
		}
		crow[0], crow[1], crow[2], crow[3] = c0, c1, c2, c3
		return
	}
	for kk, v := range arow {
		if v == 0 {
			continue
		}
		b := panel[kk*gemmNR : kk*gemmNR+w]
		for j, bv := range b {
			crow[j] += v * bv
		}
	}
}
