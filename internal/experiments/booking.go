package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/booking"
	"repro/internal/randx"
)

// BookingCase is one Table II reproduction row: an injected incident
// and what the monitor reported for it.
type BookingCase struct {
	Incident string
	Category booking.Category
	Step     int
	Detected bool
	// BestPath is the most significant alert path (root → error).
	BestPath []string
	PValue   float64
}

// BookingCases regenerates Table II: each scripted incident (airline
// maintenance, agent data error, deployment problem, lock-down,
// travel ban, outbreak, intermediary degradation) is injected into a
// fresh window against a calm baseline window, and the §VI-A detector
// must surface a path that the incident's category explains.
func BookingCases(scale Scale, seed int64, w io.Writer) []BookingCase {
	rng := randx.New(seed)
	world := booking.DefaultWorld(rng)
	scripts := booking.TableIIScripts(world)
	n := 4000
	if scale == Full {
		n = 20000
	}
	prev := booking.GenerateWindow(rng, world, nil, n)
	var cases []BookingCase
	for _, inc := range scripts {
		alerts, _, _, _ := booking.MonitorPeriod(context.Background(), rng, world, []*booking.Incident{inc}, prev, n, booking.DefaultLearnOptions(), 1e-3)
		c := BookingCase{Incident: inc.Name, Category: inc.Category, Step: inc.Step}
		for _, a := range alerts {
			if booking.Classify(world, a, []*booking.Incident{inc}) == inc.Category {
				c.Detected = true
				c.BestPath = a.Path.Names
				c.PValue = a.PValue
				break
			}
		}
		cases = append(cases, c)
		if w != nil {
			status := "MISSED"
			if c.Detected {
				status = fmt.Sprintf("detected p=%.2e path=%v", c.PValue, c.BestPath)
			}
			fmt.Fprintf(w, "%-22s (%s, step %d): %s\n", c.Incident, c.Category, c.Step+1, status)
		}
	}
	return cases
}

// BookingPie regenerates the Fig 7 root-cause distribution: a
// multi-period stream where each period activates incidents drawn with
// the paper's category mix, every alert is classified, and the
// resulting shares are reported. The §VI-A numbers are external 42%,
// airline 3%, agent 10%, intermediary 3%, unpredictable 39%, false
// alarms 3%.
func BookingPie(scale Scale, seed int64, w io.Writer) ([]booking.PieSlice, float64) {
	rng := randx.New(seed)
	world := booking.DefaultWorld(rng)
	periods := 12
	n := 3000
	if scale == Full {
		periods, n = 60, 10000
	}
	// Category mix matching the Fig 7 incident population.
	mix := []booking.Category{
		booking.CatExternal, booking.CatExternal, booking.CatExternal, booking.CatExternal,
		booking.CatUnpredictable, booking.CatUnpredictable, booking.CatUnpredictable, booking.CatUnpredictable,
		booking.CatAgent,
		booking.CatAirline,
		booking.CatIntermediary,
	}
	prev := booking.GenerateWindow(rng, world, nil, n)
	var cats []booking.Category
	for p := 0; p < periods; p++ {
		var active []*booking.Incident
		// One or two incidents per anomalous period.
		k := 1 + rng.Intn(2)
		for i := 0; i < k; i++ {
			active = append(active, booking.RandomIncident(rng, world, mix[rng.Intn(len(mix))]))
		}
		lo := booking.DefaultLearnOptions()
		lo.Seed = int64(p + 1)
		alerts, _, cur, _ := booking.MonitorPeriod(context.Background(), rng, world, active, prev, n, lo, 1e-3)
		for _, a := range alerts {
			cats = append(cats, booking.Classify(world, a, active))
		}
		prev = cur // windows slide as in production
	}
	slices := booking.Pie(cats)
	tpr := booking.TruePositiveRate(slices)
	if w != nil {
		fmt.Fprintf(w, "alerts=%d  true-positive share=%.1f%% (paper: 97%%)\n", len(cats), 100*tpr)
		for _, s := range slices {
			fmt.Fprintf(w, "  %-24s %3d  %5.1f%%\n", s.Category, s.Count, 100*s.Share)
		}
	}
	return slices, tpr
}
