package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/randx"
)

// Fig5Dataset mimics one of the paper's three large real-world
// datasets (Table "Properties of real-world large-scale datasets"):
// MovieLens (27,278 nodes / 138,493 samples), App-Security (91,850 /
// 1,000,000) and App-Recom (159,008 / 584,871). The proprietary pair
// is substituted by sparse synthetic LSEMs with matching shape
// (DESIGN.md §2); Scale CI divides the node counts so the suite stays
// laptop-sized while exercising the identical LEAST-SP code path.
type Fig5Dataset struct {
	Name    string
	Nodes   int
	Samples int
	// MeanDegree controls ground-truth sparsity.
	MeanDegree int
}

// Fig5Datasets returns the three dataset shapes at the given scale.
func Fig5Datasets(scale Scale) []Fig5Dataset {
	div := 40
	sdiv := 200
	if scale == Full {
		div, sdiv = 1, 1
	}
	return []Fig5Dataset{
		{Name: "Movielens", Nodes: 27278 / div, Samples: 138493 / sdiv, MeanDegree: 4},
		{Name: "App-Security", Nodes: 91850 / div, Samples: 1000000 / sdiv, MeanDegree: 3},
		{Name: "App-Recom", Nodes: 159008 / div, Samples: 584871 / sdiv, MeanDegree: 3},
	}
}

// Fig5Point is one sample of the constraint-vs-time curves of Fig 5.
type Fig5Point struct {
	Elapsed time.Duration
	Delta   float64
	H       float64
}

// Fig5Run is the result of one scalability run.
type Fig5Run struct {
	Dataset            Fig5Dataset
	Trace              []Fig5Point
	Total              time.Duration
	FinalDelta, FinalH float64
}

// Fig5 regenerates the scalability experiment: LEAST-SP with the
// paper's large-run settings (B = 1000, θ = 10⁻³, ε = 10⁻⁸) on each
// dataset, recording how δ(W) and (Hutchinson-estimated) h(W) fall
// with wall-clock time. The reproduction target is the *shape*: both
// curves decrease together and reach tiny values, h tracking δ.
func Fig5(scale Scale, seed int64, w io.Writer) []Fig5Run {
	var runs []Fig5Run
	for _, ds := range Fig5Datasets(scale) {
		rng := randx.New(seed)
		dag := gen.RandomDAG(rng, gen.SF, ds.Nodes, ds.MeanDegree, 0.5, 2)
		x := gen.SampleLSEM(rng, dag, ds.Samples, randx.Gaussian)
		o := core.DefaultOptions()
		o.Lambda = 0.05
		o.BatchSize = 1000
		o.Threshold = 1e-3
		o.Epsilon = 1e-8
		o.InitDensity = 4.0 / float64(ds.Nodes) // ~4 candidates/node, ζ-style
		o.MaxOuter = 10
		o.MaxInner = 100
		o.TrackEvery = 40
		o.Seed = seed
		// Fig 5 measures the constraint trajectory, not recovery, so
		// the literal fixed-support LEAST-SP of Fig 3 is used (the
		// active-set refresh would only add off-trace work).
		o.NoSupportRefresh = true
		t0 := time.Now()
		res := core.Sparse(x, o)
		run := Fig5Run{Dataset: ds, Total: time.Since(t0), FinalDelta: res.Delta}
		for _, tp := range res.Trace {
			run.Trace = append(run.Trace, Fig5Point{Elapsed: tp.Elapsed, Delta: tp.Delta, H: tp.H})
		}
		if len(run.Trace) > 0 {
			run.FinalH = run.Trace[len(run.Trace)-1].H
		}
		runs = append(runs, run)
		if w != nil {
			fmt.Fprintf(w, "%s: d=%d n=%d  total=%v  final δ=%.3g ĥ=%.3g  trace:\n",
				ds.Name, ds.Nodes, ds.Samples, run.Total.Round(time.Millisecond), run.FinalDelta, run.FinalH)
			for _, p := range run.Trace {
				fmt.Fprintf(w, "  t=%-12v δ=%.4g ĥ=%.4g\n", p.Elapsed.Round(time.Millisecond), p.Delta, p.H)
			}
		}
	}
	return runs
}
