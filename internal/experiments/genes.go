package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/gene"
	"repro/internal/metrics"
	"repro/internal/notears"
	"repro/internal/randx"
)

// GeneRow is one algorithm's metric column of Table III (the paper's
// big gene table; Table I is its compact form).
type GeneRow struct {
	Dataset       string
	Algorithm     string
	Nodes         int
	TrueEdges     int
	PredEdges     int
	TP            int
	FDR, TPR, FPR float64
	SHD           int
	F1, AUC       float64
	Time          time.Duration
}

// Genes regenerates the §VI-B gene-expression comparison (Tables
// I/III): Sachs at full size, E. coli- and Yeast-scale networks (CI
// scale divides their node counts by 10; NOTEARS is skipped above
// notearsMaxD because its O(d³) constraint would dominate the suite).
func Genes(scale Scale, seed int64, w io.Writer) []GeneRow {
	rng := randx.New(seed)
	factor := 10
	if scale == Full {
		factor = 1
	}
	datasets := []*gene.Dataset{
		gene.Sachs(rng.Split(), 1000),
		gene.EColi(rng.Split(), factor),
		gene.Yeast(rng.Split(), factor),
	}
	notearsMaxD := 500
	if scale == Full {
		notearsMaxD = 4500
	}
	var rows []GeneRow
	for _, ds := range datasets {
		d := ds.Truth.N()
		// LEAST.
		o := core.DefaultOptions()
		o.Lambda = 0.1
		o.Epsilon = 1e-3
		o.CheckH = d <= 500
		o.MaxOuter = 12
		o.MaxInner = 200
		o.Seed = seed
		if d > 200 {
			o.BatchSize = 512
		}
		t0 := time.Now()
		res := core.Dense(ds.Samples, o)
		lt := time.Since(t0)
		acc, _ := metrics.BestOverThresholds(ds.Truth, res.W, tauGrid)
		rows = append(rows, geneRow(ds, "LEAST", acc, lt))
		// NOTEARS baseline where feasible.
		if d <= notearsMaxD {
			no := notearsCfg(1e-3, seed, 12, 200)
			no.Lambda = 0.1
			if d > 200 {
				no.BatchSize = 512
			}
			t0 = time.Now()
			nres := notears.Run(ds.Samples, no)
			nt := time.Since(t0)
			nacc, _ := metrics.BestOverThresholds(ds.Truth, nres.W, tauGrid)
			rows = append(rows, geneRow(ds, "NOTEARS", nacc, nt))
		}
	}
	if w != nil {
		fmt.Fprintf(w, "%-8s %-8s %6s %6s %6s %5s %6s %6s %9s %6s %6s %6s %12s\n",
			"dataset", "algo", "nodes", "true", "pred", "TP", "FDR", "TPR", "FPR", "SHD", "F1", "AUC", "time")
		for _, r := range rows {
			fmt.Fprintf(w, "%-8s %-8s %6d %6d %6d %5d %6.3f %6.3f %9.2e %6d %6.3f %6.3f %12v\n",
				r.Dataset, r.Algorithm, r.Nodes, r.TrueEdges, r.PredEdges, r.TP,
				r.FDR, r.TPR, r.FPR, r.SHD, r.F1, r.AUC, r.Time.Round(time.Millisecond))
		}
	}
	return rows
}

func geneRow(ds *gene.Dataset, algo string, a metrics.Accuracy, t time.Duration) GeneRow {
	return GeneRow{
		Dataset: ds.Name, Algorithm: algo,
		Nodes: ds.Truth.N(), TrueEdges: ds.Truth.NumEdges(),
		PredEdges: a.PredEdges, TP: a.TP,
		FDR: a.FDR, TPR: a.TPR, FPR: a.FPR,
		SHD: a.SHD, F1: a.F1, AUC: a.AUC, Time: t,
	}
}
