package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/mat"
	"repro/internal/randx"
)

// GemmSweepRow is one timing from the dense-GEMM sweep: either a
// square tiled-vs-reference product or a batched small-d fleet.
type GemmSweepRow struct {
	// Kind is "square" for one d×d·d×d product, "fleet" for a batch of
	// small products fused through mat.BatchMul.
	Kind string
	// D is the matrix dimension (per task for fleet rows).
	D int
	// Tasks is the fleet size (1 for square rows).
	Tasks int
	// Ref is the pre-tiling reference kernel's time, Tiled the
	// register-blocked kernel's (serial); Par is the tiled kernel at
	// the sweep's worker bound (== Tiled on a single-core host).
	Ref, Tiled, Par time.Duration
	// Speedup is Ref / Tiled — the pure kernel win, independent of
	// parallelism.
	Speedup float64
}

// gemmDense fills a d×d matrix with unit normals: a realistic operand
// (no denormals, whose microcode assists would swamp the timing).
func gemmDense(rng *randx.RNG, d int) *mat.Dense {
	m := mat.NewDense(d, d)
	data := m.Data()
	for i := range data {
		data[i] = rng.Normal(0, 1)
	}
	return m
}

// bestOf3 reports the fastest of three runs of f, the same reduction
// ParSweep uses: min absorbs one-off scheduling noise better than a
// mean on a shared box.
func bestOf3(f func()) time.Duration {
	best := time.Duration(0)
	for rep := 0; rep < 3; rep++ {
		t0 := time.Now()
		f()
		if el := time.Since(t0); best == 0 || el < best {
			best = el
		}
	}
	return best
}

// GemmSweep times the dense-GEMM layer the learners sit on (DESIGN.md
// §9): the register-blocked tiled kernel against the pre-tiling
// reference at square sizes, and a fleet of small-d products run
// through mat.BatchMul — one parallel region over whole tasks, the
// execution shape internal/serve's gang lanes feed — against solving
// the same tasks one after another. workers bounds the parallel rows
// (0 or nil grid entries never occur here; the first entry is used,
// defaulting to GOMAXPROCS). All kernels are bit-identical by
// contract, so the sweep checks nothing and only times.
func GemmSweep(scale Scale, seed int64, workers []int, out io.Writer) []GemmSweepRow {
	dims := []int{64, 128, 256}
	fleetD, fleetN := 32, 64
	if scale == Full {
		dims = []int{128, 512, 1024}
		fleetD, fleetN = 64, 256
	}
	wk := runtime.GOMAXPROCS(0)
	if len(workers) > 0 && workers[0] > 0 {
		wk = workers[0]
	}
	rng := randx.New(seed)
	if out != nil {
		fmt.Fprintf(out, "instance: dims=%v fleet=%d×d=%d workers=%d cores=%d\n",
			dims, fleetN, fleetD, wk, runtime.GOMAXPROCS(0))
	}
	var rows []GemmSweepRow
	for _, d := range dims {
		a, b := gemmDense(rng, d), gemmDense(rng, d)
		row := GemmSweepRow{Kind: "square", D: d, Tasks: 1}
		row.Ref = bestOf3(func() { mat.MulRef(a, b) })
		row.Tiled = bestOf3(func() { a.MulWorkers(b, 1) })
		row.Par = bestOf3(func() { a.MulWorkers(b, wk) })
		if row.Tiled > 0 {
			row.Speedup = float64(row.Ref) / float64(row.Tiled)
		}
		rows = append(rows, row)
		if out != nil {
			fmt.Fprintf(out, "square d=%4d  ref=%-12v tiled=%-12v par=%-12v speedup=%.2f\n",
				d, row.Ref, row.Tiled, row.Par, row.Speedup)
		}
	}
	// The fleet shape: many small products, where per-task goroutine
	// pools are undersized and the win comes from one parallel region
	// spanning whole tasks.
	tasks := make([]mat.MulTask, fleetN)
	for i := range tasks {
		tasks[i] = mat.MulTask{A: gemmDense(rng, fleetD), B: gemmDense(rng, fleetD)}
	}
	frow := GemmSweepRow{Kind: "fleet", D: fleetD, Tasks: fleetN}
	frow.Ref = bestOf3(func() {
		for i := range tasks {
			mat.MulRef(tasks[i].A, tasks[i].B)
		}
	})
	frow.Tiled = bestOf3(func() {
		for i := range tasks {
			tasks[i].A.MulWorkers(tasks[i].B, 1)
		}
	})
	frow.Par = bestOf3(func() {
		for i := range tasks {
			tasks[i].Dst = nil
		}
		mat.BatchMul(tasks, wk)
	})
	if frow.Tiled > 0 {
		frow.Speedup = float64(frow.Ref) / float64(frow.Tiled)
	}
	rows = append(rows, frow)
	if out != nil {
		perSec := func(el time.Duration) float64 {
			if el <= 0 {
				return 0
			}
			return float64(fleetN) / el.Seconds()
		}
		fmt.Fprintf(out, "fleet  %d×d=%d  seq-ref=%-12v seq-tiled=%-12v batchmul=%-12v tasks/s=%.0f\n",
			fleetN, fleetD, frow.Ref, frow.Tiled, frow.Par, perSec(frow.Par))
	}
	return rows
}
