// Package experiments regenerates every table and figure of the
// paper's evaluation (§V) and applications (§VI). Each experiment is a
// pure function from a Scale/seed to printable rows, so the
// cmd/leastbench CLI, the examples, and the root bench_test.go all
// drive the same code. The experiment ids (Fig4…, TableI…, Fig7…)
// match the per-experiment index in DESIGN.md §3 and the measured
// numbers recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/notears"
	"repro/internal/randx"
)

// Scale selects how closely an experiment matches the paper's full
// problem sizes; CI keeps everything in minutes on a laptop.
type Scale int

// Experiment scales.
const (
	// CI runs reduced dimensions/iterations for fast regression runs.
	CI Scale = iota
	// Full runs the paper's dimensions (hours of CPU time).
	Full
)

// ParseScale maps a CLI string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "", "ci":
		return CI, nil
	case "full":
		return Full, nil
	default:
		return CI, fmt.Errorf("unknown scale %q (want ci or full)", s)
	}
}

// epsGrid is the paper's tolerance grid (§V-A): both algorithms are
// run at each ε and the best-F1 configuration is reported.
var epsGrid = []float64{1e-1, 1e-2, 1e-3, 1e-4}

// tauGrid is the paper's edge-threshold grid.
var tauGrid = []float64{0.1, 0.2, 0.3, 0.4, 0.5}

// Fig4Row is one cell of the Fig 4 accuracy panels: a (graph model,
// noise, d) configuration with both algorithms' best metrics.
type Fig4Row struct {
	Model      gen.Model
	Noise      randx.Noise
	D          int
	LeastF1    float64
	LeastSHD   int
	NotearsF1  float64
	NotearsSHD int
	// Corr is the Pearson correlation between δ(W) and h(W) traced
	// during the LEAST run (Fig 4 row 3).
	Corr float64
	// LeastTime / NotearsTime are per-run wall-clock times at the
	// tightest converged ε (Fig 4 row 4 uses dedicated sizes; these
	// give the small-d picture).
	LeastTime, NotearsTime time.Duration
}

// leastCfg builds the Fig-4 LEAST configuration for tolerance eps.
func leastCfg(eps float64, seed int64, maxOuter, maxInner int) core.Options {
	o := core.DefaultOptions()
	o.Lambda = 0.2
	o.Epsilon = eps
	o.CheckH = true
	o.MaxOuter = maxOuter
	o.MaxInner = maxInner
	o.Seed = seed
	return o
}

func notearsCfg(eps float64, seed int64, maxOuter, maxInner int) notears.Options {
	o := notears.DefaultOptions()
	o.Lambda = 0.2
	o.Epsilon = eps
	o.MaxOuter = maxOuter
	o.MaxInner = maxInner
	o.Seed = seed
	return o
}

// dims4 returns the Fig 4 accuracy dimensions for a scale.
func dims4(scale Scale) []int {
	if scale == Full {
		return []int{10, 20, 50, 100}
	}
	return []int{10, 20, 50}
}

// Fig4Accuracy regenerates the F1/SHD/correlation panels of Fig 4:
// ER-2 and SF-4 graphs, three noise families, n = 10·d samples, grid
// search over ε and τ, best case reported — the paper's exact
// protocol.
func Fig4Accuracy(scale Scale, seed int64, w io.Writer) []Fig4Row {
	var rows []Fig4Row
	maxOuter, maxInner := 16, 300
	if scale == CI {
		maxInner = 200
	}
	configs := []struct {
		model gen.Model
		deg   int
	}{{gen.ER, 2}, {gen.SF, 4}}
	for _, cfg := range configs {
		for _, noise := range randx.AllNoises() {
			for _, d := range dims4(scale) {
				rng := randx.New(seed + int64(d)*7)
				dag := gen.RandomDAG(rng, cfg.model, d, cfg.deg, 0.5, 2)
				x := gen.SampleLSEM(rng, dag, 10*d, noise)
				row := Fig4Row{Model: cfg.model, Noise: noise, D: d}
				bestL := metrics.Accuracy{F1: -1}
				for _, eps := range epsGrid {
					o := leastCfg(eps, seed, maxOuter, maxInner)
					t0 := time.Now()
					res := core.Dense(x, o)
					el := time.Since(t0)
					acc, _ := metrics.BestOverThresholds(dag.G, res.W, tauGrid)
					if acc.F1 > bestL.F1 {
						bestL = acc
						row.LeastTime = el
					}
				}
				// Dedicated correlation run (Fig 4 row 3): trace δ and
				// the exact h together over a long ε = 10⁻⁴ run.
				{
					o := leastCfg(1e-4, seed, maxOuter, maxInner)
					o.TrackEvery = 5
					o.TrackExact = true
					row.Corr = traceCorr(core.Dense(x, o))
				}
				bestN := metrics.Accuracy{F1: -1}
				for _, eps := range epsGrid {
					t0 := time.Now()
					res := notears.Run(x, notearsCfg(eps, seed, maxOuter, maxInner))
					el := time.Since(t0)
					acc, _ := metrics.BestOverThresholds(dag.G, res.W, tauGrid)
					if acc.F1 > bestN.F1 {
						bestN = acc
						row.NotearsTime = el
					}
				}
				row.LeastF1, row.LeastSHD = bestL.F1, bestL.SHD
				row.NotearsF1, row.NotearsSHD = bestN.F1, bestN.SHD
				rows = append(rows, row)
				if w != nil {
					fmt.Fprintf(w, "%s-%d %s d=%-4d  LEAST F1=%.3f SHD=%-4d  NOTEARS F1=%.3f SHD=%-4d  corr(δ,h)=%.3f  time L=%v N=%v\n",
						cfg.model, cfg.deg, noise, d,
						row.LeastF1, row.LeastSHD, row.NotearsF1, row.NotearsSHD,
						row.Corr, row.LeastTime.Round(time.Millisecond), row.NotearsTime.Round(time.Millisecond))
				}
			}
		}
	}
	return rows
}

// traceCorr computes the Pearson correlation between the δ and ĥ
// series of a LEAST run's fine-grained trace.
func traceCorr(res *core.Result) float64 {
	if len(res.Trace) < 3 {
		return 0
	}
	deltas := make([]float64, len(res.Trace))
	hs := make([]float64, len(res.Trace))
	for i, tp := range res.Trace {
		deltas[i] = tp.Delta
		hs[i] = tp.H
	}
	return metrics.Pearson(deltas, hs)
}

// Fig4TimeRow is one point of the Fig 4 runtime panel.
type Fig4TimeRow struct {
	Model          gen.Model
	Noise          randx.Noise
	D              int
	Least, Notears time.Duration
	Speedup        float64
}

// dimsTime returns the Fig 4 row-4 runtime dimensions.
func dimsTime(scale Scale) []int {
	if scale == Full {
		return []int{100, 200, 500}
	}
	return []int{50, 100, 200}
}

// fig4TimeAt measures one (ER-2, d) runtime cell — the unit the test
// suite checks without paying for the whole sweep.
func fig4TimeAt(d int, seed int64) Fig4TimeRow {
	rng := randx.New(seed + int64(d))
	dag := gen.RandomDAG(rng, gen.ER, d, 2, 0.5, 2)
	x := gen.SampleLSEM(rng, dag, 10*d, randx.Gaussian)
	o := leastCfg(1e-4, seed, 10, 150)
	t0 := time.Now()
	core.Dense(x, o)
	lt := time.Since(t0)
	no := notearsCfg(1e-4, seed, 10, 150)
	t0 = time.Now()
	notears.Run(x, no)
	nt := time.Since(t0)
	return Fig4TimeRow{Model: gen.ER, Noise: randx.Gaussian, D: d,
		Least: lt, Notears: nt, Speedup: float64(nt) / float64(lt)}
}

// Fig4Time regenerates the Fig 4 runtime panel: wall-clock to
// convergence at ε = 10⁻⁴ and n = 10·d for growing d. The paper's
// claim is a 5–15× speedup growing with d; the shape (ratio > 1 and
// increasing) is the reproduction target, not the absolute seconds.
func Fig4Time(scale Scale, seed int64, w io.Writer) []Fig4TimeRow {
	var rows []Fig4TimeRow
	maxOuter, maxInner := 10, 150
	for _, cfg := range []struct {
		model gen.Model
		deg   int
	}{{gen.ER, 2}, {gen.SF, 4}} {
		for _, d := range dimsTime(scale) {
			rng := randx.New(seed + int64(d))
			dag := gen.RandomDAG(rng, cfg.model, d, cfg.deg, 0.5, 2)
			x := gen.SampleLSEM(rng, dag, 10*d, randx.Gaussian)
			// Both algorithms run to the same exact-h(W) ≤ ε target —
			// the paper's §V-A fairness termination (the h check
			// itself is charged to LEAST's clock).
			o := leastCfg(1e-4, seed, maxOuter, maxInner)
			t0 := time.Now()
			core.Dense(x, o)
			lt := time.Since(t0)
			no := notearsCfg(1e-4, seed, maxOuter, maxInner)
			t0 = time.Now()
			notears.Run(x, no)
			nt := time.Since(t0)
			row := Fig4TimeRow{Model: cfg.model, Noise: randx.Gaussian, D: d, Least: lt, Notears: nt,
				Speedup: float64(nt) / float64(lt)}
			rows = append(rows, row)
			if w != nil {
				fmt.Fprintf(w, "%s-%d d=%-4d LEAST=%-12v NOTEARS=%-12v speedup=%.1fx\n",
					cfg.model, cfg.deg, d, lt.Round(time.Millisecond), nt.Round(time.Millisecond), row.Speedup)
			}
		}
	}
	return rows
}
