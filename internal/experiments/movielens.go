package experiments

import (
	"fmt"
	"io"

	"repro/internal/bnet"
	"repro/internal/movielens"
)

// MovielensEdges regenerates Table IV: learn the item-to-item network
// from the synthetic rating matrix and report the top-k edges with
// relationship remarks, plus how many of the ten named Table IV pairs
// were recovered.
func MovielensEdges(scale Scale, seed int64, w io.Writer) ([]movielens.RankedEdge, movielens.RecoveryReport) {
	catalogSize, users := 150, 4000
	if scale == Full {
		catalogSize, users = 600, 20000
	}
	c := movielens.DefaultCatalog(catalogSize)
	g := movielens.DefaultGenOptions()
	g.Users = users
	g.Seed = seed
	r := movielens.Generate(c, g)
	lo := movielens.DefaultLearnOptions()
	lo.Seed = seed
	net := movielens.Learn(r, lo)
	top := movielens.TopEdgesAnnotated(net, c, 10)
	rep := movielens.Evaluate(net, c)
	if w != nil {
		fmt.Fprintf(w, "learned %d edges; named Table-IV pairs recovered: %d/10; planted edges: %d/%d\n",
			rep.LearnedEdges, rep.NamedFound, rep.PlantedFound, rep.PlantedTotal)
		fmt.Fprintf(w, "%-52s %-52s %8s %s\n", "link from", "link to", "weight", "remark")
		for _, e := range top {
			rel := string(e.Relation)
			if rel == "" {
				rel = "-"
			}
			fmt.Fprintf(w, "%-52s %-52s %8.3f %s\n", e.From, e.To, e.Weight, rel)
		}
	}
	return top, rep
}

// MovielensGraph regenerates the Fig 8 neighbourhood and the §VI-C
// blockbuster degree analysis. It returns the DOT rendering of the
// 2-hop neighbourhood around Braveheart and the degree contrast.
func MovielensGraph(scale Scale, seed int64, w io.Writer) (dot string, blockbuster, niche float64) {
	catalogSize, users := 150, 4000
	if scale == Full {
		catalogSize, users = 600, 20000
	}
	c := movielens.DefaultCatalog(catalogSize)
	g := movielens.DefaultGenOptions()
	g.Users = users
	g.Seed = seed
	r := movielens.Generate(c, g)
	lo := movielens.DefaultLearnOptions()
	lo.Seed = seed
	net := movielens.Learn(r, lo)
	blockbuster, niche = movielens.DegreeContrast(net, c)
	center := c.Index("Braveheart (1995)")
	var sub *bnet.Network
	if center >= 0 {
		sub = net.Neighborhood(center, 2)
		dot = sub.DOT()
	}
	if w != nil {
		fmt.Fprintf(w, "degree contrast (in − out): blockbusters=%.2f  niche=%.2f (paper: blockbusters sink-like, niche source-like)\n", blockbuster, niche)
		profiles := net.DegreeProfiles()
		fmt.Fprintln(w, "top sinks (blockbuster candidates):")
		for i := 0; i < 5 && i < len(profiles); i++ {
			p := profiles[i]
			fmt.Fprintf(w, "  %-52s in=%-3d out=%-3d\n", p.Name, p.In, p.Out)
		}
		fmt.Fprintln(w, "top sources (taste indicators):")
		for i := 0; i < 5 && i < len(profiles); i++ {
			p := profiles[len(profiles)-1-i]
			fmt.Fprintf(w, "  %-52s in=%-3d out=%-3d\n", p.Name, p.In, p.Out)
		}
		if sub != nil {
			fmt.Fprintf(w, "Braveheart 2-hop neighbourhood: %d nodes, %d edges (DOT below)\n%s", sub.N(), sub.NumEdges(), dot)
		}
	}
	return dot, blockbuster, niche
}
