package experiments

import (
	"io"
	"strings"
	"testing"
)

// The experiment functions are exercised end-to-end at reduced sizes;
// these tests assert the *shapes* the paper claims, not absolute
// numbers (see EXPERIMENTS.md).

func TestParseScale(t *testing.T) {
	if s, err := ParseScale("ci"); err != nil || s != CI {
		t.Fatal("ci")
	}
	if s, err := ParseScale(""); err != nil || s != CI {
		t.Fatal("default")
	}
	if s, err := ParseScale("full"); err != nil || s != Full {
		t.Fatal("full")
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Fatal("bogus accepted")
	}
}

func TestFig4TimeShape(t *testing.T) {
	// One mid-size cell of the runtime panel (the full sweep lives in
	// cmd/leastbench): the per-iteration constraint cost of LEAST must
	// beat NOTEARS at d = 100, which is the paper's headline claim.
	// The NOTEARS leg pays O(d³) per iteration, so -short shrinks the
	// cell to d = 30 — the speedup shape already shows there — to keep
	// the suite in seconds.
	d := 100
	if testing.Short() {
		d = 30
	}
	rows := fig4TimeAt(d, 1)
	if rows.Speedup < 1 {
		t.Errorf("no speedup at d=%d: %.2fx (LEAST %v vs NOTEARS %v)",
			rows.D, rows.Speedup, rows.Least, rows.Notears)
	}
}

func TestBookingCasesDetectAll(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	var sb strings.Builder
	cases := BookingCases(CI, 1, &sb)
	if len(cases) != 7 {
		t.Fatalf("cases = %d", len(cases))
	}
	detected := 0
	for _, c := range cases {
		if c.Detected {
			detected++
		}
	}
	// The paper reports 97% true positives; at CI scale require a
	// strong majority of scripted incidents found.
	if detected < 5 {
		t.Fatalf("only %d/7 Table-II incidents detected:\n%s", detected, sb.String())
	}
}

func TestMovielensEdgesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	top, rep := MovielensEdges(CI, 1, io.Discard)
	if len(top) != 10 {
		t.Fatalf("top = %d", len(top))
	}
	if rep.NamedFound < 6 {
		t.Fatalf("named pairs %d/10", rep.NamedFound)
	}
	planted := 0
	for _, e := range top {
		if e.Planted {
			planted++
		}
	}
	if planted < 5 {
		t.Fatalf("top-10 edges contain only %d planted links", planted)
	}
}

func TestFig5DatasetsShapes(t *testing.T) {
	ci := Fig5Datasets(CI)
	full := Fig5Datasets(Full)
	if len(ci) != 3 || len(full) != 3 {
		t.Fatal("dataset count")
	}
	if full[0].Nodes != 27278 || full[1].Nodes != 91850 || full[2].Nodes != 159008 {
		t.Fatalf("full node counts must match the paper: %+v", full)
	}
	for i := range ci {
		if ci[i].Nodes >= full[i].Nodes {
			t.Fatal("CI must be smaller")
		}
	}
}
