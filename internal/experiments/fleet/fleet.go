// Package fleet measures batch fleet-learning throughput — the
// paper's §VI deployment claim (tens of thousands of scenario learns
// per day) reframed as a benchmark: how many networks per second a
// bounded worker pool sustains as batch size and pool concurrency
// scale. It lives beside internal/experiments (leastbench -exp
// fleet-sweep) but in its own package: it drives the public batch API
// through internal/serve, which the experiments package cannot import
// without cycling through the root package's bench suite. See
// DESIGN.md §7 for the batch model this exercises.
package fleet

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/serve"
)

// SweepRow is one (batch size, workers) cell of the throughput grid.
type SweepRow struct {
	Batch      int
	Workers    int
	Done       int
	Failed     int
	Elapsed    time.Duration
	NetsPerSec float64
}

// DefaultBatchSizes returns the sweep's batch-size grid for a scale.
func DefaultBatchSizes(scale experiments.Scale) []int {
	if scale == experiments.Full {
		return []int{64, 256, 1024}
	}
	return []int{8, 32}
}

// Sweep runs the batch-size × worker-count grid: for every cell it
// builds batchSize unique small problems (unique seeds, so neither the
// result cache nor in-flight dedup can hide solves — the cache is
// disabled outright), submits them as one batch to a fresh pool of
// `workers` slots, and times submission → batch-terminal. Per-task
// parallelism is pinned to 1: fleet throughput comes from running many
// independent solves, not from splitting one solve across cores (the
// paper's §VI shape). nil grids pick scale defaults.
func Sweep(scale experiments.Scale, seed int64, workers, batchSizes []int, out io.Writer) []SweepRow {
	if batchSizes == nil {
		batchSizes = DefaultBatchSizes(scale)
	}
	if workers == nil {
		workers = experiments.DefaultWorkerCounts()
	}
	d, n := 12, 120
	if scale == experiments.Full {
		d, n = 20, 200
	}
	if out != nil {
		fmt.Fprintf(out, "instance: d=%d n=%d per task, cores=%d\n", d, n, runtime.GOMAXPROCS(0))
		fmt.Fprintf(out, "%-8s %-8s %-8s %-8s %10s %14s\n", "batch", "workers", "done", "failed", "elapsed", "networks/s")
	}
	var rows []SweepRow
	for _, bsize := range batchSizes {
		specs := makeTasks(seed, bsize, d, n)
		for _, w := range workers {
			r := runCell(specs, w)
			rows = append(rows, r)
			if out != nil {
				fmt.Fprintf(out, "%-8d %-8d %-8d %-8d %10v %14.1f\n",
					r.Batch, r.Workers, r.Done, r.Failed, r.Elapsed.Round(time.Millisecond), r.NetsPerSec)
			}
		}
	}
	return rows
}

// makeTasks builds batchSize unique learn tasks (one dataset and spec
// each, distinct seeds) sized to solve in tens of milliseconds.
func makeTasks(seed int64, batchSize, d, n int) []serve.BatchTaskSpec {
	specs := make([]serve.BatchTaskSpec, batchSize)
	for i := range specs {
		s := seed + int64(i)
		truth := least.GenerateDAG(s, least.ErdosRenyi, d, 2)
		x := least.SampleLSEM(s+1, truth, n, least.GaussianNoise)
		sp, err := least.New(
			least.WithLambda(0.2),
			least.WithEpsilon(1e-3),
			least.WithSeed(s),
			least.WithParallelism(1),
		)
		specs[i] = serve.BatchTaskSpec{
			Label:   fmt.Sprintf("task%05d", i),
			Dataset: least.FromMatrix(x, nil),
			Spec:    sp,
			Err:     err, // New cannot fail here; plumbed for honesty
		}
	}
	return specs
}

// runCell times one batch over a fresh pool.
func runCell(specs []serve.BatchTaskSpec, workers int) SweepRow {
	m := serve.NewManager(serve.Config{
		MaxConcurrent: workers,
		CacheSize:     -1, // every task must cost a real solve
		MaxHistory:    len(specs) + 16,
		BatchBacklog:  len(specs) + 16,
	})
	start := time.Now()
	b, err := m.Batches().Submit(specs)
	if err != nil {
		// Admission can only fail wholesale on shutdown, which cannot
		// happen here; surface it as an all-failed row.
		return SweepRow{Batch: len(specs), Workers: workers, Failed: len(specs)}
	}
	seen := -1
	var st serve.BatchStatus
	for {
		var terminal bool
		st, seen, terminal = b.Watch(context.Background(), seen)
		if terminal {
			break
		}
	}
	elapsed := time.Since(start)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	m.Shutdown(ctx)
	cancel()
	return SweepRow{
		Batch:      st.Total,
		Workers:    workers,
		Done:       st.Done,
		Failed:     st.Failed,
		Elapsed:    elapsed,
		NetsPerSec: float64(st.Done) / elapsed.Seconds(),
	}
}
