// Coordinator throughput sweep (DESIGN.md §13): the fleet-learning
// benchmark rerun through leastcoord. Where Sweep measures one node's
// batch engine in-process, CoordSweep stands up N real leastd nodes on
// loopback listeners, fronts them with a coordinator, and pushes one
// manifest of unique learn tasks through the full wire path — split,
// dispatch, poll, fold. Two numbers per cell: networks/sec (does
// sharding scale?) and the coordinator's routing overhead per request
// (what one proxy hop costs a status read).
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"time"

	"repro"
	"repro/internal/coord"
	"repro/internal/experiments"
	"repro/internal/serve"
)

// CoordRow is one node-count cell of the coordinator sweep.
type CoordRow struct {
	Nodes      int
	Batch      int
	Done       int
	Failed     int
	Elapsed    time.Duration
	NetsPerSec float64
	// RouteOverhead is the coordinator's added latency on a status
	// read: mean(GET via coordinator) − mean(GET direct to the node).
	RouteOverhead time.Duration
}

// DefaultNodeCounts returns the sweep's node-count grid. The grid is
// scale-independent — the point is the 1 → 2 → 4 trend line, and four
// in-process nodes fit any runner.
func DefaultNodeCounts() []int { return []int{1, 2, 4} }

// CoordSweep runs the node-count sweep: for every cell it boots that
// many leastd stacks (manager + HTTP listener) plus a coordinator,
// splits GOMAXPROCS worker slots evenly across the nodes (total
// compute is held constant, so the trend isolates coordination cost),
// submits one batch of unique inline tasks through POST /v2/batches on
// the coordinator, and times submission → batch-terminal over the
// wire. nil nodeCounts picks DefaultNodeCounts.
func CoordSweep(scale experiments.Scale, seed int64, nodeCounts []int, out io.Writer) []CoordRow {
	if nodeCounts == nil {
		nodeCounts = DefaultNodeCounts()
	}
	bsize, d, n := 32, 8, 48
	if scale == experiments.Full {
		bsize, d, n = 256, 12, 120
	}
	if out != nil {
		fmt.Fprintf(out, "instance: %d unique tasks, d=%d n=%d each, %d worker slots total\n",
			bsize, d, n, runtime.GOMAXPROCS(0))
		fmt.Fprintf(out, "%-8s %-8s %-8s %-8s %10s %14s %14s\n",
			"nodes", "batch", "done", "failed", "elapsed", "networks/s", "route-ov/req")
	}
	var rows []CoordRow
	for _, nc := range nodeCounts {
		r := runCoordCell(seed, nc, bsize, d, n)
		rows = append(rows, r)
		if out != nil {
			fmt.Fprintf(out, "%-8d %-8d %-8d %-8d %10v %14.1f %14v\n",
				r.Nodes, r.Batch, r.Done, r.Failed, r.Elapsed.Round(time.Millisecond),
				r.NetsPerSec, r.RouteOverhead.Round(time.Microsecond))
		}
	}
	return rows
}

// coordManifest builds bsize unique inline manifest rows (distinct
// seeds, so dedupe and caching cannot hide solves), parallelism pinned
// to 1 as in makeTasks.
func coordManifest(seed int64, bsize, d, n int) []least.ManifestTask {
	tasks := make([]least.ManifestTask, bsize)
	for i := range tasks {
		s := seed + int64(i)
		truth := least.GenerateDAG(s, least.ErdosRenyi, d, 2)
		x := least.SampleLSEM(s+1, truth, n, least.GaussianNoise)
		sp, _ := least.New(
			least.WithLambda(0.2),
			least.WithEpsilon(1e-3),
			least.WithSeed(s),
			least.WithParallelism(1),
		)
		tasks[i] = least.ManifestTask{
			ID:      fmt.Sprintf("task%05d", i),
			Samples: matrixRows(x),
			Spec:    sp,
		}
	}
	return tasks
}

// coordCluster is one booted cell: N node stacks plus the coordinator,
// all on loopback listeners.
type coordCluster struct {
	base     string   // coordinator base URL
	nodeURLs []string // per-node base URLs, for direct reads
	mgrs     []*serve.Manager
	servers  []*http.Server
	c        *coord.Coordinator
	csrv     *http.Server
}

func bootCoordCluster(nc, slotsPerNode, backlog int) (*coordCluster, error) {
	cl := &coordCluster{}
	var members []coord.NodeConfig
	for i := 0; i < nc; i++ {
		m := serve.NewManager(serve.Config{
			MaxConcurrent: slotsPerNode,
			QueueDepth:    backlog,
			MaxHistory:    backlog,
			BatchBacklog:  backlog,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cl.shutdown()
			return nil, err
		}
		srv := &http.Server{Handler: serve.NewAPI(m).Handler()}
		go func() { _ = srv.Serve(ln) }()
		url := "http://" + ln.Addr().String()
		cl.mgrs = append(cl.mgrs, m)
		cl.servers = append(cl.servers, srv)
		cl.nodeURLs = append(cl.nodeURLs, url)
		members = append(members, coord.NodeConfig{Name: fmt.Sprintf("n%d", i), URL: url})
	}
	c, err := coord.New(coord.Config{
		Nodes:       members,
		HealthEvery: 200 * time.Millisecond,
		GossipEvery: 200 * time.Millisecond,
		StealEvery:  50 * time.Millisecond,
		PollEvery:   5 * time.Millisecond,
	})
	if err != nil {
		cl.shutdown()
		return nil, err
	}
	cl.c = c
	c.CheckHealth()
	c.SyncGossip()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cl.shutdown()
		return nil, err
	}
	cl.csrv = &http.Server{Handler: c.Handler()}
	go func() { _ = cl.csrv.Serve(ln) }()
	cl.base = "http://" + ln.Addr().String()
	return cl, nil
}

func (cl *coordCluster) shutdown() {
	if cl.csrv != nil {
		_ = cl.csrv.Close()
	}
	if cl.c != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		cl.c.Shutdown(ctx)
		cancel()
	}
	for _, srv := range cl.servers {
		_ = srv.Close()
	}
	for _, m := range cl.mgrs {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		m.Shutdown(ctx)
		cancel()
	}
}

// runCoordCell times one manifest through one cluster size.
func runCoordCell(seed int64, nc, bsize, d, n int) CoordRow {
	slots := runtime.GOMAXPROCS(0) / nc
	if slots < 1 {
		slots = 1
	}
	cl, err := bootCoordCluster(nc, slots, bsize+64)
	if err != nil {
		return CoordRow{Nodes: nc, Batch: bsize, Failed: bsize}
	}
	defer cl.shutdown()

	body, _ := json.Marshal(serve.BatchRequest{Tasks: coordManifest(seed, bsize, d, n)})
	var st struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Done   int    `json:"done"`
		Failed int    `json:"failed"`
		Total  int    `json:"total"`
	}
	start := time.Now()
	if err := postDecode(cl.base+"/v2/batches", body, &st); err != nil {
		return CoordRow{Nodes: nc, Batch: bsize, Failed: bsize}
	}
	for st.State == string(serve.BatchRunning) {
		time.Sleep(2 * time.Millisecond)
		if err := getDecode(cl.base+"/v2/batches/"+st.ID, &st); err != nil {
			return CoordRow{Nodes: nc, Batch: bsize, Failed: bsize}
		}
	}
	elapsed := time.Since(start)

	return CoordRow{
		Nodes:         nc,
		Batch:         st.Total,
		Done:          st.Done,
		Failed:        st.Failed,
		Elapsed:       elapsed,
		NetsPerSec:    float64(st.Done) / elapsed.Seconds(),
		RouteOverhead: routeOverhead(cl, seed),
	}
}

// routeOverhead measures what the coordinator hop adds to a status
// read: one tiny job is solved through the coordinator, then its
// status is read K times via the coordinator (composite ID) and K
// times directly against the owning node (local ID); the overhead is
// the difference of the means. Negative differences (pure timing
// noise on a fast loopback) clamp to zero.
func routeOverhead(cl *coordCluster, seed int64) time.Duration {
	truth := least.GenerateDAG(seed, least.ErdosRenyi, 6, 2)
	x := least.SampleLSEM(seed+1, truth, 32, least.GaussianNoise)
	body, _ := json.Marshal(map[string]any{"samples": matrixRows(x)})
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := postDecode(cl.base+"/v2/jobs", body, &st); err != nil {
		return 0
	}
	deadline := time.Now().Add(time.Minute)
	for st.State != "done" {
		if st.State == "failed" || st.State == "cancelled" || time.Now().After(deadline) {
			return 0
		}
		time.Sleep(2 * time.Millisecond)
		if err := getDecode(cl.base+"/v2/jobs/"+st.ID, &st); err != nil {
			return 0
		}
	}
	node, local, ok := splitComposite(st.ID)
	if !ok {
		return 0
	}
	var direct string
	for i, u := range cl.nodeURLs {
		if fmt.Sprintf("n%d", i) == node {
			direct = u
		}
	}
	if direct == "" {
		return 0
	}
	const k = 256
	viaCoord := timeGets(cl.base+"/v2/jobs/"+st.ID, k)
	viaNode := timeGets(direct+"/v2/jobs/"+local, k)
	if viaCoord <= viaNode {
		return 0
	}
	return (viaCoord - viaNode) / k
}

// matrixRows copies a sample matrix into the row-major [][]float64
// shape the inline wire manifest carries.
func matrixRows(x *least.Matrix) [][]float64 {
	rows := make([][]float64, x.Rows())
	for i := range rows {
		rows[i] = x.Row(i)
	}
	return rows
}

// splitComposite parses a cluster-wide "<node>.<localid>" identifier.
func splitComposite(id string) (node, local string, ok bool) {
	for i := 0; i < len(id); i++ {
		if id[i] == '.' {
			return id[:i], id[i+1:], id[:i] != "" && id[i+1:] != ""
		}
	}
	return "", "", false
}

// timeGets performs k sequential GETs and returns the total wall time.
func timeGets(url string, k int) time.Duration {
	t0 := time.Now()
	for i := 0; i < k; i++ {
		resp, err := http.Get(url)
		if err != nil {
			return time.Since(t0)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return time.Since(t0)
}

func postDecode(url string, body []byte, out any) error {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("POST %s: HTTP %d: %s", url, resp.StatusCode, b)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func getDecode(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET %s: HTTP %d: %s", url, resp.StatusCode, b)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
