package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/constraint"
	"repro/internal/loss"
	"repro/internal/mat"
	"repro/internal/randx"
	"repro/internal/sparse"
)

// ParSweepRow is one (kernel, workers) timing from the parallel sparse
// backend sweep.
type ParSweepRow struct {
	Kernel  string
	Workers int
	Time    time.Duration
	// Speedup is relative to the workers=1 row of the same kernel.
	Speedup float64
}

// DefaultWorkerCounts returns the sweep grid {1, 2, 4, …} up to and
// including runtime.GOMAXPROCS.
func DefaultWorkerCounts() []int {
	max := runtime.GOMAXPROCS(0)
	counts := []int{1}
	for w := 2; w < max; w *= 2 {
		counts = append(counts, w)
	}
	if max > 1 {
		counts = append(counts, max)
	}
	return counts
}

// ParSweepInstance builds a large random CSR weight matrix (about
// nnzPerRow stored entries per row) and a batch matrix, the shapes one
// LEAST-SP step touches at Fig-5 scale. Shared by the sweep and the
// root parallel benchmarks.
func ParSweepInstance(seed int64, d, nnzPerRow, batch int) (*sparse.CSR, *mat.Dense) {
	rng := randx.New(seed)
	coords := make([]sparse.Coord, 0, d*nnzPerRow)
	for i := 0; i < d; i++ {
		for k := 0; k < nnzPerRow; k++ {
			j := rng.Intn(d)
			if j == i {
				continue
			}
			coords = append(coords, sparse.Coord{Row: i, Col: j, Val: rng.Uniform(-1, 1)})
		}
	}
	w := sparse.NewCSR(d, d, coords)
	x := mat.NewDense(batch, d)
	for i := 0; i < batch; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.Normal(0, 1)
		}
	}
	return w, x
}

// ParSweep times the kernels that dominate a LEAST-SP step — the
// spectral bound's forward+backward (ValueGradSparse) and the sparse
// loss (X·W plus the support-restricted gradient) — across the given
// worker counts on one large-nnz instance, reporting per-kernel
// speedups over the serial run. nil workers uses DefaultWorkerCounts,
// and a workers=1 baseline is prepended if the grid omits it;
// dOverride > 0 replaces the scale's default node count (ci 20000,
// full 100000). This is the harness for choosing Options.Parallelism
// on a new machine; on a single-core host every count collapses to
// the serial path and all speedups hover at 1.
func ParSweep(scale Scale, seed int64, workers []int, dOverride int, out io.Writer) []ParSweepRow {
	d, batch := 20000, 256
	if scale == Full {
		d, batch = 100000, 512
	}
	if dOverride > 0 {
		d = dOverride
	}
	if workers == nil {
		workers = DefaultWorkerCounts()
	}
	// Speedups are defined relative to serial, so make sure the grid
	// carries a workers=1 baseline even if the caller omitted it.
	hasSerial := false
	for _, wk := range workers {
		if wk == 1 {
			hasSerial = true
			break
		}
	}
	if !hasSerial {
		workers = append([]int{1}, workers...)
	}
	w, x := ParSweepInstance(seed, d, 8, batch)
	if out != nil {
		fmt.Fprintf(out, "instance: d=%d nnz=%d batch=%d cores=%d\n",
			d, w.NNZ(), batch, runtime.GOMAXPROCS(0))
	}
	kernels := []struct {
		name string
		run  func(workers int)
	}{
		{"spectral-grad", func(wk int) {
			sp := constraint.NewSpectral(constraint.DefaultK, constraint.DefaultAlpha)
			sp.Workers = wk
			sp.ValueGradSparse(w)
		}},
		{"sparse-loss", func(wk int) {
			ls := loss.LeastSquares{Lambda: 0.1, Workers: wk}
			ls.ValueGradSparse(w, x)
		}},
	}
	var rows []ParSweepRow
	for _, k := range kernels {
		// Time the whole grid first, then anchor speedups on the
		// workers=1 row (first row if the user's grid omits 1), so a
		// reordered -workers list can't shift the baseline mid-sweep.
		kr := make([]ParSweepRow, 0, len(workers))
		for _, wk := range workers {
			best := time.Duration(0)
			for rep := 0; rep < 3; rep++ {
				t0 := time.Now()
				k.run(wk)
				if el := time.Since(t0); best == 0 || el < best {
					best = el
				}
			}
			kr = append(kr, ParSweepRow{Kernel: k.name, Workers: wk, Time: best})
		}
		var serial time.Duration
		for _, row := range kr {
			if row.Workers == 1 {
				serial = row.Time
				break
			}
		}
		for i := range kr {
			kr[i].Speedup = float64(serial) / float64(kr[i].Time)
			if out != nil {
				fmt.Fprintf(out, "%-14s workers=%-3d time=%-12v speedup=%.2fx\n",
					kr[i].Kernel, kr[i].Workers, kr[i].Time.Round(time.Microsecond), kr[i].Speedup)
			}
		}
		rows = append(rows, kr...)
	}
	return rows
}
