// Package metrics implements the structure-recovery metrics of the
// paper's evaluation (§V-A and Table III): FDR, TPR, FPR, SHD, F1 and
// AUC-ROC under the NOTEARS convention, where a predicted edge counts
// as an error both when it is absent from the skeleton and when it is
// reversed; plus the Pearson correlation used for Fig 4 row 3.
package metrics

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/mat"
)

// Confusion summarizes a predicted-vs-true directed graph comparison
// (NOTEARS accounting).
type Confusion struct {
	// TP: predicted edges with the correct direction.
	TP int
	// Reversed: predicted edges present in the true skeleton but
	// flipped.
	Reversed int
	// FP: predicted edges absent from the true skeleton entirely.
	FP int
	// FN: true edges missed entirely (not even reversed).
	FN int
	// PredEdges / TrueEdges are the totals.
	PredEdges, TrueEdges int
	// Candidates is the number of possible (ordered) non-self edges,
	// d(d−1); the FPR denominator uses the NOTEARS "condition
	// negative" set: candidates/2 − trueEdges.
	Candidates int
}

// Compare builds a Confusion from true and predicted digraphs on the
// same node set.
func Compare(truth, pred *graph.Digraph) Confusion {
	if truth.N() != pred.N() {
		panic("metrics: node-count mismatch")
	}
	d := truth.N()
	c := Confusion{
		PredEdges:  pred.NumEdges(),
		TrueEdges:  truth.NumEdges(),
		Candidates: d * (d - 1),
	}
	for _, e := range pred.Edges() {
		switch {
		case truth.HasEdge(e.From, e.To):
			c.TP++
		case truth.HasEdge(e.To, e.From):
			c.Reversed++
		default:
			c.FP++
		}
	}
	for _, e := range truth.Edges() {
		if !pred.HasEdge(e.From, e.To) && !pred.HasEdge(e.To, e.From) {
			c.FN++
		}
	}
	return c
}

// FDR is the false discovery rate (reversed + FP) / predicted.
func (c Confusion) FDR() float64 {
	if c.PredEdges == 0 {
		return 0
	}
	return float64(c.Reversed+c.FP) / float64(c.PredEdges)
}

// TPR is the true positive rate TP / true edges.
func (c Confusion) TPR() float64 {
	if c.TrueEdges == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TrueEdges)
}

// FPR is (reversed + FP) / condition-negatives, with the NOTEARS
// denominator candidates/2 − trueEdges.
func (c Confusion) FPR() float64 {
	neg := c.Candidates/2 - c.TrueEdges
	if neg <= 0 {
		return 0
	}
	return float64(c.Reversed+c.FP) / float64(neg)
}

// Precision is TP / predicted edges.
func (c Confusion) Precision() float64 {
	if c.PredEdges == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.PredEdges)
}

// Recall is an alias for TPR.
func (c Confusion) Recall() float64 { return c.TPR() }

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// SHD computes the structural Hamming distance between truth and pred:
// the number of edge insertions, deletions, or flips needed to turn
// pred into truth. A reversed edge counts once.
func SHD(truth, pred *graph.Digraph) int {
	if truth.N() != pred.N() {
		panic("metrics: node-count mismatch")
	}
	shd := 0
	seen := make(map[[2]int]bool)
	for _, e := range pred.Edges() {
		key := skel(e.From, e.To)
		switch {
		case truth.HasEdge(e.From, e.To):
			// correct
		case truth.HasEdge(e.To, e.From):
			if !seen[key] {
				shd++ // one flip
			}
		default:
			shd++ // deletion
		}
		seen[key] = true
	}
	for _, e := range truth.Edges() {
		if !pred.HasEdge(e.From, e.To) && !pred.HasEdge(e.To, e.From) {
			shd++ // insertion
		}
	}
	return shd
}

func skel(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// GraphFromWeights thresholds |W| > tau into a digraph, ignoring the
// diagonal — the W → G(W′) step of §V-A.
func GraphFromWeights(w *mat.Dense, tau float64) *graph.Digraph {
	d := w.Rows()
	g := graph.New(d)
	for i := 0; i < d; i++ {
		row := w.Row(i)
		for j, v := range row {
			if i != j && math.Abs(v) > tau {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// AUCROC computes the area under the ROC curve for directed-edge
// recovery, ranking all ordered pairs (i,j), i≠j, by |W[i,j]| and
// sweeping the threshold. Positives are the true directed edges.
func AUCROC(truth *graph.Digraph, w *mat.Dense) float64 {
	d := truth.N()
	type scored struct {
		score float64
		pos   bool
	}
	items := make([]scored, 0, d*(d-1))
	nPos, nNeg := 0, 0
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			if i == j {
				continue
			}
			pos := truth.HasEdge(i, j)
			if pos {
				nPos++
			} else {
				nNeg++
			}
			items = append(items, scored{math.Abs(w.At(i, j)), pos})
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0
	}
	// AUC via the rank-sum (Mann–Whitney) formulation with midrank
	// tie handling.
	sort.Slice(items, func(a, b int) bool { return items[a].score < items[b].score })
	var rankSum float64
	i := 0
	rank := 1
	for i < len(items) {
		j := i
		for j < len(items) && items[j].score == items[i].score {
			j++
		}
		mid := float64(rank+rank+(j-i)-1) / 2
		for k := i; k < j; k++ {
			if items[k].pos {
				rankSum += mid
			}
		}
		rank += j - i
		i = j
	}
	return (rankSum - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg))
}

// Pearson returns the Pearson correlation coefficient of two equal
// length samples (Fig 4 row 3 correlates δ(W) with h(W) traces).
// It returns 0 when either sample is constant.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("metrics: Pearson length mismatch")
	}
	n := float64(len(a))
	if n == 0 {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// Accuracy bundles the full Table-III metric row for one learner.
type Accuracy struct {
	PredEdges, TP int
	FDR, TPR, FPR float64
	SHD           int
	F1, AUC       float64
}

// Evaluate computes the complete metric row for a weight estimate
// against a ground-truth digraph at edge threshold tau.
func Evaluate(truth *graph.Digraph, w *mat.Dense, tau float64) Accuracy {
	pred := GraphFromWeights(w, tau)
	c := Compare(truth, pred)
	return Accuracy{
		PredEdges: c.PredEdges,
		TP:        c.TP,
		FDR:       c.FDR(),
		TPR:       c.TPR(),
		FPR:       c.FPR(),
		SHD:       SHD(truth, pred),
		F1:        c.F1(),
		AUC:       AUCROC(truth, w),
	}
}

// BestOverThresholds replays the paper's §V-A grid search: it evaluates
// every tau in taus and returns the row with the highest F1.
func BestOverThresholds(truth *graph.Digraph, w *mat.Dense, taus []float64) (Accuracy, float64) {
	best := Accuracy{F1: -1}
	bestTau := 0.0
	for _, tau := range taus {
		acc := Evaluate(truth, w, tau)
		if acc.F1 > best.F1 {
			best, bestTau = acc, tau
		}
	}
	return best, bestTau
}
