package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/mat"
)

func g(n int, edges ...[2]int) *graph.Digraph {
	gr := graph.New(n)
	for _, e := range edges {
		gr.AddEdge(e[0], e[1])
	}
	return gr
}

func TestComparePerfect(t *testing.T) {
	truth := g(4, [2]int{0, 1}, [2]int{1, 2})
	c := Compare(truth, g(4, [2]int{0, 1}, [2]int{1, 2}))
	if c.TP != 2 || c.FP != 0 || c.FN != 0 || c.Reversed != 0 {
		t.Fatalf("%+v", c)
	}
	if c.F1() != 1 || c.FDR() != 0 || c.TPR() != 1 || c.FPR() != 0 {
		t.Fatal("perfect prediction metrics")
	}
}

func TestCompareReversedEdge(t *testing.T) {
	truth := g(3, [2]int{0, 1})
	pred := g(3, [2]int{1, 0})
	c := Compare(truth, pred)
	if c.TP != 0 || c.Reversed != 1 || c.FP != 0 {
		t.Fatalf("%+v", c)
	}
	// Reversed counts in FDR (NOTEARS convention).
	if c.FDR() != 1 {
		t.Fatalf("FDR = %g", c.FDR())
	}
	// FN: the true edge is present as reversed, so not missed entirely.
	if c.FN != 0 {
		t.Fatalf("FN = %d", c.FN)
	}
}

func TestCompareFalsePositiveAndNegative(t *testing.T) {
	truth := g(4, [2]int{0, 1}, [2]int{2, 3})
	pred := g(4, [2]int{0, 1}, [2]int{1, 2})
	c := Compare(truth, pred)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 {
		t.Fatalf("%+v", c)
	}
	if math.Abs(c.F1()-0.5) > 1e-12 {
		t.Fatalf("F1 = %g", c.F1())
	}
}

func TestSHDCases(t *testing.T) {
	truth := g(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3})
	if d := SHD(truth, truth); d != 0 {
		t.Fatalf("SHD(g,g) = %d", d)
	}
	// One reversal = 1 (a flip).
	if d := SHD(truth, g(4, [2]int{1, 0}, [2]int{1, 2}, [2]int{2, 3})); d != 1 {
		t.Fatalf("flip SHD = %d", d)
	}
	// One missing = 1 (insertion).
	if d := SHD(truth, g(4, [2]int{0, 1}, [2]int{1, 2})); d != 1 {
		t.Fatalf("missing SHD = %d", d)
	}
	// One extra = 1 (deletion).
	if d := SHD(truth, g(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{0, 3})); d != 1 {
		t.Fatalf("extra SHD = %d", d)
	}
	// Empty prediction = |truth|.
	if d := SHD(truth, g(4)); d != 3 {
		t.Fatalf("empty SHD = %d", d)
	}
}

func TestSHDSymmetricOnSkeletonChanges(t *testing.T) {
	a := g(3, [2]int{0, 1})
	b := g(3, [2]int{1, 2})
	if SHD(a, b) != SHD(b, a) {
		t.Fatal("SHD should be symmetric for add/remove differences")
	}
}

func TestGraphFromWeights(t *testing.T) {
	w := mat.NewDense(3, 3)
	w.Set(0, 1, 0.5)
	w.Set(1, 2, -0.4)
	w.Set(2, 0, 0.05)
	w.Set(1, 1, 9) // diagonal ignored
	gr := GraphFromWeights(w, 0.1)
	if !gr.HasEdge(0, 1) || !gr.HasEdge(1, 2) || gr.HasEdge(2, 0) {
		t.Fatal("thresholding wrong")
	}
	if gr.NumEdges() != 2 {
		t.Fatalf("edges = %d", gr.NumEdges())
	}
}

func TestAUCPerfectRanking(t *testing.T) {
	truth := g(3, [2]int{0, 1}, [2]int{1, 2})
	w := mat.NewDense(3, 3)
	w.Set(0, 1, 0.9)
	w.Set(1, 2, 0.8)
	w.Set(0, 2, 0.1)
	if auc := AUCROC(truth, w); auc != 1 {
		t.Fatalf("AUC = %g, want 1", auc)
	}
}

func TestAUCWorstRanking(t *testing.T) {
	truth := g(3, [2]int{0, 1})
	w := mat.NewDense(3, 3)
	// True edge scored 0, several non-edges scored high.
	w.Set(1, 0, 0.9)
	w.Set(0, 2, 0.8)
	w.Set(2, 1, 0.7)
	auc := AUCROC(truth, w)
	if auc > 0.2 {
		t.Fatalf("AUC = %g, want near 0", auc)
	}
}

func TestAUCAllTiedIsHalf(t *testing.T) {
	truth := g(3, [2]int{0, 1})
	w := mat.NewDense(3, 3) // all scores 0 → ties → 0.5 by midrank
	if auc := AUCROC(truth, w); math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("tied AUC = %g", auc)
	}
}

func TestAUCInUnitIntervalProperty(t *testing.T) {
	f := func(scores [12]float64, edgeBits uint16) bool {
		truth := graph.New(4)
		w := mat.NewDense(4, 4)
		k := 0
		bit := 0
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if i == j {
					continue
				}
				s := scores[k%12]
				if math.IsNaN(s) || math.IsInf(s, 0) {
					s = 0
				}
				w.Set(i, j, math.Mod(s, 5))
				if edgeBits&(1<<bit) != 0 {
					truth.AddEdge(i, j)
				}
				k++
				bit++
			}
		}
		auc := AUCROC(truth, w)
		return auc >= 0 && auc <= 1 || auc == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if p := Pearson(a, []float64{2, 4, 6, 8}); math.Abs(p-1) > 1e-12 {
		t.Fatalf("perfect corr = %g", p)
	}
	if p := Pearson(a, []float64{8, 6, 4, 2}); math.Abs(p+1) > 1e-12 {
		t.Fatalf("perfect anticorr = %g", p)
	}
	if p := Pearson(a, []float64{5, 5, 5, 5}); p != 0 {
		t.Fatalf("constant corr = %g", p)
	}
	if p := Pearson(nil, nil); p != 0 {
		t.Fatal("empty corr")
	}
}

func TestEvaluateMatchesPieces(t *testing.T) {
	truth := g(4, [2]int{0, 1}, [2]int{1, 2})
	w := mat.NewDense(4, 4)
	w.Set(0, 1, 0.9)
	w.Set(1, 2, 0.5)
	w.Set(3, 0, 0.4)
	acc := Evaluate(truth, w, 0.3)
	if acc.TP != 2 || acc.PredEdges != 3 {
		t.Fatalf("%+v", acc)
	}
	if acc.SHD != 1 {
		t.Fatalf("SHD = %d", acc.SHD)
	}
}

func TestBestOverThresholds(t *testing.T) {
	truth := g(3, [2]int{0, 1})
	w := mat.NewDense(3, 3)
	w.Set(0, 1, 0.45)
	w.Set(1, 2, 0.15) // false edge that a high threshold removes
	best, tau := BestOverThresholds(truth, w, []float64{0.1, 0.2, 0.3, 0.4})
	if best.F1 != 1 {
		t.Fatalf("best F1 = %g at tau=%g", best.F1, tau)
	}
	if tau < 0.2 {
		t.Fatalf("best tau = %g should filter the weak false edge", tau)
	}
}

func TestCompareNodeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Compare(graph.New(2), graph.New(3))
}
