// Package sparse implements the CSR sparse-matrix kernel behind the
// paper's LEAST-SP variant (§IV, "Implementation Details"). LEAST-SP
// keeps the weight matrix W on a fixed sparse candidate support chosen
// at initialization (density ζ), so every operation the learner needs —
// row/column sums, diagonal-similarity rescaling for the spectral bound,
// SpMM against dense sample batches, threshold pruning, and Adam moment
// tracking — can run in O(nnz) time and space.
package sparse

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// CSR is a compressed-sparse-row matrix. The column indices within each
// row are strictly increasing; explicit zeros are permitted (they arise
// from threshold pruning, which zeroes values without re-compacting).
type CSR struct {
	rows, cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries (including explicit zeros).
func (m *CSR) NNZ() int { return len(m.Val) }

// Coord is one (row, col, value) triple used to assemble a CSR matrix.
type Coord struct {
	Row, Col int
	Val      float64
}

// NewCSR assembles a rows×cols CSR matrix from coordinates. Duplicate
// (row, col) pairs are summed. The input slice is not modified.
func NewCSR(rows, cols int, coords []Coord) *CSR {
	for _, c := range coords {
		if c.Row < 0 || c.Row >= rows || c.Col < 0 || c.Col >= cols {
			panic(fmt.Sprintf("sparse: coordinate (%d,%d) out of %dx%d", c.Row, c.Col, rows, cols))
		}
	}
	cs := append([]Coord(nil), coords...)
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Row != cs[j].Row {
			return cs[i].Row < cs[j].Row
		}
		return cs[i].Col < cs[j].Col
	})
	m := &CSR{rows: rows, cols: cols, RowPtr: make([]int, rows+1)}
	for i := 0; i < len(cs); {
		j := i + 1
		v := cs[i].Val
		for j < len(cs) && cs[j].Row == cs[i].Row && cs[j].Col == cs[i].Col {
			v += cs[j].Val
			j++
		}
		m.ColIdx = append(m.ColIdx, cs[i].Col)
		m.Val = append(m.Val, v)
		m.RowPtr[cs[i].Row+1]++
		i = j
	}
	for i := 0; i < rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// NewCSRRaw wraps pre-assembled CSR arrays without copying — the
// deserialization path (a journaled result's sparse weights round-trip
// through JSON as the raw arrays). The arrays must satisfy the CSR
// invariants the validation here checks: len(RowPtr) == rows+1,
// RowPtr[0] == 0, non-decreasing RowPtr ending at len(Val), ColIdx
// aligned with Val and each index within [0, cols).
func NewCSRRaw(rows, cols int, rowPtr, colIdx []int, val []float64) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: negative shape %dx%d", rows, cols)
	}
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("sparse: RowPtr has %d entries for %d rows", len(rowPtr), rows)
	}
	if len(colIdx) != len(val) {
		return nil, fmt.Errorf("sparse: %d column indices for %d values", len(colIdx), len(val))
	}
	if rowPtr[0] != 0 || rowPtr[rows] != len(val) {
		return nil, fmt.Errorf("sparse: RowPtr spans [%d,%d], want [0,%d]", rowPtr[0], rowPtr[rows], len(val))
	}
	for i := 0; i < rows; i++ {
		if rowPtr[i] > rowPtr[i+1] {
			return nil, fmt.Errorf("sparse: RowPtr decreases at row %d", i)
		}
	}
	for _, c := range colIdx {
		if c < 0 || c >= cols {
			return nil, fmt.Errorf("sparse: column index %d out of %d columns", c, cols)
		}
	}
	return &CSR{rows: rows, cols: cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}, nil
}

// FromDense converts a dense matrix to CSR keeping entries with
// |v| > tol.
func FromDense(d *mat.Dense, tol float64) *CSR {
	var coords []Coord
	for i := 0; i < d.Rows(); i++ {
		row := d.Row(i)
		for j, v := range row {
			if math.Abs(v) > tol {
				coords = append(coords, Coord{i, j, v})
			}
		}
	}
	return NewCSR(d.Rows(), d.Cols(), coords)
}

// ToDense materializes the matrix densely (test/debug helper).
func (m *CSR) ToDense() *mat.Dense {
	d := mat.NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			d.Add(i, m.ColIdx[p], m.Val[p])
		}
	}
	return d
}

// Clone returns a deep copy.
func (m *CSR) Clone() *CSR {
	return &CSR{
		rows: m.rows, cols: m.cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
}

// SamePattern reports whether o shares m's exact sparsity pattern.
func (m *CSR) SamePattern(o *CSR) bool {
	if m.rows != o.rows || m.cols != o.cols || len(m.Val) != len(o.Val) {
		return false
	}
	for i, p := range m.RowPtr {
		if o.RowPtr[i] != p {
			return false
		}
	}
	for i, c := range m.ColIdx {
		if o.ColIdx[i] != c {
			return false
		}
	}
	return true
}

// WithValues returns a matrix sharing m's pattern (RowPtr/ColIdx slices
// are shared, not copied) with the given values. len(vals) must equal
// m.NNZ().
func (m *CSR) WithValues(vals []float64) *CSR {
	if len(vals) != len(m.Val) {
		panic(fmt.Sprintf("sparse: %d values for %d-nnz pattern", len(vals), len(m.Val)))
	}
	return &CSR{rows: m.rows, cols: m.cols, RowPtr: m.RowPtr, ColIdx: m.ColIdx, Val: vals}
}

// ZeroLike returns a matrix with m's pattern and all-zero values.
func (m *CSR) ZeroLike() *CSR {
	return m.WithValues(make([]float64, len(m.Val)))
}

// Square returns a same-pattern matrix with each value squared
// (S = W ∘ W).
func (m *CSR) Square() *CSR { return m.SquareP(nil) }

// SquareP is Square fanned out across a parallel.Runner (nil runs
// serially). Output is bit-identical to Square for every worker count.
func (m *CSR) SquareP(r *parallel.Runner) *CSR {
	v := make([]float64, len(m.Val))
	r.For(len(m.Val), len(m.Val), func(lo, hi, _ int) {
		for p := lo; p < hi; p++ {
			x := m.Val[p]
			v[p] = x * x
		}
	})
	return m.WithValues(v)
}

// RowSums returns the vector of row sums.
func (m *CSR) RowSums() []float64 { return m.RowSumsP(nil) }

// RowSumsP is RowSums partitioned over row ranges (nnz-balanced).
// Each output element is written by exactly one worker, so the result
// is bit-identical to RowSums for every worker count.
func (m *CSR) RowSumsP(runner *parallel.Runner) []float64 {
	r := make([]float64, m.rows)
	runner.ForWeighted(m.RowPtr, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			var s float64
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				s += m.Val[p]
			}
			r[i] = s
		}
	})
	return r
}

// ColSums returns the vector of column sums.
func (m *CSR) ColSums() []float64 { return m.ColSumsP(nil) }

// ColSumsP is ColSums with per-worker partial vectors reduced in slot
// order. The reduction is deterministic for a fixed worker count but —
// unlike the row-partitioned kernels — may differ from the serial
// result in the last few ulps, since summation order changes.
func (m *CSR) ColSumsP(runner *parallel.Runner) []float64 {
	c := make([]float64, m.cols)
	if runner.Serial(m.rows, len(m.Val)) {
		for i := 0; i < m.rows; i++ {
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				c[m.ColIdx[p]] += m.Val[p]
			}
		}
		return c
	}
	partials := make([][]float64, runner.Workers())
	parts := runner.ForWeighted(m.RowPtr, func(lo, hi, w int) {
		buf := make([]float64, m.cols)
		for i := lo; i < hi; i++ {
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				buf[m.ColIdx[p]] += m.Val[p]
			}
		}
		partials[w] = buf
	})
	parallel.SumVecs(c, partials[:parts])
	return c
}

// ScaleRowsCols overwrites each entry m[i,j] *= ri[i] * cj[j]. This is
// the O(nnz) diagonal-similarity step S ← D⁻¹ S D of the paper's
// Eq. (5) when called with ri = 1/b and cj = b.
func (m *CSR) ScaleRowsCols(ri, cj []float64) { m.ScaleRowsColsP(nil, ri, cj) }

// ScaleRowsColsP is ScaleRowsCols partitioned over row ranges; every
// stored value is written by exactly one worker, so the result is
// bit-identical to the serial kernel for every worker count.
func (m *CSR) ScaleRowsColsP(runner *parallel.Runner, ri, cj []float64) {
	if len(ri) != m.rows || len(cj) != m.cols {
		panic("sparse: ScaleRowsCols dimension mismatch")
	}
	runner.ForWeighted(m.RowPtr, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			r := ri[i]
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				m.Val[p] *= r * cj[m.ColIdx[p]]
			}
		}
	})
}

// Threshold zeroes stored values with |v| < theta (pattern unchanged)
// and reports the number cleared. Keeping the pattern intact is what
// lets the sparse Adam moments stay aligned across iterations.
func (m *CSR) Threshold(theta float64) int {
	n := 0
	for i, v := range m.Val {
		if v != 0 && math.Abs(v) < theta {
			m.Val[i] = 0
			n++
		}
	}
	return n
}

// ZeroDiagonal clears stored diagonal entries of a square matrix.
func (m *CSR) ZeroDiagonal() {
	if m.rows != m.cols {
		panic("sparse: ZeroDiagonal on non-square matrix")
	}
	for i := 0; i < m.rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if m.ColIdx[p] == i {
				m.Val[p] = 0
			}
		}
	}
}

// CountNonZero returns the number of stored values that are not
// (numerically) zero.
func (m *CSR) CountNonZero() int {
	n := 0
	for _, v := range m.Val {
		if v != 0 {
			n++
		}
	}
	return n
}

// MaxAbs returns the largest absolute stored value.
func (m *CSR) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Val {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// SumAbs returns Σ|v| over stored values (the L1 penalty term).
func (m *CSR) SumAbs() float64 {
	var s float64
	for _, v := range m.Val {
		s += math.Abs(v)
	}
	return s
}

// Transpose returns mᵀ as a new CSR matrix.
func (m *CSR) Transpose() *CSR { return m.TransposeP(nil) }

// TransposeP is Transpose parallelized as a two-phase count + scatter:
// each worker counts column frequencies over its (nnz-balanced) row
// range, a serial prefix pass turns the per-worker counts into
// disjoint write cursors, and the scatter phase reuses the same
// partition so no two workers touch the same output slot. Because the
// cursors are laid out part-major in source-row order, the output —
// including the source-row ordering within each transposed row — is
// bit-identical to the serial Transpose for every worker count.
func (m *CSR) TransposeP(runner *parallel.Runner) *CSR {
	t := &CSR{rows: m.cols, cols: m.rows,
		RowPtr: make([]int, m.cols+1),
		ColIdx: make([]int, len(m.Val)),
		Val:    make([]float64, len(m.Val)),
	}
	if runner.Serial(m.rows, len(m.Val)) {
		for _, c := range m.ColIdx {
			t.RowPtr[c+1]++
		}
		for i := 0; i < m.cols; i++ {
			t.RowPtr[i+1] += t.RowPtr[i]
		}
		next := append([]int(nil), t.RowPtr...)
		for i := 0; i < m.rows; i++ {
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				c := m.ColIdx[p]
				q := next[c]
				next[c]++
				t.ColIdx[q] = i
				t.Val[q] = m.Val[p]
			}
		}
		return t
	}
	ranges := parallel.SplitByWeight(m.RowPtr, runner.Workers())
	counts := make([][]int, len(ranges))
	parallel.Run(ranges, func(lo, hi, w int) {
		cnt := make([]int, m.cols)
		for p := m.RowPtr[lo]; p < m.RowPtr[hi]; p++ {
			cnt[m.ColIdx[p]]++
		}
		counts[w] = cnt
	})
	running := 0
	for c := 0; c < m.cols; c++ {
		t.RowPtr[c] = running
		for w := range counts {
			n := counts[w][c]
			counts[w][c] = running // becomes part w's write cursor for column c
			running += n
		}
	}
	t.RowPtr[m.cols] = running
	parallel.Run(ranges, func(lo, hi, w int) {
		next := counts[w]
		for i := lo; i < hi; i++ {
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				c := m.ColIdx[p]
				q := next[c]
				next[c]++
				t.ColIdx[q] = i
				t.Val[q] = m.Val[p]
			}
		}
	})
	return t
}

// MulVec computes out = m·v, the O(nnz) matvec behind the Hutchinson
// h-estimator's Taylor recurrence. len(v) must equal Cols() and
// len(out) must equal Rows().
func (m *CSR) MulVec(v, out []float64) { m.MulVecP(nil, v, out) }

// MulVecP is MulVec partitioned over row ranges; each out[i] is
// written by exactly one worker (bit-identical for every worker
// count).
func (m *CSR) MulVecP(runner *parallel.Runner, v, out []float64) {
	if len(v) != m.cols || len(out) != m.rows {
		panic("sparse: MulVec dimension mismatch")
	}
	runner.ForWeighted(m.RowPtr, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			var s float64
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				s += m.Val[p] * v[m.ColIdx[p]]
			}
			out[i] = s
		}
	})
}

// DenseMulCSR computes X·W for dense X (n×d) and sparse W (d×m),
// returning a dense n×m matrix in O(n·nnz/d · d) = O(n·nnz) time —
// the residual computation X·W of the LEAST-SP loss.
func DenseMulCSR(x *mat.Dense, w *CSR) *mat.Dense { return DenseMulCSRP(nil, x, w) }

// DenseMulCSRP is DenseMulCSR partitioned over the rows of x; each
// output row belongs to exactly one worker, so the product is
// bit-identical to the serial kernel for every worker count.
func DenseMulCSRP(runner *parallel.Runner, x *mat.Dense, w *CSR) *mat.Dense {
	if x.Cols() != w.rows {
		panic(fmt.Sprintf("sparse: DenseMulCSR %dx%d by %dx%d", x.Rows(), x.Cols(), w.rows, w.cols))
	}
	out := mat.NewDense(x.Rows(), w.cols)
	runner.For(x.Rows(), x.Rows()*(w.rows+w.NNZ()), func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			xrow := x.Row(i)
			orow := out.Row(i)
			for k, xv := range xrow {
				if xv == 0 {
					continue
				}
				for p := w.RowPtr[k]; p < w.RowPtr[k+1]; p++ {
					orow[w.ColIdx[p]] += xv * w.Val[p]
				}
			}
		}
	})
	return out
}

// SupportGrad computes, for every stored position (i,j) of pattern,
// g[p] = Σ_r a[r,i]·b[r,j] — i.e. the entries of AᵀB restricted to the
// pattern. This is the support-restricted loss gradient of LEAST-SP:
// with A = X_B and B = (X_B·W − X_B) it yields (X_BᵀR)|support in
// O(nnz·batch) time without ever forming the dense d×d product.
func SupportGrad(pattern *CSR, a, b *mat.Dense) []float64 {
	return SupportGradP(nil, pattern, a, b)
}

// SupportGradP is SupportGrad partitioned over the rows of pattern:
// each worker owns a contiguous slice of stored positions, so no two
// workers write the same g[p]. For any fixed position the r-summation
// order is unchanged, making the result bit-identical to the serial
// kernel for every worker count. (The serial path keeps the sample-
// row-streaming loop order, which is kinder to the cache when the
// batch is tall.)
func SupportGradP(runner *parallel.Runner, pattern *CSR, a, b *mat.Dense) []float64 {
	if a.Rows() != b.Rows() {
		panic("sparse: SupportGrad row mismatch")
	}
	if a.Cols() != pattern.rows || b.Cols() != pattern.cols {
		panic("sparse: SupportGrad shape mismatch with pattern")
	}
	g := make([]float64, pattern.NNZ())
	n := a.Rows()
	if runner.Serial(pattern.rows, n*(pattern.rows+pattern.NNZ())) {
		for r := 0; r < n; r++ {
			arow := a.Row(r)
			brow := b.Row(r)
			for i := 0; i < pattern.rows; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				for p := pattern.RowPtr[i]; p < pattern.RowPtr[i+1]; p++ {
					g[p] += av * brow[pattern.ColIdx[p]]
				}
			}
		}
		return g
	}
	// Split directly rather than via ForWeighted: the latter would
	// re-gate on nnz alone and silently drop to serial for tall-batch
	// shapes whose true work (n-scaled, judged above) merits fan-out.
	parallel.Run(parallel.SplitByWeight(pattern.RowPtr, runner.Workers()), func(lo, hi, _ int) {
		for r := 0; r < n; r++ {
			arow := a.Row(r)
			brow := b.Row(r)
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				for p := pattern.RowPtr[i]; p < pattern.RowPtr[i+1]; p++ {
					g[p] += av * brow[pattern.ColIdx[p]]
				}
			}
		}
	})
	return g
}
