package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func denseFrom(rows, cols int, vals ...float64) *mat.Dense {
	return mat.NewDenseData(rows, cols, vals)
}

func TestNewCSRBasics(t *testing.T) {
	m := NewCSR(3, 3, []Coord{{0, 1, 2}, {2, 0, -1}, {0, 2, 3}})
	if m.NNZ() != 3 || m.Rows() != 3 || m.Cols() != 3 {
		t.Fatalf("nnz=%d", m.NNZ())
	}
	d := m.ToDense()
	if d.At(0, 1) != 2 || d.At(2, 0) != -1 || d.At(0, 2) != 3 || d.At(1, 1) != 0 {
		t.Fatalf("ToDense: %v", d)
	}
}

func TestNewCSRSumsDuplicates(t *testing.T) {
	m := NewCSR(2, 2, []Coord{{0, 1, 2}, {0, 1, 3}})
	if m.NNZ() != 1 || m.ToDense().At(0, 1) != 5 {
		t.Fatal("duplicates must sum")
	}
}

func TestNewCSROutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCSR(2, 2, []Coord{{2, 0, 1}})
}

func TestFromDenseRoundTrip(t *testing.T) {
	d := denseFrom(2, 3, 0, 1.5, 0, -2, 0, 0.001)
	m := FromDense(d, 0.01)
	if m.NNZ() != 2 {
		t.Fatalf("nnz=%d want 2 (tol filter)", m.NNZ())
	}
	d2 := FromDense(d, 0).ToDense()
	if !d2.EqualApprox(d, 0) {
		t.Fatal("roundtrip with tol=0 failed")
	}
}

func TestRowColSums(t *testing.T) {
	m := NewCSR(2, 3, []Coord{{0, 0, 1}, {0, 2, 2}, {1, 1, 3}})
	r := m.RowSums()
	c := m.ColSums()
	if r[0] != 3 || r[1] != 3 {
		t.Fatalf("rows %v", r)
	}
	if c[0] != 1 || c[1] != 3 || c[2] != 2 {
		t.Fatalf("cols %v", c)
	}
}

func TestScaleRowsColsMatchesDense(t *testing.T) {
	m := NewCSR(3, 3, []Coord{{0, 1, 2}, {1, 2, 4}, {2, 0, -3}})
	ri := []float64{2, 0.5, 1}
	cj := []float64{1, 3, -1}
	d := m.ToDense()
	m.ScaleRowsCols(ri, cj)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := d.At(i, j) * ri[i] * cj[j]
			if got := m.ToDense().At(i, j); !eq(got, want) {
				t.Fatalf("(%d,%d) got %g want %g", i, j, got, want)
			}
		}
	}
}

func eq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestThresholdKeepsPattern(t *testing.T) {
	m := NewCSR(2, 2, []Coord{{0, 1, 0.05}, {1, 0, 0.5}})
	n := m.Threshold(0.1)
	if n != 1 || m.NNZ() != 2 || m.CountNonZero() != 1 {
		t.Fatal("threshold must zero values, not drop entries")
	}
}

func TestZeroDiagonal(t *testing.T) {
	m := NewCSR(2, 2, []Coord{{0, 0, 1}, {0, 1, 2}, {1, 1, 3}})
	m.ZeroDiagonal()
	d := m.ToDense()
	if d.At(0, 0) != 0 || d.At(1, 1) != 0 || d.At(0, 1) != 2 {
		t.Fatal("ZeroDiagonal")
	}
}

func TestTransposeMatchesDense(t *testing.T) {
	m := NewCSR(2, 3, []Coord{{0, 1, 2}, {0, 2, -1}, {1, 0, 4}})
	tr := m.Transpose()
	if !tr.ToDense().EqualApprox(m.ToDense().Transpose(), 0) {
		t.Fatal("Transpose mismatch")
	}
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatal("Transpose shape")
	}
}

func TestDenseMulCSRMatchesDense(t *testing.T) {
	x := denseFrom(2, 3, 1, 2, 3, 4, 5, 6)
	w := NewCSR(3, 2, []Coord{{0, 0, 1}, {1, 1, 2}, {2, 0, -1}})
	got := DenseMulCSR(x, w)
	want := x.Mul(w.ToDense())
	if !got.EqualApprox(want, 1e-12) {
		t.Fatal("DenseMulCSR mismatch")
	}
}

func TestSupportGradMatchesDense(t *testing.T) {
	// SupportGrad(pattern, A, B) must equal (AᵀB) restricted to the
	// pattern.
	a := denseFrom(3, 2, 1, 2, 3, 4, 5, 6)
	b := denseFrom(3, 2, -1, 0.5, 2, 1, 0, -2)
	pattern := NewCSR(2, 2, []Coord{{0, 0, 1}, {0, 1, 1}, {1, 0, 1}})
	g := SupportGrad(pattern, a, b)
	full := a.Transpose().Mul(b)
	idx := 0
	for i := 0; i < 2; i++ {
		for p := pattern.RowPtr[i]; p < pattern.RowPtr[i+1]; p++ {
			j := pattern.ColIdx[p]
			if !eq(g[idx], full.At(i, j)) {
				t.Fatalf("entry (%d,%d): got %g want %g", i, j, g[idx], full.At(i, j))
			}
			idx++
		}
	}
}

func TestWithValuesAndPattern(t *testing.T) {
	m := NewCSR(2, 2, []Coord{{0, 1, 2}, {1, 0, 3}})
	v := m.WithValues([]float64{5, 7})
	if !m.SamePattern(v) {
		t.Fatal("WithValues should share pattern")
	}
	if v.ToDense().At(0, 1) != 5 {
		t.Fatal("WithValues values")
	}
	z := m.ZeroLike()
	if z.MaxAbs() != 0 {
		t.Fatal("ZeroLike")
	}
	c := m.Clone()
	c.Val[0] = 99
	if m.Val[0] == 99 {
		t.Fatal("Clone must deep-copy values")
	}
}

func TestSquareSumAbsMaxAbs(t *testing.T) {
	m := NewCSR(2, 2, []Coord{{0, 1, -3}, {1, 0, 2}})
	sq := m.Square()
	if sq.ToDense().At(0, 1) != 9 {
		t.Fatal("Square")
	}
	if m.SumAbs() != 5 || m.MaxAbs() != 3 {
		t.Fatal("SumAbs/MaxAbs")
	}
}

func TestQuickCSRDenseEquivalence(t *testing.T) {
	// Property: for random sparse matrices, CSR row/col sums and
	// transpose agree with the dense computation.
	f := func(coords [6]struct {
		R, C uint8
		V    float64
	}) bool {
		var cs []Coord
		for _, c := range coords {
			v := c.V
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			cs = append(cs, Coord{int(c.R % 5), int(c.C % 5), math.Mod(v, 10)})
		}
		m := NewCSR(5, 5, cs)
		d := m.ToDense()
		r1, r2 := m.RowSums(), d.RowSums()
		c1, c2 := m.ColSums(), d.ColSums()
		for i := range r1 {
			if math.Abs(r1[i]-r2[i]) > 1e-9 || math.Abs(c1[i]-c2[i]) > 1e-9 {
				return false
			}
		}
		return m.Transpose().ToDense().EqualApprox(d.Transpose(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
