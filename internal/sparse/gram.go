package sparse

import (
	"repro/internal/mat"
	"repro/internal/parallel"
)

// Gram computes G = XᵀX for a CSR sample matrix X (rows =
// observations, cols = variables) together with the per-column sums —
// the sufficient statistics of the least-squares loss, straight from
// the sparse form: row i contributes v_j·v_k to G[j,k] for every pair
// of its stored entries, so the cost is Σ_i nnz(row_i)², never n·d².
//
// The row ranges are nnz-balanced (SplitByWeight) and each worker
// accumulates into a private dense d×d partial that is reduced in slot
// order, so for a fixed worker count the result is deterministic. The
// per-worker partials make the transient memory O(workers·d²): callers
// only reach for the dense-Gram path at dense-feasible d, so that is
// the same order as the Gram itself.
func Gram(runner *parallel.Runner, x *CSR) (*mat.Dense, []float64) {
	d := x.Cols()
	n := x.Rows()
	nnz := x.NNZ()
	if runner.Serial(n, nnz*8) {
		g := mat.NewDense(d, d)
		sums := make([]float64, d)
		gramRows(g, sums, x, 0, n)
		return g, sums
	}
	ranges := parallel.SplitByWeight(x.RowPtr, runner.Workers())
	grams := make([]*mat.Dense, len(ranges))
	partial := make([][]float64, len(ranges))
	parallel.Run(ranges, func(lo, hi, w int) {
		g := mat.NewDense(d, d)
		sums := make([]float64, d)
		gramRows(g, sums, x, lo, hi)
		grams[w] = g
		partial[w] = sums
	})
	g := grams[0]
	for w := 1; w < len(grams); w++ {
		g.AddInPlace(grams[w])
	}
	sums := make([]float64, d)
	parallel.SumVecs(sums, partial)
	return g, sums
}

func gramRows(g *mat.Dense, sums []float64, x *CSR, lo, hi int) {
	for i := lo; i < hi; i++ {
		start, end := x.RowPtr[i], x.RowPtr[i+1]
		for p := start; p < end; p++ {
			j, v := x.ColIdx[p], x.Val[p]
			sums[j] += v
			if v == 0 {
				continue
			}
			grow := g.Row(j)
			for q := start; q < end; q++ {
				grow[x.ColIdx[q]] += v * x.Val[q]
			}
		}
	}
}
