package sparse

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/randx"
)

// workerGrid is the issue-mandated sweep: serial, two workers, and the
// machine's core count (plus an oversubscribed pool, which must also
// be correct).
func workerGrid() []int {
	return []int{1, 2, runtime.NumCPU(), runtime.NumCPU() + 3}
}

// forced returns a runner whose serial-fallback threshold is disabled,
// so even tiny adversarial shapes exercise the parallel path.
func forced(workers int) *parallel.Runner { return parallel.NewWithMinWork(workers, 1) }

// adversarialMatrices builds the shapes the parallel kernels must not
// get wrong: empty matrices, a single all-dense row among empties,
// d=1, explicit zeros, rectangular shapes, and a large random matrix
// that actually spans several ranges.
func adversarialMatrices(t *testing.T) map[string]*CSR {
	t.Helper()
	rng := randx.New(7)
	ms := map[string]*CSR{
		"empty-0x0":  NewCSR(0, 0, nil),
		"empty-5x5":  NewCSR(5, 5, nil),
		"d=1-zero":   NewCSR(1, 1, nil),
		"d=1-dense":  NewCSR(1, 1, []Coord{{0, 0, 2.5}}),
		"single-row": NewCSR(6, 6, []Coord{{3, 0, 1}, {3, 1, -2}, {3, 2, 3}, {3, 3, -4}, {3, 4, 5}, {3, 5, -6}}),
		"single-col": NewCSR(6, 6, []Coord{{0, 2, 1}, {1, 2, -1}, {2, 2, 2}, {4, 2, -2}, {5, 2, 0.5}}),
		"rect-2x7":   NewCSR(2, 7, []Coord{{0, 6, 1}, {1, 0, -3}, {1, 3, 2}}),
		"rect-7x2":   NewCSR(7, 2, []Coord{{6, 0, 1}, {0, 1, -3}, {3, 1, 2}}),
	}
	// Explicit zeros (the pattern thresholding leaves behind).
	wz := NewCSR(4, 4, []Coord{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {3, 0, 4}})
	wz.Threshold(2.5)
	ms["explicit-zeros"] = wz
	// Large-ish random matrix with a skewed row: enough nnz to split
	// across many ranges.
	var coords []Coord
	d := 200
	for i := 0; i < d; i++ {
		for k := 0; k < 6; k++ {
			j := rng.Intn(d)
			coords = append(coords, Coord{i, j, rng.Uniform(-2, 2)})
		}
	}
	for j := 0; j < d; j++ { // one dense row
		coords = append(coords, Coord{17, j, rng.Normal(0, 1)})
	}
	ms["random-skewed"] = NewCSR(d, d, coords)
	return ms
}

func vecsEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestParallelKernelsMatchSerial(t *testing.T) {
	for name, m := range adversarialMatrices(t) {
		t.Run(name, func(t *testing.T) {
			wantSquare := m.Square()
			wantRows := m.RowSums()
			wantCols := m.ColSums()
			wantT := m.Transpose()
			for _, wk := range workerGrid() {
				r := forced(wk)
				tag := fmt.Sprintf("workers=%d", wk)
				if got := m.SquareP(r); !vecsEqual(got.Val, wantSquare.Val, 0) {
					t.Errorf("%s: SquareP diverges", tag)
				}
				if got := m.RowSumsP(r); !vecsEqual(got, wantRows, 0) {
					t.Errorf("%s: RowSumsP = %v, want %v", tag, got, wantRows)
				}
				// ColSums reduces partials, so allow rounding slack.
				if got := m.ColSumsP(r); !vecsEqual(got, wantCols, 1e-12) {
					t.Errorf("%s: ColSumsP = %v, want %v", tag, got, wantCols)
				}
				got := m.TransposeP(r)
				if !vecsEqual(got.Val, wantT.Val, 0) {
					t.Errorf("%s: TransposeP values diverge", tag)
				}
				if !got.SamePattern(wantT) {
					t.Errorf("%s: TransposeP pattern diverges", tag)
				}
			}
		})
	}
}

func TestScaleRowsColsParallelMatchesSerial(t *testing.T) {
	for name, m := range adversarialMatrices(t) {
		t.Run(name, func(t *testing.T) {
			rng := randx.New(11)
			ri := make([]float64, m.Rows())
			cj := make([]float64, m.Cols())
			for i := range ri {
				ri[i] = rng.Uniform(0.5, 2)
			}
			for j := range cj {
				cj[j] = rng.Uniform(0.5, 2)
			}
			want := m.Clone()
			want.ScaleRowsCols(ri, cj)
			for _, wk := range workerGrid() {
				got := m.Clone()
				got.ScaleRowsColsP(forced(wk), ri, cj)
				if !vecsEqual(got.Val, want.Val, 0) {
					t.Errorf("workers=%d: ScaleRowsColsP diverges", wk)
				}
			}
		})
	}
}

func TestMulVecParallelMatchesSerial(t *testing.T) {
	for name, m := range adversarialMatrices(t) {
		t.Run(name, func(t *testing.T) {
			rng := randx.New(13)
			v := make([]float64, m.Cols())
			for i := range v {
				v[i] = rng.Normal(0, 1)
			}
			want := make([]float64, m.Rows())
			m.MulVec(v, want)
			for _, wk := range workerGrid() {
				got := make([]float64, m.Rows())
				m.MulVecP(forced(wk), v, got)
				if !vecsEqual(got, want, 0) {
					t.Errorf("workers=%d: MulVecP diverges", wk)
				}
			}
		})
	}
}

func TestDenseMulCSRParallelMatchesSerial(t *testing.T) {
	rng := randx.New(17)
	for name, m := range adversarialMatrices(t) {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{1, 3, 32} {
				x := mat.NewDense(n, m.Rows())
				for i := 0; i < n; i++ {
					row := x.Row(i)
					for j := range row {
						row[j] = rng.Normal(0, 1)
					}
				}
				want := DenseMulCSR(x, m)
				for _, wk := range workerGrid() {
					got := DenseMulCSRP(forced(wk), x, m)
					if !got.EqualApprox(want, 0) {
						t.Errorf("workers=%d n=%d: DenseMulCSRP diverges", wk, n)
					}
				}
			}
		})
	}
}

func TestSupportGradParallelMatchesSerial(t *testing.T) {
	rng := randx.New(19)
	for name, m := range adversarialMatrices(t) {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{1, 4, 16} {
				a := mat.NewDense(n, m.Rows())
				b := mat.NewDense(n, m.Cols())
				for i := 0; i < n; i++ {
					for j := 0; j < m.Rows(); j++ {
						a.Set(i, j, rng.Normal(0, 1))
					}
					for j := 0; j < m.Cols(); j++ {
						b.Set(i, j, rng.Normal(0, 1))
					}
				}
				want := SupportGrad(m, a, b)
				for _, wk := range workerGrid() {
					got := SupportGradP(forced(wk), m, a, b)
					// Bit-identical: the r-accumulation order per
					// stored position is unchanged by row partitioning.
					if !vecsEqual(got, want, 0) {
						t.Errorf("workers=%d n=%d: SupportGradP diverges", wk, n)
					}
				}
			}
		})
	}
}

// TestTransposeParallelRoundTrip checks (Wᵀ)ᵀ = W through the parallel
// two-phase transpose on a matrix large enough to split.
func TestTransposeParallelRoundTrip(t *testing.T) {
	m := adversarialMatrices(t)["random-skewed"]
	for _, wk := range workerGrid() {
		r := forced(wk)
		back := m.TransposeP(r).TransposeP(r)
		if !back.SamePattern(m) || !vecsEqual(back.Val, m.Val, 0) {
			t.Fatalf("workers=%d: double transpose is not identity", wk)
		}
	}
}
