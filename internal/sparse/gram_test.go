package sparse

import (
	"math"
	"testing"

	"repro/internal/parallel"
	"repro/internal/randx"
)

// TestGramMatchesDense: the CSR sufficient-statistics kernel agrees
// with the dense XᵀX on random sparse sample matrices, serial and
// parallel.
func TestGramMatchesDense(t *testing.T) {
	shapes := []struct {
		n, d    int
		density float64
	}{{30, 8, 0.3}, {200, 15, 0.1}, {50, 5, 1.0}, {64, 10, 0.02}}
	for _, sh := range shapes {
		rng := randx.New(int64(sh.n + sh.d))
		var coords []Coord
		for i := 0; i < sh.n; i++ {
			for j := 0; j < sh.d; j++ {
				if rng.Float64() < sh.density {
					coords = append(coords, Coord{Row: i, Col: j, Val: rng.Normal(0, 1)})
				}
			}
		}
		x := NewCSR(sh.n, sh.d, coords)
		want := x.ToDense().Transpose().Mul(x.ToDense())
		wantSums := x.ColSums()
		for _, workers := range []int{1, 4} {
			// minWork 1 forces the parallel path even on tiny inputs.
			run := parallel.NewWithMinWork(workers, 1)
			g, sums := Gram(run, x)
			for i, v := range g.Data() {
				if math.Abs(v-want.Data()[i]) > 1e-12*math.Max(1, math.Abs(want.Data()[i])) {
					t.Fatalf("n=%d d=%d workers=%d: gram[%d] = %g, want %g", sh.n, sh.d, workers, i, v, want.Data()[i])
				}
			}
			for j, v := range sums {
				if math.Abs(v-wantSums[j]) > 1e-12 {
					t.Fatalf("n=%d d=%d workers=%d: colsum[%d] = %g, want %g", sh.n, sh.d, workers, j, v, wantSums[j])
				}
			}
		}
	}
}
