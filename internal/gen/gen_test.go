package gen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/randx"
	"repro/internal/sparse"
)

func TestRandomDAGIsAcyclic(t *testing.T) {
	rng := randx.New(1)
	for _, model := range []Model{ER, SF} {
		for trial := 0; trial < 20; trial++ {
			dag := RandomDAG(rng, model, 30, 4, 0.5, 2)
			if !dag.G.IsDAG() {
				t.Fatalf("%s produced a cyclic graph", model)
			}
		}
	}
}

func TestRandomDAGWeightsMatchEdges(t *testing.T) {
	rng := randx.New(2)
	dag := RandomDAG(rng, ER, 25, 2, 0.5, 2)
	d := dag.G.N()
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			w := dag.W.At(i, j)
			if dag.G.HasEdge(i, j) {
				a := math.Abs(w)
				if a < 0.5 || a > 2 {
					t.Fatalf("edge weight %g outside ±[0.5,2]", w)
				}
			} else if w != 0 {
				t.Fatalf("non-edge (%d,%d) has weight %g", i, j, w)
			}
		}
	}
}

func TestERMeanDegree(t *testing.T) {
	rng := randx.New(3)
	d := 200
	total := 0
	trials := 10
	for i := 0; i < trials; i++ {
		dag := RandomDAG(rng, ER, d, 2, 0.5, 2)
		total += dag.G.NumEdges()
	}
	// ER-2: expected edges = d·2/2 = d.
	mean := float64(total) / float64(trials)
	if mean < float64(d)*0.8 || mean > float64(d)*1.2 {
		t.Fatalf("ER-2 mean edges %.1f, want ≈%d", mean, d)
	}
}

func TestSFMeanDegreeAndSkew(t *testing.T) {
	rng := randx.New(4)
	d := 300
	dag := RandomDAG(rng, SF, d, 4, 0.5, 2)
	edges := dag.G.NumEdges()
	// SF-4 with m=2: ≈ 2(d−1)−2 edges → mean total degree ≈ 4.
	if edges < int(1.5*float64(d)) || edges > int(2.5*float64(d)) {
		t.Fatalf("SF-4 edges = %d for d=%d", edges, d)
	}
	// Scale-free skew: the max total degree should far exceed the mean.
	maxDeg := 0
	for v := 0; v < d; v++ {
		if deg := dag.G.InDegree(v) + dag.G.OutDegree(v); deg > maxDeg {
			maxDeg = deg
		}
	}
	meanDeg := 2 * float64(edges) / float64(d)
	if float64(maxDeg) < 3*meanDeg {
		t.Fatalf("no hub: max degree %d vs mean %.1f", maxDeg, meanDeg)
	}
}

func TestSampleLSEMShapesAndVariancePropagation(t *testing.T) {
	rng := randx.New(5)
	// Chain 0→1 with weight 2: Var(X1) = 4·Var(X0) + 1 = 5.
	dag := RandomDAG(rng, ER, 2, 0, 0.5, 2) // likely empty; build manually
	dag.G = chainGraph(2)
	dag.W.Set(0, 1, 2)
	x := SampleLSEM(rng, dag, 40000, randx.Gaussian)
	if x.Rows() != 40000 || x.Cols() != 2 {
		t.Fatal("shape")
	}
	var v0, v1 float64
	for i := 0; i < x.Rows(); i++ {
		v0 += x.At(i, 0) * x.At(i, 0)
		v1 += x.At(i, 1) * x.At(i, 1)
	}
	v0 /= float64(x.Rows())
	v1 /= float64(x.Rows())
	if math.Abs(v0-1) > 0.05 {
		t.Fatalf("Var(X0)=%.3f want 1", v0)
	}
	if math.Abs(v1-5) > 0.25 {
		t.Fatalf("Var(X1)=%.3f want 5", v1)
	}
}

func chainGraph(n int) *graph.Digraph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestSampleLSEMPanicsOnCycle(t *testing.T) {
	rng := randx.New(6)
	dag := RandomDAG(rng, ER, 3, 2, 0.5, 2)
	dag.G = graph.New(3)
	dag.G.AddEdge(0, 1)
	dag.G.AddEdge(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SampleLSEM(rng, dag, 10, randx.Gaussian)
}

func TestSparseInitProperties(t *testing.T) {
	rng := randx.New(7)
	d := 50
	w := SparseInit(rng, d, 0.05)
	if w.Rows() != d || w.Cols() != d {
		t.Fatal("shape")
	}
	want := int(0.05 * float64(d) * float64(d))
	if w.NNZ() != want {
		t.Fatalf("nnz=%d want %d", w.NNZ(), want)
	}
	dd := w.ToDense()
	for i := 0; i < d; i++ {
		if dd.At(i, i) != 0 {
			t.Fatal("diagonal must be empty")
		}
	}
}

func TestSparseInitFloorsTinyDensity(t *testing.T) {
	rng := randx.New(8)
	w := SparseInit(rng, 30, 1e-6)
	if w.NNZ() < 30 {
		t.Fatalf("nnz=%d below floor", w.NNZ())
	}
}

func TestSparseInitWithSupportIncludesMust(t *testing.T) {
	rng := randx.New(9)
	must := []sparse.Coord{{Row: 2, Col: 3}, {Row: 4, Col: 1}}
	w := SparseInitWithSupport(rng, 20, 0.05, must)
	d := w.ToDense()
	if d.At(2, 3) == 0 || d.At(4, 1) == 0 {
		t.Fatal("must-have coordinates missing")
	}
}

func TestDenseGlorotInit(t *testing.T) {
	rng := randx.New(10)
	w := DenseGlorotInit(rng, 40, 0.1)
	nnz := w.NNZ(0)
	want := int(0.1 * 1600)
	if nnz != want {
		t.Fatalf("nnz=%d want %d", nnz, want)
	}
	for i := 0; i < 40; i++ {
		if w.At(i, i) != 0 {
			t.Fatal("diagonal must stay zero")
		}
	}
}

func TestQuickGeneratedDAGsAlwaysAcyclic(t *testing.T) {
	f := func(seed int64, dByte, degByte uint8) bool {
		d := 2 + int(dByte%40)
		deg := 1 + int(degByte%6)
		rng := randx.New(seed)
		model := ER
		if seed%2 == 0 {
			model = SF
		}
		dag := RandomDAG(rng, model, d, deg, 0.5, 2)
		return dag.G.IsDAG()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestInitializersSmallDNoHang(t *testing.T) {
	// Regression: density → 1 at tiny d must not spin forever trying
	// to place more off-diagonal entries than exist.
	rng := randx.New(20)
	w := DenseGlorotInit(rng, 3, 1)
	if w.NNZ(0) != 6 {
		t.Fatalf("d=3 full density nnz=%d want 6", w.NNZ(0))
	}
	s := SparseInit(rng, 2, 1)
	if s.NNZ() != 2 {
		t.Fatalf("d=2 sparse nnz=%d want 2", s.NNZ())
	}
	s2 := SparseInitWithSupport(rng, 2, 1, nil)
	if s2.NNZ() != 2 {
		t.Fatalf("d=2 with-support nnz=%d", s2.NNZ())
	}
}
