// Package gen reproduces the paper's benchmark workload generator
// (§V-A): random DAG topologies from the Erdős–Rényi (ER) and
// scale-free / Barabási–Albert (SF) families, NOTEARS-style edge
// weights drawn uniformly from ±[0.5, 2], and linear-SEM sampling with
// Gaussian, Exponential or Gumbel additive noise. The paper uses ER
// with mean degree 2 ("ER-2") and SF with mean degree 4 ("SF-4").
package gen

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/randx"
	"repro/internal/sparse"
)

// Model names a random-graph family.
type Model int

const (
	// ER is the Erdős–Rényi family: each of the d(d−1)/2 possible
	// (orientation-fixed) edges is present independently.
	ER Model = iota
	// SF is the scale-free family grown by preferential attachment.
	SF
)

// String returns the paper's abbreviation.
func (m Model) String() string {
	if m == ER {
		return "ER"
	}
	return "SF"
}

// DAG couples a topology with its ground-truth weighted adjacency
// matrix: W[i,j] ≠ 0 iff edge i→j exists.
type DAG struct {
	G *graph.Digraph
	W *mat.Dense
}

// RandomDAG generates a d-node DAG of the given family with the target
// mean (total) degree, assigning each edge a weight from ±U[wLo, wHi].
// Node labels are randomly permuted so the topological order is hidden
// from learners.
func RandomDAG(rng *randx.RNG, model Model, d, meanDegree int, wLo, wHi float64) *DAG {
	if d <= 0 {
		panic("gen: need at least one node")
	}
	var lower *graph.Digraph // edges only from lower to higher rank
	switch model {
	case ER:
		lower = erLower(rng, d, meanDegree)
	case SF:
		lower = sfLower(rng, d, meanDegree)
	default:
		panic(fmt.Sprintf("gen: unknown model %d", model))
	}
	// Random relabeling: rank r becomes node perm[r].
	perm := rng.Perm(d)
	g := graph.New(d)
	w := mat.NewDense(d, d)
	for _, e := range lower.Edges() {
		u, v := perm[e.From], perm[e.To]
		g.AddEdge(u, v)
		w.Set(u, v, rng.SignedUniform(wLo, wHi))
	}
	return &DAG{G: g, W: w}
}

// erLower samples an ER DAG in canonical rank order: edge r→s (r < s)
// appears with probability p chosen so the expected total degree is
// meanDegree (i.e. expected edge count ≈ d·meanDegree/2).
func erLower(rng *randx.RNG, d, meanDegree int) *graph.Digraph {
	g := graph.New(d)
	if d == 1 {
		return g
	}
	p := float64(meanDegree) / float64(d-1)
	if p > 1 {
		p = 1
	}
	for r := 0; r < d; r++ {
		for s := r + 1; s < d; s++ {
			if rng.Float64() < p {
				g.AddEdge(r, s)
			}
		}
	}
	return g
}

// sfLower grows a Barabási–Albert DAG: node s attaches to
// m = meanDegree/2 existing nodes chosen with probability proportional
// to their current degree, with edges oriented old→new so acyclicity is
// structural. (Mean total degree ≈ 2m = meanDegree, the paper's SF-4
// convention with m = 2.)
func sfLower(rng *randx.RNG, d, meanDegree int) *graph.Digraph {
	g := graph.New(d)
	m := meanDegree / 2
	if m < 1 {
		m = 1
	}
	// repeated holds one entry per half-edge, so uniform sampling from
	// it is degree-proportional sampling.
	repeated := make([]int, 0, 2*m*d)
	repeated = append(repeated, 0)
	for s := 1; s < d; s++ {
		k := m
		if k > s {
			k = s
		}
		chosen := make(map[int]bool, k)
		for len(chosen) < k {
			var t int
			if rng.Float64() < 0.1 {
				// Small uniform mixing keeps early graphs from
				// degenerating to pure stars.
				t = rng.Intn(s)
			} else {
				t = repeated[rng.Intn(len(repeated))]
			}
			if t != s {
				chosen[t] = true
			}
		}
		targets := make([]int, 0, len(chosen))
		for t := range chosen {
			targets = append(targets, t)
		}
		sort.Ints(targets) // deterministic order for reproducible growth
		for _, t := range targets {
			g.AddEdge(t, s) // old → new keeps ranks increasing
			repeated = append(repeated, t, s)
		}
	}
	return g
}

// SampleLSEM draws n i.i.d. samples X ∈ R^{n×d} from the linear SEM
// X_i = w_iᵀX + noise, following a topological order of the DAG. It
// panics if the weighted graph is cyclic.
func SampleLSEM(rng *randx.RNG, dag *DAG, n int, noise randx.Noise) *mat.Dense {
	order, ok := dag.G.TopoSort()
	if !ok {
		panic("gen: SampleLSEM requires a DAG")
	}
	d := dag.G.N()
	x := mat.NewDense(n, d)
	for r := 0; r < n; r++ {
		row := x.Row(r)
		for _, j := range order {
			v := noise.Sample(rng)
			for _, p := range dag.G.Parents(j) {
				v += dag.W.At(p, j) * row[p]
			}
			row[j] = v
		}
	}
	return x
}

// SparseInit builds the random sparse candidate support of Fig 3
// (INNER line 1): a d×d CSR matrix with ~density·d² off-diagonal
// entries initialized Glorot-uniform. This is the fixed support the
// LEAST-SP learner optimizes over.
func SparseInit(rng *randx.RNG, d int, density float64) *sparse.CSR {
	if density < 0 || density > 1 {
		panic("gen: density must be in [0,1]")
	}
	target := int(density * float64(d) * float64(d))
	if target < d {
		target = d // keep at least a useful handful of candidates
	}
	if max := d * (d - 1); target > max {
		target = max // only d(d−1) off-diagonal cells exist
	}
	seen := make(map[[2]int]bool, target)
	coords := make([]sparse.Coord, 0, target)
	for len(coords) < target {
		i, j := rng.Intn(d), rng.Intn(d)
		if i == j || seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true
		coords = append(coords, sparse.Coord{Row: i, Col: j, Val: rng.GlorotUniform(d, d)})
	}
	return sparse.NewCSR(d, d, coords)
}

// SparseInitWithSupport builds a Glorot-initialized CSR support that is
// guaranteed to contain the given candidate edges plus random fill up to
// the density. Used by the application pipelines where domain knowledge
// (e.g. co-occurring log entities) suggests candidate edges.
func SparseInitWithSupport(rng *randx.RNG, d int, density float64, must []sparse.Coord) *sparse.CSR {
	seen := make(map[[2]int]bool)
	coords := make([]sparse.Coord, 0, len(must))
	for _, c := range must {
		if c.Row == c.Col || seen[[2]int{c.Row, c.Col}] {
			continue
		}
		seen[[2]int{c.Row, c.Col}] = true
		coords = append(coords, sparse.Coord{Row: c.Row, Col: c.Col, Val: rng.GlorotUniform(d, d)})
	}
	target := int(density * float64(d) * float64(d))
	if max := d * (d - 1); target > max {
		target = max
	}
	for len(coords) < target {
		i, j := rng.Intn(d), rng.Intn(d)
		if i == j || seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true
		coords = append(coords, sparse.Coord{Row: i, Col: j, Val: rng.GlorotUniform(d, d)})
	}
	return sparse.NewCSR(d, d, coords)
}

// DenseGlorotInit returns a dense d×d matrix where a density fraction of
// off-diagonal entries are Glorot-initialized — the dense-learner
// analogue of SparseInit.
func DenseGlorotInit(rng *randx.RNG, d int, density float64) *mat.Dense {
	w := mat.NewDense(d, d)
	target := int(density * float64(d) * float64(d))
	if target < d {
		target = d
	}
	if max := d * (d - 1); target > max {
		target = max // only d(d−1) off-diagonal cells exist
	}
	placed := 0
	for placed < target {
		i, j := rng.Intn(d), rng.Intn(d)
		if i == j || w.At(i, j) != 0 {
			continue
		}
		w.Set(i, j, rng.GlorotUniform(d, d))
		placed++
	}
	return w
}
