package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// collect replays dir into a slice of (type, data) pairs.
func collect(t *testing.T, dir string) ([]Record, *Corruption) {
	t.Helper()
	var recs []Record
	n, corrupt, err := Replay(dir, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n != len(recs) {
		t.Fatalf("replay count %d, delivered %d", n, len(recs))
	}
	return recs, corrupt
}

func appendN(t *testing.T, w *Writer, typ string, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := w.Append(typ, fmt.Appendf(nil, `{"i":%d}`, i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, "task", 0, 100)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, corrupt := collect(t, dir)
	if corrupt != nil {
		t.Fatalf("unexpected corruption: %v", corrupt)
	}
	if len(recs) != 100 {
		t.Fatalf("replayed %d records, want 100", len(recs))
	}
	for i, r := range recs {
		if r.Type != "task" || r.Seq != uint64(i+1) {
			t.Fatalf("record %d: type %q seq %d", i, r.Type, r.Seq)
		}
		var v struct{ I int }
		if err := json.Unmarshal(r.Data, &v); err != nil || v.I != i {
			t.Fatalf("record %d payload %s (%v)", i, r.Data, err)
		}
	}
}

func TestReplayEmptyAndMissingDir(t *testing.T) {
	n, corrupt, err := Replay(filepath.Join(t.TempDir(), "nope"), func(Record) error { return nil })
	if n != 0 || corrupt != nil || err != nil {
		t.Fatalf("missing dir: n=%d corrupt=%v err=%v", n, corrupt, err)
	}
	n, corrupt, err = Replay(t.TempDir(), func(Record) error { return nil })
	if n != 0 || corrupt != nil || err != nil {
		t.Fatalf("empty dir: n=%d corrupt=%v err=%v", n, corrupt, err)
	}
}

// TestGroupCommitFlush pins the group-commit contract: with a long
// interval the record is buffered (not yet on disk), and Sync makes it
// durable without waiting for the ticker.
func TestGroupCommitFlush(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{FsyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, "task", 0, 3)
	if recs, _ := collect(t, dir); len(recs) != 0 {
		t.Fatalf("buffered records already on disk: %d", len(recs))
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if recs, corrupt := collect(t, dir); len(recs) != 3 || corrupt != nil {
		t.Fatalf("after Sync: %d records, corrupt %v", len(recs), corrupt)
	}
	st := w.Stats()
	if st.Records != 3 || st.Fsyncs == 0 || st.Bytes == 0 {
		t.Fatalf("stats %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentRotation forces rotation with a tiny bound and checks
// replay stitches segments back in order, and that a reopened writer
// never appends to an old file.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, "task", 0, 50)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", len(segs))
	}

	// Reopen: a fresh segment, never an append to a possibly-torn one.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w2.seg != segs[len(segs)-1]+1 {
		t.Fatalf("reopened into segment %d, want %d", w2.seg, segs[len(segs)-1]+1)
	}
	appendN(t, w2, "task", 50, 60)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, corrupt := collect(t, dir)
	if corrupt != nil {
		t.Fatalf("corruption: %v", corrupt)
	}
	if len(recs) != 60 {
		t.Fatalf("replayed %d records across segments, want 60", len(recs))
	}
	for i, r := range recs {
		var v struct{ I int }
		if err := json.Unmarshal(r.Data, &v); err != nil || v.I != i {
			t.Fatalf("record %d out of order: %s", i, r.Data)
		}
	}
}

// TestCompaction: the snapshot supersedes old segments, replay sees
// snapshot records then the tail, and earlier files are deleted.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, "task", 0, 40)
	err = w.Compact(func(add func(string, []byte) error) error {
		// The owner re-serializes live state: pretend records 30..39
		// are all that is still live.
		for i := 30; i < 40; i++ {
			if err := add("snap", fmt.Appendf(nil, `{"i":%d}`, i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, "task", 40, 45)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs, snaps, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("want 1 snapshot, got %v", snaps)
	}
	for _, s := range segs {
		if s < snaps[0] {
			t.Fatalf("stale segment %d survived compaction (snapshot %d)", s, snaps[0])
		}
	}
	recs, corrupt := collect(t, dir)
	if corrupt != nil {
		t.Fatalf("corruption: %v", corrupt)
	}
	if len(recs) != 15 {
		t.Fatalf("replayed %d records, want 10 snapshot + 5 tail", len(recs))
	}
	for i := 0; i < 10; i++ {
		if recs[i].Type != "snap" {
			t.Fatalf("record %d: type %q, want snapshot first", i, recs[i].Type)
		}
	}
	for i := 10; i < 15; i++ {
		if recs[i].Type != "task" {
			t.Fatalf("record %d: type %q, want tail records after snapshot", i, recs[i].Type)
		}
	}
}

// TestCompactionFailureKeepsOldFiles: a snapshot callback error must
// leave the previous journal fully replayable.
func TestCompactionFailureKeepsOldFiles(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, "task", 0, 10)
	boom := fmt.Errorf("snapshot failed")
	if err := w.Compact(func(add func(string, []byte) error) error { return boom }); err == nil {
		t.Fatal("compaction with failing snapshot succeeded")
	}
	appendN(t, w, "task", 10, 12)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, corrupt := collect(t, dir)
	if corrupt != nil {
		t.Fatalf("corruption: %v", corrupt)
	}
	if len(recs) != 12 {
		t.Fatalf("replayed %d records, want all 12", len(recs))
	}
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, _, err := scanDir(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (%v)", err)
	}
	return segPath(dir, segs[len(segs)-1])
}

// TestReplayTruncatedTail: a torn final line — the signature of a
// crash mid-write — stops replay cleanly after the intact prefix.
func TestReplayTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, "task", 0, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := lastSegment(t, dir)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 7, len(b) / 2} {
		if err := os.WriteFile(path, b[:len(b)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, corrupt := collect(t, dir)
		if corrupt == nil {
			t.Fatalf("cut %d: truncation not detected", cut)
		}
		if len(recs) >= 10 {
			t.Fatalf("cut %d: replayed %d records past the tear", cut, len(recs))
		}
		for i, r := range recs {
			if r.Seq != uint64(i+1) {
				t.Fatalf("cut %d: prefix out of order at %d", cut, i)
			}
		}
	}
}

// TestReplayCorruptCRC: a flipped byte mid-file stops replay at that
// line; the prefix is delivered, nothing after it is.
func TestReplayCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, "task", 0, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := lastSegment(t, dir)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(b), "\n")
	// Flip a payload byte of line 5 (0-based 4), after the CRC prefix.
	l := []byte(lines[4])
	l[12] ^= 0xff
	lines[4] = string(l)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, corrupt := collect(t, dir)
	if corrupt == nil {
		t.Fatal("corrupt CRC not detected")
	}
	if corrupt.Line != 5 {
		t.Fatalf("corruption at line %d, want 5 (%v)", corrupt.Line, corrupt)
	}
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want the 4 before the corruption", len(recs))
	}
}

// TestAppendAfterClose: the writer refuses work once closed.
func TestAppendAfterClose(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("task", []byte(`{}`)); err == nil {
		t.Fatal("append after close succeeded")
	}
}
