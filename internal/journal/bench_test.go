package journal

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkJournalAppend measures the append hot path under the three
// durability modes the daemon exposes: group-commit (the -journal-fsync
// default, where appends only buffer), per-append fsync (the paranoid
// FsyncEvery<=0 mode), and a long interval that never fires during the
// run (pure framing + buffered-write cost). The nightly bench-check
// gate pins the group-commit number: an accidental fsync on the append
// path shows up as a >100x regression here long before it shows up as
// lost daemon throughput.
func BenchmarkJournalAppend(b *testing.B) {
	payload := fmt.Appendf(nil, `{"id":"j00000001","key":"%064d","state":"done"}`, 0)
	for _, bc := range []struct {
		name  string
		every time.Duration
	}{
		{"group25ms", 25 * time.Millisecond},
		{"noflush", time.Hour},
		{"syncEvery", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			w, err := Open(b.TempDir(), Options{FsyncEvery: bc.every})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append("task", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
