// Package journal is an append-only write-ahead log for the serving
// daemon's fleet state (DESIGN.md §11). Records are JSONL — one typed
// record per line, CRC-framed — written to numbered segment files with
// group-commit fsync batching: appends land in an in-process buffer
// and a background flusher syncs the file once per interval, so the
// admission hot path never blocks on the disk. Segments rotate at a
// byte bound, and Compact re-serializes the owner's live state into a
// snapshot file that replaces every earlier segment, bounding disk
// growth for a long-lived daemon. Replay reads the newest snapshot
// plus the segments after it and stops cleanly at the first corrupt or
// truncated line — the expected shape of a crash mid-write.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Record is one journal line: a monotonic sequence number, a type tag
// the owner dispatches on, and the typed payload.
type Record struct {
	Seq  uint64          `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Options configures a Writer. The zero value is the safest (and
// slowest) configuration: fsync on every append.
type Options struct {
	// FsyncEvery is the group-commit interval: appends buffer in memory
	// and a background flusher syncs once per interval, so a crash
	// loses at most the last interval's records — never corrupts
	// earlier ones. <= 0 syncs synchronously on every append.
	FsyncEvery time.Duration
	// SegmentBytes rotates the active segment past this size
	// (default 8 MiB).
	SegmentBytes int64
}

// DefaultSegmentBytes is the rotation bound when Options leaves it 0.
const DefaultSegmentBytes = 8 << 20

// Stats is a point-in-time counter snapshot of a Writer.
type Stats struct {
	Records int64 // records appended (snapshot records excluded)
	Bytes   int64 // framed bytes appended
	Fsyncs  int64 // fsync calls issued (group commits + rotations)
}

// crcTable is the Castagnoli polynomial — hardware-accelerated on
// every platform the daemon targets.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Writer appends CRC-framed records to the journal directory.
// Safe for concurrent use.
type Writer struct {
	dir string
	opt Options

	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	seg      int   // index of the active segment
	segBytes int64 // framed bytes in the active segment
	seq      uint64
	dirty    bool // buffered or written bytes not yet fsynced
	closed   bool
	err      error // sticky I/O error; all later appends fail with it

	records atomic.Int64
	bytes   atomic.Int64
	fsyncs  atomic.Int64

	stopFlush chan struct{}
	flushDone chan struct{}
}

func segPath(dir string, i int) string  { return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", i)) }
func snapPath(dir string, i int) string { return filepath.Join(dir, fmt.Sprintf("snap-%08d.log", i)) }

// scanDir lists the segment and snapshot indices present in dir, each
// sorted ascending.
func scanDir(dir string) (segs, snaps []int, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	parse := func(name, prefix string) (int, bool) {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".log") {
			return 0, false
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".log"))
		if err != nil || n < 0 {
			return 0, false
		}
		return n, true
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if n, ok := parse(e.Name(), "wal-"); ok {
			segs = append(segs, n)
		} else if n, ok := parse(e.Name(), "snap-"); ok {
			snaps = append(snaps, n)
		}
	}
	sort.Ints(segs)
	sort.Ints(snaps)
	return segs, snaps, nil
}

// Open creates (or reuses) the journal directory and starts a fresh
// segment after every file already present — an opener never appends
// to a file a previous process may have torn mid-record. Callers
// replay existing state with Replay before accepting new work.
func Open(dir string, opt Options) (*Writer, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	segs, snaps, err := scanDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	next := 1
	if n := len(segs); n > 0 && segs[n-1] >= next {
		next = segs[n-1] + 1
	}
	if n := len(snaps); n > 0 && snaps[n-1] >= next {
		next = snaps[n-1] + 1
	}
	w := &Writer{dir: dir, opt: opt, seg: next}
	if err := w.openSegmentLocked(); err != nil {
		return nil, err
	}
	if opt.FsyncEvery > 0 {
		w.stopFlush = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flushLoop()
	}
	return w, nil
}

// openSegmentLocked opens the active segment file for w.seg. Caller
// holds w.mu (or owns w exclusively).
func (w *Writer) openSegmentLocked() error {
	f, err := os.OpenFile(segPath(w.dir, w.seg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.segBytes = 0
	return nil
}

// frame writes one CRC-framed record line to bw and returns the framed
// byte count.
func frame(bw *bufio.Writer, payload []byte) (int, error) {
	n, err := fmt.Fprintf(bw, "%08x %s\n", crc32.Checksum(payload, crcTable), payload)
	return n, err
}

// Append journals one typed record. With a positive FsyncEvery the
// write is buffered and the background flusher makes it durable within
// one interval; otherwise it is fsynced before Append returns.
func (w *Writer) Append(typ string, data []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("journal: writer closed")
	}
	if w.segBytes >= w.opt.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	w.seq++
	payload, err := json.Marshal(Record{Seq: w.seq, Type: typ, Data: data})
	if err != nil {
		return fmt.Errorf("journal: marshal: %w", err)
	}
	n, err := frame(w.bw, payload)
	if err != nil {
		w.err = fmt.Errorf("journal: append: %w", err)
		return w.err
	}
	w.segBytes += int64(n)
	w.records.Add(1)
	w.bytes.Add(int64(n))
	if w.opt.FsyncEvery <= 0 {
		return w.syncLocked()
	}
	w.dirty = true
	return nil
}

// syncLocked flushes the buffer and fsyncs the active segment. Caller
// holds w.mu.
func (w *Writer) syncLocked() error {
	if err := w.bw.Flush(); err != nil {
		w.err = fmt.Errorf("journal: flush: %w", err)
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("journal: fsync: %w", err)
		return w.err
	}
	w.fsyncs.Add(1)
	w.dirty = false
	return nil
}

// rotateLocked seals the active segment (flush + fsync + close) and
// opens the next one. Caller holds w.mu.
func (w *Writer) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		w.err = fmt.Errorf("journal: close segment: %w", err)
		return w.err
	}
	w.seg++
	if err := w.openSegmentLocked(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// flushLoop is the group-commit flusher: one fsync per interval while
// appends are landing, none while the journal is idle.
func (w *Writer) flushLoop() {
	defer close(w.flushDone)
	t := time.NewTicker(w.opt.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-w.stopFlush:
			return
		case <-t.C:
			w.mu.Lock()
			if w.dirty && w.err == nil && !w.closed {
				_ = w.syncLocked()
			}
			w.mu.Unlock()
		}
	}
}

// Sync forces buffered records to disk immediately — the drain path's
// barrier before reporting shutdown complete.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed || !w.dirty {
		return nil
	}
	return w.syncLocked()
}

// Compact re-serializes the owner's live state into a snapshot that
// supersedes every earlier file: the active segment is sealed, a fresh
// segment K opens for subsequent appends, the snapshot callback writes
// the live state into snap-K (tmp file, fsync, atomic rename), and
// segments and snapshots before K are deleted. Replay then reads
// snap-K followed by wal-K — the snapshot plus the tail written after
// it. A crash anywhere inside Compact is safe: until the rename lands,
// the old files still replay; after it, they are dead weight the next
// Compact removes.
func (w *Writer) Compact(snapshot func(add func(typ string, data []byte) error) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("journal: writer closed")
	}
	if err := w.rotateLocked(); err != nil {
		return err
	}
	k := w.seg
	tmp := snapPath(w.dir, k) + ".tmp"
	sf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	sb := bufio.NewWriterSize(sf, 1<<16)
	var snapSeq uint64
	add := func(typ string, data []byte) error {
		snapSeq++
		payload, err := json.Marshal(Record{Seq: snapSeq, Type: typ, Data: data})
		if err != nil {
			return fmt.Errorf("journal: snapshot marshal: %w", err)
		}
		_, err = frame(sb, payload)
		return err
	}
	err = snapshot(add)
	if err == nil {
		err = sb.Flush()
	}
	if err == nil {
		err = sf.Sync()
	}
	if cerr := sf.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, snapPath(w.dir, k))
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	w.fsyncs.Add(1)
	// The snapshot is durable; everything before it is superseded.
	segs, snaps, err := scanDir(w.dir)
	if err != nil {
		return nil // compaction succeeded; stale files are harmless
	}
	for _, s := range segs {
		if s < k {
			_ = os.Remove(segPath(w.dir, s))
		}
	}
	for _, s := range snaps {
		if s < k {
			_ = os.Remove(snapPath(w.dir, s))
		}
	}
	return nil
}

// Close stops the flusher, syncs outstanding records and closes the
// active segment. The Writer is unusable afterwards.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	if w.stopFlush != nil {
		close(w.stopFlush)
		<-w.flushDone
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var err error
	if w.err == nil && w.dirty {
		if ferr := w.bw.Flush(); ferr != nil {
			err = ferr
		} else if serr := w.f.Sync(); serr != nil {
			err = serr
		} else {
			w.fsyncs.Add(1)
		}
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats snapshots the writer's counters.
func (w *Writer) Stats() Stats {
	return Stats{
		Records: w.records.Load(),
		Bytes:   w.bytes.Load(),
		Fsyncs:  w.fsyncs.Load(),
	}
}

// Corruption describes where replay stopped: the file, 1-based line,
// and why. A truncated or CRC-broken tail is the normal signature of a
// crash mid-write, so replay treats it as end-of-journal rather than
// an error; the owner decides whether a corruption anywhere else is
// tolerable.
type Corruption struct {
	File   string
	Line   int
	Reason string
}

func (c *Corruption) String() string {
	return fmt.Sprintf("%s:%d: %s", c.File, c.Line, c.Reason)
}

// Replay streams the journal's records — the newest snapshot (if any)
// followed by every segment at or after it, oldest first — into fn. It
// returns the number of records delivered and, when the journal ends
// in a torn or corrupt line, a Corruption describing where replay
// stopped (records before the corruption are delivered; nothing after
// it is). A non-nil error from fn aborts replay and is returned as-is.
func Replay(dir string, fn func(Record) error) (int, *Corruption, error) {
	segs, snaps, err := scanDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, nil
		}
		return 0, nil, fmt.Errorf("journal: %w", err)
	}
	var files []string
	from := 0
	if n := len(snaps); n > 0 {
		from = snaps[n-1]
		files = append(files, snapPath(dir, from))
	}
	for _, s := range segs {
		if s >= from {
			files = append(files, segPath(dir, s))
		}
	}
	n := 0
	for _, path := range files {
		corrupt, err := replayFile(path, fn, &n)
		if err != nil {
			return n, nil, err
		}
		if corrupt != nil {
			return n, corrupt, nil
		}
	}
	return n, nil, nil
}

// replayFile delivers one file's records, returning a Corruption at
// the first bad line.
func replayFile(path string, fn func(Record) error, n *int) (*Corruption, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	base := filepath.Base(path)
	for line := 1; ; line++ {
		raw, err := br.ReadBytes('\n')
		if err == io.EOF {
			if len(raw) == 0 {
				return nil, nil
			}
			return &Corruption{File: base, Line: line, Reason: "truncated record (no newline)"}, nil
		}
		if err != nil {
			return nil, fmt.Errorf("journal: read %s: %w", base, err)
		}
		raw = raw[:len(raw)-1] // strip '\n'
		if len(raw) < 10 || raw[8] != ' ' {
			return &Corruption{File: base, Line: line, Reason: "malformed frame"}, nil
		}
		want, err := strconv.ParseUint(string(raw[:8]), 16, 32)
		if err != nil {
			return &Corruption{File: base, Line: line, Reason: "malformed CRC"}, nil
		}
		payload := raw[9:]
		if crc32.Checksum(payload, crcTable) != uint32(want) {
			return &Corruption{File: base, Line: line, Reason: "CRC mismatch"}, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return &Corruption{File: base, Line: line, Reason: "bad record JSON: " + err.Error()}, nil
		}
		if err := fn(rec); err != nil {
			return nil, err
		}
		*n++
	}
}
