// Package parallel is the work-partitioning backbone of the sparse
// execution backend. The paper's complexity claim (§III-C) is that one
// LEAST-SP step costs O(k·nnz); this package is what lets that O(nnz)
// spread across cores: a deterministic row-range splitter (optionally
// weighted by a CSR row-pointer so every worker gets a near-equal nnz
// share), a fork-join loop sized off runtime.GOMAXPROCS, and a
// slot-ordered vector reduction so that accumulating kernels stay
// reproducible for a fixed worker count.
//
// Every kernel that uses a Runner falls back to a plain serial loop
// when the estimated scalar work is below the runner's threshold
// (mirroring the dense GEMM's gemmParallelThreshold), so small
// problems never pay goroutine overhead and remain bit-identical to
// the historical single-threaded implementation.
package parallel

import (
	"runtime"
	"sync"
)

// DefaultMinWork is the scalar-work threshold below which a Runner
// executes serially. It is sized like the dense kernel's
// gemmParallelThreshold: roughly the op count where fork-join overhead
// (a few µs) drops under ~10% of kernel time.
const DefaultMinWork = 1 << 16

// Runner executes row-partitioned loops across a bounded number of
// goroutines. The zero value and the nil pointer are both valid and
// mean "serial". Runners are stateless and safe for concurrent use.
type Runner struct {
	workers int
	minWork int
}

// New returns a Runner with the given worker bound and the default
// serial-fallback threshold. workers <= 0 selects runtime.GOMAXPROCS,
// workers == 1 forces serial execution.
func New(workers int) *Runner { return NewWithMinWork(workers, 0) }

// NewWithMinWork is New with an explicit serial-fallback threshold in
// scalar-work units (e.g. nnz touched); minWork <= 0 selects
// DefaultMinWork. Tests pass minWork = 1 to force the parallel path on
// tiny inputs.
func NewWithMinWork(workers, minWork int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if minWork <= 0 {
		minWork = DefaultMinWork
	}
	return &Runner{workers: workers, minWork: minWork}
}

// Workers returns the worker bound (1 for a nil or zero Runner).
func (r *Runner) Workers() int {
	if r == nil || r.workers <= 0 {
		return 1
	}
	return r.workers
}

// Serial reports whether a loop over n rows costing work scalar ops
// should run on the calling goroutine. Kernels use it to keep a
// zero-overhead serial path.
func (r *Runner) Serial(n, work int) bool {
	if r == nil || r.workers <= 1 || n < 2 {
		return true
	}
	min := r.minWork
	if min <= 0 {
		min = DefaultMinWork
	}
	return work < min
}

// Range is a half-open row interval [Lo, Hi).
type Range struct{ Lo, Hi int }

// Split partitions [0, n) into at most parts contiguous near-equal
// ranges. Empty ranges are never returned; the split depends only on
// (n, parts), which is what makes reductions over it deterministic.
func Split(n, parts int) []Range {
	if n <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	if parts <= 1 {
		return []Range{{0, n}}
	}
	out := make([]Range, 0, parts)
	chunk := n / parts
	rem := n % parts
	lo := 0
	for p := 0; p < parts; p++ {
		hi := lo + chunk
		if p < rem {
			hi++
		}
		out = append(out, Range{lo, hi})
		lo = hi
	}
	return out
}

// SplitByWeight partitions the rows of a CSR-style row pointer
// (len(rowPtr) == rows+1, rowPtr[i] ≤ rowPtr[i+1]) into at most parts
// contiguous ranges of near-equal weight, so workers processing skewed
// matrices (one dense row among thousands of empty ones) still load-
// balance. Rows with zero weight attach to the range in progress.
func SplitByWeight(rowPtr []int, parts int) []Range {
	n := len(rowPtr) - 1
	if n <= 0 {
		return nil
	}
	total := rowPtr[n] - rowPtr[0]
	if parts <= 1 || total == 0 {
		return []Range{{0, n}}
	}
	if parts > n {
		parts = n
	}
	out := make([]Range, 0, parts)
	lo := 0
	for p := 0; p < parts && lo < n; p++ {
		// Aim each remaining part at an equal share of the remaining
		// weight; always take at least one row.
		remaining := rowPtr[n] - rowPtr[lo]
		target := (remaining + (parts - p) - 1) / (parts - p)
		hi := lo + 1
		for hi < n && rowPtr[hi]-rowPtr[lo] < target {
			// Leave at least one row per remaining part.
			if n-hi <= parts-p-1 {
				break
			}
			hi++
		}
		out = append(out, Range{lo, hi})
		lo = hi
	}
	if lo < n { // absorb any tail into the last range
		out[len(out)-1].Hi = n
	}
	return out
}

// For runs fn over a partition of [0, n) with total scalar work
// estimated at work. When Serial(n, work) it calls fn(0, n, 0) on the
// calling goroutine; otherwise it forks one goroutine per range of
// Split(n, Workers()) and joins. worker is the range's slot index,
// usable to address per-worker scratch. Returns the number of parts
// actually run (1 on the serial path).
func (r *Runner) For(n, work int, fn func(lo, hi, worker int)) int {
	if n <= 0 {
		return 0
	}
	if r.Serial(n, work) {
		fn(0, n, 0)
		return 1
	}
	return runRanges(Split(n, r.Workers()), fn)
}

// ForWeighted is For with the partition balanced by a CSR row pointer:
// the work estimate is rowPtr[n]−rowPtr[0] and ranges carry near-equal
// weight rather than near-equal row counts.
func (r *Runner) ForWeighted(rowPtr []int, fn func(lo, hi, worker int)) int {
	n := len(rowPtr) - 1
	if n <= 0 {
		return 0
	}
	work := rowPtr[n] - rowPtr[0]
	if r.Serial(n, work) {
		fn(0, n, 0)
		return 1
	}
	return runRanges(SplitByWeight(rowPtr, r.Workers()), fn)
}

// Run executes fn over an explicit list of ranges, one goroutine per
// range (on the calling goroutine when there is only one), and returns
// the number of ranges. Kernels that need the same partition for two
// phases (e.g. the transpose's count + scatter) call Split/
// SplitByWeight once and Run twice.
func Run(ranges []Range, fn func(lo, hi, worker int)) int {
	return runRanges(ranges, fn)
}

func runRanges(ranges []Range, fn func(lo, hi, worker int)) int {
	if len(ranges) == 1 {
		fn(ranges[0].Lo, ranges[0].Hi, 0)
		return 1
	}
	var wg sync.WaitGroup
	wg.Add(len(ranges))
	for w, rg := range ranges {
		go func(w int, rg Range) {
			defer wg.Done()
			fn(rg.Lo, rg.Hi, w)
		}(w, rg)
	}
	wg.Wait()
	return len(ranges)
}

// SumVecs accumulates per-worker partial vectors into dst in slot
// order — the deterministic reduction for scatter-style kernels
// (column sums, the backward pass's z accumulation). nil partials are
// skipped, so workers may allocate their slot lazily.
func SumVecs(dst []float64, partials [][]float64) {
	for _, p := range partials {
		if p == nil {
			continue
		}
		for i, v := range p {
			dst[i] += v
		}
	}
}
