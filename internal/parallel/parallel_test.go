package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func covers(t *testing.T, ranges []Range, n int) {
	t.Helper()
	lo := 0
	for _, r := range ranges {
		if r.Lo != lo {
			t.Fatalf("gap: range starts at %d, want %d (%v)", r.Lo, lo, ranges)
		}
		if r.Hi <= r.Lo {
			t.Fatalf("empty range %v in %v", r, ranges)
		}
		lo = r.Hi
	}
	if lo != n {
		t.Fatalf("ranges cover [0,%d), want [0,%d): %v", lo, n, ranges)
	}
}

func TestSplitCoversAndBalances(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 4}, {4, 4}, {5, 4}, {100, 7}, {3, 1}, {10, 100},
	} {
		ranges := Split(tc.n, tc.parts)
		if tc.n == 0 {
			if ranges != nil {
				t.Fatalf("Split(0, %d) = %v", tc.parts, ranges)
			}
			continue
		}
		covers(t, ranges, tc.n)
		if len(ranges) > tc.parts && tc.parts > 0 {
			t.Fatalf("Split(%d, %d) gave %d parts", tc.n, tc.parts, len(ranges))
		}
		// Near-equal: sizes differ by at most 1.
		min, max := tc.n, 0
		for _, r := range ranges {
			if s := r.Hi - r.Lo; s < min {
				min = s
			} else if s > max {
				max = s
			}
		}
		if max > 0 && max-min > 1 {
			t.Fatalf("unbalanced split %v", ranges)
		}
	}
}

func TestSplitByWeightSkewedRows(t *testing.T) {
	// One dense row among empty rows: every range must still be
	// non-empty and the union must cover all rows.
	rowPtr := []int{0, 0, 0, 1000, 1000, 1000, 1000}
	ranges := SplitByWeight(rowPtr, 3)
	covers(t, ranges, 6)

	// Uniform weights split near-evenly.
	uniform := make([]int, 101)
	for i := range uniform {
		uniform[i] = i * 10
	}
	ranges = SplitByWeight(uniform, 4)
	covers(t, ranges, 100)
	for _, r := range ranges {
		w := uniform[r.Hi] - uniform[r.Lo]
		if w < 200 || w > 300 {
			t.Fatalf("weight %d for range %v (want ~250)", w, r)
		}
	}

	// All-zero weight collapses to a single range.
	ranges = SplitByWeight([]int{0, 0, 0, 0}, 4)
	if len(ranges) != 1 || ranges[0] != (Range{0, 3}) {
		t.Fatalf("zero-weight split = %v", ranges)
	}

	// Empty matrix.
	if got := SplitByWeight([]int{0}, 4); got != nil {
		t.Fatalf("SplitByWeight(rows=0) = %v", got)
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, runtime.NumCPU() + 2} {
		r := NewWithMinWork(workers, 1)
		const n = 1000
		var visits [n]int32
		parts := r.For(n, n, func(lo, hi, worker int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		if workers > 1 && parts < 2 {
			t.Fatalf("workers=%d ran %d parts", workers, parts)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestForSerialFallback(t *testing.T) {
	r := New(8) // default threshold
	calls := 0
	parts := r.For(100, 100, func(lo, hi, worker int) {
		calls++
		if lo != 0 || hi != 100 || worker != 0 {
			t.Fatalf("serial call got (%d,%d,%d)", lo, hi, worker)
		}
	})
	if parts != 1 || calls != 1 {
		t.Fatalf("small work should run serially: parts=%d calls=%d", parts, calls)
	}
	if r.For(0, 0, func(lo, hi, worker int) { t.Fatal("called for n=0") }) != 0 {
		t.Fatal("n=0 should run nothing")
	}
}

func TestNilRunnerIsSerial(t *testing.T) {
	var r *Runner
	if !r.Serial(1<<30, 1<<30) || r.Workers() != 1 {
		t.Fatal("nil runner must be serial")
	}
	sum := 0
	r.For(10, 1<<30, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if sum != 45 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestForWeightedVisitsAllRows(t *testing.T) {
	rowPtr := []int{0, 5, 5, 5, 200000, 200001}
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		r := NewWithMinWork(workers, 1)
		var visits [5]int32
		r.ForWeighted(rowPtr, func(lo, hi, worker int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: row %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestSumVecsDeterministicOrder(t *testing.T) {
	dst := []float64{1, 2}
	SumVecs(dst, [][]float64{{10, 20}, nil, {100, 200}})
	if dst[0] != 111 || dst[1] != 222 {
		t.Fatalf("dst = %v", dst)
	}
}

func TestWorkersClamp(t *testing.T) {
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(0).Workers() = %d, want GOMAXPROCS", got)
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(-3).Workers() = %d", got)
	}
	if got := New(5).Workers(); got != 5 {
		t.Fatalf("New(5).Workers() = %d", got)
	}
}
