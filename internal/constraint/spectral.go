// Package constraint implements the differentiable acyclicity
// constraints at the heart of the paper:
//
//   - the paper's contribution (§III): an upper bound δ^(k) on the
//     spectral radius of S = W∘W, computed by k rounds of diagonal
//     similarity scaling (Eq. 4/5) in O(k·nnz) time, with the
//     hand-derived sparse backward pass of Lemmas 3–5;
//   - the NOTEARS baseline (Eq. 2): h(W) = tr(e^S) − d with its
//     O(d³) matrix-exponential gradient;
//   - the DAG-GNN polynomial relaxation (Eq. 3):
//     g(W) = tr((I+γS)^d) − d.
//
// All three vanish exactly on (and only on) weighted DAGs, which is the
// property the learners exploit.
package constraint

import (
	"math"

	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// DefaultAlpha is the row/column balancing factor α of Eq. (4); the
// paper fixes α = 0.9 in all experiments (§V "Parameter Settings").
const DefaultAlpha = 0.9

// DefaultK is the number of similarity-scaling rounds; the paper finds
// k ≈ 5 sufficient (§III-B).
const DefaultK = 5

// powSafe computes base^exp treating 0^0 as 1 and never producing NaN
// for the non-negative bases that arise from S = W∘W.
func powSafe(base, exp float64) float64 {
	if base == 0 {
		if exp == 0 {
			return 1
		}
		return 0
	}
	return math.Pow(base, exp)
}

// balanceVec computes b = r^α ∘ c^(1−α) elementwise.
func balanceVec(r, c []float64, alpha float64) []float64 {
	b := make([]float64, len(r))
	for i := range r {
		b[i] = powSafe(r[i], alpha) * powSafe(c[i], 1-alpha)
	}
	return b
}

// xyVec computes the Lemma-3 partials x = α(c/r)^(1−α) and
// y = (1−α)(r/c)^α with the zero-row/zero-column subgradient convention
// (a vanished row or column contributes no gradient).
func xyVec(r, c []float64, alpha float64) (x, y []float64) {
	x = make([]float64, len(r))
	y = make([]float64, len(r))
	for i := range r {
		if r[i] > 0 {
			x[i] = alpha * powSafe(c[i]/r[i], 1-alpha)
		}
		if c[i] > 0 {
			y[i] = (1 - alpha) * powSafe(r[i]/c[i], alpha)
		}
	}
	return x, y
}

// sum returns Σv.
func sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Spectral evaluates the paper's bound and its gradient for dense
// weight matrices. It retains the forward tape (S^(j), b^(j)) so
// Backward can replay it.
type Spectral struct {
	K     int
	Alpha float64
	// Workers bounds the goroutine fan-out of the sparse kernels
	// (ValueSparse / ValueGradSparse): 0 selects runtime.GOMAXPROCS,
	// 1 forces the serial path, n > 1 uses at most n workers. Small
	// problems run serially regardless (see MinWork), and for a fixed
	// worker count results are deterministic.
	Workers int
	// MinWork overrides the serial-fallback threshold in scalar-work
	// units (0 = parallel.DefaultMinWork). Tests set 1 to force the
	// parallel path on tiny matrices.
	MinWork int
}

// NewSpectral returns a Spectral evaluator with the paper's defaults
// when k ≤ 0 or alpha is outside [0, 1]. Workers defaults to 0
// (automatic fan-out; small inputs still run serially).
func NewSpectral(k int, alpha float64) *Spectral {
	if k <= 0 {
		k = DefaultK
	}
	if alpha < 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	return &Spectral{K: k, Alpha: alpha}
}

// runner materializes the configured parallelism.
func (sp *Spectral) runner() *parallel.Runner {
	return parallel.NewWithMinWork(sp.Workers, sp.MinWork)
}

// denseTape is the saved forward state for the dense backward pass.
type denseTape struct {
	s []*mat.Dense // S^(0) .. S^(k)
	b [][]float64  // b^(0) .. b^(k)
}

// Value returns δ^(k)(W) (FORWARD of Fig 2) for a dense W.
func (sp *Spectral) Value(w *mat.Dense) float64 {
	v, _ := sp.forwardDense(w)
	return v
}

func (sp *Spectral) forwardDense(w *mat.Dense) (float64, *denseTape) {
	tape := &denseTape{}
	s := w.Square()
	for j := 0; j <= sp.K; j++ {
		r := s.RowSums()
		c := s.ColSums()
		b := balanceVec(r, c, sp.Alpha)
		tape.s = append(tape.s, s)
		tape.b = append(tape.b, b)
		if j == sp.K {
			break
		}
		// S^(j+1) = D⁻¹ S^(j) D, i.e. S[i,l] * b[l]/b[i].
		next := mat.NewDense(s.Rows(), s.Cols())
		inv := make([]float64, len(b))
		for i, bi := range b {
			if bi > 0 {
				inv[i] = 1 / bi
			}
		}
		for i := 0; i < s.Rows(); i++ {
			srow := s.Row(i)
			nrow := next.Row(i)
			ri := inv[i]
			if ri == 0 {
				continue
			}
			for l, v := range srow {
				if v != 0 {
					nrow[l] = v * b[l] * ri
				}
			}
		}
		s = next
	}
	return sum(tape.b[sp.K]), tape
}

// ValueGrad returns δ^(k)(W) and ∇_W δ^(k) (FORWARD + BACKWARD of
// Fig 2). The gradient is supported exactly on the non-zeros of W
// (Lemma 5 masking), so for a sparse W the returned dense matrix is
// sparse too.
func (sp *Spectral) ValueGrad(w *mat.Dense) (float64, *mat.Dense) {
	val, tape := sp.forwardDense(w)
	d := w.Rows()
	// G^(k) = (x^(k)[i] + y^(k)[l]) masked to the support of W.
	rk := tape.s[sp.K].RowSums()
	ck := tape.s[sp.K].ColSums()
	xk, yk := xyVec(rk, ck, sp.Alpha)
	g := mat.NewDense(d, d)
	for i := 0; i < d; i++ {
		wrow := w.Row(i)
		grow := g.Row(i)
		for l, wv := range wrow {
			if wv != 0 {
				grow[l] = xk[i] + yk[l]
			}
		}
	}
	for j := sp.K; j >= 1; j-- {
		sPrev := tape.s[j-1]
		b := tape.b[j-1]
		r := sPrev.RowSums()
		c := sPrev.ColSums()
		x, y := xyVec(r, c, sp.Alpha)
		// z^(j−1)[m] = Σ_i G[i,m]·S[i,m]/b[i]  −  (Σ_l G[m,l]·S[m,l]·b[l]) / b[m]²
		z := make([]float64, d)
		rowAcc := make([]float64, d) // Σ_l G[m,l]·S[m,l]·b[l]
		for i := 0; i < d; i++ {
			grow := g.Row(i)
			srow := sPrev.Row(i)
			for l, gv := range grow {
				if gv == 0 {
					continue
				}
				t := gv * srow[l]
				if t == 0 {
					continue
				}
				if b[i] > 0 {
					z[l] += t / b[i]
				}
				rowAcc[i] += t * b[l]
			}
		}
		for m := 0; m < d; m++ {
			if b[m] > 0 {
				z[m] -= rowAcc[m] / (b[m] * b[m])
			}
		}
		// G^(j−1)[p,q] = (b[q]/b[p])·G^(j)[p,q] + x[p]z[p] + y[q]z[q], masked.
		next := mat.NewDense(d, d)
		for p := 0; p < d; p++ {
			grow := g.Row(p)
			wrow := w.Row(p)
			nrow := next.Row(p)
			var invBp float64
			if b[p] > 0 {
				invBp = 1 / b[p]
			}
			for q, wv := range wrow {
				if wv == 0 {
					continue
				}
				v := x[p]*z[p] + y[q]*z[q]
				if gv := grow[q]; gv != 0 && invBp > 0 {
					v += gv * b[q] * invBp
				}
				nrow[q] = v
			}
		}
		g = next
	}
	// ∇_W δ = 2·G^(0) ∘ W (Eq. 10).
	grad := mat.NewDense(d, d)
	for i := 0; i < d; i++ {
		grow := g.Row(i)
		wrow := w.Row(i)
		out := grad.Row(i)
		for l := range out {
			out[l] = 2 * grow[l] * wrow[l]
		}
	}
	return val, grad
}

// --- Sparse (CSR) form: the LEAST-SP kernel ------------------------------

// sparseTape is the saved forward state for the CSR backward pass; all
// matrices share w's sparsity pattern.
type sparseTape struct {
	s [][]float64 // values of S^(0..k) on the fixed pattern
	b [][]float64
}

// ValueSparse returns δ^(k)(W) for a CSR weight matrix in O(k·nnz).
func (sp *Spectral) ValueSparse(w *sparse.CSR) float64 {
	v, _ := sp.forwardSparse(w)
	return v
}

func (sp *Spectral) forwardSparse(w *sparse.CSR) (float64, *sparseTape) {
	run := sp.runner()
	tape := &sparseTape{}
	s := w.SquareP(run) // shares w's pattern
	for j := 0; j <= sp.K; j++ {
		r := s.RowSumsP(run)
		c := s.ColSumsP(run)
		b := balanceVec(r, c, sp.Alpha)
		tape.s = append(tape.s, append([]float64(nil), s.Val...))
		tape.b = append(tape.b, b)
		if j == sp.K {
			break
		}
		inv := make([]float64, len(b))
		bc := make([]float64, len(b))
		for i, bi := range b {
			if bi > 0 {
				inv[i] = 1 / bi
			}
			bc[i] = bi
		}
		s.ScaleRowsColsP(run, inv, bc)
	}
	return sum(tape.b[sp.K]), tape
}

// ValueGradSparse returns δ^(k)(W) and ∇_W δ^(k) as values on w's
// pattern, in O(k·nnz) time and space — the complexity claim of
// §III-C that makes LEAST-SP scale to 10⁵+ nodes.
func (sp *Spectral) ValueGradSparse(w *sparse.CSR) (float64, []float64) {
	run := sp.runner()
	val, tape := sp.forwardSparse(w)
	d := w.Rows()
	nnz := w.NNZ()
	sk := w.WithValues(tape.s[sp.K])
	xk, yk := xyVec(sk.RowSumsP(run), sk.ColSumsP(run), sp.Alpha)
	g := make([]float64, nnz)
	run.ForWeighted(w.RowPtr, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			for p := w.RowPtr[i]; p < w.RowPtr[i+1]; p++ {
				if w.Val[p] != 0 {
					g[p] = xk[i] + yk[w.ColIdx[p]]
				}
			}
		}
	})
	for j := sp.K; j >= 1; j-- {
		sv := tape.s[j-1]
		b := tape.b[j-1]
		sPrev := w.WithValues(sv)
		x, y := xyVec(sPrev.RowSumsP(run), sPrev.ColSumsP(run), sp.Alpha)
		z := make([]float64, d)
		rowAcc := make([]float64, d)
		// The z accumulation scatters by column, so each worker sums
		// into its own partial vector and the partials reduce in slot
		// order (deterministic for a fixed worker count); rowAcc is
		// row-indexed and row ranges are disjoint, so it is shared.
		if run.Serial(d, nnz) {
			for i := 0; i < d; i++ {
				for p := w.RowPtr[i]; p < w.RowPtr[i+1]; p++ {
					t := g[p] * sv[p]
					if t == 0 {
						continue
					}
					l := w.ColIdx[p]
					if b[i] > 0 {
						z[l] += t / b[i]
					}
					rowAcc[i] += t * b[l]
				}
			}
		} else {
			partials := make([][]float64, run.Workers())
			parts := run.ForWeighted(w.RowPtr, func(lo, hi, wk int) {
				zp := make([]float64, d)
				for i := lo; i < hi; i++ {
					for p := w.RowPtr[i]; p < w.RowPtr[i+1]; p++ {
						t := g[p] * sv[p]
						if t == 0 {
							continue
						}
						l := w.ColIdx[p]
						if b[i] > 0 {
							zp[l] += t / b[i]
						}
						rowAcc[i] += t * b[l]
					}
				}
				partials[wk] = zp
			})
			parallel.SumVecs(z, partials[:parts])
		}
		for m := 0; m < d; m++ {
			if b[m] > 0 {
				z[m] -= rowAcc[m] / (b[m] * b[m])
			}
		}
		next := make([]float64, nnz)
		run.ForWeighted(w.RowPtr, func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				var invBi float64
				if b[i] > 0 {
					invBi = 1 / b[i]
				}
				for p := w.RowPtr[i]; p < w.RowPtr[i+1]; p++ {
					if w.Val[p] == 0 {
						continue
					}
					q := w.ColIdx[p]
					v := x[i]*z[i] + y[q]*z[q]
					if g[p] != 0 && invBi > 0 {
						v += g[p] * b[q] * invBi
					}
					next[p] = v
				}
			}
		})
		g = next
	}
	grad := make([]float64, nnz)
	run.For(nnz, nnz, func(lo, hi, _ int) {
		for p := lo; p < hi; p++ {
			grad[p] = 2 * g[p] * w.Val[p]
		}
	})
	return val, grad
}
