package constraint

import (
	"math"

	"repro/internal/mat"
)

// NotearsH evaluates the original NOTEARS acyclicity function
// h(W) = tr(e^{W∘W}) − d (Eq. 2). O(d³) time, O(d²) space — the cost
// the paper's spectral bound removes.
//
// A non-finite W returns NaN: mat.Expm refuses non-finite input, and a
// NaN h lets a diverging learner break out through its NaN guard
// instead of crashing the serving daemon mid-job.
func NotearsH(w *mat.Dense) float64 {
	if w.HasNaN() {
		return math.NaN()
	}
	s := w.Square()
	return mat.Expm(s).Trace() - float64(w.Rows())
}

// NotearsHGrad returns h(W) and ∇_W h = (e^{W∘W})ᵀ ∘ 2W. Like
// NotearsH, a non-finite W yields h = NaN (with a zero gradient)
// rather than a panic from the matrix exponential.
func NotearsHGrad(w *mat.Dense) (float64, *mat.Dense) {
	d := w.Rows()
	if w.HasNaN() {
		return math.NaN(), mat.NewDense(d, d)
	}
	s := w.Square()
	e := mat.Expm(s)
	h := e.Trace() - float64(d)
	et := e.Transpose()
	grad := mat.NewDense(d, d)
	for i := 0; i < d; i++ {
		erow := et.Row(i)
		wrow := w.Row(i)
		out := grad.Row(i)
		for j := range out {
			out[j] = 2 * erow[j] * wrow[j]
		}
	}
	return h, grad
}

// PolyG evaluates the DAG-GNN polynomial relaxation
// g(W) = tr((I + γ·W∘W)^d) − d (Eq. 3 with the customary γ scaling;
// γ = 1 recovers the paper's statement). Zero iff G(W) is a DAG.
func PolyG(w *mat.Dense, gamma float64) float64 {
	d := w.Rows()
	m := mat.Identity(d)
	m.AxpyInPlace(gamma, w.Square())
	return m.Pow(d).Trace() - float64(d)
}

// PolyGGrad returns g(W) and its gradient
// ∇_W g = d·γ·((I+γS)^{d−1})ᵀ ∘ 2W.
func PolyGGrad(w *mat.Dense, gamma float64) (float64, *mat.Dense) {
	d := w.Rows()
	m := mat.Identity(d)
	m.AxpyInPlace(gamma, w.Square())
	pm1 := m.Pow(d - 1)
	g := pm1.Mul(m).Trace() - float64(d)
	pt := pm1.Transpose()
	grad := mat.NewDense(d, d)
	for i := 0; i < d; i++ {
		prow := pt.Row(i)
		wrow := w.Row(i)
		out := grad.Row(i)
		for j := range out {
			out[j] = 2 * float64(d) * gamma * prow[j] * wrow[j]
		}
	}
	return g, grad
}

// ExactSpectralRadius returns the spectral radius of S = W∘W — the
// quantity δ^(k) upper-bounds — via Gelfand's formula, which cannot
// transiently over-estimate on non-normal matrices the way power
// iteration can (used by the bound-certification tests).
func ExactSpectralRadius(w *mat.Dense) float64 {
	return w.Square().SpectralRadiusGelfand(48)
}
