package constraint

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/mat"
	"repro/internal/randx"
	"repro/internal/sparse"
)

func randW(rng *randx.RNG, d int, density float64) *mat.Dense {
	w := mat.NewDense(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			if i != j && rng.Float64() < density {
				w.Set(i, j, rng.Uniform(-1.5, 1.5))
			}
		}
	}
	return w
}

func TestSpectralZeroOnDAG(t *testing.T) {
	rng := randx.New(7)
	sp := NewSpectral(5, 0.9)
	for trial := 0; trial < 20; trial++ {
		dag := gen.RandomDAG(rng, gen.ER, 12, 2, 0.5, 2)
		// A DAG's S is nilpotent: spectral radius 0; the bound should
		// collapse to (near) zero after enough scaling rounds because
		// every b-vector kills sources/sinks progressively... the bound
		// is not exactly zero in general, but the *exact* radius is.
		if got := ExactSpectralRadius(dag.W); got > 1e-6 {
			t.Fatalf("trial %d: DAG has spectral radius %g", trial, got)
		}
		_ = sp
	}
}

func TestSpectralUpperBoundsRadius(t *testing.T) {
	rng := randx.New(11)
	for _, d := range []int{2, 5, 10, 25} {
		for trial := 0; trial < 10; trial++ {
			w := randW(rng, d, 0.3)
			exact := ExactSpectralRadius(w)
			for _, k := range []int{0, 1, 3, 5, 8} {
				sp := NewSpectral(k, 0.9)
				bound := sp.Value(w)
				if bound+1e-9 < exact {
					t.Fatalf("d=%d k=%d: bound %g < exact radius %g", d, k, bound, exact)
				}
			}
		}
	}
}

func TestSpectralBoundMonotoneInK(t *testing.T) {
	// More similarity-scaling rounds should not make the bound larger
	// in the typical (balanced) regime; we assert the bound stays an
	// upper bound and that k=8 is no worse than k=0 by more than noise.
	rng := randx.New(13)
	for trial := 0; trial < 10; trial++ {
		w := randW(rng, 15, 0.2)
		b0 := NewSpectral(1, 0.9).Value(w)
		b8 := NewSpectral(8, 0.9).Value(w)
		exact := ExactSpectralRadius(w)
		if b8+1e-9 < exact {
			t.Fatalf("k=8 bound %g below exact %g", b8, exact)
		}
		if b8 > b0*10+1 {
			t.Fatalf("k=8 bound %g blew up vs k=1 bound %g", b8, b0)
		}
	}
}

func TestSpectralGradientFiniteDifference(t *testing.T) {
	rng := randx.New(23)
	sp := NewSpectral(4, 0.9)
	for trial := 0; trial < 5; trial++ {
		d := 6
		w := randW(rng, d, 0.5)
		_, grad := sp.ValueGrad(w)
		const h = 1e-6
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				if w.At(i, j) == 0 {
					if grad.At(i, j) != 0 {
						t.Fatalf("gradient off-support at (%d,%d): %g", i, j, grad.At(i, j))
					}
					continue
				}
				orig := w.At(i, j)
				w.Set(i, j, orig+h)
				fp := sp.Value(w)
				w.Set(i, j, orig-h)
				fm := sp.Value(w)
				w.Set(i, j, orig)
				fd := (fp - fm) / (2 * h)
				g := grad.At(i, j)
				if diff := math.Abs(fd - g); diff > 1e-4*math.Max(1, math.Abs(fd)) {
					t.Errorf("trial %d (%d,%d): analytic %g vs finite-diff %g", trial, i, j, g, fd)
				}
			}
		}
	}
}

func TestSparseMatchesDense(t *testing.T) {
	rng := randx.New(31)
	sp := NewSpectral(5, 0.9)
	for trial := 0; trial < 10; trial++ {
		d := 12
		w := randW(rng, d, 0.25)
		wc := sparse.FromDense(w, 0)
		dv, dg := sp.ValueGrad(w)
		sv, sg := sp.ValueGradSparse(wc)
		if math.Abs(dv-sv) > 1e-9*math.Max(1, math.Abs(dv)) {
			t.Fatalf("value mismatch dense %g vs sparse %g", dv, sv)
		}
		sgd := wc.WithValues(sg).ToDense()
		if !dg.EqualApprox(sgd, 1e-9) {
			t.Fatalf("gradient mismatch between dense and sparse paths")
		}
	}
}

func TestSparseGradientFiniteDifference(t *testing.T) {
	rng := randx.New(41)
	sp := NewSpectral(3, 0.9)
	d := 8
	w := randW(rng, d, 0.3)
	wc := sparse.FromDense(w, 0)
	_, grad := sp.ValueGradSparse(wc)
	const h = 1e-6
	for p := 0; p < wc.NNZ(); p++ {
		orig := wc.Val[p]
		wc.Val[p] = orig + h
		fp := sp.ValueSparse(wc)
		wc.Val[p] = orig - h
		fm := sp.ValueSparse(wc)
		wc.Val[p] = orig
		fd := (fp - fm) / (2 * h)
		if diff := math.Abs(fd - grad[p]); diff > 1e-4*math.Max(1, math.Abs(fd)) {
			t.Errorf("entry %d: analytic %g vs finite-diff %g", p, grad[p], fd)
		}
	}
}

func TestNotearsHZeroOnDAGPositiveOnCycle(t *testing.T) {
	rng := randx.New(3)
	dag := gen.RandomDAG(rng, gen.ER, 10, 2, 0.5, 2)
	if h := NotearsH(dag.W); math.Abs(h) > 1e-8 {
		t.Fatalf("h(DAG) = %g, want 0", h)
	}
	// Add a 2-cycle.
	w := dag.W.Clone()
	w.Set(0, 1, 0.8)
	w.Set(1, 0, 0.9)
	if h := NotearsH(w); h <= 0 {
		t.Fatalf("h(cyclic) = %g, want > 0", h)
	}
	if g := PolyG(w, 1.0/10); g <= 0 {
		t.Fatalf("g(cyclic) = %g, want > 0", g)
	}
	if g := PolyG(dag.W, 1.0/10); math.Abs(g) > 1e-6 {
		t.Fatalf("g(DAG) = %g, want 0", g)
	}
}

func TestNotearsGradientFiniteDifference(t *testing.T) {
	rng := randx.New(5)
	d := 6
	w := randW(rng, d, 0.5)
	_, grad := NotearsHGrad(w)
	const h = 1e-6
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			orig := w.At(i, j)
			w.Set(i, j, orig+h)
			fp := NotearsH(w)
			w.Set(i, j, orig-h)
			fm := NotearsH(w)
			w.Set(i, j, orig)
			fd := (fp - fm) / (2 * h)
			if diff := math.Abs(fd - grad.At(i, j)); diff > 1e-4*math.Max(1, math.Abs(fd)) {
				t.Errorf("(%d,%d): analytic %g vs finite-diff %g", i, j, grad.At(i, j), fd)
			}
		}
	}
}

func TestPolyGradientFiniteDifference(t *testing.T) {
	rng := randx.New(9)
	d := 6
	gamma := 1.0 / float64(d)
	w := randW(rng, d, 0.5)
	_, grad := PolyGGrad(w, gamma)
	const h = 1e-6
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			orig := w.At(i, j)
			w.Set(i, j, orig+h)
			fp := PolyG(w, gamma)
			w.Set(i, j, orig-h)
			fm := PolyG(w, gamma)
			w.Set(i, j, orig)
			fd := (fp - fm) / (2 * h)
			if diff := math.Abs(fd - grad.At(i, j)); diff > 1e-4*math.Max(1, math.Abs(fd)) {
				t.Errorf("(%d,%d): analytic %g vs finite-diff %g", i, j, grad.At(i, j), fd)
			}
		}
	}
}

func TestSpectralBoundPropertyQuick(t *testing.T) {
	// Property: for arbitrary small matrices, δ^(k)(W) ≥ ρ(W∘W) and
	// δ^(k) ≥ 0 always.
	sp := NewSpectral(5, 0.9)
	f := func(vals [16]float64) bool {
		w := mat.NewDense(4, 4)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				v := math.Mod(vals[i*4+j], 3)
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				if i != j {
					w.Set(i, j, v)
				}
			}
		}
		bound := sp.Value(w)
		if bound < 0 || math.IsNaN(bound) {
			return false
		}
		exact := ExactSpectralRadius(w)
		return bound+1e-7 >= exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroMatrixAndEmpty(t *testing.T) {
	sp := NewSpectral(5, 0.9)
	w := mat.NewDense(5, 5)
	if v := sp.Value(w); v != 0 {
		t.Fatalf("δ(0) = %g, want 0", v)
	}
	v, g := sp.ValueGrad(w)
	if v != 0 || g.MaxAbs() != 0 {
		t.Fatalf("δ(0)=%g grad max=%g, want zeros", v, g.MaxAbs())
	}
	if h := NotearsH(w); math.Abs(h) > 1e-10 {
		t.Fatalf("h(0) = %g", h)
	}
}

func TestLemma2Consistency(t *testing.T) {
	// Qualitative form of Lemma 2: as δ^(k) shrinks toward 0 on a
	// sequence of matrices, h must shrink too.
	rng := randx.New(77)
	sp := NewSpectral(5, 0.9)
	w := randW(rng, 8, 0.4)
	prevH := math.Inf(1)
	for _, scale := range []float64{1, 0.5, 0.25, 0.1, 0.02} {
		ws := w.Scale(scale)
		delta := sp.Value(ws)
		h := NotearsH(ws)
		if delta < 1e-3 && h > 0.1 {
			t.Fatalf("scale %g: δ=%g small but h=%g large", scale, delta, h)
		}
		if h > prevH+1e-9 {
			t.Fatalf("h not decreasing along shrinking sequence")
		}
		prevH = h
	}
}

// TestNotearsHNonFiniteW: a diverging iterate (NaN/Inf entries) must
// surface as h = NaN — not a panic from the matrix exponential — so
// learners break out through their NaN guards and a serving daemon
// survives the job.
func TestNotearsHNonFiniteW(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		w := mat.NewDense(4, 4)
		w.Set(0, 1, 0.5)
		w.Set(2, 3, bad)
		if h := NotearsH(w); !math.IsNaN(h) {
			t.Fatalf("NotearsH with entry %g = %g, want NaN", bad, h)
		}
		h, grad := NotearsHGrad(w)
		if !math.IsNaN(h) {
			t.Fatalf("NotearsHGrad h with entry %g = %g, want NaN", bad, h)
		}
		for i, v := range grad.Data() {
			if v != 0 {
				t.Fatalf("NotearsHGrad grad[%d] = %g, want 0", i, v)
			}
		}
	}
}
