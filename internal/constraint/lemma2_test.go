package constraint

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/randx"
)

// TestLemma2QuantitativeH checks the paper's Lemma 2 in its h-form:
// if δ^(k)(S) ≤ ln(ε/d + 1) then h(S) ≤ ε. We verify the implication
// (not its converse) over random matrices scaled to satisfy the
// antecedent.
func TestLemma2QuantitativeH(t *testing.T) {
	rng := randx.New(101)
	sp := NewSpectral(5, 0.9)
	for trial := 0; trial < 30; trial++ {
		d := 4 + rng.Intn(8)
		w := mat.NewDense(d, d)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				if i != j && rng.Float64() < 0.4 {
					w.Set(i, j, rng.Uniform(-1, 1))
				}
			}
		}
		for _, eps := range []float64{1e-1, 1e-2, 1e-3} {
			bound := math.Log(eps/float64(d) + 1)
			// Scale W down until the antecedent δ^(k) ≤ ln(ε/d + 1)
			// holds, then the consequent h ≤ ε must hold.
			ws := w.Clone()
			for iter := 0; iter < 60 && sp.Value(ws) > bound; iter++ {
				ws.ScaleInPlace(0.7)
			}
			if sp.Value(ws) > bound {
				continue // could not reach the antecedent; skip
			}
			if h := NotearsH(ws); h > eps*(1+1e-9) {
				t.Fatalf("Lemma 2 violated: δ=%g ≤ %g but h=%g > ε=%g (d=%d)",
					sp.Value(ws), bound, h, eps, d)
			}
		}
	}
}

// TestLemma2QuantitativeG checks the g-form: δ^(k) ≤ (1/α)·log_d(ε/d²)
// ⇒ g ≤ ε is stated for the normalized regime; here we verify the
// qualitative version the algorithm relies on — driving δ to zero
// drives g to zero monotonically along a scaling path.
func TestLemma2QuantitativeG(t *testing.T) {
	rng := randx.New(103)
	sp := NewSpectral(5, 0.9)
	d := 8
	w := mat.NewDense(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			if i != j && rng.Float64() < 0.5 {
				w.Set(i, j, rng.Uniform(-1, 1))
			}
		}
	}
	gamma := 1.0 / float64(d)
	prevG := math.Inf(1)
	prevD := math.Inf(1)
	for scale := 1.0; scale > 1e-4; scale *= 0.5 {
		ws := w.Scale(scale)
		dv := sp.Value(ws)
		gv := PolyG(ws, gamma)
		if dv > prevD+1e-12 || gv > prevG+1e-12 {
			t.Fatalf("δ or g not monotone along scaling path: δ %g→%g g %g→%g",
				prevD, dv, prevG, gv)
		}
		prevD, prevG = dv, gv
	}
	if prevG > 1e-6 {
		t.Fatalf("g did not vanish with δ: g=%g δ=%g", prevG, prevD)
	}
}

// TestBoundTightensWithK verifies §III-B's claim that the similarity
// iteration tightens the bound toward the exact radius: for matrices
// with strongly unbalanced row/column sums, δ^(5) should be no looser
// than δ^(0) and closer to ρ.
func TestBoundTightensWithK(t *testing.T) {
	rng := randx.New(107)
	improved := 0
	trials := 25
	for trial := 0; trial < trials; trial++ {
		d := 10
		w := mat.NewDense(d, d)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				if i != j && rng.Float64() < 0.3 {
					// Unbalanced magnitudes exercise the equilibration.
					w.Set(i, j, rng.Uniform(0.01, 1)*math.Pow(10, float64(i%3)-1))
				}
			}
		}
		exact := ExactSpectralRadius(w)
		b0 := NewSpectral(1, 0.9).Value(w)
		b5 := NewSpectral(5, 0.9).Value(w)
		if b5 < exact-1e-9 {
			t.Fatalf("δ^(5)=%g below exact ρ=%g", b5, exact)
		}
		if b5 <= b0+1e-9 {
			improved++
		}
	}
	if improved < trials/2 {
		t.Fatalf("k=5 tightened the bound in only %d/%d trials", improved, trials)
	}
}
