package constraint

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/randx"
	"repro/internal/sparse"
)

// spectralAt builds an evaluator with the given worker count and the
// serial-fallback threshold disabled, so tiny adversarial matrices
// still exercise the parallel code paths.
func spectralAt(workers int) *Spectral {
	sp := NewSpectral(DefaultK, DefaultAlpha)
	sp.Workers = workers
	sp.MinWork = 1
	return sp
}

func spectralCases(t *testing.T) map[string]*sparse.CSR {
	t.Helper()
	rng := randx.New(3)
	cases := map[string]*sparse.CSR{
		"empty-4x4":  sparse.NewCSR(4, 4, nil),
		"d=1":        sparse.NewCSR(1, 1, nil),
		"two-cycle":  sparse.NewCSR(2, 2, []sparse.Coord{{Row: 0, Col: 1, Val: 0.8}, {Row: 1, Col: 0, Val: -0.6}}),
		"single-row": sparse.NewCSR(8, 8, []sparse.Coord{{Row: 2, Col: 0, Val: 1}, {Row: 2, Col: 4, Val: -1.5}, {Row: 2, Col: 7, Val: 0.25}}),
	}
	var coords []sparse.Coord
	d := 150
	for i := 0; i < d; i++ {
		for k := 0; k < 5; k++ {
			j := rng.Intn(d)
			if j != i {
				coords = append(coords, sparse.Coord{Row: i, Col: j, Val: rng.Uniform(-1, 1)})
			}
		}
	}
	cases["random-150"] = sparse.NewCSR(d, d, coords)
	return cases
}

// relDiff is |a−b| scaled by max(1, |a|, |b|).
func relDiff(a, b float64) float64 {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) / scale
}

// TestValueGradSparseAcrossWorkerCounts asserts that the parallel
// spectral forward/backward agrees with the serial evaluator at every
// worker count in {1, 2, NumCPU, NumCPU+3} on adversarial shapes. The
// column-sum and z reductions reorder float additions, so agreement is
// tolerance-bounded rather than bit-for-bit; 1e-9 relative is orders
// of magnitude tighter than the optimizer's own tolerances.
func TestValueGradSparseAcrossWorkerCounts(t *testing.T) {
	const tol = 1e-9
	for name, w := range spectralCases(t) {
		t.Run(name, func(t *testing.T) {
			serial := NewSpectral(DefaultK, DefaultAlpha)
			serial.Workers = 1
			wantVal, wantGrad := serial.ValueGradSparse(w)
			for _, wk := range []int{1, 2, runtime.NumCPU(), runtime.NumCPU() + 3} {
				sp := spectralAt(wk)
				val, grad := sp.ValueGradSparse(w)
				if relDiff(val, wantVal) > tol {
					t.Errorf("workers=%d: δ = %g, want %g", wk, val, wantVal)
				}
				if len(grad) != len(wantGrad) {
					t.Fatalf("workers=%d: grad length %d, want %d", wk, len(grad), len(wantGrad))
				}
				for p := range grad {
					if relDiff(grad[p], wantGrad[p]) > tol {
						t.Errorf("workers=%d: grad[%d] = %g, want %g", wk, p, grad[p], wantGrad[p])
						break
					}
				}
				if v := sp.ValueSparse(w); relDiff(v, wantVal) > tol {
					t.Errorf("workers=%d: ValueSparse = %g, want %g", wk, v, wantVal)
				}
			}
		})
	}
}

// TestParallelSparseStillMatchesDense ties the parallel path back to
// the independently-implemented dense evaluator: for a matrix on a
// full support, δ and the gradient must agree between dense and
// parallel-sparse (this is the invariant the existing serial tests
// rely on, re-checked through the new backend).
func TestParallelSparseStillMatchesDense(t *testing.T) {
	rng := randx.New(5)
	d := 30
	var coords []sparse.Coord
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			if i != j && rng.Float64() < 0.4 {
				coords = append(coords, sparse.Coord{Row: i, Col: j, Val: rng.Uniform(-1, 1)})
			}
		}
	}
	w := sparse.NewCSR(d, d, coords)
	wd := w.ToDense()
	dense := NewSpectral(DefaultK, DefaultAlpha)
	wantVal, wantGrad := dense.ValueGrad(wd)
	for _, wk := range []int{2, runtime.NumCPU() + 1} {
		sp := spectralAt(wk)
		val, grad := sp.ValueGradSparse(w)
		if relDiff(val, wantVal) > 1e-9 {
			t.Errorf("workers=%d: δ = %g, dense says %g", wk, val, wantVal)
		}
		gs := w.WithValues(grad).ToDense()
		if !gs.EqualApprox(wantGrad, 1e-9) {
			t.Errorf("workers=%d: sparse gradient diverges from dense", wk)
		}
	}
}
