package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicCounter enforces the DESIGN.md §10 lock-free counter
// contract: a struct whose fields are all sync/atomic types (the
// serve.Metrics exposition struct, leastload's tallies ledger) is a
// counter struct, and its fields may only be touched through the
// atomic method set. A plain read or write — easy to introduce in a
// test helper or a scrape path — is a torn access the race detector
// only catches when the schedule cooperates.
//
// Detection is structural (every field an atomic type, at least two
// fields), so new counter structs are covered the moment they are
// declared, with no annotation to forget. Mixed structs like
// journal.Writer (atomic stats plus mutex-guarded fields) are
// deliberately out of scope: their plain fields are lock-protected.
var AtomicCounter = &Analyzer{
	Name: "atomiccounter",
	Doc:  "atomic counter struct fields may only be touched via sync/atomic calls (DESIGN.md §10)",
	Run:  runAtomicCounter,
}

// atomicMethods is the sync/atomic value-type method set.
var atomicMethods = map[string]bool{
	"Load": true, "Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "Or": true, "And": true,
}

func runAtomicCounter(pass *Pass) {
	// Pass 1: find counter structs declared in this package and index
	// their field objects.
	counterField := make(map[*types.Var]string) // field → struct name
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok || st.NumFields() < 2 {
			continue
		}
		all := true
		for i := 0; i < st.NumFields(); i++ {
			if !isAtomicType(st.Field(i).Type()) {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			counterField[st.Field(i)] = name
		}
	}
	if len(counterField) == 0 {
		return
	}

	// Pass 2: every selector resolving to a counter field must be the
	// receiver of an atomic method call (or have its address taken,
	// which is how a field is handed to a helper expecting *atomic.T).
	for _, f := range pass.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := pass.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			fv, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			structName, isCounter := counterField[fv]
			if !isCounter {
				return true
			}
			if atomicUseOK(parents, sel) {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"field %s.%s accessed without a sync/atomic call; counters are lock-free and must never be read or written plainly (DESIGN.md §10)",
				structName, fv.Name())
			return true
		})
	}
}

// isAtomicType reports whether t is one of sync/atomic's value types.
func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		// atomic.Pointer[T] instantiates to *types.Named too; anything
		// else (basic ints, pointers, embedded structs) is not atomic.
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// atomicUseOK reports whether the counter-field selector appears in an
// allowed position: selecting an atomic method off the field (called
// directly, or bound as a method value like `met.JobsDone.Load`), or
// operand of an address-of (handing the field to a helper as *atomic.T).
func atomicUseOK(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	switch p := parents[sel].(type) {
	case *ast.SelectorExpr:
		return p.X == sel && atomicMethods[p.Sel.Name]
	case *ast.UnaryExpr:
		return p.Op.String() == "&"
	}
	return false
}

// buildParents maps every node in f to its parent.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
