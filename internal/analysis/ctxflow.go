package analysis

import (
	"go/ast"
	"go/token"
)

// CtxFlow enforces the DESIGN.md §4–§5 cancellation contract: serving
// and monitoring paths must call the context-threading learner
// variants, so a drain, a client disconnect or a monitoring-cycle
// timeout lands within one inner iteration instead of waiting out the
// full augmented-Lagrangian schedule.
//
// Two rules:
//
//  1. everywhere (except internal/experiments, the offline paper
//     artifacts): no calls to functions whose doc comment carries a
//     "Deprecated:" marker — the module's deprecated surface is
//     exactly its non-ctx wrapper set (Spec.Learn, least.Learn,
//     least.Baseline, Manager.Submit, serve.CacheKey, ...). A
//     deprecated function may call another deprecated function (the
//     wrappers delegate to each other), and _test files keep the
//     wrappers' historical behavior pinned, so both are exempt.
//
//  2. in the serving and monitoring scopes (internal/serve,
//     internal/booking, cmd/..., examples/...): no calls to the
//     non-ctx core/notears entry points (core.Dense, core.Sparse,
//     core.DenseStats, core.SparseWithSupport, notears.Run,
//     notears.RunStats) — those are offline conveniences whose Ctx
//     variants carry the cancellation and progress contract.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "serving paths must call the Ctx learner variants, never deprecated non-ctx wrappers (DESIGN.md §4)",
	Applies: func(pkgPath string) bool {
		return !pathContainsSegment(pkgPath, "experiments")
	},
	Run: runCtxFlow,
}

// nonCtxEntry maps the defining package path suffix to the entry-point
// function names rule 2 bans in serving scopes.
var nonCtxEntry = map[string]map[string]bool{
	"internal/core": {
		"Dense": true, "Sparse": true,
		"DenseStats": true, "SparseWithSupport": true,
	},
	"internal/notears": {
		"Run": true, "RunStats": true,
	},
}

// servingScope reports whether pkgPath is a serving or monitoring
// package, where rule 2 applies.
func servingScope(pkgPath string) bool {
	return pathEndsWith(pkgPath, "internal/serve") ||
		pathEndsWith(pkgPath, "internal/booking") ||
		pathContainsSegment(pkgPath, "cmd") ||
		pathContainsSegment(pkgPath, "examples")
}

func runCtxFlow(pass *Pass) {
	serving := servingScope(pass.Pkg.Path())
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			key := FuncKey(fn)
			if pass.Deprecated[key] && !inDeprecatedFunc(pass, call.Pos()) {
				pass.Reportf(call.Pos(),
					"call to deprecated %s; use the ctx-threading replacement named in its doc comment (DESIGN.md §4)",
					shortKey(key))
			}
			if serving && fn.Pkg().Path() != pass.Pkg.Path() {
				for suffix, names := range nonCtxEntry {
					if pathEndsWith(fn.Pkg().Path(), suffix) && names[fn.Name()] {
						pass.Reportf(call.Pos(),
							"serving path calls non-ctx %s.%s; call %sCtx so the learn stays cancellable (DESIGN.md §4)",
							fn.Pkg().Name(), fn.Name(), fn.Name())
					}
				}
			}
			return true
		})
	}
}

// inDeprecatedFunc reports whether pos lies inside a function that is
// itself deprecated — the wrappers delegate to one another.
func inDeprecatedFunc(pass *Pass, pos token.Pos) bool {
	fd := enclosingFuncDecl(pass.Files, pos)
	return fd != nil && IsDeprecated(fd.Doc)
}

// shortKey trims the package path of a FuncKey down to its base
// segment for readable messages.
func shortKey(key string) string {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '/' {
			return key[i+1:]
		}
	}
	return key
}
