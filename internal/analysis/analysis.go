// Package analysis houses leastvet's project-specific analyzers: the
// mechanical enforcement of the contracts DESIGN.md states in prose.
// Each analyzer inspects one type-checked package and reports
// diagnostics; cmd/leastvet drives the suite over the whole module and
// DESIGN.md §12 catalogues what each one guards (and what it cannot
// see). The package is dependency-free by design — stdlib go/ast and
// go/types only, in the mold of cmd/apidiff.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is one finding: a position and a human-readable message,
// tagged with the analyzer that raised it.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer run. The
// driver fills the shared cross-package context (the deprecated-symbol
// table, the frozen-wire allowlist and manifest); the fixture harness
// fills the same fields from its miniature module trees, so analyzers
// never reach outside the Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Deprecated maps qualified function keys (see FuncKey) to true for
	// every function or method in the module whose doc comment carries a
	// "Deprecated:" marker. Filled by the driver's pre-scan; consumed by
	// ctxflow.
	Deprecated map[string]bool

	// WireTypes is the frozen-wire allowlist: package import path →
	// struct type names whose shape is pinned. WireManifest holds the
	// committed shape signatures keyed "pkgpath.TypeName"; WireComputed,
	// when non-nil, receives the signatures this pass computes (the
	// driver aggregates it to regenerate the manifest).
	WireTypes    map[string][]string
	WireManifest map[string]string
	WireComputed map[string]string

	report func(Diagnostic)
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check. Applies gates it by import path (nil
// means every package); Run inspects one package.
type Analyzer struct {
	Name    string
	Doc     string
	Applies func(pkgPath string) bool
	Run     func(*Pass)
}

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		AtomicCounter,
		TypedErr,
		CtxFlow,
		PoolAlias,
		WireShape,
	}
}

// RunAnalyzer applies one analyzer to one package and returns its
// diagnostics. The Applies gate is the caller's job (the driver skips
// out-of-scope packages; the fixture harness runs Run directly).
func RunAnalyzer(a *Analyzer, pass *Pass) []Diagnostic {
	var out []Diagnostic
	pass.Analyzer = a
	pass.report = func(d Diagnostic) { out = append(out, d) }
	a.Run(pass)
	return out
}

// NewInfo returns a types.Info with every map an analyzer consumes.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// FuncKey qualifies a function object for the Deprecated table:
// "pkgpath.Name" for package functions, "pkgpath.(Recv).Name" for
// methods (pointer receivers are normalized away).
func FuncKey(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s.(%s).%s", fn.Pkg().Path(), n.Obj().Name(), fn.Name())
		}
	}
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// DeclKey is FuncKey computed from a declaration before type-checking
// finishes — used by the driver's deprecation pre-scan.
func DeclKey(pkgPath string, d *ast.FuncDecl) string {
	if d.Recv != nil && len(d.Recv.List) > 0 {
		t := d.Recv.List[0].Type
		if s, ok := t.(*ast.StarExpr); ok {
			t = s.X
		}
		// Generic receivers ([T any]) do not occur in this module; the
		// plain-ident case is the whole surface.
		if id, ok := t.(*ast.Ident); ok {
			return fmt.Sprintf("%s.(%s).%s", pkgPath, id.Name, d.Name.Name)
		}
	}
	return pkgPath + "." + d.Name.Name
}

// IsDeprecated reports whether a doc comment carries the conventional
// "Deprecated:" marker (same rule as cmd/apidiff).
func IsDeprecated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		line := strings.TrimSpace(strings.TrimLeft(c.Text, "/ \t"))
		if strings.HasPrefix(line, "Deprecated:") {
			return true
		}
	}
	return false
}

// isTestFile reports whether pos lies in a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// pathEndsWith reports whether import path p is exactly suffix or ends
// with "/"+suffix — so "repro/internal/mat" and a fixture's
// "internal/mat" both match suffix "internal/mat".
func pathEndsWith(p, suffix string) bool {
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}

// pathContainsSegment reports whether the "/"-separated path contains
// seg as a whole segment.
func pathContainsSegment(p, seg string) bool {
	for _, s := range strings.Split(p, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// calleeFunc resolves the *types.Func a call expression invokes, or
// nil for calls through function values, conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// enclosingFuncDecl returns the FuncDecl whose body spans pos, if any.
func enclosingFuncDecl(files []*ast.File, pos token.Pos) *ast.FuncDecl {
	for _, f := range files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}

// rootIdentObj walks selector/index chains to the left-most identifier
// and resolves its object: m.met.HTTPRequests → object of m;
// buf[i] → object of buf. Returns nil when the root is not a plain
// identifier (calls, literals, ...).
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return o
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside [lo, hi].
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	return obj != nil && obj.Pos() != token.NoPos && lo <= obj.Pos() && obj.Pos() <= hi
}

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isFloatSlice reports whether t is a []float32/[]float64.
func isFloatSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isFloat(s.Elem())
}
