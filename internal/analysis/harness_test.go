package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The fixture harness runs one analyzer over a miniature package tree
// under testdata/src/<importpath>/ and checks its diagnostics against
// `// want "regex"` (or backquoted) comments on the offending lines —
// the analysistest convention, rebuilt on the stdlib so the module
// stays dependency-free. Fixture-local imports resolve to sibling
// fixture packages; everything else comes from the source importer.

func init() {
	// The source importer type-checks stdlib from GOROOT sources; keep
	// cgo out of the picture (same as cmd/leastvet).
	build.Default.CgoEnabled = false
}

// A want comment holds one or more expectation regexes, backquoted or
// double-quoted: // want `first` `second`
var (
	wantLineRe = regexp.MustCompile(`// want (.+)`)
	wantTokRe  = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

// fixtureImporter resolves fixture-local import paths by directory and
// records "Deprecated:" markers from every package it loads.
type fixtureImporter struct {
	fset       *token.FileSet
	root       string
	std        types.Importer
	cache      map[string]*types.Package
	deprecated map[string]bool
}

func newFixtureImporter(t *testing.T, fset *token.FileSet) *fixtureImporter {
	t.Helper()
	return &fixtureImporter{
		fset:       fset,
		root:       filepath.Join("testdata", "src"),
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      make(map[string]*types.Package),
		deprecated: make(map[string]bool),
	}
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(im.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return im.std.Import(path)
	}
	if pkg, ok := im.cache[path]; ok {
		return pkg, nil
	}
	files, err := im.parseFixtureDir(path, dir)
	if err != nil {
		return nil, err
	}
	cfg := types.Config{Importer: im}
	pkg, err := cfg.Check(path, im.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("fixture %s: %w", path, err)
	}
	im.cache[path] = pkg
	return pkg, nil
}

func (im *fixtureImporter) parseFixtureDir(path, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && IsDeprecated(fd.Doc) {
				im.deprecated[DeclKey(path, fd)] = true
			}
		}
	}
	return files, nil
}

// runFixture type-checks testdata/src/<path>, runs a over it, and
// matches diagnostics against the fixture's want comments. mutate, if
// non-nil, adjusts the Pass before the run (the wireshape fixture
// injects its allowlist and golden manifest).
func runFixture(t *testing.T, a *Analyzer, path string, mutate func(*Pass)) {
	t.Helper()
	fset := token.NewFileSet()
	im := newFixtureImporter(t, fset)
	dir := filepath.Join(im.root, filepath.FromSlash(path))
	files, err := im.parseFixtureDir(path, dir)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	cfg := types.Config{Importer: im}
	pkg, err := cfg.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("fixture %s does not type-check: %v", path, err)
	}
	pass := &Pass{
		Fset:         fset,
		Files:        files,
		Pkg:          pkg,
		Info:         info,
		Deprecated:   im.deprecated,
		WireComputed: make(map[string]string),
	}
	if mutate != nil {
		mutate(pass)
	}
	diags := RunAnalyzer(a, pass)

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" → expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				line := wantLineRe.FindStringSubmatch(c.Text)
				if line == nil {
					continue
				}
				for _, m := range wantTokRe.FindAllStringSubmatch(line[1], -1) {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), expr, err)
					}
					key := posKey(fset.Position(c.Pos()))
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		key := posKey(d.Pos)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", key, d.Analyzer, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}

func posKey(p token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, Determinism, "internal/mat", nil)
}

func TestAtomicCounterFixture(t *testing.T) {
	runFixture(t, AtomicCounter, "atomiccounter", nil)
}

func TestTypedErrFixture(t *testing.T) {
	runFixture(t, TypedErr, "internal/serve", nil)
}

func TestCtxFlowFixture(t *testing.T) {
	runFixture(t, CtxFlow, "examples/app", nil)
}

func TestPoolAliasFixture(t *testing.T) {
	runFixture(t, PoolAlias, "poolalias", nil)
}

func TestWireShapeFixture(t *testing.T) {
	manifest := make(map[string]string)
	b, err := os.ReadFile(filepath.Join("testdata", "src", "wireshape", "wireshape.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &manifest); err != nil {
		t.Fatal(err)
	}
	runFixture(t, WireShape, "wireshape", func(pass *Pass) {
		pass.WireTypes = map[string][]string{
			"wireshape": {"Status", "Stable", "Fresh", "Gone"},
		}
		pass.WireManifest = manifest
	})
}

// TestAppliesGates pins each analyzer's package scoping: the gates are
// data, and a typo there silently turns a check off.
func TestAppliesGates(t *testing.T) {
	cases := []struct {
		a    *Analyzer
		path string
		want bool
	}{
		{Determinism, "repro/internal/mat", true},
		{Determinism, "repro/internal/sparse", true},
		{Determinism, "repro/internal/loss", true},
		{Determinism, "repro/internal/parallel", true},
		{Determinism, "repro/internal/serve", false},
		{Determinism, "repro", false},
		{TypedErr, "repro/internal/serve", true},
		{TypedErr, "repro/internal/coord", true},
		{TypedErr, "repro/internal/core", false},
		{CtxFlow, "repro/internal/experiments", false},
		{CtxFlow, "repro/cmd/leastd", true},
		{CtxFlow, "repro/internal/serve", true},
		{WireShape, "repro/internal/serve", true},
		{WireShape, "repro/internal/journal", true},
		{WireShape, "repro/internal/coord", true},
		{WireShape, "repro/internal/mat", false},
	}
	for _, c := range cases {
		if got := c.a.Applies(c.path); got != c.want {
			t.Errorf("%s.Applies(%q) = %v, want %v", c.a.Name, c.path, got, c.want)
		}
	}
	for _, a := range All() {
		if a == AtomicCounter || a == PoolAlias {
			if a.Applies != nil {
				t.Errorf("%s should apply everywhere (nil Applies)", a.Name)
			}
		}
	}
}

// TestServingScope pins ctxflow's rule-2 scope.
func TestServingScope(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/serve":     true,
		"repro/internal/booking":   true,
		"repro/cmd/leastd":         true,
		"repro/examples/genes":     true,
		"repro/internal/movielens": false, // offline catalog artifact (DESIGN.md §12 blind spot)
		"repro/internal/core":      false,
	} {
		if got := servingScope(path); got != want {
			t.Errorf("servingScope(%q) = %v, want %v", path, got, want)
		}
	}
}
