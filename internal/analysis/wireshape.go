package analysis

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// WireShape freezes the serialized surface of the wire structs: the
// HTTP response bodies in internal/serve and the journal record in
// internal/journal. Recovery replays journals written by an older
// binary and clients pin themselves to response shapes, so a renamed
// json tag or a dropped field is a silent wire break. The analyzer
// computes a canonical signature for each allowlisted struct (field
// name, json tag, type) and compares it against the checked-in golden
// manifest (api/wireshape.json); any drift fails the build until the
// manifest is regenerated with `leastvet -write-wire` — making the
// wire change an explicit, reviewable diff.
var WireShape = &Analyzer{
	Name: "wireshape",
	Doc:  "frozen wire structs must match the golden manifest in api/wireshape.json (DESIGN.md §7)",
	Applies: func(pkgPath string) bool {
		for suffix := range DefaultWireTypes {
			if pathEndsWith(pkgPath, suffix) {
				return true
			}
		}
		return false
	},
	Run: runWireShape,
}

// DefaultWireTypes is the frozen-wire allowlist: package path suffix →
// struct names whose serialized shape is pinned by the manifest.
var DefaultWireTypes = map[string][]string{
	"internal/serve": {
		// HTTP response/request bodies (DESIGN.md §7).
		"Status", "TaskStatus", "BatchStatus", "DatasetInfo",
		"SubmitRequest", "JobOptions", "StatusV2", "EdgeConfidence",
		// The trusted peer surface the coordinator drives (DESIGN.md §13).
		"CacheDigest", "StolenTask", "StealRequest", "StealResponse",
		// Journal payloads recovery replays (DESIGN.md §11).
		"jobRecord", "resultRecord", "batchRecord", "batchRowRecord",
		"jobTerminalRecord", "batchTerminalRecord", "datasetRecord",
		"datasetDropRecord", "cacheEntryRecord", "cacheEvictRecord",
	},
	"internal/journal": {
		"Record",
	},
	"internal/coord": {
		// Cluster status bodies (DESIGN.md §13).
		"NodeStatus", "ClusterStatus",
		// Membership journal payloads a restarted coordinator replays.
		"MemberRecord", "EpochRecord",
	},
}

func runWireShape(pass *Pass) {
	wireTypes := pass.WireTypes
	if wireTypes == nil {
		wireTypes = DefaultWireTypes
	}
	var names []string
	for suffix, ns := range wireTypes {
		if pathEndsWith(pass.Pkg.Path(), suffix) {
			names = ns
		}
	}
	scope := pass.Pkg.Scope()
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			pass.Reportf(pass.Files[0].Package,
				"wire struct %s is in the frozen allowlist but no longer declared in %s; removing a wire type needs a manifest change too",
				name, pass.Pkg.Path())
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			pass.Reportf(tn.Pos(), "wire type %s is not a struct; the frozen-wire contract covers serialized structs only", name)
			continue
		}
		key := pass.Pkg.Path() + "." + name
		sig := WireSignature(st)
		if pass.WireComputed != nil {
			pass.WireComputed[key] = sig
		}
		if pass.WireManifest == nil {
			continue // no manifest loaded (fixture runs): record only
		}
		want, ok := pass.WireManifest[key]
		if !ok {
			pass.Reportf(tn.Pos(),
				"wire struct %s missing from the golden manifest; run `leastvet -write-wire` and review the diff", name)
			continue
		}
		if want != sig {
			pass.Reportf(tn.Pos(),
				"wire struct %s drifted from the golden manifest (old clients and journals break); review the change and run `leastvet -write-wire`:\n%s",
				name, diffSignatures(want, sig))
		}
	}
}

// WireSignature renders a struct's serialized surface as one canonical
// string: one `name json:"tag" type` line per field, in declaration
// order (order matters — recovery decodes positional test fixtures and
// humans diff the manifest).
func WireSignature(st *types.Struct) string {
	var b strings.Builder
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		tag := reflect.StructTag(st.Tag(i)).Get("json")
		fmt.Fprintf(&b, "%s json:%q %s\n", f.Name(), tag,
			types.TypeString(f.Type(), nil))
	}
	return b.String()
}

// diffSignatures renders a small line diff between the manifest
// signature and the computed one for the failure message.
func diffSignatures(want, got string) string {
	wl := strings.Split(strings.TrimRight(want, "\n"), "\n")
	gl := strings.Split(strings.TrimRight(got, "\n"), "\n")
	wset := make(map[string]bool, len(wl))
	for _, l := range wl {
		wset[l] = true
	}
	gset := make(map[string]bool, len(gl))
	for _, l := range gl {
		gset[l] = true
	}
	var out []string
	for _, l := range wl {
		if !gset[l] {
			out = append(out, "  - "+l)
		}
	}
	for _, l := range gl {
		if !wset[l] {
			out = append(out, "  + "+l)
		}
	}
	if len(out) == 0 {
		return "  (field order changed)"
	}
	sort.Strings(out)
	return strings.Join(out, "\n")
}
