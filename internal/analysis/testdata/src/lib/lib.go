// Fixture dependency for the ctxflow analyzer: a spec type with a
// deprecated non-ctx wrapper delegating to the ctx entry point.
package lib

import "context"

type Spec struct{}

// Learn is the historical entry point.
//
// Deprecated: use LearnCtx, which observes ctx within one iteration.
func (s *Spec) Learn(x []float64) int {
	return s.LearnCtx(context.Background(), x)
}

func (s *Spec) LearnCtx(ctx context.Context, x []float64) int { return len(x) }
