// In-package _test files may pin the deprecated wrappers' historical
// behavior — ctxflow exempts them, so no diagnostics here.
package main

import "lib"

func pinLegacyBehavior() int {
	var s lib.Spec
	return s.Learn([]float64{1})
}
