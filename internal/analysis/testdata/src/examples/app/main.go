// Fixture for the ctxflow analyzer: a serving-scope package (examples/
// segment) calling both deprecated wrappers and non-ctx entry points.
package main

import (
	"context"

	"internal/core"
	"lib"
)

func main() {
	var s lib.Spec
	x := []float64{1, 2}

	_ = s.Learn(x) // want `call to deprecated lib\.\(Spec\)\.Learn`
	_ = s.LearnCtx(context.Background(), x)

	_ = core.Dense(x, core.Options{}) // want `serving path calls non-ctx core\.Dense; call DenseCtx`
	_ = core.DenseCtx(context.Background(), x, core.Options{})
}

// legacy is itself deprecated, so its delegation to the deprecated
// wrapper is exempt — that is how wrappers chain.
//
// Deprecated: use the ctx path.
func legacy(s *lib.Spec, x []float64) int { return s.Learn(x) }
