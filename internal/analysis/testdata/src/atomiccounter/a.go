// Fixture for the atomiccounter analyzer: Metrics is a counter struct
// (every field a sync/atomic type), mixed is not.
package atomiccounter

import "sync/atomic"

type Metrics struct {
	Jobs  atomic.Int64
	Fails atomic.Int64
}

type mixed struct {
	n  atomic.Int64
	mu int
}

func good(m *Metrics) int64 {
	m.Jobs.Add(1)
	m.Fails.Store(0)
	return m.Jobs.Load()
}

// methodValue binds Load without calling it — still an atomic access.
func methodValue(m *Metrics) func() int64 {
	return m.Jobs.Load
}

func helper(c *atomic.Int64) int64 { return c.Load() }

// addr hands the field to a helper as *atomic.Int64 — allowed.
func addr(m *Metrics) int64 { return helper(&m.Fails) }

// mixedUse touches mixed's plain field: mixed is not a counter struct
// (its plain field is lock-protected elsewhere), so nothing fires.
func mixedUse(s *mixed) int64 {
	s.mu = 3
	return s.n.Load()
}

func badCopy(m *Metrics) {
	x := m.Jobs // want `field Metrics\.Jobs accessed without a sync/atomic call`
	_ = x
}

func badAssign(m *Metrics, o *Metrics) {
	m.Fails = o.Fails // want `field Metrics\.Fails accessed without a sync/atomic call` `field Metrics\.Fails accessed without a sync/atomic call`
}
