// Fixture for the wireshape analyzer. The golden manifest lives in
// wireshape.json next to this file; the harness injects it plus an
// allowlist of {Status, Stable, Fresh, Gone}.
package wireshape // want `wire struct Gone is in the frozen allowlist but no longer declared`

// Status drifted: the manifest has only ID and State.
type Status struct { // want `wire struct Status drifted from the golden manifest`
	ID    string `json:"id"`
	State string `json:"state"`
	Extra int    `json:"extra"`
}

// Stable matches the manifest exactly.
type Stable struct {
	Name string `json:"name"`
}

// Fresh is allowlisted but was never added to the manifest.
type Fresh struct { // want `wire struct Fresh missing from the golden manifest`
	N int `json:"n"`
}
