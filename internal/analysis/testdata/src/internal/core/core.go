// Fixture dependency for the ctxflow analyzer: a miniature core with
// the non-ctx entry point and its Ctx variant.
package core

import "context"

type Options struct{ Lambda float64 }

type Result struct{ Cancelled bool }

func Dense(x []float64, o Options) *Result { return &Result{} }

func DenseCtx(ctx context.Context, x []float64, o Options) *Result {
	return &Result{Cancelled: ctx.Err() != nil}
}
