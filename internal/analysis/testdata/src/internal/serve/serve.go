// Fixture for the typederr analyzer: a miniature serve package with
// the TaskCode verdict type and its constants.
package serve

type TaskCode string

const (
	CodeValidation TaskCode = "validation"
	CodeShed       TaskCode = "shed"
)

type task struct{ code TaskCode }

func good(t *task) { t.code = CodeShed }

// zero resets the verdict — the zero value means "no verdict yet".
func zero(t *task) { t.code = "" }

func describe(c TaskCode) string { return string(c) }

func bad(t *task) {
	t.code = "time out" // want `raw string literal "time out" used as TaskCode`
}

func badConvLit(t *task) {
	t.code = TaskCode("oops") // want `raw string literal "oops" used as TaskCode`
}

func badConvVar(t *task, s string) {
	t.code = TaskCode(s) // want `arbitrary string converted to TaskCode`
}
