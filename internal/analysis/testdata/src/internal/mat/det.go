// Fixture for the determinism analyzer: a miniature kernel package
// exercising each rule's true positive and true negative.
package mat

import (
	"math/rand" // want `kernel package imports "math/rand"`
	"sort"
	"sync"
	"time"
)

func jitter() float64 { return rand.Float64() }

func now() int64 { return time.Now().UnixNano() } // want `time\.Now in a kernel package`

func mapAccum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation over map iteration order`
	}
	return sum
}

// mapAccumSorted is the sanctioned shape: iteration order pinned by a
// sorted key slice, so the float sum is reproducible.
func mapAccumSorted(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// mapLocalAccum is fine: the accumulator lives inside the loop body,
// so no cross-iteration float order exists.
func mapLocalAccum(m map[int]float64) int {
	n := 0
	for _, v := range m {
		x := v
		x *= 2
		if x > 1 {
			n++
		}
	}
	return n
}

func fanOutBad(out, vals []float64) {
	var wg sync.WaitGroup
	for w := range vals {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[w] = vals[w] * 2 // want `goroutine writes shared float slice out through a captured index`
		}()
	}
	wg.Wait()
}

// fanOutGood is the slot-indexed contract: the destination slot
// arrives as a goroutine parameter.
func fanOutGood(out, vals []float64) {
	var wg sync.WaitGroup
	for w := range vals {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out[w] = vals[w] * 2
		}(w)
	}
	wg.Wait()
}

// fanOutChannel is the gemm shape: the work index is received inside
// the goroutine, so the slot is goroutine-owned.
func fanOutChannel(out []float64, work chan int) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range work {
				out[u] = float64(u)
			}
		}()
	}
	wg.Wait()
}
