// Fixture for the poolalias analyzer: direct pool use, the sanctioned
// get/put wrapper pair, leaks and a returned buffer.
package poolalias

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return b }}

// getBuf/putBuf are the accessor pair (mat's getPack/putPack shape):
// exempt themselves, tracked at their call sites.
func getBuf() []byte { return bufPool.Get().([]byte) }

func putBuf(b []byte) { bufPool.Put(b) }

func good() int {
	b := bufPool.Get().([]byte)
	defer bufPool.Put(b)
	return len(b)
}

func goodWrapped() int {
	b := getBuf()
	defer putBuf(b)
	return len(b)
}

// goodBranchy puts on one branch only — any-path matching accepts it
// (per-path flow is a documented blind spot).
func goodBranchy(n int) int {
	b := getBuf()
	if n > 0 {
		putBuf(b)
		return n
	}
	putBuf(b)
	return len(b)
}

func leak() int {
	b := bufPool.Get().([]byte) // want `sync\.Pool Get without a matching Put in leak`
	return len(b)
}

func leakWrapped() int {
	b := getBuf() // want `sync\.Pool Get without a matching Put in leakWrapped`
	return len(b)
}

func escape() []byte {
	b := bufPool.Get().([]byte)
	bufPool.Put(b)
	return b // want `pooled buffer escapes escape via return`
}
