package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism enforces the DESIGN.md §9 bit-determinism contract in
// the kernel packages (internal/mat, internal/sparse, internal/loss,
// internal/parallel): results must be a pure function of the inputs
// and the worker count, so replay, the MulRef oracle and the crash
// drills can demand bit-identical outputs.
//
// Three rules:
//
//  1. no float accumulation inside a map range — map iteration order
//     would become summation order;
//  2. no time.Now and no math/rand — kernels take all variability as
//     explicit inputs (seeds live in internal/randx, owned by callers);
//  3. a goroutine body must not write a captured float slice through a
//     captured index — every output slot is owned by exactly one
//     worker, so the slot index must arrive as a goroutine parameter
//     (the `go func(w int) { ... grams[w] ... }(w)` pattern).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "kernel packages must stay bit-deterministic (DESIGN.md §9)",
	Applies: func(pkgPath string) bool {
		for _, k := range kernelPackages {
			if pathEndsWith(pkgPath, k) {
				return true
			}
		}
		return false
	},
	Run: runDeterminism,
}

var kernelPackages = []string{
	"internal/mat",
	"internal/sparse",
	"internal/loss",
	"internal/parallel",
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				pass.Reportf(imp.Pos(),
					"kernel package imports %s; seeded randomness belongs to the caller (DESIGN.md §9)",
					imp.Path.Value)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkTimeNow(pass, n)
			case *ast.RangeStmt:
				checkMapRangeAccum(pass, n)
			case *ast.GoStmt:
				checkGoroutineSliceWrite(pass, n)
			}
			return true
		})
	}
}

// checkTimeNow flags time.Now calls: wall-clock reads make kernel
// output (or tie-breaking) depend on when the run happened.
func checkTimeNow(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Now" {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	if pkg, ok := pass.Info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "time" {
		pass.Reportf(call.Pos(), "time.Now in a kernel package breaks bit-determinism (DESIGN.md §9)")
	}
}

// checkMapRangeAccum flags compound float assignments inside a
// range-over-map body when the accumulator outlives the loop: the
// summation order then follows the randomized map iteration order.
func checkMapRangeAccum(pass *Pass, rs *ast.RangeStmt) {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			if !isFloat(pass.Info.TypeOf(lhs)) {
				continue
			}
			if obj := rootIdentObj(pass.Info, lhs); obj != nil && !declaredWithin(obj, rs.Pos(), rs.End()) {
				pass.Reportf(as.Pos(),
					"float accumulation over map iteration order; collect keys and sort first (DESIGN.md §9)")
			}
		}
		return true
	})
}

// checkGoroutineSliceWrite flags writes to s[i] inside a `go func(...)`
// literal when both the slice and the index are captured from the
// enclosing scope. The contract is slot-indexed destinations: each
// worker's output slot arrives as a parameter, so no two goroutines
// can ever race on (or reorder) one accumulator.
func checkGoroutineSliceWrite(pass *Pass, g *ast.GoStmt) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return // dispatch through a named function: out of sight here
	}
	lo, hi := lit.Pos(), lit.End()
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // nested literals get their own scoping rules
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok {
				continue
			}
			if !isFloatSlice(pass.Info.TypeOf(ix.X)) {
				continue
			}
			sliceObj := rootIdentObj(pass.Info, ix.X)
			if sliceObj == nil || declaredWithin(sliceObj, lo, hi) {
				continue // slice is goroutine-local
			}
			if indexIsLocal(pass, ix.Index, lo, hi) {
				continue // slot-indexed: the index was computed inside
			}
			pass.Reportf(lhs.Pos(),
				"goroutine writes shared float slice %s through a captured index; pass the slot index as a goroutine parameter (DESIGN.md §9)",
				exprString(ix.X))
		}
		return true
	})
}

// indexIsLocal reports whether the index expression depends on at
// least one identifier declared inside [lo, hi] — a parameter or a
// body-local (e.g. a channel-received work unit), which makes the
// destination slot goroutine-owned.
func indexIsLocal(pass *Pass, idx ast.Expr, lo, hi token.Pos) bool {
	local := false
	ast.Inspect(idx, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Info.Uses[id]; obj != nil && declaredWithin(obj, lo, hi) {
			local = true
		}
		return true
	})
	return local
}

// exprString renders a small expression for a message (best effort).
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	}
	return "<expr>"
}
