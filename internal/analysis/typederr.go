package analysis

import (
	"go/ast"
	"go/types"
)

// TypedErr enforces the DESIGN.md §7 per-task verdict contract in
// internal/serve and internal/coord: every failure that surfaces into
// the batch error table carries one of the typed TaskCode constants
// (validation | shed | cancelled | internal | restart | stolen |
// node_down), so clients and the journal can dispatch on the code
// instead of parsing error prose. The analyzer flags raw string
// literals and variable conversions in TaskCode positions — a
// `t.code = "time out"` typo would otherwise mint a code no client
// switch recognizes. The coordinator aliases serve.TaskCode, so its
// fold and failover paths are held to the same constants.
//
// The declared constants themselves and the empty string (the zero
// value, meaning "no verdict yet") are the only allowed sources.
var TypedErr = &Analyzer{
	Name: "typederr",
	Doc:  "task error codes must come from the typed TaskCode constants (DESIGN.md §7)",
	Applies: func(pkgPath string) bool {
		return pathEndsWith(pkgPath, "internal/serve") ||
			pathEndsWith(pkgPath, "internal/coord")
	},
	Run: runTypedErr,
}

func runTypedErr(pass *Pass) {
	scope := pass.Pkg.Scope()
	tn, ok := scope.Lookup("TaskCode").(*types.TypeName)
	if !ok {
		return
	}
	codeType := tn.Type()
	if b, ok := codeType.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return
	}

	for _, f := range pass.Files {
		constLits := constDeclLiterals(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				if constLits[n] {
					return true // the constant declarations themselves
				}
				tv, ok := pass.Info.Types[n]
				if !ok || !types.Identical(tv.Type, codeType) {
					return true
				}
				if tv.Value != nil && tv.Value.String() == `""` {
					return true // zero value: "no verdict yet"
				}
				pass.Reportf(n.Pos(),
					"raw string literal %s used as TaskCode; use the declared TaskCode constants (DESIGN.md §7)",
					n.Value)
			case *ast.CallExpr:
				// Conversion TaskCode(expr) from a non-constant: an
				// arbitrary runtime string becomes a verdict code.
				if len(n.Args) != 1 {
					return true
				}
				var obj types.Object
				switch fun := ast.Unparen(n.Fun).(type) {
				case *ast.Ident:
					obj = pass.Info.Uses[fun]
				case *ast.SelectorExpr:
					obj = pass.Info.Uses[fun.Sel]
				}
				if obj != tn {
					return true
				}
				if tv, ok := pass.Info.Types[n.Args[0]]; ok && tv.Value == nil {
					pass.Reportf(n.Pos(),
						"arbitrary string converted to TaskCode; failure paths must pick a declared constant (DESIGN.md §7)")
				}
			}
			return true
		})
	}
}

// constDeclLiterals collects the BasicLits appearing inside const
// declarations — the TaskCode constants' own definitions are exempt.
func constDeclLiterals(f *ast.File) map[*ast.BasicLit]bool {
	out := make(map[*ast.BasicLit]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		gd, ok := n.(*ast.GenDecl)
		if !ok || gd.Tok.String() != "const" {
			return true
		}
		ast.Inspect(gd, func(m ast.Node) bool {
			if lit, ok := m.(*ast.BasicLit); ok {
				out[lit] = true
			}
			return true
		})
		return false
	})
	return out
}
