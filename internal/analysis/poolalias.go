package analysis

import (
	"go/ast"
	"go/types"
)

// PoolAlias enforces the DESIGN.md §9 pooled-workspace discipline: a
// sync.Pool Get must have a matching Put somewhere in the same
// function (directly or through the package's get/put wrapper pair,
// like mat's getPack/putPack), and a pooled buffer must not escape the
// function through a return value — returning it hands a caller
// memory the pool will concurrently recycle.
//
// Matching is function-local and any-path: a Put on one branch
// satisfies a Get on another (per-return-path flow analysis is a known
// blind spot, catalogued in DESIGN.md §12). Functions that exist to
// wrap pool access — a body that returns the Get result, or takes the
// buffer to Put as a parameter — are the exempt accessor pattern, and
// the rule applies transitively to their callers instead.
var PoolAlias = &Analyzer{
	Name: "poolalias",
	Doc:  "every sync.Pool Get needs a matching Put, and pooled buffers must not escape via return (DESIGN.md §9)",
	Run:  runPoolAlias,
}

func runPoolAlias(pass *Pass) {
	// Pre-pass: classify in-package get/put wrappers.
	getWrappers := make(map[*types.Func]types.Object) // wrapper → pool object
	putWrappers := make(map[*types.Func]types.Object)
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	for _, fd := range decls {
		fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
		if fn == nil {
			continue
		}
		gets, puts := poolCalls(pass, fd.Body)
		// A getter hands the pooled value to its caller: it returns the
		// Get result (directly or via a binding) and never Puts — the
		// matching release is the caller's job, through the putter.
		if len(gets) > 0 && len(puts) == 0 &&
			returnsAcquired(pass, fd.Body, getCallSet(gets)) {
			getWrappers[fn] = gets[0].pool
		}
		if len(puts) > 0 && len(gets) == 0 && fd.Type.Params != nil && len(fd.Type.Params.List) > 0 {
			putWrappers[fn] = puts[0].pool
		}
	}

	for _, fd := range decls {
		fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
		if fn == nil || getWrappers[fn] != nil || putWrappers[fn] != nil {
			continue // the accessor pair itself is the exempt pattern
		}
		checkPoolUse(pass, fd, getWrappers, putWrappers)
	}
}

// poolCall is one (*sync.Pool).Get or Put call with the pool variable
// it targets (nil when the receiver is not a resolvable variable).
type poolCall struct {
	call *ast.CallExpr
	pool types.Object
}

// poolCalls finds direct sync.Pool Get/Put calls under n.
func poolCalls(pass *Pass, n ast.Node) (gets, puts []poolCall) {
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "Get" && name != "Put" {
			return true
		}
		if !isSyncPool(pass.Info.TypeOf(sel.X)) {
			return true
		}
		pc := poolCall{call: call, pool: rootIdentObj(pass.Info, sel.X)}
		if name == "Get" {
			gets = append(gets, pc)
		} else {
			puts = append(puts, pc)
		}
		return true
	})
	return gets, puts
}

func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "Pool"
}

// checkPoolUse applies the two rules to one ordinary function.
func checkPoolUse(pass *Pass, fd *ast.FuncDecl, getWrappers, putWrappers map[*types.Func]types.Object) {
	gets, puts := poolCalls(pass, fd.Body)

	// Wrapper calls participate in the ledger: a getPack call acquires
	// from packPool, a putPack call releases to it.
	type acquisition struct {
		call *ast.CallExpr
		pool types.Object
	}
	var acquired []acquisition
	released := make(map[types.Object]bool)
	anyPut := len(puts) > 0
	for _, g := range gets {
		acquired = append(acquired, acquisition{g.call, g.pool})
	}
	for _, p := range puts {
		released[p.pool] = true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return true
		}
		if pool, ok := getWrappers[fn]; ok {
			acquired = append(acquired, acquisition{call, pool})
		}
		if pool, ok := putWrappers[fn]; ok {
			released[pool] = true
			anyPut = true
		}
		return true
	})

	for _, a := range acquired {
		ok := anyPut
		if a.pool != nil {
			ok = released[a.pool]
		}
		if !ok {
			pass.Reportf(a.call.Pos(),
				"sync.Pool Get without a matching Put in %s; every return path must recycle the workspace (DESIGN.md §9)",
				fd.Name.Name)
		}
	}

	// Escape rule: a variable bound to an acquisition must not appear
	// in a return statement. (A function that returns the buffer
	// WITHOUT putting it was classified as a getter above; reaching
	// here with a pooled return means the buffer was also released —
	// a use-after-put for the caller.)
	acquiredCalls := make(map[*ast.CallExpr]bool)
	for _, a := range acquired {
		acquiredCalls[a.call] = true
	}
	pooled := boundAcquisitions(pass, fd.Body, acquiredCalls)
	if len(pooled) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if obj := rootIdentObj(pass.Info, res); obj != nil && pooled[obj] {
				pass.Reportf(res.Pos(),
					"pooled buffer escapes %s via return; the pool will recycle it under the caller (DESIGN.md §9)",
					fd.Name.Name)
			}
		}
		return true
	})
}

// getCallSet indexes the Get-call expressions of a poolCall list.
func getCallSet(gets []poolCall) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool, len(gets))
	for _, g := range gets {
		out[g.call] = true
	}
	return out
}

// boundAcquisitions collects the objects of variables assigned from an
// acquisition call, unwrapping the usual type assertion
// (b := pool.Get().([]byte)).
func boundAcquisitions(pass *Pass, body ast.Node, calls map[*ast.CallExpr]bool) map[types.Object]bool {
	pooled := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			e := ast.Unparen(rhs)
			if ta, ok := e.(*ast.TypeAssertExpr); ok {
				e = ast.Unparen(ta.X)
			}
			if call, ok := e.(*ast.CallExpr); ok && calls[call] {
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					if obj := pass.Info.Defs[id]; obj != nil {
						pooled[obj] = true
					} else if obj := pass.Info.Uses[id]; obj != nil {
						pooled[obj] = true
					}
				}
			}
		}
		return true
	})
	return pooled
}

// returnsAcquired reports whether some return statement hands out an
// acquisition — the Get expression itself or a variable bound to one.
func returnsAcquired(pass *Pass, body ast.Node, calls map[*ast.CallExpr]bool) bool {
	pooled := boundAcquisitions(pass, body, calls)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			e := ast.Unparen(res)
			if ta, ok := e.(*ast.TypeAssertExpr); ok {
				e = ast.Unparen(ta.X)
			}
			if call, ok := e.(*ast.CallExpr); ok && calls[call] {
				found = true
			}
			if obj := rootIdentObj(pass.Info, res); obj != nil && pooled[obj] {
				found = true
			}
		}
		return true
	})
	return found
}
