// Package randx provides the deterministic randomness substrate used by
// every generator and learner in this repository.
//
// All experiments in the paper are stochastic (random graph topologies,
// random SEM noise, random initialization). To make every table and
// figure regenerable bit-for-bit, the package wraps math/rand with a
// seeded source and adds the variate families the paper needs that the
// standard library lacks: the Gumbel distribution (one of the three LSEM
// noise families in §V-A) and Glorot-uniform initialization (Fig 3,
// INNER line 1).
package randx

import (
	"math"
	"math/rand"
)

// RNG is a seeded random number generator with the distribution families
// used across the repository. It is NOT safe for concurrent use; create
// one per goroutine via Split.
type RNG struct {
	src *rand.Rand
}

// New returns an RNG seeded with seed.
func New(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child RNG from r. The child's stream is a
// deterministic function of r's current state, so experiment code can
// fan out work to goroutines while staying reproducible.
func (r *RNG) Split() *RNG {
	return New(r.src.Int63())
}

// Float64 returns a uniform variate in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (r *RNG) Int63() int64 { return r.src.Int63() }

// Uniform returns a uniform variate in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Normal returns a Gaussian variate with the given mean and standard
// deviation.
func (r *RNG) Normal(mean, std float64) float64 {
	return mean + std*r.src.NormFloat64()
}

// Exponential returns an exponential variate with the given rate λ
// (mean 1/λ). It panics if rate <= 0.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("randx: Exponential rate must be positive")
	}
	return r.src.ExpFloat64() / rate
}

// Gumbel returns a Gumbel(mu, beta) variate via inverse-CDF sampling:
// X = mu - beta*ln(-ln U). It panics if beta <= 0.
func (r *RNG) Gumbel(mu, beta float64) float64 {
	if beta <= 0 {
		panic("randx: Gumbel beta must be positive")
	}
	u := r.src.Float64()
	// Guard the open interval: u = 0 would yield +Inf.
	for u == 0 {
		u = r.src.Float64()
	}
	return mu - beta*math.Log(-math.Log(u))
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// GlorotUniform returns a variate from the Glorot (Xavier) uniform
// distribution for a weight connecting layers of size fanIn and fanOut:
// U(-limit, limit) with limit = sqrt(6 / (fanIn + fanOut)).
func (r *RNG) GlorotUniform(fanIn, fanOut int) float64 {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return r.Uniform(-limit, limit)
}

// SignedUniform returns a variate drawn uniformly from
// [-hi, -lo] ∪ [lo, hi], the edge-weight law used by the NOTEARS
// benchmark generator (weights bounded away from zero so every true
// edge is detectable).
func (r *RNG) SignedUniform(lo, hi float64) float64 {
	v := r.Uniform(lo, hi)
	if r.src.Intn(2) == 0 {
		return -v
	}
	return v
}

// Noise identifies one of the three additive-noise families the paper
// evaluates (§V-A).
type Noise int

const (
	// Gaussian noise: N(0, 1).
	Gaussian Noise = iota
	// Exponential noise: Exp(1).
	Exponential
	// Gumbel noise: Gumbel(0, 1).
	Gumbel
)

// String returns the paper's abbreviation for the noise family.
func (n Noise) String() string {
	switch n {
	case Gaussian:
		return "GS"
	case Exponential:
		return "EX"
	case Gumbel:
		return "GB"
	default:
		return "?"
	}
}

// Sample draws one variate from the standard member of the family.
func (n Noise) Sample(r *RNG) float64 {
	switch n {
	case Gaussian:
		return r.Normal(0, 1)
	case Exponential:
		return r.Exponential(1)
	case Gumbel:
		return r.Gumbel(0, 1)
	default:
		panic("randx: unknown noise family")
	}
}

// AllNoises lists the three families in the paper's presentation order.
func AllNoises() []Noise { return []Noise{Gaussian, Exponential, Gumbel} }
