package randx

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := New(43)
	same := true
	for i := 0; i < 10; i++ {
		if New(42).Float64() == c.Float64() {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(1)
	c1 := r.Split()
	v1 := c1.Float64()
	// Same parent state → same child.
	r2 := New(1)
	c2 := r2.Split()
	if c2.Float64() != v1 {
		t.Fatal("Split must be deterministic")
	}
}

func TestUniformRange(t *testing.T) {
	r := New(2)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform out of range: %g", v)
		}
	}
}

func TestSignedUniformAvoidsZeroBand(t *testing.T) {
	r := New(3)
	pos, neg := 0, 0
	for i := 0; i < 2000; i++ {
		v := r.SignedUniform(0.5, 2)
		a := math.Abs(v)
		if a < 0.5 || a >= 2 {
			t.Fatalf("SignedUniform magnitude %g outside [0.5,2)", a)
		}
		if v > 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos < 800 || neg < 800 {
		t.Fatalf("sign imbalance: +%d −%d", pos, neg)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(4)
	n := 50000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Normal(1, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("Normal mean %g", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Fatalf("Normal var %g", variance)
	}
}

func TestExponentialMoments(t *testing.T) {
	r := New(5)
	n := 50000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exponential(2) // mean 0.5
		if v < 0 {
			t.Fatal("Exponential must be non-negative")
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exponential mean %g want 0.5", mean)
	}
}

func TestGumbelMoments(t *testing.T) {
	// Gumbel(0,1): mean = γ ≈ 0.5772, variance = π²/6 ≈ 1.6449.
	r := New(6)
	n := 100000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Gumbel(0, 1)
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean-0.5772) > 0.02 {
		t.Fatalf("Gumbel mean %g want ≈0.577", mean)
	}
	if math.Abs(variance-math.Pi*math.Pi/6) > 0.06 {
		t.Fatalf("Gumbel var %g want ≈1.645", variance)
	}
}

func TestGumbelPanicsOnBadBeta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Gumbel(0, 0)
}

func TestGlorotUniformBounds(t *testing.T) {
	r := New(7)
	limit := math.Sqrt(6.0 / 200)
	for i := 0; i < 1000; i++ {
		v := r.GlorotUniform(100, 100)
		if v < -limit || v >= limit {
			t.Fatalf("Glorot out of bounds: %g (limit %g)", v, limit)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(8).Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatal("not a permutation")
		}
		seen[v] = true
	}
}

func TestNoiseFamilies(t *testing.T) {
	r := New(9)
	for _, n := range AllNoises() {
		v := n.Sample(r)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s produced %g", n, v)
		}
	}
	if Gaussian.String() != "GS" || Exponential.String() != "EX" || Gumbel.String() != "GB" {
		t.Fatal("paper abbreviations wrong")
	}
}
