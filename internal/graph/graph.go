// Package graph provides the directed-graph substrate shared by the
// generators, the metrics, and the root-cause analyser: cycle checking
// (the ground truth the paper's continuous constraints approximate),
// topological ordering (needed to sample a linear SEM), degree
// analytics (the "blockbuster" study of §VI-C), backward path
// enumeration into a sink node (the anomaly paths of §VI-A), and DOT
// export for the qualitative figures.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Digraph is a directed graph on nodes 0..n−1 with adjacency sets.
type Digraph struct {
	n   int
	out []map[int]bool
	in  []map[int]bool
}

// New returns an empty digraph on n nodes.
func New(n int) *Digraph {
	g := &Digraph{n: n, out: make([]map[int]bool, n), in: make([]map[int]bool, n)}
	for i := 0; i < n; i++ {
		g.out[i] = make(map[int]bool)
		g.in[i] = make(map[int]bool)
	}
	return g
}

// N returns the number of nodes.
func (g *Digraph) N() int { return g.n }

// AddEdge inserts the edge u→v. Self-loops and out-of-range nodes
// panic; duplicate insertion is a no-op.
func (g *Digraph) AddEdge(u, v int) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, g.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	g.out[u][v] = true
	g.in[v][u] = true
}

// RemoveEdge deletes u→v if present.
func (g *Digraph) RemoveEdge(u, v int) {
	delete(g.out[u], v)
	delete(g.in[v], u)
}

// HasEdge reports whether u→v exists.
func (g *Digraph) HasEdge(u, v int) bool { return g.out[u][v] }

// NumEdges returns the total edge count.
func (g *Digraph) NumEdges() int {
	m := 0
	for _, s := range g.out {
		m += len(s)
	}
	return m
}

// Children returns the sorted successors of u.
func (g *Digraph) Children(u int) []int { return sortedKeys(g.out[u]) }

// Parents returns the sorted predecessors of v.
func (g *Digraph) Parents(v int) []int { return sortedKeys(g.in[v]) }

// OutDegree returns |children(u)|.
func (g *Digraph) OutDegree(u int) int { return len(g.out[u]) }

// InDegree returns |parents(v)|.
func (g *Digraph) InDegree(v int) int { return len(g.in[v]) }

func sortedKeys(m map[int]bool) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// Edge is a directed edge.
type Edge struct{ From, To int }

// Edges returns all edges sorted by (From, To).
func (g *Digraph) Edges() []Edge {
	var es []Edge
	for u := 0; u < g.n; u++ {
		for v := range g.out[u] {
			es = append(es, Edge{u, v})
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].To < es[j].To
	})
	return es
}

// TopoSort returns a topological order of the nodes, or ok=false when
// the graph has a cycle (Kahn's algorithm). The order is deterministic
// — children are visited in sorted order — so samplers that consume
// randomness along the order stay reproducible.
func (g *Digraph) TopoSort() (order []int, ok bool) {
	indeg := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		indeg[v] = len(g.in[v])
	}
	queue := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order = make([]int, 0, g.n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.Children(u) {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	return order, len(order) == g.n
}

// IsDAG reports whether the graph is acyclic.
func (g *Digraph) IsDAG() bool {
	_, ok := g.TopoSort()
	return ok
}

// PathsInto enumerates every simple directed path that ends at sink and
// starts at a node with no parents, walking incoming edges — the
// root-cause candidate paths of §VI-A ("we follow the incoming links of
// X until we reach a node with no parents"). Each returned path is
// listed source-first, sink-last. maxLen bounds the path node count and
// maxPaths bounds the result size so pathological graphs cannot blow up.
func (g *Digraph) PathsInto(sink, maxLen, maxPaths int) [][]int {
	var paths [][]int
	onPath := make([]bool, g.n)
	var walk func(v int, path []int)
	walk = func(v int, path []int) {
		if len(paths) >= maxPaths {
			return
		}
		path = append(path, v)
		onPath[v] = true
		defer func() { onPath[v] = false }()
		parents := g.Parents(v)
		extended := false
		if len(path) < maxLen {
			for _, p := range parents {
				if !onPath[p] {
					extended = true
					walk(p, path)
				}
			}
		}
		if !extended && len(path) > 1 {
			// Reverse so the root/source comes first.
			rev := make([]int, len(path))
			for i, x := range path {
				rev[len(path)-1-i] = x
			}
			paths = append(paths, rev)
		}
	}
	walk(sink, nil)
	return paths
}

// Ancestors returns the set of nodes with a directed path into v.
func (g *Digraph) Ancestors(v int) map[int]bool {
	seen := make(map[int]bool)
	stack := []int{v}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p := range g.in[u] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// Descendants returns the set of nodes reachable from v.
func (g *Digraph) Descendants(v int) map[int]bool {
	seen := make(map[int]bool)
	stack := []int{v}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := range g.out[u] {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return seen
}

// Subgraph returns the induced subgraph on keep (sorted) plus the
// mapping from new node index to original index.
func (g *Digraph) Subgraph(keep []int) (*Digraph, []int) {
	nodes := append([]int(nil), keep...)
	sort.Ints(nodes)
	idx := make(map[int]int, len(nodes))
	for i, v := range nodes {
		idx[v] = i
	}
	sub := New(len(nodes))
	for _, u := range nodes {
		for v := range g.out[u] {
			if j, ok := idx[v]; ok {
				sub.AddEdge(idx[u], j)
			}
		}
	}
	return sub, nodes
}

// DOT renders the graph in Graphviz format. names may be nil (node ids
// are used) or length-n labels.
func (g *Digraph) DOT(names []string) string {
	var b strings.Builder
	b.WriteString("digraph G {\n")
	label := func(i int) string {
		if names != nil && i < len(names) {
			return fmt.Sprintf("%q", names[i])
		}
		return fmt.Sprintf("n%d", i)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %s -> %s;\n", label(e.From), label(e.To))
	}
	b.WriteString("}\n")
	return b.String()
}
