package graph

import (
	"strings"
	"testing"
)

func chain(n int) *Digraph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestAddRemoveHasEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge")
	}
	g.AddEdge(0, 1) // idempotent
	if g.NumEdges() != 1 {
		t.Fatal("duplicate edge counted")
	}
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) || g.NumEdges() != 0 {
		t.Fatal("RemoveEdge")
	}
	g.RemoveEdge(0, 1) // removing absent edge is a no-op
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).AddEdge(1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).AddEdge(0, 2)
}

func TestParentsChildrenDegrees(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	p := g.Parents(2)
	if len(p) != 2 || p[0] != 0 || p[1] != 1 {
		t.Fatalf("Parents: %v", p)
	}
	if g.InDegree(2) != 2 || g.OutDegree(2) != 1 {
		t.Fatal("degrees")
	}
	c := g.Children(2)
	if len(c) != 1 || c[0] != 3 {
		t.Fatalf("Children: %v", c)
	}
}

func TestTopoSortDAG(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	order, ok := g.TopoSort()
	if !ok || len(order) != 5 {
		t.Fatal("TopoSort on DAG failed")
	}
	pos := make([]int, 5)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("order violates edge %v", e)
		}
	}
	if !g.IsDAG() {
		t.Fatal("IsDAG false on DAG")
	}
}

func TestCycleDetection(t *testing.T) {
	g := chain(4)
	g.AddEdge(3, 0)
	if g.IsDAG() {
		t.Fatal("cycle not detected")
	}
	if _, ok := g.TopoSort(); ok {
		t.Fatal("TopoSort should fail")
	}
}

func TestPathsIntoChain(t *testing.T) {
	g := chain(4) // 0→1→2→3
	paths := g.PathsInto(3, 10, 100)
	if len(paths) != 1 {
		t.Fatalf("paths: %v", paths)
	}
	want := []int{0, 1, 2, 3}
	for i, v := range want {
		if paths[0][i] != v {
			t.Fatalf("path order: %v", paths[0])
		}
	}
}

func TestPathsIntoDiamond(t *testing.T) {
	// 0→1→3, 0→2→3: two source-rooted paths into 3.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	paths := g.PathsInto(3, 10, 100)
	if len(paths) != 2 {
		t.Fatalf("want 2 paths, got %v", paths)
	}
}

func TestPathsIntoRespectsLimits(t *testing.T) {
	// Complete bipartite-ish blowup capped by maxPaths.
	g := New(7)
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			g.AddEdge(i, j)
		}
		g.AddEdge(i, 6)
	}
	for j := 3; j < 6; j++ {
		g.AddEdge(j, 6)
	}
	paths := g.PathsInto(6, 10, 5)
	if len(paths) > 5 {
		t.Fatalf("maxPaths violated: %d", len(paths))
	}
	short := g.PathsInto(6, 2, 100)
	for _, p := range short {
		if len(p) > 2 {
			t.Fatalf("maxLen violated: %v", p)
		}
	}
}

func TestPathsIntoHandlesCycles(t *testing.T) {
	// A cycle upstream of the sink must not hang the walker.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	paths := g.PathsInto(3, 10, 100)
	if len(paths) == 0 {
		t.Fatal("expected at least one path despite cycle")
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := chain(5)
	anc := g.Ancestors(3)
	if len(anc) != 3 || !anc[0] || !anc[1] || !anc[2] {
		t.Fatalf("Ancestors: %v", anc)
	}
	desc := g.Descendants(1)
	if len(desc) != 3 || !desc[2] || !desc[3] || !desc[4] {
		t.Fatalf("Descendants: %v", desc)
	}
}

func TestSubgraph(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	sub, nodes := g.Subgraph([]int{1, 2, 3})
	if sub.N() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("subgraph %d nodes %d edges", sub.N(), sub.NumEdges())
	}
	if nodes[0] != 1 || nodes[2] != 3 {
		t.Fatalf("mapping %v", nodes)
	}
}

func TestDOT(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	dot := g.DOT([]string{"a", "b"})
	if !strings.Contains(dot, `"a" -> "b"`) {
		t.Fatalf("DOT: %s", dot)
	}
	plain := g.DOT(nil)
	if !strings.Contains(plain, "n0 -> n1") {
		t.Fatalf("DOT plain: %s", plain)
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(3)
	g.AddEdge(2, 0)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	es := g.Edges()
	if es[0].From != 0 || es[0].To != 1 || es[2].From != 2 {
		t.Fatalf("Edges not sorted: %v", es)
	}
}
