package notears

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/randx"
)

func TestRunRecoversERGraph(t *testing.T) {
	rng := randx.New(1)
	d := 15
	dag := gen.RandomDAG(rng, gen.ER, d, 2, 0.5, 2)
	x := gen.SampleLSEM(rng, dag, 10*d, randx.Gaussian)
	o := DefaultOptions()
	o.Lambda = 0.2
	o.Epsilon = 1e-3
	o.MaxOuter = 12
	res := Run(x, o)
	if res.H > 1e-2 {
		t.Fatalf("h = %g did not converge", res.H)
	}
	acc, _ := metrics.BestOverThresholds(dag.G, res.W, []float64{0.1, 0.2, 0.3, 0.4, 0.5})
	if acc.F1 < 0.75 {
		t.Fatalf("F1 = %.3f", acc.F1)
	}
}

func TestPolyVariantWorks(t *testing.T) {
	rng := randx.New(2)
	d := 12
	dag := gen.RandomDAG(rng, gen.ER, d, 2, 0.5, 2)
	x := gen.SampleLSEM(rng, dag, 10*d, randx.Gumbel)
	o := DefaultOptions()
	o.Variant = Poly
	o.Lambda = 0.2
	o.Epsilon = 1e-3
	o.MaxOuter = 12
	res := Run(x, o)
	acc, _ := metrics.BestOverThresholds(dag.G, res.W, []float64{0.1, 0.2, 0.3, 0.4, 0.5})
	if acc.F1 < 0.6 {
		t.Fatalf("poly variant F1 = %.3f", acc.F1)
	}
}

func TestHTraceDecreases(t *testing.T) {
	rng := randx.New(3)
	dag := gen.RandomDAG(rng, gen.ER, 10, 2, 0.5, 2)
	x := gen.SampleLSEM(rng, dag, 100, randx.Exponential)
	o := DefaultOptions()
	o.Epsilon = 1e-4
	o.MaxOuter = 10
	res := Run(x, o)
	if len(res.HTrace) == 0 {
		t.Fatal("no trace")
	}
	first, last := res.HTrace[0], res.HTrace[len(res.HTrace)-1]
	if !(last < first || last <= o.Epsilon) {
		t.Fatalf("h not decreasing: %v", res.HTrace)
	}
}

func TestVariantString(t *testing.T) {
	if Expm.String() != "NOTEARS" || Poly.String() != "NOTEARS-poly" {
		t.Fatal("names")
	}
}

func TestBatchedRun(t *testing.T) {
	rng := randx.New(4)
	dag := gen.RandomDAG(rng, gen.ER, 12, 2, 0.5, 2)
	x := gen.SampleLSEM(rng, dag, 300, randx.Gaussian)
	o := DefaultOptions()
	o.BatchSize = 64
	o.Epsilon = 1e-2
	o.MaxOuter = 8
	res := Run(x, o)
	if res.W == nil || res.W.HasNaN() {
		t.Fatal("batched run produced bad weights")
	}
}

// TestRunCtxCancelMidRun pins the serving contract RunCtx adds to the
// baseline: cancellation observed within one inner iteration, the run
// reported as Cancelled (never Converged), and the last iterate kept.
func TestRunCtxCancelMidRun(t *testing.T) {
	rng := randx.New(7)
	dag := gen.RandomDAG(rng, gen.ER, 25, 2, 0.5, 2)
	x := gen.SampleLSEM(rng, dag, 200, randx.Gaussian)
	o := DefaultOptions()
	o.Epsilon = 1e-15 // unreachable
	o.MaxInner = 5000

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ticks int
	o.Progress = func(p Progress) {
		ticks++
		if p.Inner != ticks || p.Solves == 0 || p.Elapsed < 0 {
			t.Errorf("progress out of order: %+v at tick %d", p, ticks)
		}
		if ticks == 4 {
			cancel()
		}
	}
	res := RunCtx(ctx, x, o)
	if !res.Cancelled || res.Converged {
		t.Fatalf("cancelled run reported as Cancelled=%v Converged=%v", res.Cancelled, res.Converged)
	}
	if ticks > 5 {
		t.Fatalf("kept iterating %d ticks after cancellation", ticks)
	}
	if res.W == nil {
		t.Fatal("cancelled run must keep the last iterate")
	}

	// Pre-cancelled context: no iterations at all.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	o.Progress = func(Progress) { t.Error("pre-cancelled run iterated") }
	if res := RunCtx(pre, x, o); !res.Cancelled {
		t.Fatal("pre-cancelled run not reported as Cancelled")
	}
}

// TestRunParallelismBitIdentical: the loss GEMM stripes partition
// output rows, so bounding the fan-out never changes the result.
func TestRunParallelismBitIdentical(t *testing.T) {
	rng := randx.New(9)
	dag := gen.RandomDAG(rng, gen.ER, 15, 2, 0.5, 2)
	x := gen.SampleLSEM(rng, dag, 150, randx.Gaussian)
	o := DefaultOptions()
	o.Epsilon = 1e-2
	o.MaxOuter = 4

	o.Parallelism = 1
	serial := Run(x, o)
	o.Parallelism = 8
	parallel := Run(x, o)
	if !serial.W.EqualApprox(parallel.W, 0) {
		t.Fatal("results differ across worker bounds")
	}
}
