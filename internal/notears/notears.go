// Package notears implements the baseline the paper compares against:
// NOTEARS (Zheng et al., NeurIPS 2018), which solves the same
// L1-regularized least-squares program under the matrix-exponential
// acyclicity constraint h(W) = tr(e^{W∘W}) − d. To make the comparison
// about the *constraint* (the paper's variable), the surrounding
// machinery — augmented Lagrangian, Adam inner solver, thresholding —
// is shared with LEAST via internal/opt; only the constraint function
// and its O(d³) gradient differ. The package also exposes the DAG-GNN
// polynomial variant tr((I+γS)^d) − d as a second baseline.
//
// RunCtx gives the baseline the same serving contract as the LEAST
// learners (internal/core): cancellation observed within one inner
// iteration, per-iteration Progress callbacks, and a bounded loss-
// kernel fan-out — which is what lets the public Spec API treat all
// three methods uniformly (DESIGN.md §5).
package notears

import (
	"context"
	"math"
	"time"

	"repro/internal/constraint"
	"repro/internal/gen"
	"repro/internal/loss"
	"repro/internal/mat"
	"repro/internal/opt"
	"repro/internal/randx"
)

// Variant selects the baseline acyclicity function.
type Variant int

const (
	// Expm is the original NOTEARS h(W) = tr(e^{W∘W}) − d.
	Expm Variant = iota
	// Poly is the DAG-GNN relaxation tr((I + S/d)^d) − d.
	Poly
)

// String names the variant.
func (v Variant) String() string {
	if v == Poly {
		return "NOTEARS-poly"
	}
	return "NOTEARS"
}

// Options configures a baseline run; the shared fields have the same
// meaning as core.Options.
type Options struct {
	Variant            Variant
	Lambda             float64
	Epsilon            float64
	Threshold          float64
	BatchSize          int
	MaxOuter, MaxInner int
	InnerTol           float64
	Adam               opt.AdamConfig
	RhoGrowth          float64
	Seed               int64
	GradClip           float64
	// Parallelism bounds the goroutine fan-out of the loss kernels
	// (the X·W and Xᵀ·R GEMMs): 0 selects runtime.GOMAXPROCS, 1 forces
	// serial. The O(d³) constraint gradient itself is single-threaded,
	// so this caps — not eliminates — the baseline's core usage. Row-
	// partitioned GEMM stripes keep results bit-identical at every
	// worker bound.
	Parallelism int
	// Progress, when non-nil, is invoked after every inner iteration
	// on the learner's goroutine — same contract as core.Options
	// .Progress: implementations must be fast and must not block.
	Progress func(Progress)
}

// Progress is a point-in-time snapshot of a running baseline learn,
// mirroring core.Progress with the exact constraint h in place of the
// spectral bound δ.
type Progress struct {
	// Solves counts inner solves started (outer iterations including
	// ρ-escalation re-solves); Inner counts cumulative inner iterations.
	Solves, Inner int
	// H is the current exact acyclicity constraint value h(W).
	H float64
	// Elapsed is the wall-clock time since the learn started.
	Elapsed time.Duration
}

// DefaultOptions mirrors core.DefaultOptions for a fair comparison.
func DefaultOptions() Options {
	return Options{
		Variant:   Expm,
		Lambda:    0.1,
		Epsilon:   1e-8,
		MaxOuter:  64,
		MaxInner:  200,
		InnerTol:  1e-6,
		Adam:      opt.DefaultAdam(),
		RhoGrowth: 10,
		Seed:      1,
		GradClip:  1e4,
	}
}

// Result is the outcome of a baseline run.
type Result struct {
	W          *mat.Dense
	H          float64
	OuterIters int
	InnerIters int
	HTrace     []float64
	Elapsed    time.Duration
	Converged  bool
	// Cancelled reports that the run was stopped early by its context
	// (Converged is false in that case and W holds the last iterate).
	Cancelled bool
}

// Run learns a structure from the n×d sample matrix x.
func Run(x *mat.Dense, o Options) *Result {
	return RunCtx(context.Background(), x, o)
}

// RunCtx is Run under a context: cancellation is observed at inner-
// iteration granularity (the result carries the last iterate with
// Cancelled set) and Options.Progress, if present, is notified after
// every iteration — the same contract as core.DenseCtx, so the serving
// layer can supervise baseline jobs exactly like LEAST ones.
func RunCtx(ctx context.Context, x *mat.Dense, o Options) *Result {
	return runCtx(ctx, x.Cols(), o, func(rng *randx.RNG, ls loss.LeastSquares) lossEval {
		batchRows := func() *mat.Dense {
			if o.BatchSize <= 0 || o.BatchSize >= x.Rows() {
				return x
			}
			rows := make([]int, o.BatchSize)
			for i := range rows {
				rows[i] = rng.Intn(x.Rows())
			}
			return loss.Batch(x, rows)
		}
		return func(w *mat.Dense) (float64, *mat.Dense) {
			return ls.ValueGrad(w, batchRows())
		}
	})
}

// RunStats runs the baseline off sufficient statistics (G = XᵀX):
// loss evaluations cost O(d³) independent of n — the same execution
// mode core.DenseStats gives LEAST, so streamed datasets can drive
// either learner (DESIGN.md §6). Mini-batching does not apply;
// BatchSize is ignored.
func RunStats(st *loss.SuffStats, o Options) *Result {
	return RunStatsCtx(context.Background(), st, o)
}

// RunStatsCtx is RunStats under a context — same contract as RunCtx.
func RunStatsCtx(ctx context.Context, st *loss.SuffStats, o Options) *Result {
	return runCtx(ctx, st.D(), o, func(_ *randx.RNG, ls loss.LeastSquares) lossEval {
		// One evaluator per learn: reusing its G·W workspace keeps the
		// per-iteration loss allocation-free (bit-identical to
		// ls.ValueGradGram); the inner loop folds the aliased gradient
		// into Adam before the next evaluation.
		ev := loss.NewGramEval(ls, st)
		return func(w *mat.Dense) (float64, *mat.Dense) {
			return ev.ValueGrad(w)
		}
	})
}

// lossEval evaluates the data-fitting term at W, however the data is
// represented.
type lossEval func(w *mat.Dense) (float64, *mat.Dense)

// runCtx is the shared baseline body; mkEval supplies the loss
// evaluation (rows with optional mini-batching, or precomputed
// statistics) and runs after W is initialized without consuming rng
// draws, so both modes see the same random stream.
func runCtx(ctx context.Context, d int, o Options, mkEval func(*randx.RNG, loss.LeastSquares) lossEval) *Result {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	rng := randx.New(o.Seed)
	// NOTEARS conventionally starts from W = 0; a whisper of Glorot
	// noise breaks ties without changing behaviour measurably.
	w := gen.DenseGlorotInit(rng, d, math.Min(1, 4/float64(d)))
	w.ScaleInPlace(0.01)
	ls := loss.LeastSquares{Lambda: o.Lambda, Workers: o.Parallelism}
	adam := opt.NewAdam(o.Adam, d*d)
	diag := opt.DiagonalIndices(d)
	res := &Result{}
	gamma := 1.0 / float64(d)

	hGrad := func(w *mat.Dense) (float64, *mat.Dense) {
		if o.Variant == Poly {
			return constraint.PolyGGrad(w, gamma)
		}
		return constraint.NotearsHGrad(w)
	}
	hVal := func(w *mat.Dense) float64 {
		if o.Variant == Poly {
			return constraint.PolyG(w, gamma)
		}
		return constraint.NotearsH(w)
	}

	eval := mkEval(rng, ls)

	lr0 := o.Adam.LR
	if lr0 <= 0 {
		lr0 = opt.DefaultAdam().LR
	}
	solve := 0
	inner := func(rho, eta float64) float64 {
		solve++
		if ctx.Err() != nil {
			// Abandoned run: skip even the O(d³) forward pass. The outer
			// loop breaks on its own cancellation check before this value
			// can influence convergence accounting.
			res.Cancelled = true
			return math.Inf(1)
		}
		adam.Reset()
		lr := lr0 * math.Pow(0.75, float64(solve-1))
		if lr < 1e-5 {
			lr = 1e-5
		}
		adam.SetLR(lr)
		prevObj := math.Inf(1)
		calm := 0
		for it := 0; it < o.MaxInner; it++ {
			if ctx.Err() != nil {
				res.Cancelled = true
				break
			}
			res.InnerIters++
			h, gradC := hGrad(w)
			lv, gradL := eval(w)
			obj := lv + 0.5*rho*h*h + eta*h
			factor := rho*h + eta
			gd, cd := gradL.Data(), gradC.Data()
			for i := range gd {
				gd[i] += factor * cd[i]
			}
			opt.ClipGrad(gd, o.GradClip)
			for _, i := range diag {
				gd[i] = 0
			}
			adam.Step(w.Data(), gd)
			opt.PinZero(w, diag)
			if o.Threshold > 0 {
				w.Threshold(o.Threshold)
			}
			if o.Progress != nil {
				o.Progress(Progress{Solves: solve, Inner: res.InnerIters, H: h, Elapsed: time.Since(start)})
			}
			if loss.NaNGuard(obj) {
				break
			}
			rel := math.Abs(prevObj-obj) / math.Max(1, math.Abs(prevObj))
			if rel < o.InnerTol {
				calm++
				if calm >= 3 {
					break
				}
			} else {
				calm = 0
			}
			prevObj = obj
		}
		return hVal(w)
	}

	st := opt.RunAugLag(opt.AugLagConfig{
		RhoInit: 1, EtaInit: 0, RhoGrowth: o.RhoGrowth,
		RhoMax: 1e16, Epsilon: o.Epsilon, MaxOuter: o.MaxOuter,
		ProgressFactor: 0.25,
		Cancelled:      func() bool { return ctx.Err() != nil },
	}, inner, nil)
	// A cancellation seen only by the outer loop must still surface as
	// Cancelled, never as a normal completion.
	if ctx.Err() != nil {
		res.Cancelled = true
	}

	res.W = w
	res.H = st.Delta
	res.HTrace = st.DeltaTrace
	res.OuterIters = st.Outer
	res.Converged = st.Converged
	res.Elapsed = time.Since(start)
	return res
}
