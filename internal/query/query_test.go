package query

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/bnet"
	"repro/internal/mat"
	"repro/internal/sparse"
)

// randDAG fills a d×d weight matrix with edges u→v only for u < v
// under a random node relabelling, so the graph is acyclic by
// construction. Edge weights are ±[0.6, 1.4]; tau 0.5 keeps them all.
func randDAG(rng *rand.Rand, d int, p float64) *mat.Dense {
	order := rng.Perm(d)
	w := mat.NewDense(d, d)
	for a := 0; a < d; a++ {
		for b := a + 1; b < d; b++ {
			if rng.Float64() < p {
				v := 0.6 + 0.8*rng.Float64()
				if rng.Intn(2) == 0 {
					v = -v
				}
				w.Set(order[a], order[b], v)
			}
		}
	}
	return w
}

const tau = 0.5

// adj materializes the thresholded adjacency as bool matrices for the
// oracle implementations — a representation deliberately different
// from the CSR the compiled form uses.
func adj(w *mat.Dense) [][]bool {
	d := w.Rows()
	a := make([][]bool, d)
	for i := range a {
		a[i] = make([]bool, d)
		for j := 0; j < d; j++ {
			if i != j && abs(w.At(i, j)) > tau {
				a[i][j] = true
			}
		}
	}
	return a
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// oracleDescendants returns the descendant set of v (v excluded) by
// plain BFS over the adjacency matrix.
func oracleDescendants(a [][]bool, v int) map[int]bool {
	seen := map[int]bool{}
	stack := []int{v}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for w := range a {
			if a[u][w] && !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	delete(seen, v)
	return seen
}

// oracleDSeparated enumerates every simple undirected path between x
// and y and checks each against the textbook blocking definition: a
// path is blocked iff some interior node is a non-collider in the
// observed set, or a collider with neither itself nor any descendant
// observed. d-separation holds iff every path is blocked.
func oracleDSeparated(a [][]bool, x, y int, z map[int]bool) bool {
	d := len(a)
	onPath := make([]bool, d)
	path := []int{x}
	onPath[x] = true
	active := false

	var pathActive func() bool
	pathActive = func() bool {
		for i := 1; i+1 < len(path); i++ {
			prev, v, next := path[i-1], path[i], path[i+1]
			collider := a[prev][v] && a[next][v] // both edges point into v
			if collider {
				ok := z[v]
				if !ok {
					for dn := range oracleDescendants(a, v) {
						if z[dn] {
							ok = true
							break
						}
					}
				}
				if !ok {
					return false // closed collider blocks
				}
			} else if z[v] {
				return false // observed non-collider blocks
			}
		}
		return true
	}

	var walk func(v int)
	walk = func(v int) {
		if active {
			return
		}
		if v == y {
			if pathActive() {
				active = true
			}
			return
		}
		for u := 0; u < d; u++ {
			if (a[v][u] || a[u][v]) && !onPath[u] {
				onPath[u] = true
				path = append(path, u)
				walk(u)
				path = path[:len(path)-1]
				onPath[u] = false
			}
		}
	}
	walk(x)
	return !active
}

// TestDSeparatedOracleFuzz cross-checks the reachability-based
// DSeparated against the brute-force path-enumeration oracle on random
// DAGs: exhaustively over all observed-set subsets for small d, and on
// random subsets up to d=12. Well over 1,000 cases run even with
// -short.
func TestDSeparatedOracleFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := 0

	// Small graphs, all subsets of V\{x,y} for a few random pairs.
	for g := 0; g < 80; g++ {
		d := 3 + rng.Intn(5) // 3..7
		w := randDAG(rng, d, 0.25+0.35*rng.Float64())
		c := CompileDense(w, tau, nil)
		a := adj(w)
		for pair := 0; pair < 3; pair++ {
			x := rng.Intn(d)
			y := rng.Intn(d)
			if x == y {
				continue
			}
			rest := make([]int, 0, d-2)
			for v := 0; v < d; v++ {
				if v != x && v != y {
					rest = append(rest, v)
				}
			}
			for mask := 0; mask < 1<<len(rest); mask++ {
				var zs []int
				zm := map[int]bool{}
				for i, v := range rest {
					if mask&(1<<i) != 0 {
						zs = append(zs, v)
						zm[v] = true
					}
				}
				got, err := c.DSeparated(x, y, zs)
				if err != nil {
					t.Fatalf("d=%d x=%d y=%d z=%v: %v", d, x, y, zs, err)
				}
				want := oracleDSeparated(a, x, y, zm)
				if got != want {
					t.Fatalf("d=%d x=%d y=%d z=%v: DSeparated=%v oracle=%v\n%v",
						d, x, y, zs, got, want, w)
				}
				// d-separation is symmetric in (x, y).
				sym, _ := c.DSeparated(y, x, zs)
				if sym != got {
					t.Fatalf("d=%d x=%d y=%d z=%v: asymmetric (%v vs %v)", d, x, y, zs, got, sym)
				}
				cases++
			}
		}
	}

	// Larger graphs, random subsets.
	for g := 0; g < 60; g++ {
		d := 8 + rng.Intn(5) // 8..12
		w := randDAG(rng, d, 0.2+0.2*rng.Float64())
		c := CompileDense(w, tau, nil)
		a := adj(w)
		for trial := 0; trial < 8; trial++ {
			x := rng.Intn(d)
			y := rng.Intn(d)
			if x == y {
				continue
			}
			var zs []int
			zm := map[int]bool{}
			for v := 0; v < d; v++ {
				if v != x && v != y && rng.Float64() < 0.3 {
					zs = append(zs, v)
					zm[v] = true
				}
			}
			got, err := c.DSeparated(x, y, zs)
			if err != nil {
				t.Fatalf("d=%d x=%d y=%d z=%v: %v", d, x, y, zs, err)
			}
			if want := oracleDSeparated(a, x, y, zm); got != want {
				t.Fatalf("d=%d x=%d y=%d z=%v: DSeparated=%v oracle=%v", d, x, y, zs, got, want)
			}
			cases++
		}
	}
	if cases < 1000 {
		t.Fatalf("only %d oracle cases ran; want >= 1000", cases)
	}
	t.Logf("%d d-separation oracle cases passed", cases)
}

// TestMarkovBlanketIdentity checks blanket = parents ∪ children ∪
// co-parents on random graphs, with the oracle reading the raw weight
// matrix rather than the compiled CSR.
func TestMarkovBlanketIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for g := 0; g < 200; g++ {
		d := 2 + rng.Intn(11)
		w := randDAG(rng, d, 0.4)
		c := CompileDense(w, tau, nil)
		for v := 0; v < d; v++ {
			want := map[int]bool{}
			for u := 0; u < d; u++ {
				if u == v {
					continue
				}
				if abs(w.At(u, v)) > tau || abs(w.At(v, u)) > tau {
					want[u] = true // parent or child
				}
				for ch := 0; ch < d; ch++ {
					if ch != v && abs(w.At(v, ch)) > tau && abs(w.At(u, ch)) > tau {
						want[u] = true // co-parent via child ch
					}
				}
			}
			wantIdx := make([]int, 0, len(want))
			for u := range want {
				wantIdx = append(wantIdx, u)
			}
			sort.Ints(wantIdx)
			got := c.MarkovBlanket(v)
			gotIdx := make([]int, len(got))
			for i, r := range got {
				gotIdx[i] = r.Index
			}
			if !reflect.DeepEqual(gotIdx, wantIdx) {
				t.Fatalf("d=%d v=%d: blanket %v want %v", d, v, gotIdx, wantIdx)
			}
		}
	}
}

// TestCompiledAccessors pins the basic shape on a handcrafted graph:
//
//	0 → 1 → 3,  2 → 3  (so MB(0)={1}, MB(1)={0,2,3}, topo valid)
func TestCompiledAccessors(t *testing.T) {
	w := mat.NewDense(4, 4)
	w.Set(0, 1, 0.9)
	w.Set(1, 3, -0.8)
	w.Set(2, 3, 0.7)
	c := CompileDense(w, 0.5, []string{"A", "B", "C", "D"})

	if c.D() != 4 || c.NumEdges() != 3 || !c.IsDAG() || c.Tau() != 0.5 {
		t.Fatalf("shape: d=%d edges=%d dag=%v tau=%v", c.D(), c.NumEdges(), c.IsDAG(), c.Tau())
	}
	if got := c.Parents(3); len(got) != 2 || got[0].Name != "B" || got[1].Name != "C" || got[0].Weight != -0.8 {
		t.Fatalf("Parents(3) = %+v", got)
	}
	if got := c.Children(0); len(got) != 1 || got[0].Index != 1 || got[0].Weight != 0.9 {
		t.Fatalf("Children(0) = %+v", got)
	}
	mb := c.MarkovBlanket(1)
	mbIdx := make([]int, len(mb))
	for i, r := range mb {
		mbIdx[i] = r.Index
	}
	if !reflect.DeepEqual(mbIdx, []int{0, 2, 3}) {
		t.Fatalf("MarkovBlanket(1) = %v", mbIdx)
	}

	// Node resolution: by name, by index string, unknown.
	if v, err := c.Node("C"); err != nil || v != 2 {
		t.Fatalf("Node(C) = %d, %v", v, err)
	}
	if v, err := c.Node("3"); err != nil || v != 3 {
		t.Fatalf("Node(3) = %d, %v", v, err)
	}
	if _, err := c.Node("nope"); err == nil {
		t.Fatal("Node(nope) succeeded")
	}

	// Topological order respects all three edges.
	pos := map[int]int{}
	for i, v := range c.TopoOrder() {
		pos[v] = i
	}
	for _, e := range [][2]int{{0, 1}, {1, 3}, {2, 3}} {
		if pos[e[0]] >= pos[e[1]] {
			t.Fatalf("topo order %v violates %v", c.TopoOrder(), e)
		}
	}

	// 0 ⊥ 2 | ∅ (closed collider at 3), but observing D opens it.
	if sep, err := c.DSeparated(0, 2, nil); err != nil || !sep {
		t.Fatalf("DSeparated(0,2|∅) = %v, %v", sep, err)
	}
	if sep, err := c.DSeparated(0, 2, []int{3}); err != nil || sep {
		t.Fatalf("DSeparated(0,2|{3}) = %v, %v", sep, err)
	}

	// Error contracts.
	if _, err := c.DSeparated(0, 0, nil); err == nil {
		t.Fatal("DSeparated(x,x) succeeded")
	}
	if _, err := c.DSeparated(0, 1, []int{1}); err == nil {
		t.Fatal("observed query node succeeded")
	}
	if _, err := c.DSeparated(0, 9, nil); err == nil {
		t.Fatal("out-of-range node succeeded")
	}
}

// TestCyclicGraph: a cycle at low tau must fail d-separation with
// ErrCyclic while ancestors and blankets stay well-defined.
func TestCyclicGraph(t *testing.T) {
	w := mat.NewDense(3, 3)
	w.Set(0, 1, 1)
	w.Set(1, 2, 1)
	w.Set(2, 0, 1)
	c := CompileDense(w, 0.5, nil)
	if c.IsDAG() {
		t.Fatal("cycle not detected")
	}
	if c.TopoOrder() != nil {
		t.Fatal("topo order on cyclic graph")
	}
	if _, err := c.DSeparated(0, 1, nil); err != ErrCyclic {
		t.Fatalf("DSeparated on cycle: %v", err)
	}
	if got := c.MarkovBlanket(0); len(got) != 2 {
		t.Fatalf("MarkovBlanket(0) on cycle = %+v", got)
	}
}

// TestCompileCSRMatchesDense: both input forms must compile to the
// same structure and render identical JSON.
func TestCompileCSRMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for g := 0; g < 20; g++ {
		d := 2 + rng.Intn(10)
		w := randDAG(rng, d, 0.4)
		cd := CompileDense(w, tau, nil)
		cs := CompileCSR(sparse.FromDense(w, 0), tau, nil)
		if !bytes.Equal(cd.NetworkJSON(), cs.NetworkJSON()) {
			t.Fatalf("d=%d: dense and CSR compile diverge:\n%s\nvs\n%s", d, cd.NetworkJSON(), cs.NetworkJSON())
		}
	}
}

// TestNetworkJSONMatchesBnet: the cached render must stay
// byte-identical to the historical FromDense → WriteJSON path the
// /graph endpoint used before the compiled-form cache.
func TestNetworkJSONMatchesBnet(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for g := 0; g < 20; g++ {
		d := 2 + rng.Intn(10)
		w := randDAG(rng, d, 0.5)
		names := make([]string, d)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		c := CompileDense(w, tau, names)
		var want bytes.Buffer
		if err := bnet.FromDense(w, tau, names).WriteJSON(&want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(c.NetworkJSON(), want.Bytes()) {
			t.Fatalf("d=%d: NetworkJSON diverges from bnet render:\n%s\nvs\n%s", d, c.NetworkJSON(), want.Bytes())
		}
		// Second call returns the same shared bytes, not a re-render.
		if &c.NetworkJSON()[0] != &c.NetworkJSON()[0] {
			t.Fatal("NetworkJSON re-rendered")
		}
	}
}
