// Package query compiles a learned Bayesian network into an
// immutable, read-optimized form and answers structural queries over
// it — Markov blankets, parents/children, d-separation — without any
// locking. This is the read side of the paper's deployment story:
// structures learned at fleet scale power downstream applications
// (recommendation explanations, root-cause triage), which ask many
// small questions per second against a network that changes rarely.
// The serving layer keeps one Compiled per (job, tau) in an LRU and
// shares the pointer across request goroutines; everything here is
// written once at compile time and only read afterwards, so reads
// scale with cores. See DESIGN.md §10 for the layout and the
// d-separation algorithm.
package query

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"

	"repro/internal/bnet"
	"repro/internal/mat"
	"repro/internal/sparse"
)

// Errors of the query API. ErrCyclic marks queries (d-separation) that
// are only defined on acyclic graphs: a learned W thresholded at a low
// tau can retain cycles, and the caller must surface that as a client
// error, not a crash.
var (
	ErrCyclic      = errors.New("query: graph has a cycle at this threshold; d-separation is defined on DAGs only")
	ErrUnknownNode = errors.New("query: unknown node")
)

// Compiled is an immutable, read-optimized network at a fixed edge
// threshold tau: the thresholded adjacency as CSR (children) plus its
// transpose (parents), a topological order, and memoized per-node
// ancestor bitsets. All methods are safe for unlimited concurrent use.
type Compiled struct {
	d     int
	tau   float64
	names []string
	idx   map[string]int

	// Children CSR: node v's out-edges are cIdx[cPtr[v]:cPtr[v+1]],
	// column-sorted, weights parallel in cW.
	cPtr, cIdx []int32
	cW         []float64
	// Parents CSR (the transpose), same layout.
	pPtr, pIdx []int32
	pW         []float64

	topo  []int32 // a topological order when isDAG; nil otherwise
	isDAG bool
	anc   []bitset // anc[v] = proper ancestors of v (v excluded)

	jsonOnce sync.Once
	jsonBuf  []byte
}

// bitset is a fixed-width bit vector over node ids.
type bitset []uint64

func newBitset(d int) bitset    { return make(bitset, (d+63)/64) }
func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

type edge struct {
	from, to int
	w        float64
}

// CompileDense thresholds |w| > tau (diagonal excluded) into a
// Compiled. names may be nil (auto "X<i>") or have length d.
func CompileDense(w *mat.Dense, tau float64, names []string) *Compiled {
	d := w.Rows()
	var es []edge
	for i := 0; i < d; i++ {
		row := w.Row(i)
		for j, v := range row {
			if i != j && math.Abs(v) > tau {
				es = append(es, edge{i, j, v})
			}
		}
	}
	return compile(d, tau, names, es)
}

// CompileCSR thresholds a sparse weight matrix into a Compiled.
func CompileCSR(w *sparse.CSR, tau float64, names []string) *Compiled {
	var es []edge
	for i := 0; i < w.Rows(); i++ {
		for p := w.RowPtr[i]; p < w.RowPtr[i+1]; p++ {
			j, v := w.ColIdx[p], w.Val[p]
			if i != j && math.Abs(v) > tau {
				es = append(es, edge{i, j, v})
			}
		}
	}
	return compile(w.Rows(), tau, names, es)
}

// compile freezes an edge list into the read-optimized form.
func compile(d int, tau float64, names []string, es []edge) *Compiled {
	if names == nil {
		names = make([]string, d)
		for i := range names {
			names[i] = fmt.Sprintf("X%d", i)
		}
	}
	if len(names) != d {
		panic(fmt.Sprintf("query: %d names for %d nodes", len(names), d))
	}
	sort.Slice(es, func(a, b int) bool {
		if es[a].from != es[b].from {
			return es[a].from < es[b].from
		}
		return es[a].to < es[b].to
	})
	c := &Compiled{d: d, tau: tau, names: names, idx: make(map[string]int, d)}
	for i, s := range names {
		c.idx[s] = i
	}
	c.cPtr, c.cIdx, c.cW = buildCSR(d, es, func(e edge) (int, int) { return e.from, e.to })
	// Transpose: re-sort by (to, from) and build the parent rows.
	sort.Slice(es, func(a, b int) bool {
		if es[a].to != es[b].to {
			return es[a].to < es[b].to
		}
		return es[a].from < es[b].from
	})
	c.pPtr, c.pIdx, c.pW = buildCSR(d, es, func(e edge) (int, int) { return e.to, e.from })
	c.topo, c.isDAG = topoSort(d, c.cPtr, c.cIdx)
	c.anc = ancestors(d, c.pPtr, c.pIdx, c.topo, c.isDAG)
	return c
}

// buildCSR lays out edges (already sorted by row(e)) as one CSR.
func buildCSR(d int, es []edge, row func(edge) (r, col int)) (ptr, idx []int32, w []float64) {
	ptr = make([]int32, d+1)
	idx = make([]int32, len(es))
	w = make([]float64, len(es))
	for _, e := range es {
		r, _ := row(e)
		ptr[r+1]++
	}
	for v := 0; v < d; v++ {
		ptr[v+1] += ptr[v]
	}
	at := make([]int32, d)
	for _, e := range es {
		r, col := row(e)
		p := ptr[r] + at[r]
		idx[p], w[p] = int32(col), e.w
		at[r]++
	}
	return ptr, idx, w
}

// topoSort runs Kahn's algorithm over the children CSR. ok is false
// when the graph has a cycle (order is then nil).
func topoSort(d int, cPtr, cIdx []int32) ([]int32, bool) {
	indeg := make([]int32, d)
	for _, j := range cIdx {
		indeg[j]++
	}
	order := make([]int32, 0, d)
	queue := make([]int32, 0, d)
	for v := 0; v < d; v++ {
		if indeg[v] == 0 {
			queue = append(queue, int32(v))
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for p := cPtr[u]; p < cPtr[u+1]; p++ {
			v := cIdx[p]
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != d {
		return nil, false
	}
	return order, true
}

// ancestors memoizes the proper-ancestor bitset of every node. On a
// DAG one pass in topological order suffices: anc[v] folds each parent
// p's own set plus p itself, so the whole table costs O(d·E/64) word
// operations. A cyclic graph (possible at low tau) falls back to one
// reverse DFS per node — ancestors stay well-defined ("can reach v")
// even though d-separation does not.
func ancestors(d int, pPtr, pIdx []int32, topo []int32, isDAG bool) []bitset {
	anc := make([]bitset, d)
	for v := range anc {
		anc[v] = newBitset(d)
	}
	if isDAG {
		for _, v := range topo {
			for p := pPtr[v]; p < pPtr[v+1]; p++ {
				u := pIdx[p]
				anc[v].or(anc[u])
				anc[v].set(int(u))
			}
		}
		return anc
	}
	stack := make([]int32, 0, d)
	for v := 0; v < d; v++ {
		stack = stack[:0]
		stack = append(stack, int32(v))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for p := pPtr[u]; p < pPtr[u+1]; p++ {
				w := pIdx[p]
				if !anc[v].has(int(w)) {
					anc[v].set(int(w))
					stack = append(stack, w)
				}
			}
		}
	}
	return anc
}

// D returns the node count.
func (c *Compiled) D() int { return c.d }

// Tau returns the edge threshold the form was compiled at.
func (c *Compiled) Tau() float64 { return c.tau }

// NumEdges returns the edge count.
func (c *Compiled) NumEdges() int { return len(c.cIdx) }

// IsDAG reports whether the thresholded graph is acyclic.
func (c *Compiled) IsDAG() bool { return c.isDAG }

// Name returns node v's label.
func (c *Compiled) Name(v int) string { return c.names[v] }

// Names returns the shared label slice; callers must not mutate it.
func (c *Compiled) Names() []string { return c.names }

// TopoOrder returns a copy of the topological order, or nil when the
// graph is cyclic.
func (c *Compiled) TopoOrder() []int {
	if !c.isDAG {
		return nil
	}
	out := make([]int, c.d)
	for i, v := range c.topo {
		out[i] = int(v)
	}
	return out
}

// Node resolves a node reference: a label first, else a decimal index.
// (A dataset whose column names are themselves decimal strings binds
// them as labels — the unambiguous reading.)
func (c *Compiled) Node(s string) (int, error) {
	if v, ok := c.idx[s]; ok {
		return v, nil
	}
	if v, err := strconv.Atoi(s); err == nil && v >= 0 && v < c.d {
		return v, nil
	}
	return -1, fmt.Errorf("%w %q (d=%d)", ErrUnknownNode, s, c.d)
}

// Neighbor is one adjacent node with the learned edge weight.
type Neighbor struct {
	Index  int     `json:"index"`
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
}

// Parents returns v's parents, sorted by node id.
func (c *Compiled) Parents(v int) []Neighbor {
	return c.neighbors(v, c.pPtr, c.pIdx, c.pW)
}

// Children returns v's children, sorted by node id.
func (c *Compiled) Children(v int) []Neighbor {
	return c.neighbors(v, c.cPtr, c.cIdx, c.cW)
}

func (c *Compiled) neighbors(v int, ptr, idx []int32, w []float64) []Neighbor {
	lo, hi := ptr[v], ptr[v+1]
	out := make([]Neighbor, 0, hi-lo)
	for p := lo; p < hi; p++ {
		u := int(idx[p])
		out = append(out, Neighbor{Index: u, Name: c.names[u], Weight: w[p]})
	}
	return out
}

// NodeRef is a bare node reference (blanket members carry no single
// edge weight — a co-parent may not be adjacent to v at all).
type NodeRef struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
}

// MarkovBlanket returns parents(v) ∪ children(v) ∪ co-parents(v)
// (other parents of v's children), sorted by node id and excluding v —
// the minimal set that renders v independent of the rest of the
// network.
func (c *Compiled) MarkovBlanket(v int) []NodeRef {
	in := newBitset(c.d)
	for p := c.pPtr[v]; p < c.pPtr[v+1]; p++ {
		in.set(int(c.pIdx[p]))
	}
	for p := c.cPtr[v]; p < c.cPtr[v+1]; p++ {
		ch := c.cIdx[p]
		in.set(int(ch))
		for q := c.pPtr[ch]; q < c.pPtr[ch+1]; q++ {
			in.set(int(c.pIdx[q]))
		}
	}
	out := make([]NodeRef, 0, 8)
	for u := 0; u < c.d; u++ {
		if u != v && in.has(u) {
			out = append(out, NodeRef{Index: u, Name: c.names[u]})
		}
	}
	return out
}

// DSeparated reports whether x and y are d-separated given the
// observed set z: no active trail connects them. It runs the standard
// reachability procedure (Koller & Friedman, Alg. 3.1): a breadth-
// first search over (node, direction) states where a trail may leave a
// non-observed node along any edge when entered from a child, may
// continue to children when entered from a parent, and may turn back
// up to parents at a collider only when the collider or one of its
// descendants is observed. The collider test is one bit probe: the
// compile-time ancestor bitsets fold "has an observed descendant" into
// obsAnc = ∪_{o∈z} (anc[o] ∪ {o}).
//
// x and y must be distinct and unobserved; the graph must be a DAG at
// this tau (ErrCyclic otherwise).
func (c *Compiled) DSeparated(x, y int, z []int) (bool, error) {
	if !c.isDAG {
		return false, ErrCyclic
	}
	if x < 0 || x >= c.d || y < 0 || y >= c.d {
		return false, fmt.Errorf("query: node out of range (d=%d)", c.d)
	}
	if x == y {
		return false, errors.New("query: x and y must be distinct")
	}
	obs := newBitset(c.d)
	obsAnc := newBitset(c.d)
	for _, o := range z {
		if o < 0 || o >= c.d {
			return false, fmt.Errorf("query: observed node %d out of range (d=%d)", o, c.d)
		}
		if o == x || o == y {
			return false, fmt.Errorf("query: node %d cannot be both queried and observed", o)
		}
		obs.set(o)
		obsAnc.set(o)
		obsAnc.or(c.anc[o])
	}

	// Visited states: direction up (entered from a child / start) and
	// down (entered from a parent), one bit each.
	const up, down = 0, 1
	seen := [2]bitset{newBitset(c.d), newBitset(c.d)}
	type state struct {
		v   int32
		dir int8
	}
	queue := make([]state, 0, 2*c.d)
	queue = append(queue, state{int32(x), up})
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		v := int(s.v)
		if seen[s.dir].has(v) {
			continue
		}
		seen[s.dir].set(v)
		if v == y {
			return false, nil // active trail reached y
		}
		switch s.dir {
		case up:
			if obs.has(v) {
				continue // observed non-collider blocks the trail
			}
			for p := c.pPtr[v]; p < c.pPtr[v+1]; p++ {
				queue = append(queue, state{c.pIdx[p], up})
			}
			for p := c.cPtr[v]; p < c.cPtr[v+1]; p++ {
				queue = append(queue, state{c.cIdx[p], down})
			}
		default: // down: entered along an edge parent → v
			if !obs.has(v) {
				for p := c.cPtr[v]; p < c.cPtr[v+1]; p++ {
					queue = append(queue, state{c.cIdx[p], down})
				}
			}
			if obsAnc.has(v) {
				// v-structure: v or a descendant of v is observed, so
				// the collider is open and the trail may turn upward.
				for p := c.pPtr[v]; p < c.pPtr[v+1]; p++ {
					queue = append(queue, state{c.pIdx[p], up})
				}
			}
		}
	}
	return true, nil
}

// Edges calls fn for every edge in (from, to) order.
func (c *Compiled) Edges(fn func(from, to int, w float64)) {
	for v := 0; v < c.d; v++ {
		for p := c.cPtr[v]; p < c.cPtr[v+1]; p++ {
			fn(v, int(c.cIdx[p]), c.cW[p])
		}
	}
}

// NetworkJSON returns the network in the stable bnet wire form —
// byte-identical to bnet.FromDense(w, tau, names).WriteJSON — rendered
// exactly once and shared by every caller. The serving layer writes
// these bytes straight to GET /graph responses, so repeated fetches of
// a cached form never re-threshold or re-serialize.
func (c *Compiled) NetworkJSON() []byte {
	c.jsonOnce.Do(func() {
		es := make([]bnet.WeightedEdge, 0, len(c.cIdx))
		c.Edges(func(from, to int, w float64) {
			es = append(es, bnet.WeightedEdge{From: from, To: to, Weight: w})
		})
		var buf bytes.Buffer
		if err := bnet.FromEdges(c.d, c.names, es).WriteJSON(&buf); err != nil {
			// Marshalling ints, floats and strings cannot fail; keep
			// the method infallible.
			panic(fmt.Sprintf("query: render network JSON: %v", err))
		}
		c.jsonBuf = buf.Bytes()
	})
	return c.jsonBuf
}
