package least

import (
	"fmt"
	"testing"

	"repro/internal/mat"
	"repro/internal/randx"
)

// The PR-6 GEMM benchmark trio behind `make bench-json`: the
// register-blocked tiled kernel against the pre-tiling reference at
// the d=512 acceptance size, and the batched small-d fleet shape that
// internal/serve's gang lanes feed through mat.BatchMul. Operands are
// unit normals — denormal inputs trip microcode assists and would
// swamp the kernel timing (DESIGN.md §9).

func benchDense(rng *randx.RNG, d int) *mat.Dense {
	m := mat.NewDense(d, d)
	data := m.Data()
	for i := range data {
		data[i] = rng.Normal(0, 1)
	}
	return m
}

// BenchmarkGEMM is the tiled kernel, serial, writing into a reused
// destination: steady state must be allocation-free (the packed-B
// workspace comes from the pool).
func BenchmarkGEMM(b *testing.B) {
	for _, d := range []int{128, 512} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			rng := randx.New(int64(d))
			x, y := benchDense(rng, d), benchDense(rng, d)
			dst := mat.NewDense(d, d)
			x.MulInto(dst, y, 1) // warm the pack pool before the timer
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.MulInto(dst, y, 1)
			}
		})
	}
}

// BenchmarkGEMMRef is the pre-tiling i-k-j reference kernel on the
// same operands — the denominator of the PR's speedup claim.
func BenchmarkGEMMRef(b *testing.B) {
	for _, d := range []int{128, 512} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			rng := randx.New(int64(d))
			x, y := benchDense(rng, d), benchDense(rng, d)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mat.MulRef(x, y)
			}
		})
	}
}

// BenchmarkGEMMBatch is the fleet shape: 64 products at d=32, fused
// into one parallel region over whole tasks rather than one undersized
// goroutine pool per product.
func BenchmarkGEMMBatch(b *testing.B) {
	const tasks, d = 64, 32
	rng := randx.New(7)
	ts := make([]mat.MulTask, tasks)
	for i := range ts {
		ts[i] = mat.MulTask{A: benchDense(rng, d), B: benchDense(rng, d), Dst: mat.NewDense(d, d)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.BatchMul(ts, 0)
	}
}
