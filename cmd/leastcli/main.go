// Command leastcli learns a Bayesian-network structure from CSV or
// JSONL sample files and writes the discovered edges.
//
// Input is one file or a comma-separated shard list forming one
// logical dataset: CSV has one column per variable and one row per
// observation (optional header row names the variables); files ending
// in .jsonl/.ndjson hold one JSON array of numbers per line. Ingest
// streams: the rows are folded into sufficient statistics in one
// bounded-memory pass (never materialized), so the dense methods learn
// from datasets far larger than RAM-resident n×d. Output is either an
// edge list (from,to,weight) or Graphviz DOT. The -method flag selects
// the learner: least (dense, default), least-sp (the O(nnz) sparse
// mode for large d — this one loads the rows) or notears (the O(d³)
// baseline — small d only).
//
// Usage:
//
//	leastcli -in data.csv -header -tau 0.3 -format dot > graph.dot
//	leastcli -in part1.csv,part2.csv -header -lambda 0.05 -workers 4
//	leastcli -in data.jsonl -method notears -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/bnet"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run drives one leastcli invocation; split from main so the smoke
// tests can exercise the flag paths in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("leastcli", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "input sample file(s): CSV or JSONL, comma-separated shards (required)")
	header := fs.Bool("header", false, "first CSV row is a header with variable names")
	tau := fs.Float64("tau", 0.3, "edge threshold |w| > tau")
	lambda := fs.Float64("lambda", 0.1, "L1 regularization λ")
	eps := fs.Float64("eps", 1e-4, "acyclicity tolerance ε")
	methodName := fs.String("method", "", "learning method: least (default), least-sp or notears")
	sparseMode := fs.Bool("sparse", false, "use the LEAST-SP sparse learner (alias for -method least-sp)")
	format := fs.String("format", "csv", "output format: csv, json or dot")
	seed := fs.Int64("seed", 1, "random seed")
	center := fs.Bool("center", true, "subtract column means before learning")
	workers := fs.Int("workers", 0, "parallel workers for ingest and the execution backend (0 = all cores, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *in == "" {
		fmt.Fprintln(stderr, "leastcli: -in is required")
		fs.Usage()
		return 2
	}
	method, err := least.ParseMethod(*methodName)
	if err != nil {
		fmt.Fprintln(stderr, "leastcli:", err)
		return 2
	}
	if *sparseMode {
		if *methodName != "" && method != least.MethodLEASTSP {
			fmt.Fprintf(stderr, "leastcli: -sparse conflicts with -method %s\n", method)
			return 2
		}
		method = least.MethodLEASTSP
	}

	// Ingest: one streaming pass over the shards into sufficient
	// statistics (dense methods never see the rows; least-sp re-reads
	// them when the learner starts). Timed separately from the learn so
	// the two scaling axes — n for ingest, d for optimization — stay
	// visible.
	ingestStart := time.Now()
	ds, err := least.OpenShards(strings.Split(*in, ","), least.DatasetOptions{
		Header:  *header,
		Workers: *workers,
	})
	if err != nil {
		fmt.Fprintln(stderr, "leastcli:", err)
		return 1
	}
	ingest := time.Since(ingestStart)
	n, d := ds.Dims()
	names := ds.Names()
	if names == nil {
		names = make([]string, d)
		for j := range names {
			names[j] = fmt.Sprintf("X%d", j)
		}
	}
	fmt.Fprintf(stderr, "ingested %d rows x %d variables in %v (fingerprint %.12s)\n",
		n, d, ingest.Round(time.Millisecond), ds.Fingerprint())
	if *center {
		ds = least.Centered(ds)
	}

	opts := []least.Option{
		least.WithMethod(method),
		least.WithLambda(*lambda),
		least.WithEpsilon(*eps),
		least.WithSeed(*seed),
		least.WithParallelism(*workers),
	}
	if method == least.MethodLEAST && d <= 600 {
		// The paper's §V-A fairness termination: affordable at CLI
		// scales, and it stops as soon as the exact h(W) is met.
		opts = append(opts, least.WithExactTermination(true))
	}
	spec, err := least.New(opts...)
	if err != nil {
		fmt.Fprintln(stderr, "leastcli:", err)
		return 2
	}
	learnStart := time.Now()
	res, err := spec.LearnDataset(context.Background(), ds)
	if err != nil {
		fmt.Fprintln(stderr, "leastcli:", err)
		return 1
	}
	learn := time.Since(learnStart)
	var net *bnet.Network
	if res.Weights != nil {
		net = bnet.FromDense(res.Weights, *tau, names)
	} else {
		net = bnet.FromCSR(res.SparseWeights, *tau, names)
	}
	switch *format {
	case "dot":
		fmt.Fprint(stdout, net.DOT())
	case "json":
		if err := net.WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "leastcli:", err)
			return 1
		}
	default:
		fmt.Fprintln(stdout, "from,to,weight")
		for _, e := range net.TopEdges(net.NumEdges()) {
			fmt.Fprintf(stdout, "%s,%s,%.6f\n", net.Name(e.From), net.Name(e.To), e.Weight)
		}
	}
	fmt.Fprintf(stderr, "learned %d edges over %d variables (δ=%.3g, converged=%v; ingest %v, learn %v)\n",
		net.NumEdges(), d, res.Delta, res.Converged,
		ingest.Round(time.Millisecond), learn.Round(time.Millisecond))
	return 0
}
