// Command leastcli learns a Bayesian-network structure from a CSV
// sample matrix and writes the discovered edges.
//
// The input CSV has one column per variable and one row per
// observation; an optional header row names the variables. Output is
// either an edge list (from,to,weight) or Graphviz DOT.
//
// Usage:
//
//	leastcli -in data.csv -header -tau 0.3 -format dot > graph.dot
//	leastcli -in data.csv -sparse -lambda 0.05
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro"
	"repro/internal/bnet"
)

func main() {
	in := flag.String("in", "", "input CSV path (required)")
	header := flag.Bool("header", false, "first CSV row is a header with variable names")
	tau := flag.Float64("tau", 0.3, "edge threshold |w| > tau")
	lambda := flag.Float64("lambda", 0.1, "L1 regularization λ")
	eps := flag.Float64("eps", 1e-4, "acyclicity tolerance ε")
	sparse := flag.Bool("sparse", false, "use the LEAST-SP sparse learner")
	format := flag.String("format", "csv", "output format: csv, json or dot")
	seed := flag.Int64("seed", 1, "random seed")
	center := flag.Bool("center", true, "subtract column means before learning")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "leastcli: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	x, names, err := readCSV(*in, *header)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leastcli:", err)
		os.Exit(1)
	}
	if *center {
		least.Center(x)
	}
	o := least.Defaults()
	o.Lambda = *lambda
	o.Epsilon = *eps
	o.Sparse = *sparse
	o.Seed = *seed
	o.ExactTermination = !*sparse && x.Cols() <= 600
	res, err := least.Learn(x, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leastcli:", err)
		os.Exit(1)
	}
	var net *bnet.Network
	if res.Weights != nil {
		net = bnet.FromDense(res.Weights, *tau, names)
	} else {
		net = bnet.FromCSR(res.SparseWeights, *tau, names)
	}
	switch *format {
	case "dot":
		fmt.Print(net.DOT())
	case "json":
		if err := net.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "leastcli:", err)
			os.Exit(1)
		}
	default:
		fmt.Println("from,to,weight")
		for _, e := range net.TopEdges(net.NumEdges()) {
			fmt.Printf("%s,%s,%.6f\n", net.Name(e.From), net.Name(e.To), e.Weight)
		}
	}
	fmt.Fprintf(os.Stderr, "learned %d edges over %d variables (δ=%.3g, converged=%v)\n",
		net.NumEdges(), x.Cols(), res.Delta, res.Converged)
}

func readCSV(path string, header bool) (*least.Matrix, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("%s: empty file", path)
	}
	var names []string
	if header {
		names = rows[0]
		rows = rows[1:]
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("%s: no data rows", path)
	}
	d := len(rows[0])
	x := least.NewMatrix(len(rows), d)
	for i, row := range rows {
		if len(row) != d {
			return nil, nil, fmt.Errorf("%s: row %d has %d fields, want %d", path, i+1, len(row), d)
		}
		for j, s := range row {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: row %d col %d: %v", path, i+1, j+1, err)
			}
			x.Set(i, j, v)
		}
	}
	if names == nil {
		names = make([]string, d)
		for j := range names {
			names[j] = fmt.Sprintf("X%d", j)
		}
	}
	return x, names, nil
}
